// Cross-module integration tests exercising the paper's headline
// qualitative results end-to-end on a scaled-down configuration.

#include <gtest/gtest.h>

#include "core/system.h"

namespace bdisk::core {
namespace {

SystemConfig SmallConfig() {
  SystemConfig config;
  config.server_db_size = 100;
  config.disks = broadcast::DiskConfig{{10, 40, 50}, {3, 2, 1}};
  config.cache_size = 10;
  config.server_queue_size = 10;
  config.mc_think_time = 20.0;
  config.steady_state_perc = 0.95;
  config.seed = 11;
  return config;
}

SteadyStateProtocol FastProtocol() {
  SteadyStateProtocol protocol;
  protocol.post_fill_accesses = 200;
  protocol.min_measured_accesses = 2000;
  protocol.max_measured_accesses = 6000;
  protocol.batch_size = 500;
  protocol.tolerance = 0.05;
  return protocol;
}

double SteadyResponse(SystemConfig config) {
  System system(config);
  return system.RunSteadyState(FastProtocol()).mean_response;
}

// Experiment 1, left side of Figure 3(a): under light load, pull-based
// access is dramatically faster than Pure-Push.
TEST(IntegrationTest, PullBeatsPushAtLightLoad) {
  SystemConfig config = SmallConfig();
  config.think_time_ratio = 5.0;

  config.mode = DeliveryMode::kPurePull;
  const double pull = SteadyResponse(config);
  config.mode = DeliveryMode::kPurePush;
  const double push = SteadyResponse(config);

  EXPECT_LT(pull, push / 5.0)
      << "pull=" << pull << " push=" << push;
}

// Experiment 1, right side of Figure 3(a): under saturation, Pure-Pull
// degrades past Pure-Push — the push "safety net" wins.
TEST(IntegrationTest, PushBeatsPullAtHeavyLoad) {
  SystemConfig config = SmallConfig();
  config.think_time_ratio = 500.0;

  config.mode = DeliveryMode::kPurePull;
  const double pull = SteadyResponse(config);
  config.mode = DeliveryMode::kPurePush;
  const double push = SteadyResponse(config);

  EXPECT_GT(pull, push) << "pull=" << pull << " push=" << push;
}

// Pure-Push performance is independent of the client population size.
TEST(IntegrationTest, PushIsFlatAcrossLoad) {
  SystemConfig config = SmallConfig();
  config.mode = DeliveryMode::kPurePush;
  config.think_time_ratio = 5.0;
  const double light = SteadyResponse(config);
  config.think_time_ratio = 500.0;
  const double heavy = SteadyResponse(config);
  EXPECT_NEAR(light, heavy, 0.15 * light);
}

// The server drops requests only under pressure.
TEST(IntegrationTest, DropRateGrowsWithLoad) {
  SystemConfig config = SmallConfig();
  config.mode = DeliveryMode::kPurePull;

  config.think_time_ratio = 5.0;
  System light(config);
  const RunResult light_result = light.RunSteadyState(FastProtocol());

  config.think_time_ratio = 500.0;
  System heavy(config);
  const RunResult heavy_result = heavy.RunSteadyState(FastProtocol());

  EXPECT_LT(light_result.drop_rate, 0.05);
  EXPECT_GT(heavy_result.drop_rate, 0.3);
}

// Experiment 2 (Figure 6): under heavy load a threshold improves IPP by
// conserving the backchannel.
TEST(IntegrationTest, ThresholdHelpsUnderHeavyLoad) {
  SystemConfig config = SmallConfig();
  config.mode = DeliveryMode::kIpp;
  config.pull_bw = 0.5;
  config.think_time_ratio = 200.0;

  config.thres_perc = 0.0;
  const double no_threshold = SteadyResponse(config);
  config.thres_perc = 0.25;
  const double with_threshold = SteadyResponse(config);

  EXPECT_LT(with_threshold, no_threshold * 1.02)
      << "thres=" << with_threshold << " none=" << no_threshold;
}

// IPP saturates before Pure-Pull (it has less pull bandwidth), so at the
// same moderate load IPP drops more requests — §4.2's 68.8% vs 39.9%
// observation, qualitatively.
TEST(IntegrationTest, IppDropsMoreThanPullAtSameLoad) {
  SystemConfig config = SmallConfig();
  config.think_time_ratio = 100.0;

  config.mode = DeliveryMode::kIpp;
  config.pull_bw = 0.5;
  System ipp(config);
  const double ipp_drop = ipp.RunSteadyState(FastProtocol()).drop_rate;

  config.mode = DeliveryMode::kPurePull;
  System pull(config);
  const double pull_drop = pull.RunSteadyState(FastProtocol()).drop_rate;

  EXPECT_GT(ipp_drop, pull_drop);
}

// Experiment 1.4 (Figure 5): Noise barely matters under light load (the
// client pulls whatever it needs) but hurts under heavy load.
TEST(IntegrationTest, NoiseHurtsOnlyUnderLoad) {
  SystemConfig config = SmallConfig();
  config.mode = DeliveryMode::kPurePull;

  config.think_time_ratio = 5.0;
  config.noise = 0.0;
  const double light_clean = SteadyResponse(config);
  config.noise = 0.35;
  const double light_noisy = SteadyResponse(config);
  // Light load: noise effect is small in absolute terms (a few units).
  EXPECT_LT(light_noisy - light_clean, 5.0);

  config.think_time_ratio = 500.0;
  config.noise = 0.0;
  const double heavy_clean = SteadyResponse(config);
  config.noise = 0.35;
  const double heavy_noisy = SteadyResponse(config);
  EXPECT_GT(heavy_noisy, heavy_clean);
}

// Experiment 1.3 (Figure 4): warm-up completes, and under light load
// Pure-Pull warms up faster than Pure-Push.
TEST(IntegrationTest, PullWarmsUpFasterAtLightLoad) {
  SystemConfig config = SmallConfig();
  config.think_time_ratio = 5.0;

  config.mode = DeliveryMode::kPurePull;
  System pull(config);
  const RunResult pull_result = pull.RunWarmup();

  config.mode = DeliveryMode::kPurePush;
  System push(config);
  const RunResult push_result = push.RunWarmup();

  ASSERT_TRUE(pull_result.converged);
  ASSERT_TRUE(push_result.converged);
  EXPECT_LT(pull_result.warmup.back().time, push_result.warmup.back().time);
}

// A fully snooping client population: pages pulled by the virtual client
// population cut the measured client's push wait (it can grab them off the
// frontchannel early).
TEST(IntegrationTest, IppBetweenExtremesAtModerateLoad) {
  SystemConfig config = SmallConfig();
  config.think_time_ratio = 50.0;

  config.mode = DeliveryMode::kPurePull;
  const double pull = SteadyResponse(config);
  config.mode = DeliveryMode::kPurePush;
  const double push = SteadyResponse(config);
  config.mode = DeliveryMode::kIpp;
  config.pull_bw = 0.5;
  const double ipp = SteadyResponse(config);

  // IPP should be within the envelope spanned by the pure algorithms
  // (allowing slack for stochastic noise).
  const double lo = std::min(pull, push);
  const double hi = std::max(pull, push);
  EXPECT_GT(ipp, lo * 0.5);
  EXPECT_LT(ipp, hi * 1.5);
}

}  // namespace
}  // namespace bdisk::core
