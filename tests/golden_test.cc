// Golden regression tests: pin exact outputs for fixed seeds. Any change
// to event ordering, RNG stream assignment, or model semantics shows up
// here first — deliberately brittle, to force such changes to be conscious
// (update the constants and note why in the commit).

#include <gtest/gtest.h>

#include "core/system.h"
#include "sim/rng.h"

namespace bdisk {
namespace {

TEST(GoldenTest, RngStreamFirstDraws) {
  sim::Rng rng(20260704);
  // xoshiro256++ with SplitMix64 seeding: these values define the stream.
  const std::uint64_t first = rng.Next();
  const std::uint64_t second = rng.Next();
  sim::Rng again(20260704);
  EXPECT_EQ(again.Next(), first);
  EXPECT_EQ(again.Next(), second);
  EXPECT_NE(first, second);
  // And the canonical double stream stays in range with a fixed first
  // value across runs.
  sim::Rng d(42);
  const double u = d.NextDouble();
  sim::Rng d2(42);
  EXPECT_EQ(d2.NextDouble(), u);
}

TEST(GoldenTest, SmallSystemSteadyStateIsBitStable) {
  // Two *processes* would reproduce these exact numbers too; in-process we
  // assert two constructions agree to the bit, covering the whole stack
  // (pattern -> program -> server -> clients -> measurement).
  core::SystemConfig config;
  config.server_db_size = 100;
  config.disks = broadcast::DiskConfig{{10, 40, 50}, {3, 2, 1}};
  config.cache_size = 10;
  config.server_queue_size = 10;
  config.mc_think_time = 5.0;
  config.think_time_ratio = 25.0;
  config.seed = 424242;

  core::SteadyStateProtocol protocol;
  protocol.post_fill_accesses = 100;
  protocol.min_measured_accesses = 1000;
  protocol.max_measured_accesses = 2000;
  protocol.batch_size = 500;
  protocol.tolerance = 0.1;

  const core::RunResult a = core::System(config).RunSteadyState(protocol);
  const core::RunResult b = core::System(config).RunSteadyState(protocol);
  EXPECT_EQ(a.mean_response, b.mean_response);
  EXPECT_EQ(a.response_stats.Variance(), b.response_stats.Variance());
  EXPECT_EQ(a.requests_submitted, b.requests_submitted);
  EXPECT_EQ(a.requests_dropped, b.requests_dropped);
  EXPECT_EQ(a.mc_accesses, b.mc_accesses);
  EXPECT_EQ(a.sim_time_end, b.sim_time_end);
}

TEST(GoldenTest, ProgramForConfigMatchesSystemProgram) {
  core::SystemConfig config;
  config.server_db_size = 100;
  config.disks = broadcast::DiskConfig{{10, 40, 50}, {3, 2, 1}};
  config.cache_size = 10;
  config.chop_count = 20;
  const auto standalone = core::ProgramForConfig(config);
  core::System system(config);
  ASSERT_EQ(standalone.Length(), system.program().Length());
  for (std::uint32_t pos = 0; pos < standalone.Length(); ++pos) {
    ASSERT_EQ(standalone.PageAt(pos), system.program().PageAt(pos)) << pos;
  }
}

TEST(GoldenTest, McPatternForConfigMatchesSystemPattern) {
  core::SystemConfig config;
  config.server_db_size = 100;
  config.disks = broadcast::DiskConfig{{10, 40, 50}, {3, 2, 1}};
  config.cache_size = 10;
  config.noise = 0.35;
  config.seed = 777;
  const auto standalone = core::McPatternForConfig(config);
  core::System system(config);
  for (broadcast::PageId p = 0; p < 100; ++p) {
    ASSERT_EQ(standalone.Prob(p), system.mc_pattern().Prob(p)) << p;
  }
}

TEST(GoldenTest, Figure1ProgramText) {
  const auto layout = broadcast::BuildPushLayout(
      {0.30, 0.20, 0.15, 0.12, 0.10, 0.08, 0.05},
      broadcast::DiskConfig::Figure1(), 0, 0);
  const broadcast::BroadcastProgram program(
      broadcast::BuildSchedule(layout.disk_pages,
                               broadcast::DiskConfig::Figure1().rel_freqs),
      7);
  EXPECT_EQ(program.ToString(), "0 1 3 0 2 4 0 1 5 0 2 6");
}

}  // namespace
}  // namespace bdisk
