// Golden regression tests: pin exact outputs for fixed seeds. Any change
// to event ordering, RNG stream assignment, or model semantics shows up
// here first — deliberately brittle, to force such changes to be conscious
// (update the constants and note why in the commit).

#include <cstdint>

#include <gtest/gtest.h>

#include "core/system.h"
#include "sim/rng.h"

namespace bdisk {
namespace {

TEST(GoldenTest, RngStreamFirstDraws) {
  sim::Rng rng(20260704);
  // xoshiro256++ with SplitMix64 seeding: these values define the stream.
  const std::uint64_t first = rng.Next();
  const std::uint64_t second = rng.Next();
  sim::Rng again(20260704);
  EXPECT_EQ(again.Next(), first);
  EXPECT_EQ(again.Next(), second);
  EXPECT_NE(first, second);
  // And the canonical double stream stays in range with a fixed first
  // value across runs.
  sim::Rng d(42);
  const double u = d.NextDouble();
  sim::Rng d2(42);
  EXPECT_EQ(d2.NextDouble(), u);
}

TEST(GoldenTest, SmallSystemSteadyStateIsBitStable) {
  // Two *processes* would reproduce these exact numbers too; in-process we
  // assert two constructions agree to the bit, covering the whole stack
  // (pattern -> program -> server -> clients -> measurement).
  core::SystemConfig config;
  config.server_db_size = 100;
  config.disks = broadcast::DiskConfig{{10, 40, 50}, {3, 2, 1}};
  config.cache_size = 10;
  config.server_queue_size = 10;
  config.mc_think_time = 5.0;
  config.think_time_ratio = 25.0;
  config.seed = 424242;

  core::SteadyStateProtocol protocol;
  protocol.post_fill_accesses = 100;
  protocol.min_measured_accesses = 1000;
  protocol.max_measured_accesses = 2000;
  protocol.batch_size = 500;
  protocol.tolerance = 0.1;

  const core::RunResult a = core::System(config).RunSteadyState(protocol);
  const core::RunResult b = core::System(config).RunSteadyState(protocol);
  EXPECT_EQ(a.mean_response, b.mean_response);
  EXPECT_EQ(a.response_stats.Variance(), b.response_stats.Variance());
  EXPECT_EQ(a.requests_submitted, b.requests_submitted);
  EXPECT_EQ(a.requests_dropped, b.requests_dropped);
  EXPECT_EQ(a.mc_accesses, b.mc_accesses);
  EXPECT_EQ(a.sim_time_end, b.sim_time_end);
}

// Exact end-to-end outputs for all three delivery modes, captured from the
// pre-rewrite std::function/unordered_set event kernel. The zero-allocation
// kernel (intrusive handlers, generation-tagged ids, periodic slot timer)
// must reproduce every stream bit-for-bit: same event order, same RNG
// draws, same event count. Constants are hexfloats so the pin is exact.
struct ModeGolden {
  core::DeliveryMode mode;
  double mean_response;
  double variance;
  std::uint64_t count;
  std::uint64_t mc_accesses;
  std::uint64_t mc_pulls_sent;
  std::uint64_t requests_submitted;
  std::uint64_t requests_coalesced;
  std::uint64_t requests_dropped;
  double push_slot_frac;
  double pull_slot_frac;
  double idle_slot_frac;
  double sim_time_end;
  std::uint64_t events_executed;
};

TEST(GoldenTest, SteadyStateStreamsMatchPreKernelSwapPins) {
  const ModeGolden kGolden[] = {
      {core::DeliveryMode::kPurePush, 0x1.60189374bc6a7p+4,
       0x1.16371dfac03a6p+10, 1500, 1610, 0, 0, 0, 0, 0x1p+0, 0x0p+0, 0x0p+0,
       0x1.5928p+15, 45788},
      {core::DeliveryMode::kPurePull, 0x1.0d3b645a1cabcp+5,
       0x1.7e557cbee20e3p+12, 2000, 2110, 1040, 205450, 27590, 95163, 0x0p+0,
       0x1.fffe6a3590dfep-1, 0x1.95ca6f2026bc8p-17, 0x1.4301p+16, 498008},
      {core::DeliveryMode::kIpp, 0x1.d8dd2f1a9fbeap+4, 0x1.5c78959bf4953p+11,
       1500, 1610, 643, 109094, 16095, 64963, 0x1.fe10bbb49d06cp-2,
       0x1.00f7a225b17cap-1, 0x0p+0, 0x1.b442p+15, 336183},
  };

  for (const ModeGolden& g : kGolden) {
    SCOPED_TRACE(core::DeliveryModeName(g.mode));
    core::SystemConfig config;
    config.mode = g.mode;
    config.server_db_size = 100;
    config.disks = broadcast::DiskConfig{{10, 40, 50}, {3, 2, 1}};
    config.cache_size = 10;
    config.server_queue_size = 10;
    config.mc_think_time = 5.0;
    config.think_time_ratio = 25.0;
    config.pull_bw = 0.5;
    config.thres_perc = 0.1;
    config.seed = 424242;

    core::SteadyStateProtocol protocol;
    protocol.post_fill_accesses = 100;
    protocol.min_measured_accesses = 1000;
    protocol.max_measured_accesses = 2000;
    protocol.batch_size = 500;
    protocol.tolerance = 0.1;

    core::System system(config);
    const core::RunResult r = system.RunSteadyState(protocol);
    EXPECT_EQ(r.mean_response, g.mean_response);
    EXPECT_EQ(r.response_stats.Variance(), g.variance);
    EXPECT_EQ(r.response_stats.Count(), g.count);
    EXPECT_EQ(r.mc_accesses, g.mc_accesses);
    EXPECT_EQ(r.mc_pulls_sent, g.mc_pulls_sent);
    EXPECT_EQ(r.requests_submitted, g.requests_submitted);
    EXPECT_EQ(r.requests_coalesced, g.requests_coalesced);
    EXPECT_EQ(r.requests_dropped, g.requests_dropped);
    EXPECT_EQ(r.push_slot_frac, g.push_slot_frac);
    EXPECT_EQ(r.pull_slot_frac, g.pull_slot_frac);
    EXPECT_EQ(r.idle_slot_frac, g.idle_slot_frac);
    EXPECT_EQ(r.sim_time_end, g.sim_time_end);
    // The events_executed constants were pinned before VC event fusion.
    // Each fused arrival was exactly one heap event back then, so the sum
    // is invariant: fusion may only move events out of the heap, never
    // change how many arrivals happen or in what order. (Pure-Push has no
    // VC, so there the pin still holds exactly.)
    EXPECT_EQ(system.simulator().EventsExecuted() +
                  system.simulator().LazyArrivalsFused(),
              g.events_executed);
    if (g.mode == core::DeliveryMode::kPurePush) {
      EXPECT_EQ(system.simulator().EventsExecuted(), g.events_executed);
      EXPECT_EQ(system.simulator().LazyArrivalsFused(), 0U);
    } else {
      // Fusion is on by default and the VC dominates the event count, so
      // most dispatches must have left the heap.
      EXPECT_GT(system.simulator().LazyArrivalsFused(),
                system.simulator().EventsExecuted());
    }
  }
}

TEST(GoldenTest, ProgramForConfigMatchesSystemProgram) {
  core::SystemConfig config;
  config.server_db_size = 100;
  config.disks = broadcast::DiskConfig{{10, 40, 50}, {3, 2, 1}};
  config.cache_size = 10;
  config.chop_count = 20;
  const auto standalone = core::ProgramForConfig(config);
  core::System system(config);
  ASSERT_EQ(standalone.Length(), system.program().Length());
  for (std::uint32_t pos = 0; pos < standalone.Length(); ++pos) {
    ASSERT_EQ(standalone.PageAt(pos), system.program().PageAt(pos)) << pos;
  }
}

TEST(GoldenTest, McPatternForConfigMatchesSystemPattern) {
  core::SystemConfig config;
  config.server_db_size = 100;
  config.disks = broadcast::DiskConfig{{10, 40, 50}, {3, 2, 1}};
  config.cache_size = 10;
  config.noise = 0.35;
  config.seed = 777;
  const auto standalone = core::McPatternForConfig(config);
  core::System system(config);
  for (broadcast::PageId p = 0; p < 100; ++p) {
    ASSERT_EQ(standalone.Prob(p), system.mc_pattern().Prob(p)) << p;
  }
}

TEST(GoldenTest, Figure1ProgramText) {
  const auto layout = broadcast::BuildPushLayout(
      {0.30, 0.20, 0.15, 0.12, 0.10, 0.08, 0.05},
      broadcast::DiskConfig::Figure1(), 0, 0);
  const broadcast::BroadcastProgram program(
      broadcast::BuildSchedule(layout.disk_pages,
                               broadcast::DiskConfig::Figure1().rel_freqs),
      7);
  EXPECT_EQ(program.ToString(), "0 1 3 0 2 4 0 1 5 0 2 6");
}

}  // namespace
}  // namespace bdisk
