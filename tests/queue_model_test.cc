#include "analysis/queue_model.h"

#include <cmath>

#include <gtest/gtest.h>

namespace bdisk::analysis {
namespace {

TEST(MM1KTest, IdleSystem) {
  const MM1K queue{0.0, 0.5, 10};
  EXPECT_EQ(queue.BlockingProbability(), 0.0);
  EXPECT_EQ(queue.MeanInSystem(), 0.0);
  EXPECT_EQ(queue.StateProbability(0), 1.0);
  EXPECT_EQ(queue.Throughput(), 0.0);
  EXPECT_DOUBLE_EQ(queue.MeanResponse(), 2.0);  // 1/mu.
}

TEST(MM1KTest, StateProbabilitiesSumToOne) {
  const MM1K queue{0.7, 0.5, 20};
  double total = 0.0;
  for (std::uint32_t n = 0; n <= 20; ++n) {
    total += queue.StateProbability(n);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(MM1KTest, KnownSmallSystem) {
  // M/M/1/1 (no waiting room): blocking = rho/(1+rho).
  const MM1K queue{1.0, 1.0, 1};
  EXPECT_NEAR(queue.BlockingProbability(), 0.5, 1e-12);
  EXPECT_NEAR(queue.MeanInSystem(), 0.5, 1e-12);
  // Accepted requests see an empty server: response = 1/mu.
  EXPECT_NEAR(queue.MeanResponse(), 1.0, 1e-12);
}

TEST(MM1KTest, CriticallyLoadedUsesLimit) {
  // rho == 1: uniform state distribution, L = k/2.
  const MM1K queue{0.5, 0.5, 8};
  EXPECT_NEAR(queue.BlockingProbability(), 1.0 / 9.0, 1e-12);
  EXPECT_NEAR(queue.MeanInSystem(), 4.0, 1e-12);
}

TEST(MM1KTest, LightLoadMatchesMM1) {
  // With rho << 1 and large K, M/M/1/K ~ M/M/1: W = 1/(mu - lambda).
  const MM1K queue{0.1, 0.5, 100};
  EXPECT_LT(queue.BlockingProbability(), 1e-20);
  EXPECT_NEAR(queue.MeanResponse(), 1.0 / (0.5 - 0.1), 1e-6);
}

TEST(MM1KTest, OverloadBlocksMost) {
  // lambda = 10x mu: almost every arrival is dropped; throughput ~ mu.
  const MM1K queue{5.0, 0.5, 100};
  EXPECT_GT(queue.BlockingProbability(), 0.89);
  EXPECT_NEAR(queue.Throughput(), 0.5, 0.01);
  // The queue sits essentially full.
  EXPECT_GT(queue.MeanInSystem(), 98.0);
}

TEST(MM1KTest, BlockingMonotoneInLoad) {
  double prev = -1.0;
  for (const double lambda : {0.1, 0.3, 0.5, 0.7, 1.0, 2.0}) {
    const MM1K queue{lambda, 0.5, 10};
    EXPECT_GT(queue.BlockingProbability(), prev);
    prev = queue.BlockingProbability();
  }
}

TEST(MM1KDeathTest, RejectsBadParameters) {
  const MM1K bad_mu{1.0, 0.0, 10};
  EXPECT_DEATH(bad_mu.StateProbability(0), "service rate");
  const MM1K queue{1.0, 1.0, 10};
  EXPECT_DEATH(queue.StateProbability(11), "exceeds");
}

}  // namespace
}  // namespace bdisk::analysis
