#include "broadcast/page_ranking.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "sim/zipf.h"

namespace bdisk::broadcast {
namespace {

// 10-page toy database with strictly decreasing probabilities, so page id
// == rank.
std::vector<double> ToyProbs() { return bdisk::sim::ZipfPmf(10, 0.95); }

TEST(PageRankingTest, NoOffsetAssignsHottestToFastest) {
  const DiskConfig config{{2, 3, 5}, {3, 2, 1}};
  const PushLayout layout = BuildPushLayout(ToyProbs(), config, 0, 0);
  EXPECT_EQ(layout.disk_pages[0], (std::vector<PageId>{0, 1}));
  EXPECT_EQ(layout.disk_pages[1], (std::vector<PageId>{2, 3, 4}));
  EXPECT_EQ(layout.disk_pages[2], (std::vector<PageId>{5, 6, 7, 8, 9}));
  EXPECT_TRUE(layout.pull_only.empty());
}

TEST(PageRankingTest, OffsetShiftsHotPagesToSlowestDisk) {
  // Offset 2: the 2 hottest pages move to the slowest disk; everything
  // else shifts up.
  const DiskConfig config{{2, 3, 5}, {3, 2, 1}};
  const PushLayout layout = BuildPushLayout(ToyProbs(), config, 2, 0);
  EXPECT_EQ(layout.disk_pages[0], (std::vector<PageId>{2, 3}));
  EXPECT_EQ(layout.disk_pages[1], (std::vector<PageId>{4, 5, 6}));
  EXPECT_EQ(layout.disk_pages[2], (std::vector<PageId>{7, 8, 9, 0, 1}));
}

TEST(PageRankingTest, TruncationRemovesColdestFromSlowestDisk) {
  const DiskConfig config{{2, 3, 5}, {3, 2, 1}};
  const PushLayout layout = BuildPushLayout(ToyProbs(), config, 0, 3);
  // Coldest 3 pages (7, 8, 9) become pull-only, coldest first.
  EXPECT_EQ(layout.pull_only, (std::vector<PageId>{9, 8, 7}));
  EXPECT_EQ(layout.effective_config.sizes,
            (std::vector<std::uint32_t>{2, 3, 2}));
  EXPECT_EQ(layout.disk_pages[2], (std::vector<PageId>{5, 6}));
}

TEST(PageRankingTest, TruncationEliminatesSlowestThenShrinksMiddle) {
  // Chop 6 of 10: disk 3 (5 pages) fully gone, disk 2 loses one.
  const DiskConfig config{{2, 3, 5}, {3, 2, 1}};
  const PushLayout layout = BuildPushLayout(ToyProbs(), config, 0, 6);
  EXPECT_EQ(layout.effective_config.sizes,
            (std::vector<std::uint32_t>{2, 2, 0}));
  EXPECT_TRUE(layout.disk_pages[2].empty());
  EXPECT_EQ(layout.disk_pages[1], (std::vector<PageId>{2, 3}));
  EXPECT_EQ(layout.pull_only.size(), 6U);
}

TEST(PageRankingTest, OffsetAfterTruncationLandsOnSlowestNonEmptyDisk) {
  // Disk 3 fully chopped; offset pages must land at the tail of disk 2.
  const DiskConfig config{{2, 3, 5}, {3, 2, 1}};
  const PushLayout layout = BuildPushLayout(ToyProbs(), config, 2, 5);
  // Surviving ranked pages: 0..4; rotation by 2 -> 2,3,4,0,1.
  EXPECT_EQ(layout.disk_pages[0], (std::vector<PageId>{2, 3}));
  EXPECT_EQ(layout.disk_pages[1], (std::vector<PageId>{4, 0, 1}));
  EXPECT_TRUE(layout.disk_pages[2].empty());
}

TEST(PageRankingTest, EveryPageExactlyOnceAcrossDisksAndPullOnly) {
  const DiskConfig config{{2, 3, 5}, {3, 2, 1}};
  for (const std::uint32_t chop : {0U, 1U, 4U, 7U, 9U}) {
    const PushLayout layout = BuildPushLayout(ToyProbs(), config, 1, chop);
    std::set<PageId> seen;
    std::size_t total = 0;
    for (const auto& disk : layout.disk_pages) {
      for (const PageId p : disk) {
        seen.insert(p);
        ++total;
      }
    }
    for (const PageId p : layout.pull_only) {
      seen.insert(p);
      ++total;
    }
    EXPECT_EQ(total, 10U) << "chop=" << chop;
    EXPECT_EQ(seen.size(), 10U) << "chop=" << chop;
  }
}

TEST(PageRankingTest, RanksByProbabilityNotPageId) {
  // Non-monotone probabilities: page 5 hottest, page 0 coldest.
  std::vector<double> probs = {0.05, 0.1, 0.1, 0.15, 0.2, 0.4};
  const DiskConfig config{{1, 2, 3}, {3, 2, 1}};
  const PushLayout layout = BuildPushLayout(probs, config, 0, 0);
  EXPECT_EQ(layout.disk_pages[0], (std::vector<PageId>{5}));
  EXPECT_EQ(layout.disk_pages[1], (std::vector<PageId>{4, 3}));
  // Ties (pages 1 and 2) break toward the lower id being hotter.
  EXPECT_EQ(layout.disk_pages[2], (std::vector<PageId>{1, 2, 0}));
}

TEST(PageRankingTest, PaperScaleConfigShapes) {
  const auto probs = bdisk::sim::ZipfPmf(1000, 0.95);
  const PushLayout layout =
      BuildPushLayout(probs, DiskConfig::Paper(), 100, 0);
  EXPECT_EQ(layout.disk_pages[0].size(), 100U);
  EXPECT_EQ(layout.disk_pages[1].size(), 400U);
  EXPECT_EQ(layout.disk_pages[2].size(), 500U);
  // With Offset = CacheSize = 100, the fastest disk holds ranks 100..199,
  // i.e. pages 100..199 (identity mapping for Zipf by rank).
  EXPECT_EQ(layout.disk_pages[0].front(), 100U);
  EXPECT_EQ(layout.disk_pages[0].back(), 199U);
  // The slowest disk ends with the 100 hottest pages.
  EXPECT_EQ(layout.disk_pages[2].back(), 99U);
}

TEST(PageRankingDeathTest, RejectsChopOfWholeDatabase) {
  const DiskConfig config{{2, 3, 5}, {3, 2, 1}};
  EXPECT_DEATH(BuildPushLayout(ToyProbs(), config, 0, 10), "entire");
}

TEST(PageRankingDeathTest, RejectsSizeMismatch) {
  const DiskConfig config{{2, 3}, {2, 1}};  // Covers 5 pages, probs has 10.
  EXPECT_DEATH(BuildPushLayout(ToyProbs(), config, 0, 0), "cover");
}

TEST(PageRankingDeathTest, RejectsOffsetBeyondRemaining) {
  const DiskConfig config{{2, 3, 5}, {3, 2, 1}};
  EXPECT_DEATH(BuildPushLayout(ToyProbs(), config, 5, 6), "offset");
}

}  // namespace
}  // namespace bdisk::broadcast
