#include "workload/think_time.h"

#include <gtest/gtest.h>

namespace bdisk::workload {
namespace {

TEST(ThinkTimeTest, FixedIsConstant) {
  const ThinkTime think = ThinkTime::Fixed(20.0);
  sim::Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(think.Next(rng), 20.0);
  EXPECT_EQ(think.Mean(), 20.0);
  EXPECT_EQ(think.kind(), ThinkTime::Kind::kFixed);
}

TEST(ThinkTimeTest, ExponentialHasRequestedMean) {
  const ThinkTime think = ThinkTime::Exponential(0.08);  // TTR 250 regime.
  sim::Rng rng(2);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = think.Next(rng);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.08, 0.002);
  EXPECT_EQ(think.kind(), ThinkTime::Kind::kExponential);
}

TEST(ThinkTimeTest, ExponentialVaries) {
  const ThinkTime think = ThinkTime::Exponential(5.0);
  sim::Rng rng(3);
  const double a = think.Next(rng);
  const double b = think.Next(rng);
  EXPECT_NE(a, b);
}

TEST(ThinkTimeDeathTest, RejectsNonPositiveMean) {
  EXPECT_DEATH(ThinkTime::Fixed(0.0), "positive");
  EXPECT_DEATH(ThinkTime::Exponential(-1.0), "positive");
}

}  // namespace
}  // namespace bdisk::workload
