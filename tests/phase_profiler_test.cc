// PhaseProfiler unit tests: frame stack discipline (sampling, forcing,
// depth overflow), ops attribution, the scaled exports, and the
// bdisk-prof-v1 / folded / Chrome-trace serializations.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/phase_profiler.h"
#include "obs/span_assembler.h"

namespace bdisk::obs {
namespace {

// Closes a frame with the flag Enter returned — what PhaseScope does.
// An untimed frame has no state to unwind, so only timed frames exit.
void ExitFrame(PhaseProfiler& profiler, bool timed) {
  if (timed) profiler.ExitTimed();
}

TEST(PhaseProfilerTest, CountsEveryCallButTimesOnlySampled) {
  PhaseProfiler profiler;
  // server.slot samples 1-in-128 ((calls & 127) == 0): of 256 top-level
  // calls, exactly the 128th and 256th are timed.
  for (int i = 0; i < 256; ++i) {
    ExitFrame(profiler, profiler.Enter(Phase::kServerSlot));
  }
  EXPECT_EQ(profiler.Calls(Phase::kServerSlot), 256U);
  EXPECT_EQ(profiler.TimedCalls(Phase::kServerSlot), 2U);
  EXPECT_EQ(profiler.OpenDepth(), 0);
}

TEST(PhaseProfilerTest, TimedParentForcesChildrenButRunDoesNot) {
  PhaseProfiler profiler;
  // run is always timed but must not force its children (it would defeat
  // sampling for the whole run).
  const bool run = profiler.Enter(Phase::kRun);
  EXPECT_TRUE(run);
  ExitFrame(profiler, profiler.Enter(Phase::kServerSlot));  // (1&127)!=0.
  ExitFrame(profiler, run);
  EXPECT_EQ(profiler.TimedCalls(Phase::kRun), 1U);
  EXPECT_EQ(profiler.TimedCalls(Phase::kServerSlot), 0U);

  // A timed non-run parent forces every child, so its subtree is
  // complete. server.queue's own stride (1-in-256) never fires in 128
  // calls, so its one timed call can only come from forcing.
  for (int i = 0; i < 128; ++i) {
    const bool span = profiler.Enter(Phase::kKernelSpan);  // 128th timed.
    const bool queue = profiler.Enter(Phase::kServerQueue);
    ExitFrame(profiler, queue);
    ExitFrame(profiler, span);
  }
  EXPECT_EQ(profiler.TimedCalls(Phase::kKernelSpan), 1U);
  EXPECT_EQ(profiler.TimedCalls(Phase::kServerQueue), 1U);
}

TEST(PhaseProfilerTest, OpsAccumulateOnTheOwningScope) {
  PhaseProfiler profiler;
  {
    PhaseScope drain(&profiler, Phase::kDrain);
    drain.AddOps(10);
    {
      PhaseScope vc(&profiler, Phase::kVcArrival);
      vc.AddOps(7);
    }
    drain.AddOps(5);
  }
  EXPECT_EQ(profiler.Ops(Phase::kDrain), 15U);
  EXPECT_EQ(profiler.Ops(Phase::kVcArrival), 7U);
}

TEST(PhaseProfilerTest, DepthOverflowSkipsFramesButStaysBalanced) {
  PhaseProfiler profiler;
  // Only timed frames occupy stack slots; run (mask 0) wants one at every
  // nesting level, so past kMaxDepth = 16 the rest degrade to untimed and
  // the overflow counter records them.
  constexpr int kDeep = 40;
  std::vector<bool> timed;
  for (int i = 0; i < kDeep; ++i) timed.push_back(profiler.Enter(Phase::kRun));
  EXPECT_GT(profiler.DepthOverflow(), 0U);
  for (int i = kDeep; i-- > 0;) ExitFrame(profiler, timed[i]);
  EXPECT_EQ(profiler.OpenDepth(), 0);
  EXPECT_EQ(profiler.Calls(Phase::kRun), static_cast<std::uint64_t>(kDeep));
  EXPECT_EQ(profiler.TimedCalls(Phase::kRun), 16U);
}

TEST(PhaseProfilerTest, EstimatesScaleSampledTicksToAllCalls) {
  PhaseProfiler profiler;
  const bool run = profiler.Enter(Phase::kRun);
  for (int i = 0; i < 256; ++i) {
    ExitFrame(profiler, profiler.Enter(Phase::kMcRequest));  // Mask 0.
  }
  ExitFrame(profiler, run);
  profiler.Finalize();
  EXPECT_GT(profiler.NsPerTick(), 0.0);
  // Every call timed, so scaling is 1:1; a leaf's total bounds its self.
  EXPECT_EQ(profiler.TimedCalls(Phase::kMcRequest), 256U);
  EXPECT_GT(profiler.EstTotalNs(Phase::kMcRequest), 0.0);
  EXPECT_GE(profiler.EstTotalNs(Phase::kMcRequest),
            profiler.EstSelfNs(Phase::kMcRequest));
}

TEST(PhaseProfilerTest, MergeIntoPublishesProfMetrics) {
  PhaseProfiler profiler;
  const bool run = profiler.Enter(Phase::kRun);
  ExitFrame(profiler, profiler.Enter(Phase::kMcRequest));
  ExitFrame(profiler, run);
  MetricsRegistry registry;
  profiler.MergeInto(&registry);
  EXPECT_EQ(registry.GetCounter("prof.run.calls")->Value(), 1U);
  EXPECT_EQ(registry.GetCounter("prof.mc.request.calls")->Value(), 1U);
  EXPECT_GT(registry.GetGauge("prof.ns_per_tick")->Value(), 0.0);
  // Untouched phases stay out of the snapshot.
  const std::string json = registry.ToJson();
  EXPECT_EQ(json.find("prof.fault.judge"), std::string::npos);
}

TEST(PhaseProfilerTest, ProfJsonRoundTripsThroughParser) {
  PhaseProfiler profiler;
  profiler.SetBackend("wheel");
  const bool run = profiler.Enter(Phase::kRun);
  ExitFrame(profiler, profiler.Enter(Phase::kMcRequest));
  ExitFrame(profiler, run);
  const std::string doc = profiler.ToProfJson();
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(doc, &root, &error)) << error;
  ASSERT_NE(root.Find("schema"), nullptr);
  EXPECT_EQ(root.Find("schema")->string, "bdisk-prof-v1");
  EXPECT_EQ(root.Find("backend")->string, "wheel");
  const JsonValue* phases = root.Find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_NE(phases->Find("run"), nullptr);
  ASSERT_NE(phases->Find("mc.request"), nullptr);
  EXPECT_EQ(phases->Find("mc.request")->Find("calls")->number, 1.0);
}

TEST(PhaseProfilerTest, FoldedStacksCarryFullPaths) {
  PhaseProfiler profiler;
  const bool run = profiler.Enter(Phase::kRun);
  for (int i = 0; i < 128; ++i) {
    const bool span = profiler.Enter(Phase::kKernelSpan);  // 128th timed.
    const bool slot = profiler.Enter(Phase::kServerSlot);  // Forced then.
    ExitFrame(profiler, slot);
    ExitFrame(profiler, span);
  }
  ExitFrame(profiler, run);
  const std::string folded = profiler.ToFolded();
  EXPECT_NE(folded.find("run;kernel.span;server.slot "), std::string::npos)
      << folded;
  EXPECT_NE(folded.find("run "), std::string::npos) << folded;
}

TEST(PhaseProfilerTest, ChromeTraceParsesAndCarriesBothTracks) {
  PhaseProfiler profiler;
  const bool run = profiler.Enter(Phase::kRun);
  ExitFrame(profiler, profiler.Enter(Phase::kMcRequest));
  ExitFrame(profiler, run);

  RequestSpan span;
  span.client = 0;
  span.page = 7;
  span.outcome = SpanOutcome::kPullServed;
  span.request_time = 10.0;
  span.submit_time = 10.0;
  span.slot_time = 12.0;
  span.delivery_time = 13.0;
  span.response = 3.0;
  const std::vector<RequestSpan> spans = {span};

  const std::string doc = profiler.ToChromeTrace(&spans);
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(doc, &root, &error)) << error;
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::kArray);
  bool saw_wall = false, saw_sim = false;
  for (const JsonValue& event : events->array) {
    const JsonValue* cat = event.Find("cat");
    if (cat == nullptr) continue;
    if (cat->string == "wall") saw_wall = true;
    if (cat->string == "sim") saw_sim = true;
  }
  EXPECT_TRUE(saw_wall);
  EXPECT_TRUE(saw_sim);
}

TEST(PhaseProfilerTest, SliceRingKeepsFirstNAndCountsTheRest) {
  PhaseProfiler profiler(/*slice_capacity=*/4);
  for (int i = 0; i < 16; ++i) {
    const bool run = profiler.Enter(Phase::kRun);  // Mask 0: always timed.
    ExitFrame(profiler, run);
  }
  EXPECT_EQ(profiler.SliceCount(), 4U);
  EXPECT_EQ(profiler.SlicesDropped(), 12U);
}

}  // namespace
}  // namespace bdisk::obs
