#include "workload/access_pattern.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "workload/access_generator.h"

namespace bdisk::workload {
namespace {

TEST(AccessPatternTest, ZipfIdentityMapping) {
  const AccessPattern pattern = AccessPattern::Zipf(100, 0.95);
  EXPECT_EQ(pattern.DbSize(), 100U);
  // Page id == rank: probabilities strictly decrease with page id.
  for (PageId p = 1; p < 100; ++p) {
    EXPECT_LT(pattern.Prob(p), pattern.Prob(p - 1));
  }
}

TEST(AccessPatternTest, ExplicitProbabilities) {
  const AccessPattern pattern({0.25, 0.75});
  EXPECT_EQ(pattern.Prob(1), 0.75);
}

TEST(AccessPatternTest, RankedPagesSortedByProbability) {
  const AccessPattern pattern({0.2, 0.5, 0.3});
  EXPECT_EQ(pattern.RankedPages(), (std::vector<PageId>{1, 2, 0}));
}

TEST(AccessPatternTest, NoiseZeroIsIdentity) {
  const AccessPattern base = AccessPattern::Zipf(50, 0.95);
  sim::Rng rng(1);
  const AccessPattern same = base.WithNoise(0.0, rng);
  for (PageId p = 0; p < 50; ++p) EXPECT_EQ(same.Prob(p), base.Prob(p));
}

TEST(AccessPatternTest, NoisePreservesTheDistributionMultiset) {
  const AccessPattern base = AccessPattern::Zipf(50, 0.95);
  sim::Rng rng(2);
  const AccessPattern noisy = base.WithNoise(0.35, rng);
  // Same probabilities, different assignment: totals match.
  const double total = std::accumulate(noisy.probs().begin(),
                                       noisy.probs().end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
  std::vector<double> a = base.probs();
  std::vector<double> b = noisy.probs();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(AccessPatternTest, NoisePerturbsTheMapping) {
  const AccessPattern base = AccessPattern::Zipf(100, 0.95);
  sim::Rng rng(3);
  const AccessPattern noisy = base.WithNoise(0.35, rng);
  int moved = 0;
  for (PageId p = 0; p < 100; ++p) {
    if (noisy.Prob(p) != base.Prob(p)) ++moved;
  }
  EXPECT_GT(moved, 10);  // 35% noise must move a substantial fraction.
}

TEST(AccessGeneratorTest, DrawsFollowThePattern) {
  const AccessPattern pattern({0.8, 0.1, 0.1});
  AccessGenerator generator(pattern);
  sim::Rng rng(4);
  int zero = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    if (generator.Next(rng) == 0) ++zero;
  }
  EXPECT_NEAR(static_cast<double>(zero) / draws, 0.8, 0.01);
}

TEST(AccessPatternDeathTest, RejectsUnnormalized) {
  EXPECT_DEATH(AccessPattern({0.5, 0.1}), "sum to 1");
}

TEST(AccessPatternDeathTest, RejectsNegative) {
  EXPECT_DEATH(AccessPattern({1.5, -0.5}), "non-negative");
}

}  // namespace
}  // namespace bdisk::workload
