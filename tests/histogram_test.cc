#include "sim/histogram.h"

#include <gtest/gtest.h>

namespace bdisk::sim {
namespace {

TEST(HistogramTest, BucketsObservationsCorrectly) {
  Histogram h(0.0, 10.0, 5);  // Cells of width 2.
  h.Add(0.0);
  h.Add(1.9);
  h.Add(2.0);
  h.Add(9.99);
  EXPECT_EQ(h.Count(), 4U);
  EXPECT_EQ(h.BucketCount(0), 2U);
  EXPECT_EQ(h.BucketCount(1), 1U);
  EXPECT_EQ(h.BucketCount(4), 1U);
  EXPECT_EQ(h.Underflow(), 0U);
  EXPECT_EQ(h.Overflow(), 0U);
}

TEST(HistogramTest, UnderAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-1.0);
  h.Add(10.0);  // hi is exclusive.
  h.Add(100.0);
  EXPECT_EQ(h.Underflow(), 1U);
  EXPECT_EQ(h.Overflow(), 2U);
  EXPECT_EQ(h.Count(), 3U);
}

TEST(HistogramTest, BucketLowEdges) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.BucketLow(0), 10.0);
  EXPECT_DOUBLE_EQ(h.BucketLow(1), 12.5);
  EXPECT_DOUBLE_EQ(h.BucketLow(3), 17.5);
}

TEST(HistogramTest, MedianOfUniformFill) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.Add(i + 0.5);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.1), 10.0, 1.5);
}

TEST(HistogramTest, QuantileInterpolatesExactlyAtBucketEdges) {
  // Two occupied buckets separated by an empty one: quantiles that land on
  // a cumulative-count boundary sit on the bucket edge, interior quantiles
  // interpolate linearly within the bucket, and the result never leaves the
  // observed [Min, Max] envelope.
  Histogram h(0.0, 10.0, 5);  // Cells of width 2.
  for (int i = 0; i < 10; ++i) h.Add(1.0);  // Bucket [0, 2).
  for (int i = 0; i < 10; ++i) h.Add(5.0);  // Bucket [4, 6).
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1.0);   // Clamped up to Min().
  EXPECT_DOUBLE_EQ(h.Quantile(0.25), 1.0);  // Middle of the first bucket.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 2.0);   // Upper edge of the first.
  EXPECT_DOUBLE_EQ(h.Quantile(0.75), 5.0);  // Middle of the second bucket.
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 5.0);   // Clamped down to Max().
}

TEST(HistogramTest, QuantileWithUnderflowClampsToObservations) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-5.0);  // Underflow counts toward the cumulative total at lo.
  h.Add(1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  // Interpolation alone would say 2.0 (the upper edge of the containing
  // bucket), but no observation exceeds 1.0.
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1.0);
}

TEST(HistogramTest, QuantileAllOverflowReturnsObservedValue) {
  // Pre-clamp this reported hi (10.0), a value 5x below the single real
  // observation. The [Min, Max] clamp pins it to the data instead.
  Histogram h(0.0, 10.0, 5);
  h.Add(50.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 50.0);
}

TEST(HistogramTest, TracksMinAndMaxAcrossRange) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-1.0);
  h.Add(3.0);
  h.Add(50.0);
  EXPECT_DOUBLE_EQ(h.Min(), -1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 50.0);
  h.Reset();
  h.Add(4.0);
  EXPECT_DOUBLE_EQ(h.Min(), 4.0);
  EXPECT_DOUBLE_EQ(h.Max(), 4.0);
}

TEST(HistogramTest, LowCountQuantileNeverExceedsMax) {
  // The OBSERVABILITY.md §1 quirk this guards against: with one in-range
  // observation, bucket interpolation lands at the middle/upper reaches of
  // the containing cell, above the only value ever recorded.
  Histogram h(0.0, 1000.0, 10);  // Cells of width 100.
  h.Add(7.0);
  EXPECT_LE(h.Quantile(0.5), 7.0);
  EXPECT_LE(h.Quantile(0.99), 7.0);
  EXPECT_GE(h.Quantile(0.01), 7.0);
}

TEST(HistogramTest, QuantileEmptyReturnsLo) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, ResetPreservesShapeAndReusesBuffer) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-1.0);
  h.Add(3.0);
  h.Add(50.0);
  h.Reset();
  EXPECT_EQ(h.Count(), 0U);
  EXPECT_EQ(h.Underflow(), 0U);
  EXPECT_EQ(h.Overflow(), 0U);
  // Shape survives: the same value lands in the same bucket as before.
  EXPECT_EQ(h.NumBuckets(), 5U);
  EXPECT_DOUBLE_EQ(h.BucketLow(1), 2.0);
  h.Add(3.0);
  EXPECT_EQ(h.BucketCount(1), 1U);
  EXPECT_EQ(h.Count(), 1U);
}

TEST(HistogramTest, AsciiRenderingMentionsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.Add(0.5);
  h.Add(0.6);
  h.Add(1.5);
  const std::string art = h.ToAscii(10);
  EXPECT_NE(art.find("##"), std::string::npos);
  EXPECT_NE(art.find('\n'), std::string::npos);
}

TEST(HistogramDeathTest, RejectsEmptyRange) {
  EXPECT_DEATH(Histogram(5.0, 5.0, 3), "non-empty");
}

}  // namespace
}  // namespace bdisk::sim
