#include "sim/simulator.h"

#include <cstdint>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "sim/process.h"

namespace bdisk::sim {
namespace {

TEST(SimulatorTest, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0.0);
  EXPECT_EQ(sim.EventsExecuted(), 0U);
}

TEST(SimulatorTest, RunAdvancesClockToEventTimes) {
  Simulator sim;
  std::vector<double> observed;
  sim.ScheduleAt(2.5, [&] { observed.push_back(sim.Now()); });
  sim.ScheduleAt(1.0, [&] { observed.push_back(sim.Now()); });
  sim.Run();
  EXPECT_EQ(observed, (std::vector<double>{1.0, 2.5}));
  EXPECT_EQ(sim.Now(), 2.5);
  EXPECT_EQ(sim.EventsExecuted(), 2U);
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.ScheduleAt(10.0, [&] {
    sim.ScheduleAfter(5.0, [&] { fired_at = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(fired_at, 15.0);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1.0, [&] { ++fired; });
  sim.ScheduleAt(2.0, [&] { ++fired; });
  sim.ScheduleAt(3.0, [&] { ++fired; });
  sim.RunUntil(2.0);
  EXPECT_EQ(fired, 2);  // Events at exactly the deadline run.
  EXPECT_EQ(sim.Now(), 2.0);
  EXPECT_EQ(sim.PendingEvents(), 1U);
}

TEST(SimulatorTest, RunUntilAdvancesClockToDeadlineWhenIdle) {
  Simulator sim;
  sim.RunUntil(100.0);
  EXPECT_EQ(sim.Now(), 100.0);
}

TEST(SimulatorTest, StopFromInsideCallback) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1.0, [&] {
    ++fired;
    sim.Stop();
  });
  sim.ScheduleAt(2.0, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.PendingEvents(), 1U);
  // Run can be resumed afterwards.
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, SelfReschedulingEventChain) {
  Simulator sim;
  int count = 0;
  // The scheduled callable must fit EventFn's two-pointer inline budget, so
  // the chain logic lives in a std::function and a one-pointer trampoline
  // is what actually gets scheduled.
  std::function<void()> tick = [&] {
    ++count;
    if (count < 100) sim.ScheduleAfter(1.0, [&tick] { tick(); });
  };
  sim.ScheduleAt(0.0, [&tick] { tick(); });
  sim.Run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sim.Now(), 99.0);
}

TEST(SimulatorTest, StepExecutesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1.0, [&] { ++fired; });
  sim.ScheduleAt(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, CancelledEventDoesNotRun) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.ScheduleAt(1.0, [&] { fired = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(fired);
}

// A handler for exercising the periodic fast path through the Simulator.
class PeriodicCounter : public EventHandler {
 public:
  explicit PeriodicCounter(Simulator* s) : sim_(s) {}
  std::vector<double> fire_times;

 private:
  void OnEvent() override { fire_times.push_back(sim_->Now()); }
  Simulator* sim_;
};

TEST(SimulatorTest, SchedulePeriodicFiresEveryInterval) {
  Simulator sim;
  PeriodicCounter counter(&sim);
  sim.SchedulePeriodic(2.0, &counter);
  sim.RunUntil(7.0);
  EXPECT_EQ(counter.fire_times, (std::vector<double>{2.0, 4.0, 6.0}));
  EXPECT_EQ(sim.Now(), 7.0);
  EXPECT_EQ(sim.PendingEvents(), 1U);  // Still armed for t=8.
}

TEST(SimulatorTest, CancelPeriodicStopsTheTimer) {
  Simulator sim;
  PeriodicCounter counter(&sim);
  const PeriodicId id = sim.SchedulePeriodic(2.0, &counter);
  sim.RunUntil(5.0);
  EXPECT_EQ(counter.fire_times.size(), 2U);
  sim.CancelPeriodic(id);
  EXPECT_EQ(sim.PendingEvents(), 0U);
  sim.RunUntil(20.0);
  EXPECT_EQ(counter.fire_times.size(), 2U);
}

TEST(SimulatorTest, PeriodicInterleavesWithOneShotsDeterministically) {
  Simulator sim;
  std::vector<int> order;
  struct Tagger : EventHandler {
    std::vector<int>* order;
    void OnEvent() override { order->push_back(0); }
  } tagger;
  tagger.order = &order;
  // Periodic armed before the same-time one-shot: FIFO puts it first at
  // t=1; the one-shot scheduled later lands second.
  sim.SchedulePeriodic(1.0, &tagger);
  sim.ScheduleAt(1.0, [&order] { order.push_back(1); });
  sim.ScheduleAt(2.0, [&order] { order.push_back(2); });
  sim.RunUntil(2.0);
  // t=2: the one-shot was scheduled (seq drawn) before the periodic's
  // re-arm, so it precedes the second periodic fire.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 0}));
}

// Runs a workload that mixes one periodic slot timer with handler-driven
// one-shot scheduling (the System's actual shape) and records every fire.
// `batched` toggles the span fast path; the trace must not depend on it.
std::vector<double> RunMixedWorkload(QueueKind kind, bool batched,
                                     std::uint64_t* spans_out) {
  Simulator sim(kind);
  sim.SetBatchedPeriodic(batched);
  std::vector<double> trace;
  // The periodic handler occasionally schedules a one-shot (a "pull
  // arrival") that lands mid-span and must break the batch exactly there.
  struct SlotHandler : EventHandler {
    Simulator* sim;
    std::vector<double>* trace;
    int slot = 0;
    void OnEvent() override {
      trace->push_back(sim->Now());
      ++slot;
      if (slot % 7 == 0) {
        Simulator* s = sim;
        std::vector<double>* t = trace;
        s->ScheduleAfter(2.5, [s, t] { t->push_back(-s->Now()); });
      }
    }
  } handler;
  handler.sim = &sim;
  handler.trace = &trace;
  sim.SchedulePeriodic(1.0, &handler);
  sim.RunUntil(500.0);
  EXPECT_EQ(sim.Now(), 500.0);
  if (spans_out != nullptr) *spans_out = sim.PeriodicSpans();
  return trace;
}

TEST(SimulatorTest, BatchedPeriodicSpansMatchSteppedExecution) {
  for (const QueueKind kind : {QueueKind::kHeap, QueueKind::kWheel}) {
    std::uint64_t batched_spans = 0;
    std::uint64_t stepped_spans = 0;
    const std::vector<double> batched =
        RunMixedWorkload(kind, /*batched=*/true, &batched_spans);
    const std::vector<double> stepped =
        RunMixedWorkload(kind, /*batched=*/false, &stepped_spans);
    EXPECT_EQ(batched, stepped);  // Bit-identical trajectory.
    EXPECT_GT(batched_spans, 0U);  // The fast path actually engaged...
    EXPECT_EQ(stepped_spans, 0U);  // ...and the A/B switch actually works.
  }
}

TEST(SimulatorTest, BatchedSpanCountsEventsIdentically) {
  // events_executed feeds the obs kernel profile and the fusion invariant;
  // the span loop must bump it exactly like Step() would.
  for (const bool batched : {true, false}) {
    Simulator sim;
    sim.SetBatchedPeriodic(batched);
    PeriodicCounter counter(&sim);
    sim.SchedulePeriodic(2.0, &counter);
    sim.RunUntil(100.0);
    EXPECT_EQ(sim.EventsExecuted(), 50U);
    EXPECT_EQ(counter.fire_times.size(), 50U);
  }
}

TEST(SimulatorTest, BatchedSpanHonoursStopAndDeadline) {
  Simulator sim;
  ASSERT_TRUE(sim.BatchedPeriodic());  // Default on.
  struct Stopper : EventHandler {
    Simulator* sim;
    int fires = 0;
    void OnEvent() override {
      if (++fires == 3) sim->Stop();
    }
  } stopper;
  stopper.sim = &sim;
  sim.SchedulePeriodic(1.0, &stopper);
  sim.Run();
  EXPECT_EQ(stopper.fires, 3);
  EXPECT_EQ(sim.Now(), 3.0);
  // Resuming with a deadline mid-interval: the span must not overshoot.
  sim.RunUntil(5.5);
  EXPECT_EQ(stopper.fires, 5);
  EXPECT_EQ(sim.Now(), 5.5);
}

TEST(SimulatorTest, BatchedSpanStopsWhenHandlerCancelsTheTimer) {
  Simulator sim;
  struct SelfCancel : EventHandler {
    Simulator* sim;
    PeriodicId id = 0;
    int fires = 0;
    void OnEvent() override {
      if (++fires == 4) sim->CancelPeriodic(id);
    }
  } handler;
  handler.sim = &sim;
  handler.id = sim.SchedulePeriodic(1.0, &handler);
  sim.RunUntil(100.0);
  EXPECT_EQ(handler.fires, 4);
  EXPECT_EQ(sim.PendingEvents(), 0U);
}

// A minimal Process subclass exercising the wakeup machinery.
class CountingProcess : public Process {
 public:
  explicit CountingProcess(Simulator* s) : Process(s) {}
  void Go(SimTime delay) { ScheduleWakeup(delay); }
  void Abort() { CancelWakeup(); }
  bool Pending() const { return WakeupPending(); }
  int wakeups = 0;

 protected:
  void OnWakeup() override {
    ++wakeups;
    if (wakeups < 3) ScheduleWakeup(2.0);
  }
};

TEST(ProcessTest, WakeupChainRuns) {
  Simulator sim;
  CountingProcess p(&sim);
  p.Go(1.0);
  EXPECT_TRUE(p.Pending());
  sim.Run();
  EXPECT_EQ(p.wakeups, 3);
  EXPECT_EQ(sim.Now(), 5.0);  // 1 + 2 + 2.
  EXPECT_FALSE(p.Pending());
}

TEST(ProcessTest, ReschedulingReplacesPendingWakeup) {
  Simulator sim;
  CountingProcess p(&sim);
  p.Go(10.0);
  p.Go(1.0);  // Replaces the 10.0 wakeup.
  sim.RunUntil(2.0);
  EXPECT_EQ(p.wakeups, 1);  // The 1.0 wakeup fired; the 10.0 one never will.
  sim.Run();
  EXPECT_EQ(p.wakeups, 3);  // Chain continues at 3.0 and 5.0 only.
  EXPECT_EQ(sim.Now(), 5.0);
}

TEST(ProcessTest, CancelWakeupPreventsFiring) {
  Simulator sim;
  CountingProcess p(&sim);
  p.Go(1.0);
  p.Abort();
  sim.Run();
  EXPECT_EQ(p.wakeups, 0);
}

}  // namespace
}  // namespace bdisk::sim
