#include "sim/simulator.h"

#include <vector>

#include <gtest/gtest.h>

#include "sim/process.h"

namespace bdisk::sim {
namespace {

TEST(SimulatorTest, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0.0);
  EXPECT_EQ(sim.EventsExecuted(), 0U);
}

TEST(SimulatorTest, RunAdvancesClockToEventTimes) {
  Simulator sim;
  std::vector<double> observed;
  sim.ScheduleAt(2.5, [&] { observed.push_back(sim.Now()); });
  sim.ScheduleAt(1.0, [&] { observed.push_back(sim.Now()); });
  sim.Run();
  EXPECT_EQ(observed, (std::vector<double>{1.0, 2.5}));
  EXPECT_EQ(sim.Now(), 2.5);
  EXPECT_EQ(sim.EventsExecuted(), 2U);
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.ScheduleAt(10.0, [&] {
    sim.ScheduleAfter(5.0, [&] { fired_at = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(fired_at, 15.0);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1.0, [&] { ++fired; });
  sim.ScheduleAt(2.0, [&] { ++fired; });
  sim.ScheduleAt(3.0, [&] { ++fired; });
  sim.RunUntil(2.0);
  EXPECT_EQ(fired, 2);  // Events at exactly the deadline run.
  EXPECT_EQ(sim.Now(), 2.0);
  EXPECT_EQ(sim.PendingEvents(), 1U);
}

TEST(SimulatorTest, RunUntilAdvancesClockToDeadlineWhenIdle) {
  Simulator sim;
  sim.RunUntil(100.0);
  EXPECT_EQ(sim.Now(), 100.0);
}

TEST(SimulatorTest, StopFromInsideCallback) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1.0, [&] {
    ++fired;
    sim.Stop();
  });
  sim.ScheduleAt(2.0, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.PendingEvents(), 1U);
  // Run can be resumed afterwards.
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, SelfReschedulingEventChain) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 100) sim.ScheduleAfter(1.0, tick);
  };
  sim.ScheduleAt(0.0, tick);
  sim.Run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sim.Now(), 99.0);
}

TEST(SimulatorTest, StepExecutesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1.0, [&] { ++fired; });
  sim.ScheduleAt(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, CancelledEventDoesNotRun) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.ScheduleAt(1.0, [&] { fired = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(fired);
}

// A minimal Process subclass exercising the wakeup machinery.
class CountingProcess : public Process {
 public:
  explicit CountingProcess(Simulator* s) : Process(s) {}
  void Go(SimTime delay) { ScheduleWakeup(delay); }
  void Abort() { CancelWakeup(); }
  bool Pending() const { return WakeupPending(); }
  int wakeups = 0;

 protected:
  void OnWakeup() override {
    ++wakeups;
    if (wakeups < 3) ScheduleWakeup(2.0);
  }
};

TEST(ProcessTest, WakeupChainRuns) {
  Simulator sim;
  CountingProcess p(&sim);
  p.Go(1.0);
  EXPECT_TRUE(p.Pending());
  sim.Run();
  EXPECT_EQ(p.wakeups, 3);
  EXPECT_EQ(sim.Now(), 5.0);  // 1 + 2 + 2.
  EXPECT_FALSE(p.Pending());
}

TEST(ProcessTest, ReschedulingReplacesPendingWakeup) {
  Simulator sim;
  CountingProcess p(&sim);
  p.Go(10.0);
  p.Go(1.0);  // Replaces the 10.0 wakeup.
  sim.RunUntil(2.0);
  EXPECT_EQ(p.wakeups, 1);  // The 1.0 wakeup fired; the 10.0 one never will.
  sim.Run();
  EXPECT_EQ(p.wakeups, 3);  // Chain continues at 3.0 and 5.0 only.
  EXPECT_EQ(sim.Now(), 5.0);
}

TEST(ProcessTest, CancelWakeupPreventsFiring) {
  Simulator sim;
  CountingProcess p(&sim);
  p.Go(1.0);
  p.Abort();
  sim.Run();
  EXPECT_EQ(p.wakeups, 0);
}

}  // namespace
}  // namespace bdisk::sim
