#include "sim/time_series.h"

#include <gtest/gtest.h>

namespace bdisk::sim {
namespace {

TEST(TimeSeriesTest, StartsEmpty) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_EQ(ts.size(), 0U);
  EXPECT_EQ(ts.FirstTimeAtOrAbove(0.0), kTimeNever);
}

TEST(TimeSeriesTest, StoresSamplesInOrder) {
  TimeSeries ts;
  ts.Add(1.0, 0.1);
  ts.Add(2.0, 0.2);
  ts.Add(2.0, 0.3);  // Equal time is allowed.
  ASSERT_EQ(ts.size(), 3U);
  EXPECT_EQ(ts.samples()[0].value, 0.1);
  EXPECT_EQ(ts.samples()[2].time, 2.0);
}

TEST(TimeSeriesTest, FirstCrossing) {
  TimeSeries ts;
  ts.Add(10.0, 0.25);
  ts.Add(20.0, 0.50);
  ts.Add(30.0, 0.75);
  EXPECT_EQ(ts.FirstTimeAtOrAbove(0.2), 10.0);
  EXPECT_EQ(ts.FirstTimeAtOrAbove(0.5), 20.0);  // At-or-above.
  EXPECT_EQ(ts.FirstTimeAtOrAbove(0.6), 30.0);
  EXPECT_EQ(ts.FirstTimeAtOrAbove(0.9), kTimeNever);
}

TEST(TimeSeriesTest, FirstCrossingWithDips) {
  // Values may dip (e.g. a target page evicted); the first crossing time
  // must still be the earliest.
  TimeSeries ts;
  ts.Add(1.0, 0.5);
  ts.Add(2.0, 0.4);
  ts.Add(3.0, 0.5);
  EXPECT_EQ(ts.FirstTimeAtOrAbove(0.5), 1.0);
}

TEST(TimeSeriesDeathTest, RejectsTimeGoingBackwards) {
  TimeSeries ts;
  ts.Add(5.0, 1.0);
  EXPECT_DEATH(ts.Add(4.0, 2.0), "non-decreasing");
}

}  // namespace
}  // namespace bdisk::sim
