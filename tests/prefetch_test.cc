// Tests of the PT prefetching extension ([Acha96a]): the measured client
// opportunistically swaps high p*t pages off the broadcast into its cache.

#include <gtest/gtest.h>

#include "client/measured_client.h"
#include "core/system.h"
#include "sim/simulator.h"

namespace bdisk {
namespace {

using broadcast::BroadcastProgram;
using server::BroadcastServer;
using workload::AccessPattern;

TEST(PrefetchTest, FillsColdCacheFromTheBroadcast) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1, 2, 3}, 4), 0.0, 10,
                         sim::Rng(1));
  client::MeasuredClientOptions options;
  options.cache_size = 2;
  options.think_time = 1000.0;  // Effectively idle: only prefetch acts.
  options.use_backchannel = false;
  options.prefetch = true;
  AccessPattern pattern({0.4, 0.3, 0.2, 0.1});
  client::MeasuredClient mc(&sim, &server, pattern, options, sim::Rng(2));
  // Note: Start() not called — prefetching is passive listening.
  sim.RunUntil(10.0);
  EXPECT_EQ(mc.cache().Size(), 2U);
  EXPECT_GE(mc.Prefetches(), 2U);
}

TEST(PrefetchTest, PrefersHighPtPages) {
  // Flat disk, equal frequencies: p*t reduces to p, so the cache must
  // converge to the two hottest pages.
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1, 2, 3}, 4), 0.0, 10,
                         sim::Rng(1));
  client::MeasuredClientOptions options;
  options.cache_size = 2;
  options.think_time = 1000.0;
  options.use_backchannel = false;
  options.prefetch = true;
  AccessPattern pattern({0.4, 0.3, 0.2, 0.1});
  client::MeasuredClient mc(&sim, &server, pattern, options, sim::Rng(2));
  sim.RunUntil(50.0);
  EXPECT_TRUE(mc.cache().Contains(0));
  EXPECT_TRUE(mc.cache().Contains(1));
  EXPECT_FALSE(mc.cache().Contains(3));
}

TEST(PrefetchTest, AccountsForBroadcastFrequency) {
  // Page 0 is hot but broadcast every other slot (low t); page 2 is
  // slightly colder but appears once per cycle (high t). With
  // probabilities 0.4 / 0.3, p*t favours page 2: 0.3*4 > 0.4*2.
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1, 0, 2}, 3), 0.0, 10,
                         sim::Rng(1));
  client::MeasuredClientOptions options;
  options.cache_size = 1;
  options.think_time = 1000.0;
  options.use_backchannel = false;
  options.prefetch = true;
  AccessPattern pattern({0.4, 0.3, 0.3});
  client::MeasuredClient mc(&sim, &server, pattern, options, sim::Rng(2));
  sim.RunUntil(60.0);
  EXPECT_TRUE(mc.cache().Contains(2));
}

TEST(PrefetchTest, ImprovesWarmupTime) {
  core::SystemConfig config;
  config.server_db_size = 100;
  config.disks = broadcast::DiskConfig{{10, 40, 50}, {3, 2, 1}};
  config.cache_size = 10;
  config.server_queue_size = 10;
  config.mc_think_time = 5.0;
  config.think_time_ratio = 10.0;
  config.mode = core::DeliveryMode::kPurePush;
  config.seed = 5;

  core::System demand(config);
  const core::RunResult without = demand.RunWarmup();

  config.mc_prefetch = true;
  core::System prefetching(config);
  const core::RunResult with = prefetching.RunWarmup();

  ASSERT_TRUE(without.converged);
  ASSERT_TRUE(with.converged);
  // Prefetching must reach a fully warm cache dramatically sooner — it
  // grabs pages as they stream past instead of waiting to fault on them.
  EXPECT_LT(with.warmup.back().time, without.warmup.back().time / 2.0);
  EXPECT_GT(with.mc_prefetches, 0U);
}

TEST(PrefetchTest, DoesNotHurtSteadyStateResponse) {
  core::SystemConfig config;
  config.server_db_size = 100;
  config.disks = broadcast::DiskConfig{{10, 40, 50}, {3, 2, 1}};
  config.cache_size = 10;
  config.server_queue_size = 10;
  config.mc_think_time = 5.0;
  config.think_time_ratio = 10.0;
  config.mode = core::DeliveryMode::kPurePush;
  config.seed = 5;

  core::SteadyStateProtocol protocol;
  protocol.post_fill_accesses = 200;
  protocol.min_measured_accesses = 2000;
  protocol.max_measured_accesses = 8000;
  protocol.batch_size = 500;
  protocol.tolerance = 0.05;

  core::System demand(config);
  const double without = demand.RunSteadyState(protocol).mean_response;
  config.mc_prefetch = true;
  core::System prefetching(config);
  const double with = prefetching.RunSteadyState(protocol).mean_response;
  EXPECT_LT(with, without * 1.15);
}

TEST(PrefetchDeathTest, RequiresAPushProgram) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({}, 4), 1.0, 10,
                         sim::Rng(1));
  client::MeasuredClientOptions options;
  options.cache_size = 2;
  options.prefetch = true;
  AccessPattern pattern({0.4, 0.3, 0.2, 0.1});
  EXPECT_DEATH(client::MeasuredClient(&sim, &server, pattern, options,
                                      sim::Rng(2)),
               "push program");
}

TEST(PrefetchDeathTest, ConfigRejectsPurePull) {
  core::SystemConfig config;
  config.mode = core::DeliveryMode::kPurePull;
  config.mc_prefetch = true;
  EXPECT_DEATH(core::System system(config), "Pure-Pull");
}

}  // namespace
}  // namespace bdisk
