#include "broadcast/schedule_cursor.h"

#include <gtest/gtest.h>

namespace bdisk::broadcast {
namespace {

TEST(ScheduleCursorTest, AdvancesCyclically) {
  const BroadcastProgram program({10, 11, 12}, 13);
  ScheduleCursor cursor(&program);
  EXPECT_EQ(cursor.Position(), 0U);
  EXPECT_EQ(cursor.Advance(), 10U);
  EXPECT_EQ(cursor.Advance(), 11U);
  EXPECT_EQ(cursor.Advance(), 12U);
  EXPECT_EQ(cursor.Position(), 0U);  // Wrapped.
  EXPECT_EQ(cursor.Advance(), 10U);
}

TEST(ScheduleCursorTest, DistanceTracksPosition) {
  const BroadcastProgram program({0, 1, 2, 0}, 3);
  ScheduleCursor cursor(&program);
  EXPECT_EQ(cursor.DistanceToNext(2), 2U);
  cursor.Advance();
  EXPECT_EQ(cursor.DistanceToNext(2), 1U);
  cursor.Advance();
  EXPECT_EQ(cursor.DistanceToNext(2), 0U);
  cursor.Advance();
  EXPECT_EQ(cursor.DistanceToNext(2), 3U);  // Wrap to slot 2 next cycle.
}

TEST(ScheduleCursorTest, UnscheduledPageIsNever) {
  const BroadcastProgram program({0, 1}, 5);
  ScheduleCursor cursor(&program);
  EXPECT_EQ(cursor.DistanceToNext(4), BroadcastProgram::kNeverBroadcast);
}

TEST(ScheduleCursorDeathTest, RejectsEmptyProgram) {
  const BroadcastProgram program({}, 5);
  EXPECT_DEATH(ScheduleCursor cursor(&program), "empty program");
}

}  // namespace
}  // namespace bdisk::broadcast
