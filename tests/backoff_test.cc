// The shared bounded-exponential-backoff engine (fault/backoff.h): raw
// delay arithmetic, the exact-cap boundary attempt, policy validation, the
// zero-jitter no-draw determinism contract, and the pinned scale->clamp->
// stretch operation order the measured client's golden trajectories
// depend on.

#include <gtest/gtest.h>

#include "fault/backoff.h"
#include "sim/rng.h"

namespace bdisk::fault {
namespace {

TEST(BackoffPolicyTest, ValidateCatchesEveryBadKnob) {
  BackoffPolicy good{1.0, 2.0, 8.0, 0.1};
  EXPECT_TRUE(good.Validate().empty());

  BackoffPolicy policy = good;
  policy.base = 0.0;
  EXPECT_FALSE(policy.Validate().empty());
  policy = good;
  policy.multiplier = 0.5;
  EXPECT_FALSE(policy.Validate().empty());
  policy = good;
  policy.cap = 0.5;  // Below base.
  EXPECT_FALSE(policy.Validate().empty());
  policy = good;
  policy.jitter = 1.5;
  EXPECT_FALSE(policy.Validate().empty());
  policy = good;
  policy.jitter = -0.1;
  EXPECT_FALSE(policy.Validate().empty());
  policy = good;
  policy.jitter = 0.0;  // Jitter-free is a valid policy.
  EXPECT_TRUE(policy.Validate().empty());
  policy = good;
  policy.cap = good.base;  // Cap == base pins every attempt to base.
  EXPECT_TRUE(policy.Validate().empty());
}

TEST(BackoffDelayTest, ScalesByMultiplierThenClampsToCap) {
  const BackoffPolicy policy{10.0, 2.0, 100.0, 0.0};
  EXPECT_EQ(RawBackoffDelay(policy, 0), 10.0);
  EXPECT_EQ(RawBackoffDelay(policy, 1), 20.0);
  EXPECT_EQ(RawBackoffDelay(policy, 2), 40.0);
  EXPECT_EQ(RawBackoffDelay(policy, 3), 80.0);
  EXPECT_EQ(RawBackoffDelay(policy, 4), 100.0);  // 160 clamped.
  EXPECT_EQ(RawBackoffDelay(policy, 30), 100.0);
}

TEST(BackoffDelayTest, CapHitExactlyAtTheBoundaryAttempt) {
  // base * multiplier^2 == cap exactly: attempt 2 reaches the cap by
  // arithmetic, not by clamping, and attempt 3 is the first clamped one.
  // The boundary matters because doubling 10.0 is exact in binary floating
  // point — no epsilon, the comparison is ==.
  const BackoffPolicy policy{10.0, 2.0, 40.0, 0.0};
  EXPECT_EQ(RawBackoffDelay(policy, 1), 20.0);
  EXPECT_EQ(RawBackoffDelay(policy, 2), 40.0);
  EXPECT_EQ(RawBackoffDelay(policy, 3), 40.0);
}

TEST(BackoffDelayTest, MultiplierOneHoldsEveryAttemptAtBase) {
  const BackoffPolicy policy{3.0, 1.0, 100.0, 0.0};
  EXPECT_EQ(RawBackoffDelay(policy, 0), 3.0);
  EXPECT_EQ(RawBackoffDelay(policy, 7), 3.0);
}

TEST(BackoffJitterTest, ZeroJitterConsumesNoRandomness) {
  // The determinism contract: a jitter-free policy must not perturb the
  // caller's stream. Two identically seeded streams stay aligned after one
  // is threaded through a jitter=0 delay.
  const BackoffPolicy policy{10.0, 2.0, 100.0, 0.0};
  sim::Rng used(99);
  sim::Rng untouched(99);
  EXPECT_EQ(JitteredBackoffDelay(policy, 2, &used), 40.0);
  EXPECT_EQ(used.NextDouble(), untouched.NextDouble());
}

TEST(BackoffJitterTest, JitterDrawsExactlyOncePerDelay) {
  const BackoffPolicy policy{10.0, 2.0, 100.0, 0.25};
  sim::Rng used(7);
  sim::Rng mirror(7);
  const double delay = JitteredBackoffDelay(policy, 1, &used);
  // Pinned operation order: scale (20), clamp (no-op), stretch by
  // jitter * u with exactly one draw from the stream.
  const double u = mirror.NextDouble();
  EXPECT_EQ(delay, 20.0 + 20.0 * 0.25 * u);
  EXPECT_GE(delay, 20.0);
  EXPECT_LT(delay, 25.0);
  // Both streams have now consumed one draw each and stay aligned.
  EXPECT_EQ(used.NextDouble(), mirror.NextDouble());
}

TEST(BackoffJitterTest, JitterStretchesTheClampedDelayNotTheRawOne) {
  // Clamp before stretch: a capped attempt jitters around the cap, so the
  // armed delay can exceed the cap by at most jitter * cap. Stretch-then-
  // clamp would instead flatten every capped attempt to exactly the cap.
  const BackoffPolicy policy{10.0, 2.0, 40.0, 1.0};
  sim::Rng rng(11);
  sim::Rng mirror(11);
  const double delay = JitteredBackoffDelay(policy, 5, &rng);
  const double u = mirror.NextDouble();
  EXPECT_EQ(delay, 40.0 + 40.0 * u);
}

TEST(BackoffJitterTest, IdenticalSeedsGiveIdenticalSchedules) {
  const BackoffPolicy policy{0.05, 2.0, 1.0, 0.1};
  sim::Rng a(1234);
  sim::Rng b(1234);
  for (std::uint32_t attempt = 0; attempt < 10; ++attempt) {
    EXPECT_EQ(JitteredBackoffDelay(policy, attempt, &a),
              JitteredBackoffDelay(policy, attempt, &b));
  }
}

}  // namespace
}  // namespace bdisk::fault
