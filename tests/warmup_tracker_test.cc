#include "client/warmup_tracker.h"

#include <gtest/gtest.h>

namespace bdisk::client {
namespace {

TEST(WarmupTrackerTest, StartsAtZero) {
  WarmupTracker tracker({1, 2, 3, 4}, 10);
  EXPECT_EQ(tracker.Fraction(), 0.0);
  EXPECT_EQ(tracker.TimeToFraction(0.25), sim::kTimeNever);
}

TEST(WarmupTrackerTest, FractionTracksTargetInsertions) {
  WarmupTracker tracker({1, 2, 3, 4}, 10);
  tracker.OnInsert(1, 10.0);
  EXPECT_DOUBLE_EQ(tracker.Fraction(), 0.25);
  tracker.OnInsert(2, 20.0);
  EXPECT_DOUBLE_EQ(tracker.Fraction(), 0.5);
}

TEST(WarmupTrackerTest, NonTargetPagesIgnored) {
  WarmupTracker tracker({1, 2}, 10);
  tracker.OnInsert(7, 5.0);
  tracker.OnInsert(8, 6.0);
  EXPECT_EQ(tracker.Fraction(), 0.0);
  tracker.OnEvict(7, 7.0);
  EXPECT_EQ(tracker.Fraction(), 0.0);
}

TEST(WarmupTrackerTest, FirstCrossingTimes) {
  WarmupTracker tracker({1, 2, 3, 4}, 10);
  tracker.OnInsert(1, 10.0);
  tracker.OnInsert(2, 20.0);
  tracker.OnInsert(3, 30.0);
  EXPECT_EQ(tracker.TimeToFraction(0.25), 10.0);
  EXPECT_EQ(tracker.TimeToFraction(0.5), 20.0);
  EXPECT_EQ(tracker.TimeToFraction(0.75), 30.0);
  EXPECT_EQ(tracker.TimeToFraction(1.0), sim::kTimeNever);
}

TEST(WarmupTrackerTest, EvictionLowersFractionButKeepsFirstCrossing) {
  WarmupTracker tracker({1, 2}, 10);
  tracker.OnInsert(1, 10.0);
  tracker.OnInsert(2, 20.0);
  tracker.OnEvict(1, 30.0);
  EXPECT_DOUBLE_EQ(tracker.Fraction(), 0.5);
  EXPECT_EQ(tracker.TimeToFraction(1.0), 20.0);  // First crossing stands.
}

TEST(WarmupTrackerTest, DoubleInsertCountsOnce) {
  WarmupTracker tracker({1, 2}, 10);
  tracker.OnInsert(1, 10.0);
  tracker.OnInsert(1, 20.0);
  EXPECT_DOUBLE_EQ(tracker.Fraction(), 0.5);
}

TEST(WarmupTrackerDeathTest, RejectsEmptyTarget) {
  EXPECT_DEATH(WarmupTracker({}, 10), "empty");
}

TEST(WarmupTrackerDeathTest, RejectsOutOfRangeTarget) {
  EXPECT_DEATH(WarmupTracker({10}, 10), "out of range");
}

}  // namespace
}  // namespace bdisk::client
