// Parameterized property suites: invariants that must hold across whole
// families of configurations, not just hand-picked examples.

#include <cmath>
#include <map>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "broadcast/broadcast_program.h"
#include "broadcast/page_ranking.h"
#include "broadcast/program_builder.h"
#include "cache/cache.h"
#include "cache/static_value_policy.h"
#include "core/system.h"
#include "sim/rng.h"
#include "sim/zipf.h"

namespace bdisk {
namespace {

// ----------------------------------------------------------------------
// Property: for any disk shape and chunking mode, every page appears
// exactly RelFreq(disk) times per major cycle.

using ShapeParam = std::tuple<std::vector<std::uint32_t>,   // sizes
                              std::vector<std::uint32_t>,   // rel freqs
                              broadcast::ChunkingMode>;

class ScheduleFrequencyProperty
    : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(ScheduleFrequencyProperty, FrequenciesAreExact) {
  const auto& [sizes, freqs, mode] = GetParam();
  std::vector<std::vector<broadcast::PageId>> disks(sizes.size());
  broadcast::PageId next = 0;
  for (std::size_t d = 0; d < sizes.size(); ++d) {
    for (std::uint32_t i = 0; i < sizes[d]; ++i) disks[d].push_back(next++);
  }
  const auto schedule = broadcast::BuildSchedule(disks, freqs, mode);

  std::map<broadcast::PageId, std::uint32_t> counts;
  for (const auto p : schedule) {
    if (p != broadcast::kNoPage) ++counts[p];
  }
  for (std::size_t d = 0; d < sizes.size(); ++d) {
    for (const auto p : disks[d]) {
      EXPECT_EQ(counts[p], freqs[d]) << "page " << p << " disk " << d;
    }
  }
}

TEST_P(ScheduleFrequencyProperty, SpacingIsNearlyEven) {
  // Occurrences of each page should be spaced within one chunk length of
  // the ideal L/freq gap — the property that makes the analytic
  // L/(2*freq) expectation accurate.
  const auto& [sizes, freqs, mode] = GetParam();
  std::vector<std::vector<broadcast::PageId>> disks(sizes.size());
  broadcast::PageId next = 0;
  for (std::size_t d = 0; d < sizes.size(); ++d) {
    for (std::uint32_t i = 0; i < sizes[d]; ++i) disks[d].push_back(next++);
  }
  const auto schedule = broadcast::BuildSchedule(disks, freqs, mode);
  std::uint32_t total = 0;
  for (const auto s : sizes) total += s;
  const broadcast::BroadcastProgram program(schedule, total);

  for (std::size_t d = 0; d < sizes.size(); ++d) {
    if (freqs[d] < 2) continue;
    for (const auto p : disks[d]) {
      std::vector<std::uint32_t> occ;
      for (std::uint32_t pos = 0; pos < program.Length(); ++pos) {
        if (program.PageAt(pos) == p) occ.push_back(pos);
      }
      const double ideal =
          static_cast<double>(program.Length()) / freqs[d];
      for (std::size_t i = 0; i < occ.size(); ++i) {
        const std::uint32_t nxt = occ[(i + 1) % occ.size()];
        const std::uint32_t gap =
            (nxt + program.Length() - occ[i]) % program.Length();
        EXPECT_LT(std::abs(static_cast<double>(gap) - ideal), ideal * 0.75)
            << "page " << p;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ScheduleFrequencyProperty,
    ::testing::Combine(
        ::testing::Values(std::vector<std::uint32_t>{1, 2, 4},
                          std::vector<std::uint32_t>{10, 40, 50},
                          std::vector<std::uint32_t>{7, 13, 29},
                          std::vector<std::uint32_t>{5, 0, 12}),
        ::testing::Values(std::vector<std::uint32_t>{4, 2, 1},
                          std::vector<std::uint32_t>{3, 2, 1},
                          std::vector<std::uint32_t>{6, 3, 2},
                          std::vector<std::uint32_t>{1, 1, 1}),
        ::testing::Values(broadcast::ChunkingMode::kBalanced,
                          broadcast::ChunkingMode::kPad)));

// ----------------------------------------------------------------------
// Property: BuildPushLayout partitions the database for any offset/chop.

class LayoutPartitionProperty
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,   // offset
                                                 std::uint32_t>>  // chop
{};

TEST_P(LayoutPartitionProperty, PartitionsTheDatabase) {
  const auto [offset, chop] = GetParam();
  const auto probs = sim::ZipfPmf(100, 0.95);
  const broadcast::DiskConfig config{{10, 40, 50}, {3, 2, 1}};
  const auto layout = broadcast::BuildPushLayout(probs, config, offset, chop);

  std::set<broadcast::PageId> seen;
  std::size_t total = 0;
  for (const auto& disk : layout.disk_pages) {
    total += disk.size();
    seen.insert(disk.begin(), disk.end());
  }
  EXPECT_EQ(layout.pull_only.size(), chop);
  total += layout.pull_only.size();
  seen.insert(layout.pull_only.begin(), layout.pull_only.end());
  EXPECT_EQ(total, 100U);
  EXPECT_EQ(seen.size(), 100U);

  // Disk sizes after truncation shrink from the slowest disk upward.
  std::uint32_t effective_total = 0;
  for (const auto s : layout.effective_config.sizes) effective_total += s;
  EXPECT_EQ(effective_total, 100U - chop);
}

TEST_P(LayoutPartitionProperty, PullOnlyPagesAreTheColdest) {
  const auto [offset, chop] = GetParam();
  if (chop == 0) GTEST_SKIP();
  const auto probs = sim::ZipfPmf(100, 0.95);
  const broadcast::DiskConfig config{{10, 40, 50}, {3, 2, 1}};
  const auto layout = broadcast::BuildPushLayout(probs, config, offset, chop);
  // Identity Zipf mapping: the chop coldest pages are ids >= 100 - chop.
  for (const auto p : layout.pull_only) {
    EXPECT_GE(p, 100U - chop);
  }
}

INSTANTIATE_TEST_SUITE_P(
    OffsetsAndChops, LayoutPartitionProperty,
    ::testing::Combine(::testing::Values(0U, 1U, 10U, 25U),
                       ::testing::Values(0U, 5U, 50U, 70U)));

// ----------------------------------------------------------------------
// Property: cache invariants hold under random workloads for every policy.

class CachePolicyProperty
    : public ::testing::TestWithParam<cache::PolicyKind> {};

TEST_P(CachePolicyProperty, SizeNeverExceedsCapacityAndStaysConsistent) {
  const auto kind = GetParam();
  const std::uint32_t db_size = 50;
  const std::uint32_t capacity = 8;
  const auto probs = sim::ZipfPmf(db_size, 0.95);
  const broadcast::BroadcastProgram program(
      [&] {
        std::vector<broadcast::PageId> s;
        for (broadcast::PageId p = 0; p < db_size; ++p) s.push_back(p);
        return s;
      }(),
      db_size);

  cache::Cache cache(capacity, db_size,
                     cache::MakePolicy(kind, probs, &program));
  sim::Rng rng(99);
  std::set<broadcast::PageId> reference;  // Mirror of resident set.
  for (int i = 0; i < 5000; ++i) {
    const auto page =
        static_cast<broadcast::PageId>(rng.NextBounded(db_size));
    const bool hit = cache.Access(page);
    EXPECT_EQ(hit, reference.count(page) == 1);
    if (!hit) {
      const auto evicted = cache.Insert(page);
      if (evicted.has_value()) {
        EXPECT_EQ(reference.erase(*evicted), 1U);
        EXPECT_NE(*evicted, page);
      }
      reference.insert(page);
    }
    EXPECT_LE(cache.Size(), capacity);
    EXPECT_EQ(cache.Size(), reference.size());
  }
  EXPECT_TRUE(cache.IsFull());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CachePolicyProperty,
                         ::testing::Values(cache::PolicyKind::kPix,
                                           cache::PolicyKind::kP,
                                           cache::PolicyKind::kLru,
                                           cache::PolicyKind::kLfu),
                         [](const auto& param_info) {
                           return cache::PolicyKindName(param_info.param);
                         });

// ----------------------------------------------------------------------
// Property: every delivery mode produces a sane steady-state run.

class DeliveryModeProperty
    : public ::testing::TestWithParam<core::DeliveryMode> {};

TEST_P(DeliveryModeProperty, SteadyStateRunIsSane) {
  core::SystemConfig config;
  config.mode = GetParam();
  config.server_db_size = 100;
  config.disks = broadcast::DiskConfig{{10, 40, 50}, {3, 2, 1}};
  config.cache_size = 10;
  config.server_queue_size = 10;
  config.mc_think_time = 5.0;
  config.think_time_ratio = 20.0;
  config.pull_bw = 0.5;
  config.seed = 21;

  core::SteadyStateProtocol protocol;
  protocol.post_fill_accesses = 100;
  protocol.min_measured_accesses = 1000;
  protocol.max_measured_accesses = 4000;
  protocol.batch_size = 500;
  protocol.tolerance = 0.1;

  core::System system(config);
  const core::RunResult result = system.RunSteadyState(protocol);
  EXPECT_GT(result.mean_response, 0.0);
  EXPECT_LT(result.mean_response, 1000.0);
  EXPECT_GE(result.response_stats.Min(), 0.0);
  EXPECT_GT(result.mc_hit_rate, 0.0);
  EXPECT_NEAR(result.push_slot_frac + result.pull_slot_frac +
                  result.idle_slot_frac,
              1.0, 1e-9);
  if (GetParam() == core::DeliveryMode::kPurePush) {
    EXPECT_EQ(result.pull_slot_frac, 0.0);
  }
  if (GetParam() == core::DeliveryMode::kPurePull) {
    EXPECT_EQ(result.push_slot_frac, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, DeliveryModeProperty,
                         ::testing::Values(core::DeliveryMode::kPurePush,
                                           core::DeliveryMode::kPurePull,
                                           core::DeliveryMode::kIpp),
                         [](const auto& param_info) {
                           return core::DeliveryModeName(param_info.param);
                         });

}  // namespace
}  // namespace bdisk
