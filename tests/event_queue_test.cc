#include "sim/event_queue.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace bdisk::sim {
namespace {

// The whole suite runs against both queue backends: every behavioural
// guarantee — ordering, FIFO ties, cancellation, id reuse — is
// backend-independent by design, and the golden trajectory pins depend on
// that.
class EventQueueTest : public ::testing::TestWithParam<QueueKind> {};

INSTANTIATE_TEST_SUITE_P(
    Kernel, EventQueueTest,
    ::testing::Values(QueueKind::kHeap, QueueKind::kWheel),
    [](const ::testing::TestParamInfo<QueueKind>& param) {
      return param.param == QueueKind::kHeap ? "Heap" : "Wheel";
    });

// Pops the next event and returns its fire time; fails the test if empty.
SimTime PopTime(EventQueue& queue) {
  EventQueue::Fired fired;
  EXPECT_TRUE(queue.Pop(&fired));
  return fired.when;
}

// Pops the next event and runs its action.
void PopAndRun(EventQueue& queue) {
  EventQueue::Fired fired;
  ASSERT_TRUE(queue.Pop(&fired));
  fired.fn();
}

TEST_P(EventQueueTest, StartsEmpty) {
  EventQueue queue(GetParam());
  EXPECT_TRUE(queue.Empty());
  EXPECT_EQ(queue.Size(), 0U);
  EXPECT_EQ(queue.NextTime(), kTimeNever);
  EventQueue::Fired fired;
  EXPECT_FALSE(queue.Pop(&fired));
}

TEST_P(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue(GetParam());
  std::vector<int> fired;
  queue.Schedule(3.0, [&fired] { fired.push_back(3); });
  queue.Schedule(1.0, [&fired] { fired.push_back(1); });
  queue.Schedule(2.0, [&fired] { fired.push_back(2); });

  while (!queue.Empty()) PopAndRun(queue);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST_P(EventQueueTest, SimultaneousEventsFireInScheduleOrder) {
  EventQueue queue(GetParam());
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    queue.Schedule(5.0, [&fired, i] { fired.push_back(i); });
  }
  while (!queue.Empty()) {
    EventQueue::Fired f;
    ASSERT_TRUE(queue.Pop(&f));
    EXPECT_EQ(f.when, 5.0);
    f.fn();
  }
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST_P(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue queue(GetParam());
  queue.Schedule(7.0, [] {});
  queue.Schedule(4.0, [] {});
  EXPECT_EQ(queue.NextTime(), 4.0);
}

TEST_P(EventQueueTest, CancelPreventsFiring) {
  EventQueue queue(GetParam());
  bool fired = false;
  const EventId id = queue.Schedule(1.0, [&fired] { fired = true; });
  queue.Schedule(2.0, [] {});
  EXPECT_TRUE(queue.IsPending(id));
  queue.Cancel(id);
  EXPECT_FALSE(queue.IsPending(id));
  EXPECT_EQ(queue.Size(), 1U);
  EXPECT_EQ(queue.NextTime(), 2.0);

  EXPECT_EQ(PopTime(queue), 2.0);
  EXPECT_FALSE(fired);
  EXPECT_TRUE(queue.Empty());
}

TEST_P(EventQueueTest, CancelAfterFireIsHarmless) {
  EventQueue queue(GetParam());
  const EventId id = queue.Schedule(1.0, [] {});
  PopAndRun(queue);
  queue.Cancel(id);  // Already fired: must be a no-op.
  EXPECT_TRUE(queue.Empty());

  // A new event must still work after the stale cancel.
  const EventId id2 = queue.Schedule(2.0, [] {});
  EXPECT_TRUE(queue.IsPending(id2));
  EXPECT_EQ(queue.Size(), 1U);
}

TEST_P(EventQueueTest, CancelInvalidIdIsHarmless) {
  EventQueue queue(GetParam());
  queue.Cancel(kInvalidEventId);
  queue.Cancel(~0ULL);  // Max generation, max slot: never issued.
  EXPECT_TRUE(queue.Empty());
}

TEST_P(EventQueueTest, DoubleCancelIsHarmless) {
  EventQueue queue(GetParam());
  const EventId id = queue.Schedule(1.0, [] {});
  queue.Cancel(id);
  queue.Cancel(id);
  EXPECT_TRUE(queue.Empty());
}

TEST_P(EventQueueTest, ClearDropsEverything) {
  EventQueue queue(GetParam());
  queue.Schedule(1.0, [] {});
  queue.Schedule(2.0, [] {});
  queue.Clear();
  EXPECT_TRUE(queue.Empty());
  EXPECT_EQ(queue.NextTime(), kTimeNever);
}

TEST_P(EventQueueTest, InterleavedScheduleAndPop) {
  EventQueue queue(GetParam());
  std::vector<double> times;
  queue.Schedule(1.0, [] {});
  queue.Schedule(5.0, [] {});
  times.push_back(PopTime(queue));
  queue.Schedule(3.0, [] {});
  times.push_back(PopTime(queue));
  times.push_back(PopTime(queue));
  EXPECT_EQ(times, (std::vector<double>{1.0, 3.0, 5.0}));
}

TEST_P(EventQueueTest, ManyEventsStressOrdering) {
  EventQueue queue(GetParam());
  // Pseudo-random insertion order, ascending pop order.
  for (int i = 0; i < 1000; ++i) {
    queue.Schedule(static_cast<double>((i * 7919) % 1000), [] {});
  }
  SimTime prev = -1.0;
  while (!queue.Empty()) {
    const SimTime when = PopTime(queue);
    EXPECT_GE(when, prev);
    prev = when;
  }
}

// ------------------------------------------------ generation-tagged ids

TEST_P(EventQueueTest, ReusedSlotDoesNotReviveOldId) {
  EventQueue queue(GetParam());
  // The first event ever scheduled occupies slot 0; cancelling it frees
  // the slot, so the next Schedule reuses it under a bumped generation.
  const EventId first = queue.Schedule(1.0, [] {});
  queue.Cancel(first);
  const EventId reused = queue.Schedule(2.0, [] {});
  EXPECT_NE(first, reused);
  EXPECT_FALSE(queue.IsPending(first));
  EXPECT_TRUE(queue.IsPending(reused));

  // Cancelling the stale id must not disturb the live occupant.
  queue.Cancel(first);
  EXPECT_TRUE(queue.IsPending(reused));
  EXPECT_EQ(queue.Size(), 1U);
  EXPECT_EQ(PopTime(queue), 2.0);
}

TEST_P(EventQueueTest, IdReuseStressKeepsIdsDistinct) {
  EventQueue queue(GetParam());
  // Churn a single slot hard: every generation must produce a fresh id and
  // every stale id must stay dead.
  std::vector<EventId> ids;
  for (int round = 0; round < 300; ++round) {
    const EventId id = queue.Schedule(1.0, [] {});
    for (const EventId old : ids) EXPECT_FALSE(queue.IsPending(old));
    EXPECT_TRUE(queue.IsPending(id));
    ids.push_back(id);
    if (round % 2 == 0) {
      queue.Cancel(id);
    } else {
      PopAndRun(queue);
    }
    EXPECT_TRUE(queue.Empty());
  }
}

TEST_P(EventQueueTest, CancelHeavyChurn) {
  EventQueue queue(GetParam());
  Rng rng(11);
  std::vector<EventId> live;
  std::size_t cancelled = 0;
  for (int i = 0; i < 20000; ++i) {
    live.push_back(queue.Schedule(rng.NextDouble() * 100.0, [] {}));
    // Cancel ~2 of every 3 scheduled events, oldest first.
    if (i % 3 != 0 && !live.empty()) {
      const std::size_t victim = rng.NextBounded(live.size());
      queue.Cancel(live[victim]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      ++cancelled;
    }
  }
  EXPECT_GT(cancelled, 10000U);
  EXPECT_EQ(queue.Size(), live.size());
  // The survivors drain in time order despite the lazily-deleted carcasses.
  SimTime prev = -1.0;
  std::size_t drained = 0;
  while (!queue.Empty()) {
    const SimTime when = PopTime(queue);
    EXPECT_GE(when, prev);
    prev = when;
    ++drained;
  }
  EXPECT_EQ(drained, live.size());
  for (const EventId id : live) EXPECT_FALSE(queue.IsPending(id));
}

TEST_P(EventQueueTest, RescheduleHeavyChurn) {
  EventQueue queue(GetParam());
  Rng rng(13);
  // One logical timer per lane, constantly cancel+rescheduled — the
  // Process::ScheduleWakeup pattern, which exercises slot reuse at the
  // highest possible rate.
  constexpr int kLanes = 64;
  EventId lane[kLanes] = {};
  double lane_when[kLanes] = {};
  for (int i = 0; i < 50000; ++i) {
    const auto l = static_cast<int>(rng.NextBounded(kLanes));
    if (lane[l] != kInvalidEventId) queue.Cancel(lane[l]);
    lane_when[l] = rng.NextDouble() * 1000.0;
    lane[l] = queue.Schedule(lane_when[l], [] {});
    ASSERT_LE(queue.Size(), static_cast<std::size_t>(kLanes));
  }
  // Exactly the lanes' final schedules remain, in time order.
  std::vector<double> expected;
  for (int l = 0; l < kLanes; ++l) {
    if (lane[l] != kInvalidEventId) expected.push_back(lane_when[l]);
  }
  std::sort(expected.begin(), expected.end());
  std::vector<double> drained;
  while (!queue.Empty()) drained.push_back(PopTime(queue));
  EXPECT_EQ(drained, expected);
}

TEST_P(EventQueueTest, SameTimeFifoSurvivesChurnAndReuse) {
  EventQueue queue(GetParam());
  // Interleave same-time scheduling with cancels that free low slots, so
  // later events recycle earlier slots: FIFO order must follow schedule
  // order, not slot order.
  std::vector<int> fired;
  std::vector<EventId> doomed;
  for (int i = 0; i < 50; ++i) {
    doomed.push_back(queue.Schedule(5.0, [] {}));
  }
  for (const EventId id : doomed) queue.Cancel(id);
  for (int i = 0; i < 50; ++i) {
    queue.Schedule(5.0, [&fired, i] { fired.push_back(i); });
    // Free a slot mid-stream to force reuse for the next event.
    const EventId gap = queue.Schedule(5.0, [] {});
    queue.Cancel(gap);
  }
  while (!queue.Empty()) PopAndRun(queue);
  std::vector<int> expected(50);
  for (int i = 0; i < 50; ++i) expected[i] = i;
  EXPECT_EQ(fired, expected);
}

// ------------------------------------------------------ periodic timers

struct CountingHandler : EventHandler {
  int count = 0;
  void OnEvent() override { ++count; }
};

TEST_P(EventQueueTest, PeriodicFiresEveryIntervalWhenRearmed) {
  EventQueue queue(GetParam());
  CountingHandler handler;
  const PeriodicId timer = queue.SchedulePeriodic(1.0, 1.0, &handler);
  EXPECT_FALSE(queue.Empty());
  EXPECT_EQ(queue.Size(), 1U);
  for (int i = 1; i <= 5; ++i) {
    EXPECT_EQ(queue.NextTime(), static_cast<double>(i));
    EventQueue::Fired fired;
    ASSERT_TRUE(queue.Pop(&fired));
    EXPECT_EQ(fired.when, static_cast<double>(i));
    EXPECT_EQ(fired.periodic, timer);
    fired.fn();
    queue.Rearm(fired.periodic);
  }
  EXPECT_EQ(handler.count, 5);
  EXPECT_EQ(queue.Size(), 1U);  // Still armed.
}

TEST_P(EventQueueTest, CancelPeriodicStopsFiring) {
  EventQueue queue(GetParam());
  CountingHandler handler;
  const PeriodicId timer = queue.SchedulePeriodic(1.0, 1.0, &handler);
  queue.CancelPeriodic(timer);
  EXPECT_TRUE(queue.Empty());
  EXPECT_EQ(queue.NextTime(), kTimeNever);
  queue.CancelPeriodic(timer);  // Double cancel: harmless.
  queue.Rearm(timer);           // Re-arming a dead timer: harmless.
  EXPECT_TRUE(queue.Empty());
}

TEST_P(EventQueueTest, PeriodicAndOneShotsInterleaveFifo) {
  EventQueue queue(GetParam());
  std::vector<int> order;
  struct OrderHandler : EventHandler {
    std::vector<int>* order = nullptr;
    void OnEvent() override { order->push_back(0); }
  } handler;
  handler.order = &order;

  // Periodic armed first: at t=1 it outranks the later-scheduled one-shot
  // (FIFO among ties); the one-shot scheduled after each Rearm fires after
  // the next occurrence too.
  queue.SchedulePeriodic(1.0, 1.0, &handler);
  queue.Schedule(1.0, [&order] { order.push_back(1); });
  queue.Schedule(2.0, [&order] { order.push_back(2); });

  for (int i = 0; i < 4 && !queue.Empty(); ++i) {
    EventQueue::Fired fired;
    ASSERT_TRUE(queue.Pop(&fired));
    fired.fn();
    if (fired.periodic != EventQueue::kNotPeriodic) {
      queue.Rearm(fired.periodic);
    }
    if (fired.when >= 2.0) break;
  }
  // t=1: periodic (seq 1) then one-shot (seq 2); t=2: one-shot (seq 3)
  // before the re-armed periodic (seq drawn at re-arm).
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST_P(EventQueueTest, ScheduleDoesNotAllocatePerEventInSteadyState) {
  // Behavioural proxy for the zero-allocation claim: a schedule/pop cycle
  // at constant depth must reuse slab slots instead of growing them —
  // observable as stable ids cycling through the same slot indices.
  EventQueue queue(GetParam());
  for (int i = 0; i < 64; ++i) queue.Schedule(1000.0 + i, [] {});
  std::vector<EventId> seen;
  for (int i = 0; i < 1000; ++i) {
    EventQueue::Fired fired;
    ASSERT_TRUE(queue.Pop(&fired));
    const EventId id = queue.Schedule(2000.0 + i, [] {});
    // Slot index (low 32 bits) must stay within the 64-slot high-water
    // mark established above.
    EXPECT_LT(static_cast<std::uint32_t>(id), 64U);
    seen.push_back(id);
  }
  // And every id is still unique despite the heavy slot reuse.
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

// ------------------------------------------- heap/wheel equivalence

// The core property behind the kernel-matrix pins: driven with an
// identical schedule/pop/cancel sequence, both backends must pop the
// identical event stream — same times, same payloads, same FIFO order at
// equal timestamps — and retire the same number of cancelled carcasses by
// the time they drain.
TEST(EventQueueEquivalenceTest, RandomOpsPopIdenticallyOnHeapAndWheel) {
  EventQueue heap(QueueKind::kHeap);
  EventQueue wheel(QueueKind::kWheel);
  Rng rng(20260808);
  std::vector<int> heap_fired;
  std::vector<int> wheel_fired;
  std::vector<std::pair<EventId, EventId>> live;  // (heap id, wheel id).
  SimTime now = 0.0;
  int serial = 0;
  std::uint64_t cancels = 0;
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t op = rng.NextBounded(10);
    if (op < 5) {
      // Schedule: a mix of near-future offsets, same-time clusters (25%
      // land exactly on the current integer slot boundary), multi-day
      // jumps, and the occasional far horizon.
      SimTime when;
      const std::uint64_t shape = rng.NextBounded(8);
      if (shape < 2) {
        when = std::floor(now) + 1.0;  // Same-time cluster at a boundary.
      } else if (shape < 6) {
        when = now + rng.NextDouble() * 300.0;  // Typical think times.
      } else if (shape < 7) {
        when = now + rng.NextDouble() * 5000.0;  // Past the level-0 span.
      } else {
        when = now + rng.NextDouble() * 3.0e6;  // Level-1 / overflow land.
      }
      const int tag = serial++;
      const EventId h = heap.Schedule(when, [&heap_fired, tag] {
        heap_fired.push_back(tag);
      });
      const EventId w = wheel.Schedule(when, [&wheel_fired, tag] {
        wheel_fired.push_back(tag);
      });
      live.emplace_back(h, w);
    } else if (op < 7 && !live.empty()) {
      const std::size_t victim = rng.NextBounded(live.size());
      heap.Cancel(live[victim].first);
      wheel.Cancel(live[victim].second);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      ++cancels;
    } else if (!heap.Empty()) {
      EventQueue::Fired hf;
      EventQueue::Fired wf;
      ASSERT_TRUE(heap.Pop(&hf));
      ASSERT_TRUE(wheel.Pop(&wf));
      ASSERT_EQ(hf.when, wf.when);
      ASSERT_GE(hf.when, now);
      now = hf.when;
      hf.fn();
      wf.fn();
      ASSERT_EQ(heap_fired.back(), wheel_fired.back());
      std::erase_if(live, [&heap](const auto& pair) {
        return !heap.IsPending(pair.first);
      });
    }
    ASSERT_EQ(heap.Size(), wheel.Size());
  }
  while (!heap.Empty()) {
    EventQueue::Fired hf;
    EventQueue::Fired wf;
    ASSERT_TRUE(heap.Pop(&hf));
    ASSERT_TRUE(wheel.Pop(&wf));
    ASSERT_EQ(hf.when, wf.when);
    hf.fn();
    wf.fn();
  }
  EXPECT_TRUE(wheel.Empty());
  EXPECT_EQ(heap_fired, wheel_fired);
  // Every cancelled event left exactly one carcass, and a full drain
  // retires each exactly once — on both backends.
  EXPECT_EQ(heap.StaleDiscarded(), cancels);
  EXPECT_EQ(wheel.StaleDiscarded(), cancels);
}

TEST(EventQueueEquivalenceTest, SameTimeFifoTieBreakMatchesAcrossBackends) {
  // Dense same-time ties with interleaved cancels: the documented FIFO
  // tie-break (schedule order, not slot order) must agree between the
  // backends event-for-event.
  EventQueue heap(QueueKind::kHeap);
  EventQueue wheel(QueueKind::kWheel);
  std::vector<int> heap_fired;
  std::vector<int> wheel_fired;
  for (int round = 0; round < 20; ++round) {
    const SimTime when = static_cast<SimTime>(1 + round % 3);
    std::vector<std::pair<EventId, EventId>> doomed;
    for (int i = 0; i < 5; ++i) {
      const int tag = round * 100 + i;
      doomed.emplace_back(
          heap.Schedule(when, [&heap_fired, tag] { heap_fired.push_back(tag); }),
          wheel.Schedule(when,
                         [&wheel_fired, tag] { wheel_fired.push_back(tag); }));
    }
    // Cancel every other one to punch slot-reuse holes.
    for (std::size_t i = 0; i < doomed.size(); i += 2) {
      heap.Cancel(doomed[i].first);
      wheel.Cancel(doomed[i].second);
    }
  }
  while (!heap.Empty()) {
    EventQueue::Fired hf;
    EventQueue::Fired wf;
    ASSERT_TRUE(heap.Pop(&hf));
    ASSERT_TRUE(wheel.Pop(&wf));
    ASSERT_EQ(hf.when, wf.when);
    hf.fn();
    wf.fn();
  }
  EXPECT_EQ(heap_fired, wheel_fired);
}

// ------------------------------------------- wheel geometry edge cases

TEST_P(EventQueueTest, FarFutureEventsPopInOrder) {
  // Times spanning every wheel region: the current day, level 0, level 1,
  // the overflow list, and doubles too large for the day arithmetic
  // (clamped; ordering falls back to the full key compare).
  EventQueue queue(GetParam());
  const double times[] = {0.5,   1.5e9, 1024.0 * 1024.0 + 3.0, 700.0,
                          1e18,  2.5,   1e300,                 1048000.0,
                          3e5,   1e9};
  for (const double t : times) queue.Schedule(t, [] {});
  std::vector<double> sorted(std::begin(times), std::end(times));
  std::sort(sorted.begin(), sorted.end());
  for (const double expected : sorted) {
    EXPECT_EQ(queue.NextTime(), expected);
    EXPECT_EQ(PopTime(queue), expected);
  }
  EXPECT_TRUE(queue.Empty());
}

TEST_P(EventQueueTest, RolloverAcrossManyDaysAndHours) {
  // March a periodic-free workload across several thousand "days" so the
  // level-0 ring wraps multiple times and at least three hour boundaries
  // cascade; inserts stay interleaved with pops so the due-run insert path
  // (day <= current) is exercised too.
  EventQueue queue(GetParam());
  Rng rng(7);
  SimTime now = 0.0;
  std::size_t popped = 0;
  for (int i = 0; i < 64; ++i) {
    queue.Schedule(now + rng.NextDouble() * 64.0, [] {});
  }
  while (popped < 10000) {
    EventQueue::Fired fired;
    ASSERT_TRUE(queue.Pop(&fired));
    ASSERT_GE(fired.when, now);
    now = fired.when;
    ++popped;
    // Replacement keeps depth constant; occasional same-day inserts land
    // in the sorted due run rather than a bucket.
    const double offset = rng.NextBounded(4) == 0 ? rng.NextDouble() * 0.5
                                                  : rng.NextDouble() * 64.0;
    queue.Schedule(now + offset, [] {});
  }
  EXPECT_GT(now, 3072.0);  // Crossed the 1024-day ring at least three times.
}

TEST_P(EventQueueTest, StaleEntriesRetiredOnceDespiteBucketReuse) {
  // A cancelled event's carcass sits in a wheel bucket; after the wheel
  // passes its day, the same bucket index is reused by a day exactly one
  // ring revolution later. The carcass must be discarded (and counted)
  // exactly once, and never resurface to double-count when the bucket
  // recycles — the `obs` kernel counters depend on this.
  EventQueue queue(GetParam());
  const EventId doomed = queue.Schedule(2000.0, [] {});
  queue.Cancel(doomed);
  EXPECT_EQ(queue.StaleDiscarded(), 0U);  // Retired lazily, not eagerly.
  queue.Schedule(2100.0, [] {});
  EXPECT_EQ(PopTime(queue), 2100.0);  // Sweeps day 2000's carcass.
  EXPECT_EQ(queue.StaleDiscarded(), 1U);
  // Same bucket index, one revolution later (2000 + 1024).
  queue.Schedule(3024.0, [] {});
  EXPECT_EQ(PopTime(queue), 3024.0);
  EXPECT_TRUE(queue.Empty());
  EXPECT_EQ(queue.StaleDiscarded(), 1U);  // Not double-counted.
}

// ------------------------------------------- batched periodic spans

TEST_P(EventQueueTest, PeriodicSpanRequiresSoleTimerStrictlyBeforeBarrier) {
  EventQueue queue(GetParam());
  CountingHandler handler;
  PeriodicId id = EventQueue::kNotPeriodic;
  EventHandler* out_handler = nullptr;
  SimTime barrier = 0.0;
  EXPECT_FALSE(queue.PeriodicSpan(&id, &out_handler, &barrier));  // No timer.

  const PeriodicId timer = queue.SchedulePeriodic(1.0, 1.0, &handler);
  ASSERT_TRUE(queue.PeriodicSpan(&id, &out_handler, &barrier));
  EXPECT_EQ(id, timer);
  EXPECT_EQ(out_handler, &handler);
  EXPECT_EQ(barrier, kTimeNever);  // No one-shots at all.

  // A one-shot strictly after the next occurrence: span holds, barrier is
  // its time.
  const EventId later = queue.Schedule(5.5, [] {});
  ASSERT_TRUE(queue.PeriodicSpan(&id, &out_handler, &barrier));
  EXPECT_EQ(barrier, 5.5);

  // A one-shot tied with the next occurrence: the seq tie-break must go
  // through Pop(), so no span.
  const EventId tie = queue.Schedule(1.0, [] {});
  EXPECT_FALSE(queue.PeriodicSpan(&id, &out_handler, &barrier));
  queue.Cancel(tie);
  ASSERT_TRUE(queue.PeriodicSpan(&id, &out_handler, &barrier));

  // A second live periodic timer disables spans entirely.
  CountingHandler other;
  const PeriodicId second = queue.SchedulePeriodic(0.5, 2.0, &other);
  EXPECT_FALSE(queue.PeriodicSpan(&id, &out_handler, &barrier));
  queue.CancelPeriodic(second);
  ASSERT_TRUE(queue.PeriodicSpan(&id, &out_handler, &barrier));
  queue.Cancel(later);
  ASSERT_TRUE(queue.PeriodicSpan(&id, &out_handler, &barrier));
  EXPECT_EQ(barrier, kTimeNever);
}

TEST_P(EventQueueTest, MutationEpochTracksLiveSetChanges) {
  EventQueue queue(GetParam());
  CountingHandler handler;
  const std::uint64_t e0 = queue.MutationEpoch();
  const EventId id = queue.Schedule(1.0, [] {});
  EXPECT_NE(queue.MutationEpoch(), e0);  // Schedule bumps.
  const std::uint64_t e1 = queue.MutationEpoch();
  queue.Cancel(id);
  EXPECT_NE(queue.MutationEpoch(), e1);  // Effective cancel bumps.
  const std::uint64_t e2 = queue.MutationEpoch();
  queue.Cancel(id);                      // Stale cancel: no-op.
  EXPECT_EQ(queue.MutationEpoch(), e2);
  const PeriodicId timer = queue.SchedulePeriodic(1.0, 1.0, &handler);
  const std::uint64_t e3 = queue.MutationEpoch();
  EXPECT_NE(e3, e2);
  // Pop + Rearm are the span's own steady state: no bump.
  EventQueue::Fired fired;
  ASSERT_TRUE(queue.Pop(&fired));
  queue.Rearm(fired.periodic);
  EXPECT_EQ(queue.MutationEpoch(), e3);
  queue.CancelPeriodic(timer);
  EXPECT_NE(queue.MutationEpoch(), e3);
}

}  // namespace
}  // namespace bdisk::sim
