#include "sim/event_queue.h"

#include <vector>

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace bdisk::sim {
namespace {

// Pops the next event and returns its fire time; fails the test if empty.
SimTime PopTime(EventQueue& queue) {
  EventQueue::Fired fired;
  EXPECT_TRUE(queue.Pop(&fired));
  return fired.when;
}

// Pops the next event and runs its action.
void PopAndRun(EventQueue& queue) {
  EventQueue::Fired fired;
  ASSERT_TRUE(queue.Pop(&fired));
  fired.fn();
}

TEST(EventQueueTest, StartsEmpty) {
  EventQueue queue;
  EXPECT_TRUE(queue.Empty());
  EXPECT_EQ(queue.Size(), 0U);
  EXPECT_EQ(queue.NextTime(), kTimeNever);
  EventQueue::Fired fired;
  EXPECT_FALSE(queue.Pop(&fired));
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> fired;
  queue.Schedule(3.0, [&fired] { fired.push_back(3); });
  queue.Schedule(1.0, [&fired] { fired.push_back(1); });
  queue.Schedule(2.0, [&fired] { fired.push_back(2); });

  while (!queue.Empty()) PopAndRun(queue);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SimultaneousEventsFireInScheduleOrder) {
  EventQueue queue;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    queue.Schedule(5.0, [&fired, i] { fired.push_back(i); });
  }
  while (!queue.Empty()) {
    EventQueue::Fired f;
    ASSERT_TRUE(queue.Pop(&f));
    EXPECT_EQ(f.when, 5.0);
    f.fn();
  }
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue queue;
  queue.Schedule(7.0, [] {});
  queue.Schedule(4.0, [] {});
  EXPECT_EQ(queue.NextTime(), 4.0);
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue queue;
  bool fired = false;
  const EventId id = queue.Schedule(1.0, [&fired] { fired = true; });
  queue.Schedule(2.0, [] {});
  EXPECT_TRUE(queue.IsPending(id));
  queue.Cancel(id);
  EXPECT_FALSE(queue.IsPending(id));
  EXPECT_EQ(queue.Size(), 1U);
  EXPECT_EQ(queue.NextTime(), 2.0);

  EXPECT_EQ(PopTime(queue), 2.0);
  EXPECT_FALSE(fired);
  EXPECT_TRUE(queue.Empty());
}

TEST(EventQueueTest, CancelAfterFireIsHarmless) {
  EventQueue queue;
  const EventId id = queue.Schedule(1.0, [] {});
  PopAndRun(queue);
  queue.Cancel(id);  // Already fired: must be a no-op.
  EXPECT_TRUE(queue.Empty());

  // A new event must still work after the stale cancel.
  const EventId id2 = queue.Schedule(2.0, [] {});
  EXPECT_TRUE(queue.IsPending(id2));
  EXPECT_EQ(queue.Size(), 1U);
}

TEST(EventQueueTest, CancelInvalidIdIsHarmless) {
  EventQueue queue;
  queue.Cancel(kInvalidEventId);
  queue.Cancel(~0ULL);  // Max generation, max slot: never issued.
  EXPECT_TRUE(queue.Empty());
}

TEST(EventQueueTest, DoubleCancelIsHarmless) {
  EventQueue queue;
  const EventId id = queue.Schedule(1.0, [] {});
  queue.Cancel(id);
  queue.Cancel(id);
  EXPECT_TRUE(queue.Empty());
}

TEST(EventQueueTest, ClearDropsEverything) {
  EventQueue queue;
  queue.Schedule(1.0, [] {});
  queue.Schedule(2.0, [] {});
  queue.Clear();
  EXPECT_TRUE(queue.Empty());
  EXPECT_EQ(queue.NextTime(), kTimeNever);
}

TEST(EventQueueTest, InterleavedScheduleAndPop) {
  EventQueue queue;
  std::vector<double> times;
  queue.Schedule(1.0, [] {});
  queue.Schedule(5.0, [] {});
  times.push_back(PopTime(queue));
  queue.Schedule(3.0, [] {});
  times.push_back(PopTime(queue));
  times.push_back(PopTime(queue));
  EXPECT_EQ(times, (std::vector<double>{1.0, 3.0, 5.0}));
}

TEST(EventQueueTest, ManyEventsStressOrdering) {
  EventQueue queue;
  // Pseudo-random insertion order, ascending pop order.
  for (int i = 0; i < 1000; ++i) {
    queue.Schedule(static_cast<double>((i * 7919) % 1000), [] {});
  }
  SimTime prev = -1.0;
  while (!queue.Empty()) {
    const SimTime when = PopTime(queue);
    EXPECT_GE(when, prev);
    prev = when;
  }
}

// ------------------------------------------------ generation-tagged ids

TEST(EventQueueTest, ReusedSlotDoesNotReviveOldId) {
  EventQueue queue;
  // The first event ever scheduled occupies slot 0; cancelling it frees
  // the slot, so the next Schedule reuses it under a bumped generation.
  const EventId first = queue.Schedule(1.0, [] {});
  queue.Cancel(first);
  const EventId reused = queue.Schedule(2.0, [] {});
  EXPECT_NE(first, reused);
  EXPECT_FALSE(queue.IsPending(first));
  EXPECT_TRUE(queue.IsPending(reused));

  // Cancelling the stale id must not disturb the live occupant.
  queue.Cancel(first);
  EXPECT_TRUE(queue.IsPending(reused));
  EXPECT_EQ(queue.Size(), 1U);
  EXPECT_EQ(PopTime(queue), 2.0);
}

TEST(EventQueueTest, IdReuseStressKeepsIdsDistinct) {
  EventQueue queue;
  // Churn a single slot hard: every generation must produce a fresh id and
  // every stale id must stay dead.
  std::vector<EventId> ids;
  for (int round = 0; round < 300; ++round) {
    const EventId id = queue.Schedule(1.0, [] {});
    for (const EventId old : ids) EXPECT_FALSE(queue.IsPending(old));
    EXPECT_TRUE(queue.IsPending(id));
    ids.push_back(id);
    if (round % 2 == 0) {
      queue.Cancel(id);
    } else {
      PopAndRun(queue);
    }
    EXPECT_TRUE(queue.Empty());
  }
}

TEST(EventQueueTest, CancelHeavyChurn) {
  EventQueue queue;
  Rng rng(11);
  std::vector<EventId> live;
  std::size_t cancelled = 0;
  for (int i = 0; i < 20000; ++i) {
    live.push_back(queue.Schedule(rng.NextDouble() * 100.0, [] {}));
    // Cancel ~2 of every 3 scheduled events, oldest first.
    if (i % 3 != 0 && !live.empty()) {
      const std::size_t victim = rng.NextBounded(live.size());
      queue.Cancel(live[victim]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      ++cancelled;
    }
  }
  EXPECT_GT(cancelled, 10000U);
  EXPECT_EQ(queue.Size(), live.size());
  // The survivors drain in time order despite the lazily-deleted carcasses.
  SimTime prev = -1.0;
  std::size_t drained = 0;
  while (!queue.Empty()) {
    const SimTime when = PopTime(queue);
    EXPECT_GE(when, prev);
    prev = when;
    ++drained;
  }
  EXPECT_EQ(drained, live.size());
  for (const EventId id : live) EXPECT_FALSE(queue.IsPending(id));
}

TEST(EventQueueTest, RescheduleHeavyChurn) {
  EventQueue queue;
  Rng rng(13);
  // One logical timer per lane, constantly cancel+rescheduled — the
  // Process::ScheduleWakeup pattern, which exercises slot reuse at the
  // highest possible rate.
  constexpr int kLanes = 64;
  EventId lane[kLanes] = {};
  double lane_when[kLanes] = {};
  for (int i = 0; i < 50000; ++i) {
    const auto l = static_cast<int>(rng.NextBounded(kLanes));
    if (lane[l] != kInvalidEventId) queue.Cancel(lane[l]);
    lane_when[l] = rng.NextDouble() * 1000.0;
    lane[l] = queue.Schedule(lane_when[l], [] {});
    ASSERT_LE(queue.Size(), static_cast<std::size_t>(kLanes));
  }
  // Exactly the lanes' final schedules remain, in time order.
  std::vector<double> expected;
  for (int l = 0; l < kLanes; ++l) {
    if (lane[l] != kInvalidEventId) expected.push_back(lane_when[l]);
  }
  std::sort(expected.begin(), expected.end());
  std::vector<double> drained;
  while (!queue.Empty()) drained.push_back(PopTime(queue));
  EXPECT_EQ(drained, expected);
}

TEST(EventQueueTest, SameTimeFifoSurvivesChurnAndReuse) {
  EventQueue queue;
  // Interleave same-time scheduling with cancels that free low slots, so
  // later events recycle earlier slots: FIFO order must follow schedule
  // order, not slot order.
  std::vector<int> fired;
  std::vector<EventId> doomed;
  for (int i = 0; i < 50; ++i) {
    doomed.push_back(queue.Schedule(5.0, [] {}));
  }
  for (const EventId id : doomed) queue.Cancel(id);
  for (int i = 0; i < 50; ++i) {
    queue.Schedule(5.0, [&fired, i] { fired.push_back(i); });
    // Free a slot mid-stream to force reuse for the next event.
    const EventId gap = queue.Schedule(5.0, [] {});
    queue.Cancel(gap);
  }
  while (!queue.Empty()) PopAndRun(queue);
  std::vector<int> expected(50);
  for (int i = 0; i < 50; ++i) expected[i] = i;
  EXPECT_EQ(fired, expected);
}

// ------------------------------------------------------ periodic timers

struct CountingHandler : EventHandler {
  int count = 0;
  void OnEvent() override { ++count; }
};

TEST(EventQueueTest, PeriodicFiresEveryIntervalWhenRearmed) {
  EventQueue queue;
  CountingHandler handler;
  const PeriodicId timer = queue.SchedulePeriodic(1.0, 1.0, &handler);
  EXPECT_FALSE(queue.Empty());
  EXPECT_EQ(queue.Size(), 1U);
  for (int i = 1; i <= 5; ++i) {
    EXPECT_EQ(queue.NextTime(), static_cast<double>(i));
    EventQueue::Fired fired;
    ASSERT_TRUE(queue.Pop(&fired));
    EXPECT_EQ(fired.when, static_cast<double>(i));
    EXPECT_EQ(fired.periodic, timer);
    fired.fn();
    queue.Rearm(fired.periodic);
  }
  EXPECT_EQ(handler.count, 5);
  EXPECT_EQ(queue.Size(), 1U);  // Still armed.
}

TEST(EventQueueTest, CancelPeriodicStopsFiring) {
  EventQueue queue;
  CountingHandler handler;
  const PeriodicId timer = queue.SchedulePeriodic(1.0, 1.0, &handler);
  queue.CancelPeriodic(timer);
  EXPECT_TRUE(queue.Empty());
  EXPECT_EQ(queue.NextTime(), kTimeNever);
  queue.CancelPeriodic(timer);  // Double cancel: harmless.
  queue.Rearm(timer);           // Re-arming a dead timer: harmless.
  EXPECT_TRUE(queue.Empty());
}

TEST(EventQueueTest, PeriodicAndOneShotsInterleaveFifo) {
  EventQueue queue;
  std::vector<int> order;
  struct OrderHandler : EventHandler {
    std::vector<int>* order = nullptr;
    void OnEvent() override { order->push_back(0); }
  } handler;
  handler.order = &order;

  // Periodic armed first: at t=1 it outranks the later-scheduled one-shot
  // (FIFO among ties); the one-shot scheduled after each Rearm fires after
  // the next occurrence too.
  queue.SchedulePeriodic(1.0, 1.0, &handler);
  queue.Schedule(1.0, [&order] { order.push_back(1); });
  queue.Schedule(2.0, [&order] { order.push_back(2); });

  for (int i = 0; i < 4 && !queue.Empty(); ++i) {
    EventQueue::Fired fired;
    ASSERT_TRUE(queue.Pop(&fired));
    fired.fn();
    if (fired.periodic != EventQueue::kNotPeriodic) {
      queue.Rearm(fired.periodic);
    }
    if (fired.when >= 2.0) break;
  }
  // t=1: periodic (seq 1) then one-shot (seq 2); t=2: one-shot (seq 3)
  // before the re-armed periodic (seq drawn at re-arm).
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueTest, ScheduleDoesNotAllocatePerEventInSteadyState) {
  // Behavioural proxy for the zero-allocation claim: a schedule/pop cycle
  // at constant depth must reuse slab slots instead of growing them —
  // observable as stable ids cycling through the same slot indices.
  EventQueue queue;
  for (int i = 0; i < 64; ++i) queue.Schedule(1000.0 + i, [] {});
  std::vector<EventId> seen;
  for (int i = 0; i < 1000; ++i) {
    EventQueue::Fired fired;
    ASSERT_TRUE(queue.Pop(&fired));
    const EventId id = queue.Schedule(2000.0 + i, [] {});
    // Slot index (low 32 bits) must stay within the 64-slot high-water
    // mark established above.
    EXPECT_LT(static_cast<std::uint32_t>(id), 64U);
    seen.push_back(id);
  }
  // And every id is still unique despite the heavy slot reuse.
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

}  // namespace
}  // namespace bdisk::sim
