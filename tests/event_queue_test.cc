#include "sim/event_queue.h"

#include <vector>

#include <gtest/gtest.h>

namespace bdisk::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue queue;
  EXPECT_TRUE(queue.Empty());
  EXPECT_EQ(queue.Size(), 0U);
  EXPECT_EQ(queue.NextTime(), kTimeNever);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> fired;
  queue.Schedule(3.0, [&] { fired.push_back(3); });
  queue.Schedule(1.0, [&] { fired.push_back(1); });
  queue.Schedule(2.0, [&] { fired.push_back(2); });

  while (!queue.Empty()) {
    SimTime when;
    EventQueue::Callback cb;
    queue.Pop(&when, &cb);
    cb();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SimultaneousEventsFireInScheduleOrder) {
  EventQueue queue;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    queue.Schedule(5.0, [&fired, i] { fired.push_back(i); });
  }
  while (!queue.Empty()) {
    SimTime when;
    EventQueue::Callback cb;
    queue.Pop(&when, &cb);
    EXPECT_EQ(when, 5.0);
    cb();
  }
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue queue;
  queue.Schedule(7.0, [] {});
  queue.Schedule(4.0, [] {});
  EXPECT_EQ(queue.NextTime(), 4.0);
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue queue;
  bool fired = false;
  const EventId id = queue.Schedule(1.0, [&] { fired = true; });
  queue.Schedule(2.0, [] {});
  EXPECT_TRUE(queue.IsPending(id));
  queue.Cancel(id);
  EXPECT_FALSE(queue.IsPending(id));
  EXPECT_EQ(queue.Size(), 1U);
  EXPECT_EQ(queue.NextTime(), 2.0);

  SimTime when;
  EventQueue::Callback cb;
  queue.Pop(&when, &cb);
  EXPECT_EQ(when, 2.0);
  EXPECT_FALSE(fired);
  EXPECT_TRUE(queue.Empty());
}

TEST(EventQueueTest, CancelAfterFireIsHarmless) {
  EventQueue queue;
  const EventId id = queue.Schedule(1.0, [] {});
  SimTime when;
  EventQueue::Callback cb;
  queue.Pop(&when, &cb);
  queue.Cancel(id);  // Already fired: must be a no-op.
  EXPECT_TRUE(queue.Empty());

  // A new event must still work after the stale cancel.
  const EventId id2 = queue.Schedule(2.0, [] {});
  EXPECT_TRUE(queue.IsPending(id2));
  EXPECT_EQ(queue.Size(), 1U);
}

TEST(EventQueueTest, CancelInvalidIdIsHarmless) {
  EventQueue queue;
  queue.Cancel(kInvalidEventId);
  queue.Cancel(12345);
  EXPECT_TRUE(queue.Empty());
}

TEST(EventQueueTest, DoubleCancelIsHarmless) {
  EventQueue queue;
  const EventId id = queue.Schedule(1.0, [] {});
  queue.Cancel(id);
  queue.Cancel(id);
  EXPECT_TRUE(queue.Empty());
}

TEST(EventQueueTest, ClearDropsEverything) {
  EventQueue queue;
  queue.Schedule(1.0, [] {});
  queue.Schedule(2.0, [] {});
  queue.Clear();
  EXPECT_TRUE(queue.Empty());
  EXPECT_EQ(queue.NextTime(), kTimeNever);
}

TEST(EventQueueTest, InterleavedScheduleAndPop) {
  EventQueue queue;
  std::vector<double> times;
  queue.Schedule(1.0, [] {});
  queue.Schedule(5.0, [] {});
  SimTime when;
  EventQueue::Callback cb;
  queue.Pop(&when, &cb);
  times.push_back(when);
  queue.Schedule(3.0, [] {});
  queue.Pop(&when, &cb);
  times.push_back(when);
  queue.Pop(&when, &cb);
  times.push_back(when);
  EXPECT_EQ(times, (std::vector<double>{1.0, 3.0, 5.0}));
}

TEST(EventQueueTest, ManyEventsStressOrdering) {
  EventQueue queue;
  // Pseudo-random insertion order, ascending pop order.
  for (int i = 0; i < 1000; ++i) {
    queue.Schedule(static_cast<double>((i * 7919) % 1000), [] {});
  }
  SimTime prev = -1.0;
  while (!queue.Empty()) {
    SimTime when;
    EventQueue::Callback cb;
    queue.Pop(&when, &cb);
    EXPECT_GE(when, prev);
    prev = when;
  }
}

}  // namespace
}  // namespace bdisk::sim
