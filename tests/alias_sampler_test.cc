#include "sim/alias_sampler.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace bdisk::sim {
namespace {

TEST(AliasSamplerTest, SingleOutcome) {
  AliasSampler sampler({5.0});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(rng), 0U);
  EXPECT_EQ(sampler.Probability(0), 1.0);
}

TEST(AliasSamplerTest, NormalizesWeights) {
  AliasSampler sampler({2.0, 6.0});
  EXPECT_NEAR(sampler.Probability(0), 0.25, 1e-12);
  EXPECT_NEAR(sampler.Probability(1), 0.75, 1e-12);
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  AliasSampler sampler({1.0, 0.0, 1.0});
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(sampler.Sample(rng), 1U);
}

TEST(AliasSamplerTest, UniformFrequencies) {
  const std::size_t n = 8;
  AliasSampler sampler(std::vector<double>(n, 1.0));
  Rng rng(3);
  std::vector<int> counts(n, 0);
  const int draws = 160000;
  for (int i = 0; i < draws; ++i) ++counts[sampler.Sample(rng)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / draws, 1.0 / n, 0.01);
  }
}

TEST(AliasSamplerTest, SkewedFrequenciesMatchChiSquare) {
  const std::vector<double> weights = {10.0, 5.0, 2.5, 1.0, 0.5, 1.0};
  AliasSampler sampler(weights);
  Rng rng(4);
  std::vector<int> counts(weights.size(), 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) ++counts[sampler.Sample(rng)];

  // Pearson chi-square against the expected distribution; 5 dof, the 99.9th
  // percentile is ~20.5.
  double chi2 = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double expected = sampler.Probability(i) * draws;
    const double diff = counts[i] - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, 20.5);
}

TEST(AliasSamplerTest, LargeDistribution) {
  std::vector<double> weights(1000);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1.0 / static_cast<double>(i + 1);
  }
  AliasSampler sampler(weights);
  Rng rng(5);
  // Hottest item should dominate: p0 ~ 1/H_1000 ~ 0.1336.
  int zero = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    if (sampler.Sample(rng) == 0) ++zero;
  }
  EXPECT_NEAR(static_cast<double>(zero) / draws, sampler.Probability(0),
              0.005);
}

TEST(AliasSamplerTest, NextNMatchesSampleDrawForDraw) {
  // NextN is the bulk form of n Sample() calls: identical outputs AND the
  // identical final RNG state, for any seed and any n (the batched arrival
  // spine depends on this to keep trajectories bit-identical).
  const std::vector<double> weights = {10.0, 5.0, 2.5, 1.0, 0.5, 1.0};
  AliasSampler sampler(weights);
  for (std::uint64_t seed : {1ULL, 42ULL, 20260809ULL}) {
    for (std::size_t n : {0UL, 1UL, 7UL, 256UL, 1000UL}) {
      Rng scalar_rng(seed);
      Rng bulk_rng(seed);
      std::vector<std::uint32_t> expected(n);
      for (std::size_t i = 0; i < n; ++i) {
        expected[i] = sampler.Sample(scalar_rng);
      }
      std::vector<std::uint32_t> got(n);
      sampler.NextN(bulk_rng, got.data(), n);
      EXPECT_EQ(got, expected) << "seed " << seed << " n " << n;
      // Final state equal: the next draw after the batch agrees too.
      EXPECT_EQ(bulk_rng.Next(), scalar_rng.Next())
          << "seed " << seed << " n " << n;
    }
  }
}

TEST(AliasSamplerTest, NextNSplitAnywhereIsOneStream) {
  // Chunking invariance: NextN(a) then NextN(b) over one RNG equals
  // NextN(a+b) — bulk draws can be split at any batch boundary.
  std::vector<double> weights(100);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1.0 / static_cast<double>(i + 1);
  }
  AliasSampler sampler(weights);
  const std::size_t total = 512;
  Rng whole_rng(99);
  std::vector<std::uint32_t> whole(total);
  sampler.NextN(whole_rng, whole.data(), total);
  for (std::size_t split : {1UL, 63UL, 256UL, 511UL}) {
    Rng split_rng(99);
    std::vector<std::uint32_t> parts(total);
    sampler.NextN(split_rng, parts.data(), split);
    sampler.NextN(split_rng, parts.data() + split, total - split);
    EXPECT_EQ(parts, whole) << "split " << split;
    EXPECT_EQ(split_rng.Next(), Rng(whole_rng).Next()) << "split " << split;
  }
}

TEST(AliasSamplerDeathTest, RejectsAllZeroWeights) {
  EXPECT_DEATH(AliasSampler({0.0, 0.0}), "positive");
}

TEST(AliasSamplerDeathTest, RejectsNegativeWeights) {
  EXPECT_DEATH(AliasSampler({1.0, -0.5}), "non-negative");
}

TEST(AliasSamplerDeathTest, RejectsEmpty) {
  EXPECT_DEATH(AliasSampler({}), "at least one");
}

}  // namespace
}  // namespace bdisk::sim
