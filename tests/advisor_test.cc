#include "analysis/advisor.h"

#include <gtest/gtest.h>

namespace bdisk::analysis {
namespace {

core::SystemConfig BaseConfig() {
  core::SystemConfig config;
  config.server_db_size = 100;
  config.disks = broadcast::DiskConfig{{10, 40, 50}, {3, 2, 1}};
  config.cache_size = 10;
  config.server_queue_size = 10;
  config.mc_think_time = 5.0;
  return config;
}

TEST(AdvisorTest, LightLoadPrefersAggressivePull) {
  core::SystemConfig config = BaseConfig();
  config.think_time_ratio = 5.0;
  const Recommendation rec = Recommend(config);
  EXPECT_GE(rec.pull_bw, 0.5);
  EXPECT_LE(rec.thres_perc, 0.10);
  EXPECT_GT(rec.predicted_response, 0.0);
}

TEST(AdvisorTest, HeavyLoadPrefersConservativeBackchannel) {
  core::SystemConfig config = BaseConfig();
  config.think_time_ratio = 500.0;
  const Recommendation heavy = Recommend(config);

  config.think_time_ratio = 5.0;
  const Recommendation light = Recommend(config);
  // Under saturation the advisor must back off relative to light load:
  // larger threshold and/or less pull bandwidth.
  EXPECT_TRUE(heavy.thres_perc > light.thres_perc ||
              heavy.pull_bw < light.pull_bw);
}

TEST(AdvisorTest, RobustWorstCaseIsAtLeastEachPointwise) {
  core::SystemConfig config = BaseConfig();
  const std::vector<double> loads = {5.0, 50.0, 500.0};
  const Recommendation robust = RecommendRobust(config, loads);
  for (const double ttr : loads) {
    config.think_time_ratio = ttr;
    const Recommendation pointwise = Recommend(config);
    EXPECT_GE(robust.predicted_response,
              pointwise.predicted_response - 1e-9);
  }
}

TEST(AdvisorTest, RobustBeatsExtremeKnobsAcrossTheRange) {
  // The robust pick's worst case must not exceed the worst case of the
  // most aggressive grid point (that is the point of hedging).
  core::SystemConfig config = BaseConfig();
  const std::vector<double> loads = {5.0, 500.0};
  const Recommendation robust = RecommendRobust(config, loads);

  double aggressive_worst = 0.0;
  for (const double ttr : loads) {
    core::SystemConfig point = config;
    point.mode = core::DeliveryMode::kIpp;
    point.think_time_ratio = ttr;
    point.pull_bw = 0.9;
    point.thres_perc = 0.0;
    aggressive_worst = std::max(
        aggressive_worst, PredictResponse(point).mean_response);
  }
  EXPECT_LE(robust.predicted_response, aggressive_worst + 1e-9);
}

TEST(AdvisorTest, SearchesChopGridWhenProvided) {
  core::SystemConfig config = BaseConfig();
  config.think_time_ratio = 10.0;
  AdvisorGrid grid;
  grid.chop = {0, 50};
  const Recommendation rec = Recommend(config, grid);
  EXPECT_TRUE(rec.chop == 0 || rec.chop == 50);
}

TEST(AdvisorDeathTest, RejectsEmptyInput) {
  core::SystemConfig config = BaseConfig();
  EXPECT_DEATH(RecommendRobust(config, {}), "at least one");
  AdvisorGrid grid;
  grid.pull_bw = {};
  EXPECT_DEATH(Recommend(config, grid), "non-empty");
}

}  // namespace
}  // namespace bdisk::analysis
