#include "workload/noise.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

namespace bdisk::workload {
namespace {

bool IsPermutation(const std::vector<std::uint32_t>& perm) {
  std::vector<std::uint32_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] != i) return false;
  }
  return true;
}

TEST(NoiseTest, ZeroNoiseIsIdentity) {
  sim::Rng rng(1);
  const auto perm = NoisePermutation(100, 0.0, rng);
  EXPECT_EQ(PermutationDisplacement(perm), 0.0);
}

TEST(NoiseTest, AlwaysAValidPermutation) {
  for (const double noise : {0.0, 0.15, 0.35, 1.0}) {
    sim::Rng rng(static_cast<std::uint64_t>(noise * 100) + 7);
    const auto perm = NoisePermutation(200, noise, rng);
    EXPECT_TRUE(IsPermutation(perm)) << "noise=" << noise;
  }
}

TEST(NoiseTest, DisplacementGrowsWithNoise) {
  sim::Rng rng15(42);
  sim::Rng rng35(42);
  const auto perm15 = NoisePermutation(1000, 0.15, rng15);
  const auto perm35 = NoisePermutation(1000, 0.35, rng35);
  EXPECT_GT(PermutationDisplacement(perm35),
            PermutationDisplacement(perm15));
  EXPECT_GT(PermutationDisplacement(perm15), 0.05);
}

TEST(NoiseTest, DeterministicGivenRngState) {
  sim::Rng a(9);
  sim::Rng b(9);
  EXPECT_EQ(NoisePermutation(100, 0.5, a), NoisePermutation(100, 0.5, b));
}

TEST(NoiseTest, TinyDomains) {
  sim::Rng rng(3);
  EXPECT_EQ(NoisePermutation(0, 0.5, rng).size(), 0U);
  const auto one = NoisePermutation(1, 1.0, rng);
  ASSERT_EQ(one.size(), 1U);
  EXPECT_EQ(one[0], 0U);
}

TEST(NoiseTest, DisplacementHelper) {
  EXPECT_EQ(PermutationDisplacement({0, 1, 2, 3}), 0.0);
  EXPECT_EQ(PermutationDisplacement({1, 0, 2, 3}), 0.5);
  EXPECT_EQ(PermutationDisplacement({}), 0.0);
}

TEST(NoiseDeathTest, RejectsOutOfRangeNoise) {
  sim::Rng rng(5);
  EXPECT_DEATH(NoisePermutation(10, 1.5, rng), "noise");
  EXPECT_DEATH(NoisePermutation(10, -0.1, rng), "noise");
}

}  // namespace
}  // namespace bdisk::workload
