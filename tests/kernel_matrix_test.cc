// Kernel-matrix invariance: the event-queue backend (`kernel.queue`),
// batched slot execution (`kernel.batch_slots`), and the batched arrival
// spine (`sim.arrival_spine`) are pure wall-clock knobs. Every cell of the
// {heap, wheel} x {batched, stepped} x {spine on, off} matrix must produce
// the bit-identical simulated trajectory — metrics, counters, and the full
// trace stream — fused or unfused, with and without an active fault plan.
// CI runs the whole suite under BDISK_KERNEL_QUEUE=heap and =wheel (and a
// BDISK_ARRIVAL_SPINE=on TSan leg) on top of this, so the matrix is pinned
// both in-process and across processes.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/system.h"
#include "obs/frame_sink.h"
#include "obs/phase_profiler.h"
#include "obs/telemetry_bus.h"
#include "obs/trace_sink.h"
#include "obs/windowed_collector.h"

namespace bdisk {
namespace {

struct Cell {
  core::KernelQueue queue;
  bool batch;
  bool spine;
};

const Cell kMatrix[] = {
    {core::KernelQueue::kHeap, true, true},
    {core::KernelQueue::kHeap, true, false},
    {core::KernelQueue::kHeap, false, true},
    {core::KernelQueue::kHeap, false, false},
    {core::KernelQueue::kWheel, true, true},
    {core::KernelQueue::kWheel, true, false},
    {core::KernelQueue::kWheel, false, true},
    {core::KernelQueue::kWheel, false, false},
};

std::string CellName(const Cell& cell) {
  std::string name =
      cell.queue == core::KernelQueue::kHeap ? "heap" : "wheel";
  name += cell.batch ? "/batched" : "/stepped";
  name += cell.spine ? "/spine" : "/scalar";
  return name;
}

core::SteadyStateProtocol SmallProtocol() {
  core::SteadyStateProtocol protocol;
  protocol.post_fill_accesses = 100;
  protocol.min_measured_accesses = 500;
  protocol.max_measured_accesses = 1500;
  protocol.batch_size = 250;
  protocol.tolerance = 0.1;
  return protocol;
}

core::SystemConfig SmallLoadedConfig() {
  core::SystemConfig config;
  config.mode = core::DeliveryMode::kIpp;
  config.server_db_size = 100;
  config.disks = broadcast::DiskConfig{{10, 40, 50}, {3, 2, 1}};
  config.cache_size = 10;
  config.server_queue_size = 10;
  config.mc_think_time = 5.0;
  config.think_time_ratio = 50.0;
  config.pull_bw = 0.5;
  config.thres_perc = 0.1;
  config.seed = 20260808;
  return config;
}

// Pins the cell explicitly (kOn/kOff, never kAuto) so the in-process
// matrix is immune to the BDISK_ARRIVAL_SPINE environment override.
void ApplyCell(core::SystemConfig* config, const Cell& cell) {
  config->kernel_queue = cell.queue;
  config->kernel_batch_slots = cell.batch;
  config->arrival_spine =
      cell.spine ? core::ArrivalSpine::kOn : core::ArrivalSpine::kOff;
}

// Trajectory fields only: kernel accounting is compared separately, since
// profile counters (heap high water, stale-discard timing, span counts) are
// backend-specific by design.
void ExpectSameTrajectory(const core::RunResult& a, const core::RunResult& b,
                          const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.mean_response, b.mean_response);
  EXPECT_EQ(a.response_stats.Variance(), b.response_stats.Variance());
  EXPECT_EQ(a.response_stats.Count(), b.response_stats.Count());
  EXPECT_EQ(a.response_p50, b.response_p50);
  EXPECT_EQ(a.response_p90, b.response_p90);
  EXPECT_EQ(a.response_p99, b.response_p99);
  EXPECT_EQ(a.response_max, b.response_max);
  EXPECT_EQ(a.mc_accesses, b.mc_accesses);
  EXPECT_EQ(a.mc_hit_rate, b.mc_hit_rate);
  EXPECT_EQ(a.mc_pulls_sent, b.mc_pulls_sent);
  EXPECT_EQ(a.mc_retries_sent, b.mc_retries_sent);
  EXPECT_EQ(a.mc_invalidations, b.mc_invalidations);
  EXPECT_EQ(a.vc_requests_generated, b.vc_requests_generated);
  EXPECT_EQ(a.vc_cache_hits, b.vc_cache_hits);
  EXPECT_EQ(a.vc_filtered, b.vc_filtered);
  EXPECT_EQ(a.vc_submitted, b.vc_submitted);
  EXPECT_EQ(a.updates_generated, b.updates_generated);
  EXPECT_EQ(a.requests_submitted, b.requests_submitted);
  EXPECT_EQ(a.requests_accepted, b.requests_accepted);
  EXPECT_EQ(a.requests_coalesced, b.requests_coalesced);
  EXPECT_EQ(a.requests_dropped, b.requests_dropped);
  EXPECT_EQ(a.requests_shed, b.requests_shed);
  EXPECT_EQ(a.requests_dropped_outage, b.requests_dropped_outage);
  EXPECT_EQ(a.queue_depth_high_water, b.queue_depth_high_water);
  EXPECT_EQ(a.fault_slots_lost, b.fault_slots_lost);
  EXPECT_EQ(a.fault_slots_corrupted, b.fault_slots_corrupted);
  EXPECT_EQ(a.fault_requests_lost, b.fault_requests_lost);
  EXPECT_EQ(a.fault_requests_delayed, b.fault_requests_delayed);
  EXPECT_EQ(a.outage_slots, b.outage_slots);
  EXPECT_EQ(a.mc_timeouts_fired, b.mc_timeouts_fired);
  EXPECT_EQ(a.mc_fallbacks, b.mc_fallbacks);
  EXPECT_EQ(a.push_slot_frac, b.push_slot_frac);
  EXPECT_EQ(a.pull_slot_frac, b.pull_slot_frac);
  EXPECT_EQ(a.idle_slot_frac, b.idle_slot_frac);
  EXPECT_EQ(a.sim_time_end, b.sim_time_end);
  EXPECT_EQ(a.converged, b.converged);
  // Dispatched-event count is part of the trajectory contract: the span
  // loop must count occurrences exactly like per-event stepping, and the
  // backend must never execute a stale carcass.
  EXPECT_EQ(a.kernel.events_executed, b.kernel.events_executed);
  EXPECT_EQ(a.kernel.lazy_arrivals_fused, b.kernel.lazy_arrivals_fused);
  EXPECT_EQ(a.kernel.periodic_rearms, b.kernel.periodic_rearms);
}

void ExpectMatrixInvariant(const core::SystemConfig& config) {
  std::optional<core::RunResult> reference;
  for (std::size_t i = 0; i < std::size(kMatrix); ++i) {
    core::SystemConfig cell_config = config;
    ApplyCell(&cell_config, kMatrix[i]);
    core::System system(cell_config);
    const core::RunResult cell = system.RunSteadyState(SmallProtocol());
    // Spine cells actually take spine drains — unless something (unfused
    // VC, fault request_delay) bypasses the fused path, in which case
    // they must not take any.
    if (system.vc() != nullptr) {
      const bool engaged = kMatrix[i].spine && system.vc()->Fused();
      EXPECT_EQ(system.vc()->SpineActive(), engaged) << CellName(kMatrix[i]);
      if (engaged) {
        EXPECT_GT(system.vc()->SpineBatches(), 0U) << CellName(kMatrix[i]);
      } else {
        EXPECT_EQ(system.vc()->SpineBatches(), 0U) << CellName(kMatrix[i]);
      }
    }
    // Batched cells actually batch; stepped cells actually step.
    if (kMatrix[i].batch) {
      EXPECT_GT(cell.kernel.periodic_spans, 0U) << CellName(kMatrix[i]);
    } else {
      EXPECT_EQ(cell.kernel.periodic_spans, 0U) << CellName(kMatrix[i]);
    }
    if (!reference.has_value()) {
      reference = cell;
      continue;
    }
    ExpectSameTrajectory(*reference, cell,
                         CellName(kMatrix[0]) + " vs " + CellName(kMatrix[i]));
  }
}

TEST(KernelMatrixTest, TrajectoryInvariantAcrossQueueAndBatching) {
  ExpectMatrixInvariant(SmallLoadedConfig());
}

TEST(KernelMatrixTest, TrajectoryInvariantUnfused) {
  // The unfused VC path schedules every arrival as a one-shot — far more
  // churn through the wheel buckets, and spans break at every arrival.
  core::SystemConfig config = SmallLoadedConfig();
  config.vc_fusion = false;
  ExpectMatrixInvariant(config);
}

TEST(KernelMatrixTest, TrajectoryInvariantWithActiveFaultPlan) {
  // An *active* plan: fault code draws randomness, injects slot loss and
  // outages, delays requests, and drives the MC retry/timeout engine —
  // all of it must land identically on every matrix cell. (The inert-plan
  // case is the default-config test above; see ROBUSTNESS.md.)
  core::SystemConfig config = SmallLoadedConfig();
  config.fault.slot_loss = 0.05;
  config.fault.request_loss = 0.05;
  config.fault.request_delay = 2.0;
  config.fault.outage_start = 200.0;
  config.fault.outage_duration = 25.0;
  config.fault.outage_period = 400.0;
  config.fault.mc_timeout = 50.0;
  ASSERT_TRUE(config.fault.Enabled());
  ASSERT_EQ(config.Validate(), "");
  ExpectMatrixInvariant(config);
}

TEST(KernelMatrixTest, TrajectoryInvariantWithUpdatesAndAdaptation) {
  // Volatile data plus both controllers: the densest event mix (update
  // wakeups, controller windows, invalidation barriers) the system has.
  core::SystemConfig config = SmallLoadedConfig();
  config.update_rate = 0.2;
  config.adaptive_pull_bw = true;
  config.adaptive_threshold = true;
  ExpectMatrixInvariant(config);
}

// fault.request_delay forces the unfused VC path (delayed arrivals need
// their own heap events), which must bypass the spine entirely no matter
// what `sim.arrival_spine` asks for — and the bypassed run must still be
// bit-identical to an explicit spine-off run.
TEST(KernelMatrixTest, FaultDelayForcesUnfusedAndBypassesSpine) {
  core::SystemConfig config = SmallLoadedConfig();
  config.update_rate = 0.2;
  config.fault.request_delay = 2.0;
  ASSERT_TRUE(config.fault.Enabled());
  ASSERT_EQ(config.Validate(), "");

  config.arrival_spine = core::ArrivalSpine::kOn;
  core::System forced(config);
  ASSERT_NE(forced.vc(), nullptr);
  EXPECT_FALSE(forced.vc()->Fused());
  EXPECT_FALSE(forced.vc()->SpineActive());
  const core::RunResult on = forced.RunSteadyState(SmallProtocol());
  EXPECT_EQ(forced.vc()->SpineBatches(), 0U);

  config.arrival_spine = core::ArrivalSpine::kOff;
  core::System off_system(config);
  const core::RunResult off = off_system.RunSteadyState(SmallProtocol());
  ExpectSameTrajectory(on, off, "forced-unfused spine on vs off");
}

// The strongest pin: the complete trace stream — every span record, in
// order, with timestamps and payloads — must be byte-for-byte identical
// across the matrix.
TEST(KernelMatrixTest, TraceStreamsIdenticalAcrossMatrix) {
  core::SystemConfig config = SmallLoadedConfig();
  config.update_rate = 0.2;

  std::vector<obs::SpanRecord> reference;
  for (std::size_t i = 0; i < std::size(kMatrix); ++i) {
    ApplyCell(&config, kMatrix[i]);
    core::System system(config);
    obs::TraceSink sink(1 << 21);
    system.AttachTrace(&sink);
    system.RunSteadyState(SmallProtocol());
    ASSERT_EQ(sink.DroppedEvents(), 0U) << CellName(kMatrix[i]);
    if (i == 0) {
      reference = sink.Events();
      ASSERT_GT(reference.size(), 0U);
      continue;
    }
    const std::vector<obs::SpanRecord>& events = sink.Events();
    ASSERT_EQ(events.size(), reference.size()) << CellName(kMatrix[i]);
    for (std::size_t r = 0; r < events.size(); ++r) {
      ASSERT_EQ(events[r].time, reference[r].time)
          << CellName(kMatrix[i]) << " record " << r;
      ASSERT_EQ(events[r].event, reference[r].event)
          << CellName(kMatrix[i]) << " record " << r;
      ASSERT_EQ(events[r].client, reference[r].client)
          << CellName(kMatrix[i]) << " record " << r;
      ASSERT_EQ(events[r].page, reference[r].page)
          << CellName(kMatrix[i]) << " record " << r;
      ASSERT_EQ(events[r].value, reference[r].value)
          << CellName(kMatrix[i]) << " record " << r;
    }
  }
}

// Profiler arm: attaching the wall-clock phase profiler is a pure
// wall-clock knob too. Every matrix cell must produce the bit-identical
// RunResult *and* trace stream with the profiler attached as without —
// under an active fault plan, so the fault.judge instrumentation sites
// (which straddle the injector's RNG draws) are exercised.
TEST(KernelMatrixTest, ProfilerAttachLeavesTrajectoryBitIdentical) {
  core::SystemConfig config = SmallLoadedConfig();
  config.update_rate = 0.2;
  config.fault.slot_loss = 0.05;
  config.fault.request_loss = 0.05;
  config.fault.request_delay = 2.0;
  config.fault.mc_timeout = 50.0;
  ASSERT_TRUE(config.fault.Enabled());

  for (const Cell& cell : kMatrix) {
    ApplyCell(&config, cell);

    core::System plain(config);
    obs::TraceSink plain_sink(1 << 21);
    plain.AttachTrace(&plain_sink);
    const core::RunResult reference = plain.RunSteadyState(SmallProtocol());

    core::System profiled(config);
    obs::TraceSink profiled_sink(1 << 21);
    obs::PhaseProfiler profiler;
    profiled.AttachTrace(&profiled_sink);
    profiled.AttachProfiler(&profiler);
    const core::RunResult result = profiled.RunSteadyState(SmallProtocol());

    ExpectSameTrajectory(reference, result,
                         CellName(cell) + " profiler off vs on");
    const std::vector<obs::SpanRecord>& a = plain_sink.Events();
    const std::vector<obs::SpanRecord>& b = profiled_sink.Events();
    ASSERT_EQ(a.size(), b.size()) << CellName(cell);
    for (std::size_t r = 0; r < a.size(); ++r) {
      ASSERT_EQ(a[r].time, b[r].time) << CellName(cell) << " record " << r;
      ASSERT_EQ(a[r].event, b[r].event) << CellName(cell) << " record " << r;
      ASSERT_EQ(a[r].client, b[r].client)
          << CellName(cell) << " record " << r;
      ASSERT_EQ(a[r].page, b[r].page) << CellName(cell) << " record " << r;
      ASSERT_EQ(a[r].value, b[r].value)
          << CellName(cell) << " record " << r;
    }

    // The profile actually observed the run: every frame closed, the
    // fused-arrival and slot phases fired, and the fault sites were hit.
    EXPECT_EQ(profiler.OpenDepth(), 0) << CellName(cell);
    EXPECT_GT(profiler.Calls(obs::Phase::kRun), 0U) << CellName(cell);
    EXPECT_GT(profiler.Calls(obs::Phase::kServerSlot), 0U) << CellName(cell);
    EXPECT_GT(profiler.Calls(obs::Phase::kVcArrival), 0U) << CellName(cell);
    EXPECT_GT(profiler.Calls(obs::Phase::kFaultJudge), 0U) << CellName(cell);
    EXPECT_GT(profiler.Ops(obs::Phase::kVcArrival), 0U) << CellName(cell);
  }
}

// Telemetry-bus arm: streaming bdisk-frame-v1 frames is a pure observer
// too. Every matrix cell must produce the bit-identical RunResult *and*
// trace stream with the bus attached as without — and, because frame
// provenance carries only trajectory-relevant fields (never kernel-backend
// knobs) and the wall clock is suppressed, the frame streams themselves
// must be byte-identical across all eight cells.
TEST(KernelMatrixTest, TelemetryBusAttachLeavesTrajectoryBitIdentical) {
  core::SystemConfig config = SmallLoadedConfig();
  config.fault.slot_loss = 0.05;
  config.fault.request_loss = 0.05;
  ASSERT_TRUE(config.fault.Enabled());

  std::vector<std::string> reference_frames;
  for (const Cell& cell : kMatrix) {
    ApplyCell(&config, cell);

    core::System plain(config);
    obs::TraceSink plain_sink(1 << 21);
    plain.AttachTrace(&plain_sink);
    const core::RunResult reference = plain.RunSteadyState(SmallProtocol());

    core::System observed(config);
    obs::TraceSink observed_sink(1 << 21);
    auto frame_sink = std::make_unique<obs::CaptureFrameSink>();
    obs::CaptureFrameSink* capture = frame_sink.get();
    obs::WindowedCollector collector(config.obs_window);
    obs::TelemetryBus bus(std::move(frame_sink));
    bus.EnableWallClock(false);
    observed.AttachTrace(&observed_sink);
    observed.AttachWindowedCollector(&collector);
    observed.AttachTelemetryBus(&bus);
    const core::RunResult result = observed.RunSteadyState(SmallProtocol());

    ExpectSameTrajectory(reference, result, CellName(cell) + " bus off vs on");
    const std::vector<obs::SpanRecord>& a = plain_sink.Events();
    const std::vector<obs::SpanRecord>& b = observed_sink.Events();
    ASSERT_EQ(a.size(), b.size()) << CellName(cell);
    for (std::size_t r = 0; r < a.size(); ++r) {
      ASSERT_EQ(a[r].time, b[r].time) << CellName(cell) << " record " << r;
      ASSERT_EQ(a[r].event, b[r].event) << CellName(cell) << " record " << r;
      ASSERT_EQ(a[r].client, b[r].client)
          << CellName(cell) << " record " << r;
      ASSERT_EQ(a[r].page, b[r].page) << CellName(cell) << " record " << r;
      ASSERT_EQ(a[r].value, b[r].value)
          << CellName(cell) << " record " << r;
    }

    // The stream observed the run, with nothing dropped by a memory sink.
    EXPECT_GT(bus.WindowFrames(), 0U) << CellName(cell);
    EXPECT_EQ(bus.FramesDropped(), 0U) << CellName(cell);
    if (reference_frames.empty()) {
      reference_frames = capture->frames();
      ASSERT_GT(reference_frames.size(), 2U);
      continue;
    }
    // Byte-identical frames across kernel backends.
    EXPECT_EQ(capture->frames(), reference_frames) << CellName(cell);
  }
}

}  // namespace
}  // namespace bdisk
