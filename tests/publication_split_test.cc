#include "analysis/publication_split.h"

#include <gtest/gtest.h>

#include "sim/zipf.h"

namespace bdisk::analysis {
namespace {

TEST(PublicationSplitTest, PublishNothingIsPurePull) {
  const auto probs = sim::ZipfPmf(100, 0.95);
  const SplitEvaluation eval = EvaluateSplit(probs, 0.5, 0);
  EXPECT_DOUBLE_EQ(eval.on_demand_mass, 1.0);
  EXPECT_DOUBLE_EQ(eval.uplink_rate, 0.5);
  EXPECT_TRUE(eval.stable);
  // M/M/1 with lambda=0.5, mu=1: W=2, +1 alignment.
  EXPECT_DOUBLE_EQ(eval.expected_response, 3.0);
}

TEST(PublicationSplitTest, PublishEverythingIsPurePush) {
  const auto probs = sim::ZipfPmf(100, 0.95);
  const SplitEvaluation eval = EvaluateSplit(probs, 0.5, 100);
  EXPECT_DOUBLE_EQ(eval.on_demand_mass, 0.0);
  EXPECT_DOUBLE_EQ(eval.uplink_rate, 0.0);
  // Flat 100-page cycle: 100/2 + 1.
  EXPECT_DOUBLE_EQ(eval.expected_response, 51.0);
}

TEST(PublicationSplitTest, UplinkRateDecreasesWithPublicationSize) {
  const auto probs = sim::ZipfPmf(100, 0.95);
  double prev = 2.0;
  for (const std::uint32_t n : {0U, 10U, 50U, 90U, 100U}) {
    const SplitEvaluation eval = EvaluateSplit(probs, 1.5, n);
    EXPECT_LT(eval.uplink_rate, prev) << n;
    prev = eval.uplink_rate;
  }
}

TEST(PublicationSplitTest, InstabilityDetected) {
  const auto probs = sim::ZipfPmf(100, 0.95);
  // Request rate 2/slot with nothing published: lambda = 2 > 1.
  const SplitEvaluation eval = EvaluateSplit(probs, 2.0, 0);
  EXPECT_FALSE(eval.stable);
}

TEST(PublicationSplitTest, OptimizerMinimizesUplinkSubjectToBound) {
  const auto probs = sim::ZipfPmf(100, 0.95);
  const SplitResult result = OptimizePublicationSplit(probs, 1.5, 40.0);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.best.stable);
  EXPECT_LE(result.best.expected_response, 40.0);
  // Minimizing uplink under the bound publishes as much as the bound
  // allows; every larger stable split must violate the bound.
  for (const SplitEvaluation& eval : result.all) {
    if (eval.publication_size > result.best.publication_size &&
        eval.stable) {
      EXPECT_GT(eval.expected_response, 40.0) << eval.publication_size;
    }
  }
}

TEST(PublicationSplitTest, TighterBoundForcesMoreUplink) {
  const auto probs = sim::ZipfPmf(100, 0.95);
  const SplitResult loose = OptimizePublicationSplit(probs, 1.5, 40.0);
  const SplitResult tight = OptimizePublicationSplit(probs, 1.5, 15.0);
  ASSERT_TRUE(loose.feasible);
  ASSERT_TRUE(tight.feasible);
  EXPECT_GE(tight.best.uplink_rate, loose.best.uplink_rate);
  EXPECT_LE(tight.best.publication_size, loose.best.publication_size);
}

TEST(PublicationSplitTest, InfeasibleWhenBoundTooTightUnderLoad) {
  const auto probs = sim::ZipfPmf(1000, 0.95);
  // Huge load: publishing little diverges, publishing much blows the
  // bound; a 2-unit bound is unattainable.
  const SplitResult result = OptimizePublicationSplit(probs, 5.0, 2.0);
  EXPECT_FALSE(result.feasible);
  EXPECT_EQ(result.all.size(), 1001U);
}

TEST(PublicationSplitTest, EvaluationsSweepWholeRange) {
  const auto probs = sim::ZipfPmf(10, 0.95);
  const SplitResult result = OptimizePublicationSplit(probs, 0.1, 100.0);
  ASSERT_EQ(result.all.size(), 11U);
  for (std::uint32_t n = 0; n <= 10; ++n) {
    EXPECT_EQ(result.all[n].publication_size, n);
  }
}

TEST(PublicationSplitDeathTest, RejectsBadInputs) {
  const auto probs = sim::ZipfPmf(10, 0.95);
  EXPECT_DEATH(EvaluateSplit({}, 1.0, 0), "empty");
  EXPECT_DEATH(EvaluateSplit(probs, -1.0, 0), "negative");
  EXPECT_DEATH(EvaluateSplit(probs, 1.0, 11), "exceeds");
  EXPECT_DEATH(OptimizePublicationSplit(probs, 1.0, 0.0), "positive");
}

}  // namespace
}  // namespace bdisk::analysis
