// FaultPlan validation and FaultInjector decision semantics: the inert
// default (no draws, no counts), deterministic injection per seed, and the
// pure-time outage window arithmetic.

#include "fault/fault_plan.h"

#include <vector>

#include <gtest/gtest.h>

#include "fault/fault_injector.h"
#include "sim/rng.h"

namespace bdisk::fault {
namespace {

TEST(FaultPlanTest, DefaultPlanIsValidAndDisabled) {
  FaultPlan plan;
  EXPECT_EQ(plan.Validate(), "");
  EXPECT_FALSE(plan.Enabled());
  EXPECT_FALSE(plan.ChannelFaultsEnabled());
  EXPECT_FALSE(plan.OutagesEnabled());
  EXPECT_FALSE(plan.DegradedModeEnabled());
}

TEST(FaultPlanTest, EnablingAnyGroupEnablesThePlan) {
  FaultPlan plan;
  plan.slot_loss = 0.1;
  EXPECT_TRUE(plan.ChannelFaultsEnabled());
  EXPECT_TRUE(plan.Enabled());

  plan = FaultPlan{};
  plan.outage_duration = 5.0;
  EXPECT_TRUE(plan.OutagesEnabled());
  EXPECT_TRUE(plan.Enabled());

  plan = FaultPlan{};
  plan.shed_hi = 0.9;
  EXPECT_TRUE(plan.DegradedModeEnabled());
  EXPECT_TRUE(plan.Enabled());
}

TEST(FaultPlanTest, ValidationNamesTheOffendingKey) {
  FaultPlan plan;
  plan.slot_loss = -0.1;
  EXPECT_EQ(plan.Validate(),
            "fault.slot_loss must be a probability in [0, 1], got -0.1");

  plan = FaultPlan{};
  plan.slot_loss = 0.7;
  plan.slot_corruption = 0.7;
  EXPECT_EQ(plan.Validate(),
            "fault.slot_loss + fault.slot_corruption must not exceed 1, "
            "got 1.4");

  plan = FaultPlan{};
  plan.request_delay = -1.0;
  EXPECT_EQ(plan.Validate(), "fault.request_delay must be >= 0, got -1");

  plan = FaultPlan{};
  plan.mc_backoff = 0.5;
  EXPECT_EQ(plan.Validate(), "fault.mc_backoff must be >= 1, got 0.5");
}

TEST(FaultPlanTest, RepeatingOutageMustOutlastItsWindow) {
  FaultPlan plan;
  plan.outage_duration = 10.0;
  plan.outage_period = 10.0;
  EXPECT_EQ(plan.Validate(),
            "fault.outage_period (10) must exceed fault.outage_duration "
            "(10) or be 0 for a one-shot window");
  plan.outage_period = 0.0;  // One-shot is fine.
  EXPECT_EQ(plan.Validate(), "");
  plan.outage_period = 50.0;
  EXPECT_EQ(plan.Validate(), "");
}

TEST(FaultPlanTest, BackoffCapMustCoverTheBaseTimeout) {
  FaultPlan plan;
  plan.mc_timeout = 100.0;
  plan.mc_backoff_cap = 50.0;
  EXPECT_EQ(plan.Validate(),
            "fault.mc_backoff_cap (50) must be >= fault.mc_timeout (100)");
  plan.mc_backoff_cap = 0.0;  // Auto cap resolves to 8x, always valid.
  EXPECT_EQ(plan.Validate(), "");
}

TEST(FaultPlanTest, HysteresisRequiresLowBelowHigh) {
  FaultPlan plan;
  plan.shed_hi = 0.5;
  plan.shed_lo = 0.5;
  EXPECT_EQ(plan.Validate(),
            "fault.shed_lo (0.5) must be < fault.shed_hi (0.5) for "
            "hysteresis");
  plan.shed_lo = 0.2;
  EXPECT_EQ(plan.Validate(), "");
  plan.shed_lo = 0.0;  // Auto (shed_hi / 2).
  EXPECT_EQ(plan.Validate(), "");
}

TEST(FaultInjectorTest, DisabledPlanNeverDrawsOrCounts) {
  // Two injectors sharing a seed, one judging constantly: if the disabled
  // paths drew from the stream, the later (identical) judgments would
  // diverge from the control's.
  FaultInjector inert(FaultPlan{}, sim::Rng(99));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(inert.JudgeSlot(), SlotFate::kDelivered);
    EXPECT_FALSE(inert.JudgeRequestLost());
    EXPECT_EQ(inert.JudgeRequestDelay(), 0.0);
    EXPECT_FALSE(inert.InOutage(static_cast<double>(i)));
  }
  EXPECT_EQ(inert.SlotsLost(), 0U);
  EXPECT_EQ(inert.SlotsCorrupted(), 0U);
  EXPECT_EQ(inert.RequestsLost(), 0U);
  EXPECT_EQ(inert.RequestsDelayed(), 0U);
}

TEST(FaultInjectorTest, SlotFatesAreDeterministicPerSeed) {
  FaultPlan plan;
  plan.slot_loss = 0.2;
  plan.slot_corruption = 0.1;
  FaultInjector a(plan, sim::Rng(7));
  FaultInjector b(plan, sim::Rng(7));
  std::vector<SlotFate> fates_a, fates_b;
  for (int i = 0; i < 500; ++i) fates_a.push_back(a.JudgeSlot());
  for (int i = 0; i < 500; ++i) fates_b.push_back(b.JudgeSlot());
  EXPECT_EQ(fates_a, fates_b);
  EXPECT_EQ(a.SlotsLost(), b.SlotsLost());
  EXPECT_EQ(a.SlotsCorrupted(), b.SlotsCorrupted());
  // Both fates actually occur at these rates over 500 trials.
  EXPECT_GT(a.SlotsLost(), 0U);
  EXPECT_GT(a.SlotsCorrupted(), 0U);
  EXPECT_EQ(a.SlotsLost() + a.SlotsCorrupted(), 500U - [&fates_a] {
    std::uint64_t delivered = 0;
    for (const SlotFate f : fates_a) {
      if (f == SlotFate::kDelivered) ++delivered;
    }
    return delivered;
  }());
}

TEST(FaultInjectorTest, CertainLossLosesEverySlot) {
  FaultPlan plan;
  plan.slot_loss = 1.0;
  FaultInjector injector(plan, sim::Rng(3));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(injector.JudgeSlot(), SlotFate::kLost);
  }
  EXPECT_EQ(injector.SlotsLost(), 100U);
}

TEST(FaultInjectorTest, RequestLossRateIsRoughlyHonoured) {
  FaultPlan plan;
  plan.request_loss = 0.3;
  FaultInjector injector(plan, sim::Rng(11));
  const int n = 10000;
  for (int i = 0; i < n; ++i) injector.JudgeRequestLost();
  const double rate =
      static_cast<double>(injector.RequestsLost()) / static_cast<double>(n);
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(FaultInjectorTest, RequestDelayIsPositiveWithConfiguredMean) {
  FaultPlan plan;
  plan.request_delay = 4.0;
  FaultInjector injector(plan, sim::Rng(13));
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double d = injector.JudgeRequestDelay();
    EXPECT_GT(d, 0.0);
    sum += d;
  }
  EXPECT_EQ(injector.RequestsDelayed(), static_cast<std::uint64_t>(n));
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(FaultInjectorTest, OneShotOutageWindowHasSharpEdges) {
  FaultPlan plan;
  plan.outage_start = 100.0;
  plan.outage_duration = 20.0;
  FaultInjector injector(plan, sim::Rng(1));
  EXPECT_FALSE(injector.InOutage(0.0));
  EXPECT_FALSE(injector.InOutage(99.999));
  EXPECT_TRUE(injector.InOutage(100.0));
  EXPECT_TRUE(injector.InOutage(119.999));
  EXPECT_FALSE(injector.InOutage(120.0));
  EXPECT_FALSE(injector.InOutage(1e9));
}

TEST(FaultInjectorTest, PeriodicOutageRepeatsForever) {
  FaultPlan plan;
  plan.outage_start = 50.0;
  plan.outage_duration = 10.0;
  plan.outage_period = 100.0;
  FaultInjector injector(plan, sim::Rng(1));
  for (int cycle = 0; cycle < 5; ++cycle) {
    const double base = 50.0 + 100.0 * cycle;
    EXPECT_TRUE(injector.InOutage(base)) << "cycle " << cycle;
    EXPECT_TRUE(injector.InOutage(base + 9.999)) << "cycle " << cycle;
    EXPECT_FALSE(injector.InOutage(base + 10.0)) << "cycle " << cycle;
    EXPECT_FALSE(injector.InOutage(base + 99.999)) << "cycle " << cycle;
  }
  EXPECT_FALSE(injector.InOutage(0.0));
}

}  // namespace
}  // namespace bdisk::fault
