#include "client/virtual_client.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace bdisk::client {
namespace {

using broadcast::BroadcastProgram;
using server::BroadcastServer;
using workload::AccessPattern;

AccessPattern AlwaysPage(std::size_t db_size, PageId page) {
  std::vector<double> probs(db_size, 0.0);
  probs[page] = 1.0;
  return AccessPattern(probs);
}

VirtualClientOptions BaseOptions() {
  VirtualClientOptions options;
  options.mc_think_time = 20.0;
  options.think_time_ratio = 10.0;  // Mean inter-arrival 2.0.
  options.steady_state_perc = 0.0;
  options.thres_perc = 0.0;
  options.cache_size = 2;
  return options;
}

TEST(VirtualClientTest, GeneratesAtTheConfiguredRate) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1, 2, 3}, 4), 0.5, 10,
                         sim::Rng(1));
  VirtualClient vc(&sim, &server, AlwaysPage(4, 2), {2, 3}, BaseOptions(),
                   sim::Rng(2));
  vc.Start();
  sim.RunUntil(10000.0);
  // ~5000 arrivals expected (mean inter-arrival 2.0).
  EXPECT_GT(vc.RequestsGenerated(), 4500U);
  EXPECT_LT(vc.RequestsGenerated(), 5500U);
}

TEST(VirtualClientTest, WarmupRequestsBypassTheCache) {
  // steady_state_perc = 0: every arrival is a warm-up client; even pages in
  // the warm set are submitted.
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1, 2, 3}, 4), 0.5, 10,
                         sim::Rng(1));
  VirtualClient vc(&sim, &server, AlwaysPage(4, 2), {2, 3}, BaseOptions(),
                   sim::Rng(2));
  vc.Start();
  sim.RunUntil(100.0);
  EXPECT_GT(vc.RequestsSubmitted(), 0U);
  EXPECT_EQ(vc.CacheHits(), 0U);
  // Everything either goes to the server or is held back by the zero
  // threshold (requests whose page is the very next push slot).
  EXPECT_EQ(vc.RequestsSubmitted() + vc.FilteredByThreshold(),
            vc.RequestsGenerated());
}

TEST(VirtualClientTest, SteadyStateRequestsFilterThroughWarmCache) {
  // steady_state_perc = 1 and the requested page is in the warm set: every
  // access is a cache hit; nothing reaches the server.
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1, 2, 3}, 4), 0.5, 10,
                         sim::Rng(1));
  VirtualClientOptions options = BaseOptions();
  options.steady_state_perc = 1.0;
  VirtualClient vc(&sim, &server, AlwaysPage(4, 2), {2, 3}, options,
                   sim::Rng(2));
  vc.Start();
  sim.RunUntil(100.0);
  EXPECT_GT(vc.RequestsGenerated(), 0U);
  EXPECT_EQ(vc.RequestsSubmitted(), 0U);
  EXPECT_EQ(vc.CacheHits(), vc.RequestsGenerated());
}

TEST(VirtualClientTest, SteadyStateMissesAreSubmitted) {
  // Warm set does NOT contain the hot page: steady-state accesses miss and
  // are submitted.
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1, 2, 3}, 4), 0.5, 10,
                         sim::Rng(1));
  VirtualClientOptions options = BaseOptions();
  options.steady_state_perc = 1.0;
  VirtualClient vc(&sim, &server, AlwaysPage(4, 2), {0, 1}, options,
                   sim::Rng(2));
  vc.Start();
  sim.RunUntil(100.0);
  EXPECT_EQ(vc.CacheHits(), 0U);
  EXPECT_EQ(vc.RequestsSubmitted() + vc.FilteredByThreshold(),
            vc.RequestsGenerated());
  EXPECT_GT(vc.RequestsSubmitted(), 0U);
}

TEST(VirtualClientTest, ThresholdFiltersSubmissions) {
  // Page 2 appears every other slot; with ThresPerc=100% the filter blocks
  // every request for it.
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({2, 0}, 4), 0.5, 10,
                         sim::Rng(1));
  VirtualClientOptions options = BaseOptions();
  options.thres_perc = 1.0;
  VirtualClient vc(&sim, &server, AlwaysPage(4, 2), {1, 3}, options,
                   sim::Rng(2));
  vc.Start();
  sim.RunUntil(100.0);
  EXPECT_GT(vc.RequestsGenerated(), 0U);
  EXPECT_EQ(vc.RequestsSubmitted(), 0U);
  EXPECT_EQ(vc.FilteredByThreshold(), vc.RequestsGenerated());
}

TEST(VirtualClientTest, MixedSteadyStateSplitsRoughlyByCoin) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1, 2, 3}, 4), 0.5, 100,
                         sim::Rng(1));
  VirtualClientOptions options = BaseOptions();
  options.steady_state_perc = 0.95;
  VirtualClient vc(&sim, &server, AlwaysPage(4, 2), {2, 3}, options,
                   sim::Rng(2));
  vc.Start();
  sim.RunUntil(20000.0);
  // 95% of arrivals hit the warm cache; ~5% (warm-up) are submitted.
  const double hit_rate = static_cast<double>(vc.CacheHits()) /
                          static_cast<double>(vc.RequestsGenerated());
  EXPECT_NEAR(hit_rate, 0.95, 0.02);
}

TEST(VirtualClientDeathTest, RejectsWrongWarmSetSize) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1, 2, 3}, 4), 0.5, 10,
                         sim::Rng(1));
  EXPECT_DEATH(VirtualClient(&sim, &server, AlwaysPage(4, 2), {2},
                             BaseOptions(), sim::Rng(2)),
               "CacheSize");
}

}  // namespace
}  // namespace bdisk::client
