// Tests for the streaming telemetry bus (obs::TelemetryBus + FrameSink):
// the delta-credit reconciliation invariant under clean and lossy sinks,
// trajectory neutrality, byte-identical streams with the wall clock off,
// the sink-destination grammar, and datagram backpressure (drop-newest,
// never block).

#include "obs/telemetry_bus.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/system.h"
#include "obs/frame_sink.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/windowed_collector.h"

namespace bdisk::obs {
namespace {

core::SystemConfig SmallConfig() {
  core::SystemConfig config;
  config.server_db_size = 100;
  config.disks = broadcast::DiskConfig{{10, 40, 50}, {3, 2, 1}};
  config.cache_size = 10;
  config.server_queue_size = 10;
  config.mc_think_time = 5.0;
  config.think_time_ratio = 25.0;
  config.obs_window = 500.0;
  config.seed = 20260809;
  return config;
}

core::SteadyStateProtocol QuickProtocol() {
  core::SteadyStateProtocol protocol;
  protocol.post_fill_accesses = 200;
  protocol.min_measured_accesses = 500;
  protocol.max_measured_accesses = 2000;
  protocol.batch_size = 250;
  protocol.tolerance = 0.1;
  return protocol;
}

using CounterMap = std::map<std::string, long long>;

CounterMap CountersOf(const JsonValue& frame, const char* key) {
  CounterMap out;
  const JsonValue* object = frame.Find(key);
  if (object != nullptr && object->kind == JsonValue::Kind::kObject) {
    for (const auto& [name, value] : object->object) {
      out[name] = static_cast<long long>(value.number);
    }
  }
  return out;
}

std::vector<JsonValue> ParseFrames(const std::vector<std::string>& lines) {
  std::vector<JsonValue> frames;
  for (const std::string& line : lines) {
    JsonValue frame;
    std::string error;
    EXPECT_TRUE(ParseJson(line, &frame, &error)) << error << ": " << line;
    EXPECT_EQ(frame.Find("schema")->string, "bdisk-frame-v1");
    frames.push_back(std::move(frame));
  }
  return frames;
}

// Runs `config` with a collector + bus over a CaptureFrameSink (optionally
// sabotaged first via `rig`) and returns the accepted frames plus the
// run's final snapshot counters.
struct BusRun {
  std::vector<JsonValue> frames;
  CounterMap snapshot_counters;
  std::uint64_t frames_emitted = 0;
  std::uint64_t frames_dropped = 0;
};

BusRun RunWithBus(const core::SystemConfig& config,
                  void (*rig)(CaptureFrameSink*) = nullptr) {
  core::System system(config);
  auto sink = std::make_unique<CaptureFrameSink>();
  CaptureFrameSink* capture = sink.get();
  if (rig != nullptr) rig(capture);
  WindowedCollector collector(config.obs_window);
  TelemetryBus bus(std::move(sink));
  bus.EnableWallClock(false);
  system.AttachWindowedCollector(&collector);
  system.AttachTelemetryBus(&bus);
  system.RunSteadyState(QuickProtocol());

  BusRun run;
  run.frames = ParseFrames(capture->frames());
  run.frames_emitted = bus.FramesEmitted();
  run.frames_dropped = bus.FramesDropped();
  MetricsRegistry registry;
  system.SnapshotMetrics(&registry);
  JsonValue snapshot;
  std::string error;
  EXPECT_TRUE(ParseJson(registry.ToJson(), &snapshot, &error)) << error;
  run.snapshot_counters = CountersOf(snapshot, "counters");
  return run;
}

// Asserts the delta-credit invariant over whatever frames were accepted:
// run_end present, base + sum(received deltas) == totals, and totals match
// the final snapshot under the same counter names.
void ExpectReconciles(const BusRun& run) {
  const JsonValue* run_end = nullptr;
  CounterMap delta_sums;
  for (const JsonValue& frame : run.frames) {
    for (const auto& [name, value] : CountersOf(frame, "deltas")) {
      delta_sums[name] += value;
    }
    if (frame.Find("kind")->string == "run_end") run_end = &frame;
  }
  ASSERT_NE(run_end, nullptr) << "stream has no run_end frame";
  const CounterMap base = CountersOf(*run_end, "base");
  const CounterMap totals = CountersOf(*run_end, "totals");
  ASSERT_FALSE(totals.empty());
  for (const auto& [name, total] : totals) {
    const auto base_it = base.find(name);
    const auto delta_it = delta_sums.find(name);
    const long long base_v = base_it == base.end() ? 0 : base_it->second;
    const long long sum_v =
        delta_it == delta_sums.end() ? 0 : delta_it->second;
    EXPECT_EQ(base_v + sum_v, total) << name;
    // Same names as the bdisk-metrics-v1 snapshot, same values.
    const auto snap_it = run.snapshot_counters.find(name);
    ASSERT_NE(snap_it, run.snapshot_counters.end()) << name;
    EXPECT_EQ(snap_it->second, total) << name;
  }
}

// ------------------------------------------------- reconciliation property

TEST(TelemetryBusTest, ReconciliationExactAcrossFusionAndFaultMatrix) {
  for (const bool fused : {true, false}) {
    for (const bool faulty : {false, true}) {
      SCOPED_TRACE(std::string(fused ? "fused" : "unfused") + "/" +
                   (faulty ? "faulty" : "inert"));
      core::SystemConfig config = SmallConfig();
      config.vc_fusion = fused;
      if (faulty) {
        config.fault.slot_loss = 0.05;
        config.fault.request_loss = 0.05;
      }
      const BusRun run = RunWithBus(config);
      ExpectReconciles(run);
      EXPECT_EQ(run.frames_dropped, 0U);
      EXPECT_EQ(run.frames.size(), run.frames_emitted);
      // Clean sink: seqs are contiguous from 0.
      for (std::size_t i = 0; i < run.frames.size(); ++i) {
        EXPECT_EQ(run.frames[i].Find("seq")->number,
                  static_cast<double>(i));
      }
      // The fault plan's probe counters appear exactly when it is active.
      const CounterMap totals =
          CountersOf(run.frames.back(), "totals");
      EXPECT_EQ(totals.count("fault.slots_lost"), faulty ? 1U : 0U);
    }
  }
}

TEST(TelemetryBusTest, DroppedFramesLeaveSeqGapsAndCarryDeltasForward) {
  const BusRun run = RunWithBus(SmallConfig(), [](CaptureFrameSink* sink) {
    sink->FailAt({2, 3, 7});  // Drop three early window frames.
  });
  EXPECT_EQ(run.frames_dropped, 3U);
  EXPECT_EQ(run.frames.size() + 3, run.frames_emitted);

  // The received stream skips exactly the refused seqs.
  std::vector<double> seqs;
  for (const JsonValue& frame : run.frames) {
    seqs.push_back(frame.Find("seq")->number);
  }
  EXPECT_EQ(seqs[1], 1.0);
  EXPECT_EQ(seqs[2], 4.0);  // 2 and 3 are gaps.

  // run_end reports the drops, and reconciliation is still exact: the
  // dropped frames' deltas arrived later on carried-forward frames.
  const JsonValue& run_end = run.frames.back();
  ASSERT_EQ(run_end.Find("kind")->string, "run_end");
  EXPECT_EQ(run_end.Find("frames_dropped")->number, 3.0);
  ExpectReconciles(run);
}

TEST(TelemetryBusTest, TailDropsAreClosedByRunEndDeltas) {
  // Refuse a span of trailing window frames; only run_end (WriteFinal)
  // still gets through. Its closing deltas must cover the whole tail.
  const BusRun run = RunWithBus(SmallConfig(), [](CaptureFrameSink* sink) {
    sink->FailAt({10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20});
  });
  EXPECT_GT(run.frames_dropped, 0U);
  ExpectReconciles(run);
}

// ------------------------------------------------------ trajectory safety

TEST(TelemetryBusTest, AttachedBusLeavesTrajectoryBitIdentical) {
  const core::SystemConfig config = SmallConfig();
  core::System plain(config);
  const core::RunResult without = plain.RunSteadyState(QuickProtocol());

  core::System observed(config);
  WindowedCollector collector(config.obs_window);
  TelemetryBus bus(std::make_unique<CaptureFrameSink>());
  observed.AttachWindowedCollector(&collector);
  observed.AttachTelemetryBus(&bus);
  const core::RunResult with = observed.RunSteadyState(QuickProtocol());

  EXPECT_EQ(without.mean_response, with.mean_response);
  EXPECT_EQ(without.mc_accesses, with.mc_accesses);
  EXPECT_EQ(without.mc_pulls_sent, with.mc_pulls_sent);
  EXPECT_EQ(without.requests_accepted, with.requests_accepted);
  EXPECT_EQ(without.queue_depth_high_water, with.queue_depth_high_water);
  EXPECT_EQ(plain.server().TotalSlots(), observed.server().TotalSlots());
  EXPECT_EQ(plain.server().PullSlots(), observed.server().PullSlots());
}

TEST(TelemetryBusTest, StreamsAreByteIdenticalWithWallClockOff) {
  const auto capture = [](const core::SystemConfig& config) {
    core::System system(config);
    auto sink = std::make_unique<CaptureFrameSink>();
    CaptureFrameSink* raw = sink.get();
    WindowedCollector collector(config.obs_window);
    TelemetryBus bus(std::move(sink));
    bus.EnableWallClock(false);
    system.AttachWindowedCollector(&collector);
    system.AttachTelemetryBus(&bus);
    system.RunSteadyState(QuickProtocol());
    return raw->frames();
  };
  const core::SystemConfig config = SmallConfig();
  EXPECT_EQ(capture(config), capture(config));
}

// ------------------------------------------------------------ sink grammar

TEST(FrameSinkTest, MakeFrameSinkGrammar) {
  std::string error;
  const std::string path = ::testing::TempDir() + "frame_sink_test.jsonl";
  std::unique_ptr<FrameSink> file = MakeFrameSink(path, &error);
  ASSERT_NE(file, nullptr) << error;
  EXPECT_TRUE(file->Write("{\"k\":1}"));
  EXPECT_TRUE(file->WriteFinal("{\"k\":2}"));
  EXPECT_EQ(file->Dropped(), 0U);
  file.reset();
  std::remove(path.c_str());

  // No receiver bound: the datagram sink must fail up front with a
  // message that says what to do, not silently drop everything.
  std::unique_ptr<FrameSink> dgram =
      MakeFrameSink("unix:" + ::testing::TempDir() + "no_receiver.sock",
                    &error);
  EXPECT_EQ(dgram, nullptr);
  EXPECT_NE(error.find("receiver"), std::string::npos) << error;
}

// ------------------------------------------------------- datagram backlog

TEST(TelemetryBusTest, DatagramBackpressureDropsNewestAndNeverBlocks) {
  const std::string path = ::testing::TempDir() + "bus_backpressure.sock";
  ::unlink(path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  ASSERT_LT(path.size(), sizeof(addr.sun_path));
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int receiver = ::socket(AF_UNIX, SOCK_DGRAM, 0);
  ASSERT_GE(receiver, 0);
  // Tiny receive buffer and nobody draining it: the kernel queue fills
  // after a handful of frames and every later Write must drop-newest.
  const int rcvbuf = 2048;
  ::setsockopt(receiver, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  ASSERT_EQ(::bind(receiver, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);

  std::string error;
  std::unique_ptr<FrameSink> sink = MakeFrameSink("unix:" + path, &error);
  ASSERT_NE(sink, nullptr) << error;

  core::SystemConfig config = SmallConfig();
  core::System system(config);
  WindowedCollector collector(config.obs_window);
  TelemetryBus bus(std::move(sink));
  system.AttachWindowedCollector(&collector);
  system.AttachTelemetryBus(&bus);
  const core::RunResult result = system.RunSteadyState(QuickProtocol());

  // The run completed normally despite the stuck receiver...
  EXPECT_GT(result.mc_accesses, 0U);
  // ...and the backlog shows up as counted drops, not blocking.
  EXPECT_GT(bus.FramesDropped(), 0U);
  EXPECT_LT(bus.FramesDropped(), bus.FramesEmitted());
  EXPECT_EQ(bus.sink().Dropped(), bus.FramesDropped());

  // What did land in the kernel buffer is intact, parseable frames.
  char buffer[65536];
  const ssize_t n = ::recv(receiver, buffer, sizeof(buffer), MSG_DONTWAIT);
  ASSERT_GT(n, 0);
  JsonValue frame;
  ASSERT_TRUE(ParseJson(std::string(buffer, static_cast<std::size_t>(n)),
                        &frame, &error))
      << error;
  EXPECT_EQ(frame.Find("schema")->string, "bdisk-frame-v1");
  EXPECT_EQ(frame.Find("kind")->string, "run_start");

  ::close(receiver);
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace bdisk::obs
