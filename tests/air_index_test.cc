#include "broadcast/air_index.h"

#include <gtest/gtest.h>

namespace bdisk::broadcast {
namespace {

TEST(AirIndexTest, CycleLength) {
  EXPECT_DOUBLE_EQ(IndexedCycleLength({1600, 1, 40}), 1640.0);
  EXPECT_DOUBLE_EQ(IndexedCycleLength({100, 5, 4}), 120.0);
}

TEST(AirIndexTest, SingleIndexMatchesHandComputation) {
  // m=1, one index slot over 100 data slots: cycle 101; wait-to-index
  // 101/2, index 1, doze 101/2, page 1.
  const AirIndexConfig config{100, 1, 1};
  EXPECT_DOUBLE_EQ(ExpectedLatency(config), 50.5 + 1.0 + 50.5 + 1.0);
  EXPECT_DOUBLE_EQ(ExpectedTuningTime(config), 3.0);
}

TEST(AirIndexTest, TuningTimeIndependentOfM) {
  for (const std::uint32_t m : {1U, 4U, 16U, 64U}) {
    EXPECT_DOUBLE_EQ(ExpectedTuningTime({1600, 2, m}), 4.0) << m;
  }
}

TEST(AirIndexTest, TuningFarBelowUnindexed) {
  EXPECT_DOUBLE_EQ(UnindexedTuningTime(1600), 801.0);
  EXPECT_LT(ExpectedTuningTime({1600, 1, 40}), 4.0);
}

TEST(AirIndexTest, LatencyConvexInM) {
  // Latency falls, bottoms out near m*, then rises as index overhead
  // inflates the cycle.
  const std::uint32_t m_star = OptimalIndexFrequency(1600, 1);
  EXPECT_EQ(m_star, 40U);  // sqrt(1600/1).
  const double at_optimum = ExpectedLatency({1600, 1, m_star});
  EXPECT_LT(at_optimum, ExpectedLatency({1600, 1, 1}));
  EXPECT_LT(at_optimum, ExpectedLatency({1600, 1, 1600}));
  EXPECT_LE(at_optimum, ExpectedLatency({1600, 1, 20}));
  EXPECT_LE(at_optimum, ExpectedLatency({1600, 1, 80}));
}

TEST(AirIndexTest, OptimalFrequencyScalesAsSqrt) {
  EXPECT_EQ(OptimalIndexFrequency(100, 1), 10U);
  EXPECT_EQ(OptimalIndexFrequency(100, 4), 5U);
  EXPECT_EQ(OptimalIndexFrequency(2, 100), 1U);  // Clamped to >= 1.
}

TEST(AirIndexTest, IndexingCostsLatencyVsNoIndex) {
  // The index makes the cycle longer, so pure latency is (slightly) worse
  // than unindexed — energy is what it buys.
  const AirIndexConfig config{1600, 1, 40};
  EXPECT_GT(ExpectedLatency(config), UnindexedLatency(1600));
}

TEST(AirIndexTest, SegmentStartsEvenlySpaced) {
  const AirIndexConfig config{100, 2, 4};
  const auto starts = IndexSegmentStarts(config);
  ASSERT_EQ(starts.size(), 4U);
  EXPECT_EQ(starts[0], 0U);
  // Each super-segment: 2 index + 25 data = 27 slots.
  EXPECT_EQ(starts[1], 27U);
  EXPECT_EQ(starts[2], 54U);
  EXPECT_EQ(starts[3], 81U);
}

TEST(AirIndexTest, SegmentStartsHandleNonDivisibleData) {
  const AirIndexConfig config{10, 1, 3};  // Data shares 4,3,3.
  const auto starts = IndexSegmentStarts(config);
  ASSERT_EQ(starts.size(), 3U);
  EXPECT_EQ(starts[0], 0U);
  EXPECT_EQ(starts[1], 5U);  // 1 index + 4 data.
  EXPECT_EQ(starts[2], 9U);  // + 1 index + 3 data.
}

TEST(AirIndexDeathTest, RejectsBadShapes) {
  EXPECT_DEATH(IndexedCycleLength({0, 1, 1}), "data slot");
  EXPECT_DEATH(IndexedCycleLength({10, 0, 1}), "index slot");
  EXPECT_DEATH(IndexedCycleLength({10, 1, 0}), "index segment");
  EXPECT_DEATH(IndexedCycleLength({10, 1, 11}), "more index segments");
}

}  // namespace
}  // namespace bdisk::broadcast
