#include "client/measured_client.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace bdisk::client {
namespace {

using broadcast::BroadcastProgram;
using server::BroadcastServer;
using workload::AccessPattern;

// A pattern that always requests the same page makes client behaviour
// fully deterministic.
AccessPattern AlwaysPage(std::size_t db_size, PageId page) {
  std::vector<double> probs(db_size, 0.0);
  probs[page] = 1.0;
  return AccessPattern(probs);
}

TEST(MeasuredClientTest, PushOnlyWaitsForScheduledPage) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1, 2, 3}, 4), 0.0, 10,
                         sim::Rng(1));
  MeasuredClientOptions options;
  options.cache_size = 2;
  options.think_time = 5.0;
  options.use_backchannel = false;
  MeasuredClient mc(&sim, &server, AlwaysPage(4, 2), options, sim::Rng(2));
  mc.SetRecording(true);
  mc.Start();
  // Deliveries: t=1 page0, t=2 page1, t=3 page2 -> response 3.
  sim.RunUntil(3.5);
  EXPECT_EQ(mc.response_times().Count(), 1U);
  EXPECT_EQ(mc.response_times().Mean(), 3.0);
  EXPECT_TRUE(mc.cache().Contains(2));
  EXPECT_EQ(mc.PullRequestsSent(), 0U);
}

TEST(MeasuredClientTest, CacheHitCostsZeroAndCounts) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1, 2, 3}, 4), 0.0, 10,
                         sim::Rng(1));
  MeasuredClientOptions options;
  options.cache_size = 2;
  options.think_time = 5.0;
  options.use_backchannel = false;
  MeasuredClient mc(&sim, &server, AlwaysPage(4, 2), options, sim::Rng(2));
  mc.SetRecording(true);
  mc.Start();
  // Retrieval at t=3, think 5 -> hits at t=8, 13, 18 (all cached).
  sim.RunUntil(20.0);
  EXPECT_EQ(mc.response_times().Count(), 4U);
  EXPECT_EQ(mc.response_times().Min(), 0.0);
  EXPECT_EQ(mc.response_times().Max(), 3.0);
  EXPECT_EQ(mc.CacheHits(), 3U);
  EXPECT_DOUBLE_EQ(mc.response_times().Mean(), 0.75);
}

TEST(MeasuredClientTest, PurePullResponseIsAboutTwoUnits) {
  // The paper's lightly loaded Pure-Pull floor: request at t, service in
  // slot [t+1, t+2), delivery at t+2.
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({}, 4), 1.0, 10,
                         sim::Rng(1));
  MeasuredClientOptions options;
  options.cache_size = 2;
  options.think_time = 5.0;
  options.policy = cache::PolicyKind::kP;
  options.use_backchannel = true;
  options.retry_interval = 100.0;
  MeasuredClient mc(&sim, &server, AlwaysPage(4, 2), options, sim::Rng(2));
  mc.SetRecording(true);
  mc.Start();
  sim.RunUntil(3.0);
  EXPECT_EQ(mc.response_times().Count(), 1U);
  EXPECT_EQ(mc.response_times().Mean(), 2.0);
  EXPECT_EQ(mc.PullRequestsSent(), 1U);
}

TEST(MeasuredClientTest, ThresholdSuppressesNearbyPulls) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1, 2, 3}, 4), 0.5, 10,
                         sim::Rng(1));
  MeasuredClientOptions options;
  options.cache_size = 2;
  options.think_time = 5.0;
  options.thres_perc = 0.5;  // 2 slots.
  MeasuredClient mc(&sim, &server, AlwaysPage(4, 2), options, sim::Rng(2));
  mc.Start();
  // Page 2 is 1 push-slot away (cursor already past slot 0): within the
  // threshold, so no pull request goes out.
  sim.RunUntil(4.0);
  EXPECT_EQ(mc.PullRequestsSent(), 0U);
  EXPECT_FALSE(mc.IsWaiting());  // Served by the push schedule anyway.
}

TEST(MeasuredClientTest, ZeroThresholdPullsDistantPage) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1, 2, 3}, 4), 0.5, 10,
                         sim::Rng(1));
  MeasuredClientOptions options;
  options.cache_size = 2;
  options.think_time = 5.0;
  options.thres_perc = 0.0;
  MeasuredClient mc(&sim, &server, AlwaysPage(4, 2), options, sim::Rng(2));
  mc.Start();
  EXPECT_EQ(mc.PullRequestsSent(), 1U);
}

TEST(MeasuredClientTest, SnoopsPagesPulledByOthers) {
  sim::Simulator sim;
  // Pure pull; MC has no way to get page 2 by push.
  BroadcastServer server(&sim, BroadcastProgram({}, 4), 1.0, 1,
                         sim::Rng(1));
  // Fill the queue with page 2 "from another client" BEFORE the MC asks;
  // the MC's own request coalesces, and the snooped response serves it.
  server.SubmitRequest(2);
  MeasuredClientOptions options;
  options.cache_size = 2;
  options.think_time = 5.0;
  options.policy = cache::PolicyKind::kP;
  options.retry_interval = 100.0;
  MeasuredClient mc(&sim, &server, AlwaysPage(4, 2), options, sim::Rng(2));
  mc.SetRecording(true);
  mc.Start();
  sim.RunUntil(3.0);
  EXPECT_EQ(mc.response_times().Count(), 1U);
  EXPECT_EQ(server.queue().CoalescedCount(), 1U);
}

TEST(MeasuredClientTest, RetriesDroppedRequestForUnscheduledPage) {
  sim::Simulator sim;
  // Queue capacity 1, already full of page 3: MC's request is dropped.
  BroadcastServer server(&sim, BroadcastProgram({0, 1}, 4), 0.5, 1,
                         sim::Rng(1));
  server.SubmitRequest(3);
  MeasuredClientOptions options;
  options.cache_size = 2;
  options.think_time = 5.0;
  options.retry_interval = 10.0;
  MeasuredClient mc(&sim, &server, AlwaysPage(4, 2), options, sim::Rng(2));
  mc.SetRecording(true);
  mc.Start();
  EXPECT_EQ(server.queue().DroppedCount(), 1U);
  sim.RunUntil(100.0);
  // The retry at t=10 (or a later one) eventually lands and is served.
  EXPECT_GE(mc.RetriesSent(), 1U);
  ASSERT_GE(mc.response_times().Count(), 1U);
  EXPECT_GE(mc.response_times().Max(), 10.0);
  EXPECT_TRUE(mc.cache().Contains(2));
}

TEST(MeasuredClientTest, WarmupTrackerWiredThroughCache) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1, 2, 3}, 4), 0.0, 10,
                         sim::Rng(1));
  MeasuredClientOptions options;
  options.cache_size = 2;
  options.think_time = 1.0;
  options.use_backchannel = false;
  MeasuredClient mc(&sim, &server, AlwaysPage(4, 2), options, sim::Rng(2),
                    std::vector<PageId>{2, 3});
  ASSERT_NE(mc.warmup_tracker(), nullptr);
  mc.Start();
  sim.RunUntil(4.0);  // Page 2 arrives at t=3.
  EXPECT_DOUBLE_EQ(mc.warmup_tracker()->Fraction(), 0.5);
  EXPECT_EQ(mc.warmup_tracker()->TimeToFraction(0.5), 3.0);
}

TEST(MeasuredClientTest, OnAccessCompleteCallbackFires) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1, 2, 3}, 4), 0.0, 10,
                         sim::Rng(1));
  MeasuredClientOptions options;
  options.cache_size = 2;
  options.think_time = 5.0;
  options.use_backchannel = false;
  MeasuredClient mc(&sim, &server, AlwaysPage(4, 2), options, sim::Rng(2));
  std::vector<double> seen;
  mc.SetOnAccessComplete([&](double rt) { seen.push_back(rt); });
  mc.Start();
  sim.RunUntil(9.0);  // Retrieval at 3, hit at 8.
  ASSERT_EQ(seen.size(), 2U);
  EXPECT_EQ(seen[0], 3.0);
  EXPECT_EQ(seen[1], 0.0);
}

TEST(MeasuredClientTest, PullWaitRatioLowWhenPullsAreFast) {
  // Pulls served in ~2 units against a 4-slot push gap: ratio well < 1.
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1, 2, 3}, 4), 1.0, 10,
                         sim::Rng(1));
  MeasuredClientOptions options;
  options.cache_size = 1;
  options.think_time = 5.0;
  options.thres_perc = 0.0;
  // Alternate between two pages so each access misses (cache of 1).
  MeasuredClient mc(&sim, &server,
                    workload::AccessPattern({0.0, 0.0, 0.5, 0.5}), options,
                    sim::Rng(2));
  mc.Start();
  EXPECT_EQ(mc.PullWaitRatio(), 0.0);  // No completed pull yet.
  sim.RunUntil(500.0);
  EXPECT_GT(mc.PullWaitRatio(), 0.0);
  EXPECT_LT(mc.PullWaitRatio(), 0.9);
}

TEST(MeasuredClientTest, PullWaitRatioHighWhenRequestsDrop) {
  // A queue permanently jammed by an unserviceable competing load: the
  // MC's pulls drop and it always ends up waiting for the push.
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1, 2, 3}, 8), 0.01, 1,
                         sim::Rng(1));
  server.SubmitRequest(7);  // Fills the 1-slot queue; pull_bw=1% barely
                            // ever serves it, so MC requests drop.
  MeasuredClientOptions options;
  options.cache_size = 1;
  // Non-integer think time keeps requests off slot boundaries; with a
  // 4-page cycle, boundary-coincident requests otherwise get "free"
  // deliveries that bias the ratio low (negligible at realistic cycle
  // lengths).
  options.think_time = 5.3;
  options.thres_perc = 0.0;
  MeasuredClient mc(
      &sim, &server,
      workload::AccessPattern({0.0, 0.0, 0.5, 0.5, 0.0, 0.0, 0.0, 0.0}),
      options, sim::Rng(2));
  mc.Start();
  sim.RunUntil(2000.0);
  EXPECT_GT(mc.PullWaitRatio(), 0.8);
}

TEST(MeasuredClientTest, SetThresPercTakesEffect) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1, 2, 3}, 4), 0.5, 10,
                         sim::Rng(1));
  MeasuredClientOptions options;
  options.cache_size = 2;
  options.think_time = 5.0;
  options.thres_perc = 0.0;
  MeasuredClient mc(&sim, &server, AlwaysPage(4, 2), options, sim::Rng(2));
  mc.SetThresPerc(1.0);  // Full-cycle threshold: never pull.
  EXPECT_EQ(mc.thres_perc(), 1.0);
  mc.Start();
  sim.RunUntil(10.0);
  EXPECT_EQ(mc.PullRequestsSent(), 0U);
}

TEST(MeasuredClientDeathTest, PushOnlyCannotRequestUnscheduledPage) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1}, 4), 0.0, 10,
                         sim::Rng(1));
  MeasuredClientOptions options;
  options.cache_size = 2;
  options.use_backchannel = false;
  MeasuredClient mc(&sim, &server, AlwaysPage(4, 2), options, sim::Rng(2));
  EXPECT_DEATH(mc.Start(), "never pushed");
}

}  // namespace
}  // namespace bdisk::client
