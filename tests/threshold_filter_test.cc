#include "client/threshold_filter.h"

#include <gtest/gtest.h>

namespace bdisk::client {
namespace {

constexpr std::uint32_t kNever = broadcast::BroadcastProgram::kNeverBroadcast;

TEST(ThresholdFilterTest, ZeroThresholdPullsEverythingNotImmediate) {
  const ThresholdFilter filter(0.0, 1600);
  EXPECT_EQ(filter.ThresholdSlots(), 0U);
  EXPECT_FALSE(filter.ShouldPull(0));  // Arriving this very slot.
  EXPECT_TRUE(filter.ShouldPull(1));
  EXPECT_TRUE(filter.ShouldPull(1599));
}

TEST(ThresholdFilterTest, QuarterCycleThreshold) {
  const ThresholdFilter filter(0.25, 1600);
  EXPECT_EQ(filter.ThresholdSlots(), 400U);
  EXPECT_FALSE(filter.ShouldPull(399));
  EXPECT_FALSE(filter.ShouldPull(400));  // "Within the threshold": wait.
  EXPECT_TRUE(filter.ShouldPull(401));
}

TEST(ThresholdFilterTest, FullCycleThresholdBlocksAllScheduledPages) {
  // ThresPerc=100% with the whole database on the schedule: no page can be
  // farther than one major cycle away, so no requests are ever sent (§2.3).
  const ThresholdFilter filter(1.0, 1600);
  EXPECT_FALSE(filter.ShouldPull(1599));
  EXPECT_FALSE(filter.ShouldPull(1600));
}

TEST(ThresholdFilterTest, UnscheduledPagesAlwaysPass) {
  const ThresholdFilter full(1.0, 1600);
  EXPECT_TRUE(full.ShouldPull(kNever));
  const ThresholdFilter zero(0.0, 1600);
  EXPECT_TRUE(zero.ShouldPull(kNever));
}

TEST(ThresholdFilterTest, EmptyProgramPullsEverything) {
  // Pure-Pull: major cycle length 0, threshold meaningless.
  const ThresholdFilter filter(0.35, 0);
  EXPECT_TRUE(filter.ShouldPull(kNever));
  EXPECT_EQ(filter.ThresholdSlots(), 0U);
}

TEST(ThresholdFilterTest, RoundsToNearestSlot) {
  const ThresholdFilter filter(0.35, 10);  // 3.5 -> 4.
  EXPECT_EQ(filter.ThresholdSlots(), 4U);
}

TEST(ThresholdFilterDeathTest, RejectsOutOfRangeFraction) {
  EXPECT_DEATH(ThresholdFilter(1.5, 100), "ThresPerc");
  EXPECT_DEATH(ThresholdFilter(-0.1, 100), "ThresPerc");
}

}  // namespace
}  // namespace bdisk::client
