#include "broadcast/program_builder.h"

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "broadcast/disk_config.h"

namespace bdisk::broadcast {
namespace {

// The paper's Figure 1: pages a..g = 0..6 on disks {a}, {b,c}, {d,e,f,g}
// with relative frequencies 4:2:1 produce the 12-slot major cycle
// a b d a c e a b f a c g.
TEST(ProgramBuilderTest, ReproducesPaperFigure1) {
  const std::vector<std::vector<PageId>> disks = {
      {0}, {1, 2}, {3, 4, 5, 6}};
  const auto schedule = BuildSchedule(disks, {4, 2, 1});
  const std::vector<PageId> expected = {0, 1, 3, 0, 2, 4,
                                        0, 1, 5, 0, 2, 6};
  EXPECT_EQ(schedule, expected);
}

TEST(ProgramBuilderTest, Figure1SameUnderBothChunkingModes) {
  // All chunk sizes divide evenly in the Figure 1 example.
  const std::vector<std::vector<PageId>> disks = {
      {0}, {1, 2}, {3, 4, 5, 6}};
  EXPECT_EQ(BuildSchedule(disks, {4, 2, 1}, ChunkingMode::kBalanced),
            BuildSchedule(disks, {4, 2, 1}, ChunkingMode::kPad));
}

TEST(ProgramBuilderTest, FrequenciesMatchRelFreqs) {
  // Paper main config shape (scaled down 10x): disks of 10/40/50 pages at
  // 3:2:1. Every page on disk d must appear exactly RelFreq(d) times.
  std::vector<std::vector<PageId>> disks(3);
  PageId next = 0;
  for (std::uint32_t size : {10U, 40U, 50U}) {
    for (std::uint32_t i = 0; i < size; ++i) {
      disks[next < 10 ? 0 : (next < 50 ? 1 : 2)].push_back(next);
      ++next;
    }
  }
  const auto schedule = BuildSchedule(disks, {3, 2, 1});

  std::map<PageId, int> counts;
  for (const PageId p : schedule) ++counts[p];
  for (const PageId p : disks[0]) EXPECT_EQ(counts[p], 3) << p;
  for (const PageId p : disks[1]) EXPECT_EQ(counts[p], 2) << p;
  for (const PageId p : disks[2]) EXPECT_EQ(counts[p], 1) << p;

  // Balanced mode wastes no slots: 10*3 + 40*2 + 50*1 = 160.
  EXPECT_EQ(schedule.size(), 160U);
}

TEST(ProgramBuilderTest, PadModeInsertsEmptySlots) {
  // Disk 1: 4 pages in 3 chunks (ceil -> 2-page chunks, 2 pad slots).
  const std::vector<std::vector<PageId>> disks = {{0, 1, 2}, {3, 4, 5, 6}};
  const auto schedule = BuildSchedule(disks, {3, 1}, ChunkingMode::kPad);
  int pad = 0;
  std::map<PageId, int> counts;
  for (const PageId p : schedule) {
    if (p == kNoPage) {
      ++pad;
    } else {
      ++counts[p];
    }
  }
  EXPECT_EQ(pad, 2);
  for (const PageId p : disks[0]) EXPECT_EQ(counts[p], 3) << p;
  for (const PageId p : disks[1]) EXPECT_EQ(counts[p], 1) << p;
}

TEST(ProgramBuilderTest, BalancedModeFrequenciesSurviveNonDivisibleSizes) {
  // 5 pages in 3 chunks: sizes 2,2,1 — frequency must still be exact.
  const std::vector<std::vector<PageId>> disks = {{0, 1, 2, 3, 4}, {5, 6}};
  const auto schedule = BuildSchedule(disks, {3, 1}, ChunkingMode::kBalanced);
  std::map<PageId, int> counts;
  for (const PageId p : schedule) {
    ASSERT_NE(p, kNoPage);
    ++counts[p];
  }
  for (PageId p = 0; p <= 4; ++p) EXPECT_EQ(counts[p], 3) << p;
  EXPECT_EQ(counts[5], 1);
  EXPECT_EQ(counts[6], 1);
  EXPECT_EQ(schedule.size(), 17U);  // 5*3 + 2*1.
}

TEST(ProgramBuilderTest, SkipsEmptyDisks) {
  const std::vector<std::vector<PageId>> disks = {{0, 1}, {}, {2}};
  const auto schedule = BuildSchedule(disks, {4, 2, 1});
  std::map<PageId, int> counts;
  for (const PageId p : schedule) ++counts[p];
  EXPECT_EQ(counts[0], 4);
  EXPECT_EQ(counts[1], 4);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(schedule.size(), 9U);
}

TEST(ProgramBuilderTest, AllDisksEmptyYieldsEmptySchedule) {
  const std::vector<std::vector<PageId>> disks = {{}, {}};
  EXPECT_TRUE(BuildSchedule(disks, {2, 1}).empty());
}

TEST(ProgramBuilderTest, SingleDiskIsFlatRotation) {
  const std::vector<std::vector<PageId>> disks = {{3, 1, 4, 1 + 4, 9}};
  // Frequencies are ratios (normalized by their gcd): a lone disk at
  // "frequency 7" is just a flat disk.
  const auto schedule = BuildSchedule(disks, {7});
  EXPECT_EQ(schedule, disks[0]);
}

TEST(ProgramBuilderTest, FrequenciesNormalizedByGcd) {
  const std::vector<std::vector<PageId>> disks = {{0}, {1, 2}};
  // {6, 2} behaves as {3, 1}.
  const auto a = BuildSchedule(disks, {6, 2});
  const auto b = BuildSchedule(disks, {3, 1});
  EXPECT_EQ(a, b);
}

TEST(ProgramBuilderTest, MinorCycleStructure) {
  // Every minor cycle contains one chunk of each disk, fastest first.
  const std::vector<std::vector<PageId>> disks = {{0}, {1, 2}};
  const auto schedule = BuildSchedule(disks, {2, 1});
  // max_chunks = 2; minor cycles: [0 | 1] [0 | 2].
  EXPECT_EQ(schedule, (std::vector<PageId>{0, 1, 0, 2}));
}

TEST(ProgramBuilderTest, PaperMainConfigCycleLength) {
  // Full-scale paper config: 100/400/500 at 3:2:1 -> balanced major cycle
  // of 100*3 + 400*2 + 500*1 = 1600 slots.
  std::vector<std::vector<PageId>> disks(3);
  PageId next = 0;
  for (int d = 0; d < 3; ++d) {
    const std::uint32_t size = DiskConfig::Paper().sizes[d];
    for (std::uint32_t i = 0; i < size; ++i) disks[d].push_back(next++);
  }
  const auto schedule = BuildSchedule(disks, {3, 2, 1});
  EXPECT_EQ(schedule.size(), 1600U);
}

TEST(ProgramBuilderDeathTest, RejectsMismatchedFreqCount) {
  const std::vector<std::vector<PageId>> disks = {{0}};
  EXPECT_DEATH(BuildSchedule(disks, {1, 2}), "per disk");
}

}  // namespace
}  // namespace bdisk::broadcast
