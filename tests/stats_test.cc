#include "sim/stats.h"

#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

namespace bdisk::sim {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.Count(), 0U);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Variance(), 0.0);
  EXPECT_EQ(s.StdError(), 0.0);
}

TEST(RunningStatsTest, SingleObservation) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.Count(), 1U);
  EXPECT_EQ(s.Mean(), 5.0);
  EXPECT_EQ(s.Variance(), 0.0);
  EXPECT_EQ(s.Min(), 5.0);
  EXPECT_EQ(s.Max(), 5.0);
  EXPECT_EQ(s.Sum(), 5.0);
}

TEST(RunningStatsTest, KnownMeanAndVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.StdDev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.Min(), 2.0);
  EXPECT_EQ(s.Max(), 9.0);
}

TEST(RunningStatsTest, NumericallyStableForShiftedData) {
  // Large offset + small variance is where naive sum-of-squares fails.
  RunningStats s;
  const double offset = 1e9;
  for (const double x : {offset + 1, offset + 2, offset + 3}) s.Add(x);
  EXPECT_NEAR(s.Mean(), offset + 2, 1e-3);
  EXPECT_NEAR(s.Variance(), 1.0, 1e-6);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.Add(x);
    (i < 37 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), all.Count());
  EXPECT_NEAR(a.Mean(), all.Mean(), 1e-12);
  EXPECT_NEAR(a.Variance(), all.Variance(), 1e-9);
  EXPECT_EQ(a.Min(), all.Min());
  EXPECT_EQ(a.Max(), all.Max());
}

TEST(RunningStatsTest, MergeOfSplitsEqualsWholeAtEverySplitPoint) {
  // The parallel-merge identity must hold wherever the stream is cut,
  // including the degenerate one-sided splits (0 and n).
  std::vector<double> xs;
  for (int i = 0; i < 50; ++i) xs.push_back(std::cos(i) * 100.0 + i);
  RunningStats whole;
  for (const double x : xs) whole.Add(x);

  for (std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{25},
                            std::size_t{49}, std::size_t{50}}) {
    RunningStats a, b;
    for (std::size_t i = 0; i < xs.size(); ++i) (i < split ? a : b).Add(xs[i]);
    a.Merge(b);
    EXPECT_EQ(a.Count(), whole.Count()) << "split=" << split;
    EXPECT_NEAR(a.Mean(), whole.Mean(), 1e-9) << "split=" << split;
    EXPECT_NEAR(a.Variance(), whole.Variance(), 1e-6) << "split=" << split;
    EXPECT_EQ(a.Min(), whole.Min()) << "split=" << split;
    EXPECT_EQ(a.Max(), whole.Max()) << "split=" << split;
  }
}

TEST(RunningStatsTest, MergeBothEmptyStaysEmpty) {
  RunningStats a, b;
  a.Merge(b);
  EXPECT_EQ(a.Count(), 0U);
  EXPECT_EQ(a.Mean(), 0.0);
  EXPECT_EQ(a.Variance(), 0.0);
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.Count(), 2U);
  EXPECT_EQ(a.Mean(), 2.0);

  RunningStats b;
  b.Merge(a);
  EXPECT_EQ(b.Count(), 2U);
  EXPECT_EQ(b.Mean(), 2.0);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.Add(1.0);
  s.Reset();
  EXPECT_EQ(s.Count(), 0U);
  EXPECT_EQ(s.Mean(), 0.0);
}

TEST(RunningStatsTest, StdErrorShrinksWithN) {
  RunningStats s;
  for (int i = 0; i < 100; ++i) s.Add(i % 2 == 0 ? 1.0 : -1.0);
  const double se100 = s.StdError();
  for (int i = 0; i < 300; ++i) s.Add(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_LT(s.StdError(), se100);
  EXPECT_NEAR(s.StdError(), s.StdDev() / 20.0, 1e-12);  // n = 400.
}

}  // namespace
}  // namespace bdisk::sim
