#include "broadcast/disk_config.h"

#include <gtest/gtest.h>

namespace bdisk::broadcast {
namespace {

TEST(DiskConfigTest, PaperConfiguration) {
  const DiskConfig config = DiskConfig::Paper();
  EXPECT_EQ(config.NumDisks(), 3U);
  EXPECT_EQ(config.TotalPages(), 1000U);
  EXPECT_EQ(config.sizes, (std::vector<std::uint32_t>{100, 400, 500}));
  EXPECT_EQ(config.rel_freqs, (std::vector<std::uint32_t>{3, 2, 1}));
  EXPECT_TRUE(config.Validate().empty());
}

TEST(DiskConfigTest, Figure1Configuration) {
  const DiskConfig config = DiskConfig::Figure1();
  EXPECT_EQ(config.TotalPages(), 7U);
  EXPECT_EQ(config.rel_freqs, (std::vector<std::uint32_t>{4, 2, 1}));
  EXPECT_TRUE(config.Validate().empty());
}

TEST(DiskConfigTest, RejectsEmpty) {
  DiskConfig config;
  EXPECT_FALSE(config.Validate().empty());
}

TEST(DiskConfigTest, RejectsMismatchedLengths) {
  DiskConfig config{{10, 20}, {2}};
  EXPECT_NE(config.Validate().find("same length"), std::string::npos);
}

TEST(DiskConfigTest, RejectsZeroFrequency) {
  DiskConfig config{{10}, {0}};
  EXPECT_NE(config.Validate().find(">= 1"), std::string::npos);
}

TEST(DiskConfigTest, RejectsIncreasingFrequencies) {
  DiskConfig config{{10, 10}, {1, 2}};
  EXPECT_NE(config.Validate().find("non-increasing"), std::string::npos);
}

TEST(DiskConfigTest, AllowsEqualFrequencies) {
  DiskConfig config{{10, 10}, {2, 2}};
  EXPECT_TRUE(config.Validate().empty());
}

TEST(DiskConfigTest, AllowsZeroSizedDisk) {
  // Fully truncated disks are legal; they are skipped at build time.
  DiskConfig config{{10, 0}, {2, 1}};
  EXPECT_TRUE(config.Validate().empty());
  EXPECT_EQ(config.TotalPages(), 10U);
}

TEST(DiskConfigTest, RejectsAllEmpty) {
  DiskConfig config{{0, 0}, {2, 1}};
  EXPECT_NE(config.Validate().find("at least one page"), std::string::npos);
}

TEST(DiskConfigTest, SingleFlatDisk) {
  // A one-disk program is the "flat disk" of Datacycle/BCIS (§5).
  DiskConfig config{{1000}, {1}};
  EXPECT_TRUE(config.Validate().empty());
}

}  // namespace
}  // namespace bdisk::broadcast
