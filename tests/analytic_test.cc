#include "core/analytic.h"

#include <gtest/gtest.h>

namespace bdisk::core {
namespace {

using broadcast::BroadcastProgram;

TEST(AnalyticTest, FlatDiskExpectation) {
  // Flat 4-page disk, uniform access: expected wait = 4/2 + 1 = 3.
  const BroadcastProgram program({0, 1, 2, 3}, 4);
  const std::vector<double> uniform(4, 0.25);
  EXPECT_DOUBLE_EQ(ExpectedPushResponse(program, uniform), 3.0);
}

TEST(AnalyticTest, FrequencyWeighting) {
  // Page 0 twice per 4-slot cycle (wait 2), pages 1,2 once (wait 3).
  const BroadcastProgram program({0, 1, 0, 2}, 3);
  EXPECT_DOUBLE_EQ(ExpectedPushResponse(program, {1.0, 0.0, 0.0}), 2.0);
  EXPECT_DOUBLE_EQ(ExpectedPushResponse(program, {0.0, 1.0, 0.0}), 3.0);
  EXPECT_DOUBLE_EQ(ExpectedPushResponse(program, {0.5, 0.25, 0.25}),
                   0.5 * 2.0 + 0.5 * 3.0);
}

TEST(AnalyticTest, SteadyStateSkipsResidentPages) {
  const BroadcastProgram program({0, 1, 0, 2}, 3);
  const std::vector<double> probs = {0.5, 0.25, 0.25};
  const std::vector<bool> resident = {true, false, false};
  EXPECT_DOUBLE_EQ(ExpectedSteadyPushResponse(program, probs, resident),
                   0.5 * 3.0);
  const std::vector<bool> none(3, false);
  EXPECT_DOUBLE_EQ(ExpectedSteadyPushResponse(program, probs, none),
                   ExpectedPushResponse(program, probs));
}

TEST(AnalyticTest, ZeroProbabilityUnscheduledPageIsFine) {
  const BroadcastProgram program({0, 1}, 3);  // Page 2 unscheduled.
  EXPECT_DOUBLE_EQ(ExpectedPushResponse(program, {0.5, 0.5, 0.0}),
                   0.5 * 2.0 + 0.5 * 2.0);
}

TEST(AnalyticDeathTest, RejectsUnscheduledPageWithProbability) {
  const BroadcastProgram program({0, 1}, 3);
  EXPECT_DEATH(ExpectedPushResponse(program, {0.5, 0.25, 0.25}),
               "not scheduled");
}

TEST(AnalyticDeathTest, RejectsSizeMismatch) {
  const BroadcastProgram program({0, 1}, 2);
  EXPECT_DEATH(ExpectedPushResponse(program, {1.0}), "cover");
}

}  // namespace
}  // namespace bdisk::core
