#include "core/config_io.h"

#include <gtest/gtest.h>

namespace bdisk::core {
namespace {

TEST(ConfigIoTest, AppliesScalarOptions) {
  SystemConfig config;
  EXPECT_EQ(ApplyConfigOption("pull_bw", "0.3", &config), "");
  EXPECT_EQ(config.pull_bw, 0.3);
  EXPECT_EQ(ApplyConfigOption("cache_size", "50", &config), "");
  EXPECT_EQ(config.cache_size, 50U);
  EXPECT_EQ(ApplyConfigOption("seed", "12345", &config), "");
  EXPECT_EQ(config.seed, 12345U);
  EXPECT_EQ(ApplyConfigOption("vc_enabled", "false", &config), "");
  EXPECT_FALSE(config.vc_enabled);
}

TEST(ConfigIoTest, AppliesEnumOptions) {
  SystemConfig config;
  EXPECT_EQ(ApplyConfigOption("mode", "pull", &config), "");
  EXPECT_EQ(config.mode, DeliveryMode::kPurePull);
  EXPECT_EQ(ApplyConfigOption("chunking", "pad", &config), "");
  EXPECT_EQ(config.chunking, broadcast::ChunkingMode::kPad);
  EXPECT_EQ(ApplyConfigOption("mc_policy", "lru", &config), "");
  EXPECT_EQ(config.mc_policy, cache::PolicyKind::kLru);
  EXPECT_EQ(ApplyConfigOption("mc_policy", "default", &config), "");
  EXPECT_FALSE(config.mc_policy.has_value());
}

TEST(ConfigIoTest, AppliesListOptions) {
  SystemConfig config;
  EXPECT_EQ(ApplyConfigOption("disk_sizes", "50, 200, 250", &config), "");
  EXPECT_EQ(config.disks.sizes, (std::vector<std::uint32_t>{50, 200, 250}));
  EXPECT_EQ(ApplyConfigOption("disk_freqs", "4,2,1", &config), "");
  EXPECT_EQ(config.disks.rel_freqs, (std::vector<std::uint32_t>{4, 2, 1}));
}

TEST(ConfigIoTest, OffsetSpecialValues) {
  SystemConfig config;
  EXPECT_EQ(ApplyConfigOption("offset", "42", &config), "");
  EXPECT_EQ(config.offset, 42U);
  EXPECT_EQ(ApplyConfigOption("offset", "cache_size", &config), "");
  EXPECT_FALSE(config.offset.has_value());
}

TEST(ConfigIoTest, RejectsUnknownKeysAndBadValues) {
  SystemConfig config;
  EXPECT_NE(ApplyConfigOption("bogus", "1", &config), "");
  EXPECT_NE(ApplyConfigOption("pull_bw", "abc", &config), "");
  EXPECT_NE(ApplyConfigOption("mode", "hybrid", &config), "");
  EXPECT_NE(ApplyConfigOption("vc_enabled", "maybe", &config), "");
  EXPECT_NE(ApplyConfigOption("disk_sizes", "", &config), "");
}

TEST(ConfigIoTest, ParsesWholeText) {
  SystemConfig config;
  const std::string text =
      "# paper defaults with a twist\n"
      "mode = ipp\n"
      "pull_bw = 0.3   # less pull\n"
      "\n"
      "thres_perc = 0.35\n";
  EXPECT_EQ(ParseConfigText(text, &config), "");
  EXPECT_EQ(config.pull_bw, 0.3);
  EXPECT_EQ(config.thres_perc, 0.35);
}

TEST(ConfigIoTest, ReportsErrorsWithLineNumbers) {
  SystemConfig config;
  const std::string error =
      ParseConfigText("mode = ipp\nnot a config line\n", &config);
  EXPECT_NE(error.find("line 2"), std::string::npos);
  const std::string bad_key = ParseConfigText("\n\nwrong = 1\n", &config);
  EXPECT_NE(bad_key.find("line 3"), std::string::npos);
  EXPECT_NE(bad_key.find("unknown key"), std::string::npos);
}

TEST(ConfigIoTest, RoundTripsThroughText) {
  SystemConfig config;
  config.mode = DeliveryMode::kIpp;
  config.pull_bw = 0.3;
  config.thres_perc = 0.25;
  config.chop_count = 200;
  config.offset = 77;
  config.noise = 0.15;
  config.mc_prefetch = true;
  config.update_rate = 0.05;
  config.update_zipf_theta = 0.5;
  config.mc_policy = cache::PolicyKind::kLfu;
  config.adaptive_pull_bw = true;
  config.seed = 999;

  SystemConfig parsed;
  ASSERT_EQ(ParseConfigText(ConfigToText(config), &parsed), "");
  EXPECT_EQ(parsed.mode, config.mode);
  EXPECT_EQ(parsed.pull_bw, config.pull_bw);
  EXPECT_EQ(parsed.thres_perc, config.thres_perc);
  EXPECT_EQ(parsed.chop_count, config.chop_count);
  EXPECT_EQ(parsed.offset, config.offset);
  EXPECT_EQ(parsed.noise, config.noise);
  EXPECT_EQ(parsed.mc_prefetch, config.mc_prefetch);
  EXPECT_EQ(parsed.update_rate, config.update_rate);
  EXPECT_EQ(parsed.update_zipf_theta, config.update_zipf_theta);
  EXPECT_EQ(parsed.mc_policy, config.mc_policy);
  EXPECT_EQ(parsed.adaptive_pull_bw, config.adaptive_pull_bw);
  EXPECT_EQ(parsed.seed, config.seed);
  EXPECT_EQ(parsed.disks.sizes, config.disks.sizes);
}

TEST(ConfigIoTest, DefaultConfigRoundTripsValid) {
  SystemConfig config;
  SystemConfig parsed;
  ASSERT_EQ(ParseConfigText(ConfigToText(config), &parsed), "");
  EXPECT_TRUE(parsed.Validate().empty());
}

TEST(ConfigIoTest, ObservabilityKeysApplyAndRoundTrip) {
  SystemConfig config;
  EXPECT_EQ(ApplyConfigOption("obs_window", "250", &config), "");
  EXPECT_EQ(config.obs_window, 250.0);
  EXPECT_EQ(ApplyConfigOption("flight_recorder",
                              "drop_rate>0.5,queue_depth>9", &config),
            "");
  EXPECT_EQ(config.flight_recorder, "drop_rate>0.5,queue_depth>9");
  // "off" (and empty) disarm an earlier setting.
  EXPECT_EQ(ApplyConfigOption("flight_recorder", "off", &config), "");
  EXPECT_TRUE(config.flight_recorder.empty());

  config.flight_recorder = "p99>120";
  SystemConfig parsed;
  ASSERT_EQ(ParseConfigText(ConfigToText(config), &parsed), "");
  EXPECT_EQ(parsed.obs_window, 250.0);
  EXPECT_EQ(parsed.flight_recorder, "p99>120");
}

TEST(ConfigIoTest, ArrivalSpineKeyAppliesAndRoundTrips) {
  SystemConfig config;
  EXPECT_EQ(ApplyConfigOption("sim.arrival_spine", "on", &config), "");
  EXPECT_EQ(config.arrival_spine, ArrivalSpine::kOn);
  EXPECT_EQ(ApplyConfigOption("sim.arrival_spine", "off", &config), "");
  EXPECT_EQ(config.arrival_spine, ArrivalSpine::kOff);
  EXPECT_EQ(ApplyConfigOption("sim.arrival_spine", "auto", &config), "");
  EXPECT_EQ(config.arrival_spine, ArrivalSpine::kAuto);
  EXPECT_EQ(ApplyConfigOption("sim.arrival_spine", "fast", &config),
            "sim.arrival_spine must be auto, on, or off");

  for (const ArrivalSpine value :
       {ArrivalSpine::kAuto, ArrivalSpine::kOn, ArrivalSpine::kOff}) {
    config.arrival_spine = value;
    SystemConfig parsed;
    ASSERT_EQ(ParseConfigText(ConfigToText(config), &parsed), "");
    EXPECT_EQ(parsed.arrival_spine, value);
  }
}

TEST(ConfigIoTest, ObservabilityKeysRejectBadValuesWithSpecificErrors) {
  SystemConfig config;
  EXPECT_EQ(ApplyConfigOption("obs_window", "0", &config),
            "obs_window must be positive");
  EXPECT_EQ(ApplyConfigOption("obs_window", "-5", &config),
            "obs_window must be positive");
  EXPECT_EQ(ApplyConfigOption("obs_window", "soon", &config),
            "invalid value for obs_window");
  // The trigger grammar's own diagnostics surface through config parsing.
  EXPECT_EQ(ApplyConfigOption("flight_recorder", "bogus>1", &config),
            "flight_recorder: unknown trigger \"bogus\" "
            "(know drop_rate, p99, queue_depth, shed_rate, loss_rate)");
  EXPECT_EQ(ApplyConfigOption("flight_recorder", "p99=3", &config),
            "flight_recorder: trigger \"p99=3\" is missing '>' "
            "(want name>threshold)");
  // A bad spec never half-applies.
  EXPECT_TRUE(config.flight_recorder.empty());
  // Validate() re-checks a directly poked config.
  config.flight_recorder = "p99>nope";
  EXPECT_EQ(config.Validate(),
            "flight_recorder: trigger \"p99\" has unparsable threshold "
            "\"nope\"");
}

}  // namespace
}  // namespace bdisk::core
