#include "broadcast/broadcast_program.h"

#include <gtest/gtest.h>

namespace bdisk::broadcast {
namespace {

// The Figure 1 cycle: a b d a c e a b f a c g with a..g = 0..6.
BroadcastProgram Figure1Program() {
  return BroadcastProgram({0, 1, 3, 0, 2, 4, 0, 1, 5, 0, 2, 6}, 7);
}

TEST(BroadcastProgramTest, BasicShape) {
  const BroadcastProgram program = Figure1Program();
  EXPECT_EQ(program.Length(), 12U);
  EXPECT_EQ(program.DbSize(), 7U);
  EXPECT_FALSE(program.Empty());
  EXPECT_EQ(program.PageAt(0), 0U);
  EXPECT_EQ(program.PageAt(2), 3U);
}

TEST(BroadcastProgramTest, Frequencies) {
  const BroadcastProgram program = Figure1Program();
  EXPECT_EQ(program.Frequency(0), 4U);  // Page a.
  EXPECT_EQ(program.Frequency(1), 2U);  // Page b.
  EXPECT_EQ(program.Frequency(2), 2U);  // Page c.
  for (PageId p = 3; p <= 6; ++p) EXPECT_EQ(program.Frequency(p), 1U);
}

TEST(BroadcastProgramTest, ContainsAndNeverBroadcast) {
  const BroadcastProgram program({0, 1, 0}, 3);
  EXPECT_TRUE(program.Contains(0));
  EXPECT_TRUE(program.Contains(1));
  EXPECT_FALSE(program.Contains(2));
  EXPECT_EQ(program.DistanceToNext(0, 2), BroadcastProgram::kNeverBroadcast);
}

TEST(BroadcastProgramTest, DistanceZeroAtOwnSlot) {
  const BroadcastProgram program = Figure1Program();
  EXPECT_EQ(program.DistanceToNext(0, 0), 0U);
  EXPECT_EQ(program.DistanceToNext(2, 3), 0U);
}

TEST(BroadcastProgramTest, DistanceForward) {
  const BroadcastProgram program = Figure1Program();
  // From slot 1 (page b): page e (4) is at slot 5 -> distance 4.
  EXPECT_EQ(program.DistanceToNext(1, 4), 4U);
  // Page a (0) next at slot 3 from slot 1 -> 2.
  EXPECT_EQ(program.DistanceToNext(1, 0), 2U);
}

TEST(BroadcastProgramTest, DistanceWrapsAround) {
  const BroadcastProgram program = Figure1Program();
  // From slot 11 (page g): page d (3) is at slot 2 -> 12 - 11 + 2 = 3.
  EXPECT_EQ(program.DistanceToNext(11, 3), 3U);
  // From slot 3, page d already passed -> wraps: 12 - 3 + 2 = 11.
  EXPECT_EQ(program.DistanceToNext(3, 3), 11U);
}

TEST(BroadcastProgramTest, DistanceNeverExceedsCycle) {
  const BroadcastProgram program = Figure1Program();
  for (std::uint32_t pos = 0; pos < program.Length(); ++pos) {
    for (PageId p = 0; p < 7; ++p) {
      EXPECT_LT(program.DistanceToNext(pos, p), program.Length());
    }
  }
}

TEST(BroadcastProgramTest, DistanceIsCorrectByBruteForce) {
  const BroadcastProgram program = Figure1Program();
  for (std::uint32_t pos = 0; pos < program.Length(); ++pos) {
    for (PageId p = 0; p < 7; ++p) {
      std::uint32_t brute = 0;
      while (program.PageAt((pos + brute) % program.Length()) != p) ++brute;
      EXPECT_EQ(program.DistanceToNext(pos, p), brute)
          << "pos=" << pos << " page=" << p;
    }
  }
}

TEST(BroadcastProgramTest, ExpectedWait) {
  const BroadcastProgram program = Figure1Program();
  EXPECT_DOUBLE_EQ(program.ExpectedWait(0), 12.0 / 8.0);   // freq 4.
  EXPECT_DOUBLE_EQ(program.ExpectedWait(3), 6.0);          // freq 1.
}

TEST(BroadcastProgramTest, EmptyProgram) {
  const BroadcastProgram program({}, 100);
  EXPECT_TRUE(program.Empty());
  EXPECT_EQ(program.Length(), 0U);
  EXPECT_EQ(program.Frequency(5), 0U);
  EXPECT_FALSE(program.Contains(5));
}

TEST(BroadcastProgramTest, PaddingSlotsIgnoredInIndex) {
  const BroadcastProgram program({0, kNoPage, 1, kNoPage}, 2);
  EXPECT_EQ(program.Length(), 4U);
  EXPECT_EQ(program.Frequency(0), 1U);
  EXPECT_EQ(program.Frequency(1), 1U);
  EXPECT_EQ(program.DistanceToNext(1, 1), 1U);
}

TEST(BroadcastProgramTest, ToStringRendersPagesAndPadding) {
  const BroadcastProgram program({0, kNoPage, 2}, 3);
  EXPECT_EQ(program.ToString(), "0 - 2");
}

TEST(BroadcastProgramDeathTest, RejectsOutOfRangePage) {
  EXPECT_DEATH(BroadcastProgram({5}, 3), "out-of-range");
}

}  // namespace
}  // namespace bdisk::broadcast
