// The server broadcasts to arbitrarily many listeners; these tests run
// several full MeasuredClients against one server to check population
// effects the single-MC System cannot: snooping between real clients,
// backchannel contention among peers, and per-client independence under
// Pure-Push.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "client/measured_client.h"
#include "server/broadcast_server.h"
#include "sim/simulator.h"
#include "sim/zipf.h"
#include "workload/access_pattern.h"
#include "workload/noise.h"

namespace bdisk {
namespace {

using broadcast::BroadcastProgram;
using server::BroadcastServer;
using workload::AccessPattern;

struct Fleet {
  sim::Simulator sim;
  std::unique_ptr<BroadcastServer> server;
  std::vector<std::unique_ptr<client::MeasuredClient>> clients;
};

// A fleet of `n` clients over a 50-page flat-disk broadcast.
std::unique_ptr<Fleet> MakeFleet(int n, double pull_bw,
                                 std::uint32_t queue_capacity,
                                 bool use_backchannel) {
  auto fleet = std::make_unique<Fleet>();
  std::vector<broadcast::PageId> schedule;
  for (broadcast::PageId p = 0; p < 50; ++p) schedule.push_back(p);
  fleet->server = std::make_unique<BroadcastServer>(
      &fleet->sim, BroadcastProgram(std::move(schedule), 50), pull_bw,
      queue_capacity, sim::Rng(1));

  const AccessPattern base = AccessPattern::Zipf(50, 0.95);
  for (int i = 0; i < n; ++i) {
    client::MeasuredClientOptions options;
    options.cache_size = 5;
    options.think_time = 10.0;
    options.use_backchannel = use_backchannel;
    options.retry_interval = use_backchannel ? 100.0 : 0.0;
    sim::Rng pattern_rng(100 + i);
    fleet->clients.push_back(std::make_unique<client::MeasuredClient>(
        &fleet->sim, fleet->server.get(),
        base.WithNoise(i == 0 ? 0.0 : 0.2, pattern_rng), options,
        sim::Rng(200 + i)));
  }
  return fleet;
}

TEST(MultiClientTest, AllClientsProgressUnderPurePush) {
  auto fleet = MakeFleet(4, 0.0, 10, /*use_backchannel=*/false);
  for (auto& mc : fleet->clients) {
    mc->SetRecording(true);
    mc->Start();
  }
  fleet->sim.RunUntil(20000.0);
  for (auto& mc : fleet->clients) {
    EXPECT_GT(mc->TotalAccesses(), 100U);
    EXPECT_GT(mc->response_times().Count(), 0U);
  }
}

TEST(MultiClientTest, PushClientsAreIndependent) {
  // A push-only client's performance must not depend on how many other
  // clients watch the broadcast (the paper's scalability argument for
  // push).
  auto solo = MakeFleet(1, 0.0, 10, false);
  solo->clients[0]->SetRecording(true);
  solo->clients[0]->Start();
  solo->sim.RunUntil(50000.0);
  const double alone = solo->clients[0]->response_times().Mean();

  auto crowd = MakeFleet(8, 0.0, 10, false);
  for (auto& mc : crowd->clients) mc->Start();
  crowd->clients[0]->SetRecording(true);
  crowd->sim.RunUntil(50000.0);
  const double crowded = crowd->clients[0]->response_times().Mean();

  // Client 0 has the same pattern/seed in both fleets; with no
  // backchannel its trajectory is identical.
  EXPECT_DOUBLE_EQ(alone, crowded);
}

TEST(MultiClientTest, SnoopingServesIdenticalInterests) {
  // Clients with overlapping hot sets share pull responses: total pull
  // slots consumed grow sub-linearly in the number of clients.
  auto solo = MakeFleet(1, 0.5, 50, true);
  for (auto& mc : solo->clients) mc->Start();
  solo->sim.RunUntil(20000.0);
  const std::uint64_t solo_pulls = solo->server->PullSlots();

  auto crowd = MakeFleet(6, 0.5, 50, true);
  for (auto& mc : crowd->clients) mc->Start();
  crowd->sim.RunUntil(20000.0);
  const std::uint64_t crowd_pulls = crowd->server->PullSlots();

  EXPECT_LT(crowd_pulls, solo_pulls * 6);
  // And the crowd really did make more requests than one client.
  EXPECT_GT(crowd->server->queue().SubmittedCount(),
            solo->server->queue().SubmittedCount());
}

TEST(MultiClientTest, SharedQueueContentionDropsRequests) {
  // A tiny queue plus many clients: some requests must drop, yet every
  // client still completes accesses via the push safety net.
  auto fleet = MakeFleet(8, 0.2, 1, true);
  for (auto& mc : fleet->clients) {
    mc->SetRecording(true);
    mc->Start();
  }
  fleet->sim.RunUntil(30000.0);
  EXPECT_GT(fleet->server->queue().DroppedCount(), 0U);
  for (auto& mc : fleet->clients) {
    EXPECT_GT(mc->response_times().Count(), 50U);  // Nobody starves.
  }
}

TEST(MultiClientTest, DeterministicAcrossRuns) {
  auto a = MakeFleet(3, 0.5, 10, true);
  for (auto& mc : a->clients) {
    mc->SetRecording(true);
    mc->Start();
  }
  a->sim.RunUntil(10000.0);

  auto b = MakeFleet(3, 0.5, 10, true);
  for (auto& mc : b->clients) {
    mc->SetRecording(true);
    mc->Start();
  }
  b->sim.RunUntil(10000.0);

  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(a->clients[i]->response_times().Mean(),
                     b->clients[i]->response_times().Mean());
  }
}

}  // namespace
}  // namespace bdisk
