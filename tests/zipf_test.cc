#include "sim/zipf.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace bdisk::sim {
namespace {

TEST(ZipfTest, SumsToOne) {
  const auto pmf = ZipfPmf(1000, 0.95);
  const double total = std::accumulate(pmf.begin(), pmf.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfTest, MonotonicallyDecreasing) {
  const auto pmf = ZipfPmf(1000, 0.95);
  for (std::size_t i = 1; i < pmf.size(); ++i) {
    EXPECT_LT(pmf[i], pmf[i - 1]) << "rank " << i;
  }
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  const auto pmf = ZipfPmf(10, 0.0);
  for (const double p : pmf) EXPECT_NEAR(p, 0.1, 1e-12);
}

TEST(ZipfTest, RatioFollowsPowerLaw) {
  const double theta = 0.95;
  const auto pmf = ZipfPmf(100, theta);
  // p(rank 1) / p(rank 2) == 2^theta (ranks are 1-based).
  EXPECT_NEAR(pmf[0] / pmf[1], std::pow(2.0, theta), 1e-9);
  EXPECT_NEAR(pmf[1] / pmf[3], std::pow(2.0, theta), 1e-9);
}

TEST(ZipfTest, SingleItem) {
  const auto pmf = ZipfPmf(1, 0.95);
  ASSERT_EQ(pmf.size(), 1U);
  EXPECT_EQ(pmf[0], 1.0);
}

TEST(ZipfTest, HigherThetaIsMoreSkewed) {
  const auto flat = ZipfPmf(100, 0.5);
  const auto steep = ZipfPmf(100, 1.5);
  EXPECT_GT(steep[0], flat[0]);
  EXPECT_LT(steep[99], flat[99]);
}

TEST(ZipfTest, PaperSkewTopHundredOfThousand) {
  // With theta = 0.95 over 1000 pages, the 100 hottest pages draw roughly
  // 60% of accesses — the regime that makes a CacheSize=100 cache and the
  // Offset transformation meaningful.
  const auto pmf = ZipfPmf(1000, 0.95);
  const double top100 =
      std::accumulate(pmf.begin(), pmf.begin() + 100, 0.0);
  EXPECT_GT(top100, 0.55);
  EXPECT_LT(top100, 0.70);
}

TEST(ZipfDeathTest, RejectsZeroItems) {
  EXPECT_DEATH(ZipfPmf(0, 0.95), "at least one");
}

TEST(ZipfDeathTest, RejectsNegativeTheta) {
  EXPECT_DEATH(ZipfPmf(10, -1.0), "non-negative");
}

}  // namespace
}  // namespace bdisk::sim
