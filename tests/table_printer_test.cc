#include "core/table_printer.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace bdisk::core {
namespace {

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter table({"TTR", "Push", "Pull"});
  table.AddRow({"10", "278.0", "2.1"});
  table.AddRow({"250", "278.0", "650.4"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("TTR"), std::string::npos);
  EXPECT_NE(out.find("650.4"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Three data lines + separator + header.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TablePrinterTest, ColumnsAreAligned) {
  TablePrinter table({"A", "B"});
  table.AddRow({"1", "22"});
  table.AddRow({"333", "4"});
  const std::string out = table.ToString();
  // Every line has the same length (right-aligned padding).
  std::size_t first_len = out.find('\n');
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(TablePrinterTest, FmtAndPct) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(278.0, 0), "278");
  EXPECT_EQ(TablePrinter::Pct(0.688), "68.8%");
  EXPECT_EQ(TablePrinter::Pct(0.5, 0), "50%");
}

TEST(TablePrinterDeathTest, RejectsRowWidthMismatch) {
  TablePrinter table({"A", "B"});
  EXPECT_DEATH(table.AddRow({"only one"}), "width");
}

TEST(TablePrinterDeathTest, RejectsEmptyHeader) {
  EXPECT_DEATH(TablePrinter({}), "column");
}

}  // namespace
}  // namespace bdisk::core
