#include "server/pull_queue.h"

#include <gtest/gtest.h>

namespace bdisk::server {
namespace {

TEST(PullQueueTest, AcceptsUpToCapacity) {
  PullQueue queue(3, 10);
  EXPECT_EQ(queue.Submit(0), SubmitResult::kAccepted);
  EXPECT_EQ(queue.Submit(1), SubmitResult::kAccepted);
  EXPECT_EQ(queue.Submit(2), SubmitResult::kAccepted);
  EXPECT_EQ(queue.Size(), 3U);
  EXPECT_EQ(queue.Submit(3), SubmitResult::kDroppedFull);
  EXPECT_EQ(queue.Size(), 3U);
}

TEST(PullQueueTest, FifoOrder) {
  PullQueue queue(5, 10);
  queue.Submit(7);
  queue.Submit(3);
  queue.Submit(9);
  EXPECT_EQ(queue.PopFront(), 7U);
  EXPECT_EQ(queue.PopFront(), 3U);
  EXPECT_EQ(queue.PopFront(), 9U);
  EXPECT_TRUE(queue.Empty());
}

TEST(PullQueueTest, DuplicatesCoalesce) {
  PullQueue queue(5, 10);
  EXPECT_EQ(queue.Submit(4), SubmitResult::kAccepted);
  EXPECT_EQ(queue.Submit(4), SubmitResult::kCoalesced);
  EXPECT_EQ(queue.Submit(4), SubmitResult::kCoalesced);
  EXPECT_EQ(queue.Size(), 1U);
  EXPECT_EQ(queue.CoalescedCount(), 2U);
}

TEST(PullQueueTest, PageCanRequeueAfterService) {
  PullQueue queue(5, 10);
  queue.Submit(4);
  EXPECT_EQ(queue.PopFront(), 4U);
  EXPECT_FALSE(queue.IsQueued(4));
  EXPECT_EQ(queue.Submit(4), SubmitResult::kAccepted);
}

TEST(PullQueueTest, CoalesceCheckedBeforeFullness) {
  // Paper semantics: a duplicate is ignored-as-satisfied even when the
  // queue is full; only genuinely new pages are dropped.
  PullQueue queue(2, 10);
  queue.Submit(0);
  queue.Submit(1);
  EXPECT_EQ(queue.Submit(0), SubmitResult::kCoalesced);
  EXPECT_EQ(queue.Submit(2), SubmitResult::kDroppedFull);
}

TEST(PullQueueTest, DropRateAccounting) {
  PullQueue queue(1, 10);
  queue.Submit(0);  // Accepted.
  queue.Submit(1);  // Dropped.
  queue.Submit(2);  // Dropped.
  queue.Submit(0);  // Coalesced.
  EXPECT_EQ(queue.SubmittedCount(), 4U);
  EXPECT_EQ(queue.AcceptedCount(), 1U);
  EXPECT_EQ(queue.DroppedCount(), 2U);
  EXPECT_EQ(queue.CoalescedCount(), 1U);
  EXPECT_DOUBLE_EQ(queue.DropRate(), 0.5);
}

TEST(PullQueueTest, DropRateZeroWhenIdle) {
  PullQueue queue(1, 10);
  EXPECT_EQ(queue.DropRate(), 0.0);
}

TEST(PullQueueTest, IsQueuedTracksMembership) {
  PullQueue queue(3, 10);
  EXPECT_FALSE(queue.IsQueued(5));
  queue.Submit(5);
  EXPECT_TRUE(queue.IsQueued(5));
  queue.PopFront();
  EXPECT_FALSE(queue.IsQueued(5));
}

TEST(PullQueueDeathTest, PopOnEmptyAborts) {
  PullQueue queue(3, 10);
  EXPECT_DEATH(queue.PopFront(), "empty");
}

TEST(PullQueueDeathTest, RejectsZeroCapacity) {
  EXPECT_DEATH(PullQueue(0, 10), "positive");
}

}  // namespace
}  // namespace bdisk::server
