#include "core/config.h"

#include <gtest/gtest.h>

namespace bdisk::core {
namespace {

TEST(ConfigTest, DefaultsAreThePaperTable3AndValid) {
  SystemConfig config;
  EXPECT_TRUE(config.Validate().empty()) << config.Validate();
  EXPECT_EQ(config.server_db_size, 1000U);
  EXPECT_EQ(config.cache_size, 100U);
  EXPECT_EQ(config.server_queue_size, 100U);
  EXPECT_EQ(config.mc_think_time, 20.0);
  EXPECT_EQ(config.zipf_theta, 0.95);
  EXPECT_EQ(config.disks.sizes, (std::vector<std::uint32_t>{100, 400, 500}));
  EXPECT_EQ(config.disks.rel_freqs, (std::vector<std::uint32_t>{3, 2, 1}));
  EXPECT_EQ(config.EffectiveOffset(), 100U);  // Offset = CacheSize.
}

TEST(ConfigTest, EffectivePullBwFollowsMode) {
  SystemConfig config;
  config.pull_bw = 0.3;
  config.mode = DeliveryMode::kPurePush;
  EXPECT_EQ(config.EffectivePullBw(), 0.0);
  config.mode = DeliveryMode::kPurePull;
  EXPECT_EQ(config.EffectivePullBw(), 1.0);
  config.mode = DeliveryMode::kIpp;
  EXPECT_EQ(config.EffectivePullBw(), 0.3);
}

TEST(ConfigTest, ModeNames) {
  EXPECT_STREQ(DeliveryModeName(DeliveryMode::kPurePush), "Push");
  EXPECT_STREQ(DeliveryModeName(DeliveryMode::kPurePull), "Pull");
  EXPECT_STREQ(DeliveryModeName(DeliveryMode::kIpp), "IPP");
}

TEST(ConfigTest, RejectsDiskSizeMismatch) {
  SystemConfig config;
  config.server_db_size = 900;
  EXPECT_NE(config.Validate().find("sum"), std::string::npos);
}

TEST(ConfigTest, PurePullIgnoresDiskShape) {
  SystemConfig config;
  config.mode = DeliveryMode::kPurePull;
  config.server_db_size = 900;  // Disks no longer match: fine for pull.
  EXPECT_TRUE(config.Validate().empty()) << config.Validate();
}

TEST(ConfigTest, RejectsIppWithZeroPullBw) {
  SystemConfig config;
  config.pull_bw = 0.0;
  EXPECT_NE(config.Validate().find("Pure-Push"), std::string::npos);
}

TEST(ConfigTest, RejectsPushWithTruncation) {
  SystemConfig config;
  config.mode = DeliveryMode::kPurePush;
  config.chop_count = 100;
  EXPECT_NE(config.Validate().find("truncate"), std::string::npos);
}

TEST(ConfigTest, RejectsChopOfEverything) {
  SystemConfig config;
  config.chop_count = 1000;
  EXPECT_FALSE(config.Validate().empty());
}

TEST(ConfigTest, RejectsOffsetBeyondBroadcastPages) {
  SystemConfig config;
  config.chop_count = 950;
  config.offset = 100;
  EXPECT_NE(config.Validate().find("offset"), std::string::npos);
}

TEST(ConfigTest, RejectsCacheAsLargeAsDatabase) {
  SystemConfig config;
  config.cache_size = 1000;
  EXPECT_NE(config.Validate().find("smaller"), std::string::npos);
}

TEST(ConfigTest, RejectsBadFractions) {
  SystemConfig config;
  config.thres_perc = 1.2;
  EXPECT_FALSE(config.Validate().empty());
  config = SystemConfig{};
  config.noise = -0.2;
  EXPECT_FALSE(config.Validate().empty());
  config = SystemConfig{};
  config.steady_state_perc = 2.0;
  EXPECT_FALSE(config.Validate().empty());
  config = SystemConfig{};
  config.pull_bw = 1.0001;
  EXPECT_FALSE(config.Validate().empty());
}

TEST(ConfigTest, ExplicitOffsetOverridesDefault) {
  SystemConfig config;
  config.offset = 0;
  EXPECT_EQ(config.EffectiveOffset(), 0U);
  EXPECT_TRUE(config.Validate().empty());
}

}  // namespace
}  // namespace bdisk::core
