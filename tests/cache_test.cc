#include "cache/cache.h"

#include <gtest/gtest.h>

#include "cache/static_value_policy.h"

namespace bdisk::cache {
namespace {

// A 3-page cache over a 10-page database where value == page id (higher
// pages are more valuable).
Cache MakeValueCache(std::uint32_t capacity = 3) {
  std::vector<double> values(10);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i);
  }
  return Cache(capacity, 10,
               std::make_unique<StaticValuePolicy>(values, "TEST"));
}

TEST(CacheTest, StartsEmpty) {
  Cache cache = MakeValueCache();
  EXPECT_EQ(cache.Size(), 0U);
  EXPECT_EQ(cache.Capacity(), 3U);
  EXPECT_FALSE(cache.IsFull());
  EXPECT_FALSE(cache.Contains(0));
}

TEST(CacheTest, MissThenHit) {
  Cache cache = MakeValueCache();
  EXPECT_FALSE(cache.Access(4));
  cache.Insert(4);
  EXPECT_TRUE(cache.Access(4));
  EXPECT_EQ(cache.Hits(), 1U);
  EXPECT_EQ(cache.Misses(), 1U);
}

TEST(CacheTest, FillsToCapacity) {
  Cache cache = MakeValueCache();
  cache.Insert(1);
  cache.Insert(2);
  cache.Insert(3);
  EXPECT_TRUE(cache.IsFull());
  EXPECT_EQ(cache.Evictions(), 0U);
}

TEST(CacheTest, EvictsLowestValueWhenFull) {
  Cache cache = MakeValueCache();
  cache.Insert(5);
  cache.Insert(2);
  cache.Insert(8);
  const auto evicted = cache.Insert(9);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 2U);  // Lowest value.
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(5));
  EXPECT_TRUE(cache.Contains(8));
  EXPECT_TRUE(cache.Contains(9));
  EXPECT_EQ(cache.Evictions(), 1U);
}

TEST(CacheTest, ReinsertIsNoOp) {
  Cache cache = MakeValueCache();
  cache.Insert(5);
  const auto evicted = cache.Insert(5);
  EXPECT_FALSE(evicted.has_value());
  EXPECT_EQ(cache.Size(), 1U);
}

TEST(CacheTest, ContainsDoesNotCount) {
  Cache cache = MakeValueCache();
  cache.Insert(5);
  EXPECT_TRUE(cache.Contains(5));
  EXPECT_FALSE(cache.Contains(6));
  EXPECT_EQ(cache.Hits(), 0U);
  EXPECT_EQ(cache.Misses(), 0U);
}

TEST(CacheTest, LowValuePageNeverDisplacesHigher) {
  Cache cache = MakeValueCache();
  cache.Insert(7);
  cache.Insert(8);
  cache.Insert(9);
  // Inserting a low-value page evicts ... itself? No: the policy evicts the
  // minimum among residents *after* insert bookkeeping happens on a full
  // cache. The implementation evicts before inserting, so 7 goes.
  const auto evicted = cache.Insert(1);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 7U);
  EXPECT_TRUE(cache.Contains(1));
}

TEST(CacheTest, CapacityOne) {
  Cache cache = MakeValueCache(1);
  cache.Insert(3);
  const auto evicted = cache.Insert(4);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 3U);
  EXPECT_EQ(cache.Size(), 1U);
}

TEST(CacheTest, RemoveDropsResidentPage) {
  Cache cache = MakeValueCache();
  cache.Insert(5);
  cache.Insert(6);
  EXPECT_TRUE(cache.Remove(5));
  EXPECT_FALSE(cache.Contains(5));
  EXPECT_EQ(cache.Size(), 1U);
  EXPECT_EQ(cache.Removals(), 1U);
  EXPECT_EQ(cache.Evictions(), 0U);  // Removal is not a policy eviction.
}

TEST(CacheTest, RemoveAbsentIsNoOp) {
  Cache cache = MakeValueCache();
  EXPECT_FALSE(cache.Remove(5));
  EXPECT_EQ(cache.Removals(), 0U);
}

TEST(CacheTest, RemoveFreesPolicyState) {
  // After removal the page must be re-insertable without tripping policy
  // bookkeeping, and the victim ordering must stay consistent.
  Cache cache = MakeValueCache();
  cache.Insert(1);
  cache.Insert(2);
  cache.Insert(3);
  cache.Remove(1);
  cache.Insert(1);
  const auto evicted = cache.Insert(9);  // Full again: evicts min = 1.
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 1U);
}

TEST(CacheTest, ResidentMaskMatchesContains) {
  Cache cache = MakeValueCache();
  cache.Insert(2);
  cache.Insert(7);
  const auto& mask = cache.resident_mask();
  for (PageId p = 0; p < 10; ++p) {
    EXPECT_EQ(mask[p], cache.Contains(p)) << p;
  }
}

TEST(CacheDeathTest, RejectsZeroCapacity) {
  std::vector<double> values(10, 1.0);
  EXPECT_DEATH(Cache(0, 10,
                     std::make_unique<StaticValuePolicy>(values, "T")),
               "positive");
}

TEST(CacheDeathTest, RejectsNullPolicy) {
  EXPECT_DEATH(Cache(3, 10, nullptr), "policy");
}

}  // namespace
}  // namespace bdisk::cache
