// End-to-end tests of the volatile-data extension ([Acha96b]): updates
// invalidate cached copies, degrading hit rates and response times
// gracefully at moderate rates.

#include <gtest/gtest.h>

#include "core/system.h"

namespace bdisk::core {
namespace {

SystemConfig SmallConfig(double update_rate) {
  SystemConfig config;
  config.server_db_size = 100;
  config.disks = broadcast::DiskConfig{{10, 40, 50}, {3, 2, 1}};
  config.cache_size = 10;
  config.server_queue_size = 10;
  config.mc_think_time = 5.0;
  config.think_time_ratio = 10.0;
  config.update_rate = update_rate;
  config.seed = 13;
  return config;
}

SteadyStateProtocol FastProtocol() {
  SteadyStateProtocol protocol;
  protocol.post_fill_accesses = 200;
  protocol.min_measured_accesses = 2000;
  protocol.max_measured_accesses = 8000;
  protocol.batch_size = 500;
  protocol.tolerance = 0.05;
  return protocol;
}

TEST(VolatileDataTest, ReadOnlyHasNoUpdateMachinery) {
  System system(SmallConfig(0.0));
  EXPECT_EQ(system.update_generator(), nullptr);
  const RunResult result = system.RunSteadyState(FastProtocol());
  EXPECT_EQ(result.updates_generated, 0U);
  EXPECT_EQ(result.mc_invalidations, 0U);
}

TEST(VolatileDataTest, UpdatesReachTheMeasuredClient) {
  System system(SmallConfig(0.05));
  ASSERT_NE(system.update_generator(), nullptr);
  const RunResult result = system.RunSteadyState(FastProtocol());
  EXPECT_GT(result.updates_generated, 0U);
  EXPECT_EQ(result.mc_invalidations, result.updates_generated);
}

TEST(VolatileDataTest, UpdatesLowerHitRate) {
  System clean(SmallConfig(0.0));
  const RunResult read_only = clean.RunSteadyState(FastProtocol());

  System dirty(SmallConfig(0.1));
  const RunResult updated = dirty.RunSteadyState(FastProtocol());

  EXPECT_LT(updated.mc_hit_rate, read_only.mc_hit_rate);
  EXPECT_GT(updated.mean_response, read_only.mean_response);
}

TEST(VolatileDataTest, ModerateRatesDegradeGracefully) {
  // [Acha96b]'s qualitative claim (cited in §1.4): moderate update rates
  // approach read-only performance. One update per ~10 broadcast pages of
  // a 100-page DB is already aggressive; response must stay the same
  // order of magnitude.
  System clean(SmallConfig(0.0));
  const double read_only =
      clean.RunSteadyState(FastProtocol()).mean_response;

  System dirty(SmallConfig(0.02));
  const double updated = dirty.RunSteadyState(FastProtocol()).mean_response;
  EXPECT_LT(updated, read_only * 3.0 + 10.0);
}

TEST(VolatileDataTest, MonotoneInUpdateRate) {
  double prev = -1.0;
  for (const double rate : {0.0, 0.05, 0.2}) {
    System system(SmallConfig(rate));
    const double response =
        system.RunSteadyState(FastProtocol()).mean_response;
    EXPECT_GT(response, prev) << "rate=" << rate;
    prev = response;
  }
}

TEST(VolatileDataTest, UpdateSkewIsConfigurable) {
  SystemConfig config = SmallConfig(0.05);
  config.update_zipf_theta = 0.0;  // Uniform updates.
  System system(config);
  const RunResult result = system.RunSteadyState(FastProtocol());
  EXPECT_GT(result.updates_generated, 0U);
}

TEST(VolatileDataDeathTest, RejectsNegativeRate) {
  SystemConfig config = SmallConfig(0.0);
  config.update_rate = -1.0;
  EXPECT_DEATH(System system(config), "update_rate");
}

}  // namespace
}  // namespace bdisk::core
