#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "cache/cache.h"
#include "cache/lfu_policy.h"
#include "cache/lru_policy.h"
#include "cache/static_value_policy.h"

namespace bdisk::cache {
namespace {

// ---------------------------------------------------------------- PIX / P

TEST(StaticValuePolicyTest, EvictsMinimumValue) {
  StaticValuePolicy policy({0.5, 0.1, 0.9}, "PIX");
  policy.OnInsert(0);
  policy.OnInsert(1);
  policy.OnInsert(2);
  EXPECT_EQ(policy.ChooseVictim(), 1U);
  policy.OnEvict(1);
  EXPECT_EQ(policy.ChooseVictim(), 0U);
}

TEST(StaticValuePolicyTest, AccessDoesNotChangeVictim) {
  StaticValuePolicy policy({0.5, 0.1, 0.9}, "PIX");
  policy.OnInsert(0);
  policy.OnInsert(1);
  for (int i = 0; i < 10; ++i) policy.OnAccess(1);
  EXPECT_EQ(policy.ChooseVictim(), 1U);  // Value-based, not recency-based.
}

TEST(StaticValuePolicyTest, TieBreaksByLowerPageId) {
  StaticValuePolicy policy({0.3, 0.3, 0.3}, "PIX");
  policy.OnInsert(2);
  policy.OnInsert(0);
  policy.OnInsert(1);
  EXPECT_EQ(policy.ChooseVictim(), 0U);
}

// The paper's §2.1 example: pa=0.3, xa=4; pb=0.1, xb=1. Under PIX page a
// (value 0.075) is always evicted before page b (value 0.1) even though
// its access probability is higher.
TEST(StaticValuePolicyTest, PaperPixExample) {
  StaticValuePolicy pix({0.3 / 4.0, 0.1 / 1.0}, "PIX");
  pix.OnInsert(0);  // a
  pix.OnInsert(1);  // b
  EXPECT_EQ(pix.ChooseVictim(), 0U);
}

TEST(StaticValuePolicyTest, NameIsReported) {
  StaticValuePolicy policy({1.0}, "P");
  EXPECT_EQ(policy.Name(), "P");
}

TEST(StaticValuePolicyDeathTest, VictimOfEmptySetAborts) {
  StaticValuePolicy policy({1.0}, "P");
  EXPECT_DEATH(policy.ChooseVictim(), "no resident");
}

// ---------------------------------------------------------------- LRU

TEST(LruPolicyTest, EvictsLeastRecentlyUsed) {
  LruPolicy lru;
  lru.OnInsert(1);
  lru.OnInsert(2);
  lru.OnInsert(3);
  EXPECT_EQ(lru.ChooseVictim(), 1U);
  lru.OnAccess(1);  // 2 becomes LRU.
  EXPECT_EQ(lru.ChooseVictim(), 2U);
}

TEST(LruPolicyTest, EvictRemovesFromOrder) {
  LruPolicy lru;
  lru.OnInsert(1);
  lru.OnInsert(2);
  lru.OnEvict(1);
  EXPECT_EQ(lru.ChooseVictim(), 2U);
}

TEST(LruPolicyTest, InsertIsMostRecent) {
  LruPolicy lru;
  lru.OnInsert(1);
  lru.OnInsert(2);
  lru.OnAccess(1);
  lru.OnInsert(3);  // Order (MRU->LRU): 3, 1, 2.
  EXPECT_EQ(lru.ChooseVictim(), 2U);
  lru.OnEvict(2);
  EXPECT_EQ(lru.ChooseVictim(), 1U);
}

// ---------------------------------------------------------------- LFU

TEST(LfuPolicyTest, EvictsLeastFrequentlyUsed) {
  LfuPolicy lfu;
  lfu.OnInsert(1);
  lfu.OnInsert(2);
  lfu.OnAccess(1);
  lfu.OnAccess(1);
  EXPECT_EQ(lfu.ChooseVictim(), 2U);
}

TEST(LfuPolicyTest, TieBreaksByOldestActivity) {
  LfuPolicy lfu;
  lfu.OnInsert(1);
  lfu.OnInsert(2);  // Same count; 1 was inserted first.
  EXPECT_EQ(lfu.ChooseVictim(), 1U);
}

TEST(LfuPolicyTest, CountsPersistAcrossResidencies) {
  LfuPolicy lfu;
  lfu.OnInsert(1);
  lfu.OnAccess(1);
  lfu.OnAccess(1);  // Count 3.
  lfu.OnEvict(1);
  lfu.OnInsert(2);  // Count 1.
  lfu.OnInsert(1);  // Re-entry: count 4.
  EXPECT_EQ(lfu.ChooseVictim(), 2U);
}

// ---------------------------------------------------------------- Factory

TEST(MakePolicyTest, BuildsEachKind) {
  const std::vector<double> probs = {0.5, 0.3, 0.2};
  const broadcast::BroadcastProgram program({0, 1, 0, 2}, 3);
  EXPECT_EQ(MakePolicy(PolicyKind::kPix, probs, &program)->Name(), "PIX");
  EXPECT_EQ(MakePolicy(PolicyKind::kP, probs, nullptr)->Name(), "P");
  EXPECT_EQ(MakePolicy(PolicyKind::kLru, probs, nullptr)->Name(), "LRU");
  EXPECT_EQ(MakePolicy(PolicyKind::kLfu, probs, nullptr)->Name(), "LFU");
}

TEST(MakePolicyTest, PixDividesByFrequency) {
  // Page 0: p=0.5, x=2 -> 0.25; page 1: p=0.3, x=1 -> 0.3;
  // page 2: p=0.2, x=1 -> 0.2. Victim order: 2, then 0, then 1.
  const std::vector<double> probs = {0.5, 0.3, 0.2};
  const broadcast::BroadcastProgram program({0, 1, 0, 2}, 3);
  auto policy = MakePolicy(PolicyKind::kPix, probs, &program);
  policy->OnInsert(0);
  policy->OnInsert(1);
  policy->OnInsert(2);
  EXPECT_EQ(policy->ChooseVictim(), 2U);
  policy->OnEvict(2);
  EXPECT_EQ(policy->ChooseVictim(), 0U);
}

TEST(MakePolicyDeathTest, PixRequiresProgram) {
  const std::vector<double> probs = {1.0};
  EXPECT_DEATH(MakePolicy(PolicyKind::kPix, probs, nullptr), "program");
}

TEST(PolicyKindNameTest, AllNames) {
  EXPECT_STREQ(PolicyKindName(PolicyKind::kPix), "PIX");
  EXPECT_STREQ(PolicyKindName(PolicyKind::kP), "P");
  EXPECT_STREQ(PolicyKindName(PolicyKind::kLru), "LRU");
  EXPECT_STREQ(PolicyKindName(PolicyKind::kLfu), "LFU");
}

}  // namespace
}  // namespace bdisk::cache
