#include "sim/batch_means.h"

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace bdisk::sim {
namespace {

TEST(BatchMeansTest, ConstantSeriesStabilizesQuickly) {
  BatchMeans bm(10, 0.01, 3);
  bool stable = false;
  int added = 0;
  while (!stable && added < 1000) {
    stable = bm.Add(5.0);
    ++added;
  }
  EXPECT_TRUE(stable);
  EXPECT_EQ(added, 30);  // Exactly 3 batches of 10.
  EXPECT_EQ(bm.overall().Mean(), 5.0);
}

TEST(BatchMeansTest, TrendingSeriesDoesNotStabilize) {
  BatchMeans bm(10, 0.01, 3);
  bool stable = false;
  for (int i = 0; i < 1000; ++i) {
    stable = bm.Add(static_cast<double>(i));  // Strong upward trend.
  }
  EXPECT_FALSE(stable);
}

TEST(BatchMeansTest, NoisyStationarySeriesStabilizes) {
  Rng rng(42);
  BatchMeans bm(500, 0.05, 3);
  bool stable = false;
  int added = 0;
  while (!stable && added < 100000) {
    stable = bm.Add(100.0 + (rng.NextDouble() - 0.5) * 20.0);
    ++added;
  }
  EXPECT_TRUE(stable);
  EXPECT_NEAR(bm.overall().Mean(), 100.0, 1.0);
}

TEST(BatchMeansTest, StabilityLatchesOnceReached) {
  BatchMeans bm(5, 0.01, 1);
  for (int i = 0; i < 5; ++i) bm.Add(1.0);
  EXPECT_TRUE(bm.IsStable());
  // A wild value afterwards does not un-latch IsStable.
  bm.Add(1000.0);
  EXPECT_TRUE(bm.IsStable());
}

TEST(BatchMeansTest, BatchMeansRecorded) {
  BatchMeans bm(2, 0.5, 2);
  bm.Add(1.0);
  bm.Add(3.0);  // Batch mean 2.
  bm.Add(5.0);
  bm.Add(7.0);  // Batch mean 6.
  ASSERT_EQ(bm.batch_means().size(), 2U);
  EXPECT_EQ(bm.batch_means()[0], 2.0);
  EXPECT_EQ(bm.batch_means()[1], 6.0);
}

TEST(BatchMeansTest, DeviationResetsTheWindow) {
  BatchMeans bm(1, 0.01, 3);
  bm.Add(10.0);  // ok (mean == batch)
  bm.Add(10.0);  // ok
  bm.Add(50.0);  // far off the cumulative mean: resets window
  EXPECT_FALSE(bm.IsStable());
}

TEST(BatchMeansTest, NearZeroMeansUseAbsoluteFloor) {
  // Means below 1 would make a purely relative test hypersensitive; the
  // implementation clamps the scale at 1.0.
  BatchMeans bm(10, 0.05, 3);
  bool stable = false;
  int added = 0;
  Rng rng(7);
  while (!stable && added < 10000) {
    stable = bm.Add(rng.NextDouble() * 0.02);  // Mean ~0.01.
    ++added;
  }
  EXPECT_TRUE(stable);
}

TEST(BatchMeansDeathTest, RejectsBadParameters) {
  EXPECT_DEATH(BatchMeans(0, 0.1, 1), "batch size");
  EXPECT_DEATH(BatchMeans(10, 0.0, 1), "tolerance");
  EXPECT_DEATH(BatchMeans(10, 0.1, 0), "window");
}

}  // namespace
}  // namespace bdisk::sim
