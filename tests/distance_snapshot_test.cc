// DistanceSnapshot and CycleSpanTable must agree exactly with
// BroadcastProgram::DistanceToNext — they are the barrier-frozen fast
// forms the batched arrival spine substitutes for the live occurrence
// search, so any disagreement is a trajectory divergence.

#include "broadcast/distance_snapshot.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "broadcast/broadcast_program.h"
#include "broadcast/span_table.h"
#include "sim/rng.h"

namespace bdisk::broadcast {
namespace {

// A small multi-frequency cycle with padding and an unscheduled page:
// pages 0..3 scheduled with different densities, page 4 never broadcast.
BroadcastProgram SmallProgram() {
  return BroadcastProgram({0, 1, 0, 2, 0, 1, kNoPage, 3}, 5);
}

TEST(DistanceSnapshotTest, MatchesProgramExhaustively) {
  const BroadcastProgram program = SmallProgram();
  DistanceSnapshot snapshot(program);
  for (std::uint32_t pos = 0; pos < program.Length(); ++pos) {
    snapshot.Freeze(pos);
    EXPECT_EQ(snapshot.Position(), pos);
    for (PageId page = 0; page < program.DbSize(); ++page) {
      EXPECT_EQ(snapshot.Distance(page), program.DistanceToNext(pos, page))
          << "pos " << pos << " page " << page;
    }
  }
}

TEST(DistanceSnapshotTest, MemoSurvivesRepeatedQueriesAndRefreeze) {
  const BroadcastProgram program = SmallProgram();
  DistanceSnapshot snapshot(program);
  snapshot.Freeze(3);
  const std::uint32_t first = snapshot.Distance(0);
  EXPECT_EQ(snapshot.Distance(0), first);  // Memo hit, same answer.
  snapshot.Freeze(3);                      // No-op: position unchanged.
  EXPECT_EQ(snapshot.Distance(0), first);
  snapshot.Freeze(4);  // New position invalidates the memo.
  EXPECT_EQ(snapshot.Distance(0), program.DistanceToNext(4, 0));
}

TEST(DistanceSnapshotTest, UnscheduledPageIsNeverBroadcast) {
  const BroadcastProgram program = SmallProgram();
  DistanceSnapshot snapshot(program);
  snapshot.Freeze(2);
  EXPECT_EQ(snapshot.Distance(4), BroadcastProgram::kNeverBroadcast);
}

TEST(DistanceSnapshotTest, EmptyProgramResolvesEverythingNever) {
  const BroadcastProgram program({}, 8);
  DistanceSnapshot snapshot(program);
  snapshot.Freeze(0);
  for (PageId page = 0; page < 8; ++page) {
    EXPECT_EQ(snapshot.Distance(page), BroadcastProgram::kNeverBroadcast);
  }
}

TEST(DistanceSnapshotTest, RandomizedProgramsMatchProgram) {
  sim::Rng rng(20260809);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint32_t db = 1 + static_cast<std::uint32_t>(
                                     rng.NextBounded(40));
    const std::uint32_t len = 1 + static_cast<std::uint32_t>(
                                      rng.NextBounded(200));
    std::vector<PageId> schedule(len);
    for (std::uint32_t s = 0; s < len; ++s) {
      // ~10% padding slots; the rest uniform over the database, so some
      // pages end up dense, some sparse, some absent.
      schedule[s] = rng.NextDouble() < 0.1
                        ? kNoPage
                        : static_cast<PageId>(rng.NextBounded(db));
    }
    const BroadcastProgram program(std::move(schedule), db);
    DistanceSnapshot snapshot(program);
    for (std::uint32_t pos = 0; pos < program.Length(); ++pos) {
      snapshot.Freeze(pos);
      for (PageId page = 0; page < db; ++page) {
        ASSERT_EQ(snapshot.Distance(page), program.DistanceToNext(pos, page))
            << "trial " << trial << " pos " << pos << " page " << page;
      }
    }
  }
}

TEST(CycleSpanTableTest, BitsMatchThresholdDecisionExhaustively) {
  const BroadcastProgram program = SmallProgram();
  for (std::uint32_t threshold : {0U, 1U, 2U, 5U, 7U, 8U, 100U}) {
    const auto table = CycleSpanTable::BuildIfFeasible(program, threshold);
    ASSERT_NE(table, nullptr) << "threshold " << threshold;
    EXPECT_EQ(table->ThresholdSlots(), threshold);
    for (std::uint32_t pos = 0; pos < program.Length(); ++pos) {
      for (PageId page = 0; page < program.DbSize(); ++page) {
        EXPECT_EQ(table->ShouldPull(page, pos),
                  program.DistanceToNext(pos, page) > threshold)
            << "threshold " << threshold << " pos " << pos << " page "
            << page;
      }
    }
  }
}

TEST(CycleSpanTableTest, RandomizedProgramsMatchThresholdDecision) {
  sim::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const std::uint32_t db =
        1 + static_cast<std::uint32_t>(rng.NextBounded(30));
    const std::uint32_t len =
        1 + static_cast<std::uint32_t>(rng.NextBounded(150));
    std::vector<PageId> schedule(len);
    for (std::uint32_t s = 0; s < len; ++s) {
      schedule[s] = rng.NextDouble() < 0.1
                        ? kNoPage
                        : static_cast<PageId>(rng.NextBounded(db));
    }
    const BroadcastProgram program(std::move(schedule), db);
    const std::uint32_t threshold =
        static_cast<std::uint32_t>(rng.NextBounded(len + 2));
    const auto table = CycleSpanTable::BuildIfFeasible(program, threshold);
    ASSERT_NE(table, nullptr);
    for (std::uint32_t pos = 0; pos < len; ++pos) {
      for (PageId page = 0; page < db; ++page) {
        ASSERT_EQ(table->ShouldPull(page, pos),
                  program.DistanceToNext(pos, page) > threshold)
            << "trial " << trial << " threshold " << threshold << " pos "
            << pos << " page " << page;
      }
    }
  }
}

TEST(CycleSpanTableTest, UnscheduledPagesAlwaysPull) {
  const BroadcastProgram program = SmallProgram();
  const auto table = CycleSpanTable::BuildIfFeasible(program, 3);
  ASSERT_NE(table, nullptr);
  for (std::uint32_t pos = 0; pos < program.Length(); ++pos) {
    EXPECT_TRUE(table->ShouldPull(4, pos)) << "pos " << pos;
  }
}

TEST(CycleSpanTableTest, EmptyProgramIsInfeasible) {
  const BroadcastProgram program({}, 8);
  EXPECT_EQ(CycleSpanTable::BuildIfFeasible(program, 3), nullptr);
}

TEST(CycleSpanTableTest, OversizedCycleIsInfeasible) {
  const BroadcastProgram program = SmallProgram();
  // 5 pages x 1 word per row = 40 bytes; a 16-byte cap must refuse.
  EXPECT_EQ(CycleSpanTable::BuildIfFeasible(program, 3, 16), nullptr);
  EXPECT_NE(CycleSpanTable::BuildIfFeasible(program, 3, 4096), nullptr);
}

TEST(CycleSpanTableTest, ThresholdCoveringWholeCyclePullsOnlyNever) {
  // threshold >= Length(): every scheduled page's distance is always
  // <= Length()-1 <= threshold, so only unscheduled pages pull.
  const BroadcastProgram program = SmallProgram();
  const auto table =
      CycleSpanTable::BuildIfFeasible(program, program.Length());
  ASSERT_NE(table, nullptr);
  for (std::uint32_t pos = 0; pos < program.Length(); ++pos) {
    for (PageId page = 0; page < 4; ++page) {
      EXPECT_FALSE(table->ShouldPull(page, pos))
          << "pos " << pos << " page " << page;
    }
    EXPECT_TRUE(table->ShouldPull(4, pos));
  }
}

}  // namespace
}  // namespace bdisk::broadcast
