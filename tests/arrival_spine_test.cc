// FillArrivalBatch is the bulk-draw half of the batched arrival spine: it
// must consume the VC's RNG stream in exactly the scalar order — page,
// steady coin, think — per arrival, stop at the horizon, and leave the
// stream positioned where the scalar loop would. Any deviation shows up
// as a trajectory divergence, so these tests pin it draw-for-draw.

#include "client/arrival_spine.h"

#include <vector>

#include <gtest/gtest.h>

#include "sim/rng.h"
#include "workload/access_generator.h"
#include "workload/access_pattern.h"
#include "workload/think_time.h"

namespace bdisk::client {
namespace {

struct ScalarArrival {
  sim::SimTime at;
  PageId page;
  bool steady;
};

// The reference: the VC's scalar drain loop, draw order page -> coin ->
// think per arrival.
std::vector<ScalarArrival> ScalarDrain(const workload::AccessGenerator& gen,
                                       const workload::ThinkTime& think,
                                       double steady_perc, sim::Rng& rng,
                                       sim::SimTime* next_arrival,
                                       sim::SimTime horizon) {
  std::vector<ScalarArrival> out;
  while (*next_arrival <= horizon) {
    ScalarArrival arrival;
    arrival.at = *next_arrival;
    arrival.page = gen.Next(rng);
    arrival.steady = rng.NextBernoulli(steady_perc);
    *next_arrival += think.Next(rng);
    out.push_back(arrival);
  }
  return out;
}

TEST(FillArrivalBatchTest, MatchesScalarDrawOrderAcrossSeeds) {
  const workload::AccessPattern pattern =
      workload::AccessPattern::Zipf(50, 0.95);
  const workload::AccessGenerator generator(pattern);
  const workload::ThinkTime think = workload::ThinkTime::Exponential(0.1);
  // 0.95 draws the coin; 0.0 and 1.0 are the no-draw Bernoulli edges.
  for (const double steady_perc : {0.95, 0.0, 1.0}) {
    for (const std::uint64_t seed : {1ULL, 99ULL, 20260809ULL}) {
      sim::Rng scalar_rng(seed);
      sim::SimTime scalar_next = 0.5;
      const std::vector<ScalarArrival> expected = ScalarDrain(
          generator, think, steady_perc, scalar_rng, &scalar_next, 40.0);
      ASSERT_GT(expected.size(), 0U);
      ASSERT_LT(expected.size(), 1024U);  // Fits one scratch fill.

      sim::Rng bulk_rng(seed);
      sim::SimTime bulk_next = 0.5;
      ArrivalScratch scratch(1024);
      const std::size_t n = FillArrivalBatch(generator, think, steady_perc,
                                             bulk_rng, &bulk_next, 40.0,
                                             &scratch);
      ASSERT_EQ(n, expected.size()) << "perc " << steady_perc;
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(scratch.at[i], expected[i].at) << i;
        EXPECT_EQ(scratch.page[i], expected[i].page) << i;
        EXPECT_EQ(scratch.steady[i] != 0, expected[i].steady) << i;
      }
      // The stream and the pre-drawn next arrival line up exactly.
      EXPECT_EQ(bulk_next, scalar_next);
      EXPECT_EQ(bulk_rng.Next(), scalar_rng.Next());
    }
  }
}

TEST(FillArrivalBatchTest, ChunkingIsInvariant) {
  // Draining through a small scratch in many fills equals one big fill:
  // the chunk boundary is invisible to the stream.
  const workload::AccessPattern pattern =
      workload::AccessPattern::Zipf(20, 0.8);
  const workload::AccessGenerator generator(pattern);
  const workload::ThinkTime think = workload::ThinkTime::Exponential(0.05);

  sim::Rng whole_rng(7);
  sim::SimTime whole_next = 0.0;
  ArrivalScratch whole(4096);
  const std::size_t total = FillArrivalBatch(generator, think, 0.9,
                                             whole_rng, &whole_next, 30.0,
                                             &whole);
  ASSERT_GT(total, 8U);
  ASSERT_LT(total, 4096U);

  sim::Rng chunk_rng(7);
  sim::SimTime chunk_next = 0.0;
  ArrivalScratch chunk(8);  // Forces many partial fills.
  std::size_t seen = 0;
  while (chunk_next <= 30.0) {
    const std::size_t n = FillArrivalBatch(generator, think, 0.9, chunk_rng,
                                           &chunk_next, 30.0, &chunk);
    ASSERT_GT(n, 0U);
    for (std::size_t i = 0; i < n; ++i, ++seen) {
      ASSERT_LT(seen, total);
      EXPECT_EQ(chunk.at[i], whole.at[seen]);
      EXPECT_EQ(chunk.page[i], whole.page[seen]);
      EXPECT_EQ(chunk.steady[i], whole.steady[seen]);
    }
  }
  EXPECT_EQ(seen, total);
  EXPECT_EQ(chunk_next, whole_next);
  EXPECT_EQ(chunk_rng.Next(), whole_rng.Next());
}

TEST(FillArrivalBatchTest, CapacityBoundsOneFill) {
  const workload::AccessPattern pattern =
      workload::AccessPattern::Zipf(10, 0.5);
  const workload::AccessGenerator generator(pattern);
  const workload::ThinkTime think = workload::ThinkTime::Exponential(0.01);
  sim::Rng rng(3);
  sim::SimTime next = 0.0;
  ArrivalScratch scratch(16);
  EXPECT_EQ(scratch.Capacity(), 16U);
  const std::size_t n =
      FillArrivalBatch(generator, think, 0.5, rng, &next, 1e9, &scratch);
  EXPECT_EQ(n, 16U);  // Horizon far away: the fill stops at capacity.
}

TEST(FillArrivalBatchTest, NothingBeforeHorizonFillsNothing) {
  const workload::AccessPattern pattern =
      workload::AccessPattern::Zipf(10, 0.5);
  const workload::AccessGenerator generator(pattern);
  const workload::ThinkTime think = workload::ThinkTime::Exponential(1.0);
  sim::Rng rng(4);
  const sim::Rng before = rng;
  sim::SimTime next = 5.0;
  ArrivalScratch scratch(16);
  EXPECT_EQ(
      FillArrivalBatch(generator, think, 0.5, rng, &next, 4.0, &scratch), 0U);
  EXPECT_EQ(next, 5.0);  // Untouched.
  sim::Rng untouched = before;
  EXPECT_EQ(rng.Next(), untouched.Next());  // No draws consumed.
}

}  // namespace
}  // namespace bdisk::client
