#include "sim/trace.h"

#include <gtest/gtest.h>

#include "server/broadcast_server.h"
#include "sim/simulator.h"

namespace bdisk::sim {
namespace {

TEST(TraceRecorderTest, RecordsInOrder) {
  TraceRecorder trace(8);
  trace.Record(1.0, TraceEventKind::kSlotPush, 5);
  trace.Record(2.0, TraceEventKind::kSlotPull, 7);
  const auto events = trace.Events();
  ASSERT_EQ(events.size(), 2U);
  EXPECT_EQ(events[0].time, 1.0);
  EXPECT_EQ(events[0].page, 5U);
  EXPECT_EQ(events[1].kind, TraceEventKind::kSlotPull);
}

TEST(TraceRecorderTest, RingOverwritesOldest) {
  TraceRecorder trace(3);
  for (std::uint32_t i = 0; i < 5; ++i) {
    trace.Record(static_cast<double>(i), TraceEventKind::kSlotPush, i);
  }
  const auto events = trace.Events();
  ASSERT_EQ(events.size(), 3U);
  EXPECT_EQ(events[0].page, 2U);  // Oldest retained.
  EXPECT_EQ(events[2].page, 4U);
  EXPECT_EQ(trace.TotalEvents(), 5U);
  EXPECT_EQ(trace.DroppedEvents(), 2U);
}

TEST(TraceRecorderTest, DroppedPlusRetainedEqualsTotalUnderOverflow) {
  // The documented ring invariant, checked at every step as the recorder
  // crosses from "all retained" into overwrite territory.
  TraceRecorder trace(4);
  for (std::uint32_t i = 0; i < 20; ++i) {
    trace.Record(static_cast<double>(i), TraceEventKind::kSlotPush, i);
    EXPECT_EQ(trace.DroppedEvents() + trace.Events().size(),
              trace.TotalEvents());
  }
  EXPECT_EQ(trace.TotalEvents(), 20U);
  EXPECT_EQ(trace.DroppedEvents(), 16U);
  // Retained window is the most recent capacity-many events.
  EXPECT_EQ(trace.Events().front().page, 16U);
  EXPECT_EQ(trace.Events().back().page, 19U);
}

TEST(TraceRecorderTest, CountsSurviveOverwrite) {
  TraceRecorder trace(2);
  for (int i = 0; i < 10; ++i) {
    trace.Record(i, TraceEventKind::kRequestDropped, 0);
  }
  EXPECT_EQ(trace.Count(TraceEventKind::kRequestDropped), 10U);
  EXPECT_EQ(trace.Count(TraceEventKind::kSlotPush), 0U);
}

TEST(TraceRecorderTest, CsvAndClear) {
  TraceRecorder trace(8);
  trace.Record(1.5, TraceEventKind::kRequestAccepted, 9);
  const std::string csv = trace.ToCsv();
  EXPECT_NE(csv.find("time,kind,page"), std::string::npos);
  EXPECT_NE(csv.find("1.500,request_accepted,9"), std::string::npos);
  trace.Clear();
  EXPECT_TRUE(trace.Events().empty());
  EXPECT_EQ(trace.TotalEvents(), 0U);
}

TEST(TraceRecorderTest, KindNames) {
  EXPECT_STREQ(TraceEventKindName(TraceEventKind::kSlotIdle), "slot_idle");
  EXPECT_STREQ(TraceEventKindName(TraceEventKind::kRequestCoalesced),
               "request_coalesced");
}

TEST(TraceRecorderDeathTest, RejectsZeroCapacity) {
  EXPECT_DEATH(TraceRecorder(0), "capacity");
}

// ---------------------------------------------------- Server integration

TEST(ServerTraceTest, SlotAndRequestEventsRecorded) {
  Simulator sim;
  server::BroadcastServer server(
      &sim, broadcast::BroadcastProgram({0, 1}, 4), 0.5, 1, Rng(1));
  TraceRecorder trace;
  server.SetTraceRecorder(&trace);

  server.SubmitRequest(3);  // Accepted.
  server.SubmitRequest(3);  // Coalesced.
  server.SubmitRequest(2);  // Dropped (capacity 1).
  sim.RunUntil(10.0);

  EXPECT_EQ(trace.Count(TraceEventKind::kRequestAccepted), 1U);
  EXPECT_EQ(trace.Count(TraceEventKind::kRequestCoalesced), 1U);
  EXPECT_EQ(trace.Count(TraceEventKind::kRequestDropped), 1U);
  // Slot decisions after attach: pushes plus exactly one pull (page 3).
  EXPECT_EQ(trace.Count(TraceEventKind::kSlotPull), 1U);
  EXPECT_GT(trace.Count(TraceEventKind::kSlotPush), 5U);

  // The trace agrees with the server's own counters (minus the slot
  // chosen at construction, before the recorder was attached).
  EXPECT_EQ(trace.Count(TraceEventKind::kSlotPush) +
                trace.Count(TraceEventKind::kSlotPull) +
                trace.Count(TraceEventKind::kSlotIdle) + 1,
            server.TotalSlots());
}

}  // namespace
}  // namespace bdisk::sim
