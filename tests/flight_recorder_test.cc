#include "obs/flight_recorder.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/system.h"
#include "obs/json.h"
#include "obs/trace_sink.h"
#include "obs/windowed_collector.h"

namespace bdisk::obs {
namespace {

// ----------------------------------------------------------- trigger spec

TEST(FlightTriggerSpecTest, ParsesFullSpec) {
  FlightTriggers t;
  EXPECT_EQ(ParseFlightTriggerSpec("drop_rate>0.5, p99>2000,queue_depth>90",
                                   &t),
            "");
  EXPECT_DOUBLE_EQ(t.drop_rate, 0.5);
  EXPECT_DOUBLE_EQ(t.p99, 2000.0);
  EXPECT_DOUBLE_EQ(t.queue_depth, 90.0);
  EXPECT_TRUE(t.Armed());
}

TEST(FlightTriggerSpecTest, UnnamedTriggersStayDisarmed) {
  FlightTriggers t;
  EXPECT_EQ(ParseFlightTriggerSpec("p99>100", &t), "");
  EXPECT_EQ(t.drop_rate, FlightTriggers::kDisarmed);
  EXPECT_EQ(t.queue_depth, FlightTriggers::kDisarmed);
  EXPECT_DOUBLE_EQ(t.p99, 100.0);
}

TEST(FlightTriggerSpecTest, ErrorMessagesAreSpecific) {
  FlightTriggers t;
  EXPECT_EQ(ParseFlightTriggerSpec("", &t),
            "empty trigger spec (want e.g. \"drop_rate>0.5,p99>2000\")");
  EXPECT_EQ(ParseFlightTriggerSpec("p99=3", &t),
            "trigger \"p99=3\" is missing '>' (want name>threshold)");
  EXPECT_EQ(ParseFlightTriggerSpec("p99>abc", &t),
            "trigger \"p99\" has unparsable threshold \"abc\"");
  EXPECT_EQ(ParseFlightTriggerSpec("p99>-1", &t),
            "trigger \"p99\" threshold must be >= 0");
  EXPECT_EQ(ParseFlightTriggerSpec("bogus>1", &t),
            "unknown trigger \"bogus\" (know drop_rate, p99, queue_depth, "
            "shed_rate, loss_rate)");
  EXPECT_EQ(ParseFlightTriggerSpec("p99>1,p99>2", &t),
            "trigger \"p99\" given twice");
}

// -------------------------------------------------------------- recorder

WindowStats QuietWindow(double start) {
  WindowStats w;
  w.start = start;
  w.end = start + 100.0;
  w.slots_push = 90;
  w.slots_pull = 10;
  w.submits = 10;
  w.accepted = 10;
  return w;
}

TEST(FlightRecorderTest, FiresOnceOnThresholdCrossingAndRearms) {
  FlightTriggers triggers;
  triggers.drop_rate = 0.25;
  FlightRecorder recorder(triggers, "unused-prefix-");

  recorder.OnWindow(QuietWindow(0.0));
  EXPECT_FALSE(recorder.Fired());

  WindowStats bad = QuietWindow(100.0);
  bad.submits = 10;
  bad.accepted = 5;
  bad.dropped = 5;  // Drop rate 0.5 > 0.25.
  recorder.OnWindow(bad);
  EXPECT_TRUE(recorder.Fired());
  EXPECT_EQ(recorder.FireCount(), 1U);

  // One-shot: later (worse) windows do not fire again...
  bad.start = 200.0;
  bad.end = 300.0;
  bad.dropped = 9;
  bad.accepted = 1;
  recorder.OnWindow(bad);
  EXPECT_EQ(recorder.FireCount(), 1U);
  EXPECT_EQ(recorder.WindowsEvaluated(), 3U);

  // ...until explicitly re-armed.
  recorder.Rearm();
  recorder.OnWindow(bad);
  EXPECT_EQ(recorder.FireCount(), 2U);
}

TEST(FlightRecorderTest, MultiShotRearmsItselfUntilDumpBudgetSpent) {
  FlightTriggers triggers;
  triggers.drop_rate = 0.25;
  FlightRecorder recorder(triggers, "flight_multi_test_", /*max_dumps=*/3);
  EXPECT_EQ(recorder.MaxDumps(), 3U);

  WindowStats bad = QuietWindow(0.0);
  bad.submits = 10;
  bad.accepted = 5;
  bad.dropped = 5;  // Drop rate 0.5 > 0.25 on every window below.

  std::vector<std::string> dump_paths;
  for (int shot = 1; shot <= 3; ++shot) {
    recorder.OnWindow(bad);
    EXPECT_EQ(recorder.FireCount(), static_cast<std::uint64_t>(shot));
    // Self re-arms between dumps; disarmed only once the budget is spent.
    EXPECT_EQ(recorder.Fired(), shot == 3);
    dump_paths.push_back(recorder.DumpPath());
    bad.start += 100.0;
    bad.end += 100.0;
  }
  // Budget spent: a fourth bad window does not fire.
  recorder.OnWindow(bad);
  EXPECT_EQ(recorder.FireCount(), 3U);

  // Each shot wrote its own file (distinct window-end timestamps).
  EXPECT_NE(dump_paths[0], dump_paths[1]);
  EXPECT_NE(dump_paths[1], dump_paths[2]);
  for (const std::string& path : dump_paths) {
    std::ifstream file(path);
    EXPECT_TRUE(file.good()) << path;
    std::remove(path.c_str());
  }

  // Rearm() still grants one more fire after the budget is spent.
  recorder.Rearm();
  bad.start += 100.0;
  bad.end += 100.0;
  recorder.OnWindow(bad);
  EXPECT_EQ(recorder.FireCount(), 4U);
  EXPECT_TRUE(recorder.Fired());
  std::remove(recorder.DumpPath().c_str());
}

TEST(FlightRecorderTest, DumpCarriesWindowTriggerMetricsAndTrace) {
  FlightTriggers triggers;
  triggers.queue_depth = 3.0;
  FlightRecorder recorder(triggers, "unused-prefix-");

  TraceSink sink;
  sink.Record(40.0, SpanEvent::kRequest, kMeasuredClientId, 7);   // Before.
  sink.Record(120.0, SpanEvent::kSlotPull, kNoClient, 7);         // Inside.
  sink.Record(121.0, SpanEvent::kDelivery, kMeasuredClientId, 7, 2.0);
  recorder.SetTraceSink(&sink);
  recorder.SetSnapshot([] {
    return std::string("{\"schema\":\"bdisk-metrics-v1\",\"counters\":{}}");
  });

  WindowStats w = QuietWindow(100.0);
  w.queue_depth_max = 8;
  const std::string dump = recorder.BuildDump(w, "queue_depth", 3.0, 8.0);

  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(dump, &root, &error)) << error;
  EXPECT_EQ(root.Find("schema")->string, "bdisk-flight-v1");
  EXPECT_EQ(root.Find("trigger")->string, "queue_depth");
  EXPECT_DOUBLE_EQ(root.Find("threshold")->number, 3.0);
  EXPECT_DOUBLE_EQ(root.Find("value")->number, 8.0);
  const JsonValue* window = root.Find("window");
  ASSERT_NE(window, nullptr);
  EXPECT_DOUBLE_EQ(window->Find("start")->number, 100.0);
  EXPECT_DOUBLE_EQ(window->Find("queue_depth_max")->number, 8.0);
  EXPECT_EQ(root.Find("metrics")->Find("schema")->string,
            "bdisk-metrics-v1");
  // Only the trailing window's trace records are dumped.
  const JsonValue* trace = root.Find("trace");
  ASSERT_NE(trace, nullptr);
  ASSERT_EQ(trace->array.size(), 2U);
  EXPECT_DOUBLE_EQ(trace->array[0].Find("t")->number, 120.0);
  EXPECT_EQ(trace->array[1].Find("ev")->string, "delivery");
}

TEST(FlightRecorderTest, DumpWithoutSourcesIsStillWellFormed) {
  FlightTriggers triggers;
  triggers.p99 = 1.0;
  FlightRecorder recorder(triggers, "unused-prefix-");
  const std::string dump = recorder.BuildDump(QuietWindow(0.0), "p99", 1.0,
                                              2.0);
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(dump, &root, &error)) << error;
  EXPECT_EQ(root.Find("metrics")->kind, JsonValue::Kind::kNull);
  EXPECT_TRUE(root.Find("trace")->array.empty());
}

// ------------------------------------------------------- full-system runs

core::SteadyStateProtocol QuickProtocol() {
  core::SteadyStateProtocol protocol;
  protocol.post_fill_accesses = 200;
  protocol.min_measured_accesses = 500;
  protocol.max_measured_accesses = 2000;
  protocol.batch_size = 250;
  protocol.tolerance = 0.1;
  return protocol;
}

TEST(FlightRecorderIntegrationTest, SaturatedRunFiresAndWritesDump) {
  core::SystemConfig config;
  config.server_db_size = 100;
  config.disks = broadcast::DiskConfig{{10, 40, 50}, {3, 2, 1}};
  config.cache_size = 10;
  config.server_queue_size = 2;  // Tiny queue under heavy load: must trip.
  config.mc_think_time = 5.0;
  config.think_time_ratio = 2.0;
  config.seed = 7;
  core::System system(config);

  MetricsRegistry registry;
  TraceSink sink;
  WindowedCollector collector(/*window=*/50.0);
  FlightTriggers triggers;
  triggers.queue_depth = 1.0;
  FlightRecorder recorder(triggers, "flight_recorder_test_");
  system.AttachMetrics(&registry);
  system.AttachTrace(&sink);
  system.AttachWindowedCollector(&collector);
  system.AttachFlightRecorder(&recorder);
  system.RunSteadyState(QuickProtocol());

  ASSERT_TRUE(recorder.Fired());
  EXPECT_EQ(recorder.LastError(), "");
  ASSERT_FALSE(recorder.DumpPath().empty());

  std::ifstream file(recorder.DumpPath());
  ASSERT_TRUE(file.good());
  std::stringstream buffer;
  buffer << file.rdbuf();
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(buffer.str(), &root, &error)) << error;
  EXPECT_EQ(root.Find("schema")->string, "bdisk-flight-v1");
  EXPECT_EQ(root.Find("trigger")->string, "queue_depth");
  // The dump embeds a live registry snapshot and a non-empty trace tail.
  EXPECT_EQ(root.Find("metrics")->Find("schema")->string,
            "bdisk-metrics-v1");
  EXPECT_GT(root.Find("trace")->array.size(), 0U);
  std::remove(recorder.DumpPath().c_str());
}

}  // namespace
}  // namespace bdisk::obs
