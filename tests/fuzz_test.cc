// Randomized model-checking ("fuzz") tests: drive components with long
// random operation sequences and compare against trivially correct
// reference models.

#include <deque>
#include <functional>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "server/pull_queue.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace bdisk {
namespace {

// ---------------------------------------------------------- EventQueue

TEST(EventQueueFuzzTest, MatchesReferenceMultimapModel) {
  sim::EventQueue queue;
  // Reference: (time, schedule order) -> id. Ids are generation-tagged and
  // no longer monotonic, so FIFO order among ties is tracked with a
  // test-local counter, not the id itself.
  std::map<std::pair<double, std::uint64_t>, sim::EventId> model;
  std::uint64_t schedule_counter = 0;
  sim::Rng rng(2024);

  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t op = rng.NextBounded(10);
    if (op < 5) {  // Schedule.
      const double when = rng.NextDouble() * 1000.0;
      const sim::EventId id = queue.Schedule(when, [] {});
      EXPECT_TRUE(queue.IsPending(id));
      model[{when, schedule_counter++}] = id;
    } else if (op < 7 && !model.empty()) {  // Cancel a random known event.
      auto it = model.begin();
      std::advance(it, rng.NextBounded(model.size()));
      queue.Cancel(it->second);
      EXPECT_FALSE(queue.IsPending(it->second));
      model.erase(it);
    } else if (op == 7) {  // Cancel ids that are guaranteed not live.
      queue.Cancel(sim::kInvalidEventId);
      // Generation 0xFFFFFFFF is unreachable in 20k steps, and slot
      // indices past the slab high-water mark are out of range.
      queue.Cancel(0xFFFFFFFF00000000ULL | rng.NextBounded(1000));
      queue.Cancel((1ULL << 32) | (0xFFFFF000ULL + rng.NextBounded(1000)));
    } else if (!queue.Empty()) {  // Pop.
      sim::EventQueue::Fired fired;
      ASSERT_TRUE(queue.Pop(&fired));
      ASSERT_FALSE(model.empty());
      EXPECT_EQ(fired.when, model.begin()->first.first);
      EXPECT_FALSE(queue.IsPending(model.begin()->second));
      model.erase(model.begin());
    }
    ASSERT_EQ(queue.Size(), model.size()) << "step " << step;
    if (!model.empty()) {
      EXPECT_EQ(queue.NextTime(), model.begin()->first.first);
    }
  }
}

TEST(EventQueueFuzzTest, DrainsSortedAfterChurn) {
  sim::EventQueue queue;
  sim::Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    queue.Schedule(rng.NextDouble() * 100.0, [] {});
    if (i % 3 == 0 && !queue.Empty()) {
      sim::EventQueue::Fired fired;
      queue.Pop(&fired);
    }
  }
  double prev = -1.0;
  while (!queue.Empty()) {
    sim::EventQueue::Fired fired;
    ASSERT_TRUE(queue.Pop(&fired));
    ASSERT_GE(fired.when, prev);
    prev = fired.when;
  }
}

// ---------------------------------------------------------- PullQueue

TEST(PullQueueFuzzTest, MatchesReferenceDequeModel) {
  const std::uint32_t capacity = 7;
  const std::uint32_t db_size = 20;
  server::PullQueue queue(capacity, db_size);
  std::deque<server::PageId> model;
  std::set<server::PageId> queued;
  sim::Rng rng(31337);

  for (int step = 0; step < 50000; ++step) {
    if (rng.NextBernoulli(0.6)) {  // Submit.
      const auto page =
          static_cast<server::PageId>(rng.NextBounded(db_size));
      const server::SubmitResult result = queue.Submit(page);
      if (queued.count(page)) {
        EXPECT_EQ(result, server::SubmitResult::kCoalesced);
      } else if (model.size() >= capacity) {
        EXPECT_EQ(result, server::SubmitResult::kDroppedFull);
      } else {
        EXPECT_EQ(result, server::SubmitResult::kAccepted);
        model.push_back(page);
        queued.insert(page);
      }
    } else if (!model.empty()) {  // Serve.
      const server::PageId page = queue.PopFront();
      EXPECT_EQ(page, model.front());
      model.pop_front();
      queued.erase(page);
    }
    ASSERT_EQ(queue.Size(), model.size()) << "step " << step;
    ASSERT_EQ(queue.Empty(), model.empty());
  }
}

// ---------------------------------------------------------- Simulator

TEST(SimulatorFuzzTest, NestedSchedulingNeverGoesBackwards) {
  sim::Simulator sim;
  sim::Rng rng(99);
  double last_seen = 0.0;
  int fired = 0;
  std::function<void()> chaos = [&] {
    ASSERT_GE(sim.Now(), last_seen);
    last_seen = sim.Now();
    ++fired;
    if (fired < 5000) {
      // Randomly fan out 0-2 future events (via a one-pointer trampoline:
      // the chaos closure itself exceeds EventFn's inline budget).
      const std::uint64_t fan = rng.NextBounded(3);
      for (std::uint64_t i = 0; i < fan; ++i) {
        sim.ScheduleAfter(rng.NextDouble() * 10.0, [&chaos] { chaos(); });
      }
    }
  };
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(rng.NextDouble(), [&chaos] { chaos(); });
  }
  sim.RunUntil(1e9);
  EXPECT_GT(fired, 10);
}

}  // namespace
}  // namespace bdisk
