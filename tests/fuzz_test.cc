// Randomized model-checking ("fuzz") tests: drive components with long
// random operation sequences and compare against trivially correct
// reference models.

#include <deque>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "server/pull_queue.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace bdisk {
namespace {

// ---------------------------------------------------------- EventQueue

TEST(EventQueueFuzzTest, MatchesReferenceMultimapModel) {
  sim::EventQueue queue;
  // Reference: (time, id) -> alive?; ordering is (time, id).
  std::map<std::pair<double, sim::EventId>, bool> model;
  sim::Rng rng(2024);

  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t op = rng.NextBounded(10);
    if (op < 5) {  // Schedule.
      const double when = rng.NextDouble() * 1000.0;
      const sim::EventId id = queue.Schedule(when, [] {});
      model[{when, id}] = true;
    } else if (op < 7 && !model.empty()) {  // Cancel a random known event.
      auto it = model.begin();
      std::advance(it, rng.NextBounded(model.size()));
      queue.Cancel(it->first.second);
      model.erase(it);
    } else if (op == 7) {  // Cancel ids that are guaranteed not live.
      queue.Cancel(sim::kInvalidEventId);
      queue.Cancel((1ULL << 40) + rng.NextBounded(1000));  // Never issued.
    } else if (!queue.Empty()) {  // Pop.
      sim::SimTime when;
      sim::EventQueue::Callback cb;
      queue.Pop(&when, &cb);
      ASSERT_FALSE(model.empty());
      EXPECT_EQ(when, model.begin()->first.first);
      model.erase(model.begin());
    }
    ASSERT_EQ(queue.Size(), model.size()) << "step " << step;
    if (!model.empty()) {
      EXPECT_EQ(queue.NextTime(), model.begin()->first.first);
    }
  }
}

TEST(EventQueueFuzzTest, DrainsSortedAfterChurn) {
  sim::EventQueue queue;
  sim::Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    queue.Schedule(rng.NextDouble() * 100.0, [] {});
    if (i % 3 == 0 && !queue.Empty()) {
      sim::SimTime when;
      sim::EventQueue::Callback cb;
      queue.Pop(&when, &cb);
    }
  }
  double prev = -1.0;
  while (!queue.Empty()) {
    sim::SimTime when;
    sim::EventQueue::Callback cb;
    queue.Pop(&when, &cb);
    ASSERT_GE(when, prev);
    prev = when;
  }
}

// ---------------------------------------------------------- PullQueue

TEST(PullQueueFuzzTest, MatchesReferenceDequeModel) {
  const std::uint32_t capacity = 7;
  const std::uint32_t db_size = 20;
  server::PullQueue queue(capacity, db_size);
  std::deque<server::PageId> model;
  std::set<server::PageId> queued;
  sim::Rng rng(31337);

  for (int step = 0; step < 50000; ++step) {
    if (rng.NextBernoulli(0.6)) {  // Submit.
      const auto page =
          static_cast<server::PageId>(rng.NextBounded(db_size));
      const server::SubmitResult result = queue.Submit(page);
      if (queued.count(page)) {
        EXPECT_EQ(result, server::SubmitResult::kCoalesced);
      } else if (model.size() >= capacity) {
        EXPECT_EQ(result, server::SubmitResult::kDroppedFull);
      } else {
        EXPECT_EQ(result, server::SubmitResult::kAccepted);
        model.push_back(page);
        queued.insert(page);
      }
    } else if (!model.empty()) {  // Serve.
      const server::PageId page = queue.PopFront();
      EXPECT_EQ(page, model.front());
      model.pop_front();
      queued.erase(page);
    }
    ASSERT_EQ(queue.Size(), model.size()) << "step " << step;
    ASSERT_EQ(queue.Empty(), model.empty());
  }
}

// ---------------------------------------------------------- Simulator

TEST(SimulatorFuzzTest, NestedSchedulingNeverGoesBackwards) {
  sim::Simulator sim;
  sim::Rng rng(99);
  double last_seen = 0.0;
  int fired = 0;
  std::function<void()> chaos = [&] {
    ASSERT_GE(sim.Now(), last_seen);
    last_seen = sim.Now();
    ++fired;
    if (fired < 5000) {
      // Randomly fan out 0-2 future events.
      const std::uint64_t fan = rng.NextBounded(3);
      for (std::uint64_t i = 0; i < fan; ++i) {
        sim.ScheduleAfter(rng.NextDouble() * 10.0, chaos);
      }
    }
  };
  for (int i = 0; i < 10; ++i) sim.ScheduleAt(rng.NextDouble(), chaos);
  sim.RunUntil(1e9);
  EXPECT_GT(fired, 10);
}

}  // namespace
}  // namespace bdisk
