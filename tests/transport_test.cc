// The transport seam (transport/transport.h) and the live UNIX-datagram
// backend: SimTransport's submit-forwarding identity, the loopback
// HELLO/WELCOME/PULL/SLOT protocol, heartbeat eviction, crash/reconnect
// epoch accounting, dead-peer drop counting, the BYE -> STATS
// reconciliation handshake, the max_peers admission cap, and socket-path
// validation. Wall-clock deadlines are driven with explicit timestamps —
// no sleeping for eviction tests.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "broadcast/broadcast_program.h"
#include "server/broadcast_server.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "transport/datagram_client.h"
#include "transport/datagram_transport.h"
#include "transport/transport.h"

namespace bdisk::transport {
namespace {

using broadcast::BroadcastProgram;
using server::BroadcastServer;
using server::SubmitResult;

TEST(SimTransportTest, ForwardsExactlyLikeADirectSubmit) {
  // Two identical kernels: one submits through the seam, one calls
  // SubmitRequest directly. Every queue verdict — accept, coalesce,
  // capacity drop — must match, submission for submission.
  sim::Simulator sim_a;
  BroadcastServer server_a(&sim_a, BroadcastProgram({}, 8), 1.0, 2,
                           sim::Rng(1));
  SimTransport seam(&server_a);

  sim::Simulator sim_b;
  BroadcastServer server_b(&sim_b, BroadcastProgram({}, 8), 1.0, 2,
                           sim::Rng(1));

  const PageId pages[] = {3, 3, 4, 5, 6};  // Dup then overflow.
  for (const PageId page : pages) {
    EXPECT_EQ(seam.SubmitPull(page, 0), server_b.SubmitRequest(page, 0));
  }
  EXPECT_EQ(server_a.queue().SubmittedCount(), server_b.queue().SubmittedCount());
  EXPECT_EQ(server_a.queue().AcceptedCount(), server_b.queue().AcceptedCount());
  EXPECT_EQ(server_a.queue().CoalescedCount(), server_b.queue().CoalescedCount());
  EXPECT_EQ(server_a.queue().DroppedCount(), server_b.queue().DroppedCount());
  EXPECT_EQ(seam.Describe(), "sim");
}

/// Drives the server transport's Poll loop from a second thread while a
/// client call (Connect / Goodbye) blocks in its bounded waits. Joined
/// before any assertion touches the transport, so there is no concurrent
/// access from the test body.
class ServerPump {
 public:
  explicit ServerPump(DatagramServerTransport* transport, double wall = 0.0)
      : transport_(transport), wall_(wall), thread_([this] {
          while (!done_.load(std::memory_order_relaxed)) {
            transport_->WaitReadable(5);
            transport_->Poll(wall_);
          }
        }) {}
  ~ServerPump() { Stop(); }

  void Stop() {
    if (thread_.joinable()) {
      done_.store(true, std::memory_order_relaxed);
      thread_.join();
    }
  }

 private:
  DatagramServerTransport* transport_;
  double wall_;
  std::atomic<bool> done_{false};
  std::thread thread_;
};

class DatagramTransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/bdisk_transport_XXXXXX";
    char* made = ::mkdtemp(tmpl);
    ASSERT_NE(made, nullptr);
    dir_ = made;
    server_options_.socket_path = dir_ + "/serve.sock";
    server_options_.db_size = 8;
    server_options_.cycle_len = 16;
    server_options_.slot_us = 1000;
  }

  void TearDown() override {
    std::error_code ignored;
    std::filesystem::remove_all(dir_, ignored);
  }

  DatagramClientOptions ClientOptions(const std::string& id) const {
    DatagramClientOptions options;
    options.server_path = server_options_.socket_path;
    options.client_id = id;
    options.socket_dir = dir_;
    options.backoff = fault::BackoffPolicy{0.05, 2.0, 0.5, 0.0};
    return options;
  }

  /// Connect with the server pumped at wall time `wall`.
  bool PumpedConnect(DatagramServerTransport* transport,
                     DatagramClientChannel* client,
                     const DatagramClientOptions& options, sim::Rng* rng,
                     double wall = 0.0) {
    ServerPump pump(transport, wall);
    std::string error;
    const bool ok = client->Connect(options, rng, &error);
    pump.Stop();
    EXPECT_TRUE(ok || !error.empty());
    return ok;
  }

  std::string dir_;
  DatagramServerOptions server_options_;
};

TEST_F(DatagramTransportTest, BindRejectsOversizedSocketPath) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({}, 8), 1.0, 16,
                         sim::Rng(1));
  DatagramServerTransport transport;
  DatagramServerOptions options = server_options_;
  options.socket_path = dir_ + "/" + std::string(200, 'x') + ".sock";
  std::string error;
  EXPECT_FALSE(transport.Bind(options, &server, &error));
  EXPECT_NE(error.find("too long"), std::string::npos) << error;
}

TEST_F(DatagramTransportTest, ConnectRejectsBadClientIdUpFront) {
  DatagramClientChannel client;
  sim::Rng rng(3);
  std::string error;
  EXPECT_FALSE(client.Connect(ClientOptions("has space"), &rng, &error));
  EXPECT_NE(error.find("client id"), std::string::npos) << error;
}

TEST_F(DatagramTransportTest, LoopbackHandshakePullAndSlotFanOut) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({}, 8), 1.0, 16,
                         sim::Rng(1));
  DatagramServerTransport transport;
  std::string error;
  ASSERT_TRUE(transport.Bind(server_options_, &server, &error)) << error;
  EXPECT_EQ(transport.Describe(), "unix:" + server_options_.socket_path);

  DatagramClientChannel client;
  sim::Rng rng(3);
  ASSERT_TRUE(PumpedConnect(&transport, &client, ClientOptions("mc"), &rng));
  EXPECT_EQ(transport.PeerCount(), 1U);
  EXPECT_EQ(transport.counters().hellos, 1U);
  EXPECT_EQ(client.welcome().db_size, 8U);
  EXPECT_EQ(client.welcome().cycle_len, 16U);
  EXPECT_EQ(client.welcome().slot_us, 1000U);

  // A PULL enters the very queue the MUX serves, under the peer's own
  // trace identity (>= kFirstPeerTraceClient, clear of the MC/VC ids).
  ASSERT_TRUE(client.SendPull(5));
  EXPECT_GE(transport.Poll(1.0), 1);
  EXPECT_EQ(transport.counters().pulls_rx, 1U);
  EXPECT_EQ(server.queue().SubmittedCount(), 1U);
  EXPECT_EQ(server.queue().AcceptedCount(), 1U);

  // One delivered slot fans out as one datagram to the peer.
  transport.OnBroadcast(5, server::SlotKind::kPull, 7.0);
  EXPECT_EQ(transport.counters().slots_tx, 1U);
  std::vector<wire::Message> messages;
  EXPECT_GE(client.PollMessages(500, &messages), 1);
  ASSERT_EQ(messages.size(), 1U);
  EXPECT_EQ(messages[0].type, wire::MsgType::kSlot);
  EXPECT_EQ(messages[0].page, 5U);
  EXPECT_EQ(messages[0].kind, server::SlotKind::kPull);
  EXPECT_EQ(messages[0].sim_time, 7.0);
  EXPECT_EQ(client.counters().slots_rx_epoch, 1U);

  transport.Shutdown("test");
}

TEST_F(DatagramTransportTest, HeartbeatDeadlineEvictsSilentPeers) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({}, 8), 1.0, 16,
                         sim::Rng(1));
  DatagramServerTransport transport;
  server_options_.heartbeat_deadline = 5.0;
  std::string error;
  ASSERT_TRUE(transport.Bind(server_options_, &server, &error)) << error;

  DatagramClientChannel client;
  sim::Rng rng(3);
  // The pump stamps the HELLO at wall 0.0.
  ASSERT_TRUE(PumpedConnect(&transport, &client, ClientOptions("mc"), &rng));

  // Within the deadline: nothing to evict.
  EXPECT_EQ(transport.EvictDeadPeers(4.0), 0);
  // A PING refreshes the peer's deadline...
  client.SendPing();
  EXPECT_GE(transport.Poll(3.0), 1);
  EXPECT_EQ(transport.counters().pings_rx, 1U);
  EXPECT_EQ(transport.EvictDeadPeers(7.0), 0);
  // ...but silence past the deadline forgets it, with a farewell FIN.
  EXPECT_EQ(transport.EvictDeadPeers(8.5), 1);
  EXPECT_EQ(transport.PeerCount(), 0U);
  EXPECT_EQ(transport.counters().evictions, 1U);
  std::vector<wire::Message> messages;
  client.PollMessages(500, &messages);
  ASSERT_FALSE(messages.empty());
  EXPECT_EQ(messages.back().type, wire::MsgType::kFin);
  EXPECT_EQ(messages.back().reason, "evicted");
  EXPECT_FALSE(client.Connected());  // FIN closes the channel.

  transport.Shutdown("test");
}

TEST_F(DatagramTransportTest, CrashReconnectKeepsCountersAndResetsEpoch) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({}, 8), 1.0, 16,
                         sim::Rng(1));
  DatagramServerTransport transport;
  std::string error;
  ASSERT_TRUE(transport.Bind(server_options_, &server, &error)) << error;

  DatagramClientChannel client;
  sim::Rng rng(3);
  ASSERT_TRUE(PumpedConnect(&transport, &client, ClientOptions("mc"), &rng));
  const std::string first_epoch_path = client.epoch_path();

  transport.OnBroadcast(1, server::SlotKind::kPush, 1.0);
  EXPECT_EQ(transport.FindPeerStats("mc")->slots_tx_epoch, 1U);

  // Crash: the epoch socket dies with the process. Slot sends now fail
  // fast and are counted as dead-peer drops — but the peer is NOT
  // evicted, so its identity and cumulative counters survive the restart.
  client.Crash();
  transport.OnBroadcast(2, server::SlotKind::kPush, 2.0);
  transport.OnBroadcast(3, server::SlotKind::kPush, 3.0);
  EXPECT_EQ(transport.counters().drop_dead_peer, 2U);
  EXPECT_EQ(transport.PeerCount(), 1U);

  // Reconnect: a fresh epoch path, a duplicate HELLO, and both sides
  // zero their epoch slot tallies (the dead epoch's count died with the
  // crashed client, so the server forgets it too).
  ASSERT_TRUE(PumpedConnect(&transport, &client, ClientOptions("mc"), &rng));
  EXPECT_NE(client.epoch_path(), first_epoch_path);
  EXPECT_EQ(client.counters().reconnects, 1U);
  EXPECT_EQ(transport.counters().hellos, 2U);
  EXPECT_EQ(transport.counters().reconnects, 1U);
  EXPECT_EQ(transport.PeerCount(), 1U);
  EXPECT_EQ(transport.FindPeerStats("mc")->slots_tx_epoch, 0U);

  transport.OnBroadcast(4, server::SlotKind::kPush, 4.0);
  std::vector<wire::Message> messages;
  EXPECT_GE(client.PollMessages(500, &messages), 1);
  EXPECT_EQ(client.counters().slots_rx_epoch, 1U);
  EXPECT_EQ(transport.FindPeerStats("mc")->slots_tx_epoch, 1U);

  transport.Shutdown("test");
}

TEST_F(DatagramTransportTest, ByeReturnsStatsThatReconcileExactly) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({}, 8), 1.0, 16,
                         sim::Rng(1));
  DatagramServerTransport transport;
  std::string error;
  ASSERT_TRUE(transport.Bind(server_options_, &server, &error)) << error;

  DatagramClientChannel client;
  sim::Rng rng(3);
  ASSERT_TRUE(PumpedConnect(&transport, &client, ClientOptions("mc"), &rng));

  ASSERT_TRUE(client.SendPull(1));
  ASSERT_TRUE(client.SendPull(2));
  EXPECT_GE(transport.Poll(1.0), 2);
  transport.OnBroadcast(1, server::SlotKind::kPull, 1.0);
  transport.OnBroadcast(2, server::SlotKind::kPull, 2.0);
  transport.OnBroadcast(3, server::SlotKind::kPush, 3.0);
  EXPECT_GE(client.PollMessages(500, nullptr), 3);

  // The goodbye handshake: BYE after every prior PULL, STATS after every
  // prior slot (per-pair FIFO), so both tallies reconcile with ==.
  wire::PeerStats stats;
  ServerPump pump(&transport, 4.0);
  const bool got_stats = client.Goodbye(&stats, 2000);
  pump.Stop();
  ASSERT_TRUE(got_stats);
  EXPECT_EQ(stats.pulls_rx, client.counters().pulls_sent);
  EXPECT_EQ(stats.slots_tx_epoch, client.counters().slots_rx_epoch);
  EXPECT_EQ(stats.pulls_rx, 2U);
  EXPECT_EQ(stats.slots_tx_epoch, 3U);
  EXPECT_EQ(stats.drop_backpressure, 0U);
  EXPECT_EQ(stats.drop_dead_peer, 0U);
  EXPECT_EQ(transport.PeerCount(), 0U);
  EXPECT_EQ(transport.counters().byes_rx, 1U);

  transport.Shutdown("test");
}

TEST_F(DatagramTransportTest, MaxPeersCapRefusesExtraHellosWithFinFull) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({}, 8), 1.0, 16,
                         sim::Rng(1));
  DatagramServerTransport transport;
  server_options_.max_peers = 1;
  std::string error;
  ASSERT_TRUE(transport.Bind(server_options_, &server, &error)) << error;

  DatagramClientChannel first;
  sim::Rng rng(3);
  ASSERT_TRUE(PumpedConnect(&transport, &first, ClientOptions("a"), &rng));

  // The second peer is refused: FIN "full" aborts its handshake early
  // (Connect notices the closed channel, no retry storm).
  DatagramClientChannel second;
  EXPECT_FALSE(PumpedConnect(&transport, &second, ClientOptions("b"), &rng));
  EXPECT_EQ(transport.PeerCount(), 1U);
  EXPECT_GE(transport.counters().peers_rejected, 1U);
  EXPECT_GE(second.counters().fins_rx, 1U);

  // A known peer's duplicate HELLO is a reconnect, never a rejection —
  // the cap counts identities, not datagrams.
  DatagramClientChannel again;
  EXPECT_TRUE(PumpedConnect(&transport, &again, ClientOptions("a"), &rng));
  EXPECT_EQ(transport.PeerCount(), 1U);

  transport.Shutdown("test");
}

TEST_F(DatagramTransportTest, ShutdownSendsFinAndUnlinksTheSocket) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({}, 8), 1.0, 16,
                         sim::Rng(1));
  DatagramServerTransport transport;
  std::string error;
  ASSERT_TRUE(transport.Bind(server_options_, &server, &error)) << error;

  DatagramClientChannel client;
  sim::Rng rng(3);
  ASSERT_TRUE(PumpedConnect(&transport, &client, ClientOptions("mc"), &rng));

  transport.Shutdown("drain");
  transport.Shutdown("drain");  // Idempotent.
  EXPECT_EQ(transport.PeerCount(), 0U);
  EXPECT_FALSE(std::filesystem::exists(server_options_.socket_path));

  std::vector<wire::Message> messages;
  client.PollMessages(500, &messages);
  ASSERT_FALSE(messages.empty());
  EXPECT_EQ(messages.back().type, wire::MsgType::kFin);
  EXPECT_EQ(messages.back().reason, "drain");
  EXPECT_FALSE(client.Connected());
}

TEST_F(DatagramTransportTest, CounterSamplesMirrorSnapshotKeys) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({}, 8), 1.0, 16,
                         sim::Rng(1));
  DatagramServerTransport transport;
  std::string error;
  ASSERT_TRUE(transport.Bind(server_options_, &server, &error)) << error;

  std::vector<obs::CounterSample> samples;
  transport.AppendCounterSamples(&samples);
  ASSERT_FALSE(samples.empty());

  obs::MetricsRegistry registry;
  transport.SnapshotMetrics(&registry);
  // Every probe sample name is a registry counter key — the contract that
  // lets bdisk_top --check --snapshot reconcile serve-mode streams.
  for (const obs::CounterSample& sample : samples) {
    EXPECT_EQ(registry.counters().count(sample.name), 1U) << sample.name;
  }

  transport.Shutdown("test");
}

}  // namespace
}  // namespace bdisk::transport
