// System-level fault-injection pins: determinism (same seed + same plan =>
// bit-identical RunResult), the fusion invariant under faults, the forced
// unfused path for request delay, injection-rate sanity, and the queue
// accounting equation. The complementary zero-perturbation guarantee — a
// default (disabled) FaultPlan leaves every trajectory bit-identical to
// the pre-fault baseline — is pinned by golden_test's seed-424242 pins and
// the committed tools/baseline snapshot, which this PR must not move.

#include <string>

#include <gtest/gtest.h>

#include "core/config_io.h"
#include "core/system.h"
#include "fault/fault_plan.h"

namespace bdisk {
namespace {

core::SteadyStateProtocol QuickProtocol() {
  core::SteadyStateProtocol protocol;
  protocol.post_fill_accesses = 100;
  protocol.min_measured_accesses = 500;
  protocol.max_measured_accesses = 1500;
  protocol.batch_size = 250;
  protocol.tolerance = 0.1;
  return protocol;
}

core::SystemConfig SmallLoadedConfig() {
  core::SystemConfig config;
  config.mode = core::DeliveryMode::kIpp;
  config.server_db_size = 100;
  config.disks = broadcast::DiskConfig{{10, 40, 50}, {3, 2, 1}};
  config.cache_size = 10;
  config.server_queue_size = 10;
  config.mc_think_time = 5.0;
  config.think_time_ratio = 50.0;
  config.pull_bw = 0.5;
  config.seed = 20260806;
  return config;
}

// Field-by-field bit-equality over everything a fault plan can touch.
void ExpectIdenticalResults(const core::RunResult& a,
                            const core::RunResult& b) {
  EXPECT_EQ(a.mean_response, b.mean_response);
  EXPECT_EQ(a.response_stats.Count(), b.response_stats.Count());
  EXPECT_EQ(a.response_stats.Variance(), b.response_stats.Variance());
  EXPECT_EQ(a.response_p99, b.response_p99);
  EXPECT_EQ(a.mc_accesses, b.mc_accesses);
  EXPECT_EQ(a.mc_hit_rate, b.mc_hit_rate);
  EXPECT_EQ(a.mc_pulls_sent, b.mc_pulls_sent);
  EXPECT_EQ(a.mc_retries_sent, b.mc_retries_sent);
  EXPECT_EQ(a.vc_requests_generated, b.vc_requests_generated);
  EXPECT_EQ(a.vc_submitted, b.vc_submitted);
  EXPECT_EQ(a.requests_submitted, b.requests_submitted);
  EXPECT_EQ(a.requests_accepted, b.requests_accepted);
  EXPECT_EQ(a.requests_coalesced, b.requests_coalesced);
  EXPECT_EQ(a.requests_dropped, b.requests_dropped);
  EXPECT_EQ(a.requests_shed, b.requests_shed);
  EXPECT_EQ(a.requests_dropped_outage, b.requests_dropped_outage);
  EXPECT_EQ(a.fault_slots_lost, b.fault_slots_lost);
  EXPECT_EQ(a.fault_slots_corrupted, b.fault_slots_corrupted);
  EXPECT_EQ(a.fault_requests_lost, b.fault_requests_lost);
  EXPECT_EQ(a.fault_requests_delayed, b.fault_requests_delayed);
  EXPECT_EQ(a.outage_slots, b.outage_slots);
  EXPECT_EQ(a.outages_started, b.outages_started);
  EXPECT_EQ(a.degraded_enters, b.degraded_enters);
  EXPECT_EQ(a.degraded_exits, b.degraded_exits);
  EXPECT_EQ(a.mc_timeouts_fired, b.mc_timeouts_fired);
  EXPECT_EQ(a.mc_abandoned, b.mc_abandoned);
  EXPECT_EQ(a.mc_fallbacks, b.mc_fallbacks);
  EXPECT_EQ(a.mc_probes_sent, b.mc_probes_sent);
  EXPECT_EQ(a.mc_backchannel_deaths, b.mc_backchannel_deaths);
  EXPECT_EQ(a.mc_backchannel_recoveries, b.mc_backchannel_recoveries);
  EXPECT_EQ(a.push_slot_frac, b.push_slot_frac);
  EXPECT_EQ(a.pull_slot_frac, b.pull_slot_frac);
  EXPECT_EQ(a.idle_slot_frac, b.idle_slot_frac);
  EXPECT_EQ(a.sim_time_end, b.sim_time_end);
  EXPECT_EQ(a.converged, b.converged);
}

TEST(FaultInjectionTest, SameSeedAndPlanIsBitIdentical) {
  core::SystemConfig config = SmallLoadedConfig();
  config.fault.slot_loss = 0.1;
  config.fault.slot_corruption = 0.05;
  config.fault.request_loss = 0.1;
  config.fault.outage_start = 200.0;
  config.fault.outage_duration = 50.0;
  config.fault.outage_period = 1000.0;
  config.fault.shed_hi = 0.8;

  core::System first(config);
  const core::RunResult a = first.RunSteadyState(QuickProtocol());
  core::System second(config);
  const core::RunResult b = second.RunSteadyState(QuickProtocol());
  ExpectIdenticalResults(a, b);
  // The plan actually injected; identical zeros would be a vacuous pass.
  EXPECT_GT(a.fault_slots_lost, 0U);
  EXPECT_GT(a.fault_requests_lost, 0U);
  EXPECT_GT(a.outage_slots, 0U);
}

TEST(FaultInjectionTest, DifferentSeedsInjectDifferently) {
  core::SystemConfig config = SmallLoadedConfig();
  config.fault.slot_loss = 0.1;
  core::System first(config);
  const core::RunResult a = first.RunSteadyState(QuickProtocol());
  config.seed += 1;
  core::System second(config);
  const core::RunResult b = second.RunSteadyState(QuickProtocol());
  // Same rates, different draws: the tallies should not line up exactly.
  EXPECT_NE(a.fault_slots_lost, b.fault_slots_lost);
}

TEST(FaultInjectionTest, FusedMatchesUnfusedUnderFaults) {
  // The injector judges slots and requests in arrival order, which the
  // fused VC path preserves; losses must not break the fusion invariant.
  core::SystemConfig config = SmallLoadedConfig();
  config.fault.slot_loss = 0.1;
  config.fault.request_loss = 0.15;
  config.fault.shed_hi = 0.8;

  config.vc_fusion = true;
  core::System fused_system(config);
  const core::RunResult fused = fused_system.RunSteadyState(QuickProtocol());
  config.vc_fusion = false;
  core::System unfused_system(config);
  const core::RunResult unfused =
      unfused_system.RunSteadyState(QuickProtocol());
  ExpectIdenticalResults(fused, unfused);
  EXPECT_GT(fused.kernel.lazy_arrivals_fused, 0U);
  EXPECT_EQ(unfused.kernel.lazy_arrivals_fused, 0U);
}

TEST(FaultInjectionTest, RequestDelayForcesTheUnfusedPath) {
  // Delayed submissions re-enter through the event heap; the fused batch
  // path cannot re-time them, so System must drop to unfused even when the
  // config asks for fusion.
  core::SystemConfig config = SmallLoadedConfig();
  config.vc_fusion = true;
  config.fault.request_delay = 2.0;
  core::System system(config);
  const core::RunResult r = system.RunSteadyState(QuickProtocol());
  EXPECT_EQ(r.kernel.lazy_arrivals_fused, 0U);
  EXPECT_GT(r.fault_requests_delayed, 0U);
}

TEST(FaultInjectionTest, SlotLossRateIsRoughlyHonouredSystemWide) {
  core::SystemConfig config = SmallLoadedConfig();
  config.fault.slot_loss = 0.2;
  core::System system(config);
  const core::RunResult r = system.RunSteadyState(QuickProtocol());
  // Idle slots carry no page and are never judged, so the denominator is
  // the busy-slot count.
  const double busy =
      (r.push_slot_frac + r.pull_slot_frac) * r.sim_time_end;
  ASSERT_GT(busy, 1000.0);
  const double rate = static_cast<double>(r.fault_slots_lost) / busy;
  EXPECT_NEAR(rate, 0.2, 0.03);
}

TEST(FaultInjectionTest, QueueAccountingBalancesUnderAllFaults) {
  core::SystemConfig config = SmallLoadedConfig();
  config.fault.slot_loss = 0.1;
  config.fault.request_loss = 0.1;
  config.fault.outage_start = 100.0;
  config.fault.outage_duration = 30.0;
  config.fault.outage_period = 500.0;
  config.fault.shed_hi = 0.6;
  config.fault.degraded_pull_bw = 0.5;
  core::System system(config);
  const core::RunResult r = system.RunSteadyState(QuickProtocol());
  EXPECT_EQ(r.requests_submitted,
            r.requests_accepted + r.requests_coalesced + r.requests_dropped +
                r.requests_shed + r.requests_dropped_outage);
  EXPECT_GT(r.requests_dropped_outage, 0U);
}

TEST(FaultInjectionTest, ConfigRoundTripsThroughTextWithAFaultPlan) {
  core::SystemConfig config = SmallLoadedConfig();
  config.fault.slot_loss = 0.125;
  config.fault.request_delay = 1.5;
  config.fault.brownout = true;
  config.fault.shed_hi = 0.75;
  config.fault.mc_max_retries = 7;
  const std::string text = core::ConfigToText(config);

  core::SystemConfig parsed;
  ASSERT_EQ(core::ParseConfigText(text, &parsed), "");
  EXPECT_EQ(parsed.fault.slot_loss, 0.125);
  EXPECT_EQ(parsed.fault.request_delay, 1.5);
  EXPECT_TRUE(parsed.fault.brownout);
  EXPECT_EQ(parsed.fault.shed_hi, 0.75);
  EXPECT_EQ(parsed.fault.mc_max_retries, 7U);
  // The re-parsed config drives the identical trajectory.
  core::System a(config);
  core::System b(parsed);
  ExpectIdenticalResults(a.RunSteadyState(QuickProtocol()),
                         b.RunSteadyState(QuickProtocol()));
}

}  // namespace
}  // namespace bdisk
