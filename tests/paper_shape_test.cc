// Shape-regression suite: the paper's qualitative findings, asserted at a
// 10x-scaled configuration so the whole suite stays fast. These are the
// claims EXPERIMENTS.md reports; if a refactor flips one of these
// orderings, the reproduction is broken even if every unit test passes.

#include <gtest/gtest.h>

#include "core/system.h"

namespace bdisk::core {
namespace {

SystemConfig Base(double ttr) {
  SystemConfig config;
  config.server_db_size = 100;
  config.disks = broadcast::DiskConfig{{10, 40, 50}, {3, 2, 1}};
  config.cache_size = 10;
  config.server_queue_size = 10;
  config.mc_think_time = 20.0;
  config.think_time_ratio = ttr;
  config.seed = 1997;
  return config;
}

SteadyStateProtocol Fast() {
  SteadyStateProtocol protocol;
  protocol.post_fill_accesses = 200;
  protocol.min_measured_accesses = 2000;
  protocol.max_measured_accesses = 6000;
  protocol.batch_size = 500;
  protocol.tolerance = 0.05;
  return protocol;
}

double RunPoint(SystemConfig config) {
  System system(config);
  return system.RunSteadyState(Fast()).mean_response;
}

// Figure 3(b): at saturation, less pull bandwidth is *better* — pull
// slots only delay the broadcast everyone falls back on.
TEST(PaperShapeTest, Fig3bPullBwOrderingInvertsAtSaturation) {
  SystemConfig config = Base(400.0);
  config.pull_bw = 0.1;
  const double bw10 = RunPoint(config);
  config.pull_bw = 0.5;
  const double bw50 = RunPoint(config);
  EXPECT_LT(bw10, bw50);

  // And the opposite at light load.
  SystemConfig light = Base(2.0);
  light.pull_bw = 0.1;
  const double light10 = RunPoint(light);
  light.pull_bw = 0.5;
  const double light50 = RunPoint(light);
  EXPECT_LT(light50, light10);
}

// Figure 7(b): with a threshold and enough pull bandwidth, truncating the
// cold tail *improves* light-load response.
TEST(PaperShapeTest, Fig7TruncationHelpsWithThresholdAndBandwidth) {
  SystemConfig config = Base(10.0);
  config.pull_bw = 0.5;
  config.thres_perc = 0.35;
  config.chop_count = 0;
  const double full = RunPoint(config);
  config.chop_count = 50;  // Whole slowest disk.
  const double chopped = RunPoint(config);
  EXPECT_LT(chopped, full);
}

// Figure 7(a): with starved pull bandwidth, truncation is catastrophic.
TEST(PaperShapeTest, Fig7TruncationHurtsWithoutBandwidth) {
  SystemConfig config = Base(25.0);
  config.pull_bw = 0.1;
  config.thres_perc = 0.0;
  config.chop_count = 0;
  const double full = RunPoint(config);
  config.chop_count = 50;
  const double chopped = RunPoint(config);
  EXPECT_GT(chopped, full * 1.3);
}

// Figure 8: the truncation benefit inverts with load — what helps when
// underutilized hurts at saturation (no safety net for chopped pages).
TEST(PaperShapeTest, Fig8TruncationOrderingInvertsWithLoad) {
  SystemConfig light = Base(10.0);
  light.pull_bw = 0.3;
  light.thres_perc = 0.35;
  light.chop_count = 0;
  const double light_full = RunPoint(light);
  light.chop_count = 70;
  const double light_chopped = RunPoint(light);
  EXPECT_LT(light_chopped, light_full);

  SystemConfig heavy = Base(400.0);
  heavy.pull_bw = 0.3;
  heavy.thres_perc = 0.35;
  heavy.chop_count = 0;
  const double heavy_full = RunPoint(heavy);
  heavy.chop_count = 70;
  const double heavy_chopped = RunPoint(heavy);
  EXPECT_GT(heavy_chopped, heavy_full);
}

// Figure 5: Noise hurts Pure-Pull more than IPP at saturation (IPP's push
// half is the safety net).
TEST(PaperShapeTest, Fig5IppLessNoiseSensitiveThanPullWhenSaturated) {
  SystemConfig pull = Base(400.0);
  pull.mode = DeliveryMode::kPurePull;
  pull.noise = 0.0;
  const double pull_clean = RunPoint(pull);
  pull.noise = 0.35;
  const double pull_noisy = RunPoint(pull);

  SystemConfig ipp = Base(400.0);
  ipp.pull_bw = 0.5;
  ipp.noise = 0.0;
  const double ipp_clean = RunPoint(ipp);
  ipp.noise = 0.35;
  const double ipp_noisy = RunPoint(ipp);

  const double pull_penalty = pull_noisy / pull_clean;
  const double ipp_penalty = ipp_noisy / ipp_clean;
  EXPECT_GT(pull_penalty, 1.0);
  EXPECT_LT(ipp_penalty, pull_penalty * 1.05);
}

// §4.4's summary: Pure-Pull collapses at one end, and while IPP "never
// has the best performance numbers", a well-thresholded IPP stays within
// a modest factor of Pure-Push's flat line everywhere — where Pure-Pull's
// worst case is far beyond it.
TEST(PaperShapeTest, SummaryIppBoundsTheWorstCase) {
  double push_worst = 0.0, pull_worst = 0.0, ipp_worst = 0.0;
  for (const double ttr : {2.0, 50.0, 400.0}) {
    SystemConfig push = Base(ttr);
    push.mode = DeliveryMode::kPurePush;
    push_worst = std::max(push_worst, RunPoint(push));

    SystemConfig pull = Base(ttr);
    pull.mode = DeliveryMode::kPurePull;
    pull_worst = std::max(pull_worst, RunPoint(pull));

    SystemConfig ipp = Base(ttr);
    ipp.pull_bw = 0.3;
    ipp.thres_perc = 0.35;
    ipp_worst = std::max(ipp_worst, RunPoint(ipp));
  }
  EXPECT_LT(ipp_worst, pull_worst);
  EXPECT_LT(ipp_worst, push_worst * 1.25);
  EXPECT_GT(pull_worst, push_worst * 1.25);
}

}  // namespace
}  // namespace bdisk::core
