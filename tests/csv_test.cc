#include "core/csv.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace bdisk::core {
namespace {

SweepOutcome MakeOutcome(const std::string& curve, double x,
                         double response) {
  SweepOutcome outcome;
  outcome.point.curve = curve;
  outcome.point.x = x;
  outcome.result.mean_response = response;
  outcome.result.drop_rate = 0.25;
  outcome.result.mc_hit_rate = 0.5;
  outcome.result.converged = true;
  return outcome;
}

TEST(CsvTest, HeaderAndRows) {
  const std::string csv =
      SweepToCsv({MakeOutcome("Push", 10, 158.2),
                  MakeOutcome("Pull", 10, 0.4)});
  EXPECT_NE(csv.find("curve,x,mean_response"), std::string::npos);
  EXPECT_NE(csv.find("Push,10,158.2"), std::string::npos);
  EXPECT_NE(csv.find("Pull,10,0.4"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(CsvTest, QuotesLabelsWithCommas) {
  const std::string csv = SweepToCsv({MakeOutcome("IPP, bw=50%", 25, 7.0)});
  EXPECT_NE(csv.find("\"IPP, bw=50%\""), std::string::npos);
}

TEST(CsvTest, EmptySweepIsJustHeader) {
  const std::string csv = SweepToCsv({});
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1);
}

TEST(CsvTest, WarmupRowsSkipUnreachedFractions) {
  SweepOutcome outcome = MakeOutcome("Push", 25, 0.0);
  outcome.result.warmup = {{0.1, 100.0},
                           {0.5, 500.0},
                           {0.9, sim::kTimeNever}};
  const std::string csv = WarmupToCsv({outcome});
  EXPECT_NE(csv.find("Push,25,0.1,100"), std::string::npos);
  EXPECT_NE(csv.find("Push,25,0.5,500"), std::string::npos);
  EXPECT_EQ(csv.find("0.9"), std::string::npos);
}

}  // namespace
}  // namespace bdisk::core
