#include "server/update_generator.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "sim/zipf.h"

namespace bdisk::server {
namespace {

class RecordingInvalidationListener : public InvalidationListener {
 public:
  void OnInvalidate(broadcast::PageId page, sim::SimTime now) override {
    pages.push_back(page);
    times.push_back(now);
  }
  std::vector<broadcast::PageId> pages;
  std::vector<sim::SimTime> times;
};

TEST(UpdateGeneratorTest, GeneratesAtTheConfiguredRate) {
  sim::Simulator sim;
  UpdateGenerator generator(&sim, /*rate=*/0.1,
                            std::vector<double>(10, 1.0), sim::Rng(1));
  generator.Start();
  sim.RunUntil(50000.0);
  // ~5000 updates expected.
  EXPECT_GT(generator.UpdateCount(), 4500U);
  EXPECT_LT(generator.UpdateCount(), 5500U);
}

TEST(UpdateGeneratorTest, NotifiesAllListeners) {
  sim::Simulator sim;
  UpdateGenerator generator(&sim, 1.0, std::vector<double>(4, 1.0),
                            sim::Rng(2));
  RecordingInvalidationListener a, b;
  generator.AddListener(&a);
  generator.AddListener(&b);
  generator.Start();
  sim.RunUntil(100.0);
  EXPECT_EQ(a.pages.size(), generator.UpdateCount());
  EXPECT_EQ(a.pages, b.pages);
  EXPECT_FALSE(a.pages.empty());
}

TEST(UpdateGeneratorTest, VersionsTrackUpdates) {
  sim::Simulator sim;
  // All weight on page 3: every update hits it.
  std::vector<double> weights(5, 0.0);
  weights[3] = 1.0;
  UpdateGenerator generator(&sim, 0.5, weights, sim::Rng(3));
  generator.Start();
  sim.RunUntil(100.0);
  EXPECT_EQ(generator.Version(3), generator.UpdateCount());
  EXPECT_EQ(generator.Version(0), 0U);
}

TEST(UpdateGeneratorTest, SkewedUpdatesHitHotPagesMore) {
  sim::Simulator sim;
  UpdateGenerator generator(&sim, 1.0, sim::ZipfPmf(100, 0.95),
                            sim::Rng(4));
  generator.Start();
  sim.RunUntil(20000.0);
  EXPECT_GT(generator.Version(0), generator.Version(99) * 3);
}

TEST(UpdateGeneratorDeathTest, RejectsNonPositiveRate) {
  sim::Simulator sim;
  EXPECT_DEATH(UpdateGenerator(&sim, 0.0, {1.0}, sim::Rng(1)), "rate");
}

}  // namespace
}  // namespace bdisk::server
