#include "obs/windowed_collector.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/system.h"
#include "obs/metrics.h"

namespace bdisk::obs {
namespace {

TEST(WindowedCollectorTest, AggregatesOneWindow) {
  WindowedCollector collector(/*window=*/10.0);
  collector.OnSlot(0.0, SlotSample::kPush, 2);
  collector.OnSlot(1.0, SlotSample::kPull, 3);
  collector.OnSlot(2.0, SlotSample::kIdle, 0);
  collector.OnSubmit(2.5, SubmitSample::kAccepted, 4);
  collector.OnSubmit(2.5, SubmitSample::kCoalesced, 4);
  collector.OnSubmit(3.0, SubmitSample::kDropped, 4);
  collector.OnSubmit(3.0, SubmitSample::kDropped, 4);
  collector.OnResponse(4.0, 1.0);
  collector.OnResponse(5.0, 3.0);
  collector.Finish();

  const std::vector<WindowStats> windows = collector.Windows();
  ASSERT_EQ(windows.size(), 1U);
  const WindowStats& w = windows[0];
  EXPECT_DOUBLE_EQ(w.start, 0.0);
  EXPECT_DOUBLE_EQ(w.end, 10.0);
  EXPECT_EQ(w.slots_push, 1U);
  EXPECT_EQ(w.slots_pull, 1U);
  EXPECT_EQ(w.slots_idle, 1U);
  EXPECT_DOUBLE_EQ(w.PushFrac(), 1.0 / 3.0);
  EXPECT_EQ(w.submits, 4U);
  EXPECT_EQ(w.dropped, 2U);
  EXPECT_DOUBLE_EQ(w.DropRate(), 0.5);
  EXPECT_EQ(w.queue_depth_max, 4U);
  EXPECT_EQ(w.responses, 2U);
  EXPECT_DOUBLE_EQ(w.response_mean, 2.0);
  EXPECT_DOUBLE_EQ(w.response_max, 3.0);
  EXPECT_GT(w.response_p99, 0.0);
}

TEST(WindowedCollectorTest, WindowGridIsAnchoredAndGapsEmitEmptyWindows) {
  WindowedCollector collector(/*window=*/10.0);
  collector.OnSlot(12.0, SlotSample::kPush, 0);  // Opens [10, 20).
  collector.OnSlot(47.0, SlotSample::kPull, 0);  // Skips two empty windows.
  collector.Finish();

  const std::vector<WindowStats> windows = collector.Windows();
  ASSERT_EQ(windows.size(), 4U);
  EXPECT_DOUBLE_EQ(windows[0].start, 10.0);
  EXPECT_EQ(windows[0].slots_push, 1U);
  // The quiet stretch is represented honestly, not silently skipped.
  EXPECT_DOUBLE_EQ(windows[1].start, 20.0);
  EXPECT_EQ(windows[1].Slots(), 0U);
  EXPECT_DOUBLE_EQ(windows[2].start, 30.0);
  EXPECT_DOUBLE_EQ(windows[3].start, 40.0);
  EXPECT_EQ(windows[3].slots_pull, 1U);
}

TEST(WindowedCollectorTest, QueueDepthKeepsLastAndHighWater) {
  WindowedCollector collector(/*window=*/10.0);
  collector.OnSubmit(1.0, SubmitSample::kAccepted, 7);
  collector.OnSubmit(2.0, SubmitSample::kAccepted, 3);
  collector.Finish();
  const std::vector<WindowStats> windows = collector.Windows();
  ASSERT_EQ(windows.size(), 1U);
  EXPECT_EQ(windows[0].queue_depth, 3U);      // Last observed.
  EXPECT_EQ(windows[0].queue_depth_max, 7U);  // High water.
}

TEST(WindowedCollectorTest, PerWindowPercentilesResetBetweenWindows) {
  WindowedCollector collector(/*window=*/10.0);
  for (int i = 0; i < 100; ++i) collector.OnResponse(5.0, 100.0);
  for (int i = 0; i < 100; ++i) collector.OnResponse(15.0, 1.0);
  collector.Finish();
  const std::vector<WindowStats> windows = collector.Windows();
  ASSERT_EQ(windows.size(), 2U);
  // Were the histogram not reset, the second window's p99 would still see
  // the first window's 100s.
  EXPECT_GT(windows[0].response_p50, 50.0);
  EXPECT_LT(windows[1].response_p99, 50.0);
}

TEST(WindowedCollectorTest, RingEvictsOldestBeyondCapacity) {
  WindowedCollector collector(/*window=*/1.0, /*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    collector.OnSlot(static_cast<double>(i), SlotSample::kPush, 0);
  }
  collector.Finish();
  EXPECT_EQ(collector.WindowsCompleted(), 10U);
  EXPECT_EQ(collector.WindowsEvicted(), 6U);
  const std::vector<WindowStats> windows = collector.Windows();
  ASSERT_EQ(windows.size(), 4U);
  EXPECT_DOUBLE_EQ(windows.front().start, 6.0);
  EXPECT_DOUBLE_EQ(windows.back().start, 9.0);
}

TEST(WindowedCollectorTest, PublishToEmitsSeriesAndGauges) {
  WindowedCollector collector(/*window=*/10.0);
  collector.OnSlot(1.0, SlotSample::kPush, 1);
  collector.OnSlot(11.0, SlotSample::kPull, 2);
  collector.Finish();

  MetricsRegistry registry;
  collector.PublishTo(&registry);
  EXPECT_DOUBLE_EQ(registry.gauges().at("window.width").Value(), 10.0);
  EXPECT_DOUBLE_EQ(registry.gauges().at("window.count").Value(), 2.0);
  const auto& push_frac = registry.time_series().at("window.push_frac");
  ASSERT_EQ(push_frac.size(), 2U);
  EXPECT_DOUBLE_EQ(push_frac.samples()[0].time, 0.0);  // Window start.
  EXPECT_DOUBLE_EQ(push_frac.samples()[0].value, 1.0);
  EXPECT_DOUBLE_EQ(push_frac.samples()[1].value, 0.0);
  EXPECT_EQ(registry.time_series().at("window.drop_rate").size(), 2U);
  EXPECT_EQ(registry.time_series().at("window.response_p99").size(), 2U);
}

// ------------------------------------------------------- full-system runs

core::SystemConfig SmallConfig() {
  core::SystemConfig config;
  config.server_db_size = 100;
  config.disks = broadcast::DiskConfig{{10, 40, 50}, {3, 2, 1}};
  config.cache_size = 10;
  config.server_queue_size = 10;
  config.mc_think_time = 5.0;
  config.think_time_ratio = 25.0;
  config.seed = 7;
  return config;
}

core::SteadyStateProtocol QuickProtocol() {
  core::SteadyStateProtocol protocol;
  protocol.post_fill_accesses = 200;
  protocol.min_measured_accesses = 500;
  protocol.max_measured_accesses = 2000;
  protocol.batch_size = 250;
  protocol.tolerance = 0.1;
  return protocol;
}

TEST(WindowedCollectorIntegrationTest, SystemRunFillsConsistentWindows) {
  core::System system(SmallConfig());
  WindowedCollector collector(/*window=*/100.0);
  system.AttachWindowedCollector(&collector);
  const core::RunResult result = system.RunSteadyState(QuickProtocol());

  const std::vector<WindowStats> windows = collector.Windows();
  ASSERT_GT(windows.size(), 1U);
  std::uint64_t slots = 0;
  std::uint64_t responses = 0;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    slots += windows[i].Slots();
    responses += windows[i].responses;
    if (i > 0) {
      EXPECT_DOUBLE_EQ(windows[i].start, windows[i - 1].end);
    }
    EXPECT_LE(windows[i].queue_depth_max, 10U);
  }
  // Every slot decision made while attached landed in exactly one window
  // (the final partial window is closed at run end). The server makes its
  // very first decision in its constructor, before anything can attach, so
  // the collector sees exactly one fewer.
  EXPECT_EQ(slots, system.server().TotalSlots() - 1);
  // Responses cover warm-up and measurement alike, so at least the
  // measured accesses are there.
  EXPECT_GE(responses, result.response_stats.Count());

  // The snapshot carries the windowed series.
  MetricsRegistry registry;
  system.SnapshotMetrics(&registry);
  EXPECT_EQ(registry.time_series().at("window.drop_rate").size(),
            windows.size());
}

TEST(WindowedCollectorIntegrationTest, AttachingCollectorIsTrajectoryNeutral) {
  core::System plain(SmallConfig());
  const core::RunResult base = plain.RunSteadyState(QuickProtocol());

  core::System observed(SmallConfig());
  WindowedCollector collector(/*window=*/50.0);
  observed.AttachWindowedCollector(&collector);
  const core::RunResult with = observed.RunSteadyState(QuickProtocol());

  EXPECT_EQ(with.kernel.events_executed, base.kernel.events_executed);
  EXPECT_EQ(with.mean_response, base.mean_response);
  EXPECT_EQ(with.response_stats.Count(), base.response_stats.Count());
  EXPECT_EQ(with.requests_submitted, base.requests_submitted);
  EXPECT_EQ(with.sim_time_end, base.sim_time_end);
}

}  // namespace
}  // namespace bdisk::obs
