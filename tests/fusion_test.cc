// Virtual-client event fusion: the lazy-source drain must be invisible to
// the simulated trajectory. These tests pin the kernel-level drain
// semantics (timestamp-ordered merge, end-of-run barrier) and the
// system-level guarantee: one config run fused vs. unfused produces the
// identical RunResult trajectory, with only the heap-event accounting
// moved into the fused-arrival counters.

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/system.h"
#include "obs/trace_sink.h"
#include "sim/lazy_source.h"
#include "sim/simulator.h"

namespace bdisk {
namespace {

// A lazy source with a fixed arrival script; drained arrivals are appended
// to a shared log so tests can check the global interleaving.
class ScriptedSource : public sim::LazySource {
 public:
  ScriptedSource(int id, std::vector<sim::SimTime> times,
                 std::vector<std::pair<int, sim::SimTime>>* log)
      : id_(id), times_(std::move(times)), log_(log) {}

  sim::SimTime NextArrivalTime() const override {
    return next_ < times_.size() ? times_[next_] : sim::kTimeNever;
  }

  std::uint64_t CatchUp(sim::SimTime horizon) override {
    std::uint64_t processed = 0;
    while (next_ < times_.size() && times_[next_] <= horizon) {
      log_->push_back({id_, times_[next_]});
      ++next_;
      ++processed;
    }
    return processed;
  }

 private:
  int id_;
  std::size_t next_ = 0;
  std::vector<sim::SimTime> times_;
  std::vector<std::pair<int, sim::SimTime>>* log_;
};

TEST(LazySourceTest, DrainStopsAtNow) {
  sim::Simulator sim;
  std::vector<std::pair<int, sim::SimTime>> log;
  ScriptedSource source(0, {1.0, 2.0, 7.5}, &log);
  sim.RegisterLazySource(&source);

  sim.ScheduleAt(5.0, [&sim] { sim.CatchUpLazySources(); });
  sim.RunUntil(5.0);
  // The mid-run barrier drained up to 5.0; RunUntil's final barrier does
  // not reach past the deadline.
  ASSERT_EQ(log.size(), 2U);
  EXPECT_EQ(log[0], (std::pair<int, sim::SimTime>{0, 1.0}));
  EXPECT_EQ(log[1], (std::pair<int, sim::SimTime>{0, 2.0}));
  EXPECT_EQ(sim.LazyArrivalsFused(), 2U);

  sim.RunUntil(10.0);
  ASSERT_EQ(log.size(), 3U);
  EXPECT_EQ(log[2], (std::pair<int, sim::SimTime>{0, 7.5}));
  EXPECT_EQ(sim.LazyArrivalsFused(), 3U);
}

TEST(LazySourceTest, MultipleSourcesDrainInGlobalTimestampOrder) {
  sim::Simulator sim;
  std::vector<std::pair<int, sim::SimTime>> log;
  ScriptedSource a(0, {1.0, 4.0, 5.0, 9.0}, &log);
  ScriptedSource b(1, {2.0, 3.0, 6.0}, &log);
  sim.RegisterLazySource(&a);
  sim.RegisterLazySource(&b);

  sim.RunUntil(10.0);  // Final barrier drains everything.
  const std::vector<std::pair<int, sim::SimTime>> expected = {
      {0, 1.0}, {1, 2.0}, {1, 3.0}, {0, 4.0}, {0, 5.0}, {1, 6.0}, {0, 9.0}};
  EXPECT_EQ(log, expected);
  EXPECT_EQ(sim.LazyArrivalsFused(), 7U);
  EXPECT_EQ(sim.LazyDrains(), 1U);
}

TEST(LazySourceTest, UnregisteredSourceIsNotDrained) {
  sim::Simulator sim;
  std::vector<std::pair<int, sim::SimTime>> log;
  ScriptedSource source(0, {1.0}, &log);
  sim.RegisterLazySource(&source);
  sim.UnregisterLazySource(&source);
  sim.RunUntil(5.0);
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(sim.LazyArrivalsFused(), 0U);
}

// The system-level pin. Every trajectory field of RunResult must agree to
// the bit between a fused and an unfused run of the same config; only the
// kernel accounting may differ, and there the sum events_executed +
// lazy_arrivals_fused is invariant (each fused arrival is exactly one
// saved heap event).
void ExpectFusionInvariant(core::SystemConfig config) {
  core::SteadyStateProtocol protocol;
  protocol.post_fill_accesses = 100;
  protocol.min_measured_accesses = 500;
  protocol.max_measured_accesses = 1500;
  protocol.batch_size = 250;
  protocol.tolerance = 0.1;

  config.vc_fusion = true;
  core::System fused_system(config);
  const core::RunResult fused = fused_system.RunSteadyState(protocol);

  config.vc_fusion = false;
  core::System unfused_system(config);
  const core::RunResult unfused = unfused_system.RunSteadyState(protocol);

  EXPECT_EQ(fused.mean_response, unfused.mean_response);
  EXPECT_EQ(fused.response_stats.Variance(),
            unfused.response_stats.Variance());
  EXPECT_EQ(fused.response_stats.Count(), unfused.response_stats.Count());
  EXPECT_EQ(fused.response_p50, unfused.response_p50);
  EXPECT_EQ(fused.response_p99, unfused.response_p99);
  EXPECT_EQ(fused.mc_accesses, unfused.mc_accesses);
  EXPECT_EQ(fused.mc_hit_rate, unfused.mc_hit_rate);
  EXPECT_EQ(fused.mc_pulls_sent, unfused.mc_pulls_sent);
  EXPECT_EQ(fused.mc_retries_sent, unfused.mc_retries_sent);
  EXPECT_EQ(fused.mc_invalidations, unfused.mc_invalidations);
  EXPECT_EQ(fused.vc_requests_generated, unfused.vc_requests_generated);
  EXPECT_EQ(fused.vc_cache_hits, unfused.vc_cache_hits);
  EXPECT_EQ(fused.vc_filtered, unfused.vc_filtered);
  EXPECT_EQ(fused.vc_submitted, unfused.vc_submitted);
  EXPECT_EQ(fused.updates_generated, unfused.updates_generated);
  EXPECT_EQ(fused.requests_submitted, unfused.requests_submitted);
  EXPECT_EQ(fused.requests_accepted, unfused.requests_accepted);
  EXPECT_EQ(fused.requests_coalesced, unfused.requests_coalesced);
  EXPECT_EQ(fused.requests_dropped, unfused.requests_dropped);
  EXPECT_EQ(fused.queue_depth_high_water, unfused.queue_depth_high_water);
  EXPECT_EQ(fused.push_slot_frac, unfused.push_slot_frac);
  EXPECT_EQ(fused.pull_slot_frac, unfused.pull_slot_frac);
  EXPECT_EQ(fused.idle_slot_frac, unfused.idle_slot_frac);
  EXPECT_EQ(fused.sim_time_end, unfused.sim_time_end);
  EXPECT_EQ(fused.converged, unfused.converged);

  EXPECT_EQ(unfused.kernel.lazy_arrivals_fused, 0U);
  EXPECT_EQ(fused.kernel.events_executed + fused.kernel.lazy_arrivals_fused,
            unfused.kernel.events_executed);
  // The config drives real VC load, so fusion actually moved something.
  EXPECT_GT(fused.kernel.lazy_arrivals_fused, 0U);
}

core::SystemConfig SmallLoadedConfig(core::DeliveryMode mode) {
  core::SystemConfig config;
  config.mode = mode;
  config.server_db_size = 100;
  config.disks = broadcast::DiskConfig{{10, 40, 50}, {3, 2, 1}};
  config.cache_size = 10;
  config.server_queue_size = 10;
  config.mc_think_time = 5.0;
  config.think_time_ratio = 50.0;
  config.pull_bw = 0.5;
  config.thres_perc = 0.1;
  config.seed = 20260806;
  return config;
}

TEST(FusionTest, FusedMatchesUnfusedIpp) {
  ExpectFusionInvariant(SmallLoadedConfig(core::DeliveryMode::kIpp));
}

TEST(FusionTest, FusedMatchesUnfusedPurePull) {
  ExpectFusionInvariant(SmallLoadedConfig(core::DeliveryMode::kPurePull));
}

TEST(FusionTest, FusedMatchesUnfusedWithUpdates) {
  // Invalidation barrier: arrivals before an update must see the old warm
  // flag, arrivals after it the cleared one.
  core::SystemConfig config = SmallLoadedConfig(core::DeliveryMode::kIpp);
  config.update_rate = 0.2;
  ExpectFusionInvariant(config);
}

TEST(FusionTest, FusedMatchesUnfusedWithAdaptiveControllers) {
  // Controller barrier: the PullBW decision reads windowed queue counters.
  core::SystemConfig config = SmallLoadedConfig(core::DeliveryMode::kIpp);
  config.adaptive_pull_bw = true;
  config.adaptive_threshold = true;
  ExpectFusionInvariant(config);
}

TEST(FusionTest, FusedMatchesUnfusedWithNoiseAndPrefetch) {
  // Exercises the MC-side barriers (prefetch scans, noisy value arrays).
  core::SystemConfig config = SmallLoadedConfig(core::DeliveryMode::kIpp);
  config.noise = 0.3;
  config.mc_prefetch = true;
  ExpectFusionInvariant(config);
}

// Trace-level pins for the same invariant: the span assembler relies on the
// sink's record stream being globally timestamp-ordered, and fusion must
// not reorder (or re-time) a single record.

std::vector<obs::SpanRecord> TraceOfRun(core::SystemConfig config) {
  core::SteadyStateProtocol protocol;
  protocol.post_fill_accesses = 100;
  protocol.min_measured_accesses = 500;
  protocol.max_measured_accesses = 1500;
  protocol.batch_size = 250;
  protocol.tolerance = 0.1;

  core::System system(config);
  // Big enough that the updates-plus-VC-heavy run never wraps: the
  // comparison below needs the complete stream, not the tail.
  obs::TraceSink sink(1 << 21);
  system.AttachTrace(&sink);
  system.RunSteadyState(protocol);
  EXPECT_EQ(sink.DroppedEvents(), 0U);
  return sink.Events();
}

TEST(FusionTraceTest, TimestampsAreGloballyNonDecreasingUnderFusion) {
  // Updates are the adversarial case: the update generator's wakeup must
  // drain pending fused VC arrivals before invalidating MC cache entries,
  // or those arrivals' records land after the invalidate with earlier
  // timestamps.
  core::SystemConfig config = SmallLoadedConfig(core::DeliveryMode::kIpp);
  config.update_rate = 0.2;
  config.vc_fusion = true;
  const std::vector<obs::SpanRecord> events = TraceOfRun(config);
  ASSERT_GT(events.size(), 0U);
  EXPECT_GT(std::count_if(events.begin(), events.end(),
                          [](const obs::SpanRecord& r) {
                            return r.event == obs::SpanEvent::kInvalidate;
                          }),
            0);
  for (std::size_t i = 1; i < events.size(); ++i) {
    ASSERT_LE(events[i - 1].time, events[i].time)
        << "record " << i << " (" << obs::SpanEventName(events[i].event)
        << ") went back in time";
  }
}

TEST(FusionTraceTest, FusedAndUnfusedRunsEmitIdenticalTraces) {
  core::SystemConfig config = SmallLoadedConfig(core::DeliveryMode::kIpp);
  config.update_rate = 0.2;

  config.vc_fusion = true;
  const std::vector<obs::SpanRecord> fused = TraceOfRun(config);
  config.vc_fusion = false;
  const std::vector<obs::SpanRecord> unfused = TraceOfRun(config);

  ASSERT_EQ(fused.size(), unfused.size());
  for (std::size_t i = 0; i < fused.size(); ++i) {
    ASSERT_EQ(fused[i].time, unfused[i].time) << "record " << i;
    ASSERT_EQ(fused[i].event, unfused[i].event) << "record " << i;
    ASSERT_EQ(fused[i].client, unfused[i].client) << "record " << i;
    ASSERT_EQ(fused[i].page, unfused[i].page) << "record " << i;
    ASSERT_EQ(fused[i].value, unfused[i].value) << "record " << i;
  }
}

}  // namespace
}  // namespace bdisk
