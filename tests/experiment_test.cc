#include "core/experiment.h"

#include <gtest/gtest.h>

namespace bdisk::core {
namespace {

SystemConfig SmallConfig(double ttr) {
  SystemConfig config;
  config.server_db_size = 100;
  config.disks = broadcast::DiskConfig{{10, 40, 50}, {3, 2, 1}};
  config.cache_size = 10;
  config.server_queue_size = 10;
  config.mc_think_time = 5.0;
  config.think_time_ratio = ttr;
  config.seed = 7;
  return config;
}

SteadyStateProtocol FastProtocol() {
  SteadyStateProtocol protocol;
  protocol.post_fill_accesses = 100;
  protocol.min_measured_accesses = 1000;
  protocol.max_measured_accesses = 3000;
  protocol.batch_size = 500;
  protocol.tolerance = 0.1;
  return protocol;
}

TEST(ExperimentTest, EmptySweep) {
  EXPECT_TRUE(RunSweep({}).empty());
}

TEST(ExperimentTest, OutcomesKeepInputOrderAndLabels) {
  std::vector<SweepPoint> points;
  for (const double ttr : {5.0, 10.0, 20.0}) {
    SweepPoint point;
    point.curve = "IPP";
    point.x = ttr;
    point.config = SmallConfig(ttr);
    points.push_back(point);
  }
  const auto outcomes = RunSweep(points, FastProtocol());
  ASSERT_EQ(outcomes.size(), 3U);
  EXPECT_EQ(outcomes[0].point.x, 5.0);
  EXPECT_EQ(outcomes[1].point.x, 10.0);
  EXPECT_EQ(outcomes[2].point.x, 20.0);
  for (const auto& outcome : outcomes) {
    EXPECT_EQ(outcome.point.curve, "IPP");
    EXPECT_GT(outcome.result.mean_response, 0.0);
  }
}

TEST(ExperimentTest, ParallelMatchesSerial) {
  std::vector<SweepPoint> points;
  for (const double ttr : {5.0, 25.0}) {
    SweepPoint point;
    point.x = ttr;
    point.config = SmallConfig(ttr);
    points.push_back(point);
  }
  const auto serial = RunSweep(points, FastProtocol(), {}, 1);
  const auto parallel = RunSweep(points, FastProtocol(), {}, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].result.mean_response,
              parallel[i].result.mean_response);
  }
}

TEST(ExperimentTest, ReplicationsAggregateAcrossSeeds) {
  const auto result = RunReplicated(SmallConfig(10.0), 4, FastProtocol());
  EXPECT_EQ(result.means.Count(), 4U);
  EXPECT_EQ(result.replications.size(), 4U);
  EXPECT_GT(result.means.Mean(), 0.0);
  EXPECT_GT(result.ci95_half_width, 0.0);
  // Seeds differ, so replications are not literally identical...
  EXPECT_GT(result.means.StdDev(), 0.0);
  // ...but they estimate the same quantity: CI is small relative to mean.
  EXPECT_LT(result.ci95_half_width, result.means.Mean());
}

TEST(ExperimentTest, SingleReplicationHasNoInterval) {
  const auto result = RunReplicated(SmallConfig(10.0), 1, FastProtocol());
  EXPECT_EQ(result.means.Count(), 1U);
  EXPECT_EQ(result.ci95_half_width, 0.0);
}

TEST(ExperimentTest, ReplicationIsDeterministic) {
  const auto a = RunReplicated(SmallConfig(10.0), 3, FastProtocol());
  const auto b = RunReplicated(SmallConfig(10.0), 3, FastProtocol());
  EXPECT_EQ(a.means.Mean(), b.means.Mean());
}

TEST(ExperimentDeathTest, ReplicationNeedsAtLeastOne) {
  EXPECT_DEATH(RunReplicated(SmallConfig(10.0), 0, FastProtocol()),
               "at least one");
}

TEST(ExperimentTest, MixedWarmupAndSteadyPoints) {
  std::vector<SweepPoint> points(2);
  points[0].config = SmallConfig(5.0);
  points[0].warmup_run = false;
  points[1].config = SmallConfig(5.0);
  points[1].warmup_run = true;
  const auto outcomes = RunSweep(points, FastProtocol());
  EXPECT_TRUE(outcomes[0].result.warmup.empty());
  EXPECT_FALSE(outcomes[1].result.warmup.empty());
}

}  // namespace
}  // namespace bdisk::core
