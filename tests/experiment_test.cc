#include "core/experiment.h"

#include <stdexcept>

#include <gtest/gtest.h>

namespace bdisk::core {
namespace {

SystemConfig SmallConfig(double ttr) {
  SystemConfig config;
  config.server_db_size = 100;
  config.disks = broadcast::DiskConfig{{10, 40, 50}, {3, 2, 1}};
  config.cache_size = 10;
  config.server_queue_size = 10;
  config.mc_think_time = 5.0;
  config.think_time_ratio = ttr;
  config.seed = 7;
  return config;
}

SteadyStateProtocol FastProtocol() {
  SteadyStateProtocol protocol;
  protocol.post_fill_accesses = 100;
  protocol.min_measured_accesses = 1000;
  protocol.max_measured_accesses = 3000;
  protocol.batch_size = 500;
  protocol.tolerance = 0.1;
  return protocol;
}

TEST(ExperimentTest, EmptySweep) {
  EXPECT_TRUE(RunSweep({}).empty());
}

TEST(ExperimentTest, OutcomesKeepInputOrderAndLabels) {
  std::vector<SweepPoint> points;
  for (const double ttr : {5.0, 10.0, 20.0}) {
    SweepPoint point;
    point.curve = "IPP";
    point.x = ttr;
    point.config = SmallConfig(ttr);
    points.push_back(point);
  }
  const auto outcomes = RunSweep(points, FastProtocol());
  ASSERT_EQ(outcomes.size(), 3U);
  EXPECT_EQ(outcomes[0].point.x, 5.0);
  EXPECT_EQ(outcomes[1].point.x, 10.0);
  EXPECT_EQ(outcomes[2].point.x, 20.0);
  for (const auto& outcome : outcomes) {
    EXPECT_EQ(outcome.point.curve, "IPP");
    EXPECT_GT(outcome.result.mean_response, 0.0);
  }
}

TEST(ExperimentTest, ParallelMatchesSerial) {
  std::vector<SweepPoint> points;
  for (const double ttr : {5.0, 25.0}) {
    SweepPoint point;
    point.x = ttr;
    point.config = SmallConfig(ttr);
    points.push_back(point);
  }
  const auto serial = RunSweep(points, FastProtocol(), {}, 1);
  const auto parallel = RunSweep(points, FastProtocol(), {}, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].result.mean_response,
              parallel[i].result.mean_response);
  }
}

TEST(ExperimentTest, BadPointSurfacesAsExceptionNotCrash) {
  // A worker hitting an invalid config must not std::terminate the
  // process; the failure is rethrown on the calling thread.
  std::vector<SweepPoint> points(3);
  points[0].config = SmallConfig(5.0);
  points[1].config = SmallConfig(5.0);
  points[1].config.pull_bw = 2.0;  // Fails Validate().
  points[2].config = SmallConfig(5.0);
  for (const unsigned threads : {1U, 4U}) {
    EXPECT_THROW(RunSweep(points, FastProtocol(), {}, threads),
                 std::invalid_argument)
        << "num_threads=" << threads;
  }
}

// Satellite of the fusion PR: a small fig03-style grid (all three delivery
// modes x two loads, Table-3 shape scaled to db=100) must produce
// bit-identical outcomes whether the sweep runs on 1 thread or 4 — the
// shared artifact cache and work-stealing order must not leak into
// results.
std::vector<SweepPoint> SmallFig03Grid() {
  std::vector<SweepPoint> points;
  const DeliveryMode modes[] = {DeliveryMode::kPurePush,
                                DeliveryMode::kPurePull, DeliveryMode::kIpp};
  for (const DeliveryMode mode : modes) {
    for (const double ttr : {10.0, 50.0}) {
      SweepPoint point;
      point.curve = DeliveryModeName(mode);
      point.x = ttr;
      point.config = SmallConfig(ttr);
      point.config.mode = mode;
      points.push_back(point);
    }
  }
  return points;
}

TEST(ExperimentTest, SweepIsBitIdenticalAcrossThreadCounts) {
  const auto points = SmallFig03Grid();
  const auto serial = RunSweep(points, FastProtocol(), {}, 1);
  const auto parallel = RunSweep(points, FastProtocol(), {}, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(serial[i].point.curve + " ttr=" +
                 std::to_string(serial[i].point.x));
    const RunResult& a = serial[i].result;
    const RunResult& b = parallel[i].result;
    EXPECT_EQ(a.mean_response, b.mean_response);
    EXPECT_EQ(a.response_stats.Variance(), b.response_stats.Variance());
    EXPECT_EQ(a.mc_accesses, b.mc_accesses);
    EXPECT_EQ(a.requests_submitted, b.requests_submitted);
    EXPECT_EQ(a.requests_dropped, b.requests_dropped);
    EXPECT_EQ(a.push_slot_frac, b.push_slot_frac);
    EXPECT_EQ(a.pull_slot_frac, b.pull_slot_frac);
    EXPECT_EQ(a.sim_time_end, b.sim_time_end);
    EXPECT_EQ(a.kernel.events_executed, b.kernel.events_executed);
    EXPECT_EQ(a.kernel.lazy_arrivals_fused, b.kernel.lazy_arrivals_fused);
  }
}

TEST(ExperimentTest, ArtifactCacheSharesAcrossSeedsAndLoads) {
  ArtifactCache cache;
  SystemConfig config = SmallConfig(10.0);
  const auto base = cache.Get(config);
  // Seed and load do not enter the artifacts.
  SystemConfig other = config;
  other.seed = config.seed + 17;
  other.think_time_ratio = 250.0;
  EXPECT_EQ(cache.Get(other), base);
  // The database size does.
  SystemConfig resized = config;
  resized.server_db_size = 200;
  resized.disks = broadcast::DiskConfig{{20, 80, 100}, {3, 2, 1}};
  EXPECT_NE(cache.Get(resized), base);
  // Pure-Pull has no program at all: distinct artifacts, shared among
  // pull points regardless of disk shape.
  SystemConfig pull = config;
  pull.mode = DeliveryMode::kPurePull;
  SystemConfig pull_other_disks = pull;
  pull_other_disks.disks = broadcast::DiskConfig{{50, 30, 20}, {5, 3, 1}};
  EXPECT_NE(cache.Get(pull), base);
  EXPECT_EQ(cache.Get(pull_other_disks), cache.Get(pull));
}

TEST(ExperimentTest, ReplicationsAggregateAcrossSeeds) {
  const auto result = RunReplicated(SmallConfig(10.0), 4, FastProtocol());
  EXPECT_EQ(result.means.Count(), 4U);
  EXPECT_EQ(result.replications.size(), 4U);
  EXPECT_GT(result.means.Mean(), 0.0);
  EXPECT_GT(result.ci95_half_width, 0.0);
  // Seeds differ, so replications are not literally identical...
  EXPECT_GT(result.means.StdDev(), 0.0);
  // ...but they estimate the same quantity: CI is small relative to mean.
  EXPECT_LT(result.ci95_half_width, result.means.Mean());
}

TEST(ExperimentTest, SingleReplicationHasNoInterval) {
  const auto result = RunReplicated(SmallConfig(10.0), 1, FastProtocol());
  EXPECT_EQ(result.means.Count(), 1U);
  EXPECT_EQ(result.ci95_half_width, 0.0);
}

TEST(ExperimentTest, ReplicationIsDeterministic) {
  const auto a = RunReplicated(SmallConfig(10.0), 3, FastProtocol());
  const auto b = RunReplicated(SmallConfig(10.0), 3, FastProtocol());
  EXPECT_EQ(a.means.Mean(), b.means.Mean());
}

TEST(ExperimentTest, ReplicationIntervalIsThreadCountInvariant) {
  // The reported confidence interval is a published number; it must not
  // wobble with the machine's core count.
  const auto serial = RunReplicated(SmallConfig(10.0), 4, FastProtocol(), 1);
  const auto parallel =
      RunReplicated(SmallConfig(10.0), 4, FastProtocol(), 4);
  EXPECT_EQ(serial.means.Mean(), parallel.means.Mean());
  EXPECT_EQ(serial.ci95_half_width, parallel.ci95_half_width);
  ASSERT_EQ(serial.replications.size(), parallel.replications.size());
  for (std::size_t i = 0; i < serial.replications.size(); ++i) {
    EXPECT_EQ(serial.replications[i].mean_response,
              parallel.replications[i].mean_response);
  }
}

TEST(ExperimentDeathTest, ReplicationNeedsAtLeastOne) {
  EXPECT_DEATH(RunReplicated(SmallConfig(10.0), 0, FastProtocol()),
               "at least one");
}

TEST(ExperimentTest, MixedWarmupAndSteadyPoints) {
  std::vector<SweepPoint> points(2);
  points[0].config = SmallConfig(5.0);
  points[0].warmup_run = false;
  points[1].config = SmallConfig(5.0);
  points[1].warmup_run = true;
  const auto outcomes = RunSweep(points, FastProtocol());
  EXPECT_TRUE(outcomes[0].result.warmup.empty());
  EXPECT_FALSE(outcomes[1].result.warmup.empty());
}

}  // namespace
}  // namespace bdisk::core
