#include "cache/value_functions.h"

#include <gtest/gtest.h>

namespace bdisk::cache {
namespace {

TEST(ValueFunctionsTest, PixDividesByBroadcastFrequency) {
  const broadcast::BroadcastProgram program({0, 0, 1, 0, 1, 2}, 4);
  const std::vector<double> probs = {0.4, 0.3, 0.2, 0.1};
  const auto values = PixValues(probs, program);
  EXPECT_DOUBLE_EQ(values[0], 0.4 / 3.0);
  EXPECT_DOUBLE_EQ(values[1], 0.3 / 2.0);
  EXPECT_DOUBLE_EQ(values[2], 0.2 / 1.0);
}

TEST(ValueFunctionsTest, OffSchedulePagesGetHighValue) {
  const broadcast::BroadcastProgram program({0, 0, 1, 0, 1, 2}, 4);
  const std::vector<double> probs = {0.4, 0.3, 0.2, 0.1};
  const auto values = PixValues(probs, program);
  // Page 3 is never broadcast -> x = kOffScheduleFrequency = 0.5, making it
  // more valuable than an equal-probability once-per-cycle page.
  EXPECT_DOUBLE_EQ(values[3], 0.1 / kOffScheduleFrequency);
  EXPECT_GT(values[3], 0.1 / 1.0);
}

TEST(ValueFunctionsTest, PValuesAreProbabilities) {
  const std::vector<double> probs = {0.7, 0.3};
  EXPECT_EQ(PValues(probs), probs);
}

TEST(ValueFunctionsTest, PixOrderingCanInvertProbabilityOrdering) {
  // Paper §2.1: pa=0.3/xa=4 < pb=0.1/xb=1 despite pa > pb.
  const broadcast::BroadcastProgram program({0, 0, 0, 0, 1}, 2);
  const std::vector<double> probs = {0.3, 0.1};
  const auto values = PixValues(probs, program);
  EXPECT_LT(values[0], values[1]);
}

TEST(ValueFunctionsDeathTest, RejectsSizeMismatch) {
  const broadcast::BroadcastProgram program({0}, 1);
  EXPECT_DEATH(PixValues({0.5, 0.5}, program), "cover");
}

}  // namespace
}  // namespace bdisk::cache
