#include "analysis/response_model.h"

#include <gtest/gtest.h>

#include "core/system.h"

namespace bdisk::analysis {
namespace {

core::SystemConfig SmallConfig(double ttr) {
  core::SystemConfig config;
  config.server_db_size = 100;
  config.disks = broadcast::DiskConfig{{10, 40, 50}, {3, 2, 1}};
  config.cache_size = 10;
  config.server_queue_size = 10;
  config.mc_think_time = 5.0;
  config.think_time_ratio = ttr;
  config.seed = 31;
  return config;
}

core::SteadyStateProtocol FastProtocol() {
  core::SteadyStateProtocol protocol;
  protocol.post_fill_accesses = 200;
  protocol.min_measured_accesses = 2000;
  protocol.max_measured_accesses = 8000;
  protocol.batch_size = 500;
  protocol.tolerance = 0.05;
  return protocol;
}

TEST(ResponseModelTest, PurePushMatchesAnalyticExpectation) {
  core::SystemConfig config = SmallConfig(10.0);
  config.mode = core::DeliveryMode::kPurePush;
  const ResponsePrediction prediction = PredictResponse(config);
  EXPECT_EQ(prediction.request_rate, 0.0);
  EXPECT_EQ(prediction.blocking_prob, 0.0);
  EXPECT_EQ(prediction.push_slowdown, 1.0);

  core::System system(config);
  const double simulated =
      system.RunSteadyState(FastProtocol()).mean_response;
  EXPECT_NEAR(prediction.mean_response, simulated,
              0.25 * simulated);
}

TEST(ResponseModelTest, PurePullLightLoadIsAboutTwoUnitsPerMiss) {
  core::SystemConfig config = SmallConfig(2.0);
  config.mode = core::DeliveryMode::kPurePull;
  const ResponsePrediction prediction = PredictResponse(config);
  EXPECT_LT(prediction.blocking_prob, 0.01);
  // mean ~ miss_rate * ~2 units.
  EXPECT_GT(prediction.mean_response, prediction.miss_rate * 1.0);
  EXPECT_LT(prediction.mean_response, prediction.miss_rate * 4.0);
}

TEST(ResponseModelTest, PredictsSaturationOrdering) {
  // The model must reproduce the central qualitative result: pull beats
  // push at light load, push beats pull at saturation.
  core::SystemConfig pull_config = SmallConfig(5.0);
  pull_config.mode = core::DeliveryMode::kPurePull;
  core::SystemConfig push_config = SmallConfig(5.0);
  push_config.mode = core::DeliveryMode::kPurePush;

  const double pull_light = PredictResponse(pull_config).mean_response;
  const double push_light = PredictResponse(push_config).mean_response;
  EXPECT_LT(pull_light, push_light / 5.0);

  pull_config.think_time_ratio = 500.0;
  push_config.think_time_ratio = 500.0;
  const double pull_heavy = PredictResponse(pull_config).mean_response;
  const double push_heavy = PredictResponse(push_config).mean_response;
  EXPECT_GT(pull_heavy, push_heavy);
}

TEST(ResponseModelTest, BlockingGrowsWithLoad) {
  double prev = -1.0;
  for (const double ttr : {5.0, 50.0, 200.0, 500.0}) {
    core::SystemConfig config = SmallConfig(ttr);
    config.mode = core::DeliveryMode::kPurePull;
    const double blocking = PredictResponse(config).blocking_prob;
    EXPECT_GE(blocking, prev) << ttr;
    prev = blocking;
  }
  EXPECT_GT(prev, 0.3);
}

TEST(ResponseModelTest, ThresholdCutsRequestRate) {
  core::SystemConfig config = SmallConfig(100.0);
  config.thres_perc = 0.0;
  const double rate_t0 = PredictResponse(config).request_rate;
  config.thres_perc = 0.35;
  const double rate_t35 = PredictResponse(config).request_rate;
  EXPECT_LT(rate_t35, rate_t0);
  EXPECT_GT(rate_t35, 0.0);
}

TEST(ResponseModelTest, PullBwSlowdownReflected) {
  core::SystemConfig config = SmallConfig(200.0);
  config.pull_bw = 0.5;
  const ResponsePrediction prediction = PredictResponse(config);
  // Saturated: pull share ~ pull_bw, so the disk spins ~2x slower.
  EXPECT_GT(prediction.push_slowdown, 1.5);
  EXPECT_LT(prediction.push_slowdown, 2.2);
}

TEST(ResponseModelTest, TracksSimulatedIppWithinBand) {
  // Coarse end-to-end validation: prediction within a factor-2 band of the
  // simulation at a light and a heavy operating point.
  for (const double ttr : {5.0, 200.0}) {
    core::SystemConfig config = SmallConfig(ttr);
    config.pull_bw = 0.5;
    config.thres_perc = 0.25;
    const double predicted = PredictResponse(config).mean_response;
    core::System system(config);
    const double simulated =
        system.RunSteadyState(FastProtocol()).mean_response;
    EXPECT_GT(predicted, simulated / 2.5) << "ttr=" << ttr;
    EXPECT_LT(predicted, simulated * 2.5 + 5.0) << "ttr=" << ttr;
  }
}

TEST(ResponseModelDeathTest, RejectsInvalidConfig) {
  core::SystemConfig config = SmallConfig(10.0);
  config.pull_bw = 5.0;
  EXPECT_DEATH(PredictResponse(config), "pull_bw");
}

}  // namespace
}  // namespace bdisk::analysis
