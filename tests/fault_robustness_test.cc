// Client retry/timeout/backoff engine and server degraded-mode/outage
// behaviour, pinned at the unit level with scripted servers and injectors:
// exact timeout arithmetic (jitter off), the backoff cap, deterministic
// jitter per stream, abandon vs. fallback, dead-backchannel declaration and
// snoop revival, shed hysteresis, and outage blackout/brownout slots.

#include <gtest/gtest.h>

#include "client/measured_client.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "server/broadcast_server.h"
#include "sim/simulator.h"

namespace bdisk::client {
namespace {

using broadcast::BroadcastProgram;
using fault::FaultInjector;
using fault::FaultPlan;
using server::BroadcastServer;
using server::SubmitResult;
using workload::AccessPattern;

AccessPattern AlwaysPage(std::size_t db_size, PageId page) {
  std::vector<double> probs(db_size, 0.0);
  probs[page] = 1.0;
  return AccessPattern(probs);
}

FaultInjector LossyBackchannel() {
  FaultPlan plan;
  plan.request_loss = 1.0;
  return FaultInjector(plan, sim::Rng(42));
}

MeasuredClientOptions PullOptions() {
  MeasuredClientOptions options;
  options.cache_size = 2;
  options.think_time = 5.0;
  options.policy = cache::PolicyKind::kP;
  options.use_backchannel = true;
  return options;
}

TEST(RobustClientTest, TimeoutsBackOffExponentiallyThenAbandon) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({}, 4), 1.0, 10,
                         sim::Rng(1));
  FaultInjector injector = LossyBackchannel();
  server.SetFaultInjector(&injector);

  MeasuredClient mc(&sim, &server, AlwaysPage(4, 2), PullOptions(),
                    sim::Rng(2));
  RobustPullOptions robust;
  robust.timeout = 10.0;
  robust.max_retries = 2;
  robust.backoff = 2.0;
  robust.backoff_cap = 100.0;
  robust.jitter = 0.0;
  robust.dead_threshold = 0;  // Never declare the backchannel dead.
  robust.probe_interval = 100.0;
  mc.EnableRobustness(robust, sim::Rng(5));
  mc.SetRecording(true);
  mc.Start();

  // Every pull is lost: timeouts at t=10, 10+20=30, 30+40=70; the third
  // exhausts the retry budget and the unscheduled request is abandoned
  // with the elapsed 70 units as its explicit-timeout response.
  sim.RunUntil(74.0);
  EXPECT_EQ(mc.TimeoutsFired(), 3U);
  EXPECT_EQ(mc.RetriesSent(), 2U);
  EXPECT_EQ(mc.Abandoned(), 1U);
  EXPECT_EQ(mc.Fallbacks(), 0U);
  ASSERT_EQ(mc.response_times().Count(), 1U);
  EXPECT_EQ(mc.response_times().Mean(), 70.0);
  EXPECT_EQ(injector.RequestsLost(), 3U);
}

TEST(RobustClientTest, BackoffCapBoundsEveryArmedTimeout) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({}, 4), 1.0, 10,
                         sim::Rng(1));
  FaultInjector injector = LossyBackchannel();
  server.SetFaultInjector(&injector);

  MeasuredClient mc(&sim, &server, AlwaysPage(4, 2), PullOptions(),
                    sim::Rng(2));
  RobustPullOptions robust;
  robust.timeout = 10.0;
  robust.max_retries = 3;
  robust.backoff = 10.0;  // Uncapped would arm 10, 100, 1000, 10000.
  robust.backoff_cap = 25.0;
  robust.jitter = 0.0;
  robust.dead_threshold = 0;
  robust.probe_interval = 100.0;
  mc.EnableRobustness(robust, sim::Rng(5));
  mc.SetRecording(true);
  mc.Start();

  // Capped arms: 10, 25, 25, 25 -> abandon at t=85.
  sim.RunUntil(89.0);
  EXPECT_EQ(mc.TimeoutsFired(), 4U);
  ASSERT_EQ(mc.response_times().Count(), 1U);
  EXPECT_EQ(mc.response_times().Mean(), 85.0);
}

TEST(RobustClientTest, JitterIsDeterministicPerRetryStream) {
  const auto run_once = [](std::uint64_t retry_seed) {
    sim::Simulator sim;
    BroadcastServer server(&sim, BroadcastProgram({}, 4), 1.0, 10,
                           sim::Rng(1));
    FaultInjector injector = LossyBackchannel();
    server.SetFaultInjector(&injector);
    MeasuredClient mc(&sim, &server, AlwaysPage(4, 2), PullOptions(),
                      sim::Rng(2));
    RobustPullOptions robust;
    robust.timeout = 10.0;
    robust.max_retries = 2;
    robust.backoff = 2.0;
    robust.backoff_cap = 100.0;
    robust.jitter = 0.5;
    robust.dead_threshold = 0;
    robust.probe_interval = 100.0;
    mc.EnableRobustness(robust, sim::Rng(retry_seed));
    mc.SetRecording(true);
    mc.Start();
    sim.RunUntil(200.0);
    return mc.response_times().Mean();
  };
  const double a = run_once(5);
  const double b = run_once(5);
  const double c = run_once(6);
  EXPECT_EQ(a, b);  // Same retry stream: bit-identical schedule.
  EXPECT_NE(a, c);  // Different stream: jitter actually moved the timers.
  // Jitter only ever stretches: the jittered abandon lands after the
  // jitter-free 70 and within the +50% bound.
  EXPECT_GT(a, 70.0);
  EXPECT_LT(a, 105.0);
}

TEST(RobustClientTest, DeliveryCancelsTheTimeoutForGood) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({}, 4), 1.0, 10,
                         sim::Rng(1));  // Healthy backchannel.
  MeasuredClient mc(&sim, &server, AlwaysPage(4, 2), PullOptions(),
                    sim::Rng(2));
  RobustPullOptions robust;
  robust.timeout = 10.0;
  robust.jitter = 0.0;
  robust.backoff_cap = 80.0;
  robust.probe_interval = 100.0;
  mc.EnableRobustness(robust, sim::Rng(5));
  mc.SetRecording(true);
  mc.Start();

  // The pull is served at t=2, well before the t=10 timeout; no timeout
  // may ever fire afterwards (the access completes, later ones are hits).
  sim.RunUntil(50.0);
  EXPECT_GE(mc.response_times().Count(), 2U);
  EXPECT_EQ(mc.response_times().Max(), 2.0);
  EXPECT_EQ(mc.TimeoutsFired(), 0U);
  EXPECT_EQ(mc.Abandoned(), 0U);
}

TEST(RobustClientTest, ScheduledPageFallsBackToTheBroadcast) {
  sim::Simulator sim;
  // Page 2 is on the schedule (delivered at t=3), but the backchannel is
  // dead to the world; with a sub-slot timeout the retry budget burns out
  // first and the client falls back to waiting on the push.
  BroadcastServer server(&sim, BroadcastProgram({0, 1, 2, 3}, 4), 0.5, 10,
                         sim::Rng(1));
  FaultInjector injector = LossyBackchannel();
  server.SetFaultInjector(&injector);

  MeasuredClientOptions options = PullOptions();
  options.policy = cache::PolicyKind::kPix;
  MeasuredClient mc(&sim, &server, AlwaysPage(4, 2), options, sim::Rng(2));
  RobustPullOptions robust;
  robust.timeout = 0.25;
  robust.max_retries = 1;
  robust.backoff = 1.0;
  robust.backoff_cap = 0.25;
  robust.jitter = 0.0;
  robust.dead_threshold = 0;
  robust.probe_interval = 100.0;
  mc.EnableRobustness(robust, sim::Rng(5));
  mc.SetRecording(true);
  mc.Start();

  sim.RunUntil(4.0);
  EXPECT_EQ(mc.TimeoutsFired(), 2U);
  EXPECT_EQ(mc.Fallbacks(), 1U);
  EXPECT_EQ(mc.Abandoned(), 0U);
  // The push slot serves the fallen-back request: response is the full
  // 3-unit broadcast wait, not a timeout artifact.
  ASSERT_EQ(mc.response_times().Count(), 1U);
  EXPECT_EQ(mc.response_times().Mean(), 3.0);
}

TEST(RobustClientTest, DeadBackchannelIsDeclaredAndRevivedBySnoop) {
  sim::Simulator sim;
  // Page 4 is unscheduled: pulls are its only path, so every fully-failed
  // request is a consecutive backchannel failure.
  BroadcastServer server(&sim, BroadcastProgram({0, 1, 2, 3}, 6), 1.0, 10,
                         sim::Rng(1));
  FaultInjector injector = LossyBackchannel();
  server.SetFaultInjector(&injector);

  MeasuredClientOptions options = PullOptions();
  MeasuredClient mc(&sim, &server, AlwaysPage(6, 4), options, sim::Rng(2));
  RobustPullOptions robust;
  robust.timeout = 2.0;
  robust.max_retries = 0;
  robust.backoff = 1.0;
  robust.backoff_cap = 2.0;
  robust.jitter = 0.0;
  robust.dead_threshold = 2;
  robust.probe_interval = 50.0;
  mc.EnableRobustness(robust, sim::Rng(5));
  mc.SetRecording(true);
  mc.Start();

  // t=0 request 1 (lost, abandoned at 2); t=7 request 2 (lost, abandoned
  // at 9) -> two consecutive failures, backchannel declared dead.
  sim.RunUntil(10.0);
  EXPECT_TRUE(mc.BackchannelDead());
  EXPECT_EQ(mc.BackchannelDeaths(), 1U);
  EXPECT_EQ(mc.Abandoned(), 2U);

  // While dead, unscheduled pages still probe (pull is their only path).
  sim.RunUntil(15.0);  // t=14: request 3 probes, is lost, abandons at 16.
  EXPECT_GE(mc.ProbesSent(), 1U);

  // Heal the channel mid-run; the next probe reaches the queue, the pull
  // slot answers, and snooping that pull-kind delivery revives the
  // backchannel.
  sim.ScheduleAt(17.0, [&server] { server.SetFaultInjector(nullptr); });
  sim.RunUntil(30.0);
  EXPECT_FALSE(mc.BackchannelDead());
  EXPECT_EQ(mc.BackchannelRecoveries(), 1U);
}

TEST(RobustClientTest, BackoffCapHitExactlyAtTheBoundaryAttempt) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({}, 4), 1.0, 10,
                         sim::Rng(1));
  FaultInjector injector = LossyBackchannel();
  server.SetFaultInjector(&injector);

  MeasuredClient mc(&sim, &server, AlwaysPage(4, 2), PullOptions(),
                    sim::Rng(2));
  RobustPullOptions robust;
  robust.timeout = 10.0;
  robust.max_retries = 3;
  robust.backoff = 2.0;
  robust.backoff_cap = 40.0;  // == timeout * backoff^2: attempt 2 reaches
                              // the cap by arithmetic, attempt 3 by clamp.
  robust.jitter = 0.0;
  robust.dead_threshold = 0;
  robust.probe_interval = 100.0;
  mc.EnableRobustness(robust, sim::Rng(5));
  mc.SetRecording(true);
  mc.Start();

  // Armed delays 10, 20, 40, 40: the boundary attempt and the clamped one
  // are identical (exact doubling in binary floating point, no epsilon).
  // Timeouts fire at 10, 30, 70, 110; the unscheduled request abandons at
  // 110 with the elapsed time as its explicit-timeout response.
  sim.RunUntil(114.0);
  EXPECT_EQ(mc.TimeoutsFired(), 4U);
  EXPECT_EQ(mc.RetriesSent(), 3U);
  EXPECT_EQ(mc.Abandoned(), 1U);
  ASSERT_EQ(mc.response_times().Count(), 1U);
  EXPECT_EQ(mc.response_times().Mean(), 110.0);
}

TEST(RobustClientTest, SnoopedPushDeliveryCancelsAnArmedRetransmit) {
  sim::Simulator sim;
  // Page 2 rides the push schedule (delivered at t=3) while the
  // backchannel eats every pull. The race under test: a retransmit has
  // already been sent and its follow-up timer is armed for t=5 when the
  // snooped push delivery lands at t=3 — the delivery must win, cancel
  // the timer, and no later timeout may fire for the completed request.
  BroadcastServer server(&sim, BroadcastProgram({0, 1, 2, 3}, 4), 0.5, 10,
                         sim::Rng(1));
  FaultInjector injector = LossyBackchannel();
  server.SetFaultInjector(&injector);

  MeasuredClientOptions options = PullOptions();
  options.policy = cache::PolicyKind::kPix;
  MeasuredClient mc(&sim, &server, AlwaysPage(4, 2), options, sim::Rng(2));
  RobustPullOptions robust;
  robust.timeout = 2.5;
  robust.max_retries = 5;
  robust.backoff = 1.0;
  robust.backoff_cap = 2.5;
  robust.jitter = 0.0;
  robust.dead_threshold = 0;
  robust.probe_interval = 100.0;
  mc.EnableRobustness(robust, sim::Rng(5));
  mc.SetRecording(true);
  mc.Start();

  // t=0 pull (lost); t=2.5 timeout, retransmit (lost), timer re-armed for
  // t=5; t=3 the push slot delivers page 2 first.
  sim.RunUntil(20.0);
  EXPECT_EQ(mc.TimeoutsFired(), 1U);
  EXPECT_EQ(mc.RetriesSent(), 1U);
  EXPECT_EQ(mc.Abandoned(), 0U);
  EXPECT_EQ(mc.Fallbacks(), 0U);
  EXPECT_GE(mc.response_times().Count(), 1U);
  EXPECT_EQ(mc.response_times().Max(), 3.0);
}

}  // namespace
}  // namespace bdisk::client

namespace bdisk::server {
namespace {

using broadcast::BroadcastProgram;
using fault::FaultInjector;
using fault::FaultPlan;

TEST(DegradedModeTest, HysteresisEntersHighExitsLow) {
  sim::Simulator sim;
  std::vector<PageId> schedule(10);
  for (PageId p = 0; p < 10; ++p) schedule[p] = p;
  BroadcastServer server(&sim, BroadcastProgram(std::move(schedule), 20),
                         1.0, 10, sim::Rng(1));
  FaultPlan plan;
  plan.shed_hi = 0.5;  // Enter at depth 5; exit at 2 (auto lo = 0.25).
  FaultInjector injector(plan, sim::Rng(2));
  server.SetFaultInjector(&injector);

  // Unscheduled pages (>= 10) are never shed; five of them cross the
  // enter watermark.
  for (PageId p = 10; p < 14; ++p) {
    EXPECT_EQ(server.SubmitRequest(p), SubmitResult::kAccepted);
    EXPECT_FALSE(server.InDegradedMode());
  }
  EXPECT_EQ(server.SubmitRequest(14), SubmitResult::kAccepted);
  EXPECT_TRUE(server.InDegradedMode());
  EXPECT_EQ(server.DegradedEnters(), 1U);

  // Degraded: a scheduled page (push safety net within the cycle) sheds;
  // an unscheduled one is still admitted.
  EXPECT_EQ(server.SubmitRequest(0), SubmitResult::kShedOverload);
  EXPECT_EQ(server.queue().ShedCount(), 1U);
  EXPECT_EQ(server.SubmitRequest(15), SubmitResult::kAccepted);

  // pull_bw = 1 drains one page per slot: depth 6 -> 2 after 4 slots,
  // crossing the exit watermark.
  sim.RunUntil(5.0);
  EXPECT_FALSE(server.InDegradedMode());
  EXPECT_EQ(server.DegradedExits(), 1U);
  // Healthy again: the same scheduled page is admitted.
  EXPECT_EQ(server.SubmitRequest(0), SubmitResult::kAccepted);
  EXPECT_EQ(server.queue().ShedCount(), 1U);
}

TEST(OutageTest, BlackoutIdlesSlotsAndDropsArrivals) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1, 2, 3}, 6), 0.0, 10,
                         sim::Rng(1));
  FaultPlan plan;
  plan.outage_start = 10.0;
  plan.outage_duration = 5.0;
  FaultInjector injector(plan, sim::Rng(2));
  server.SetFaultInjector(&injector);

  sim.ScheduleAt(12.5, [&server] { server.SubmitRequest(4); });
  sim.RunUntil(20.0);
  EXPECT_EQ(server.OutagesStarted(), 1U);
  EXPECT_EQ(server.OutageSlots(), 5U);
  EXPECT_EQ(server.IdleSlots(), 5U);  // Blackout slots are the only idles.
  EXPECT_EQ(server.queue().OutageDropCount(), 1U);
  EXPECT_EQ(server.queue().AcceptedCount(), 0U);
}

TEST(OutageTest, BrownoutKeepsPushingButSuspendsPull) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1, 2, 3}, 6), 1.0, 10,
                         sim::Rng(1));
  FaultPlan plan;
  plan.outage_start = 10.0;
  plan.outage_duration = 5.0;
  plan.brownout = true;
  FaultInjector injector(plan, sim::Rng(2));
  server.SetFaultInjector(&injector);

  // Two pulls queued just before the window: a healthy server would serve
  // them at t=10 and t=11; the brownout pushes through the window instead
  // and serves them the moment it lifts.
  sim.ScheduleAt(9.5, [&server] {
    server.SubmitRequest(4);
    server.SubmitRequest(5);
  });
  sim.RunUntil(20.0);
  EXPECT_EQ(server.OutageSlots(), 5U);
  EXPECT_EQ(server.IdleSlots(), 0U);  // Never idle: the schedule runs on.
  EXPECT_EQ(server.PullSlots(), 2U);
  EXPECT_TRUE(server.queue().Empty());
}

}  // namespace
}  // namespace bdisk::server
