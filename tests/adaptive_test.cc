// Unit tests for the adaptive controllers (paper §6 extension) plus
// end-to-end behaviour through core::System.

#include <functional>

#include <gtest/gtest.h>

#include "adaptive/client_controller.h"
#include "adaptive/server_controller.h"
#include "core/system.h"

namespace bdisk::adaptive {
namespace {

using broadcast::BroadcastProgram;
using server::BroadcastServer;

// ------------------------------------------------------- ServerController

TEST(ServerControllerTest, LowersPullBwUnderDrops) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1}, 64), 0.5,
                         /*queue_capacity=*/4, sim::Rng(1));
  ServerControllerOptions options;
  options.control_period = 10.0;
  ServerController controller(&sim, &server, options);
  controller.Start();

  // Flood the queue so most submissions drop.
  std::function<void()> flood = [&] {
    for (broadcast::PageId p = 2; p < 40; ++p) server.SubmitRequest(p);
    sim.ScheduleAfter(1.0, [&flood] { flood(); });
  };
  sim.ScheduleAt(0.0, [&flood] { flood(); });
  sim.RunUntil(100.0);
  EXPECT_LT(server.pull_bw(), 0.5);
  EXPECT_GT(controller.Adjustments(), 0U);
}

TEST(ServerControllerTest, RaisesPullBwWhenIdle) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1}, 8), 0.3, 10,
                         sim::Rng(1));
  ServerControllerOptions options;
  options.control_period = 10.0;
  ServerController controller(&sim, &server, options);
  controller.Start();
  sim.RunUntil(200.0);  // No requests at all.
  EXPECT_GT(server.pull_bw(), 0.3);
  EXPECT_LE(server.pull_bw(), options.bw_max);
}

TEST(ServerControllerTest, RespectsClampRange) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1}, 8), 0.9, 10,
                         sim::Rng(1));
  ServerControllerOptions options;
  options.control_period = 5.0;
  options.bw_max = 0.95;
  ServerController controller(&sim, &server, options);
  controller.Start();
  sim.RunUntil(1000.0);
  EXPECT_LE(server.pull_bw(), options.bw_max);
  EXPECT_GE(server.pull_bw(), options.bw_min);
}

TEST(ServerControllerTest, CountsDecisions) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0}, 4), 0.5, 10,
                         sim::Rng(1));
  ServerControllerOptions options;
  options.control_period = 10.0;
  ServerController controller(&sim, &server, options);
  controller.Start();
  sim.RunUntil(100.0);
  EXPECT_EQ(controller.Decisions(), 10U);
}

TEST(ServerControllerDeathTest, RejectsBadOptions) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0}, 4), 0.5, 10,
                         sim::Rng(1));
  ServerControllerOptions options;
  options.control_period = 0.0;
  EXPECT_DEATH(ServerController(&sim, &server, options), "period");
  options = ServerControllerOptions{};
  options.bw_min = 0.0;
  EXPECT_DEATH(ServerController(&sim, &server, options), "clamp");
}

// ------------------------------------------------------- ClientController

TEST(ClientControllerTest, NoSignalMeansNoAdjustment) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1, 2, 3}, 4), 0.5, 10,
                         sim::Rng(1));
  client::MeasuredClientOptions mc_options;
  mc_options.cache_size = 2;
  mc_options.think_time = 5.0;
  mc_options.thres_perc = 0.25;
  workload::AccessPattern pattern({0.25, 0.25, 0.25, 0.25});
  client::MeasuredClient mc(&sim, &server, pattern, mc_options, sim::Rng(2));

  ClientControllerOptions options;
  options.control_period = 10.0;
  ClientController controller(&sim, &mc, options);
  controller.Start();
  // The client never starts, so PullWaitRatio stays 0.
  sim.RunUntil(100.0);
  EXPECT_EQ(controller.Adjustments(), 0U);
  EXPECT_EQ(mc.thres_perc(), 0.25);
}

TEST(ClientControllerDeathTest, RejectsBadOptions) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0}, 4), 0.5, 10,
                         sim::Rng(1));
  client::MeasuredClientOptions mc_options;
  mc_options.cache_size = 2;
  workload::AccessPattern pattern({1.0, 0.0, 0.0, 0.0});
  client::MeasuredClient mc(&sim, &server, pattern, mc_options, sim::Rng(2));
  ClientControllerOptions options;
  options.ratio_low = 0.9;
  options.ratio_high = 0.1;
  EXPECT_DEATH(ClientController(&sim, &mc, options), "ratio_low");
}

// ------------------------------------------------------------ End-to-end

core::SystemConfig AdaptiveConfig(double ttr) {
  core::SystemConfig config;
  config.server_db_size = 100;
  config.disks = broadcast::DiskConfig{{10, 40, 50}, {3, 2, 1}};
  config.cache_size = 10;
  config.server_queue_size = 10;
  config.mc_think_time = 5.0;
  config.think_time_ratio = ttr;
  config.seed = 77;
  config.adaptive_pull_bw = true;
  config.adaptive_threshold = true;
  config.server_controller.control_period = 160.0;
  config.client_controller.control_period = 160.0;
  return config;
}

core::SteadyStateProtocol FastProtocol() {
  core::SteadyStateProtocol protocol;
  protocol.post_fill_accesses = 500;
  protocol.min_measured_accesses = 3000;
  protocol.max_measured_accesses = 10000;
  protocol.batch_size = 1000;
  protocol.tolerance = 0.05;
  return protocol;
}

TEST(AdaptiveSystemTest, ControllersAreWiredAndRun) {
  core::System system(AdaptiveConfig(50.0));
  ASSERT_NE(system.server_controller(), nullptr);
  ASSERT_NE(system.client_controller(), nullptr);
  system.RunSteadyState(FastProtocol());
  EXPECT_GT(system.server_controller()->Decisions(), 10U);
  EXPECT_GT(system.client_controller()->Decisions(), 10U);
}

TEST(AdaptiveSystemTest, HeavyLoadDrivesKnobsConservative) {
  core::System system(AdaptiveConfig(500.0));
  system.RunSteadyState(FastProtocol());
  // Under saturation the server sheds pull bandwidth and/or the client
  // raises its threshold.
  EXPECT_TRUE(system.server().pull_bw() < 0.5 ||
              system.mc().thres_perc() > 0.0)
      << "bw=" << system.server().pull_bw()
      << " thres=" << system.mc().thres_perc();
}

TEST(AdaptiveSystemTest, LightLoadKeepsPullAggressive) {
  // TTR=2 in the scaled config: request rate ~0.15/unit vs 0.5 pull
  // service — genuinely light (TTR=5 here is already borderline, since VC
  // arrivals run at 1/unit).
  core::System system(AdaptiveConfig(2.0));
  const core::RunResult result = system.RunSteadyState(FastProtocol());
  EXPECT_GE(system.server().pull_bw(), 0.5);
  // And performance stays in pull-ish territory, far below Pure-Push.
  EXPECT_LT(result.mean_response, 40.0);
}

TEST(AdaptiveSystemTest, AdaptiveRobustAcrossExtremes) {
  // The adaptive system should avoid the catastrophic corner of each
  // static extreme: compare with static IPP bw=0.9,t=0 at heavy load.
  core::SystemConfig static_config = AdaptiveConfig(500.0);
  static_config.adaptive_pull_bw = false;
  static_config.adaptive_threshold = false;
  static_config.pull_bw = 0.9;
  static_config.thres_perc = 0.0;
  core::System static_system(static_config);
  const double static_heavy =
      static_system.RunSteadyState(FastProtocol()).mean_response;

  core::System adaptive_system(AdaptiveConfig(500.0));
  const double adaptive_heavy =
      adaptive_system.RunSteadyState(FastProtocol()).mean_response;
  EXPECT_LT(adaptive_heavy, static_heavy * 1.1);
}

TEST(AdaptiveSystemDeathTest, RejectsAdaptivePureModes) {
  core::SystemConfig config = AdaptiveConfig(10.0);
  config.mode = core::DeliveryMode::kPurePull;
  EXPECT_DEATH(core::System system(config), "adaptive");
}

}  // namespace
}  // namespace bdisk::adaptive
