#include "obs/span_assembler.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/system.h"
#include "obs/trace_sink.h"

namespace bdisk::obs {
namespace {

// Shorthand for scripting record streams by hand.
SpanRecord R(double t, SpanEvent ev, std::uint32_t client, std::uint32_t page,
             double v = 0.0) {
  return SpanRecord{t, ev, client, page, v};
}

constexpr std::uint32_t kMc = kMeasuredClientId;

// ------------------------------------------------------- scripted streams

TEST(SpanAssemblerTest, PullServedSpanCarriesPhases) {
  SpanAssembler assembler;
  assembler.FeedAll({
      R(10.0, SpanEvent::kRequest, kMc, 7),
      R(10.0, SpanEvent::kCacheMiss, kMc, 7),
      R(10.0, SpanEvent::kSubmitAccepted, kMc, 7),
      R(14.0, SpanEvent::kSlotPull, kNoClient, 7),
      R(15.0, SpanEvent::kDelivery, kMc, 7, 5.0),
  });
  const std::vector<RequestSpan> spans = assembler.Finish();
  ASSERT_EQ(spans.size(), 1U);
  const RequestSpan& s = spans[0];
  EXPECT_EQ(s.outcome, SpanOutcome::kPullServed);
  EXPECT_TRUE(s.submitted);
  EXPECT_FALSE(s.truncated);
  EXPECT_DOUBLE_EQ(s.QueueWait(), 4.0);   // submit 10 -> slot 14.
  EXPECT_DOUBLE_EQ(s.BroadcastWait(), 0.0);
  EXPECT_DOUBLE_EQ(s.Transmit(), 1.0);    // slot 14 -> delivery 15.
  EXPECT_DOUBLE_EQ(s.Other(), 0.0);
  EXPECT_DOUBLE_EQ(s.QueueWait() + s.BroadcastWait() + s.Transmit() + s.Other(),
                   s.response);
  EXPECT_EQ(assembler.OrphanRecords(), 0U);
}

TEST(SpanAssemblerTest, SnoopedAndPushServedUseBroadcastWait) {
  SpanAssembler assembler;
  assembler.FeedAll({
      // Filtered request served by another client's pull slot: snooped.
      R(10.0, SpanEvent::kRequest, kMc, 3),
      R(10.0, SpanEvent::kCacheMiss, kMc, 3),
      R(10.0, SpanEvent::kSubmitFiltered, kMc, 3),
      R(12.0, SpanEvent::kSlotPull, kNoClient, 3),
      R(13.0, SpanEvent::kDelivery, kMc, 3, 3.0),
      // Filtered request served by the push program.
      R(20.0, SpanEvent::kRequest, kMc, 4),
      R(20.0, SpanEvent::kCacheMiss, kMc, 4),
      R(20.0, SpanEvent::kSubmitFiltered, kMc, 4),
      R(25.0, SpanEvent::kSlotPush, kNoClient, 4),
      R(26.0, SpanEvent::kDelivery, kMc, 4, 6.0),
  });
  const std::vector<RequestSpan> spans = assembler.Finish();
  ASSERT_EQ(spans.size(), 2U);
  EXPECT_EQ(spans[0].outcome, SpanOutcome::kSnooped);
  EXPECT_TRUE(spans[0].filtered);
  EXPECT_DOUBLE_EQ(spans[0].BroadcastWait(), 2.0);
  EXPECT_DOUBLE_EQ(spans[0].QueueWait(), 0.0);
  EXPECT_EQ(spans[1].outcome, SpanOutcome::kPushServed);
  EXPECT_DOUBLE_EQ(spans[1].BroadcastWait(), 5.0);
  EXPECT_DOUBLE_EQ(spans[1].Transmit(), 1.0);
  EXPECT_DOUBLE_EQ(spans[1].Other(), 0.0);
}

TEST(SpanAssemblerTest, CacheHitClosesAtZeroResponse) {
  SpanAssembler assembler;
  assembler.FeedAll({
      R(5.0, SpanEvent::kRequest, kMc, 9),
      R(5.0, SpanEvent::kCacheHit, kMc, 9),
  });
  const std::vector<RequestSpan> spans = assembler.Finish();
  ASSERT_EQ(spans.size(), 1U);
  EXPECT_EQ(spans[0].outcome, SpanOutcome::kCacheHit);
  EXPECT_DOUBLE_EQ(spans[0].response, 0.0);
  EXPECT_DOUBLE_EQ(spans[0].delivery_time, 5.0);
}

TEST(SpanAssemblerTest, CoalescedDroppedAndRetrySubmitsAnnotateTheSpan) {
  SpanAssembler assembler;
  assembler.FeedAll({
      // First attempt coalesces into a queued pull from another client.
      R(10.0, SpanEvent::kRequest, kMc, 5),
      R(10.0, SpanEvent::kCacheMiss, kMc, 5),
      R(10.0, SpanEvent::kSubmitCoalesced, kMc, 5),
      R(13.0, SpanEvent::kSlotPull, kNoClient, 5),
      R(14.0, SpanEvent::kDelivery, kMc, 5, 4.0),
      // First attempt dropped (queue full); a retry gets accepted.
      R(20.0, SpanEvent::kRequest, kMc, 6),
      R(20.0, SpanEvent::kCacheMiss, kMc, 6),
      R(20.0, SpanEvent::kSubmitDropped, kMc, 6),
      R(30.0, SpanEvent::kRetry, kMc, 6),
      R(30.0, SpanEvent::kSubmitAccepted, kMc, 6),
      R(33.0, SpanEvent::kSlotPull, kNoClient, 6),
      R(34.0, SpanEvent::kDelivery, kMc, 6, 14.0),
  });
  const std::vector<RequestSpan> spans = assembler.Finish();
  ASSERT_EQ(spans.size(), 2U);
  EXPECT_TRUE(spans[0].coalesced);
  EXPECT_EQ(spans[0].outcome, SpanOutcome::kPullServed);
  EXPECT_FALSE(spans[1].coalesced);
  EXPECT_EQ(spans[1].drops, 1U);
  EXPECT_EQ(spans[1].retries, 1U);
  // Queue wait runs from the FIRST backchannel attempt (the drop), so the
  // retry interval is inside it, not lost.
  EXPECT_DOUBLE_EQ(spans[1].QueueWait(), 13.0);
  EXPECT_DOUBLE_EQ(spans[1].Other(), 0.0);
}

TEST(SpanAssemblerTest, StaleSlotBeforeRequestIsNeverBlamed) {
  SpanAssembler assembler;
  assembler.FeedAll({
      // Page 8 went out at t=5, BEFORE this request existed; with no later
      // slot record the delivery is complete but unattributable.
      R(5.0, SpanEvent::kSlotPull, kNoClient, 8),
      R(10.0, SpanEvent::kRequest, kMc, 8),
      R(10.0, SpanEvent::kCacheMiss, kMc, 8),
      R(10.0, SpanEvent::kSubmitAccepted, kMc, 8),
      R(12.0, SpanEvent::kDelivery, kMc, 8, 2.0),
  });
  const std::vector<RequestSpan> spans = assembler.Finish();
  ASSERT_EQ(spans.size(), 1U);
  EXPECT_TRUE(spans[0].truncated);
  EXPECT_TRUE(spans[0].Complete());
  EXPECT_LT(spans[0].slot_time, 0.0);
}

TEST(SpanAssemblerTest, VirtualClientSubmitsAreTalliedNotJoined) {
  SpanAssembler assembler;
  assembler.FeedAll({
      R(10.0, SpanEvent::kRequest, kMc, 2),
      R(10.0, SpanEvent::kCacheMiss, kMc, 2),
      R(10.0, SpanEvent::kSubmitAccepted, kMc, 2),
      // VC load on the same page: must not touch the MC's span.
      R(11.0, SpanEvent::kSubmitAccepted, kVirtualClientId, 2),
      R(11.5, SpanEvent::kSubmitCoalesced, kVirtualClientId, 2),
      R(12.0, SpanEvent::kSlotPull, kNoClient, 2),
      R(13.0, SpanEvent::kDelivery, kMc, 2, 3.0),
  });
  EXPECT_EQ(assembler.UnmatchedSubmits(), 2U);
  const std::vector<RequestSpan> spans = assembler.Finish();
  ASSERT_EQ(spans.size(), 1U);
  EXPECT_DOUBLE_EQ(spans[0].submit_time, 10.0);
  EXPECT_FALSE(spans[0].coalesced);
  EXPECT_EQ(assembler.OrphanRecords(), 0U);
}

TEST(SpanAssemblerTest, HeadlessRecordsOpenTruncatedSpansWhenInputClipped) {
  SpanAssembler assembler(/*input_truncated=*/true);
  assembler.FeedAll({
      // Span whose request fell off the ring: joins itself, flags truncated.
      R(50.0, SpanEvent::kSubmitAccepted, kMc, 1),
      R(52.0, SpanEvent::kSlotPull, kNoClient, 1),
      R(53.0, SpanEvent::kDelivery, kMc, 1, 9.0),
      // A later, fully-recorded request for the same key must start fresh.
      R(60.0, SpanEvent::kRequest, kMc, 1),
      R(60.0, SpanEvent::kCacheMiss, kMc, 1),
      R(60.0, SpanEvent::kSubmitAccepted, kMc, 1),
      R(62.0, SpanEvent::kSlotPull, kNoClient, 1),
      R(63.0, SpanEvent::kDelivery, kMc, 1, 3.0),
  });
  const std::vector<RequestSpan> spans = assembler.Finish();
  ASSERT_EQ(spans.size(), 2U);
  EXPECT_TRUE(spans[0].truncated);
  EXPECT_TRUE(spans[0].Complete());
  EXPECT_FALSE(spans[1].truncated);
  EXPECT_DOUBLE_EQ(spans[1].QueueWait(), 2.0);
  EXPECT_EQ(assembler.OrphanRecords(), 0U);

  const PhaseBreakdown b = Attribute(spans);
  EXPECT_EQ(b.spans, 1U);       // Truncated span excluded from the means...
  EXPECT_EQ(b.truncated, 1U);   // ...but still counted.
  EXPECT_DOUBLE_EQ(b.mean_response, 3.0);
}

TEST(SpanAssemblerTest, HeadlessRecordsAreOrphansWhenInputComplete) {
  SpanAssembler assembler(/*input_truncated=*/false);
  assembler.Feed(R(53.0, SpanEvent::kDelivery, kMc, 1, 9.0));
  EXPECT_EQ(assembler.OrphanRecords(), 1U);
  EXPECT_TRUE(assembler.Finish().empty());
}

TEST(SpanAssemblerTest, FreshRequestClosesStalePendingSpanAsTruncated) {
  SpanAssembler assembler(/*input_truncated=*/true);
  assembler.FeedAll({
      R(10.0, SpanEvent::kRequest, kMc, 4),
      R(10.0, SpanEvent::kCacheMiss, kMc, 4),
      // Tail of the first span lost; a second request for the key arrives.
      R(40.0, SpanEvent::kRequest, kMc, 4),
      R(40.0, SpanEvent::kCacheHit, kMc, 4),
  });
  const std::vector<RequestSpan> spans = assembler.Finish();
  ASSERT_EQ(spans.size(), 2U);
  EXPECT_TRUE(spans[0].truncated);
  EXPECT_FALSE(spans[0].Complete());
  EXPECT_EQ(spans[1].outcome, SpanOutcome::kCacheHit);
}

TEST(SpanAssemblerTest, FinishReturnsIncompleteSpansInRequestOrder) {
  SpanAssembler assembler;
  assembler.FeedAll({
      R(30.0, SpanEvent::kRequest, kMc, 2),
      R(10.0, SpanEvent::kRequest, 2, 9),
      R(20.0, SpanEvent::kRequest, 2, 1),
  });
  const std::vector<RequestSpan> spans = assembler.Finish();
  ASSERT_EQ(spans.size(), 3U);
  EXPECT_DOUBLE_EQ(spans[0].request_time, 10.0);
  EXPECT_DOUBLE_EQ(spans[1].request_time, 20.0);
  EXPECT_DOUBLE_EQ(spans[2].request_time, 30.0);
  for (const RequestSpan& s : spans) {
    EXPECT_EQ(s.outcome, SpanOutcome::kIncomplete);
  }
}

TEST(SpanAssemblerTest, AttributePhaseMeansSumToMeanResponse) {
  SpanAssembler assembler;
  assembler.FeedAll({
      R(0.0, SpanEvent::kRequest, kMc, 1),
      R(0.0, SpanEvent::kCacheHit, kMc, 1),
      R(10.0, SpanEvent::kRequest, kMc, 2),
      R(10.0, SpanEvent::kCacheMiss, kMc, 2),
      R(10.0, SpanEvent::kSubmitAccepted, kMc, 2),
      R(17.0, SpanEvent::kSlotPull, kNoClient, 2),
      R(18.0, SpanEvent::kDelivery, kMc, 2, 8.0),
      R(20.0, SpanEvent::kRequest, kMc, 3),
      R(20.0, SpanEvent::kCacheMiss, kMc, 3),
      R(20.0, SpanEvent::kSubmitFiltered, kMc, 3),
      R(23.0, SpanEvent::kSlotPush, kNoClient, 3),
      R(24.0, SpanEvent::kDelivery, kMc, 3, 4.0),
  });
  const PhaseBreakdown b = Attribute(assembler.Finish());
  EXPECT_EQ(b.spans, 3U);
  EXPECT_EQ(b.hits, 1U);
  EXPECT_EQ(b.pull_served, 1U);
  EXPECT_EQ(b.push_served, 1U);
  EXPECT_DOUBLE_EQ(b.mean_response, 4.0);  // (0 + 8 + 4) / 3.
  EXPECT_DOUBLE_EQ(b.mean_queue_wait + b.mean_broadcast_wait +
                       b.mean_transmit + b.mean_other,
                   b.mean_response);
}

// ------------------------------------------------------- full-system runs

core::SystemConfig SmallConfig() {
  core::SystemConfig config;
  config.server_db_size = 100;
  config.disks = broadcast::DiskConfig{{10, 40, 50}, {3, 2, 1}};
  config.cache_size = 10;
  config.server_queue_size = 10;
  config.mc_think_time = 5.0;
  config.think_time_ratio = 25.0;
  config.seed = 7;
  return config;
}

core::SteadyStateProtocol QuickProtocol() {
  core::SteadyStateProtocol protocol;
  protocol.post_fill_accesses = 200;
  protocol.min_measured_accesses = 500;
  protocol.max_measured_accesses = 2000;
  protocol.batch_size = 250;
  protocol.tolerance = 0.1;
  return protocol;
}

TEST(SpanAssemblerIntegrationTest, SpanMeansReconcileWithMetrics) {
  core::System system(SmallConfig());
  TraceSink sink;
  system.AttachTrace(&sink);
  const core::RunResult result = system.RunSteadyState(QuickProtocol());
  ASSERT_EQ(sink.DroppedEvents(), 0U);

  SpanAssembler assembler;
  assembler.FeedAll(sink.Events());
  std::vector<RequestSpan> spans = assembler.Finish();
  EXPECT_EQ(assembler.OrphanRecords(), 0U);
  // VC load shows up only as unmatched submits (the VC counts every
  // backchannel attempt, whatever the queue's verdict).
  EXPECT_EQ(assembler.UnmatchedSubmits(), result.vc_submitted);

  // The measured client runs one access at a time, so completed spans are
  // in access order and the measured window is exactly the last
  // response_stats.Count() of them. Their mean must reproduce the
  // authoritative mean response.
  std::vector<RequestSpan> completed;
  for (const RequestSpan& s : spans) {
    if (s.Complete()) completed.push_back(s);
  }
  const std::size_t measured = result.response_stats.Count();
  ASSERT_GE(completed.size(), measured);
  double sum = 0.0;
  std::size_t truncated = 0;
  for (std::size_t i = completed.size() - measured; i < completed.size();
       ++i) {
    sum += completed[i].response;
    if (completed[i].truncated) ++truncated;
  }
  EXPECT_EQ(truncated, 0U);  // Untruncated input: every span attributable.
  EXPECT_NEAR(sum / static_cast<double>(measured), result.mean_response,
              1e-9 * (1.0 + result.mean_response));

  // Every phase identity holds span-by-span, and the breakdown sees real
  // coalesced submits (VC contention guarantees some).
  const PhaseBreakdown b = Attribute(spans);
  EXPECT_GT(b.spans, 0U);
  EXPECT_GT(b.coalesced, 0U);
  EXPECT_NEAR(b.mean_queue_wait + b.mean_broadcast_wait + b.mean_transmit +
                  b.mean_other,
              b.mean_response, 1e-9);
  for (const RequestSpan& s : spans) {
    if (!s.Complete() || s.truncated) continue;
    EXPECT_NEAR(s.QueueWait() + s.BroadcastWait() + s.Transmit() + s.Other(),
                s.response, 1e-9);
    EXPECT_GE(s.Other(), -1e-9);  // Phases never over-explain the response.
  }
}

TEST(SpanAssemblerIntegrationTest, TinySinkYieldsTruncatedSpansNotOrphans) {
  core::System system(SmallConfig());
  TraceSink sink(512);  // Far smaller than the run's record count.
  system.AttachTrace(&sink);
  system.RunSteadyState(QuickProtocol());
  ASSERT_GT(sink.DroppedEvents(), 0U);

  SpanAssembler assembler(/*input_truncated=*/true);
  assembler.FeedAll(sink.Events());
  const std::vector<RequestSpan> spans = assembler.Finish();
  EXPECT_EQ(assembler.OrphanRecords(), 0U);
  const PhaseBreakdown b = Attribute(spans);
  // The clipped head produces at least one truncated span, and truncated
  // spans never pollute the attribution denominators.
  EXPECT_GE(b.truncated, 1U);
  EXPECT_EQ(b.spans + b.truncated + b.incomplete, spans.size());
}

}  // namespace
}  // namespace bdisk::obs
