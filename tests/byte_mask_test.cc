#include "sim/byte_mask.h"

#include <gtest/gtest.h>

namespace bdisk::sim {
namespace {

TEST(ByteMaskTest, ConstructReadWrite) {
  ByteMask mask(4, false);
  EXPECT_EQ(mask.size(), 4U);
  EXPECT_FALSE(mask[0]);
  mask[2] = true;
  EXPECT_TRUE(mask[2]);
  mask[2] = false;
  EXPECT_FALSE(mask[2]);
  const ByteMask filled(3, true);
  EXPECT_TRUE(filled[0] && filled[1] && filled[2]);
}

TEST(ByteMaskTest, RefToRefAssignmentWritesTheValue) {
  // Regression: `mask_a[i] = mask_b[j]` with both masks non-const yields
  // Ref = Ref. The implicit copy assignment would rebind the proxy's
  // pointer — a silent no-op on the mask — instead of writing the value
  // the way std::vector<bool>::reference does. The VC's re-warm rule
  // (`warm_cached_[page] = ideal_warm_[page]`) depends on the value
  // semantics.
  ByteMask dst(3, false);
  ByteMask src(3, true);
  dst[1] = src[1];
  EXPECT_TRUE(dst[1]);
  EXPECT_FALSE(dst[0]);
  src[2] = false;
  dst[0] = true;
  dst[0] = src[2];  // Assigning false must also stick.
  EXPECT_FALSE(dst[0]);
  // And the source is untouched either way.
  EXPECT_TRUE(src[1]);
  EXPECT_FALSE(src[2]);
}

TEST(ByteMaskTest, SelfMaskRefAssignment) {
  ByteMask mask(2, false);
  mask[0] = true;
  mask[1] = mask[0];  // Same-mask Ref = Ref.
  EXPECT_TRUE(mask[1]);
  mask[0] = mask[0];  // Self-assignment is a no-op, not a corruption.
  EXPECT_TRUE(mask[0]);
}

TEST(ByteMaskTest, DataIsCanonicalZeroOrOne) {
  ByteMask mask(4, false);
  mask[1] = true;
  ByteMask other(4, true);
  mask[3] = other[0];
  const std::uint8_t* bytes = mask.data();
  EXPECT_EQ(bytes[0], 0);
  EXPECT_EQ(bytes[1], 1);
  EXPECT_EQ(bytes[2], 0);
  EXPECT_EQ(bytes[3], 1);
  // Raw writes surface through operator[] reads.
  mask.data()[2] = 1;
  EXPECT_TRUE(mask[2]);
}

}  // namespace
}  // namespace bdisk::sim
