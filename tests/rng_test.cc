#include "sim/rng.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace bdisk::sim {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17U);
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(10)];
  for (const int c : counts) {
    // Each value should get ~10% +- 1.5% of draws.
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.015);
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0U);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(9);
  const int n = 100000;
  int heads = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMeanAndPositivity) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextExponential(4.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.05);
}

TEST(RngTest, ExponentialMemorylessTail) {
  // P(X > mean) should be e^-1 ~ 0.3679.
  Rng rng(19);
  const int n = 200000;
  int over = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.NextExponential(2.0) > 2.0) ++over;
  }
  EXPECT_NEAR(static_cast<double>(over) / n, std::exp(-1.0), 0.01);
}

TEST(RngTest, SplitStreamsAreIndependentAndDeterministic) {
  Rng a(123);
  Rng b(123);
  Rng a1 = a.Split();
  Rng b1 = b.Split();
  // Same parent state -> identical children.
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a1.Next(), b1.Next());
  // Child differs from what the parent produces next.
  Rng c(123);
  Rng c1 = c.Split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (c.Next() == c1.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(1);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace bdisk::sim
