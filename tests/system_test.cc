#include "core/system.h"

#include <gtest/gtest.h>

#include "cache/value_functions.h"
#include "core/analytic.h"

namespace bdisk::core {
namespace {

// A 10x scaled-down paper configuration that keeps tests fast.
SystemConfig SmallConfig() {
  SystemConfig config;
  config.server_db_size = 100;
  config.disks = broadcast::DiskConfig{{10, 40, 50}, {3, 2, 1}};
  config.cache_size = 10;
  config.server_queue_size = 10;
  config.mc_think_time = 5.0;
  config.think_time_ratio = 10.0;
  config.seed = 7;
  return config;
}

SteadyStateProtocol FastProtocol() {
  SteadyStateProtocol protocol;
  protocol.post_fill_accesses = 200;
  protocol.min_measured_accesses = 2000;
  protocol.max_measured_accesses = 8000;
  protocol.batch_size = 500;
  protocol.tolerance = 0.05;
  return protocol;
}

TEST(SystemTest, BuildsBalancedProgramOfExpectedLength) {
  SystemConfig config = SmallConfig();
  System system(config);
  // Balanced: 10*3 + 40*2 + 50*1 = 160 slots, no padding.
  EXPECT_EQ(system.program().Length(), 160U);
  for (std::uint32_t pos = 0; pos < 160; ++pos) {
    EXPECT_NE(system.program().PageAt(pos), broadcast::kNoPage);
  }
}

TEST(SystemTest, OffsetPlacesHottestPagesOnSlowestDisk) {
  System system(SmallConfig());
  // Pages 0..9 (hottest, = CacheSize with offset) must broadcast once per
  // cycle; pages 10..19 (fastest disk) three times.
  for (broadcast::PageId p = 0; p < 10; ++p) {
    EXPECT_EQ(system.program().Frequency(p), 1U) << p;
  }
  for (broadcast::PageId p = 10; p < 20; ++p) {
    EXPECT_EQ(system.program().Frequency(p), 3U) << p;
  }
}

TEST(SystemTest, PurePushHasNoVirtualClientAndNoBackchannel) {
  SystemConfig config = SmallConfig();
  config.mode = DeliveryMode::kPurePush;
  System system(config);
  EXPECT_EQ(system.vc(), nullptr);
  const RunResult result = system.RunSteadyState(FastProtocol());
  EXPECT_EQ(result.requests_submitted, 0U);
  EXPECT_EQ(result.drop_rate, 0.0);
  EXPECT_EQ(result.pull_slot_frac, 0.0);
  EXPECT_EQ(result.mc_pulls_sent, 0U);
}

TEST(SystemTest, PurePushMatchesAnalyticSteadyState) {
  SystemConfig config = SmallConfig();
  config.mode = DeliveryMode::kPurePush;
  System system(config);

  // Predicted steady-state response: misses outside the ideal PIX cache.
  const auto pix = cache::PixValues(system.mc_pattern().probs(),
                                    system.program());
  std::vector<bool> resident(config.server_db_size, false);
  for (const auto p : TopValuedPages(pix, config.cache_size)) {
    resident[p] = true;
  }
  const double predicted = ExpectedSteadyPushResponse(
      system.program(), system.mc_pattern().probs(), resident);

  const RunResult result = system.RunSteadyState(FastProtocol());
  EXPECT_GT(result.mean_response, 0.0);
  // The simulated cache only approximates the ideal set at its boundary, so
  // allow a generous band.
  EXPECT_NEAR(result.mean_response, predicted, 0.25 * predicted);
}

TEST(SystemTest, PurePullLightLoadIsFast) {
  SystemConfig config = SmallConfig();
  config.mode = DeliveryMode::kPurePull;
  config.think_time_ratio = 2.0;  // Very light backchannel load.
  System system(config);
  EXPECT_TRUE(system.program().Empty());
  const RunResult result = system.RunSteadyState(FastProtocol());
  // Misses should be served in ~2 units; with ~50%+ cache hits at 0 the
  // mean is strictly below 2 and far below any push latency.
  EXPECT_GT(result.mean_response, 0.0);
  EXPECT_LT(result.mean_response, 5.0);
  EXPECT_EQ(result.push_slot_frac, 0.0);
}

TEST(SystemTest, SteadyStateRunConvergesAndReportsCounts) {
  SystemConfig config = SmallConfig();
  System system(config);
  const RunResult result = system.RunSteadyState(FastProtocol());
  EXPECT_TRUE(result.converged);
  EXPECT_GE(result.response_stats.Count(), 2000U);
  EXPECT_GT(result.mc_accesses, result.response_stats.Count());
  EXPECT_GT(result.mc_hit_rate, 0.2);
  EXPECT_LT(result.mc_hit_rate, 0.95);
  EXPECT_EQ(result.major_cycle_len, 160U);
  EXPECT_NEAR(result.push_slot_frac + result.pull_slot_frac +
                  result.idle_slot_frac,
              1.0, 1e-9);
}

TEST(SystemTest, WarmupRunProducesMonotoneTrajectory) {
  SystemConfig config = SmallConfig();
  System system(config);
  WarmupProtocol protocol;
  const RunResult result = system.RunWarmup(protocol);
  EXPECT_TRUE(result.converged);
  ASSERT_EQ(result.warmup.size(), protocol.fractions.size());
  double prev_time = 0.0;
  for (const WarmupPoint& point : result.warmup) {
    EXPECT_NE(point.time, sim::kTimeNever) << point.fraction;
    EXPECT_GE(point.time, prev_time) << point.fraction;
    prev_time = point.time;
  }
}

TEST(SystemTest, TruncatedSystemServesUnscheduledPagesByPull) {
  SystemConfig config = SmallConfig();
  config.chop_count = 50;  // Entire slowest disk.
  config.pull_bw = 0.5;
  System system(config);
  EXPECT_EQ(system.layout().effective_config.sizes[2], 0U);
  EXPECT_EQ(system.layout().pull_only.size(), 50U);
  const RunResult result = system.RunSteadyState(FastProtocol());
  EXPECT_GT(result.mean_response, 0.0);
  EXPECT_GT(result.requests_submitted, 0U);
}

TEST(SystemTest, NoiseChangesMcPatternOnly) {
  SystemConfig config = SmallConfig();
  config.noise = 0.35;
  System system(config);
  int diffs = 0;
  for (broadcast::PageId p = 0; p < 100; ++p) {
    if (system.mc_pattern().Prob(p) != system.canonical_pattern().Prob(p)) {
      ++diffs;
    }
  }
  EXPECT_GT(diffs, 5);
}

TEST(SystemTest, SameSeedSameResult) {
  SystemConfig config = SmallConfig();
  RunResult a = System(config).RunSteadyState(FastProtocol());
  RunResult b = System(config).RunSteadyState(FastProtocol());
  EXPECT_EQ(a.mean_response, b.mean_response);
  EXPECT_EQ(a.requests_submitted, b.requests_submitted);
  EXPECT_EQ(a.sim_time_end, b.sim_time_end);
}

TEST(SystemTest, DifferentSeedsDifferButAgreeStatistically) {
  SystemConfig config = SmallConfig();
  RunResult a = System(config).RunSteadyState(FastProtocol());
  config.seed = 999;
  RunResult b = System(config).RunSteadyState(FastProtocol());
  EXPECT_NE(a.mean_response, b.mean_response);
  EXPECT_NEAR(a.mean_response, b.mean_response,
              0.3 * std::max(a.mean_response, b.mean_response));
}

TEST(SystemDeathTest, SecondRunAborts) {
  SystemConfig config = SmallConfig();
  System system(config);
  system.RunSteadyState(FastProtocol());
  EXPECT_DEATH(system.RunSteadyState(FastProtocol()), "one run");
}

TEST(SystemDeathTest, InvalidConfigAborts) {
  SystemConfig config = SmallConfig();
  config.pull_bw = 2.0;
  EXPECT_DEATH(System system(config), "pull_bw");
}

TEST(SystemTest, ZeroNoiseMakesPatternsIdentical) {
  System system(SmallConfig());
  for (broadcast::PageId p = 0; p < 100; ++p) {
    ASSERT_EQ(system.mc_pattern().Prob(p),
              system.canonical_pattern().Prob(p));
  }
}

TEST(SystemTest, CombinedExtensionsCoexist) {
  // Updates + prefetch + both adaptive controllers, all at once.
  SystemConfig config = SmallConfig();
  config.update_rate = 0.02;
  config.mc_prefetch = true;
  config.adaptive_pull_bw = true;
  config.adaptive_threshold = true;
  config.server_controller.control_period = 160.0;
  config.client_controller.control_period = 160.0;
  System system(config);
  const RunResult result = system.RunSteadyState(FastProtocol());
  EXPECT_GT(result.mean_response, 0.0);
  EXPECT_GT(result.updates_generated, 0U);
  EXPECT_GT(result.mc_prefetches, 0U);
  EXPECT_GT(system.server_controller()->Decisions(), 0U);
}

TEST(SystemTest, PurePullProgramForConfigIsEmpty) {
  SystemConfig config = SmallConfig();
  config.mode = DeliveryMode::kPurePull;
  const auto program = ProgramForConfig(config);
  EXPECT_TRUE(program.Empty());
  EXPECT_EQ(program.DbSize(), 100U);
}

TEST(TopValuedPagesTest, SelectsAndOrders) {
  const std::vector<double> values = {0.1, 0.9, 0.5, 0.9};
  EXPECT_EQ(TopValuedPages(values, 2),
            (std::vector<broadcast::PageId>{1, 3}));
  EXPECT_EQ(TopValuedPages(values, 3),
            (std::vector<broadcast::PageId>{1, 3, 2}));
}

}  // namespace
}  // namespace bdisk::core
