#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/system.h"
#include "obs/json.h"
#include "obs/progress.h"
#include "obs/trace_sink.h"

namespace bdisk::obs {
namespace {

// ------------------------------------------------------------------ JSON

TEST(JsonTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonTest, WriterBuildsNestedDocument) {
  JsonWriter w;
  w.BeginObject();
  w.Key("n");
  w.Value(std::uint64_t{3});
  w.Key("xs");
  w.BeginArray();
  w.Value(1.5);
  w.Value(false);
  w.Null();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"n\":3,\"xs\":[1.5,false,null]}");
}

TEST(JsonTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Value(std::numeric_limits<double>::infinity());
  w.Value(std::numeric_limits<double>::quiet_NaN());
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonParseTest, ParsesScalarsAndNesting) {
  JsonValue v;
  ASSERT_TRUE(ParseJson("{\"a\":1.5,\"b\":[true,null,\"x\\ny\"],\"c\":{}}",
                        &v));
  ASSERT_EQ(v.kind, JsonValue::Kind::kObject);
  const JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->number, 1.5);
  const JsonValue* b = v.Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->array.size(), 3U);
  EXPECT_TRUE(b->array[0].boolean);
  EXPECT_EQ(b->array[1].kind, JsonValue::Kind::kNull);
  EXPECT_EQ(b->array[2].string, "x\ny");
  EXPECT_EQ(v.Find("c")->kind, JsonValue::Kind::kObject);
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonParseTest, RoundTripsWriterOutput) {
  JsonWriter w;
  w.BeginObject();
  w.Key("neg");
  w.Value(-2.25);
  w.Key("esc");
  w.Value(std::string("a\"b\\c"));
  w.EndObject();
  JsonValue v;
  ASSERT_TRUE(ParseJson(w.str(), &v));
  EXPECT_EQ(v.Find("neg")->number, -2.25);
  EXPECT_EQ(v.Find("esc")->string, "a\"b\\c");
}

TEST(JsonParseTest, ReportsErrorsWithOffsets) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(ParseJson("", &v, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseJson("{\"a\":}", &v, &error));
  EXPECT_NE(error.find("at byte"), std::string::npos);
  EXPECT_FALSE(ParseJson("[1,2", &v, &error));
  EXPECT_FALSE(ParseJson("{} trailing", &v, &error));
  EXPECT_NE(error.find("trailing"), std::string::npos);
  // Depth bomb: more nesting than the parser's recursion bound.
  EXPECT_FALSE(ParseJson(std::string(100, '[') + std::string(100, ']'), &v,
                         &error));
}

// --------------------------------------------------------------- Registry

TEST(MetricsRegistryTest, ResolveOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("a.count");
  c->Inc(2);
  // Creating more metrics must not invalidate earlier pointers.
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("filler." + std::to_string(i));
  }
  EXPECT_EQ(registry.GetCounter("a.count"), c);
  EXPECT_EQ(c->Value(), 2U);

  Gauge* g = registry.GetGauge("a.gauge");
  g->Set(1.5);
  EXPECT_EQ(registry.GetGauge("a.gauge")->Value(), 1.5);

  LatencyHistogram* h = registry.GetHistogram("a.hist", 0.0, 10.0, 10);
  // Re-resolving ignores the (different) shape parameters.
  EXPECT_EQ(registry.GetHistogram("a.hist", 0.0, 99.0, 3), h);
}

TEST(MetricsRegistryTest, LatencyHistogramPercentilesAndReset) {
  LatencyHistogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.Add(i + 0.5);
  EXPECT_EQ(h.Count(), 100U);
  EXPECT_NEAR(h.Percentile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.Percentile(0.99), 99.0, 1.5);
  EXPECT_DOUBLE_EQ(h.Max(), 99.5);
  h.Reset();
  EXPECT_EQ(h.Count(), 0U);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
}

TEST(MetricsRegistryTest, LatencyHistogramResetPreservesShape) {
  // The windowed collector resets its per-window histogram in place every
  // window; the bucket shape (and thus percentile resolution) must be
  // exactly what the constructor set, forever.
  LatencyHistogram h(0.0, 100.0, 100);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 100; ++i) h.Add(i + 0.5);
    EXPECT_EQ(h.Count(), 100U);
    EXPECT_NEAR(h.Percentile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.Percentile(0.99), 99.0, 1.5);
    EXPECT_EQ(h.histogram().NumBuckets(), 100U);
    EXPECT_EQ(h.histogram().Underflow(), 0U);
    EXPECT_EQ(h.histogram().Overflow(), 0U);
    h.Reset();
    EXPECT_EQ(h.Count(), 0U);
    EXPECT_EQ(h.histogram().NumBuckets(), 100U);
  }
}

TEST(MetricsRegistryTest, ToJsonCarriesEverySection) {
  MetricsRegistry registry;
  registry.GetCounter("server.slots_total")->Set(42);
  registry.GetGauge("server.pull_bw")->Set(0.5);
  registry.GetStats("cache.evict_value")->Add(2.0);
  registry.GetHistogram("client.response", 0.0, 10.0, 10)->Add(3.0);
  registry.GetTimeSeries("server.queue_depth")->Add(1.0, 4.0);

  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"schema\":\"bdisk-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"server.slots_total\":42"), std::string::npos);
  EXPECT_NE(json.find("\"server.pull_bw\""), std::string::npos);
  EXPECT_NE(json.find("\"cache.evict_value\""), std::string::npos);
  EXPECT_NE(json.find("\"client.response\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"server.queue_depth\":[[1,4]]"), std::string::npos);
}

// -------------------------------------------------------------- TraceSink

TEST(TraceSinkTest, RingInvariantHoldsUnderOverflow) {
  TraceSink sink(4);
  for (std::uint32_t i = 0; i < 20; ++i) {
    sink.Record(static_cast<double>(i), SpanEvent::kRequest,
                kMeasuredClientId, i);
    EXPECT_EQ(sink.DroppedEvents() + sink.Events().size(),
              sink.TotalEvents());
  }
  EXPECT_EQ(sink.TotalEvents(), 20U);
  EXPECT_EQ(sink.DroppedEvents(), 16U);
  EXPECT_EQ(sink.Events().front().page, 16U);
  EXPECT_EQ(sink.Events().back().page, 19U);
  // Per-kind lifetime counts are exact even after overwrite.
  EXPECT_EQ(sink.Count(SpanEvent::kRequest), 20U);
  EXPECT_EQ(sink.Count(SpanEvent::kDelivery), 0U);
}

TEST(TraceSinkTest, JsonlUsesSignedSentinels) {
  TraceSink sink;
  sink.Record(2.0, SpanEvent::kDelivery, kMeasuredClientId, 5, 2.0);
  sink.Record(3.0, SpanEvent::kSlotIdle, kNoClient, kNoTracePage);
  const std::string jsonl = sink.ToJsonl();
  EXPECT_NE(jsonl.find(
                "{\"t\":2.000,\"ev\":\"delivery\",\"client\":0,\"page\":5"),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"ev\":\"slot_idle\",\"client\":-1,\"page\":-1"),
            std::string::npos);
}

TEST(TraceSinkTest, WrapKeepsOldestFirstOrder) {
  TraceSink sink(4);
  for (std::uint32_t i = 0; i < 11; ++i) {
    sink.Record(static_cast<double>(i), SpanEvent::kRequest,
                kMeasuredClientId, i);
  }
  // 11 records through a 4-slot ring: exactly the last 4 survive, oldest
  // first, with strictly increasing timestamps across the wrap point.
  const std::vector<SpanRecord> events = sink.Events();
  ASSERT_EQ(events.size(), 4U);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].page, 7 + i);
    EXPECT_DOUBLE_EQ(events[i].time, 7.0 + i);
  }
  EXPECT_EQ(sink.DroppedEvents(), 7U);
}

TEST(TraceSinkTest, JsonlRoundTripsEveryEventKind) {
  TraceSink sink;
  const auto kinds = static_cast<std::uint8_t>(SpanEvent::kMaxValue);
  for (std::uint8_t k = 0; k < kinds; ++k) {
    const auto event = static_cast<SpanEvent>(k);
    // Exercise the sentinels on the slot/idle kinds, real ids elsewhere.
    const bool server_side = event == SpanEvent::kSlotIdle;
    sink.Record(0.125 * (k + 1), event,
                server_side ? kNoClient : kMeasuredClientId,
                server_side ? kNoTracePage : 40U + k, 0.5 * k);
  }
  const std::string jsonl = sink.ToJsonl();
  std::vector<SpanRecord> parsed;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    SpanRecord record{};
    ASSERT_TRUE(
        ParseTraceJsonlLine(jsonl.substr(start, end - start), &record))
        << jsonl.substr(start, end - start);
    parsed.push_back(record);
    start = end + 1;
  }
  const std::vector<SpanRecord> original = sink.Events();
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].event, original[i].event);
    EXPECT_EQ(parsed[i].client, original[i].client);
    EXPECT_EQ(parsed[i].page, original[i].page);
    EXPECT_DOUBLE_EQ(parsed[i].time, original[i].time);
    EXPECT_DOUBLE_EQ(parsed[i].value, original[i].value);
  }
}

TEST(TraceSinkTest, ParseRejectsMalformedLines) {
  SpanRecord record{};
  EXPECT_FALSE(ParseTraceJsonlLine("", &record));
  EXPECT_FALSE(ParseTraceJsonlLine("not json", &record));
  EXPECT_FALSE(ParseTraceJsonlLine(
      "{\"t\":1.000,\"ev\":\"bogus\",\"client\":0,\"page\":1,\"v\":0}",
      &record));
}

TEST(TraceSinkTest, CsvHasHeaderRow) {
  TraceSink sink;
  sink.Record(1.0, SpanEvent::kRequest, kMeasuredClientId, 9);
  const std::string csv = sink.ToCsv();
  EXPECT_EQ(csv.find("time,event,client,page,value\n"), 0U);
  EXPECT_NE(csv.find("request"), std::string::npos);
}

TEST(TraceSinkTest, EventNamesAreStable) {
  EXPECT_STREQ(SpanEventName(SpanEvent::kSubmitCoalesced),
               "submit_coalesced");
  EXPECT_STREQ(SpanEventName(SpanEvent::kSlotPull), "slot_pull");
  EXPECT_STREQ(SpanEventName(SpanEvent::kDelivery), "delivery");
}

// --------------------------------------------------------------- Progress

TEST(ProgressReporterTest, HeartbeatsRescheduleThemselves) {
  sim::Simulator simulator;
  std::FILE* out = std::tmpfile();
  ASSERT_NE(out, nullptr);
  ProgressReporter reporter(&simulator, 10.0, out);
  reporter.SetFractionCallback([&simulator] {
    return std::min(1.0, simulator.Now() / 100.0);
  });
  reporter.Start();
  simulator.RunUntil(100.0);
  // One heartbeat every 10 units, each rescheduling the next.
  EXPECT_EQ(simulator.EventsExecuted(), 10U);
  std::fclose(out);
}

// ------------------------------------------------------- System integration

core::SystemConfig SmallConfig() {
  core::SystemConfig config;
  config.server_db_size = 100;
  config.disks = broadcast::DiskConfig{{10, 40, 50}, {3, 2, 1}};
  config.cache_size = 10;
  config.server_queue_size = 10;
  config.mc_think_time = 5.0;
  config.think_time_ratio = 25.0;
  config.seed = 7;
  return config;
}

core::SteadyStateProtocol QuickProtocol() {
  core::SteadyStateProtocol protocol;
  protocol.post_fill_accesses = 200;
  protocol.min_measured_accesses = 500;
  protocol.max_measured_accesses = 2000;
  protocol.batch_size = 250;
  protocol.tolerance = 0.1;
  return protocol;
}

TEST(SystemObservabilityTest, RunResultCarriesOrderedPercentiles) {
  core::System system(SmallConfig());
  const core::RunResult result = system.RunSteadyState(QuickProtocol());
  EXPECT_GT(result.response_stats.Count(), 0U);
  EXPECT_LE(result.response_p50, result.response_p90);
  EXPECT_LE(result.response_p90, result.response_p95);
  EXPECT_LE(result.response_p95, result.response_p99);
  EXPECT_LE(result.response_p99, result.response_max + 1e-9);
  EXPECT_DOUBLE_EQ(result.response_max, result.response_stats.Max());
  // The histogram and the exact stats describe the same sample set.
  EXPECT_EQ(system.mc().response_histogram().Count(),
            result.response_stats.Count());
  // Kernel profile is always populated.
  EXPECT_GT(result.kernel.events_executed, 0U);
  EXPECT_GT(result.kernel.periodic_rearms, 0U);
  EXPECT_GT(result.kernel.heap_high_water, 0U);
  EXPECT_GT(result.kernel.wall_seconds, 0.0);
}

TEST(SystemObservabilityTest, AttachingObservabilityIsTrajectoryNeutral) {
  // The design invariant behind keeping goldens green: metrics and trace
  // attachment must not change a single simulated decision.
  core::System plain(SmallConfig());
  const core::RunResult base = plain.RunSteadyState(QuickProtocol());

  core::System observed(SmallConfig());
  MetricsRegistry registry;
  TraceSink sink;
  observed.AttachMetrics(&registry);
  observed.AttachTrace(&sink);
  const core::RunResult traced = observed.RunSteadyState(QuickProtocol());

  EXPECT_EQ(traced.kernel.events_executed, base.kernel.events_executed);
  EXPECT_EQ(traced.mean_response, base.mean_response);
  EXPECT_EQ(traced.response_stats.Count(), base.response_stats.Count());
  EXPECT_EQ(traced.requests_submitted, base.requests_submitted);
  EXPECT_EQ(traced.sim_time_end, base.sim_time_end);
}

TEST(SystemObservabilityTest, SnapshotAgreesWithComponentCounters) {
  core::System system(SmallConfig());
  MetricsRegistry registry;
  TraceSink sink;
  system.AttachMetrics(&registry);
  system.AttachTrace(&sink);
  const core::RunResult result = system.RunSteadyState(QuickProtocol());
  system.SnapshotMetrics(&registry);

  EXPECT_EQ(registry.counters().at("server.queue.submitted").Value(),
            result.requests_submitted);
  EXPECT_EQ(registry.counters().at("client.mc.accesses").Value(),
            result.mc_accesses);
  EXPECT_EQ(registry.counters().at("kernel.events_executed").Value(),
            result.kernel.events_executed);
  EXPECT_EQ(registry.counters().at("client.vc.submitted").Value(),
            result.vc_submitted);
  EXPECT_EQ(registry.gauges().at("server.queue.depth_high_water").Value(),
            static_cast<double>(result.queue_depth_high_water));
  // Eviction-value stream: one sample per policy eviction while attached.
  EXPECT_EQ(registry.stats().at("client.mc.cache.evict_value").Count(),
            result.mc_cache_evictions);
  // Windowed time-series were published by the server.
  EXPECT_FALSE(registry.time_series().at("server.push_frac").empty());
  EXPECT_EQ(registry.time_series().at("server.push_frac").size(),
            registry.time_series().at("server.queue_depth").size());
  // The exported response histogram matches the measured window.
  EXPECT_EQ(registry.histograms().at("client.mc.response").Count(),
            result.response_stats.Count());

  // The trace contains the full request life cycle.
  EXPECT_GT(sink.Count(SpanEvent::kRequest), 0U);
  EXPECT_GT(sink.Count(SpanEvent::kCacheMiss), 0U);
  EXPECT_GT(sink.Count(SpanEvent::kSubmitAccepted), 0U);
  EXPECT_GT(sink.Count(SpanEvent::kSlotPush), 0U);
  EXPECT_GT(sink.Count(SpanEvent::kDelivery), 0U);
}

TEST(SystemObservabilityTest, QueueDepthHighWaterBoundsAndNonZero) {
  core::SystemConfig config = SmallConfig();
  config.think_time_ratio = 50.0;  // Enough load to queue requests.
  core::System system(config);
  const core::RunResult result = system.RunSteadyState(QuickProtocol());
  EXPECT_GT(result.queue_depth_high_water, 0U);
  EXPECT_LE(result.queue_depth_high_water, config.server_queue_size);
}

}  // namespace
}  // namespace bdisk::obs
