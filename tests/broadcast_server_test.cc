#include "server/broadcast_server.h"

#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace bdisk::server {
namespace {

using broadcast::BroadcastProgram;

// Records every delivery for inspection.
class RecordingListener : public BroadcastListener {
 public:
  struct Delivery {
    PageId page;
    SlotKind kind;
    sim::SimTime time;
  };
  void OnBroadcast(PageId page, SlotKind kind, sim::SimTime now) override {
    deliveries.push_back({page, kind, now});
  }
  std::vector<Delivery> deliveries;
};

TEST(BroadcastServerTest, PurePushFollowsTheSchedule) {
  sim::Simulator sim;
  BroadcastProgram program({0, 1, 2}, 3);
  BroadcastServer server(&sim, std::move(program), /*pull_bw=*/0.0,
                         /*queue_capacity=*/10, sim::Rng(1));
  RecordingListener listener;
  server.AddListener(&listener);

  sim.RunUntil(6.0);
  ASSERT_EQ(listener.deliveries.size(), 6U);
  const PageId expected[] = {0, 1, 2, 0, 1, 2};
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(listener.deliveries[i].page, expected[i]) << i;
    EXPECT_EQ(listener.deliveries[i].kind, SlotKind::kPush);
    EXPECT_EQ(listener.deliveries[i].time, static_cast<double>(i + 1));
  }
  EXPECT_EQ(server.PushSlots(), 7U);  // 6 delivered + 1 in flight.
  EXPECT_EQ(server.PullSlots(), 0U);
}

TEST(BroadcastServerTest, DeliveryHappensOneUnitAfterSlotChoice) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({5}, 6), 0.0, 10,
                         sim::Rng(1));
  RecordingListener listener;
  server.AddListener(&listener);
  sim.RunUntil(1.0);
  ASSERT_EQ(listener.deliveries.size(), 1U);
  EXPECT_EQ(listener.deliveries[0].time, 1.0);
}

TEST(BroadcastServerTest, PurePullServesQueueFifo) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({}, 10), /*pull_bw=*/1.0, 10,
                         sim::Rng(2));
  RecordingListener listener;
  server.AddListener(&listener);

  server.SubmitRequest(7);
  server.SubmitRequest(3);
  sim.RunUntil(5.0);
  ASSERT_EQ(listener.deliveries.size(), 2U);
  EXPECT_EQ(listener.deliveries[0].page, 7U);
  EXPECT_EQ(listener.deliveries[0].kind, SlotKind::kPull);
  EXPECT_EQ(listener.deliveries[1].page, 3U);
  EXPECT_GT(server.IdleSlots(), 0U);  // Queue drained -> idle slots.
}

TEST(BroadcastServerTest, PurePullIdlesWhenQueueEmpty) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({}, 10), 1.0, 10,
                         sim::Rng(3));
  RecordingListener listener;
  server.AddListener(&listener);
  sim.RunUntil(10.0);
  EXPECT_TRUE(listener.deliveries.empty());
  EXPECT_EQ(server.PushSlots(), 0U);
  EXPECT_GE(server.IdleSlots(), 10U);
}

TEST(BroadcastServerTest, UnusedPullSlotsGoBackToPush) {
  // IPP with PullBW=100% but an empty queue: the schedule continues — the
  // paper's "unused pull slots are given back to the push program".
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1}, 2), 1.0, 10,
                         sim::Rng(4));
  RecordingListener listener;
  server.AddListener(&listener);
  sim.RunUntil(4.0);
  ASSERT_EQ(listener.deliveries.size(), 4U);
  for (const auto& d : listener.deliveries) {
    EXPECT_EQ(d.kind, SlotKind::kPush);
  }
}

TEST(BroadcastServerTest, IppInterleavesPullAndPushByCoin) {
  // PullBW = 1 with a non-empty queue: the queued page preempts the
  // schedule exactly once, then the schedule resumes where it left off.
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1, 2}, 4), 1.0, 10,
                         sim::Rng(5));
  RecordingListener listener;
  server.AddListener(&listener);

  // The boundary at t=1 delivered page 0 and already chose page 1 for slot
  // [1,2) before this request lands; the pull wins the slot chosen at t=2.
  sim.RunUntil(1.0);
  server.SubmitRequest(3);
  sim.RunUntil(4.0);
  ASSERT_EQ(listener.deliveries.size(), 4U);
  EXPECT_EQ(listener.deliveries[0].page, 0U);
  EXPECT_EQ(listener.deliveries[1].page, 1U);
  EXPECT_EQ(listener.deliveries[2].page, 3U);  // Pull preempts.
  EXPECT_EQ(listener.deliveries[2].kind, SlotKind::kPull);
  EXPECT_EQ(listener.deliveries[3].page, 2U);  // Schedule resumes.
}

TEST(BroadcastServerTest, PullBwFractionControlsServiceShare) {
  // Keep the queue always full; with PullBW=0.3 about 30% of slots serve
  // pulls.
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1, 2, 3}, 100), 0.3,
                         100, sim::Rng(6));
  RecordingListener listener;
  server.AddListener(&listener);
  PageId next = 4;
  // Refill the queue each unit.
  std::function<void()> refill = [&] {
    while (server.queue().Size() < 50) {
      server.SubmitRequest(next);
      next = 4 + (next - 4 + 1) % 90;
    }
    sim.ScheduleAfter(1.0, [&refill] { refill(); });
  };
  sim.ScheduleAt(0.0, [&refill] { refill(); });
  sim.RunUntil(10000.0);
  const double pull_frac =
      static_cast<double>(server.PullSlots()) /
      static_cast<double>(server.PullSlots() + server.PushSlots());
  EXPECT_NEAR(pull_frac, 0.3, 0.02);
}

TEST(BroadcastServerTest, SchedulePositionAndDistanceTrackPushOnly) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1, 2, 3}, 4), 1.0, 10,
                         sim::Rng(7));
  // At construction the server chose slot 0 contents; position is 1.
  EXPECT_EQ(server.SchedulePosition(), 1U);
  EXPECT_EQ(server.DistanceToNextPush(1), 0U);
  EXPECT_EQ(server.DistanceToNextPush(0), 3U);
  // A pull slot must NOT advance the schedule position.
  server.SubmitRequest(3);
  sim.RunUntil(1.0);  // Chooses slot [1,2): the pull of page 3.
  EXPECT_EQ(server.SchedulePosition(), 1U);
}

TEST(BroadcastServerTest, PaddingSlotsDeliverNothing) {
  sim::Simulator sim;
  BroadcastServer server(&sim,
                         BroadcastProgram({0, broadcast::kNoPage, 1}, 2),
                         0.0, 10, sim::Rng(8));
  RecordingListener listener;
  server.AddListener(&listener);
  sim.RunUntil(3.0);
  ASSERT_EQ(listener.deliveries.size(), 2U);
  EXPECT_EQ(listener.deliveries[0].page, 0U);
  EXPECT_EQ(listener.deliveries[1].page, 1U);
  EXPECT_EQ(server.IdleSlots(), 1U);
}

TEST(BroadcastServerTest, MultipleListenersAllNotified) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0}, 1), 0.0, 10,
                         sim::Rng(9));
  RecordingListener a, b;
  server.AddListener(&a);
  server.AddListener(&b);
  sim.RunUntil(2.0);
  EXPECT_EQ(a.deliveries.size(), 2U);
  EXPECT_EQ(b.deliveries.size(), 2U);
}

TEST(BroadcastServerTest, SetPullBwRetunesTheMux) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0, 1, 2, 3}, 100), 0.0,
                         100, sim::Rng(6));
  EXPECT_EQ(server.pull_bw(), 0.0);
  // With PullBW 0, queued requests are never served.
  server.SubmitRequest(50);
  sim.RunUntil(100.0);
  EXPECT_EQ(server.PullSlots(), 0U);
  // Raise it: the queued request goes out.
  server.SetPullBw(1.0);
  sim.RunUntil(105.0);
  EXPECT_EQ(server.PullSlots(), 1U);
}

TEST(BroadcastServerDeathTest, SetPullBwRejectsBadValues) {
  sim::Simulator sim;
  BroadcastServer server(&sim, BroadcastProgram({0}, 1), 0.5, 10,
                         sim::Rng(1));
  EXPECT_DEATH(server.SetPullBw(-0.1), "PullBW");
  EXPECT_DEATH(server.SetPullBw(1.1), "PullBW");
}

TEST(BroadcastServerDeathTest, RejectsNoProgramNoPull) {
  sim::Simulator sim;
  EXPECT_DEATH(BroadcastServer(&sim, BroadcastProgram({}, 10), 0.0, 10,
                               sim::Rng(1)),
               "never broadcast");
}

TEST(BroadcastServerDeathTest, RejectsBadPullBw) {
  sim::Simulator sim;
  EXPECT_DEATH(BroadcastServer(&sim, BroadcastProgram({0}, 1), 1.5, 10,
                               sim::Rng(1)),
               "PullBW");
}

}  // namespace
}  // namespace bdisk::server
