// bdisk-wire-v1 codec: exact datagram text for every verb, format/parse
// round-trips, and the malformed-input taxonomy (bad magic, wrong field
// counts, ill-delimited text, unparsable numbers, bad client ids). The
// reconciliation handshake depends on both ends agreeing byte-for-byte,
// so the on-wire text itself is pinned, not just the round-trip.

#include <gtest/gtest.h>

#include <string>

#include "transport/wire.h"

namespace bdisk::transport::wire {
namespace {

TEST(WireFormatTest, ClientVerbsPinTheirWireText) {
  std::string out;
  FormatHello("mc1", &out);
  EXPECT_EQ(out, "bdw1 HELLO mc1");
  FormatPull("mc1", 42, &out);
  EXPECT_EQ(out, "bdw1 PULL mc1 42");
  FormatPing("mc1", &out);
  EXPECT_EQ(out, "bdw1 PING mc1");
  FormatBye("mc1", &out);
  EXPECT_EQ(out, "bdw1 BYE mc1");
}

TEST(WireFormatTest, ServerVerbsPinTheirWireText) {
  std::string out;
  FormatWelcome(1000, 1600, 200, &out);
  EXPECT_EQ(out, "bdw1 WELCOME 1000 1600 200");
  FormatSlot(7, 13, server::SlotKind::kPush, 8.0, &out);
  EXPECT_EQ(out, "bdw1 SLOT 7 13 P 8");
  FormatSlot(8, broadcast::kNoPage, server::SlotKind::kIdle, 9.0, &out);
  EXPECT_EQ(out, "bdw1 SLOT 8 - I 9");
  FormatFin("", &out);
  EXPECT_EQ(out, "bdw1 FIN shutdown");
  FormatFin("evicted", &out);
  EXPECT_EQ(out, "bdw1 FIN evicted");
}

TEST(WireFormatTest, StatsCarriesEveryCounterInOrder) {
  PeerStats stats;
  stats.pulls_rx = 1;
  stats.slots_tx_epoch = 2;
  stats.drop_backpressure = 3;
  stats.drop_dead_peer = 4;
  stats.drop_fault = 5;
  stats.pulls_fault_dropped = 6;
  stats.reconnects = 7;
  std::string out;
  FormatStats(stats, &out);
  EXPECT_EQ(out, "bdw1 STATS 1 2 3 4 5 6 7");
}

TEST(WireRoundTripTest, EveryVerbSurvivesFormatThenParse) {
  std::string out;
  Message msg;
  std::string error;

  FormatHello("client-a", &out);
  ASSERT_TRUE(ParseMessage(out, &msg, &error)) << error;
  EXPECT_EQ(msg.type, MsgType::kHello);
  EXPECT_EQ(msg.client_id, "client-a");

  FormatPull("client-a", 99, &out);
  ASSERT_TRUE(ParseMessage(out, &msg, &error)) << error;
  EXPECT_EQ(msg.type, MsgType::kPull);
  EXPECT_EQ(msg.page, 99U);

  FormatPing("client-a", &out);
  ASSERT_TRUE(ParseMessage(out, &msg, &error)) << error;
  EXPECT_EQ(msg.type, MsgType::kPing);

  FormatBye("client-a", &out);
  ASSERT_TRUE(ParseMessage(out, &msg, &error)) << error;
  EXPECT_EQ(msg.type, MsgType::kBye);

  FormatWelcome(500, 800, 1000, &out);
  ASSERT_TRUE(ParseMessage(out, &msg, &error)) << error;
  EXPECT_EQ(msg.type, MsgType::kWelcome);
  EXPECT_EQ(msg.db_size, 500U);
  EXPECT_EQ(msg.cycle_len, 800U);
  EXPECT_EQ(msg.slot_us, 1000U);

  FormatSlot(123456789ULL, 42, server::SlotKind::kPull, 123456.5, &out);
  ASSERT_TRUE(ParseMessage(out, &msg, &error)) << error;
  EXPECT_EQ(msg.type, MsgType::kSlot);
  EXPECT_EQ(msg.seq, 123456789ULL);
  EXPECT_EQ(msg.page, 42U);
  EXPECT_EQ(msg.kind, server::SlotKind::kPull);
  EXPECT_EQ(msg.sim_time, 123456.5);

  FormatSlot(1, broadcast::kNoPage, server::SlotKind::kIdle, 2.0, &out);
  ASSERT_TRUE(ParseMessage(out, &msg, &error)) << error;
  EXPECT_EQ(msg.page, broadcast::kNoPage);
  EXPECT_EQ(msg.kind, server::SlotKind::kIdle);

  PeerStats stats;
  stats.pulls_rx = 11;
  stats.slots_tx_epoch = 22;
  stats.drop_backpressure = 33;
  stats.drop_dead_peer = 44;
  stats.drop_fault = 55;
  stats.pulls_fault_dropped = 66;
  stats.reconnects = 77;
  FormatStats(stats, &out);
  ASSERT_TRUE(ParseMessage(out, &msg, &error)) << error;
  EXPECT_EQ(msg.type, MsgType::kStats);
  EXPECT_EQ(msg.stats.pulls_rx, 11U);
  EXPECT_EQ(msg.stats.slots_tx_epoch, 22U);
  EXPECT_EQ(msg.stats.drop_backpressure, 33U);
  EXPECT_EQ(msg.stats.drop_dead_peer, 44U);
  EXPECT_EQ(msg.stats.drop_fault, 55U);
  EXPECT_EQ(msg.stats.pulls_fault_dropped, 66U);
  EXPECT_EQ(msg.stats.reconnects, 77U);

  FormatFin("drain", &out);
  ASSERT_TRUE(ParseMessage(out, &msg, &error)) << error;
  EXPECT_EQ(msg.type, MsgType::kFin);
  EXPECT_EQ(msg.reason, "drain");
}

TEST(WireParseTest, RejectsBadMagicAndUnknownVerbs) {
  Message msg;
  EXPECT_FALSE(ParseMessage("", &msg, nullptr));
  EXPECT_FALSE(ParseMessage("bdw1", &msg, nullptr));
  EXPECT_FALSE(ParseMessage("bdw2 HELLO mc", &msg, nullptr));
  EXPECT_FALSE(ParseMessage("BDW1 HELLO mc", &msg, nullptr));
  EXPECT_FALSE(ParseMessage("bdw1 SHOUT mc", &msg, nullptr));
}

TEST(WireParseTest, RejectsIllDelimitedText) {
  Message msg;
  // Double space, leading space, trailing space: SplitFields sees an
  // empty field and refuses the whole datagram.
  EXPECT_FALSE(ParseMessage("bdw1  HELLO mc", &msg, nullptr));
  EXPECT_FALSE(ParseMessage(" bdw1 HELLO mc", &msg, nullptr));
  EXPECT_FALSE(ParseMessage("bdw1 HELLO mc ", &msg, nullptr));
}

TEST(WireParseTest, RejectsWrongFieldCounts) {
  Message msg;
  EXPECT_FALSE(ParseMessage("bdw1 HELLO", &msg, nullptr));
  EXPECT_FALSE(ParseMessage("bdw1 HELLO mc extra", &msg, nullptr));
  EXPECT_FALSE(ParseMessage("bdw1 PULL mc", &msg, nullptr));
  EXPECT_FALSE(ParseMessage("bdw1 WELCOME 1 2", &msg, nullptr));
  EXPECT_FALSE(ParseMessage("bdw1 SLOT 1 2 P", &msg, nullptr));
  EXPECT_FALSE(ParseMessage("bdw1 STATS 1 2 3 4 5 6", &msg, nullptr));
  EXPECT_FALSE(ParseMessage("bdw1 FIN", &msg, nullptr));
}

TEST(WireParseTest, RejectsBadNumbersAndKinds) {
  Message msg;
  std::string error;
  EXPECT_FALSE(ParseMessage("bdw1 PULL mc twelve", &msg, &error));
  EXPECT_EQ(error, "bad page");
  // "-" is only valid in a SLOT page field, never in a PULL.
  EXPECT_FALSE(ParseMessage("bdw1 PULL mc -", &msg, nullptr));
  EXPECT_FALSE(ParseMessage("bdw1 PULL mc 4294967296", &msg, nullptr));
  EXPECT_FALSE(ParseMessage("bdw1 WELCOME 1 2 x", &msg, nullptr));
  EXPECT_FALSE(ParseMessage("bdw1 SLOT x 2 P 3", &msg, nullptr));
  EXPECT_FALSE(ParseMessage("bdw1 SLOT 1 2 Z 3", &msg, nullptr));
  EXPECT_FALSE(ParseMessage("bdw1 SLOT 1 2 PQ 3", &msg, nullptr));
  EXPECT_FALSE(ParseMessage("bdw1 SLOT 1 2 P 3x", &msg, nullptr));
  EXPECT_FALSE(ParseMessage("bdw1 STATS 1 2 3 4 5 6 x", &msg, nullptr));
}

TEST(WireParseTest, RejectsBadClientIds) {
  Message msg;
  EXPECT_FALSE(ValidClientId(""));
  EXPECT_FALSE(ValidClientId(std::string(65, 'a')));
  EXPECT_TRUE(ValidClientId(std::string(64, 'a')));
  EXPECT_FALSE(ValidClientId("has space"));
  EXPECT_FALSE(ValidClientId("has\ttab"));
  EXPECT_FALSE(ValidClientId(std::string("nul\0id", 6)));
  EXPECT_TRUE(ValidClientId("load-1.restarted"));
  // A 65-byte id is structurally one field but semantically invalid.
  EXPECT_FALSE(
      ParseMessage("bdw1 HELLO " + std::string(65, 'a'), &msg, nullptr));
}

}  // namespace
}  // namespace bdisk::transport::wire
