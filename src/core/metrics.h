#ifndef BDISK_CORE_METRICS_H_
#define BDISK_CORE_METRICS_H_

#include <cstdint>
#include <vector>

#include "sim/stats.h"
#include "sim/types.h"

namespace bdisk::core {

/// One point on a warm-up trajectory: the first simulation time at which
/// the cache held `fraction` of its ideal contents.
struct WarmupPoint {
  double fraction;
  sim::SimTime time;  // kTimeNever when never reached within the run.
};

/// Everything measured in one simulation run.
struct RunResult {
  /// Mean response time over measured MC accesses, in broadcast units —
  /// the paper's primary metric. Cache hits count as 0 and are included.
  double mean_response = 0.0;
  /// Full response-time statistics for the measured window.
  sim::RunningStats response_stats;

  /// MC counters over the entire run (warm-up + measurement).
  std::uint64_t mc_accesses = 0;
  double mc_hit_rate = 0.0;
  std::uint64_t mc_pulls_sent = 0;
  std::uint64_t mc_retries_sent = 0;
  std::uint64_t mc_prefetches = 0;
  std::uint64_t mc_invalidations = 0;

  /// Volatile-data extension: server-side updates generated.
  std::uint64_t updates_generated = 0;

  /// Server request-queue accounting over the entire run.
  std::uint64_t requests_submitted = 0;
  std::uint64_t requests_accepted = 0;
  std::uint64_t requests_coalesced = 0;
  std::uint64_t requests_dropped = 0;
  /// Fraction of submitted pull requests dropped at a full queue.
  double drop_rate = 0.0;

  /// Frontchannel slot usage fractions.
  double push_slot_frac = 0.0;
  double pull_slot_frac = 0.0;
  double idle_slot_frac = 0.0;

  /// Push-program shape.
  std::uint32_t major_cycle_len = 0;

  /// Warm-up trajectory (populated by warm-up runs).
  std::vector<WarmupPoint> warmup;

  /// Bookkeeping.
  sim::SimTime sim_time_end = 0.0;
  bool converged = false;  // Batch-means declared stability (steady-state
                           // runs) / target fraction reached (warm-up runs).
};

}  // namespace bdisk::core

#endif  // BDISK_CORE_METRICS_H_
