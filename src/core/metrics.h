#ifndef BDISK_CORE_METRICS_H_
#define BDISK_CORE_METRICS_H_

#include <cstdint>
#include <vector>

#include "sim/stats.h"
#include "sim/types.h"

namespace bdisk::core {

/// One point on a warm-up trajectory: the first simulation time at which
/// the cache held `fraction` of its ideal contents.
struct WarmupPoint {
  double fraction;
  sim::SimTime time;  // kTimeNever when never reached within the run.
};

/// Runtime profile of the simulation kernel over one run. All sources are
/// always-on (plain counter bumps in the event loop), so these fields are
/// populated whether or not a metrics registry is attached.
struct KernelProfile {
  /// Events dispatched by the simulator.
  std::uint64_t events_executed = 0;
  /// Deepest the event heap ever got (periodic timers bypass the heap, so
  /// this measures the *aperiodic* load: client wakeups, controllers).
  std::uint64_t heap_high_water = 0;
  /// Periodic-timer re-arms served by the heapless fast path.
  std::uint64_t periodic_rearms = 0;
  /// Lazy-source arrivals processed in batch (each would have been one
  /// heap event without fusion), and barrier drains that found work.
  /// events_executed + lazy_arrivals_fused is invariant under fusion.
  std::uint64_t lazy_arrivals_fused = 0;
  std::uint64_t lazy_drains = 0;
  /// Lazily-cancelled event entries physically retired, each exactly once
  /// (see sim::EventQueue::StaleDiscarded); after a full drain this equals
  /// the number of effective cancellations.
  std::uint64_t stale_discarded = 0;
  /// Batched periodic spans the run loop entered (slot occurrences fired
  /// back-to-back without a queue pop each).
  std::uint64_t periodic_spans = 0;
  /// Host wall-clock seconds spent inside RunUntil.
  double wall_seconds = 0.0;
  /// Throughput rates; 0 when wall_seconds is too small to measure.
  double events_per_wall_second = 0.0;
  double sim_units_per_wall_second = 0.0;
};

/// Everything measured in one simulation run.
struct RunResult {
  /// Mean response time over measured MC accesses, in broadcast units —
  /// the paper's primary metric. Cache hits count as 0 and are included.
  double mean_response = 0.0;
  /// Full response-time statistics for the measured window.
  sim::RunningStats response_stats;

  /// Response-time distribution over the same measured window, from the
  /// MC's always-on bucketed histogram. Percentiles interpolate within the
  /// containing bucket (error bounded by one bucket width ≈ DbSize/256
  /// broadcast units); the max is exact. All 0 when nothing was measured.
  double response_p50 = 0.0;
  double response_p90 = 0.0;
  double response_p95 = 0.0;
  double response_p99 = 0.0;
  double response_max = 0.0;

  /// MC counters over the entire run (warm-up + measurement).
  std::uint64_t mc_accesses = 0;
  double mc_hit_rate = 0.0;
  std::uint64_t mc_pulls_sent = 0;
  std::uint64_t mc_retries_sent = 0;
  std::uint64_t mc_prefetches = 0;
  std::uint64_t mc_invalidations = 0;
  std::uint64_t mc_cache_evictions = 0;
  std::uint64_t mc_cache_removals = 0;

  /// VC counters over the entire run (all 0 without a virtual client).
  std::uint64_t vc_requests_generated = 0;
  std::uint64_t vc_cache_hits = 0;
  std::uint64_t vc_filtered = 0;
  std::uint64_t vc_submitted = 0;

  /// Volatile-data extension: server-side updates generated.
  std::uint64_t updates_generated = 0;

  /// Server request-queue accounting over the entire run.
  std::uint64_t requests_submitted = 0;
  std::uint64_t requests_accepted = 0;
  std::uint64_t requests_coalesced = 0;
  std::uint64_t requests_dropped = 0;
  /// Fault-layer drops, accounted separately from capacity drops
  /// (requests_dropped): shed by degraded-mode admission control, and
  /// discarded during an outage window. Both 0 without a FaultPlan.
  std::uint64_t requests_shed = 0;
  std::uint64_t requests_dropped_outage = 0;
  /// Fraction of submitted pull requests discarded for any reason
  /// (capacity, shed, or outage).
  double drop_rate = 0.0;
  /// Deepest the pull queue ever got (distinct queued pages).
  std::uint32_t queue_depth_high_water = 0;

  /// Fault-injection accounting (all 0 without a FaultPlan; see
  /// ROBUSTNESS.md). Injected faults:
  std::uint64_t fault_slots_lost = 0;
  std::uint64_t fault_slots_corrupted = 0;
  std::uint64_t fault_requests_lost = 0;
  std::uint64_t fault_requests_delayed = 0;
  std::uint64_t outage_slots = 0;
  std::uint64_t outages_started = 0;
  /// Server degraded-mode transitions:
  std::uint64_t degraded_enters = 0;
  std::uint64_t degraded_exits = 0;
  /// MC robustness engine:
  std::uint64_t mc_timeouts_fired = 0;
  std::uint64_t mc_abandoned = 0;
  std::uint64_t mc_fallbacks = 0;
  std::uint64_t mc_probes_sent = 0;
  std::uint64_t mc_backchannel_deaths = 0;
  std::uint64_t mc_backchannel_recoveries = 0;

  /// Frontchannel slot usage fractions.
  double push_slot_frac = 0.0;
  double pull_slot_frac = 0.0;
  double idle_slot_frac = 0.0;

  /// Push-program shape.
  std::uint32_t major_cycle_len = 0;

  /// Warm-up trajectory (populated by warm-up runs).
  std::vector<WarmupPoint> warmup;

  /// Kernel runtime profile (event counts, heap depth, wall-clock rates).
  KernelProfile kernel;

  /// Bookkeeping.
  sim::SimTime sim_time_end = 0.0;
  bool converged = false;  // Batch-means declared stability (steady-state
                           // runs) / target fraction reached (warm-up runs).
};

}  // namespace bdisk::core

#endif  // BDISK_CORE_METRICS_H_
