#ifndef BDISK_CORE_TABLE_PRINTER_H_
#define BDISK_CORE_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace bdisk::core {

/// Renders aligned plain-text tables — the benchmark harness prints one per
/// reproduced figure, with curves as rows/columns matching the paper's
/// series.
class TablePrinter {
 public:
  /// Column headers define the column count.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with right-aligned, padded columns and a header
  /// separator line.
  std::string ToString() const;

  /// Formats a double with fixed precision.
  static std::string Fmt(double value, int precision = 1);

  /// Formats a percentage (0.123 -> "12.3%").
  static std::string Pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bdisk::core

#endif  // BDISK_CORE_TABLE_PRINTER_H_
