#include "core/csv.h"

#include <cstdio>

namespace bdisk::core {

namespace {

// Quotes a field if it contains separators (labels may contain commas).
std::string Quote(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (const char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

std::string SweepToCsv(const std::vector<SweepOutcome>& outcomes) {
  std::string out =
      "curve,x,mean_response,response_p50,response_p90,response_p95,"
      "response_p99,response_max,drop_rate,hit_rate,pulls_sent,"
      "requests_submitted,requests_dropped,push_frac,pull_frac,idle_frac,"
      "converged\n";
  char line[512];
  for (const SweepOutcome& outcome : outcomes) {
    const RunResult& r = outcome.result;
    std::snprintf(line, sizeof(line),
                  ",%g,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%.6g,%llu,%llu,"
                  "%llu,%.6g,%.6g,%.6g,%d\n",
                  outcome.point.x, r.mean_response, r.response_p50,
                  r.response_p90, r.response_p95, r.response_p99,
                  r.response_max, r.drop_rate, r.mc_hit_rate,
                  static_cast<unsigned long long>(r.mc_pulls_sent),
                  static_cast<unsigned long long>(r.requests_submitted),
                  static_cast<unsigned long long>(r.requests_dropped),
                  r.push_slot_frac, r.pull_slot_frac, r.idle_slot_frac,
                  r.converged ? 1 : 0);
    out += Quote(outcome.point.curve);
    out += line;
  }
  return out;
}

std::string WarmupToCsv(const std::vector<SweepOutcome>& outcomes) {
  std::string out = "curve,x,fraction,time\n";
  char line[128];
  for (const SweepOutcome& outcome : outcomes) {
    for (const WarmupPoint& point : outcome.result.warmup) {
      if (point.time == sim::kTimeNever) continue;
      std::snprintf(line, sizeof(line), ",%g,%g,%.6g\n", outcome.point.x,
                    point.fraction, point.time);
      out += Quote(outcome.point.curve);
      out += line;
    }
  }
  return out;
}

}  // namespace bdisk::core
