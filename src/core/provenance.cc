#include "core/provenance.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bdisk::core {

const char* BuildType() {
#ifdef BDISK_BUILD_TYPE
  return BDISK_BUILD_TYPE[0] != '\0' ? BDISK_BUILD_TYPE : "unspecified";
#else
  return "unknown";
#endif
}

const char* GitRev() {
#ifdef BDISK_GIT_REV
  return BDISK_GIT_REV;
#else
  return "unknown";
#endif
}

bool OptimizedBuild() {
#ifdef NDEBUG
  // NDEBUG alone is not enough: an empty CMAKE_BUILD_TYPE also defines
  // nothing but compiles at -O0. Require an explicit Release-family config.
  const char* type = BuildType();
  return std::strncmp(type, "Rel", 3) == 0 ||
         std::strcmp(type, "MinSizeRel") == 0;
#else
  return false;
#endif
}

void RequireOptimizedBuild(const char* binary_name) {
  if (OptimizedBuild()) return;
  const char* allow = std::getenv("BDISK_BENCH_ALLOW_DEBUG");
  if (allow != nullptr && allow[0] != '\0') {
    std::fprintf(stderr,
                 "[%s] WARNING: %s build (rev %s) — numbers are NOT "
                 "comparable to recorded baselines "
                 "(BDISK_BENCH_ALLOW_DEBUG set)\n",
                 binary_name, BuildType(), GitRev());
    return;
  }
  std::fprintf(stderr,
               "[%s] refusing to run: built as '%s', not Release (rev %s).\n"
               "Recorded performance numbers must come from optimized "
               "builds; rebuild with\n"
               "  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release\n"
               "or set BDISK_BENCH_ALLOW_DEBUG=1 to run anyway (results "
               "tagged, never record them).\n",
               binary_name, BuildType(), GitRev());
  std::exit(2);
}

}  // namespace bdisk::core
