#ifndef BDISK_CORE_ANALYTIC_H_
#define BDISK_CORE_ANALYTIC_H_

#include <vector>

#include "broadcast/broadcast_program.h"

namespace bdisk::core {

/// Closed-form expectations used to validate the simulator (tests compare
/// simulated Pure-Push response times against these within a tolerance).

/// Expected response time, in broadcast units, of a cache-less client
/// reading only from the periodic broadcast: sum over pages of
/// p(page) * (L / (2 * freq(page)) + 1), where the +1 is the transmission
/// slot. Assumes each page's occurrences are evenly spaced (true up to
/// chunk-size rounding for programs built by BuildSchedule). All pages with
/// non-zero probability must be scheduled.
double ExpectedPushResponse(const broadcast::BroadcastProgram& program,
                            const std::vector<double>& probs);

/// Same, but accesses to pages in `resident` (the warmed cache contents)
/// cost 0 — the steady-state expectation for a push-only client.
double ExpectedSteadyPushResponse(const broadcast::BroadcastProgram& program,
                                  const std::vector<double>& probs,
                                  const std::vector<bool>& resident);

}  // namespace bdisk::core

#endif  // BDISK_CORE_ANALYTIC_H_
