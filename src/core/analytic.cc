#include "core/analytic.h"

#include "sim/check.h"

namespace bdisk::core {

namespace {

double ExpectedWaitFor(const broadcast::BroadcastProgram& program,
                       broadcast::PageId page) {
  const std::uint32_t freq = program.Frequency(page);
  BDISK_CHECK_MSG(freq > 0, "page with access probability is not scheduled");
  return static_cast<double>(program.Length()) /
             (2.0 * static_cast<double>(freq)) +
         1.0;  // +1: the transmission slot itself.
}

}  // namespace

double ExpectedPushResponse(const broadcast::BroadcastProgram& program,
                            const std::vector<double>& probs) {
  BDISK_CHECK_MSG(probs.size() == program.DbSize(),
                  "probability vector must cover the database");
  double expected = 0.0;
  for (std::size_t p = 0; p < probs.size(); ++p) {
    if (probs[p] == 0.0) continue;
    expected +=
        probs[p] * ExpectedWaitFor(program, static_cast<broadcast::PageId>(p));
  }
  return expected;
}

double ExpectedSteadyPushResponse(const broadcast::BroadcastProgram& program,
                                  const std::vector<double>& probs,
                                  const std::vector<bool>& resident) {
  BDISK_CHECK_MSG(probs.size() == program.DbSize(),
                  "probability vector must cover the database");
  BDISK_CHECK_MSG(resident.size() == probs.size(),
                  "residency vector must cover the database");
  double expected = 0.0;
  for (std::size_t p = 0; p < probs.size(); ++p) {
    if (probs[p] == 0.0 || resident[p]) continue;
    expected +=
        probs[p] * ExpectedWaitFor(program, static_cast<broadcast::PageId>(p));
  }
  return expected;
}

}  // namespace bdisk::core
