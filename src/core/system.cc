#include "core/system.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <numeric>
#include <sstream>
#include <utility>

#include "broadcast/program_builder.h"
#include "cache/value_functions.h"
#include "sim/batch_means.h"
#include "sim/check.h"
#include "sim/zipf.h"

namespace bdisk::core {

namespace {

// Fixed salts give each component an independent, reproducible RNG stream.
// Fault streams are salted (not Split() from the root) so enabling a
// FaultPlan never shifts the streams existing components draw from.
constexpr std::uint64_t kNoiseSalt = 0xBD15C01F5EEDULL;
constexpr std::uint64_t kFaultSalt = 0xFA017'1A7EC7EDULL;
constexpr std::uint64_t kRetrySalt = 0x2E72'BAC0FF5EULL;

workload::AccessPattern MakeMcPattern(const workload::AccessPattern& canonical,
                                      const SystemConfig& config) {
  if (config.noise == 0.0) return canonical;
  sim::Rng noise_rng(config.seed ^ kNoiseSalt);
  return canonical.WithNoise(config.noise, noise_rng);
}

// The one construction path for the push program. System's constructor and
// the standalone ProgramForConfig both come through here, so the two can
// never drift; `layout_out` (optional) receives the page-to-disk layout.
broadcast::BroadcastProgram BuildProgramFromPattern(
    const workload::AccessPattern& canonical, const SystemConfig& config,
    broadcast::PushLayout* layout_out) {
  std::vector<broadcast::PageId> schedule;
  if (config.mode != DeliveryMode::kPurePull) {
    broadcast::PushLayout layout = broadcast::BuildPushLayout(
        canonical.probs(), config.disks, config.EffectiveOffset(),
        config.chop_count);
    schedule = broadcast::BuildSchedule(layout.disk_pages,
                                        config.disks.rel_freqs,
                                        config.chunking);
    if (layout_out != nullptr) *layout_out = std::move(layout);
  }
  return broadcast::BroadcastProgram(std::move(schedule),
                                     config.server_db_size);
}

}  // namespace

workload::AccessPattern CanonicalPatternForConfig(const SystemConfig& config) {
  return workload::AccessPattern::Zipf(config.server_db_size,
                                       config.zipf_theta);
}

workload::AccessPattern McPatternForConfig(const SystemConfig& config) {
  return MakeMcPattern(CanonicalPatternForConfig(config), config);
}

broadcast::BroadcastProgram ProgramForConfig(const SystemConfig& config) {
  return BuildProgramFromPattern(CanonicalPatternForConfig(config), config,
                                 nullptr);
}

std::shared_ptr<const SystemArtifacts> BuildArtifacts(
    const SystemConfig& config) {
  auto artifacts =
      std::make_shared<SystemArtifacts>(CanonicalPatternForConfig(config));
  artifacts->program = std::make_shared<const broadcast::BroadcastProgram>(
      BuildProgramFromPattern(artifacts->canonical_pattern, config,
                              &artifacts->layout));
  // PIX whenever a push program exists; P for Pure-Pull (§3.1).
  artifacts->canonical_values =
      artifacts->program->Empty()
          ? cache::PValues(artifacts->canonical_pattern.probs())
          : cache::PixValues(artifacts->canonical_pattern.probs(),
                             *artifacts->program);
  return artifacts;
}

std::string ArtifactKey(const SystemConfig& config) {
  std::ostringstream key;
  // %a prints the exact bits of the double, so two thetas compare equal in
  // the key iff they produce the identical Zipf pattern.
  char theta[64];
  std::snprintf(theta, sizeof(theta), "%a", config.zipf_theta);
  key << config.server_db_size << '|' << theta;
  if (config.mode == DeliveryMode::kPurePull) {
    // No push program: the disk shape, offset, chop, and chunking fields
    // play no part, so Pure-Pull points share regardless of them.
    key << "|pull";
    return key.str();
  }
  key << '|' << config.EffectiveOffset() << '|' << config.chop_count << '|'
      << static_cast<int>(config.chunking) << "|d";
  for (const std::uint32_t s : config.disks.sizes) key << ',' << s;
  key << "|f";
  for (const std::uint32_t f : config.disks.rel_freqs) key << ',' << f;
  return key.str();
}

std::shared_ptr<const SystemArtifacts> ArtifactCache::Get(
    const SystemConfig& config) {
  const std::string key = ArtifactKey(config);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  // Build outside the lock: misses are the expensive path and distinct
  // keys should build concurrently. A racing duplicate build of the same
  // key is harmless (identical artifacts; first insert wins).
  std::shared_ptr<const SystemArtifacts> built = BuildArtifacts(config);
  const std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = cache_.emplace(key, std::move(built));
  return it->second;
}

std::vector<broadcast::PageId> TopValuedPages(
    const std::vector<double>& values, std::uint32_t k) {
  BDISK_CHECK_MSG(k <= values.size(), "k exceeds the database size");
  std::vector<broadcast::PageId> pages(values.size());
  std::iota(pages.begin(), pages.end(), 0U);
  // O(n log k): only the top k need ordering. The explicit index tie-break
  // makes the comparator a total order, so the result is the exact prefix
  // a stable full sort on `values[a] > values[b]` would produce.
  std::partial_sort(pages.begin(), pages.begin() + k, pages.end(),
                    [&values](broadcast::PageId a, broadcast::PageId b) {
                      if (values[a] != values[b]) return values[a] > values[b];
                      return a < b;
                    });
  pages.resize(k);
  return pages;
}

System::System(const SystemConfig& config,
               std::shared_ptr<const SystemArtifacts> artifacts)
    : config_(config),
      simulator_(config.kernel_queue == KernelQueue::kHeap
                     ? sim::QueueKind::kHeap
                 : config.kernel_queue == KernelQueue::kWheel
                     ? sim::QueueKind::kWheel
                     : sim::DefaultQueueKind()),
      artifacts_(artifacts != nullptr ? std::move(artifacts)
                                      : BuildArtifacts(config)),
      mc_pattern_(MakeMcPattern(artifacts_->canonical_pattern, config)) {
  const std::string error = config.Validate();
  BDISK_CHECK_MSG(error.empty(), error.c_str());
  simulator_.SetBatchedPeriodic(config.kernel_batch_slots);
  BDISK_CHECK_MSG(
      artifacts_->canonical_pattern.DbSize() == config.server_db_size,
      "shared artifacts built from a different configuration");

  sim::Rng root(config.seed);
  sim::Rng server_rng = root.Split();
  sim::Rng mc_rng = root.Split();
  sim::Rng vc_rng = root.Split();

  // --- Server -----------------------------------------------------------
  // The program comes from the aggregate (VC) pattern; the MC's possibly-
  // noisy view plays no part in it (§3.2). Shared across Systems in a
  // sweep — the server only reads it.
  server_ = std::make_unique<server::BroadcastServer>(
      &simulator_, artifacts_->program, config.EffectivePullBw(),
      config.server_queue_size, server_rng);

  // --- Value metrics ----------------------------------------------------
  // The canonical (VC-side) values are part of the shared artifacts; the
  // MC's values differ only when its pattern is Noise-perturbed.
  const bool push_exists = !server_->program().Empty();
  const std::vector<double>& vc_values = artifacts_->canonical_values;
  const std::vector<double> mc_values =
      config.noise == 0.0
          ? artifacts_->canonical_values
          : (push_exists
                 ? cache::PixValues(mc_pattern_.probs(), server_->program())
                 : cache::PValues(mc_pattern_.probs()));

  // --- Measured client ---------------------------------------------------
  client::MeasuredClientOptions mc_options;
  mc_options.cache_size = config.cache_size;
  mc_options.policy = config.mc_policy.value_or(
      push_exists ? cache::PolicyKind::kPix : cache::PolicyKind::kP);
  mc_options.think_time = config.mc_think_time;
  mc_options.use_backchannel = (config.mode != DeliveryMode::kPurePush);
  mc_options.thres_perc =
      (config.mode == DeliveryMode::kIpp) ? config.thres_perc : 0.0;
  mc_options.prefetch = config.mc_prefetch;
  if (mc_options.use_backchannel) {
    // Unscheduled pages have no push safety net; retry a (possibly dropped)
    // pull after roughly one would-be cycle. See DESIGN.md, Substitutions.
    mc_options.retry_interval =
        config.mc_retry_interval > 0.0
            ? config.mc_retry_interval
            : (push_exists
                   ? static_cast<double>(server_->program().Length())
                   : static_cast<double>(config.server_db_size));
  }
  mc_ = std::make_unique<client::MeasuredClient>(
      &simulator_, server_.get(), mc_pattern_, mc_options, mc_rng,
      TopValuedPages(mc_values, config.cache_size));
  // The transport seam: simulated systems always use the in-process
  // backend, which forwards to the exact SubmitRequest call the client
  // made before the seam existed — trajectories stay bit-identical.
  sim_transport_ = std::make_unique<transport::SimTransport>(server_.get());
  mc_->SetTransport(sim_transport_.get());

  // --- Virtual client ----------------------------------------------------
  if (config.mode != DeliveryMode::kPurePush && config.vc_enabled) {
    client::VirtualClientOptions vc_options;
    vc_options.mc_think_time = config.mc_think_time;
    vc_options.think_time_ratio = config.think_time_ratio;
    vc_options.steady_state_perc = config.steady_state_perc;
    vc_options.thres_perc =
        (config.mode == DeliveryMode::kIpp) ? config.thres_perc : 0.0;
    vc_options.cache_size = config.cache_size;
    // fault.request_delay re-times submissions through the event heap; the
    // fused batch path cannot represent that, so delay forces unfused.
    vc_options.fused = config.vc_fusion && config.fault.request_delay == 0.0;
    // The batched spine rides the fused drain; unfused bypasses it. kAuto
    // defers to the BDISK_ARRIVAL_SPINE environment variable (default on).
    vc_options.spine =
        config.arrival_spine == ArrivalSpine::kAuto
            ? client::DefaultArrivalSpineOn()
            : config.arrival_spine == ArrivalSpine::kOn;
    vc_ = std::make_unique<client::VirtualClient>(
        &simulator_, server_.get(), artifacts_->canonical_pattern,
        TopValuedPages(vc_values, config.cache_size), vc_options, vc_rng);
  }

  // --- Volatile data (extension; [Acha96b]) ------------------------------
  if (config.update_rate > 0.0) {
    sim::Rng update_rng = root.Split();
    update_generator_ = std::make_unique<server::UpdateGenerator>(
        &simulator_, config.update_rate,
        sim::ZipfPmf(config.server_db_size,
                     config.update_zipf_theta.value_or(config.zipf_theta)),
        update_rng);
    update_generator_->AddListener(mc_.get());
    if (vc_) update_generator_->AddListener(vc_.get());
  }

  // --- Fault injection / robustness (bdisk::fault; ROBUSTNESS.md) --------
  if (config.fault.Enabled()) {
    injector_ = std::make_unique<fault::FaultInjector>(
        config.fault, sim::Rng(config.seed ^ kFaultSalt));
    server_->SetFaultInjector(injector_.get());
    if (mc_options.use_backchannel) {
      client::RobustPullOptions robust;
      const double cycle = push_exists
                               ? static_cast<double>(server_->program().Length())
                               : static_cast<double>(config.server_db_size);
      robust.timeout =
          config.fault.mc_timeout > 0.0 ? config.fault.mc_timeout : cycle;
      robust.max_retries = config.fault.mc_max_retries;
      robust.backoff = config.fault.mc_backoff;
      robust.backoff_cap = config.fault.mc_backoff_cap > 0.0
                               ? config.fault.mc_backoff_cap
                               : 8.0 * robust.timeout;
      robust.jitter = config.fault.mc_jitter;
      robust.dead_threshold = config.fault.mc_dead_threshold;
      robust.probe_interval = config.fault.mc_probe_interval > 0.0
                                  ? config.fault.mc_probe_interval
                                  : cycle;
      mc_->EnableRobustness(robust, sim::Rng(config.seed ^ kRetrySalt));
    }
  }

  // --- Adaptive controllers (extension; paper §6) ------------------------
  if (config.adaptive_pull_bw) {
    server_controller_ = std::make_unique<adaptive::ServerController>(
        &simulator_, server_.get(), config.server_controller);
  }
  if (config.adaptive_threshold) {
    client_controller_ = std::make_unique<adaptive::ClientController>(
        &simulator_, mc_.get(), config.client_controller);
  }
}

void System::AttachMetrics(obs::MetricsRegistry* registry) {
  BDISK_CHECK_MSG(!ran_, "attach observability before running");
  BDISK_CHECK_MSG(registry != nullptr, "AttachMetrics needs a registry");
  server_->EnableMetrics(registry);
  mc_->EnableMetrics(registry);
}

void System::AttachTrace(obs::TraceSink* sink) {
  BDISK_CHECK_MSG(!ran_, "attach observability before running");
  sink_ = sink;
  server_->SetTraceSink(sink);
  mc_->SetTraceSink(sink);
}

void System::AttachWindowedCollector(obs::WindowedCollector* collector) {
  BDISK_CHECK_MSG(!ran_, "attach observability before running");
  BDISK_CHECK_MSG(collector != nullptr,
                  "AttachWindowedCollector needs a collector");
  collector_ = collector;
  server_->SetWindowedCollector(collector);
  mc_->SetWindowedCollector(collector);
}

void System::AttachProfiler(obs::PhaseProfiler* profiler) {
  BDISK_CHECK_MSG(!ran_, "attach observability before running");
  BDISK_CHECK_MSG(profiler != nullptr, "AttachProfiler needs a profiler");
  profiler_ = profiler;
  profiler->SetBackend(simulator_.queue_kind() == sim::QueueKind::kHeap
                           ? "heap"
                           : "wheel");
  simulator_.SetPhaseProfiler(profiler);
  server_->SetPhaseProfiler(profiler);
  // The clients read the profiler through the simulator pointer they
  // already hold, so no per-client wiring is needed.
}

void System::AttachFlightRecorder(obs::FlightRecorder* recorder) {
  BDISK_CHECK_MSG(!ran_, "attach observability before running");
  BDISK_CHECK_MSG(recorder != nullptr,
                  "AttachFlightRecorder needs a recorder");
  BDISK_CHECK_MSG(collector_ != nullptr,
                  "attach a windowed collector before the flight recorder");
  recorder_ = recorder;
  collector_->SetFlightRecorder(recorder);
  recorder->SetTraceSink(sink_);
  recorder->SetSnapshot([this] {
    obs::MetricsRegistry registry;
    SnapshotMetrics(&registry);
    return registry.ToJson();
  });
  if (bus_ != nullptr) recorder->SetTelemetryBus(bus_);
}

void System::AttachTelemetryBus(obs::TelemetryBus* bus) {
  BDISK_CHECK_MSG(!ran_, "attach observability before running");
  BDISK_CHECK_MSG(bus != nullptr, "AttachTelemetryBus needs a bus");
  BDISK_CHECK_MSG(collector_ != nullptr,
                  "attach a windowed collector before the telemetry bus");
  bus_ = bus;
  // SetProbe captures the base counter vector immediately: the server's
  // constructor already made the first slot decision, so counters are not
  // zero at attach time. Frames carry deltas from this base, and run_end
  // republishes it so a consumer can reconcile base + sum(deltas) against
  // the final snapshot exactly.
  bus->SetProbe([this] { return ProbeTelemetryCounters(); });
  collector_->SetTelemetryBus(bus);
  server_->SetTelemetryBus(bus);
  if (recorder_ != nullptr) recorder_->SetTelemetryBus(bus);
}

std::vector<obs::CounterSample> System::ProbeTelemetryCounters() const {
  // Names match SnapshotMetrics keys one-for-one so bdisk_top --check
  // --snapshot can reconcile a frame stream against the final
  // bdisk-metrics-v1 document without any mapping table.
  std::vector<obs::CounterSample> samples;
  samples.reserve(14);
  const server::PullQueue& queue = server_->queue();
  samples.push_back({"server.slots_push", server_->PushSlots()});
  samples.push_back({"server.slots_pull", server_->PullSlots()});
  samples.push_back({"server.slots_idle", server_->IdleSlots()});
  samples.push_back({"server.queue.submitted", queue.SubmittedCount()});
  samples.push_back({"server.queue.accepted", queue.AcceptedCount()});
  samples.push_back({"server.queue.coalesced", queue.CoalescedCount()});
  samples.push_back({"server.queue.dropped", queue.DroppedCount()});
  samples.push_back({"client.mc.accesses", mc_->TotalAccesses()});
  samples.push_back({"client.mc.pulls_sent", mc_->PullRequestsSent()});
  if (injector_) {
    samples.push_back({"fault.slots_lost", injector_->SlotsLost()});
    samples.push_back({"fault.slots_corrupted", injector_->SlotsCorrupted()});
    samples.push_back({"fault.requests_lost", injector_->RequestsLost()});
    samples.push_back({"fault.requests_shed", queue.ShedCount()});
    samples.push_back(
        {"fault.requests_dropped_outage", queue.OutageDropCount()});
  }
  return samples;
}

std::vector<std::pair<std::string, std::string>> System::TelemetryProvenance()
    const {
  // Only trajectory-relevant knobs: kernel backend / batching / spine
  // selection is deliberately excluded so frame streams stay byte-identical
  // across the kernel matrix.
  std::vector<std::pair<std::string, std::string>> p;
  p.emplace_back("mode", DeliveryModeName(config_.mode));
  p.emplace_back("db_size", std::to_string(config_.server_db_size));
  p.emplace_back("seed", std::to_string(config_.seed));
  {
    std::ostringstream os;
    os << config_.think_time_ratio;
    p.emplace_back("think_time_ratio", os.str());
  }
  {
    std::ostringstream os;
    os << config_.obs_window;
    p.emplace_back("obs_window", os.str());
  }
  p.emplace_back("fault", config_.fault.Enabled() ? "on" : "off");
  return p;
}

void System::SnapshotMetrics(obs::MetricsRegistry* registry) const {
  BDISK_CHECK_MSG(registry != nullptr, "SnapshotMetrics needs a registry");
  const auto counter = [registry](const char* name, std::uint64_t v) {
    registry->GetCounter(name)->Set(v);
  };
  const auto gauge = [registry](const char* name, double v) {
    registry->GetGauge(name)->Set(v);
  };

  counter("server.slots_total", server_->TotalSlots());
  counter("server.slots_push", server_->PushSlots());
  counter("server.slots_pull", server_->PullSlots());
  counter("server.slots_idle", server_->IdleSlots());
  const server::PullQueue& queue = server_->queue();
  counter("server.queue.submitted", queue.SubmittedCount());
  counter("server.queue.accepted", queue.AcceptedCount());
  counter("server.queue.coalesced", queue.CoalescedCount());
  counter("server.queue.dropped", queue.DroppedCount());
  gauge("server.queue.depth_high_water", queue.DepthHighWater());
  gauge("server.queue.drop_rate", queue.DropRate());
  gauge("server.pull_bw", server_->pull_bw());

  counter("client.mc.accesses", mc_->TotalAccesses());
  counter("client.mc.cache.hits", mc_->cache().Hits());
  counter("client.mc.cache.misses", mc_->cache().Misses());
  counter("client.mc.cache.evictions", mc_->cache().Evictions());
  counter("client.mc.cache.removals", mc_->cache().Removals());
  counter("client.mc.pulls_sent", mc_->PullRequestsSent());
  counter("client.mc.retries_sent", mc_->RetriesSent());
  counter("client.mc.prefetches", mc_->Prefetches());
  counter("client.mc.invalidations_seen", mc_->InvalidationsSeen());
  gauge("client.mc.pull_wait_ratio", mc_->PullWaitRatio());
  registry->ExportHistogram("client.mc.response", mc_->response_histogram());
  if (vc_) {
    counter("client.vc.requests_generated", vc_->RequestsGenerated());
    counter("client.vc.cache_hits", vc_->CacheHits());
    counter("client.vc.filtered", vc_->FilteredByThreshold());
    counter("client.vc.submitted", vc_->RequestsSubmitted());
  }
  if (update_generator_) {
    counter("server.updates_generated", update_generator_->UpdateCount());
  }
  if (injector_) {
    // fault.* keys exist only when a FaultPlan is active: bdisk_compare
    // treats a key present in one snapshot but not the other as a
    // regression, and fault-free snapshots must stay comparable to the
    // committed pre-fault baseline.
    counter("fault.slots_lost", injector_->SlotsLost());
    counter("fault.slots_corrupted", injector_->SlotsCorrupted());
    counter("fault.requests_lost", injector_->RequestsLost());
    counter("fault.requests_delayed", injector_->RequestsDelayed());
    counter("fault.requests_shed", queue.ShedCount());
    counter("fault.requests_dropped_outage", queue.OutageDropCount());
    counter("fault.outage_slots", server_->OutageSlots());
    counter("fault.outages_started", server_->OutagesStarted());
    counter("fault.degraded_enters", server_->DegradedEnters());
    counter("fault.degraded_exits", server_->DegradedExits());
    counter("fault.mc.timeouts", mc_->TimeoutsFired());
    counter("fault.mc.abandoned", mc_->Abandoned());
    counter("fault.mc.fallbacks", mc_->Fallbacks());
    counter("fault.mc.probes", mc_->ProbesSent());
    counter("fault.mc.backchannel_deaths", mc_->BackchannelDeaths());
    counter("fault.mc.backchannel_recoveries", mc_->BackchannelRecoveries());
  }

  if (collector_ != nullptr) collector_->PublishTo(registry);

  if (bus_ != nullptr) {
    counter("obs.frames_emitted", bus_->FramesEmitted());
    counter("obs.frames_dropped", bus_->FramesDropped());
  }

  counter("kernel.events_executed", simulator_.EventsExecuted());
  counter("kernel.periodic_rearms", simulator_.PeriodicRearms());
  counter("kernel.lazy_arrivals_fused", simulator_.LazyArrivalsFused());
  counter("kernel.lazy_drains", simulator_.LazyDrains());
  counter("kernel.stale_discarded", simulator_.StaleDiscarded());
  counter("kernel.periodic_spans", simulator_.PeriodicSpans());
  gauge("kernel.heap_high_water",
        static_cast<double>(simulator_.HeapHighWater()));
  gauge("kernel.wall_seconds", wall_seconds_);
  gauge("kernel.sim_time_end", simulator_.Now());

  // prof.* is wall-clock data (nondeterministic across runs); comparators
  // skip it via obs::kNondeterministicMetricSubstrings.
  if (profiler_ != nullptr) profiler_->MergeInto(registry);
}

void System::TimedRun(sim::SimTime max_sim_time) {
  if (bus_ != nullptr) {
    bus_->EmitRunStart(simulator_.Now(), TelemetryProvenance());
  }
  const auto start = std::chrono::steady_clock::now();
  simulator_.RunUntil(max_sim_time);
  wall_seconds_ = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  // Close the collector's partial window so the tail of the run is visible
  // in Windows() and snapshots (outside the timed region by a hair, but
  // Finish() is O(1) either way).
  if (collector_ != nullptr) collector_->Finish();
  // Anchor the profiler's closing calibration point as close to the run as
  // possible (idempotent; exports would otherwise do it lazily).
  if (profiler_ != nullptr) profiler_->Finalize();
  // run_end goes out after Finish() so the final partial window's frame
  // precedes it; it carries the closing deltas that make the stream
  // reconcile exactly even when trailing window frames were dropped.
  if (bus_ != nullptr) bus_->EmitRunEnd(simulator_.Now());
}

RunResult System::CollectResult(bool converged) const {
  RunResult result;
  result.response_stats = mc_->response_times();
  result.mean_response = result.response_stats.Mean();
  const obs::LatencyHistogram& rh = mc_->response_histogram();
  if (rh.Count() > 0) {
    result.response_p50 = rh.Percentile(0.50);
    result.response_p90 = rh.Percentile(0.90);
    result.response_p95 = rh.Percentile(0.95);
    result.response_p99 = rh.Percentile(0.99);
    result.response_max = rh.Max();
  }
  result.mc_accesses = mc_->TotalAccesses();
  result.mc_hit_rate =
      mc_->TotalAccesses() == 0
          ? 0.0
          : static_cast<double>(mc_->CacheHits()) /
                static_cast<double>(mc_->TotalAccesses());
  result.mc_pulls_sent = mc_->PullRequestsSent();
  result.mc_retries_sent = mc_->RetriesSent();
  result.mc_prefetches = mc_->Prefetches();
  result.mc_invalidations = mc_->InvalidationsSeen();
  result.mc_cache_evictions = mc_->cache().Evictions();
  result.mc_cache_removals = mc_->cache().Removals();
  if (vc_) {
    result.vc_requests_generated = vc_->RequestsGenerated();
    result.vc_cache_hits = vc_->CacheHits();
    result.vc_filtered = vc_->FilteredByThreshold();
    result.vc_submitted = vc_->RequestsSubmitted();
  }
  if (update_generator_) {
    result.updates_generated = update_generator_->UpdateCount();
  }

  const server::PullQueue& queue = server_->queue();
  result.requests_submitted = queue.SubmittedCount();
  result.requests_accepted = queue.AcceptedCount();
  result.requests_coalesced = queue.CoalescedCount();
  result.requests_dropped = queue.DroppedCount();
  result.requests_shed = queue.ShedCount();
  result.requests_dropped_outage = queue.OutageDropCount();
  result.drop_rate = queue.DropRate();
  result.queue_depth_high_water = queue.DepthHighWater();

  if (injector_) {
    result.fault_slots_lost = injector_->SlotsLost();
    result.fault_slots_corrupted = injector_->SlotsCorrupted();
    result.fault_requests_lost = injector_->RequestsLost();
    result.fault_requests_delayed = injector_->RequestsDelayed();
    result.outage_slots = server_->OutageSlots();
    result.outages_started = server_->OutagesStarted();
    result.degraded_enters = server_->DegradedEnters();
    result.degraded_exits = server_->DegradedExits();
    result.mc_timeouts_fired = mc_->TimeoutsFired();
    result.mc_abandoned = mc_->Abandoned();
    result.mc_fallbacks = mc_->Fallbacks();
    result.mc_probes_sent = mc_->ProbesSent();
    result.mc_backchannel_deaths = mc_->BackchannelDeaths();
    result.mc_backchannel_recoveries = mc_->BackchannelRecoveries();
  }

  const double slots = static_cast<double>(server_->TotalSlots());
  if (slots > 0) {
    result.push_slot_frac = static_cast<double>(server_->PushSlots()) / slots;
    result.pull_slot_frac = static_cast<double>(server_->PullSlots()) / slots;
    result.idle_slot_frac = static_cast<double>(server_->IdleSlots()) / slots;
  }
  result.major_cycle_len = server_->program().Length();

  result.kernel.events_executed = simulator_.EventsExecuted();
  result.kernel.heap_high_water = simulator_.HeapHighWater();
  result.kernel.periodic_rearms = simulator_.PeriodicRearms();
  result.kernel.lazy_arrivals_fused = simulator_.LazyArrivalsFused();
  result.kernel.lazy_drains = simulator_.LazyDrains();
  result.kernel.stale_discarded = simulator_.StaleDiscarded();
  result.kernel.periodic_spans = simulator_.PeriodicSpans();
  result.kernel.wall_seconds = wall_seconds_;
  if (wall_seconds_ > 1e-9) {
    result.kernel.events_per_wall_second =
        static_cast<double>(simulator_.EventsExecuted()) / wall_seconds_;
    result.kernel.sim_units_per_wall_second = simulator_.Now() / wall_seconds_;
  }

  result.sim_time_end = simulator_.Now();
  result.converged = converged;
  return result;
}

RunResult System::RunSteadyState(const SteadyStateProtocol& protocol) {
  BDISK_CHECK_MSG(!ran_, "a System supports exactly one run");
  ran_ = true;

  enum class Phase { kFilling, kPostFill, kMeasuring };
  Phase phase = Phase::kFilling;
  std::uint64_t post_fill_count = 0;
  std::uint64_t measured_count = 0;
  bool converged = false;
  sim::BatchMeans batch(protocol.batch_size, protocol.tolerance);

  mc_->SetOnAccessComplete([&, this](double response_time) {
    switch (phase) {
      case Phase::kFilling:
        if (mc_->cache().IsFull() ||
            mc_->TotalAccesses() >= protocol.max_fill_accesses) {
          phase = Phase::kPostFill;
        }
        break;
      case Phase::kPostFill:
        if (++post_fill_count >= protocol.post_fill_accesses) {
          phase = Phase::kMeasuring;
          mc_->SetRecording(true);
        }
        break;
      case Phase::kMeasuring: {
        const bool stable = batch.Add(response_time);
        ++measured_count;
        if ((stable && measured_count >= protocol.min_measured_accesses) ||
            measured_count >= protocol.max_measured_accesses) {
          converged = stable;
          simulator_.Stop();
        }
        break;
      }
    }
  });

  mc_->Start();
  if (vc_) vc_->Start();
  if (update_generator_) update_generator_->Start();
  if (server_controller_) server_controller_->Start();
  if (client_controller_) client_controller_->Start();
  TimedRun(protocol.max_sim_time);
  return CollectResult(converged);
}

RunResult System::RunWarmup(const WarmupProtocol& protocol) {
  BDISK_CHECK_MSG(!ran_, "a System supports exactly one run");
  ran_ = true;

  const client::WarmupTracker* tracker = mc_->warmup_tracker();
  BDISK_CHECK_MSG(tracker != nullptr, "warm-up tracking not enabled");

  bool reached = false;
  mc_->SetOnAccessComplete([&, this, tracker](double /*response_time*/) {
    if (tracker->Fraction() >= protocol.target_fraction) {
      reached = true;
      simulator_.Stop();
    }
  });

  mc_->Start();
  if (vc_) vc_->Start();
  if (update_generator_) update_generator_->Start();
  if (server_controller_) server_controller_->Start();
  if (client_controller_) client_controller_->Start();
  TimedRun(protocol.max_sim_time);

  RunResult result = CollectResult(reached);
  result.warmup.reserve(protocol.fractions.size());
  for (const double f : protocol.fractions) {
    result.warmup.push_back(WarmupPoint{f, tracker->TimeToFraction(f)});
  }
  return result;
}

}  // namespace bdisk::core
