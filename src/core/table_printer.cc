#include "core/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "sim/check.h"

namespace bdisk::core {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  BDISK_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  BDISK_CHECK_MSG(cells.size() == headers_.size(),
                  "row width must match the header");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&widths](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      line.append(widths[c] - row[c].size(), ' ');  // Right-align.
      line += row[c];
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  out.append(total - 2, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TablePrinter::Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::Pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace bdisk::core
