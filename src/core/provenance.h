#ifndef BDISK_CORE_PROVENANCE_H_
#define BDISK_CORE_PROVENANCE_H_

namespace bdisk::core {

/// Build provenance, stamped at configure/compile time: every recorded
/// number must say what was measured. Shared by the bench harness and the
/// live-serve tools (`bdisk_serve` / `bdisk_load`), so the provenance gate
/// is one implementation everywhere.

/// The CMake configuration this binary was built under ("Release",
/// "Debug", ...; "unspecified" for an empty build type, "unknown" when the
/// stamp is missing entirely).
const char* BuildType();

/// Short git revision captured at configure time ("unknown" outside a
/// checkout). Re-run cmake after committing to refresh it.
const char* GitRev();

/// True when this binary was compiled optimized: a Release-family CMake
/// configuration with NDEBUG, so BDISK_CHECK bounds checks are the only
/// assertions left.
bool OptimizedBuild();

/// Provenance gate: refuses to run (exits 2 with a loud message) when the
/// binary was built non-optimized, so debug numbers can't silently end up
/// in recorded performance artifacts. Setting BDISK_BENCH_ALLOW_DEBUG=1
/// downgrades the refusal to a tagged warning for local smoke tests.
void RequireOptimizedBuild(const char* binary_name);

}  // namespace bdisk::core

#endif  // BDISK_CORE_PROVENANCE_H_
