#ifndef BDISK_CORE_CSV_H_
#define BDISK_CORE_CSV_H_

#include <string>
#include <vector>

#include "core/experiment.h"

namespace bdisk::core {

/// Renders sweep outcomes as CSV (one row per point) for external plotting
/// tools. Columns: curve, x, mean_response, response_p50, response_p90,
/// response_p95, response_p99, response_max, drop_rate, hit_rate,
/// pulls_sent, requests_submitted, requests_dropped, push_frac, pull_frac,
/// idle_frac, converged.
std::string SweepToCsv(const std::vector<SweepOutcome>& outcomes);

/// Renders warm-up trajectories as CSV: curve, x, fraction, time.
/// Unreached fractions are omitted.
std::string WarmupToCsv(const std::vector<SweepOutcome>& outcomes);

}  // namespace bdisk::core

#endif  // BDISK_CORE_CSV_H_
