#ifndef BDISK_CORE_EXPERIMENT_H_
#define BDISK_CORE_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "core/system.h"

namespace bdisk::core {

/// One simulation point within a sweep.
struct SweepPoint {
  /// Curve this point belongs to (e.g. "IPP PullBW=50%").
  std::string curve;
  /// X coordinate in the figure (e.g. the ThinkTimeRatio).
  double x = 0.0;
  /// Full configuration for this point.
  SystemConfig config;
  /// Run the warm-up protocol instead of the steady-state protocol.
  bool warmup_run = false;
};

/// A point paired with its measurements.
struct SweepOutcome {
  SweepPoint point;
  RunResult result;
};

/// Runs every point (each an independent System) and returns outcomes in
/// input order. Points run concurrently on up to `num_threads` OS threads
/// (0 = hardware concurrency); simulations are deterministic per point
/// regardless of scheduling. Immutable per-config artifacts (pattern,
/// program, value arrays) are built once per distinct ArtifactKey and
/// shared across points. An invalid point (or any other failure on a
/// worker) is rethrown on the calling thread — std::invalid_argument for
/// a config that fails Validate() — instead of crashing the process.
std::vector<SweepOutcome> RunSweep(const std::vector<SweepPoint>& points,
                                   const SteadyStateProtocol& steady = {},
                                   const WarmupProtocol& warmup = {},
                                   unsigned num_threads = 0);

/// Mean response across independent replications of one configuration.
struct ReplicationResult {
  /// Per-replication mean responses (one observation per seed).
  sim::RunningStats means;
  /// Half-width of the ~95% confidence interval on the grand mean
  /// (1.96 x standard error across replications; 0 with < 2 reps).
  double ci95_half_width = 0.0;
  /// Every replication's full result, in seed order.
  std::vector<RunResult> replications;
};

/// Runs `replications` steady-state copies of `config`, each with seed
/// `config.seed + i`, and aggregates across them. This is how a careful
/// simulation study reports a point: the batch-means stopping rule bounds
/// within-run noise; replications bound across-run noise.
ReplicationResult RunReplicated(const SystemConfig& config,
                                std::uint32_t replications,
                                const SteadyStateProtocol& steady = {},
                                unsigned num_threads = 0);

}  // namespace bdisk::core

#endif  // BDISK_CORE_EXPERIMENT_H_
