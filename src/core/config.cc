#include "core/config.h"

#include "obs/flight_recorder.h"
#include "obs/frame_sink.h"

namespace bdisk::core {

const char* DeliveryModeName(DeliveryMode mode) {
  switch (mode) {
    case DeliveryMode::kPurePush:
      return "Push";
    case DeliveryMode::kPurePull:
      return "Pull";
    case DeliveryMode::kIpp:
      return "IPP";
  }
  return "?";
}

double SystemConfig::EffectivePullBw() const {
  switch (mode) {
    case DeliveryMode::kPurePush:
      return 0.0;
    case DeliveryMode::kPurePull:
      return 1.0;
    case DeliveryMode::kIpp:
      return pull_bw;
  }
  return pull_bw;
}

std::string SystemConfig::Validate() const {
  if (server_db_size == 0) return "server_db_size must be positive";
  if (mode != DeliveryMode::kPurePull) {
    const std::string disk_error = disks.Validate();
    if (!disk_error.empty()) return "disks: " + disk_error;
    if (disks.TotalPages() != server_db_size) {
      return "disk sizes must sum to server_db_size";
    }
    if (chop_count >= server_db_size) {
      return "chop_count must leave at least one page on the broadcast";
    }
    if (EffectiveOffset() > server_db_size - chop_count) {
      return "offset exceeds the number of broadcast pages";
    }
  }
  if (server_queue_size == 0) return "server_queue_size must be positive";
  if (pull_bw < 0.0 || pull_bw > 1.0) return "pull_bw must be in [0,1]";
  if (mode == DeliveryMode::kIpp && pull_bw == 0.0) {
    return "IPP with pull_bw == 0 is Pure-Push; use kPurePush";
  }
  if (thres_perc < 0.0 || thres_perc > 1.0) {
    return "thres_perc must be in [0,1]";
  }
  if (chop_count > 0 && mode == DeliveryMode::kPurePush) {
    return "Pure-Push cannot truncate the schedule: unscheduled pages would "
           "be unobtainable without a backchannel";
  }
  if (zipf_theta < 0.0) return "zipf_theta must be non-negative";
  if (noise < 0.0 || noise > 1.0) return "noise must be in [0,1]";
  if (cache_size == 0) return "cache_size must be positive";
  if (cache_size >= server_db_size) {
    return "cache_size must be smaller than the database";
  }
  if (mc_think_time <= 0.0) return "mc_think_time must be positive";
  if (think_time_ratio <= 0.0) return "think_time_ratio must be positive";
  if (steady_state_perc < 0.0 || steady_state_perc > 1.0) {
    return "steady_state_perc must be in [0,1]";
  }
  if (mc_retry_interval < 0.0) return "mc_retry_interval must be >= 0";
  if (mc_policy == cache::PolicyKind::kPix &&
      mode == DeliveryMode::kPurePull) {
    return "PIX needs a push program; Pure-Pull uses P (or LRU/LFU)";
  }
  if ((adaptive_pull_bw || adaptive_threshold) &&
      mode != DeliveryMode::kIpp) {
    return "adaptive controllers tune IPP's knobs; the pure modes have "
           "nothing to adapt";
  }
  if (update_rate < 0.0) return "update_rate must be non-negative";
  if (update_zipf_theta.has_value() && *update_zipf_theta < 0.0) {
    return "update_zipf_theta must be non-negative";
  }
  if (mc_prefetch && mode == DeliveryMode::kPurePull) {
    return "prefetching reads the push broadcast; Pure-Pull has none";
  }
  if (obs_window <= 0.0) return "obs_window must be positive";
  {
    const std::string fault_error = fault.Validate();
    if (!fault_error.empty()) return fault_error;
  }
  if (fault.ChannelFaultsEnabled() || fault.OutagesEnabled()) {
    if (mode == DeliveryMode::kPurePush &&
        (fault.request_loss > 0.0 || fault.request_delay > 0.0)) {
      return "fault.request_loss/request_delay need a backchannel; "
             "Pure-Push has none";
    }
  }
  if (fault.DegradedModeEnabled() && mode == DeliveryMode::kPurePush) {
    return "fault.shed_hi governs the pull queue; Pure-Push has none";
  }
  if (frames.rfind("unix:", 0) == 0) {
    // Catch over-long socket paths at config time: the kernel would
    // silently truncate them at bind/connect and the sink would dial a
    // different name than the receiver bound.
    const std::string path_error =
        obs::ValidateUnixSocketPath(frames.substr(5));
    if (!path_error.empty()) return "frames: " + path_error;
  }
  if (!flight_recorder.empty()) {
    obs::FlightTriggers triggers;
    const std::string error =
        obs::ParseFlightTriggerSpec(flight_recorder, &triggers);
    if (!error.empty()) return "flight_recorder: " + error;
  }
  return "";
}

}  // namespace bdisk::core
