#ifndef BDISK_CORE_CONFIG_H_
#define BDISK_CORE_CONFIG_H_

#include <cstdint>
#include <optional>
#include <string>

#include "adaptive/client_controller.h"
#include "adaptive/server_controller.h"
#include "broadcast/disk_config.h"
#include "broadcast/program_builder.h"
#include "cache/cache.h"
#include "fault/fault_plan.h"

namespace bdisk::core {

/// The three data-delivery algorithms compared in the paper (§2.3).
enum class DeliveryMode {
  /// Broadcast Disks only: PullBW = 0, no backchannel. On a miss, clients
  /// wait for the page to come around on the periodic broadcast.
  kPurePush,
  /// Request/response with snooping: PullBW = 100%, no periodic broadcast.
  /// Every miss is pulled; all clients snoop all responses.
  kPurePull,
  /// Interleaved Push and Pull: periodic broadcast plus pull responses,
  /// split by PullBW, with optional client-side thresholding.
  kIpp,
};

/// Name of a delivery mode ("Push", "Pull", "IPP").
const char* DeliveryModeName(DeliveryMode mode);

/// One-shot event-queue backend selection (`kernel.queue`). Heap and wheel
/// produce bit-identical trajectories — the kernel-matrix CI leg pins that
/// — so this only moves wall-clock time. kAuto defers to
/// sim::DefaultQueueKind(): the calendar wheel, unless the
/// BDISK_KERNEL_QUEUE environment variable says otherwise.
enum class KernelQueue { kAuto, kHeap, kWheel };

/// Batched-arrival-spine selection (`sim.arrival_spine`). On and off
/// produce bit-identical trajectories — the kernel-matrix spine axis pins
/// that — so this only moves wall-clock time. kAuto defers to
/// client::DefaultArrivalSpineOn(): on, unless the BDISK_ARRIVAL_SPINE
/// environment variable says "off". Only meaningful on the fused VC path;
/// anything that forces unfused (vc_fusion=false, fault.request_delay>0)
/// bypasses the spine regardless.
enum class ArrivalSpine { kAuto, kOn, kOff };

/// Complete description of one simulated configuration. Field defaults are
/// the paper's Table 3 settings.
struct SystemConfig {
  DeliveryMode mode = DeliveryMode::kIpp;

  // --- Server / broadcast program (Table 2) ---
  /// Number of distinct pages in the database (ServerDBSize).
  std::uint32_t server_db_size = 1000;
  /// Multi-disk shape: sizes {100,400,500}, relative frequencies {3,2,1}.
  broadcast::DiskConfig disks = broadcast::DiskConfig::Paper();
  /// Backchannel queue capacity in distinct pages (ServerQSize).
  std::uint32_t server_queue_size = 100;
  /// Fraction of slots usable for pulled pages (PullBW); only meaningful
  /// for kIpp — the pure modes force 0 / 1.
  double pull_bw = 0.5;
  /// Client-side threshold fraction (ThresPerc); kIpp only.
  double thres_perc = 0.0;
  /// Pages truncated from the push schedule, coldest first (Experiment 3).
  std::uint32_t chop_count = 0;
  /// Offset: hottest pages shifted to the slowest disk. Defaults to
  /// CacheSize, as in all paper experiments ("All results presented in this
  /// paper use OffSet").
  std::optional<std::uint32_t> offset;
  /// How non-divisible disks are chunked (see program_builder.h).
  broadcast::ChunkingMode chunking = broadcast::ChunkingMode::kBalanced;

  // --- Workload (Table 1) ---
  /// Zipf skew of all clients' access patterns.
  double zipf_theta = 0.95;
  /// Measured-client access-pattern perturbation (Noise), in [0,1].
  double noise = 0.0;

  // --- Clients (Table 1) ---
  /// Client cache size in pages.
  std::uint32_t cache_size = 100;
  /// Measured client's fixed think time, in broadcast units.
  double mc_think_time = 20.0;
  /// Virtual-client intensity: VC think time is exponential with mean
  /// mc_think_time / think_time_ratio.
  double think_time_ratio = 10.0;
  /// Fraction of the represented population in steady state.
  double steady_state_perc = 0.95;
  /// Whether the virtual client generates load at all. Forced off for
  /// kPurePush (no backchannel exists).
  bool vc_enabled = true;
  /// Virtual-client event fusion: batch VC arrivals through the kernel's
  /// lazy-source drain instead of one heap event each. Bit-identical
  /// trajectory either way (see DESIGN.md); off is the A/B escape hatch.
  bool vc_fusion = true;
  /// Measured-client retry interval for pulls of unscheduled pages; 0 picks
  /// an automatic default (one major cycle, or ServerDBSize slots for
  /// Pure-Pull). See MeasuredClientOptions::retry_interval.
  double mc_retry_interval = 0.0;
  /// Measured-client replacement-policy override for ablation studies.
  /// Default (nullopt) follows the paper: PIX whenever a push program
  /// exists, P for Pure-Pull.
  std::optional<cache::PolicyKind> mc_policy;

  // --- Volatile data (extension; lifts §1.4 assumption 3 as in the
  // companion study [Acha96b]) ---
  /// Server-side page updates per broadcast unit (Poisson); 0 = read-only,
  /// the paper's baseline. Updated pages are invalidated in client caches
  /// via an (instantaneous, free) invalidation report.
  double update_rate = 0.0;
  /// Zipf skew of the update distribution; defaults to zipf_theta (hot
  /// pages change most often).
  std::optional<double> update_zipf_theta;

  // --- Prefetching (extension; [Acha96a], cited in §5) ---
  /// Measured client opportunistically prefetches high p*t pages from the
  /// broadcast. Requires a push program (not kPurePull).
  bool mc_prefetch = false;

  // --- Simulation kernel (no effect on the simulated trajectory) ---
  /// Event-queue backend; see KernelQueue above.
  KernelQueue kernel_queue = KernelQueue::kAuto;
  /// Batched periodic slot execution: run spans of broadcast-slot
  /// occurrences in a tight loop instead of one queue pop each
  /// (sim::Simulator::SetBatchedPeriodic). Bit-identical either way; off
  /// is the A/B escape hatch.
  bool kernel_batch_slots = true;
  /// Batched virtual-client arrival drains; see ArrivalSpine above.
  ArrivalSpine arrival_spine = ArrivalSpine::kAuto;

  // --- Observability (no effect on the simulated trajectory) ---
  /// Windowed-telemetry window width in broadcast units
  /// (obs::WindowedCollector); used when a collector is attached.
  double obs_window = 100.0;
  /// Flight-recorder trigger spec, e.g. "drop_rate>0.5,p99>2000,
  /// queue_depth>90"; empty = disarmed. Validated against
  /// obs::ParseFlightTriggerSpec.
  std::string flight_recorder;
  /// Flight-recorder dump budget: the recorder re-arms after each dump
  /// until this many have been written (1 = classic one-shot).
  std::uint32_t flight_recorder_max_dumps = 1;
  /// Streaming-telemetry frame destination ("-" stdout, "unix:PATH"
  /// datagram socket, else file path; see obs::MakeFrameSink). Empty =
  /// no telemetry bus.
  std::string frames;

  // --- Fault injection / robustness (bdisk::fault; see ROBUSTNESS.md) ---
  /// Deterministic fault plan: channel loss/corruption, backchannel faults,
  /// server outage windows, client retry knobs, degraded-mode shedding.
  /// All-zero (the default) means the fault layer is compiled out of the
  /// run entirely and the trajectory is bit-identical to a build without it.
  fault::FaultPlan fault;

  // --- Dynamic adaptation (extension; paper §6 future work) ---
  /// Enable the server-side PullBW controller (kIpp only).
  bool adaptive_pull_bw = false;
  /// Enable the client-side threshold controller (kIpp only).
  bool adaptive_threshold = false;
  /// Controller tuning; defaults are sensible for the Table 3 scale.
  adaptive::ServerControllerOptions server_controller;
  adaptive::ClientControllerOptions client_controller;

  /// Root RNG seed; every component derives an independent stream from it.
  std::uint64_t seed = 20260704;

  /// The Offset actually applied (default: cache_size).
  std::uint32_t EffectiveOffset() const {
    return offset.value_or(cache_size);
  }

  /// PullBW after applying the mode override (0, 1, or pull_bw).
  double EffectivePullBw() const;

  /// Returns an error description, or empty string when the configuration
  /// is self-consistent.
  std::string Validate() const;
};

}  // namespace bdisk::core

#endif  // BDISK_CORE_CONFIG_H_
