#ifndef BDISK_CORE_SYSTEM_H_
#define BDISK_CORE_SYSTEM_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "adaptive/client_controller.h"
#include "adaptive/server_controller.h"
#include "broadcast/broadcast_program.h"
#include "broadcast/page_ranking.h"
#include "client/measured_client.h"
#include "client/virtual_client.h"
#include "core/config.h"
#include "core/metrics.h"
#include "fault/fault_injector.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/phase_profiler.h"
#include "obs/trace_sink.h"
#include "obs/windowed_collector.h"
#include "server/broadcast_server.h"
#include "sim/simulator.h"
#include "transport/transport.h"
#include "workload/access_pattern.h"

namespace bdisk::core {

/// Measurement protocol for steady-state experiments (paper §4): warm the
/// MC cache, skip `post_fill_accesses` further accesses ("started
/// measurements only 4000 accesses after the cache filled up"), then record
/// response times until batch-means stability (or the access cap).
struct SteadyStateProtocol {
  std::uint64_t post_fill_accesses = 4000;
  std::uint64_t min_measured_accesses = 4000;
  std::uint64_t max_measured_accesses = 40000;
  std::uint64_t batch_size = 1000;
  double tolerance = 0.02;
  sim::SimTime max_sim_time = 2.0e8;
  /// The warm-up phase normally ends when the cache is full (the paper's
  /// read-only criterion). With volatile data the cache can lose pages as
  /// fast as it gains them and may never be literally full, so the phase
  /// also ends after this many accesses.
  std::uint64_t max_fill_accesses = 20000;
};

/// Measurement protocol for warm-up experiments (paper §4.1.3): start with
/// a cold cache and record when each fraction of the ideal cache contents
/// is first reached, up to `target_fraction`.
struct WarmupProtocol {
  std::vector<double> fractions = {0.1, 0.2, 0.3, 0.4, 0.5,
                                   0.6, 0.7, 0.8, 0.9, 0.95};
  double target_fraction = 0.95;
  sim::SimTime max_sim_time = 2.0e8;
};

/// Immutable artifacts derived purely from a SystemConfig: the canonical
/// access pattern, the push layout and broadcast program, and the
/// canonical value array (PIX when a push program exists, P otherwise).
/// Building them is the O(DbSize·log) part of System construction, and
/// none of it depends on the seed, so a sweep shares one copy across every
/// point and replication whose key fields agree (see ArtifactKey).
struct SystemArtifacts {
  explicit SystemArtifacts(workload::AccessPattern pattern)
      : canonical_pattern(std::move(pattern)) {}

  workload::AccessPattern canonical_pattern;
  broadcast::PushLayout layout;  // Empty for Pure-Pull.
  std::shared_ptr<const broadcast::BroadcastProgram> program;
  std::vector<double> canonical_values;
};

/// Builds the artifacts for `config` from scratch.
std::shared_ptr<const SystemArtifacts> BuildArtifacts(
    const SystemConfig& config);

/// Serializes exactly the config fields the artifacts depend on. Two
/// configs with equal keys produce identical artifacts; in particular the
/// seed, think-time, cache-policy, and protocol fields are excluded, which
/// is what lets replications (seed + i) share one set.
std::string ArtifactKey(const SystemConfig& config);

/// Thread-safe keyed cache of shared artifacts, used by RunSweep so sweep
/// setup stops redoing identical pattern/program builds per point.
class ArtifactCache {
 public:
  /// Returns the cached artifacts for `config`'s key, building on miss.
  std::shared_ptr<const SystemArtifacts> Get(const SystemConfig& config);

 private:
  std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const SystemArtifacts>>
      cache_;
};

/// One fully wired simulated system: broadcast program, server, measured
/// client, and virtual client, built from a SystemConfig.
///
/// A System instance supports exactly one run (RunSteadyState or
/// RunWarmup); build a fresh System per configuration point. Components are
/// exposed read-only for tests and diagnostics.
class System {
 public:
  /// Builds (and validates) the whole system. Aborts on invalid config.
  /// `artifacts` (optional) supplies pre-built shared artifacts; they must
  /// come from a config with the same ArtifactKey. Null builds them fresh.
  explicit System(const SystemConfig& config,
                  std::shared_ptr<const SystemArtifacts> artifacts = nullptr);

  /// Runs the steady-state protocol and returns the measurements.
  RunResult RunSteadyState(const SteadyStateProtocol& protocol = {});

  /// Runs the warm-up protocol and returns the measurements (including the
  /// warm-up trajectory).
  RunResult RunWarmup(const WarmupProtocol& protocol = {});

  /// Attaches `registry` (not owned; must outlive the run) to every
  /// instrumented component: the server publishes windowed slot-mix and
  /// queue-depth time-series, the MC's cache streams eviction values.
  /// Call before Run*. Consumes no randomness and schedules no events, so
  /// the simulated trajectory is bit-identical with or without it.
  void AttachMetrics(obs::MetricsRegistry* registry);

  /// Attaches the structured trace `sink` (not owned) to the server and
  /// the measured client. Call before Run*. Same bit-identity guarantee as
  /// AttachMetrics.
  void AttachTrace(obs::TraceSink* sink);

  /// Attaches the windowed telemetry `collector` (not owned) to the server
  /// (slot decisions, submit outcomes) and the measured client (completed
  /// accesses). Call before Run*. The collector is flushed (partial window
  /// closed) when the run ends. Same bit-identity guarantee as
  /// AttachMetrics.
  void AttachWindowedCollector(obs::WindowedCollector* collector);

  /// Attaches the wall-clock phase `profiler` (not owned) to the kernel,
  /// the server, and (via the simulator pointer the clients already hold)
  /// the virtual and measured clients. Call before Run*. The profiler is
  /// finalized (clock anchored) when the run ends; its `prof.*` section is
  /// merged into SnapshotMetrics() output. Same bit-identity guarantee as
  /// AttachMetrics: no randomness, no events — only wall-clock reads.
  void AttachProfiler(obs::PhaseProfiler* profiler);

  /// Arms the anomaly flight `recorder` (not owned): completed telemetry
  /// windows are evaluated against its triggers, and on fire the dump
  /// carries a full SnapshotMetrics() document plus the trailing trace
  /// window when a sink is attached. Requires AttachWindowedCollector
  /// first; call AttachTrace before this to include the trace.
  void AttachFlightRecorder(obs::FlightRecorder* recorder);

  /// Attaches the streaming telemetry `bus` (not owned): each completed
  /// telemetry window becomes a `window` frame (counter deltas measured by
  /// a probe over the same lifetime counters SnapshotMetrics exports, so
  /// frame deltas reconcile exactly against the final snapshot), and run
  /// start/end, degraded-mode edges, and flight-recorder fires become
  /// lifecycle frames. Requires AttachWindowedCollector first; order
  /// relative to AttachFlightRecorder does not matter. Same bit-identity
  /// guarantee as AttachMetrics: the bus consumes no randomness and
  /// schedules no events.
  void AttachTelemetryBus(obs::TelemetryBus* bus);

  /// Copies every lifetime counter and the MC response histogram into
  /// `registry`, so ToJson() yields one self-contained snapshot. Counters
  /// are cheap to keep always-on in their components; snapshotting at
  /// collect time is what keeps the hot path free of registry traffic.
  void SnapshotMetrics(obs::MetricsRegistry* registry) const;

  /// The configuration this system was built from.
  const SystemConfig& config() const { return config_; }

  /// The generated broadcast program (empty schedule for Pure-Pull).
  const broadcast::BroadcastProgram& program() const {
    return server_->program();
  }

  /// The page-to-disk layout (disk sizes after truncation etc.); only
  /// meaningful when a push program exists.
  const broadcast::PushLayout& layout() const { return artifacts_->layout; }

  /// Aggregate (server-side) and measured-client access patterns.
  const workload::AccessPattern& canonical_pattern() const {
    return artifacts_->canonical_pattern;
  }
  const workload::AccessPattern& mc_pattern() const { return mc_pattern_; }

  /// Components (valid for the lifetime of the System).
  sim::Simulator& simulator() { return simulator_; }
  server::BroadcastServer& server() { return *server_; }
  client::MeasuredClient& mc() { return *mc_; }
  /// Null when the configuration has no virtual client (Pure-Push, or
  /// vc_enabled == false).
  client::VirtualClient* vc() { return vc_.get(); }

  /// Adaptive controllers; null unless enabled in the config.
  adaptive::ServerController* server_controller() {
    return server_controller_.get();
  }
  adaptive::ClientController* client_controller() {
    return client_controller_.get();
  }

  /// Volatile-data update process; null unless update_rate > 0.
  server::UpdateGenerator* update_generator() {
    return update_generator_.get();
  }

  /// Fault injector; null unless the config's FaultPlan is Enabled().
  fault::FaultInjector* fault_injector() { return injector_.get(); }

  /// The transport seam the measured client submits pulls through. Always
  /// the in-process sim backend here (bit-identical to the direct call by
  /// construction); the datagram backend lives in bdisk_serve, which
  /// builds its server standalone.
  transport::Transport& transport() { return *sim_transport_; }

 private:
  RunResult CollectResult(bool converged) const;
  void TimedRun(sim::SimTime max_sim_time);

  SystemConfig config_;
  sim::Simulator simulator_;
  std::shared_ptr<const SystemArtifacts> artifacts_;
  workload::AccessPattern mc_pattern_;
  std::unique_ptr<server::BroadcastServer> server_;
  std::unique_ptr<transport::SimTransport> sim_transport_;
  std::unique_ptr<client::MeasuredClient> mc_;
  std::unique_ptr<client::VirtualClient> vc_;
  std::unique_ptr<adaptive::ServerController> server_controller_;
  std::unique_ptr<adaptive::ClientController> client_controller_;
  std::unique_ptr<server::UpdateGenerator> update_generator_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::vector<obs::CounterSample> ProbeTelemetryCounters() const;
  std::vector<std::pair<std::string, std::string>> TelemetryProvenance() const;

  obs::WindowedCollector* collector_ = nullptr;  // Not owned.
  obs::TraceSink* sink_ = nullptr;               // Not owned.
  obs::PhaseProfiler* profiler_ = nullptr;       // Not owned.
  obs::FlightRecorder* recorder_ = nullptr;      // Not owned.
  obs::TelemetryBus* bus_ = nullptr;             // Not owned.
  bool ran_ = false;
  double wall_seconds_ = 0.0;
};

/// The `k` pages with the highest `values` (ties: lower page id first) —
/// the "ideal" warmed-cache contents under a value metric.
std::vector<broadcast::PageId> TopValuedPages(
    const std::vector<double>& values, std::uint32_t k);

/// The canonical (aggregate / virtual-client) access pattern for a config.
workload::AccessPattern CanonicalPatternForConfig(const SystemConfig& config);

/// The measured client's access pattern for a config (canonical pattern,
/// Noise-perturbed with the config's seed). Identical to what System uses.
workload::AccessPattern McPatternForConfig(const SystemConfig& config);

/// The broadcast program System would generate for a config (empty
/// schedule for Pure-Pull). Used by analysis tools that predict behaviour
/// without running a simulation.
broadcast::BroadcastProgram ProgramForConfig(const SystemConfig& config);

}  // namespace bdisk::core

#endif  // BDISK_CORE_SYSTEM_H_
