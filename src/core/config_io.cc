#include "core/config_io.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <vector>

#include "obs/flight_recorder.h"

namespace bdisk::core {

namespace {

std::string Trim(const std::string& s) {
  const std::size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const std::size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

bool ParseDouble(const std::string& value, double* out) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') return false;
  *out = parsed;
  return true;
}

bool ParseU32(const std::string& value, std::uint32_t* out) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') return false;
  *out = static_cast<std::uint32_t>(parsed);
  return true;
}

bool ParseU64(const std::string& value, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') return false;
  *out = parsed;
  return true;
}

bool ParseBool(const std::string& value, bool* out) {
  if (value == "true" || value == "1" || value == "yes") {
    *out = true;
    return true;
  }
  if (value == "false" || value == "0" || value == "no") {
    *out = false;
    return true;
  }
  return false;
}

bool ParseU32List(const std::string& value, std::vector<std::uint32_t>* out) {
  out->clear();
  std::stringstream stream(value);
  std::string item;
  while (std::getline(stream, item, ',')) {
    std::uint32_t parsed = 0;
    if (!ParseU32(Trim(item), &parsed)) return false;
    out->push_back(parsed);
  }
  return !out->empty();
}

}  // namespace

std::string ApplyConfigOption(const std::string& raw_key,
                              const std::string& raw_value,
                              SystemConfig* config) {
  const std::string key = Trim(raw_key);
  const std::string value = Trim(raw_value);
  const auto bad_value = [&] { return "invalid value for " + key; };

  if (key == "mode") {
    if (value == "push") {
      config->mode = DeliveryMode::kPurePush;
    } else if (value == "pull") {
      config->mode = DeliveryMode::kPurePull;
    } else if (value == "ipp") {
      config->mode = DeliveryMode::kIpp;
    } else {
      return "mode must be push, pull, or ipp";
    }
    return "";
  }
  if (key == "chunking") {
    if (value == "balanced") {
      config->chunking = broadcast::ChunkingMode::kBalanced;
    } else if (value == "pad") {
      config->chunking = broadcast::ChunkingMode::kPad;
    } else {
      return "chunking must be balanced or pad";
    }
    return "";
  }
  if (key == "mc_policy") {
    if (value == "pix") {
      config->mc_policy = cache::PolicyKind::kPix;
    } else if (value == "p") {
      config->mc_policy = cache::PolicyKind::kP;
    } else if (value == "lru") {
      config->mc_policy = cache::PolicyKind::kLru;
    } else if (value == "lfu") {
      config->mc_policy = cache::PolicyKind::kLfu;
    } else if (value == "default") {
      config->mc_policy.reset();
    } else {
      return "mc_policy must be pix, p, lru, lfu, or default";
    }
    return "";
  }
  if (key == "kernel.queue") {
    if (value == "auto") {
      config->kernel_queue = KernelQueue::kAuto;
    } else if (value == "heap") {
      config->kernel_queue = KernelQueue::kHeap;
    } else if (value == "wheel") {
      config->kernel_queue = KernelQueue::kWheel;
    } else {
      return "kernel.queue must be auto, heap, or wheel";
    }
    return "";
  }
  if (key == "sim.arrival_spine") {
    if (value == "auto") {
      config->arrival_spine = ArrivalSpine::kAuto;
    } else if (value == "on") {
      config->arrival_spine = ArrivalSpine::kOn;
    } else if (value == "off") {
      config->arrival_spine = ArrivalSpine::kOff;
    } else {
      return "sim.arrival_spine must be auto, on, or off";
    }
    return "";
  }
  if (key == "disk_sizes") {
    return ParseU32List(value, &config->disks.sizes) ? "" : bad_value();
  }
  if (key == "disk_freqs") {
    return ParseU32List(value, &config->disks.rel_freqs) ? "" : bad_value();
  }
  if (key == "offset") {
    std::uint32_t parsed = 0;
    if (value == "cache_size") {
      config->offset.reset();
      return "";
    }
    if (!ParseU32(value, &parsed)) return bad_value();
    config->offset = parsed;
    return "";
  }
  if (key == "update_zipf_theta") {
    double parsed = 0;
    if (!ParseDouble(value, &parsed)) return bad_value();
    config->update_zipf_theta = parsed;
    return "";
  }
  if (key == "obs_window") {
    double parsed = 0;
    if (!ParseDouble(value, &parsed)) return bad_value();
    if (parsed <= 0.0) return "obs_window must be positive";
    config->obs_window = parsed;
    return "";
  }
  if (key == "flight_recorder") {
    // Validate eagerly so a bad spec fails at parse time with the trigger
    // grammar's own message, not at System construction.
    if (!value.empty() && value != "off") {
      obs::FlightTriggers triggers;
      const std::string error = obs::ParseFlightTriggerSpec(value, &triggers);
      if (!error.empty()) return "flight_recorder: " + error;
      config->flight_recorder = value;
    } else {
      config->flight_recorder.clear();
    }
    return "";
  }
  if (key == "flight_recorder_max_dumps") {
    std::uint32_t parsed = 0;
    if (!ParseU32(value, &parsed)) return bad_value();
    if (parsed < 1) return "flight_recorder_max_dumps must be >= 1";
    config->flight_recorder_max_dumps = parsed;
    return "";
  }
  if (key == "frames") {
    // Destination grammar only; the sink itself is opened by the CLI at
    // attach time ("-" stdout, "unix:PATH" datagram socket, else a file).
    if (value == "off") {
      config->frames.clear();
    } else {
      config->frames = value;
    }
    return "";
  }

  // fault.* doubles carry eager range checks so a bad plan fails at parse
  // time with the offending key named, not later at System construction.
  struct FaultDoubleKey {
    const char* name;
    double* field;
    double lo;
    double hi;  // Infinity for unbounded-above.
    const char* range;
  };
  const double inf = std::numeric_limits<double>::infinity();
  const FaultDoubleKey fault_doubles[] = {
      {"fault.slot_loss", &config->fault.slot_loss, 0.0, 1.0, "in [0,1]"},
      {"fault.slot_corruption", &config->fault.slot_corruption, 0.0, 1.0,
       "in [0,1]"},
      {"fault.request_loss", &config->fault.request_loss, 0.0, 1.0,
       "in [0,1]"},
      {"fault.request_delay", &config->fault.request_delay, 0.0, inf,
       ">= 0"},
      {"fault.outage_start", &config->fault.outage_start, 0.0, inf, ">= 0"},
      {"fault.outage_duration", &config->fault.outage_duration, 0.0, inf,
       ">= 0"},
      {"fault.outage_period", &config->fault.outage_period, 0.0, inf,
       ">= 0"},
      {"fault.mc_timeout", &config->fault.mc_timeout, 0.0, inf,
       ">= 0 (0 = auto)"},
      {"fault.mc_backoff", &config->fault.mc_backoff, 1.0, inf, ">= 1"},
      {"fault.mc_backoff_cap", &config->fault.mc_backoff_cap, 0.0, inf,
       ">= 0 (0 = auto)"},
      {"fault.mc_jitter", &config->fault.mc_jitter, 0.0, 1.0, "in [0,1]"},
      {"fault.mc_probe_interval", &config->fault.mc_probe_interval, 0.0,
       inf, ">= 0 (0 = auto)"},
      {"fault.shed_hi", &config->fault.shed_hi, 0.0, 1.0, "in [0,1]"},
      {"fault.shed_lo", &config->fault.shed_lo, 0.0, 1.0, "in [0,1]"},
      {"fault.degraded_pull_bw", &config->fault.degraded_pull_bw, 0.0, 1.0,
       "in [0,1]"},
  };
  for (const FaultDoubleKey& entry : fault_doubles) {
    if (key == entry.name) {
      double parsed = 0.0;
      if (!ParseDouble(value, &parsed)) return bad_value();
      if (parsed < entry.lo || parsed > entry.hi) {
        return key + " must be " + entry.range;
      }
      *entry.field = parsed;
      return "";
    }
  }
  if (key == "fault.mc_max_retries") {
    return ParseU32(value, &config->fault.mc_max_retries) ? "" : bad_value();
  }
  if (key == "fault.mc_dead_threshold") {
    return ParseU32(value, &config->fault.mc_dead_threshold) ? ""
                                                            : bad_value();
  }
  if (key == "fault.shed_distance") {
    return ParseU32(value, &config->fault.shed_distance) ? "" : bad_value();
  }
  if (key == "fault.brownout") {
    return ParseBool(value, &config->fault.brownout) ? "" : bad_value();
  }

  struct DoubleKey {
    const char* name;
    double* field;
  };
  const DoubleKey doubles[] = {
      {"pull_bw", &config->pull_bw},
      {"thres_perc", &config->thres_perc},
      {"zipf_theta", &config->zipf_theta},
      {"noise", &config->noise},
      {"mc_think_time", &config->mc_think_time},
      {"think_time_ratio", &config->think_time_ratio},
      {"steady_state_perc", &config->steady_state_perc},
      {"mc_retry_interval", &config->mc_retry_interval},
      {"update_rate", &config->update_rate},
  };
  for (const DoubleKey& entry : doubles) {
    if (key == entry.name) {
      return ParseDouble(value, entry.field) ? "" : bad_value();
    }
  }

  struct U32Key {
    const char* name;
    std::uint32_t* field;
  };
  const U32Key u32s[] = {
      {"server_db_size", &config->server_db_size},
      {"server_queue_size", &config->server_queue_size},
      {"chop_count", &config->chop_count},
      {"cache_size", &config->cache_size},
  };
  for (const U32Key& entry : u32s) {
    if (key == entry.name) {
      return ParseU32(value, entry.field) ? "" : bad_value();
    }
  }

  struct BoolKey {
    const char* name;
    bool* field;
  };
  const BoolKey bools[] = {
      {"vc_enabled", &config->vc_enabled},
      {"vc_fusion", &config->vc_fusion},
      {"mc_prefetch", &config->mc_prefetch},
      {"kernel.batch_slots", &config->kernel_batch_slots},
      {"adaptive_pull_bw", &config->adaptive_pull_bw},
      {"adaptive_threshold", &config->adaptive_threshold},
  };
  for (const BoolKey& entry : bools) {
    if (key == entry.name) {
      return ParseBool(value, entry.field) ? "" : bad_value();
    }
  }

  if (key == "seed") {
    return ParseU64(value, &config->seed) ? "" : bad_value();
  }
  return "unknown key: " + key;
}

std::string ParseConfigText(const std::string& text, SystemConfig* config) {
  std::stringstream stream(text);
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return "line " + std::to_string(line_number) + ": expected key = value";
    }
    const std::string error = ApplyConfigOption(
        line.substr(0, eq), line.substr(eq + 1), config);
    if (!error.empty()) {
      return "line " + std::to_string(line_number) + ": " + error;
    }
  }
  return "";
}

std::string ConfigToText(const SystemConfig& config) {
  std::stringstream out;
  const char* mode = config.mode == DeliveryMode::kPurePush ? "push"
                     : config.mode == DeliveryMode::kPurePull ? "pull"
                                                              : "ipp";
  out << "mode = " << mode << "\n";
  out << "server_db_size = " << config.server_db_size << "\n";
  out << "disk_sizes = ";
  for (std::size_t i = 0; i < config.disks.sizes.size(); ++i) {
    if (i > 0) out << ",";
    out << config.disks.sizes[i];
  }
  out << "\n";
  out << "disk_freqs = ";
  for (std::size_t i = 0; i < config.disks.rel_freqs.size(); ++i) {
    if (i > 0) out << ",";
    out << config.disks.rel_freqs[i];
  }
  out << "\n";
  out << "server_queue_size = " << config.server_queue_size << "\n";
  out << "pull_bw = " << config.pull_bw << "\n";
  out << "thres_perc = " << config.thres_perc << "\n";
  out << "chop_count = " << config.chop_count << "\n";
  if (config.offset.has_value()) {
    out << "offset = " << *config.offset << "\n";
  } else {
    out << "offset = cache_size\n";
  }
  out << "chunking = "
      << (config.chunking == broadcast::ChunkingMode::kPad ? "pad"
                                                           : "balanced")
      << "\n";
  out << "zipf_theta = " << config.zipf_theta << "\n";
  out << "noise = " << config.noise << "\n";
  out << "cache_size = " << config.cache_size << "\n";
  out << "mc_think_time = " << config.mc_think_time << "\n";
  out << "think_time_ratio = " << config.think_time_ratio << "\n";
  out << "steady_state_perc = " << config.steady_state_perc << "\n";
  out << "vc_enabled = " << (config.vc_enabled ? "true" : "false") << "\n";
  out << "vc_fusion = " << (config.vc_fusion ? "true" : "false") << "\n";
  out << "mc_retry_interval = " << config.mc_retry_interval << "\n";
  if (config.mc_policy.has_value()) {
    const char* policy = cache::PolicyKindName(*config.mc_policy);
    std::string lower(policy);
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    out << "mc_policy = " << lower << "\n";
  }
  out << "seed = " << config.seed << "\n";
  out << "update_rate = " << config.update_rate << "\n";
  if (config.update_zipf_theta.has_value()) {
    out << "update_zipf_theta = " << *config.update_zipf_theta << "\n";
  }
  out << "mc_prefetch = " << (config.mc_prefetch ? "true" : "false") << "\n";
  out << "adaptive_pull_bw = "
      << (config.adaptive_pull_bw ? "true" : "false") << "\n";
  out << "adaptive_threshold = "
      << (config.adaptive_threshold ? "true" : "false") << "\n";
  out << "kernel.queue = "
      << (config.kernel_queue == KernelQueue::kHeap    ? "heap"
          : config.kernel_queue == KernelQueue::kWheel ? "wheel"
                                                       : "auto")
      << "\n";
  out << "kernel.batch_slots = "
      << (config.kernel_batch_slots ? "true" : "false") << "\n";
  out << "sim.arrival_spine = "
      << (config.arrival_spine == ArrivalSpine::kOn    ? "on"
          : config.arrival_spine == ArrivalSpine::kOff ? "off"
                                                       : "auto")
      << "\n";
  out << "obs_window = " << config.obs_window << "\n";
  if (!config.flight_recorder.empty()) {
    out << "flight_recorder = " << config.flight_recorder << "\n";
  }
  if (config.flight_recorder_max_dumps != 1) {
    out << "flight_recorder_max_dumps = " << config.flight_recorder_max_dumps
        << "\n";
  }
  if (!config.frames.empty()) {
    out << "frames = " << config.frames << "\n";
  }
  if (config.fault.Enabled()) {
    // An inert (all-default) plan is omitted entirely so pre-fault config
    // text stays byte-identical; an enabled plan is written in full.
    const fault::FaultPlan& f = config.fault;
    out << "fault.slot_loss = " << f.slot_loss << "\n";
    out << "fault.slot_corruption = " << f.slot_corruption << "\n";
    out << "fault.request_loss = " << f.request_loss << "\n";
    out << "fault.request_delay = " << f.request_delay << "\n";
    out << "fault.outage_start = " << f.outage_start << "\n";
    out << "fault.outage_duration = " << f.outage_duration << "\n";
    out << "fault.outage_period = " << f.outage_period << "\n";
    out << "fault.brownout = " << (f.brownout ? "true" : "false") << "\n";
    out << "fault.mc_timeout = " << f.mc_timeout << "\n";
    out << "fault.mc_max_retries = " << f.mc_max_retries << "\n";
    out << "fault.mc_backoff = " << f.mc_backoff << "\n";
    out << "fault.mc_backoff_cap = " << f.mc_backoff_cap << "\n";
    out << "fault.mc_jitter = " << f.mc_jitter << "\n";
    out << "fault.mc_dead_threshold = " << f.mc_dead_threshold << "\n";
    out << "fault.mc_probe_interval = " << f.mc_probe_interval << "\n";
    out << "fault.shed_hi = " << f.shed_hi << "\n";
    out << "fault.shed_lo = " << f.shed_lo << "\n";
    out << "fault.shed_distance = " << f.shed_distance << "\n";
    out << "fault.degraded_pull_bw = " << f.degraded_pull_bw << "\n";
  }
  return out.str();
}

}  // namespace bdisk::core
