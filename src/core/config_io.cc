#include "core/config_io.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "obs/flight_recorder.h"

namespace bdisk::core {

namespace {

std::string Trim(const std::string& s) {
  const std::size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const std::size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

bool ParseDouble(const std::string& value, double* out) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') return false;
  *out = parsed;
  return true;
}

bool ParseU32(const std::string& value, std::uint32_t* out) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') return false;
  *out = static_cast<std::uint32_t>(parsed);
  return true;
}

bool ParseU64(const std::string& value, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') return false;
  *out = parsed;
  return true;
}

bool ParseBool(const std::string& value, bool* out) {
  if (value == "true" || value == "1" || value == "yes") {
    *out = true;
    return true;
  }
  if (value == "false" || value == "0" || value == "no") {
    *out = false;
    return true;
  }
  return false;
}

bool ParseU32List(const std::string& value, std::vector<std::uint32_t>* out) {
  out->clear();
  std::stringstream stream(value);
  std::string item;
  while (std::getline(stream, item, ',')) {
    std::uint32_t parsed = 0;
    if (!ParseU32(Trim(item), &parsed)) return false;
    out->push_back(parsed);
  }
  return !out->empty();
}

}  // namespace

std::string ApplyConfigOption(const std::string& raw_key,
                              const std::string& raw_value,
                              SystemConfig* config) {
  const std::string key = Trim(raw_key);
  const std::string value = Trim(raw_value);
  const auto bad_value = [&] { return "invalid value for " + key; };

  if (key == "mode") {
    if (value == "push") {
      config->mode = DeliveryMode::kPurePush;
    } else if (value == "pull") {
      config->mode = DeliveryMode::kPurePull;
    } else if (value == "ipp") {
      config->mode = DeliveryMode::kIpp;
    } else {
      return "mode must be push, pull, or ipp";
    }
    return "";
  }
  if (key == "chunking") {
    if (value == "balanced") {
      config->chunking = broadcast::ChunkingMode::kBalanced;
    } else if (value == "pad") {
      config->chunking = broadcast::ChunkingMode::kPad;
    } else {
      return "chunking must be balanced or pad";
    }
    return "";
  }
  if (key == "mc_policy") {
    if (value == "pix") {
      config->mc_policy = cache::PolicyKind::kPix;
    } else if (value == "p") {
      config->mc_policy = cache::PolicyKind::kP;
    } else if (value == "lru") {
      config->mc_policy = cache::PolicyKind::kLru;
    } else if (value == "lfu") {
      config->mc_policy = cache::PolicyKind::kLfu;
    } else if (value == "default") {
      config->mc_policy.reset();
    } else {
      return "mc_policy must be pix, p, lru, lfu, or default";
    }
    return "";
  }
  if (key == "disk_sizes") {
    return ParseU32List(value, &config->disks.sizes) ? "" : bad_value();
  }
  if (key == "disk_freqs") {
    return ParseU32List(value, &config->disks.rel_freqs) ? "" : bad_value();
  }
  if (key == "offset") {
    std::uint32_t parsed = 0;
    if (value == "cache_size") {
      config->offset.reset();
      return "";
    }
    if (!ParseU32(value, &parsed)) return bad_value();
    config->offset = parsed;
    return "";
  }
  if (key == "update_zipf_theta") {
    double parsed = 0;
    if (!ParseDouble(value, &parsed)) return bad_value();
    config->update_zipf_theta = parsed;
    return "";
  }
  if (key == "obs_window") {
    double parsed = 0;
    if (!ParseDouble(value, &parsed)) return bad_value();
    if (parsed <= 0.0) return "obs_window must be positive";
    config->obs_window = parsed;
    return "";
  }
  if (key == "flight_recorder") {
    // Validate eagerly so a bad spec fails at parse time with the trigger
    // grammar's own message, not at System construction.
    if (!value.empty() && value != "off") {
      obs::FlightTriggers triggers;
      const std::string error = obs::ParseFlightTriggerSpec(value, &triggers);
      if (!error.empty()) return "flight_recorder: " + error;
      config->flight_recorder = value;
    } else {
      config->flight_recorder.clear();
    }
    return "";
  }

  struct DoubleKey {
    const char* name;
    double* field;
  };
  const DoubleKey doubles[] = {
      {"pull_bw", &config->pull_bw},
      {"thres_perc", &config->thres_perc},
      {"zipf_theta", &config->zipf_theta},
      {"noise", &config->noise},
      {"mc_think_time", &config->mc_think_time},
      {"think_time_ratio", &config->think_time_ratio},
      {"steady_state_perc", &config->steady_state_perc},
      {"mc_retry_interval", &config->mc_retry_interval},
      {"update_rate", &config->update_rate},
  };
  for (const DoubleKey& entry : doubles) {
    if (key == entry.name) {
      return ParseDouble(value, entry.field) ? "" : bad_value();
    }
  }

  struct U32Key {
    const char* name;
    std::uint32_t* field;
  };
  const U32Key u32s[] = {
      {"server_db_size", &config->server_db_size},
      {"server_queue_size", &config->server_queue_size},
      {"chop_count", &config->chop_count},
      {"cache_size", &config->cache_size},
  };
  for (const U32Key& entry : u32s) {
    if (key == entry.name) {
      return ParseU32(value, entry.field) ? "" : bad_value();
    }
  }

  struct BoolKey {
    const char* name;
    bool* field;
  };
  const BoolKey bools[] = {
      {"vc_enabled", &config->vc_enabled},
      {"vc_fusion", &config->vc_fusion},
      {"mc_prefetch", &config->mc_prefetch},
      {"adaptive_pull_bw", &config->adaptive_pull_bw},
      {"adaptive_threshold", &config->adaptive_threshold},
  };
  for (const BoolKey& entry : bools) {
    if (key == entry.name) {
      return ParseBool(value, entry.field) ? "" : bad_value();
    }
  }

  if (key == "seed") {
    return ParseU64(value, &config->seed) ? "" : bad_value();
  }
  return "unknown key: " + key;
}

std::string ParseConfigText(const std::string& text, SystemConfig* config) {
  std::stringstream stream(text);
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return "line " + std::to_string(line_number) + ": expected key = value";
    }
    const std::string error = ApplyConfigOption(
        line.substr(0, eq), line.substr(eq + 1), config);
    if (!error.empty()) {
      return "line " + std::to_string(line_number) + ": " + error;
    }
  }
  return "";
}

std::string ConfigToText(const SystemConfig& config) {
  std::stringstream out;
  const char* mode = config.mode == DeliveryMode::kPurePush ? "push"
                     : config.mode == DeliveryMode::kPurePull ? "pull"
                                                              : "ipp";
  out << "mode = " << mode << "\n";
  out << "server_db_size = " << config.server_db_size << "\n";
  out << "disk_sizes = ";
  for (std::size_t i = 0; i < config.disks.sizes.size(); ++i) {
    if (i > 0) out << ",";
    out << config.disks.sizes[i];
  }
  out << "\n";
  out << "disk_freqs = ";
  for (std::size_t i = 0; i < config.disks.rel_freqs.size(); ++i) {
    if (i > 0) out << ",";
    out << config.disks.rel_freqs[i];
  }
  out << "\n";
  out << "server_queue_size = " << config.server_queue_size << "\n";
  out << "pull_bw = " << config.pull_bw << "\n";
  out << "thres_perc = " << config.thres_perc << "\n";
  out << "chop_count = " << config.chop_count << "\n";
  if (config.offset.has_value()) {
    out << "offset = " << *config.offset << "\n";
  } else {
    out << "offset = cache_size\n";
  }
  out << "chunking = "
      << (config.chunking == broadcast::ChunkingMode::kPad ? "pad"
                                                           : "balanced")
      << "\n";
  out << "zipf_theta = " << config.zipf_theta << "\n";
  out << "noise = " << config.noise << "\n";
  out << "cache_size = " << config.cache_size << "\n";
  out << "mc_think_time = " << config.mc_think_time << "\n";
  out << "think_time_ratio = " << config.think_time_ratio << "\n";
  out << "steady_state_perc = " << config.steady_state_perc << "\n";
  out << "vc_enabled = " << (config.vc_enabled ? "true" : "false") << "\n";
  out << "vc_fusion = " << (config.vc_fusion ? "true" : "false") << "\n";
  out << "mc_retry_interval = " << config.mc_retry_interval << "\n";
  if (config.mc_policy.has_value()) {
    const char* policy = cache::PolicyKindName(*config.mc_policy);
    std::string lower(policy);
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    out << "mc_policy = " << lower << "\n";
  }
  out << "seed = " << config.seed << "\n";
  out << "update_rate = " << config.update_rate << "\n";
  if (config.update_zipf_theta.has_value()) {
    out << "update_zipf_theta = " << *config.update_zipf_theta << "\n";
  }
  out << "mc_prefetch = " << (config.mc_prefetch ? "true" : "false") << "\n";
  out << "adaptive_pull_bw = "
      << (config.adaptive_pull_bw ? "true" : "false") << "\n";
  out << "adaptive_threshold = "
      << (config.adaptive_threshold ? "true" : "false") << "\n";
  out << "obs_window = " << config.obs_window << "\n";
  if (!config.flight_recorder.empty()) {
    out << "flight_recorder = " << config.flight_recorder << "\n";
  }
  return out.str();
}

}  // namespace bdisk::core
