#ifndef BDISK_CORE_CONFIG_IO_H_
#define BDISK_CORE_CONFIG_IO_H_

#include <string>

#include "core/config.h"

namespace bdisk::core {

/// Text serialization of SystemConfig for the CLI driver and experiment
/// scripts: simple `key = value` lines, `#` comments, blank lines ignored.
///
/// Recognized keys (values in parentheses):
///   mode (push|pull|ipp), server_db_size, disk_sizes (comma list),
///   disk_freqs (comma list), server_queue_size, pull_bw, thres_perc,
///   chop_count, offset, chunking (balanced|pad), zipf_theta, noise,
///   cache_size, mc_think_time, think_time_ratio, steady_state_perc,
///   vc_enabled (true|false), mc_retry_interval, mc_policy (pix|p|lru|lfu),
///   seed, update_rate, update_zipf_theta, mc_prefetch, adaptive_pull_bw,
///   adaptive_threshold, plus the fault-injection plan under a `fault.`
///   prefix (fault.slot_loss, fault.request_loss, fault.outage_start, ...;
///   the full key list and semantics are in ROBUSTNESS.md).

/// Applies one assignment to `config`. Returns an error description, or
/// empty on success. Unknown keys are errors.
std::string ApplyConfigOption(const std::string& key,
                              const std::string& value, SystemConfig* config);

/// Parses a whole config text; stops at the first error. The returned
/// error includes the offending line number.
std::string ParseConfigText(const std::string& text, SystemConfig* config);

/// Renders `config` as ParseConfigText-compatible text (round-trips).
std::string ConfigToText(const SystemConfig& config);

}  // namespace bdisk::core

#endif  // BDISK_CORE_CONFIG_IO_H_
