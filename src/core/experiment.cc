#include "core/experiment.h"

#include <atomic>
#include <memory>
#include <thread>

#include "sim/check.h"

namespace bdisk::core {

std::vector<SweepOutcome> RunSweep(const std::vector<SweepPoint>& points,
                                   const SteadyStateProtocol& steady,
                                   const WarmupProtocol& warmup,
                                   unsigned num_threads) {
  std::vector<SweepOutcome> outcomes(points.size());
  if (points.empty()) return outcomes;

  if (num_threads == 0) {
    num_threads = std::max(1U, std::thread::hardware_concurrency());
  }
  num_threads = std::min<unsigned>(num_threads,
                                   static_cast<unsigned>(points.size()));

  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= points.size()) return;
      const SweepPoint& point = points[i];
      // Each point gets its own System (and RNG streams); results do not
      // depend on which thread runs which point.
      System system(point.config);
      outcomes[i].point = point;
      outcomes[i].result = point.warmup_run ? system.RunWarmup(warmup)
                                            : system.RunSteadyState(steady);
    }
  };

  if (num_threads == 1) {
    worker();
    return outcomes;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  return outcomes;
}

ReplicationResult RunReplicated(const SystemConfig& config,
                                std::uint32_t replications,
                                const SteadyStateProtocol& steady,
                                unsigned num_threads) {
  BDISK_CHECK_MSG(replications >= 1, "need at least one replication");
  std::vector<SweepPoint> points(replications);
  for (std::uint32_t i = 0; i < replications; ++i) {
    points[i].curve = "rep" + std::to_string(i);
    points[i].x = static_cast<double>(i);
    points[i].config = config;
    points[i].config.seed = config.seed + i;
  }
  const std::vector<SweepOutcome> outcomes =
      RunSweep(points, steady, {}, num_threads);

  ReplicationResult result;
  result.replications.reserve(replications);
  for (const SweepOutcome& outcome : outcomes) {
    result.means.Add(outcome.result.mean_response);
    result.replications.push_back(outcome.result);
  }
  if (result.means.Count() >= 2) {
    result.ci95_half_width = 1.96 * result.means.StdError();
  }
  return result;
}

}  // namespace bdisk::core
