#include "core/experiment.h"

#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "sim/check.h"

namespace bdisk::core {

std::vector<SweepOutcome> RunSweep(const std::vector<SweepPoint>& points,
                                   const SteadyStateProtocol& steady,
                                   const WarmupProtocol& warmup,
                                   unsigned num_threads) {
  std::vector<SweepOutcome> outcomes(points.size());
  if (points.empty()) return outcomes;

  if (num_threads == 0) {
    num_threads = std::max(1U, std::thread::hardware_concurrency());
  }
  num_threads = std::min<unsigned>(num_threads,
                                   static_cast<unsigned>(points.size()));

  // Immutable per-config artifacts (pattern, program, value array) are
  // seed-independent, so points and replications that agree on the key
  // fields build them once and share.
  ArtifactCache artifacts;

  // A throw on a worker thread would otherwise std::terminate the whole
  // process; capture the first one and rethrow it to the caller after the
  // join. `failed` makes the remaining workers stop claiming points.
  std::mutex error_mu;
  std::exception_ptr first_error;
  std::atomic<bool> failed{false};

  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1);
      if (i >= points.size()) return;
      const SweepPoint& point = points[i];
      try {
        // System's constructor aborts on an invalid config (library code
        // never throws); validating here instead turns a bad sweep point
        // into an exception the caller can handle.
        const std::string error = point.config.Validate();
        if (!error.empty()) {
          throw std::invalid_argument("sweep point " + std::to_string(i) +
                                      ": " + error);
        }
        // Each point gets its own System (and RNG streams); results do not
        // depend on which thread runs which point.
        System system(point.config, artifacts.Get(point.config));
        outcomes[i].point = point;
        outcomes[i].result = point.warmup_run
                                 ? system.RunWarmup(warmup)
                                 : system.RunSteadyState(steady);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (first_error == nullptr) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  if (num_threads == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
  return outcomes;
}

ReplicationResult RunReplicated(const SystemConfig& config,
                                std::uint32_t replications,
                                const SteadyStateProtocol& steady,
                                unsigned num_threads) {
  BDISK_CHECK_MSG(replications >= 1, "need at least one replication");
  std::vector<SweepPoint> points(replications);
  for (std::uint32_t i = 0; i < replications; ++i) {
    points[i].curve = "rep" + std::to_string(i);
    points[i].x = static_cast<double>(i);
    points[i].config = config;
    points[i].config.seed = config.seed + i;
  }
  const std::vector<SweepOutcome> outcomes =
      RunSweep(points, steady, {}, num_threads);

  ReplicationResult result;
  result.replications.reserve(replications);
  for (const SweepOutcome& outcome : outcomes) {
    result.means.Add(outcome.result.mean_response);
    result.replications.push_back(outcome.result);
  }
  if (result.means.Count() >= 2) {
    result.ci95_half_width = 1.96 * result.means.StdError();
  }
  return result;
}

}  // namespace bdisk::core
