#include "analysis/advisor.h"

#include <algorithm>
#include <limits>

#include "sim/check.h"

namespace bdisk::analysis {

namespace {

core::SystemConfig WithKnobs(const core::SystemConfig& base, double pull_bw,
                             double thres_perc, std::uint32_t chop) {
  core::SystemConfig config = base;
  config.mode = core::DeliveryMode::kIpp;
  config.pull_bw = pull_bw;
  config.thres_perc = thres_perc;
  config.chop_count = chop;
  return config;
}

}  // namespace

Recommendation Recommend(const core::SystemConfig& base,
                         const AdvisorGrid& grid) {
  return RecommendRobust(base, {base.think_time_ratio}, grid);
}

Recommendation RecommendRobust(const core::SystemConfig& base,
                               const std::vector<double>& loads,
                               const AdvisorGrid& grid) {
  BDISK_CHECK_MSG(!loads.empty(), "advisor needs at least one load");
  BDISK_CHECK_MSG(!grid.pull_bw.empty() && !grid.thres_perc.empty() &&
                      !grid.chop.empty(),
                  "advisor grid must be non-empty");

  Recommendation best;
  double best_worst = std::numeric_limits<double>::infinity();
  for (const double bw : grid.pull_bw) {
    for (const double thres : grid.thres_perc) {
      for (const std::uint32_t chop : grid.chop) {
        double worst = 0.0;
        for (const double ttr : loads) {
          core::SystemConfig config = WithKnobs(base, bw, thres, chop);
          config.think_time_ratio = ttr;
          worst = std::max(worst, PredictResponse(config).mean_response);
        }
        if (worst < best_worst) {
          best_worst = worst;
          best = Recommendation{bw, thres, chop, worst};
        }
      }
    }
  }
  return best;
}

}  // namespace bdisk::analysis
