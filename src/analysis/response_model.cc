#include "analysis/response_model.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "analysis/queue_model.h"
#include "cache/value_functions.h"
#include "core/system.h"
#include "sim/check.h"

namespace bdisk::analysis {

namespace {

// Alignment + transmission correction for the pull path: an accepted
// request's page completes transmission at a slot boundary after its queue
// system time.
constexpr double kPullSlotCorrection = 1.0;

// Cap on the blocking probability inside the retry expectation, so a fully
// saturated prediction stays finite.
constexpr double kMaxRetryBlocking = 0.99;

double RetryPenalty(double blocking, double retry_interval, double queue_w) {
  const double b = std::min(blocking, kMaxRetryBlocking);
  // Geometric number of dropped attempts before one is accepted, each
  // costing one retry interval, then the accepted request's system time.
  return (b / (1.0 - b)) * retry_interval + queue_w + kPullSlotCorrection;
}

}  // namespace

ResponsePrediction PredictResponse(const core::SystemConfig& config) {
  const std::string error = config.Validate();
  BDISK_CHECK_MSG(error.empty(), error.c_str());

  const auto program = core::ProgramForConfig(config);
  const auto canonical = core::CanonicalPatternForConfig(config);
  const auto mc_pattern = core::McPatternForConfig(config);
  const bool push_exists = !program.Empty();
  const double cycle = static_cast<double>(program.Length());
  const double thres_perc =
      config.mode == core::DeliveryMode::kIpp ? config.thres_perc : 0.0;
  const double threshold =
      push_exists ? std::llround(thres_perc * cycle) : 0.0;

  // Threshold pass fraction for a page: the share of schedule positions
  // whose distance-to-next-arrival exceeds the threshold, assuming evenly
  // spaced occurrences (gap = cycle / frequency).
  const auto pass_fraction = [&](broadcast::PageId page) {
    if (!push_exists) return 1.0;
    const std::uint32_t freq = program.Frequency(page);
    if (freq == 0) return 1.0;  // Unscheduled pages always pass.
    const double gap = cycle / static_cast<double>(freq);
    if (threshold >= gap) return 0.0;
    return (gap - threshold) / gap;
  };

  ResponsePrediction out;

  // ---- Backchannel arrival rate (virtual client dominated). ----
  double lambda = 0.0;
  if (config.mode != core::DeliveryMode::kPurePush && config.vc_enabled) {
    const auto vc_values =
        push_exists ? cache::PixValues(canonical.probs(), program)
                    : cache::PValues(canonical.probs());
    std::vector<bool> vc_warm(config.server_db_size, false);
    for (const auto p : core::TopValuedPages(vc_values, config.cache_size)) {
      vc_warm[p] = true;
    }
    double submit_prob = 0.0;
    for (broadcast::PageId page = 0; page < config.server_db_size; ++page) {
      const double reach_server =
          vc_warm[page] ? (1.0 - config.steady_state_perc) : 1.0;
      submit_prob += canonical.Prob(page) * reach_server *
                     pass_fraction(page);
    }
    const double vc_rate = config.think_time_ratio / config.mc_think_time;
    lambda = vc_rate * submit_prob;
  }
  out.request_rate = lambda;

  // ---- Server queue. ----
  double blocking = 0.0;
  double queue_w = 0.0;
  double pull_share = 0.0;
  if (config.mode != core::DeliveryMode::kPurePush) {
    MM1K queue{lambda, config.EffectivePullBw(), config.server_queue_size};
    blocking = queue.BlockingProbability();
    queue_w = queue.MeanResponse();
    pull_share = std::min(queue.Throughput(), 0.95);
  }
  out.blocking_prob = blocking;
  out.queue_response = queue_w;

  // Interleaved pulls delay the periodic schedule.
  const double slowdown = push_exists ? 1.0 / (1.0 - pull_share) : 1.0;
  out.push_slowdown = slowdown;

  // ---- Measured client. ----
  const auto mc_values = push_exists
                             ? cache::PixValues(mc_pattern.probs(), program)
                             : cache::PValues(mc_pattern.probs());
  std::vector<bool> mc_warm(config.server_db_size, false);
  for (const auto p : core::TopValuedPages(mc_values, config.cache_size)) {
    mc_warm[p] = true;
  }

  const double retry_interval =
      config.mc_retry_interval > 0.0
          ? config.mc_retry_interval
          : (push_exists ? cycle : static_cast<double>(config.server_db_size));

  double mean = 0.0;
  double miss_mass = 0.0;
  for (broadcast::PageId page = 0; page < config.server_db_size; ++page) {
    if (mc_warm[page]) continue;  // Hit: costs 0.
    const double p = mc_pattern.Prob(page);
    miss_mass += p;

    double resp = 0.0;
    const std::uint32_t freq = push_exists ? program.Frequency(page) : 0;
    if (freq == 0) {
      // Pure-Pull, or a truncated page: backchannel is the only path.
      resp = RetryPenalty(blocking, retry_interval, queue_w);
    } else {
      const double gap = cycle / static_cast<double>(freq);
      const double push_uncond = (gap / 2.0) * slowdown + 1.0;
      if (config.mode == core::DeliveryMode::kPurePush ||
          threshold >= gap) {
        resp = push_uncond;
      } else {
        const double pass = (gap - threshold) / gap;
        // Distance <= threshold: wait for the nearby push.
        const double near_wait = (threshold / 2.0) * slowdown + 1.0;
        // Distance > threshold: a pull goes out; if accepted the page
        // arrives after the queue time (bounded by the push), else the
        // push safety net serves it.
        const double far_push = ((threshold + gap) / 2.0) * slowdown + 1.0;
        const double pulled =
            (1.0 - blocking) *
                std::min(queue_w + kPullSlotCorrection, far_push) +
            blocking * far_push;
        resp = (1.0 - pass) * near_wait + pass * pulled;
      }
    }
    mean += p * resp;
  }
  out.mean_response = mean;
  out.miss_rate = miss_mass;
  return out;
}

}  // namespace bdisk::analysis
