#ifndef BDISK_ANALYSIS_QUEUE_MODEL_H_
#define BDISK_ANALYSIS_QUEUE_MODEL_H_

#include <cstdint>

namespace bdisk::analysis {

/// Closed-form M/M/1/K queue with FIFO service — the analytical frame the
/// paper's §6 proposes adapting from [Imie94c, Wong88] for parameter
/// setting. The paper is explicit that its *simulated* server is not
/// exactly M/M/1 (requests coalesce, service is slotted and gated by
/// PullBW); the model is a design-time estimator, validated against the
/// simulator in tests and in bench_advisor.
///
/// lambda: request arrival rate (requests per broadcast unit).
/// mu:     service rate (pull pages per broadcast unit ~= PullBW).
/// k:      system capacity (queued + in service) ~= ServerQSize.
struct MM1K {
  double lambda = 0.0;
  double mu = 1.0;
  std::uint32_t k = 1;

  /// Offered load rho = lambda / mu. May exceed 1 (finite queue).
  double Rho() const { return lambda / mu; }

  /// Steady-state probability that n requests are in the system,
  /// n in [0, k].
  double StateProbability(std::uint32_t n) const;

  /// Probability an arriving request finds the system full and is dropped
  /// (PASTA: equals StateProbability(k)).
  double BlockingProbability() const;

  /// Expected number of requests in the system.
  double MeanInSystem() const;

  /// Expected time an *accepted* request spends in the system (queue wait
  /// + service), by Little's law with effective arrival rate
  /// lambda * (1 - blocking).
  double MeanResponse() const;

  /// Throughput of served requests per broadcast unit.
  double Throughput() const { return lambda * (1.0 - BlockingProbability()); }
};

}  // namespace bdisk::analysis

#endif  // BDISK_ANALYSIS_QUEUE_MODEL_H_
