#ifndef BDISK_ANALYSIS_ADVISOR_H_
#define BDISK_ANALYSIS_ADVISOR_H_

#include <cstdint>
#include <vector>

#include "analysis/response_model.h"
#include "core/config.h"

namespace bdisk::analysis {

/// The knob grid the advisor searches. Defaults cover the ranges the paper
/// explores.
struct AdvisorGrid {
  std::vector<double> pull_bw = {0.1, 0.2, 0.3, 0.4, 0.5,
                                 0.6, 0.7, 0.8, 0.9};
  std::vector<double> thres_perc = {0.0, 0.10, 0.25, 0.35, 0.50};
  std::vector<std::uint32_t> chop = {0};
};

/// A recommended IPP operating point.
struct Recommendation {
  double pull_bw = 0.5;
  double thres_perc = 0.0;
  std::uint32_t chop = 0;
  /// Predicted mean response at the evaluated load(s); for the robust
  /// variant this is the worst case across loads.
  double predicted_response = 0.0;
};

/// Picks the IPP (PullBW, ThresPerc, chop) minimizing the *predicted*
/// response at the load in `base` (base.think_time_ratio). This is the
/// "tool to make the parameter setting decisions ... easier" the paper's
/// conclusion asks for: it replaces a simulation sweep with closed-form
/// evaluation of the whole grid.
Recommendation Recommend(const core::SystemConfig& base,
                         const AdvisorGrid& grid = {});

/// Picks the operating point minimizing the worst-case predicted response
/// across `loads` (ThinkTimeRatio values) — the paper's stated design
/// goal: "consistently good performance over the entire range of system
/// loads".
Recommendation RecommendRobust(const core::SystemConfig& base,
                               const std::vector<double>& loads,
                               const AdvisorGrid& grid = {});

}  // namespace bdisk::analysis

#endif  // BDISK_ANALYSIS_ADVISOR_H_
