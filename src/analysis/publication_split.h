#ifndef BDISK_ANALYSIS_PUBLICATION_SPLIT_H_
#define BDISK_ANALYSIS_PUBLICATION_SPLIT_H_

#include <cstdint>
#include <vector>

namespace bdisk::analysis {

/// The Imielinski–Viswanathan baseline ([Imie94c, Vish94], §5 of the
/// paper): split the database into a *publication group* (the n hottest
/// pages, broadcast on a flat cycle) and an *on-demand group* (the rest,
/// served only over the backchannel), choosing n to minimize uplink
/// requests subject to a response-time bound.
///
/// Model, adapted to our slotted channel (documented differences from
/// [Imie94c]: they assume an infinite M/M/1 queue and a shared
/// symmetric medium; we keep the M/M/1 queue — matching their analysis —
/// on our asymmetric channel where each response preempts one broadcast
/// slot):
///
///   * lambda(n) = request_rate x (probability mass of the on-demand
///     group). Stability requires lambda < 1 (responses are 1 slot each).
///   * On-demand response: M/M/1 with mu = 1 -> W = 1 / (1 - lambda).
///   * Published response: the flat cycle of n pages is slowed by the
///     pull traffic: T = n / (1 - lambda); expected wait T/2 + 1.
///   * Expected response = mass-weighted mix. No client caches (the
///     [Imie94c] model has none — a key difference from Broadcast Disks
///     the paper's §5 discusses).
struct SplitEvaluation {
  std::uint32_t publication_size = 0;  // n.
  double on_demand_mass = 0.0;         // Access probability served by pull.
  double uplink_rate = 0.0;            // lambda(n), requests per slot.
  double expected_response = 0.0;      // Broadcast units.
  bool stable = false;                 // lambda < 1.
};

/// Evaluates one split size.
SplitEvaluation EvaluateSplit(const std::vector<double>& probs,
                              double request_rate,
                              std::uint32_t publication_size);

/// Result of the optimization sweep.
struct SplitResult {
  /// Minimum-uplink split meeting the bound; publication_size ==
  /// probs.size()+1 (impossible value) when no split is feasible —
  /// check `feasible`.
  SplitEvaluation best;
  bool feasible = false;
  /// Every evaluated split, n = 0..N (for tables/plots).
  std::vector<SplitEvaluation> all;
};

/// Scans n = 0..N and returns the split minimizing uplink_rate among
/// stable splits whose expected response is <= `response_bound` —
/// [Imie94c]'s objective. `probs` must be sorted-agnostic (pages are
/// ranked internally, hottest published first); `request_rate` is the
/// aggregate client request rate per broadcast unit.
SplitResult OptimizePublicationSplit(const std::vector<double>& probs,
                                     double request_rate,
                                     double response_bound);

}  // namespace bdisk::analysis

#endif  // BDISK_ANALYSIS_PUBLICATION_SPLIT_H_
