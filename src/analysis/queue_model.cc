#include "analysis/queue_model.h"

#include <cmath>

#include "sim/check.h"

namespace bdisk::analysis {

namespace {

// (1 - rho) / (1 - rho^(k+1)), handling rho == 1 by the limit 1/(k+1).
double P0(double rho, std::uint32_t k) {
  if (std::fabs(rho - 1.0) < 1e-12) {
    return 1.0 / static_cast<double>(k + 1);
  }
  return (1.0 - rho) / (1.0 - std::pow(rho, static_cast<double>(k + 1)));
}

}  // namespace

double MM1K::StateProbability(std::uint32_t n) const {
  BDISK_CHECK_MSG(mu > 0.0, "service rate must be positive");
  BDISK_CHECK_MSG(lambda >= 0.0, "arrival rate must be non-negative");
  BDISK_CHECK_MSG(k >= 1, "capacity must be at least 1");
  BDISK_CHECK_MSG(n <= k, "state exceeds capacity");
  if (lambda == 0.0) return n == 0 ? 1.0 : 0.0;
  const double rho = Rho();
  return P0(rho, k) * std::pow(rho, static_cast<double>(n));
}

double MM1K::BlockingProbability() const { return StateProbability(k); }

double MM1K::MeanInSystem() const {
  BDISK_CHECK_MSG(mu > 0.0, "service rate must be positive");
  if (lambda == 0.0) return 0.0;
  const double rho = Rho();
  if (std::fabs(rho - 1.0) < 1e-12) {
    return static_cast<double>(k) / 2.0;
  }
  // L = rho/(1-rho) - (k+1) rho^(k+1) / (1 - rho^(k+1)).
  const double kp1 = static_cast<double>(k + 1);
  const double rho_kp1 = std::pow(rho, kp1);
  return rho / (1.0 - rho) - kp1 * rho_kp1 / (1.0 - rho_kp1);
}

double MM1K::MeanResponse() const {
  if (lambda == 0.0) return 1.0 / mu;
  const double effective = Throughput();
  if (effective <= 0.0) return 0.0;
  return MeanInSystem() / effective;
}

}  // namespace bdisk::analysis
