#include "analysis/publication_split.h"

#include <algorithm>
#include <numeric>

#include "sim/check.h"

namespace bdisk::analysis {

namespace {

// Probability mass of the coldest pages, cumulative from the tail:
// tail_mass[n] = mass NOT covered by publishing the n hottest pages.
std::vector<double> TailMass(const std::vector<double>& probs) {
  std::vector<double> sorted = probs;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  std::vector<double> tail(sorted.size() + 1, 0.0);
  for (std::size_t n = sorted.size(); n-- > 0;) {
    tail[n] = tail[n + 1] + sorted[n];
  }
  return tail;
}

SplitEvaluation Evaluate(const std::vector<double>& tail_mass,
                         double request_rate, std::uint32_t n) {
  SplitEvaluation eval;
  eval.publication_size = n;
  eval.on_demand_mass = tail_mass[n];
  eval.uplink_rate = request_rate * eval.on_demand_mass;
  eval.stable = eval.uplink_rate < 1.0;
  if (!eval.stable) {
    eval.expected_response = 0.0;  // Meaningless: the queue diverges.
    return eval;
  }
  const double lambda = eval.uplink_rate;
  const double slowdown = 1.0 / (1.0 - lambda);
  // Published pages: flat cycle of n pages, slowed by pull traffic.
  const double published_mass = 1.0 - eval.on_demand_mass;
  const double published_response =
      n == 0 ? 0.0
             : (static_cast<double>(n) / 2.0) * slowdown + 1.0;
  // On-demand pages: M/M/1 system time with mu = 1, plus the transmission
  // alignment slot (matching response_model.cc's convention).
  const double on_demand_response =
      eval.on_demand_mass == 0.0 ? 0.0 : 1.0 / (1.0 - lambda) + 1.0;
  eval.expected_response = published_mass * published_response +
                           eval.on_demand_mass * on_demand_response;
  return eval;
}

}  // namespace

SplitEvaluation EvaluateSplit(const std::vector<double>& probs,
                              double request_rate,
                              std::uint32_t publication_size) {
  BDISK_CHECK_MSG(!probs.empty(), "empty database");
  BDISK_CHECK_MSG(request_rate >= 0.0, "negative request rate");
  BDISK_CHECK_MSG(publication_size <= probs.size(),
                  "publication group exceeds the database");
  return Evaluate(TailMass(probs), request_rate, publication_size);
}

SplitResult OptimizePublicationSplit(const std::vector<double>& probs,
                                     double request_rate,
                                     double response_bound) {
  BDISK_CHECK_MSG(!probs.empty(), "empty database");
  BDISK_CHECK_MSG(request_rate >= 0.0, "negative request rate");
  BDISK_CHECK_MSG(response_bound > 0.0, "response bound must be positive");

  const std::vector<double> tail_mass = TailMass(probs);
  SplitResult result;
  result.all.reserve(probs.size() + 1);
  for (std::uint32_t n = 0; n <= probs.size(); ++n) {
    const SplitEvaluation eval = Evaluate(tail_mass, request_rate, n);
    result.all.push_back(eval);
    if (!eval.stable || eval.expected_response > response_bound) continue;
    if (!result.feasible || eval.uplink_rate < result.best.uplink_rate ||
        (eval.uplink_rate == result.best.uplink_rate &&
         eval.expected_response < result.best.expected_response)) {
      result.best = eval;
      result.feasible = true;
    }
  }
  return result;
}

}  // namespace bdisk::analysis
