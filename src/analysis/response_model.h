#ifndef BDISK_ANALYSIS_RESPONSE_MODEL_H_
#define BDISK_ANALYSIS_RESPONSE_MODEL_H_

#include "core/config.h"

namespace bdisk::analysis {

/// Output of the closed-form response-time estimate.
struct ResponsePrediction {
  /// Predicted mean MC response over all accesses (hits count 0), in
  /// broadcast units.
  double mean_response = 0.0;
  /// Predicted MC cache miss rate.
  double miss_rate = 0.0;
  /// Predicted backchannel request arrival rate at the server
  /// (requests per broadcast unit, dominated by the virtual client).
  double request_rate = 0.0;
  /// M/M/1/K blocking (drop) probability at that rate.
  double blocking_prob = 0.0;
  /// Mean system time of an accepted pull request.
  double queue_response = 0.0;
  /// Factor by which interleaved pull responses slow the push schedule
  /// (>= 1; the "disk rotates slower" effect of §4.1.2).
  double push_slowdown = 1.0;
};

/// Predicts steady-state measured-client response time for a configuration
/// without simulating — the parameter-setting tool the paper's §6 calls
/// for, in the spirit of the [Imie94c]/[Wong88] analytical framework.
///
/// Model (documented approximations):
///  * MC steady cache = the CacheSize highest-valued pages under the
///    active metric (PIX / P) of the MC's own pattern; hits cost 0.
///  * Backchannel arrivals: Poisson with rate = VC rate x per-access
///    submit probability (steady-state cache filter + threshold pass
///    fraction per page, assuming evenly spaced occurrences). Duplicate
///    coalescing is ignored (conservative: real queues drop less).
///  * Server: M/M/1/K with mu = PullBW, K = ServerQSize.
///  * A pulled page arrives after min(queue time, its push wait); a
///    dropped request falls back to the push wait (scheduled pages) or to
///    retry cycles of the client's retry interval (unscheduled pages).
///  * Push waits are scaled by the slowdown factor 1/(1 - pull share).
///
/// Aborts on invalid configs. Meaningful for all three delivery modes
/// (Pure-Push degenerates to the cached analytic expectation).
ResponsePrediction PredictResponse(const core::SystemConfig& config);

}  // namespace bdisk::analysis

#endif  // BDISK_ANALYSIS_RESPONSE_MODEL_H_
