#include "transport/datagram_transport.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "obs/frame_sink.h"

namespace bdisk::transport {

namespace {

/// Datagrams are short text lines; 512 bytes dwarfs the longest STATS.
constexpr std::size_t kMaxDatagram = 512;

bool RefusedBackpressure(int err) {
  return err == EAGAIN || err == EWOULDBLOCK || err == ENOBUFS;
}

}  // namespace

DatagramServerTransport::~DatagramServerTransport() {
  Shutdown("shutdown");
}

bool DatagramServerTransport::Bind(const DatagramServerOptions& options,
                                   server::BroadcastServer* server,
                                   std::string* error) {
  if (fd_ >= 0) {
    if (error != nullptr) *error = "transport already bound";
    return false;
  }
  if (server == nullptr) {
    if (error != nullptr) *error = "transport needs a server";
    return false;
  }
  const std::string invalid = obs::ValidateUnixSocketPath(options.socket_path);
  if (!invalid.empty()) {
    if (error != nullptr) *error = invalid;
    return false;
  }
  const int fd = ::socket(AF_UNIX, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    if (error != nullptr) {
      *error = std::string("socket(AF_UNIX, SOCK_DGRAM): ") +
               std::strerror(errno);
    }
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options.socket_path.c_str(),
              options.socket_path.size() + 1);
  ::unlink(options.socket_path.c_str());  // Replace a stale socket file.
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr) {
      *error = "cannot bind serve socket '" + options.socket_path +
               "': " + std::strerror(errno);
    }
    ::close(fd);
    return false;
  }
  fd_ = fd;
  path_ = options.socket_path;
  options_ = options;
  server_ = server;
  server_->AddListener(this);
  return true;
}

server::SubmitResult DatagramServerTransport::SubmitPull(
    PageId page, std::uint32_t client) {
  return server_->SubmitRequest(page, client);
}

std::string DatagramServerTransport::Describe() const {
  return "unix:" + path_;
}

void DatagramServerTransport::OnBroadcast(PageId page, server::SlotKind kind,
                                          sim::SimTime now) {
  const std::uint64_t seq = slot_seq_++;
  if (peers_.empty()) return;
  // Wire-level slot fate is judged once per slot, not per peer: a slot the
  // channel loses reaches nobody, mirroring the sim frontchannel. Lost and
  // corrupted both mean "no usable slot at any client", so both withhold
  // the fan-out and count as drop_fault per missing delivery.
  if (options_.injector != nullptr &&
      options_.injector->JudgeSlot() != fault::SlotFate::kDelivered) {
    for (auto& [id, peer] : peers_) {
      (void)id;
      ++peer.stats.drop_fault;
      ++counters_.drop_fault;
    }
    return;
  }
  wire::FormatSlot(seq, page, kind, now, &scratch_);
  for (auto& [id, peer] : peers_) {
    (void)id;
    switch (SendTo(peer, scratch_)) {
      case SendOutcome::kOk:
        ++peer.stats.slots_tx_epoch;
        ++counters_.slots_tx;
        break;
      case SendOutcome::kBackpressure:
        ++peer.stats.drop_backpressure;
        ++counters_.drop_backpressure;
        break;
      case SendOutcome::kDeadPeer:
        // No eviction here: identity (and cumulative counters) survive a
        // quick client restart; only the heartbeat deadline forgets.
        ++peer.stats.drop_dead_peer;
        ++counters_.drop_dead_peer;
        break;
    }
  }
}

int DatagramServerTransport::Poll(double wall_now) {
  if (fd_ < 0) return 0;
  char buf[kMaxDatagram];
  int consumed = 0;
  for (;;) {
    sockaddr_un from{};
    socklen_t from_len = sizeof(from);
    const ssize_t n =
        ::recvfrom(fd_, buf, sizeof(buf), MSG_DONTWAIT,
                   reinterpret_cast<sockaddr*>(&from), &from_len);
    if (n < 0) break;  // EAGAIN: drained. Anything else: nothing to do.
    ++consumed;
    wire::Message msg;
    if (!wire::ParseMessage(std::string_view(buf, static_cast<std::size_t>(n)),
                            &msg, nullptr)) {
      ++counters_.malformed_rx;
      continue;
    }
    switch (msg.type) {
      case wire::MsgType::kHello:
        OnHello(msg.client_id, from, from_len, wall_now);
        break;
      case wire::MsgType::kPull:
        OnPull(msg, wall_now);
        break;
      case wire::MsgType::kPing: {
        ++counters_.pings_rx;
        auto it = peers_.find(msg.client_id);
        if (it != peers_.end()) it->second.last_heard = wall_now;
        break;
      }
      case wire::MsgType::kBye:
        ++counters_.byes_rx;
        OnBye(msg.client_id);
        break;
      default:
        // Server-to-client verbs arriving here are misdirected traffic.
        ++counters_.malformed_rx;
        break;
    }
  }
  return consumed;
}

void DatagramServerTransport::OnHello(const std::string& client_id,
                                      const sockaddr_un& from,
                                      socklen_t from_len, double wall_now) {
  auto it = peers_.find(client_id);
  if (it == peers_.end()) {
    if (peers_.size() >= options_.max_peers) {
      ++counters_.peers_rejected;
      Peer stranger;
      stranger.addr = from;
      stranger.addr_len = from_len;
      wire::FormatFin("full", &scratch_);
      (void)SendTo(stranger, scratch_);
      return;
    }
    it = peers_.emplace(client_id, Peer{}).first;
    it->second.trace_client = next_trace_client_++;
  } else {
    // Reconnect (or duplicate HELLO — indistinguishable, handled the
    // same): new reply address, new slot epoch. The client zeroes its
    // received-slot tally on the WELCOME this triggers, so both epoch
    // counters restart together even after a client crash.
    ++it->second.stats.reconnects;
    ++counters_.reconnects;
    it->second.stats.slots_tx_epoch = 0;
  }
  ++counters_.hellos;
  Peer& peer = it->second;
  peer.addr = from;
  peer.addr_len = from_len;
  peer.last_heard = wall_now;
  wire::FormatWelcome(options_.db_size, options_.cycle_len, options_.slot_us,
                      &scratch_);
  (void)SendTo(peer, scratch_);
}

void DatagramServerTransport::OnPull(const wire::Message& msg,
                                     double wall_now) {
  auto it = peers_.find(msg.client_id);
  if (it == peers_.end()) {
    ++counters_.pulls_unknown_peer;
    return;
  }
  Peer& peer = it->second;
  peer.last_heard = wall_now;
  // pulls_rx counts pre-judgement: it is the denominator the client's
  // send count reconciles against (sends that the kernel accepted all
  // arrive — AF_UNIX does not lose datagrams — so rx == sent_ok exactly).
  ++peer.stats.pulls_rx;
  ++counters_.pulls_rx;
  if (options_.injector != nullptr &&
      options_.injector->JudgeRequestLost()) {
    ++peer.stats.pulls_fault_dropped;
    ++counters_.pulls_fault_dropped;
    return;
  }
  (void)server_->SubmitRequest(msg.page, peer.trace_client);
}

void DatagramServerTransport::OnBye(const std::string& client_id) {
  auto it = peers_.find(client_id);
  if (it == peers_.end()) return;
  // FIFO ordering per sender/receiver pair means this STATS lands after
  // every slot datagram already sent to the peer, and the BYE that
  // triggered it arrived after every PULL the client sent — so the
  // counters are a consistent cut, and reconciliation can demand equality.
  wire::FormatStats(it->second.stats, &scratch_);
  (void)SendFinal(it->second, scratch_);
  peers_.erase(it);
}

int DatagramServerTransport::EvictDeadPeers(double wall_now) {
  if (options_.heartbeat_deadline <= 0.0) return 0;
  int evicted = 0;
  for (auto it = peers_.begin(); it != peers_.end();) {
    if (wall_now - it->second.last_heard > options_.heartbeat_deadline) {
      wire::FormatFin("evicted", &scratch_);
      (void)SendTo(it->second, scratch_);
      it = peers_.erase(it);
      ++counters_.evictions;
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

void DatagramServerTransport::Shutdown(const std::string& reason) {
  if (fd_ < 0) return;
  wire::FormatFin(reason, &scratch_);
  for (auto& [id, peer] : peers_) {
    (void)id;
    (void)SendFinal(peer, scratch_);
  }
  peers_.clear();
  ::close(fd_);
  fd_ = -1;
  ::unlink(path_.c_str());
}

bool DatagramServerTransport::WaitReadable(int timeout_ms) const {
  if (fd_ < 0) return false;
  pollfd pfd{fd_, POLLIN, 0};
  return ::poll(&pfd, 1, timeout_ms) > 0 && (pfd.revents & POLLIN) != 0;
}

const wire::PeerStats* DatagramServerTransport::FindPeerStats(
    const std::string& client_id) const {
  const auto it = peers_.find(client_id);
  return it == peers_.end() ? nullptr : &it->second.stats;
}

DatagramServerTransport::SendOutcome DatagramServerTransport::SendTo(
    const Peer& peer, const std::string& payload) const {
  const ssize_t sent = ::sendto(
      fd_, payload.data(), payload.size(), MSG_DONTWAIT | MSG_NOSIGNAL,
      reinterpret_cast<const sockaddr*>(&peer.addr), peer.addr_len);
  if (sent == static_cast<ssize_t>(payload.size())) return SendOutcome::kOk;
  return RefusedBackpressure(errno) ? SendOutcome::kBackpressure
                                    : SendOutcome::kDeadPeer;
}

bool DatagramServerTransport::SendFinal(const Peer& peer,
                                        const std::string& payload) const {
  // Same ~200ms bounded retry as obs::DatagramFrameSink::WriteFinal: the
  // goodbye handshake is worth a short wait, but never an unbounded one.
  for (int attempt = 0; attempt < 100; ++attempt) {
    const ssize_t sent = ::sendto(
        fd_, payload.data(), payload.size(), MSG_DONTWAIT | MSG_NOSIGNAL,
        reinterpret_cast<const sockaddr*>(&peer.addr), peer.addr_len);
    if (sent == static_cast<ssize_t>(payload.size())) return true;
    if (!RefusedBackpressure(errno)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

void DatagramServerTransport::AppendCounterSamples(
    std::vector<obs::CounterSample>* out) const {
  const TransportCounters& c = counters_;
  out->push_back({"transport.hellos", c.hellos});
  out->push_back({"transport.reconnects", c.reconnects});
  out->push_back({"transport.peers_rejected", c.peers_rejected});
  out->push_back({"transport.pulls_rx", c.pulls_rx});
  out->push_back({"transport.pulls_fault_dropped", c.pulls_fault_dropped});
  out->push_back({"transport.pulls_unknown_peer", c.pulls_unknown_peer});
  out->push_back({"transport.pings_rx", c.pings_rx});
  out->push_back({"transport.byes_rx", c.byes_rx});
  out->push_back({"transport.malformed_rx", c.malformed_rx});
  out->push_back({"transport.slots_tx", c.slots_tx});
  out->push_back({"transport.drop_backpressure", c.drop_backpressure});
  out->push_back({"transport.drop_dead_peer", c.drop_dead_peer});
  out->push_back({"transport.drop_fault", c.drop_fault});
  out->push_back({"transport.evictions", c.evictions});
}

void DatagramServerTransport::SnapshotMetrics(
    obs::MetricsRegistry* registry) const {
  std::vector<obs::CounterSample> samples;
  AppendCounterSamples(&samples);
  for (const obs::CounterSample& s : samples) {
    registry->GetCounter(s.name)->Set(s.value);
  }
  // Gauge, not counter: point-in-time, and kept out of the counter table
  // that frame-delta reconciliation sums over.
  registry->GetGauge("transport.peers")
      ->Set(static_cast<double>(peers_.size()));
}

}  // namespace bdisk::transport
