#ifndef BDISK_TRANSPORT_DATAGRAM_CLIENT_H_
#define BDISK_TRANSPORT_DATAGRAM_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fault/backoff.h"
#include "sim/rng.h"
#include "transport/wire.h"

namespace bdisk::transport {

using broadcast::PageId;

struct DatagramClientOptions {
  std::string server_path;  // The serve socket to talk to.
  std::string client_id;    // Wire identity (wire::ValidClientId).
  /// Directory for this client's own bound reply sockets. Each connection
  /// epoch binds a fresh `<dir>/<client_id>.<epoch>` path — a crashed
  /// epoch's socket is gone, so the server's sends to it fail fast
  /// (ECONNREFUSED → drop_dead_peer) instead of landing in a dead buffer.
  std::string socket_dir = ".";
  /// HELLO retry pacing (wall seconds). Bounded exponential backoff with
  /// deterministic jitter from `rng` — the PR-5 retry engine on real time.
  fault::BackoffPolicy backoff{/*base=*/0.05, /*multiplier=*/2.0,
                               /*cap=*/1.0, /*jitter=*/0.1};
  std::uint32_t max_connect_attempts = 10;
};

/// Client-side accounting mirrored against the server's STATS by
/// `bdisk_load --reconcile`.
struct ClientCounters {
  std::uint64_t hellos_sent = 0;
  std::uint64_t pulls_sent = 0;        // sendto accepted (cumulative).
  std::uint64_t pulls_send_failed = 0; // sendto refused (any cause).
  std::uint64_t pings_sent = 0;
  std::uint64_t slots_rx_epoch = 0;    // SLOTs since the last WELCOME.
  std::uint64_t slots_rx_total = 0;
  std::uint64_t welcomes_rx = 0;
  std::uint64_t stats_rx = 0;
  std::uint64_t fins_rx = 0;
  std::uint64_t malformed_rx = 0;
  std::uint64_t reconnects = 0;        // Connects beyond the first.
};

/// One client endpoint of the bdisk-wire-v1 protocol: a bound nonblocking
/// AF_UNIX datagram socket plus the HELLO/WELCOME handshake, with crash
/// and reconnect as first-class operations (Crash() drops the socket but
/// keeps the counters, exactly what a restarting process observes;
/// Connect() after it starts a new epoch on a fresh reply path).
///
/// Single-threaded, wall-clock driven; all waiting is bounded poll().
class DatagramClientChannel {
 public:
  DatagramClientChannel() = default;
  ~DatagramClientChannel();

  DatagramClientChannel(const DatagramClientChannel&) = delete;
  DatagramClientChannel& operator=(const DatagramClientChannel&) = delete;

  /// Binds a fresh epoch socket and runs the HELLO -> WELCOME handshake,
  /// retrying HELLO under the backoff policy until WELCOME arrives or
  /// attempts run out. `rng` paces the jitter (deterministic per seed).
  /// On success the WELCOME parameters are available via welcome().
  bool Connect(const DatagramClientOptions& options, sim::Rng* rng,
               std::string* error);

  /// True between a successful Connect and Crash/Close/FIN.
  bool Connected() const { return fd_ >= 0; }

  /// Simulates (or implements) process death: closes and unlinks the
  /// epoch socket without BYE. Counters survive — they belong to the
  /// measuring harness, not the dead connection.
  void Crash();

  /// Orderly goodbye: sends BYE, then waits up to `timeout_ms` for the
  /// server's STATS (into `*stats` when non-null). Closes the socket
  /// either way; returns true when STATS arrived.
  bool Goodbye(wire::PeerStats* stats, int timeout_ms);

  /// Sends one PULL for `page`. Returns false when the kernel refused it
  /// (counted in pulls_send_failed) — caller decides whether to retry.
  bool SendPull(PageId page);

  /// Sends one heartbeat PING (best-effort).
  void SendPing();

  /// Drains every datagram currently queued, waiting up to `timeout_ms`
  /// for the first. SLOT/WELCOME/STATS/FIN are tallied (and WELCOME
  /// resets the epoch slot count); every parsed message is appended to
  /// `out` when non-null. Returns the number of datagrams consumed. A
  /// FIN closes the channel.
  int PollMessages(int timeout_ms, std::vector<wire::Message>* out);

  const wire::Message& welcome() const { return welcome_; }
  const ClientCounters& counters() const { return counters_; }
  const std::string& epoch_path() const { return path_; }

 private:
  bool BindEpochSocket(std::string* error);
  void CloseSocket();

  int fd_ = -1;
  std::string path_;       // This epoch's bound reply path.
  DatagramClientOptions options_;
  std::uint64_t epoch_ = 0;  // Bumped per Connect for distinct bind paths.
  bool connected_once_ = false;
  wire::Message welcome_;
  ClientCounters counters_;
  std::string scratch_;
};

}  // namespace bdisk::transport

#endif  // BDISK_TRANSPORT_DATAGRAM_CLIENT_H_
