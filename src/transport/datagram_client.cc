#include "transport/datagram_client.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/frame_sink.h"

namespace bdisk::transport {

namespace {

constexpr std::size_t kMaxDatagram = 512;

bool FillAddr(const std::string& path, sockaddr_un* addr,
              std::string* error) {
  const std::string invalid = obs::ValidateUnixSocketPath(path);
  if (!invalid.empty()) {
    if (error != nullptr) *error = invalid;
    return false;
  }
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

DatagramClientChannel::~DatagramClientChannel() { CloseSocket(); }

bool DatagramClientChannel::BindEpochSocket(std::string* error) {
  const std::string path = options_.socket_dir + "/" + options_.client_id +
                           "." + std::to_string(epoch_);
  sockaddr_un self{};
  if (!FillAddr(path, &self, error)) return false;
  sockaddr_un server{};
  if (!FillAddr(options_.server_path, &server, error)) return false;

  const int fd = ::socket(AF_UNIX, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    if (error != nullptr) {
      *error = std::string("socket(AF_UNIX, SOCK_DGRAM): ") +
               std::strerror(errno);
    }
    return false;
  }
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&self), sizeof(self)) !=
      0) {
    if (error != nullptr) {
      *error = "cannot bind client socket '" + path +
               "': " + std::strerror(errno);
    }
    ::close(fd);
    return false;
  }
  // connect() fixes the peer so send() suffices and a vanished server
  // surfaces as ECONNREFUSED instead of silence.
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&server),
                sizeof(server)) != 0) {
    if (error != nullptr) {
      *error = "cannot reach serve socket '" + options_.server_path +
               "' (is bdisk_serve running?): " + std::strerror(errno);
    }
    ::close(fd);
    ::unlink(path.c_str());
    return false;
  }
  fd_ = fd;
  path_ = path;
  return true;
}

bool DatagramClientChannel::Connect(const DatagramClientOptions& options,
                                    sim::Rng* rng, std::string* error) {
  if (!wire::ValidClientId(options.client_id)) {
    if (error != nullptr) {
      *error = "invalid client id '" + options.client_id +
               "' (nonempty, <= 64 bytes, no whitespace)";
    }
    return false;
  }
  const std::string policy_error = options.backoff.Validate();
  if (!policy_error.empty()) {
    if (error != nullptr) *error = "backoff: " + policy_error;
    return false;
  }
  CloseSocket();
  options_ = options;
  ++epoch_;
  if (!BindEpochSocket(error)) return false;

  // HELLO under bounded exponential backoff: attempt k waits the policy's
  // jittered delay for WELCOME before resending. Deterministic per seed —
  // the same rng stream yields the same pacing trajectory.
  for (std::uint32_t attempt = 0; attempt < options_.max_connect_attempts;
       ++attempt) {
    wire::FormatHello(options_.client_id, &scratch_);
    if (::send(fd_, scratch_.data(), scratch_.size(),
               MSG_DONTWAIT | MSG_NOSIGNAL) ==
        static_cast<ssize_t>(scratch_.size())) {
      ++counters_.hellos_sent;
    }
    const double wait_s =
        fault::JitteredBackoffDelay(options_.backoff, attempt, rng);
    const int wait_ms = wait_s >= 0.001 ? static_cast<int>(wait_s * 1000.0)
                                        : 1;
    const std::uint64_t welcomes_before = counters_.welcomes_rx;
    PollMessages(wait_ms, nullptr);
    if (!Connected()) break;  // A FIN closed us mid-handshake.
    if (counters_.welcomes_rx > welcomes_before) {
      if (connected_once_) ++counters_.reconnects;
      connected_once_ = true;
      return true;
    }
  }
  CloseSocket();
  if (error != nullptr) {
    *error = "no WELCOME from '" + options_.server_path + "' after " +
             std::to_string(options_.max_connect_attempts) +
             " HELLO attempts";
  }
  return false;
}

void DatagramClientChannel::Crash() { CloseSocket(); }

bool DatagramClientChannel::Goodbye(wire::PeerStats* stats, int timeout_ms) {
  if (fd_ < 0) return false;
  wire::FormatBye(options_.client_id, &scratch_);
  (void)::send(fd_, scratch_.data(), scratch_.size(),
               MSG_DONTWAIT | MSG_NOSIGNAL);
  // Drain until STATS or the deadline: slots already in flight arrive
  // first (FIFO per pair), then the server's closing STATS.
  bool got_stats = false;
  int remaining = timeout_ms;
  std::vector<wire::Message> messages;
  while (remaining > 0 && Connected() && !got_stats) {
    messages.clear();
    const int step = remaining < 20 ? remaining : 20;
    if (PollMessages(step, &messages) == 0) remaining -= step;
    for (const wire::Message& msg : messages) {
      if (msg.type == wire::MsgType::kStats) {
        if (stats != nullptr) *stats = msg.stats;
        got_stats = true;
      }
    }
  }
  CloseSocket();
  return got_stats;
}

bool DatagramClientChannel::SendPull(PageId page) {
  if (fd_ < 0) return false;
  wire::FormatPull(options_.client_id, page, &scratch_);
  if (::send(fd_, scratch_.data(), scratch_.size(),
             MSG_DONTWAIT | MSG_NOSIGNAL) ==
      static_cast<ssize_t>(scratch_.size())) {
    ++counters_.pulls_sent;
    return true;
  }
  ++counters_.pulls_send_failed;
  return false;
}

void DatagramClientChannel::SendPing() {
  if (fd_ < 0) return;
  wire::FormatPing(options_.client_id, &scratch_);
  if (::send(fd_, scratch_.data(), scratch_.size(),
             MSG_DONTWAIT | MSG_NOSIGNAL) ==
      static_cast<ssize_t>(scratch_.size())) {
    ++counters_.pings_sent;
  }
}

int DatagramClientChannel::PollMessages(int timeout_ms,
                                        std::vector<wire::Message>* out) {
  if (fd_ < 0) return 0;
  if (timeout_ms > 0) {
    pollfd pfd{fd_, POLLIN, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) return 0;
  }
  char buf[kMaxDatagram];
  int consumed = 0;
  while (fd_ >= 0) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
    if (n < 0) break;
    ++consumed;
    wire::Message msg;
    if (!wire::ParseMessage(std::string_view(buf, static_cast<std::size_t>(n)),
                            &msg, nullptr)) {
      ++counters_.malformed_rx;
      continue;
    }
    switch (msg.type) {
      case wire::MsgType::kWelcome:
        ++counters_.welcomes_rx;
        // New epoch on the wire: restart the slot tally the server's
        // slots_tx_epoch reconciles against.
        counters_.slots_rx_epoch = 0;
        welcome_ = msg;
        break;
      case wire::MsgType::kSlot:
        ++counters_.slots_rx_epoch;
        ++counters_.slots_rx_total;
        break;
      case wire::MsgType::kStats:
        ++counters_.stats_rx;
        break;
      case wire::MsgType::kFin:
        ++counters_.fins_rx;
        CloseSocket();
        break;
      default:
        ++counters_.malformed_rx;  // Client-to-server verb echoed at us.
        break;
    }
    if (out != nullptr) out->push_back(msg);
  }
  return consumed;
}

void DatagramClientChannel::CloseSocket() {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
  if (!path_.empty()) {
    ::unlink(path_.c_str());
    path_.clear();
  }
}

}  // namespace bdisk::transport
