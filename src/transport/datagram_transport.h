#ifndef BDISK_TRANSPORT_DATAGRAM_TRANSPORT_H_
#define BDISK_TRANSPORT_DATAGRAM_TRANSPORT_H_

#include <sys/un.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "obs/telemetry_bus.h"
#include "server/broadcast_server.h"
#include "transport/transport.h"
#include "transport/wire.h"

namespace bdisk::transport {

/// First obs trace client id handed to a wire peer. Ids 0 and 1 belong to
/// the in-process measured/virtual clients (obs/trace_sink.h), so wire
/// peers start above them and stay distinguishable in traces.
inline constexpr std::uint32_t kFirstPeerTraceClient = 2;

struct DatagramServerOptions {
  std::string socket_path;

  /// Wall-clock seconds without hearing from a peer (any datagram counts)
  /// before EvictDeadPeers forgets it. <= 0 disables eviction.
  double heartbeat_deadline = 5.0;

  /// Hard cap on concurrently connected peers; HELLOs beyond it are
  /// refused with `FIN full`.
  std::uint32_t max_peers = 64;

  /// Advertised in WELCOME so clients can draw pages and pace themselves.
  std::uint32_t db_size = 0;
  std::uint32_t cycle_len = 0;
  std::uint32_t slot_us = 0;

  /// Transport-level fault injection (not owned; null disables). Seeded
  /// from its own kTransportSalt stream — the plan's slot_loss /
  /// request_loss act at the wire here (a lost slot reaches *no* peer, a
  /// lost PULL never enters the queue), so serve mode zeroes those rates
  /// from the server-side plan to avoid applying the same fault twice.
  fault::FaultInjector* injector = nullptr;
};

/// Aggregate wire accounting across all peers (per-peer splits live in
/// each peer's wire::PeerStats and come back to the client via STATS).
/// Every drop has exactly one cause counter, which is what lets
/// `bdisk_load --reconcile` check sends == receipts + drops with equality
/// rather than tolerance.
struct TransportCounters {
  std::uint64_t hellos = 0;          // HELLOs accepted (first + reconnects).
  std::uint64_t reconnects = 0;      // HELLOs beyond a peer's first.
  std::uint64_t peers_rejected = 0;  // HELLOs refused: at max_peers.
  std::uint64_t pulls_rx = 0;        // PULLs received (pre fault judge).
  std::uint64_t pulls_fault_dropped = 0;  // PULLs judged lost on the wire.
  std::uint64_t pulls_unknown_peer = 0;   // PULLs from unconnected peers.
  std::uint64_t pings_rx = 0;
  std::uint64_t byes_rx = 0;
  std::uint64_t malformed_rx = 0;    // Datagrams ParseMessage rejected.
  std::uint64_t slots_tx = 0;        // Slot datagrams the kernel accepted.
  std::uint64_t drop_backpressure = 0;  // Slot sends refused EAGAIN/ENOBUFS.
  std::uint64_t drop_dead_peer = 0;  // Slot sends refused: peer socket gone.
  std::uint64_t drop_fault = 0;      // Slot fan-outs withheld by injection
                                     // (counted per peer that missed it).
  std::uint64_t evictions = 0;       // Peers forgotten by heartbeat deadline.
};

/// The live backend: a nonblocking AF_UNIX SOCK_DGRAM serving socket.
///
/// Pull direction (Transport): PULL datagrams arrive on the socket, are
/// fault-judged, and enter the server's queue via SubmitRequest under the
/// peer's stable trace client id. Broadcast direction (BroadcastListener):
/// every delivered slot is relayed as one datagram per connected peer —
/// the wire realization of the paper's "all clients snoop the broadcast".
///
/// Single-threaded by design: the serve loop alternates Poll / slot ticks
/// / EvictDeadPeers, and every call takes the wall-clock explicitly so
/// tests drive deadlines without sleeping. Failure discipline is
/// drop-newest everywhere: a send the kernel refuses is dropped *and
/// counted by cause*, never retried and never blocking the slot cadence
/// (the one exception: STATS / FIN during an orderly goodbye get the same
/// bounded ~200ms retry as obs::DatagramFrameSink::WriteFinal, because
/// those are the reconciliation handshake).
///
/// Peer lifecycle: HELLO binds the peer id to the datagram's source
/// address and resets that peer's slot epoch (slots_tx_epoch = 0, matched
/// by the client zeroing its tally on WELCOME) — so after a crash and
/// reconnect both sides agree on the epoch even though the dead client's
/// last epoch count died with it. A send refused with ECONNREFUSED does
/// NOT evict: the peer keeps its identity (and cumulative counters) so a
/// quick restart reconciles; only the heartbeat deadline forgets a peer.
class DatagramServerTransport final : public Transport,
                                      public server::BroadcastListener {
 public:
  DatagramServerTransport() = default;
  ~DatagramServerTransport() override;

  DatagramServerTransport(const DatagramServerTransport&) = delete;
  DatagramServerTransport& operator=(const DatagramServerTransport&) = delete;

  /// Creates, binds (unlinking any stale socket file) and registers with
  /// `server` as a broadcast listener. `server` must outlive this object.
  /// Returns false and sets `error` on any socket failure or an oversized
  /// socket path.
  bool Bind(const DatagramServerOptions& options,
            server::BroadcastServer* server, std::string* error);

  /// Transport: in-process submissions ride the same queue path as wire
  /// PULLs (used by tests; bdisk_serve has no local client).
  server::SubmitResult SubmitPull(PageId page, std::uint32_t client) override;
  std::string Describe() const override;

  /// BroadcastListener: fan one delivered slot out to every peer.
  void OnBroadcast(PageId page, server::SlotKind kind,
                   sim::SimTime now) override;

  /// Drains every datagram currently queued on the socket, dispatching
  /// HELLO/PULL/PING/BYE. `wall_now` stamps heartbeat refreshes. Returns
  /// the number of datagrams consumed (including malformed ones).
  int Poll(double wall_now);

  /// Forgets peers not heard from within the heartbeat deadline (a
  /// best-effort `FIN evicted` is sent first). Returns evictions.
  int EvictDeadPeers(double wall_now);

  /// Orderly drain: sends `FIN <reason>` to every peer (bounded retry),
  /// forgets them all, closes and unlinks the socket. Idempotent.
  void Shutdown(const std::string& reason);

  /// Blocks until the socket is readable or `timeout_ms` passes. Returns
  /// true when readable — the serve loop's idle wait between slot ticks.
  bool WaitReadable(int timeout_ms) const;

  std::size_t PeerCount() const { return peers_.size(); }
  const TransportCounters& counters() const { return counters_; }
  std::uint64_t SlotSeq() const { return slot_seq_; }

  /// The server's view of one peer (null when unknown) — what STATS sends.
  const wire::PeerStats* FindPeerStats(const std::string& client_id) const;

  /// Appends the `transport.*` lifetime counters as telemetry probe
  /// samples. Names match SnapshotMetrics keys exactly, so bdisk_top
  /// --check --snapshot reconciles serve-mode frame streams for free.
  void AppendCounterSamples(std::vector<obs::CounterSample>* out) const;

  /// Writes the same counters (plus a transport.peers gauge) into
  /// `registry` under `transport.*` for the serve tool's metrics
  /// snapshot. These keys exist only in serve mode: simulation snapshots
  /// never carry them, so bdisk_compare's key-symmetry rule keeps holding
  /// for sim baselines.
  void SnapshotMetrics(obs::MetricsRegistry* registry) const;

 private:
  struct Peer {
    sockaddr_un addr{};
    socklen_t addr_len = 0;
    double last_heard = 0.0;
    std::uint32_t trace_client = 0;
    wire::PeerStats stats;
  };

  enum class SendOutcome { kOk, kBackpressure, kDeadPeer };

  void OnHello(const std::string& client_id, const sockaddr_un& from,
               socklen_t from_len, double wall_now);
  void OnPull(const wire::Message& msg, double wall_now);
  void OnBye(const std::string& client_id);

  SendOutcome SendTo(const Peer& peer, const std::string& payload) const;
  /// Bounded-retry send for the goodbye handshake (STATS / FIN).
  bool SendFinal(const Peer& peer, const std::string& payload) const;

  int fd_ = -1;
  std::string path_;
  DatagramServerOptions options_;
  server::BroadcastServer* server_ = nullptr;  // Not owned.
  // Keyed by client id; std::map for deterministic fan-out order.
  std::map<std::string, Peer> peers_;
  std::uint32_t next_trace_client_ = kFirstPeerTraceClient;
  std::uint64_t slot_seq_ = 0;
  TransportCounters counters_;
  std::string scratch_;  // Reused datagram format buffer.
};

}  // namespace bdisk::transport

#endif  // BDISK_TRANSPORT_DATAGRAM_TRANSPORT_H_
