#include "transport/wire.h"

#include <cctype>
#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bdisk::transport::wire {

namespace {

char SlotKindChar(server::SlotKind kind) {
  switch (kind) {
    case server::SlotKind::kPush:
      return 'P';
    case server::SlotKind::kPull:
      return 'Q';
    case server::SlotKind::kIdle:
      return 'I';
  }
  return 'I';
}

void AppendU64(std::uint64_t v, std::string* out) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf, static_cast<std::size_t>(n));
}

void AppendDouble(double v, std::string* out) {
  // %.17g round-trips; slot times are integers in practice so this stays
  // short on the wire.
  char buf[32];
  const int n = std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf, static_cast<std::size_t>(n));
}

/// Splits on single spaces into at most `max_fields` views. Returns the
/// field count, or -1 when the input has empty fields (double spaces,
/// leading/trailing space) or too many fields.
int SplitFields(std::string_view text, std::string_view* fields,
                int max_fields) {
  int count = 0;
  while (!text.empty()) {
    if (count == max_fields) return -1;
    const std::size_t space = text.find(' ');
    const std::string_view field =
        space == std::string_view::npos ? text : text.substr(0, space);
    if (field.empty()) return -1;
    fields[count++] = field;
    if (space == std::string_view::npos) break;
    text.remove_prefix(space + 1);
    if (text.empty()) return -1;  // Trailing space.
  }
  return count;
}

bool ParseU64(std::string_view field, std::uint64_t* out) {
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), *out);
  return ec == std::errc() && ptr == field.data() + field.size();
}

bool ParseU32(std::string_view field, std::uint32_t* out) {
  std::uint64_t wide = 0;
  if (!ParseU64(field, &wide) || wide > 0xFFFFFFFFull) return false;
  *out = static_cast<std::uint32_t>(wide);
  return true;
}

bool ParseDouble(std::string_view field, double* out) {
  // std::from_chars<double> is missing on some libstdc++ versions the CI
  // matrix still builds with; strtod on a bounded copy is fine here.
  char buf[64];
  if (field.size() >= sizeof(buf)) return false;
  std::memcpy(buf, field.data(), field.size());
  buf[field.size()] = '\0';
  char* end = nullptr;
  *out = std::strtod(buf, &end);
  return end == buf + field.size();
}

bool ParsePage(std::string_view field, PageId* out) {
  if (field == "-") {
    *out = broadcast::kNoPage;
    return true;
  }
  return ParseU32(field, out);
}

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

bool ValidClientId(std::string_view id) {
  if (id.empty() || id.size() > 64) return false;
  for (const char c : id) {
    if (std::isspace(static_cast<unsigned char>(c)) ||
        std::iscntrl(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  return true;
}

void FormatHello(const std::string& client_id, std::string* out) {
  out->assign(kMagic);
  out->append(" HELLO ");
  out->append(client_id);
}

void FormatWelcome(std::uint32_t db_size, std::uint32_t cycle_len,
                   std::uint32_t slot_us, std::string* out) {
  out->assign(kMagic);
  out->append(" WELCOME ");
  AppendU64(db_size, out);
  out->push_back(' ');
  AppendU64(cycle_len, out);
  out->push_back(' ');
  AppendU64(slot_us, out);
}

void FormatPull(const std::string& client_id, PageId page, std::string* out) {
  out->assign(kMagic);
  out->append(" PULL ");
  out->append(client_id);
  out->push_back(' ');
  AppendU64(page, out);
}

void FormatPing(const std::string& client_id, std::string* out) {
  out->assign(kMagic);
  out->append(" PING ");
  out->append(client_id);
}

void FormatBye(const std::string& client_id, std::string* out) {
  out->assign(kMagic);
  out->append(" BYE ");
  out->append(client_id);
}

void FormatSlot(std::uint64_t seq, PageId page, server::SlotKind kind,
                double sim_time, std::string* out) {
  out->assign(kMagic);
  out->append(" SLOT ");
  AppendU64(seq, out);
  out->push_back(' ');
  if (page == broadcast::kNoPage) {
    out->push_back('-');
  } else {
    AppendU64(page, out);
  }
  out->push_back(' ');
  out->push_back(SlotKindChar(kind));
  out->push_back(' ');
  AppendDouble(sim_time, out);
}

void FormatStats(const PeerStats& stats, std::string* out) {
  out->assign(kMagic);
  out->append(" STATS ");
  AppendU64(stats.pulls_rx, out);
  out->push_back(' ');
  AppendU64(stats.slots_tx_epoch, out);
  out->push_back(' ');
  AppendU64(stats.drop_backpressure, out);
  out->push_back(' ');
  AppendU64(stats.drop_dead_peer, out);
  out->push_back(' ');
  AppendU64(stats.drop_fault, out);
  out->push_back(' ');
  AppendU64(stats.pulls_fault_dropped, out);
  out->push_back(' ');
  AppendU64(stats.reconnects, out);
}

void FormatFin(const std::string& reason, std::string* out) {
  out->assign(kMagic);
  out->append(" FIN ");
  out->append(reason.empty() ? "shutdown" : reason);
}

bool ParseMessage(std::string_view datagram, Message* out,
                  std::string* error) {
  std::string_view fields[10];
  const int count = SplitFields(datagram, fields, 10);
  if (count < 2) return Fail(error, "short or ill-delimited datagram");
  if (fields[0] != kMagic) return Fail(error, "bad magic (want bdw1)");
  const std::string_view verb = fields[1];

  const auto want = [&](int n) { return count == n; };
  if (verb == "HELLO" || verb == "PING" || verb == "BYE") {
    if (!want(3)) return Fail(error, "HELLO/PING/BYE want one field");
    if (!ValidClientId(fields[2])) return Fail(error, "bad client id");
    out->type = verb == "HELLO" ? MsgType::kHello
                : verb == "PING" ? MsgType::kPing
                                 : MsgType::kBye;
    out->client_id.assign(fields[2]);
    return true;
  }
  if (verb == "PULL") {
    if (!want(4)) return Fail(error, "PULL wants id and page");
    if (!ValidClientId(fields[2])) return Fail(error, "bad client id");
    if (!ParseU32(fields[3], &out->page)) return Fail(error, "bad page");
    out->type = MsgType::kPull;
    out->client_id.assign(fields[2]);
    return true;
  }
  if (verb == "WELCOME") {
    if (!want(5)) return Fail(error, "WELCOME wants three fields");
    if (!ParseU32(fields[2], &out->db_size) ||
        !ParseU32(fields[3], &out->cycle_len) ||
        !ParseU32(fields[4], &out->slot_us)) {
      return Fail(error, "bad WELCOME fields");
    }
    out->type = MsgType::kWelcome;
    return true;
  }
  if (verb == "SLOT") {
    if (!want(6)) return Fail(error, "SLOT wants four fields");
    if (!ParseU64(fields[2], &out->seq)) return Fail(error, "bad slot seq");
    if (!ParsePage(fields[3], &out->page)) return Fail(error, "bad page");
    if (fields[4].size() != 1) return Fail(error, "bad slot kind");
    switch (fields[4][0]) {
      case 'P':
        out->kind = server::SlotKind::kPush;
        break;
      case 'Q':
        out->kind = server::SlotKind::kPull;
        break;
      case 'I':
        out->kind = server::SlotKind::kIdle;
        break;
      default:
        return Fail(error, "bad slot kind");
    }
    if (!ParseDouble(fields[5], &out->sim_time)) {
      return Fail(error, "bad slot time");
    }
    out->type = MsgType::kSlot;
    return true;
  }
  if (verb == "STATS") {
    if (!want(9)) return Fail(error, "STATS wants seven fields");
    PeerStats s;
    if (!ParseU64(fields[2], &s.pulls_rx) ||
        !ParseU64(fields[3], &s.slots_tx_epoch) ||
        !ParseU64(fields[4], &s.drop_backpressure) ||
        !ParseU64(fields[5], &s.drop_dead_peer) ||
        !ParseU64(fields[6], &s.drop_fault) ||
        !ParseU64(fields[7], &s.pulls_fault_dropped) ||
        !ParseU64(fields[8], &s.reconnects)) {
      return Fail(error, "bad STATS fields");
    }
    out->type = MsgType::kStats;
    out->stats = s;
    return true;
  }
  if (verb == "FIN") {
    if (!want(3)) return Fail(error, "FIN wants a reason");
    out->type = MsgType::kFin;
    out->reason.assign(fields[2]);
    return true;
  }
  return Fail(error, "unknown verb");
}

}  // namespace bdisk::transport::wire
