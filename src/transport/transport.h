#ifndef BDISK_TRANSPORT_TRANSPORT_H_
#define BDISK_TRANSPORT_TRANSPORT_H_

#include <cstdint>
#include <string>

#include "broadcast/page.h"
#include "server/broadcast_server.h"
#include "server/pull_queue.h"

namespace bdisk::transport {

using broadcast::PageId;

/// The transport seam between pull-submitting clients and the broadcast
/// server's event kernel.
///
/// Backchannel direction: a client hands its pull request to the
/// transport, which carries it to the server's pull queue. Frontchannel
/// direction: the server's `BroadcastListener` fan-out *is* the broadcast
/// medium — an in-process listener hears slots directly (the sim backend),
/// while the datagram backend registers itself as a listener and relays
/// each slot onto the wire as one datagram per connected peer
/// (datagram_transport.h).
///
/// Two backends exist:
///   - SimTransport (below): in-process forwarding, bit-identical to the
///     pre-seam call chain — the simulation default.
///   - DatagramServerTransport / DatagramClientChannel: real nonblocking
///     UNIX-datagram sockets with heartbeat deadlines, dead-peer eviction,
///     and reconnect (the `bdisk_serve` / `bdisk_load` pair).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Carries one pull request from `client` (an obs trace client id) to
  /// the server, arriving now. Returns the pull queue's verdict.
  virtual server::SubmitResult SubmitPull(PageId page,
                                          std::uint32_t client) = 0;

  /// Human-readable backend name for banners and provenance.
  virtual std::string Describe() const = 0;
};

/// The in-process simulation backend: SubmitPull forwards straight to
/// BroadcastServer::SubmitRequest — the exact call clients made before the
/// seam existed (same barrier, same fault judgement, same trace records),
/// so simulated trajectories are bit-identical by construction. No state,
/// no randomness, no events.
class SimTransport final : public Transport {
 public:
  explicit SimTransport(server::BroadcastServer* server);

  server::SubmitResult SubmitPull(PageId page, std::uint32_t client) override;
  std::string Describe() const override { return "sim"; }

 private:
  server::BroadcastServer* server_;  // Not owned.
};

}  // namespace bdisk::transport

#endif  // BDISK_TRANSPORT_TRANSPORT_H_
