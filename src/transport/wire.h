#ifndef BDISK_TRANSPORT_WIRE_H_
#define BDISK_TRANSPORT_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "broadcast/page.h"
#include "server/broadcast_server.h"

namespace bdisk::transport::wire {

using broadcast::PageId;

/// `bdisk-wire-v1`: one text line per datagram, space-separated fields,
/// "bdw1" magic first. Human-readable on purpose (socat / od debugging of
/// a live socket beats a binary dump), and comfortably inside one datagram
/// at every size we send.
///
///   client -> server:
///     bdw1 HELLO <client_id>            join / reconnect (source addr is
///                                       the client's bound reply path)
///     bdw1 PULL <client_id> <page>      one pull request
///     bdw1 PING <client_id>             heartbeat (any rx refreshes it)
///     bdw1 BYE <client_id>              orderly departure; server replies
///                                       STATS then forgets the peer
///   server -> client:
///     bdw1 WELCOME <db_size> <cycle_len> <slot_us>
///     bdw1 SLOT <seq> <page|-> <P|Q|I> <sim_time>
///     bdw1 STATS <pulls_rx> <slots_tx_epoch> <drop_backpressure>
///          <drop_dead_peer> <drop_fault> <pulls_fault_dropped> <reconnects>
///     bdw1 FIN <reason>                 graceful server drain
///
/// Reconciliation leans on AF_UNIX SOCK_DGRAM FIFO ordering per
/// sender-socket/receiver pair: STATS is sent after every prior slot
/// datagram to that peer, and BYE arrives after every prior PULL, so the
/// counter handshake is exact, not approximate (see DatagramServerTransport
/// for the epoch accounting across client crashes).
inline constexpr char kMagic[] = "bdw1";

enum class MsgType : std::uint8_t {
  kHello,
  kWelcome,
  kPull,
  kPing,
  kBye,
  kSlot,
  kStats,
  kFin,
};

/// Per-peer counters carried by STATS (the server's view of one client,
/// used by `bdisk_load --reconcile` for the exact drop-accounting check).
struct PeerStats {
  std::uint64_t pulls_rx = 0;           // PULLs received (pre fault judge).
  std::uint64_t slots_tx_epoch = 0;     // Slot datagrams delivered to the
                                        // kernel since the last HELLO.
  std::uint64_t drop_backpressure = 0;  // Slot sends refused EAGAIN/ENOBUFS.
  std::uint64_t drop_dead_peer = 0;     // Slot sends refused: peer gone.
  std::uint64_t drop_fault = 0;         // Slots withheld by fault injection.
  std::uint64_t pulls_fault_dropped = 0;  // PULLs judged lost on the wire.
  std::uint64_t reconnects = 0;         // HELLOs beyond the first.
};

/// One parsed datagram. Only the fields of the parsed type are meaningful.
struct Message {
  MsgType type = MsgType::kPing;
  std::string client_id;            // HELLO / PULL / PING / BYE.
  PageId page = broadcast::kNoPage; // PULL / SLOT ("-" encodes kNoPage).
  std::uint64_t seq = 0;            // SLOT.
  server::SlotKind kind = server::SlotKind::kIdle;  // SLOT.
  double sim_time = 0.0;            // SLOT.
  std::uint32_t db_size = 0;        // WELCOME.
  std::uint32_t cycle_len = 0;      // WELCOME.
  std::uint32_t slot_us = 0;        // WELCOME.
  PeerStats stats;                  // STATS.
  std::string reason;               // FIN.
};

/// True when `id` is usable on the wire: nonempty, at most 64 bytes, and
/// free of whitespace/control characters (fields are space-delimited).
bool ValidClientId(std::string_view id);

/// Formatters overwrite `*out` with one complete datagram payload (no
/// trailing newline). The scratch-string style keeps the per-slot fan-out
/// path allocation-free in steady state.
void FormatHello(const std::string& client_id, std::string* out);
void FormatWelcome(std::uint32_t db_size, std::uint32_t cycle_len,
                   std::uint32_t slot_us, std::string* out);
void FormatPull(const std::string& client_id, PageId page, std::string* out);
void FormatPing(const std::string& client_id, std::string* out);
void FormatBye(const std::string& client_id, std::string* out);
void FormatSlot(std::uint64_t seq, PageId page, server::SlotKind kind,
                double sim_time, std::string* out);
void FormatStats(const PeerStats& stats, std::string* out);
void FormatFin(const std::string& reason, std::string* out);

/// Parses one datagram payload. Returns false (and sets `error`) on
/// malformed input: wrong magic, unknown verb, bad field count, or
/// unparsable numbers. A false return leaves `*out` unspecified.
bool ParseMessage(std::string_view datagram, Message* out, std::string* error);

}  // namespace bdisk::transport::wire

#endif  // BDISK_TRANSPORT_WIRE_H_
