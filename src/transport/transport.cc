#include "transport/transport.h"

#include "sim/check.h"

namespace bdisk::transport {

SimTransport::SimTransport(server::BroadcastServer* server)
    : server_(server) {
  BDISK_CHECK_MSG(server != nullptr, "SimTransport needs a server");
}

server::SubmitResult SimTransport::SubmitPull(PageId page,
                                              std::uint32_t client) {
  return server_->SubmitRequest(page, client);
}

}  // namespace bdisk::transport
