#ifndef BDISK_FAULT_FAULT_INJECTOR_H_
#define BDISK_FAULT_FAULT_INJECTOR_H_

#include <cstdint>

#include "fault/fault_plan.h"
#include "sim/rng.h"
#include "sim/types.h"

namespace bdisk::fault {

/// What happened to one broadcast slot on the (faulty) frontchannel.
enum class SlotFate : std::uint8_t {
  kDelivered = 0,  // Arrived intact at every client.
  kLost,           // Vanished in transit; the slot is spent, nobody hears it.
  kCorrupted,      // Arrived damaged; clients checksum and discard it.
};

/// Makes the FaultPlan's random decisions from a dedicated RNG stream and
/// keeps the injection tally.
///
/// The stream discipline is the whole point: the injector is seeded from a
/// salted copy of the system seed (never via an extra Split() on the shared
/// root), and every decision method short-circuits before drawing when its
/// rate is zero. Together these guarantee that a disabled plan perturbs
/// nothing — the server/client streams see exactly the draws they saw
/// before the fault layer existed — while an enabled plan is still fully
/// deterministic per seed.
///
/// Outage windows are a pure function of time (no randomness), so repeated
/// queries are free and cannot skew any stream.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, sim::Rng rng)
      : plan_(plan), rng_(rng) {}

  const FaultPlan& plan() const { return plan_; }

  /// Decides one slot's fate. Draws at most once, and only when loss or
  /// corruption is configured.
  SlotFate JudgeSlot() {
    const double loss = plan_.slot_loss;
    const double corrupt = plan_.slot_corruption;
    if (loss <= 0.0 && corrupt <= 0.0) return SlotFate::kDelivered;
    const double u = rng_.NextDouble();
    if (u < loss) {
      ++slots_lost_;
      return SlotFate::kLost;
    }
    if (u < loss + corrupt) {
      ++slots_corrupted_;
      return SlotFate::kCorrupted;
    }
    return SlotFate::kDelivered;
  }

  /// True when this backchannel request is lost in transit (draws only when
  /// request loss is configured).
  bool JudgeRequestLost() {
    if (plan_.request_loss <= 0.0) return false;
    if (!rng_.NextBernoulli(plan_.request_loss)) return false;
    ++requests_lost_;
    return true;
  }

  /// Extra backchannel latency for this request, exponentially distributed
  /// with the configured mean; 0 (and no draw) when delay is disabled.
  double JudgeRequestDelay() {
    if (plan_.request_delay <= 0.0) return 0.0;
    ++requests_delayed_;
    return rng_.NextExponential(plan_.request_delay);
  }

  /// True when `now` falls inside an outage window. Pure time arithmetic —
  /// no randomness, no state.
  bool InOutage(sim::SimTime now) const {
    if (plan_.outage_duration <= 0.0 || now < plan_.outage_start) {
      return false;
    }
    if (plan_.outage_period <= 0.0) {
      return now < plan_.outage_start + plan_.outage_duration;
    }
    const double phase = now - plan_.outage_start;
    const double in_cycle =
        phase - plan_.outage_period *
                    static_cast<double>(static_cast<std::uint64_t>(
                        phase / plan_.outage_period));
    return in_cycle < plan_.outage_duration;
  }

  /// Injection tallies (for fault.* metrics and accounting checks).
  std::uint64_t SlotsLost() const { return slots_lost_; }
  std::uint64_t SlotsCorrupted() const { return slots_corrupted_; }
  std::uint64_t RequestsLost() const { return requests_lost_; }
  std::uint64_t RequestsDelayed() const { return requests_delayed_; }

 private:
  FaultPlan plan_;
  sim::Rng rng_;
  std::uint64_t slots_lost_ = 0;
  std::uint64_t slots_corrupted_ = 0;
  std::uint64_t requests_lost_ = 0;
  std::uint64_t requests_delayed_ = 0;
};

}  // namespace bdisk::fault

#endif  // BDISK_FAULT_FAULT_INJECTOR_H_
