#ifndef BDISK_FAULT_BACKOFF_H_
#define BDISK_FAULT_BACKOFF_H_

#include <cstdint>
#include <string>

#include "sim/rng.h"

namespace bdisk::fault {

/// One bounded-exponential-backoff schedule: base delay, per-attempt
/// multiplier, an absolute pre-jitter cap, and a deterministic jitter
/// fraction. This is the retry arithmetic the measured client's robust
/// pull engine has used since the fault tier landed, extracted so every
/// retry loop in the system (MC pull retries, transport reconnects)
/// backs off the same way.
///
/// Delay units are whatever the caller's clock uses — broadcast units for
/// the measured client, wall-clock seconds for the datagram transport.
struct BackoffPolicy {
  /// Delay before the first retry (attempt 0). Must be > 0.
  double base = 0.0;
  /// Multiplier applied per subsequent attempt. Must be >= 1.
  double multiplier = 2.0;
  /// Absolute cap on the backed-off delay, applied before jitter.
  /// Must be >= base.
  double cap = 0.0;
  /// Each delay is stretched by a uniform draw in [0, jitter * delay).
  /// Must be in [0,1]; 0 disables jitter (and consumes no randomness).
  double jitter = 0.1;

  /// Returns an error description, or empty when self-consistent.
  std::string Validate() const;
};

/// The raw (pre-jitter) delay for `attempt` (0-based): base scaled by
/// multiplier^attempt, clamped to cap. Pure arithmetic, no RNG.
double RawBackoffDelay(const BackoffPolicy& policy, std::uint32_t attempt);

/// The jittered delay for `attempt`. Draws from `rng` exactly once when
/// policy.jitter > 0 and never otherwise — the zero-jitter short-circuit
/// is part of the determinism contract (a jitter-free policy perturbs no
/// stream, so trajectories match a build without jitter entirely).
///
/// The arithmetic order (scale, clamp, then stretch) is pinned: the
/// measured client's golden trajectories depend on these exact operations
/// in this exact sequence.
double JitteredBackoffDelay(const BackoffPolicy& policy, std::uint32_t attempt,
                            sim::Rng* rng);

}  // namespace bdisk::fault

#endif  // BDISK_FAULT_BACKOFF_H_
