#include "fault/fault_plan.h"

#include <sstream>

namespace bdisk::fault {

namespace {

std::string ProbabilityError(const char* key, double value) {
  std::ostringstream out;
  out << key << " must be a probability in [0, 1], got " << value;
  return out.str();
}

std::string NonNegativeError(const char* key, double value) {
  std::ostringstream out;
  out << key << " must be >= 0, got " << value;
  return out.str();
}

}  // namespace

std::string FaultPlan::Validate() const {
  if (slot_loss < 0.0 || slot_loss > 1.0) {
    return ProbabilityError("fault.slot_loss", slot_loss);
  }
  if (slot_corruption < 0.0 || slot_corruption > 1.0) {
    return ProbabilityError("fault.slot_corruption", slot_corruption);
  }
  if (slot_loss + slot_corruption > 1.0) {
    std::ostringstream out;
    out << "fault.slot_loss + fault.slot_corruption must not exceed 1, got "
        << slot_loss + slot_corruption;
    return out.str();
  }
  if (request_loss < 0.0 || request_loss > 1.0) {
    return ProbabilityError("fault.request_loss", request_loss);
  }
  if (request_delay < 0.0) {
    return NonNegativeError("fault.request_delay", request_delay);
  }
  if (outage_start < 0.0) {
    return NonNegativeError("fault.outage_start", outage_start);
  }
  if (outage_duration < 0.0) {
    return NonNegativeError("fault.outage_duration", outage_duration);
  }
  if (outage_period < 0.0) {
    return NonNegativeError("fault.outage_period", outage_period);
  }
  if (outage_duration > 0.0 && outage_period > 0.0 &&
      outage_period <= outage_duration) {
    std::ostringstream out;
    out << "fault.outage_period (" << outage_period
        << ") must exceed fault.outage_duration (" << outage_duration
        << ") or be 0 for a one-shot window";
    return out.str();
  }
  if (mc_timeout < 0.0) {
    return NonNegativeError("fault.mc_timeout", mc_timeout);
  }
  if (mc_backoff < 1.0) {
    std::ostringstream out;
    out << "fault.mc_backoff must be >= 1, got " << mc_backoff;
    return out.str();
  }
  if (mc_backoff_cap < 0.0) {
    return NonNegativeError("fault.mc_backoff_cap", mc_backoff_cap);
  }
  if (mc_backoff_cap > 0.0 && mc_timeout > 0.0 &&
      mc_backoff_cap < mc_timeout) {
    std::ostringstream out;
    out << "fault.mc_backoff_cap (" << mc_backoff_cap
        << ") must be >= fault.mc_timeout (" << mc_timeout << ")";
    return out.str();
  }
  if (mc_jitter < 0.0 || mc_jitter > 1.0) {
    return ProbabilityError("fault.mc_jitter", mc_jitter);
  }
  if (mc_probe_interval < 0.0) {
    return NonNegativeError("fault.mc_probe_interval", mc_probe_interval);
  }
  if (shed_hi < 0.0 || shed_hi > 1.0) {
    return ProbabilityError("fault.shed_hi", shed_hi);
  }
  if (shed_lo < 0.0 || shed_lo > 1.0) {
    return ProbabilityError("fault.shed_lo", shed_lo);
  }
  if (shed_hi > 0.0 && shed_lo > 0.0 && shed_lo >= shed_hi) {
    std::ostringstream out;
    out << "fault.shed_lo (" << shed_lo << ") must be < fault.shed_hi ("
        << shed_hi << ") for hysteresis";
    return out.str();
  }
  if (degraded_pull_bw < 0.0 || degraded_pull_bw > 1.0) {
    return ProbabilityError("fault.degraded_pull_bw", degraded_pull_bw);
  }
  return {};
}

}  // namespace bdisk::fault
