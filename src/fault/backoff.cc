#include "fault/backoff.h"

#include <algorithm>

namespace bdisk::fault {

std::string BackoffPolicy::Validate() const {
  if (base <= 0.0) return "backoff base delay must be positive";
  if (multiplier < 1.0) return "backoff multiplier must be >= 1";
  if (cap < base) return "backoff cap below the base delay";
  if (jitter < 0.0 || jitter > 1.0) {
    return "backoff jitter must be a fraction in [0,1]";
  }
  return "";
}

double RawBackoffDelay(const BackoffPolicy& policy, std::uint32_t attempt) {
  // Repeated multiplication, not pow(): this is bit-for-bit the loop the
  // measured client has always run, and golden pins hold it in place.
  double t = policy.base;
  for (std::uint32_t i = 0; i < attempt; ++i) t *= policy.multiplier;
  return std::min(t, policy.cap);
}

double JitteredBackoffDelay(const BackoffPolicy& policy, std::uint32_t attempt,
                            sim::Rng* rng) {
  double t = RawBackoffDelay(policy, attempt);
  if (policy.jitter > 0.0) {
    // Deterministic jitter from the caller's dedicated stream: decorrelates
    // retry storms across clients/requests without perturbing model streams.
    t += t * policy.jitter * rng->NextDouble();
  }
  return t;
}

}  // namespace bdisk::fault
