#ifndef BDISK_FAULT_FAULT_PLAN_H_
#define BDISK_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>

namespace bdisk::fault {

/// Deterministic fault-injection and robustness plan.
///
/// The paper's model (and the seed reproduction) assumes a perfectly
/// reliable broadcast channel and backchannel; the only failure it studies
/// is pull-queue overflow. A FaultPlan lifts that assumption: it describes
/// which faults to inject (channel loss/corruption, backchannel loss and
/// delay, timed server outages) and which robustness mechanisms to engage
/// against them (client retry/timeout/backoff, server degraded-mode load
/// shedding).
///
/// Everything here is plain configuration: the plan is inert data, the
/// decisions are made by a FaultInjector (its own RNG stream) and by the
/// server/client robustness code. The all-zero default plan is the
/// contract that keeps baselines honest: with every knob at its default,
/// no fault code consumes randomness, schedules events, or records trace
/// records, so the simulated trajectory is bit-identical to a build that
/// predates the fault layer (golden pins and the committed observability
/// baseline both hold).
struct FaultPlan {
  // --- Channel faults (decided by the injector's own RNG stream) ---
  /// Probability that a broadcast slot's page is lost in transit: the slot
  /// is spent but no client receives the page. In [0,1].
  double slot_loss = 0.0;
  /// Probability that a slot's page arrives corrupted; clients detect the
  /// damage (checksum) and discard it, so the effect matches loss but is
  /// accounted separately. In [0,1].
  double slot_corruption = 0.0;
  /// Probability that a backchannel pull request is lost before reaching
  /// the server (applies to every submitting client). In [0,1].
  double request_loss = 0.0;
  /// Mean extra backchannel latency in broadcast units, exponentially
  /// distributed per request; 0 disables delay. Delayed requests reach the
  /// pull queue at submit time + delay. Incompatible with vc_fusion (the
  /// fused arrival batching cannot reorder submissions by effective
  /// arrival time), so enabling it forces the unfused event path.
  double request_delay = 0.0;

  // --- Timed server outage / brownout windows (no randomness) ---
  /// Simulation time at which the first outage window opens.
  double outage_start = 0.0;
  /// Width of each outage window in broadcast units; 0 disables outages.
  double outage_duration = 0.0;
  /// Distance between successive outage starts; 0 means a single one-shot
  /// window. Must exceed outage_duration when repeating.
  double outage_period = 0.0;
  /// Brownout instead of blackout: during a window the server keeps
  /// pushing the schedule but suspends pull service and sheds arriving
  /// requests. A blackout (false) idles every slot and drops every
  /// arriving request.
  bool brownout = false;

  // --- Client robustness (measured client) ---
  /// Per-request timeout in broadcast units before the first retry; 0
  /// picks an automatic default (one major cycle, or ServerDBSize slots
  /// for Pure-Pull). Engaged for every pull the measured client sends
  /// whenever the plan is Enabled().
  double mc_timeout = 0.0;
  /// Bounded retries per request after the initial pull.
  std::uint32_t mc_max_retries = 3;
  /// Exponential backoff multiplier applied to the timeout per retry.
  double mc_backoff = 2.0;
  /// Upper bound on the backed-off timeout; 0 picks 8x the base timeout.
  double mc_backoff_cap = 0.0;
  /// Deterministic jitter: each armed timeout is stretched by a uniform
  /// draw in [0, mc_jitter * timeout) from the client's dedicated fault
  /// RNG stream. In [0,1].
  double mc_jitter = 0.1;
  /// Consecutive fully-failed requests (every retry timed out) after which
  /// the client declares the backchannel dead and falls back to waiting on
  /// the broadcast; 0 never declares it dead.
  std::uint32_t mc_dead_threshold = 5;
  /// While the backchannel is declared dead, at most one probe pull per
  /// this many broadcast units is sent for scheduled pages; 0 picks one
  /// major cycle. Unscheduled pages always probe (pull is their only
  /// path). Snooping any pull-slot delivery also revives the backchannel.
  double mc_probe_interval = 0.0;

  // --- Server degraded mode (admission control + push fallback) ---
  /// Enter degraded mode when the pull-queue depth reaches this fraction
  /// of capacity; 0 disables degraded mode entirely.
  double shed_hi = 0.0;
  /// Leave degraded mode when the depth falls back to this fraction of
  /// capacity; 0 picks shed_hi / 2. Must be < shed_hi (hysteresis).
  double shed_lo = 0.0;
  /// While degraded, shed arriving requests whose page is scheduled within
  /// this many push slots (they have a near safety net; unscheduled pages
  /// are never shed). 0 picks the whole major cycle — every scheduled
  /// page sheds, only unscheduled requests are admitted.
  std::uint32_t shed_distance = 0;
  /// While degraded, the PullBW fraction is multiplied by this factor —
  /// the paper's §6 fallback of leaning on push as contention grows.
  /// In [0,1]; 1 leaves the MUX untouched.
  double degraded_pull_bw = 1.0;

  /// Any channel fault configured (loss, corruption, request loss/delay).
  bool ChannelFaultsEnabled() const {
    return slot_loss > 0.0 || slot_corruption > 0.0 || request_loss > 0.0 ||
           request_delay > 0.0;
  }

  /// Outage windows configured.
  bool OutagesEnabled() const { return outage_duration > 0.0; }

  /// Degraded-mode admission control configured.
  bool DegradedModeEnabled() const { return shed_hi > 0.0; }

  /// Anything at all configured. When false the plan is inert: no fault
  /// code runs, no RNG draws happen, and the trajectory is bit-identical
  /// to a fault-free build.
  bool Enabled() const {
    return ChannelFaultsEnabled() || OutagesEnabled() ||
           DegradedModeEnabled();
  }

  /// Returns an error description, or empty when self-consistent.
  std::string Validate() const;
};

}  // namespace bdisk::fault

#endif  // BDISK_FAULT_FAULT_PLAN_H_
