#ifndef BDISK_WORKLOAD_ACCESS_GENERATOR_H_
#define BDISK_WORKLOAD_ACCESS_GENERATOR_H_

#include "sim/alias_sampler.h"
#include "sim/rng.h"
#include "workload/access_pattern.h"

namespace bdisk::workload {

/// Draws page requests from an AccessPattern in O(1) per draw (alias
/// method). Each client owns one generator and its own RNG stream.
class AccessGenerator {
 public:
  explicit AccessGenerator(const AccessPattern& pattern)
      : sampler_(pattern.probs()) {}

  /// Draws the next requested page.
  PageId Next(sim::Rng& rng) const {
    return static_cast<PageId>(sampler_.Sample(rng));
  }

 private:
  sim::AliasSampler sampler_;
};

}  // namespace bdisk::workload

#endif  // BDISK_WORKLOAD_ACCESS_GENERATOR_H_
