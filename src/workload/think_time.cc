#include "workload/think_time.h"

#include "sim/check.h"

namespace bdisk::workload {

ThinkTime::ThinkTime(Kind kind, sim::SimTime mean) : kind_(kind), mean_(mean) {
  BDISK_CHECK_MSG(mean > 0.0, "think time mean must be positive");
}

}  // namespace bdisk::workload
