#ifndef BDISK_WORKLOAD_ACCESS_PATTERN_H_
#define BDISK_WORKLOAD_ACCESS_PATTERN_H_

#include <cstddef>
#include <vector>

#include "broadcast/page.h"
#include "sim/rng.h"

namespace bdisk::workload {

using broadcast::PageId;

/// A client's access probability distribution over the database.
///
/// The canonical pattern is Zipf(theta) with rank r mapped to page id r
/// (rank 0 = page 0 = hottest). The virtual client — and therefore the
/// server's broadcast program — always uses this canonical mapping; the
/// measured client's mapping may be perturbed by Noise (see noise.h) to
/// model disagreement with the aggregate pattern (§3.1).
class AccessPattern {
 public:
  /// Pattern with explicit per-page probabilities (must sum to ~1).
  explicit AccessPattern(std::vector<double> probs);

  /// Canonical Zipf pattern: page id == rank.
  static AccessPattern Zipf(std::size_t db_size, double theta);

  /// Number of pages.
  std::size_t DbSize() const { return probs_.size(); }

  /// Probability of accessing `page`.
  double Prob(PageId page) const { return probs_[page]; }

  /// Full probability vector, indexed by page id.
  const std::vector<double>& probs() const { return probs_; }

  /// Returns a copy of this pattern with its probability-to-page mapping
  /// perturbed by `noise` in [0,1] (see NoisePermutation). noise == 0
  /// returns an identical pattern.
  AccessPattern WithNoise(double noise, sim::Rng& rng) const;

  /// Page ids sorted hottest-first under this pattern (ties: lower id).
  std::vector<PageId> RankedPages() const;

 private:
  std::vector<double> probs_;
};

}  // namespace bdisk::workload

#endif  // BDISK_WORKLOAD_ACCESS_PATTERN_H_
