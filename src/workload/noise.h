#ifndef BDISK_WORKLOAD_NOISE_H_
#define BDISK_WORKLOAD_NOISE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/rng.h"

namespace bdisk::workload {

/// Builds the Noise permutation of §3.1 / [Acha95a]: a mapping from
/// canonical page ids to perturbed page ids.
///
/// For each position i in turn, with probability `noise` the entries at i
/// and at a uniformly random position are swapped. Noise = 0 yields the
/// identity (measured and virtual clients agree exactly); larger values
/// monotonically increase the expected disagreement between the measured
/// client's hot set and the broadcast program, which is the property the
/// paper's Experiment 1.4 varies. (The original implementation is described
/// only by citation; see DESIGN.md, Substitutions.)
std::vector<std::uint32_t> NoisePermutation(std::size_t n, double noise,
                                            sim::Rng& rng);

/// Fraction of positions where `perm` differs from identity — a diagnostic
/// for how much disagreement a permutation induces.
double PermutationDisplacement(const std::vector<std::uint32_t>& perm);

}  // namespace bdisk::workload

#endif  // BDISK_WORKLOAD_NOISE_H_
