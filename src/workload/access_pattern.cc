#include "workload/access_pattern.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "sim/check.h"
#include "sim/zipf.h"
#include "workload/noise.h"

namespace bdisk::workload {

AccessPattern::AccessPattern(std::vector<double> probs)
    : probs_(std::move(probs)) {
  BDISK_CHECK_MSG(!probs_.empty(), "pattern needs at least one page");
  double total = 0.0;
  for (const double p : probs_) {
    BDISK_CHECK_MSG(p >= 0.0, "probabilities must be non-negative");
    total += p;
  }
  BDISK_CHECK_MSG(std::fabs(total - 1.0) < 1e-6,
                  "probabilities must sum to 1");
}

AccessPattern AccessPattern::Zipf(std::size_t db_size, double theta) {
  return AccessPattern(sim::ZipfPmf(db_size, theta));
}

AccessPattern AccessPattern::WithNoise(double noise, sim::Rng& rng) const {
  const std::vector<std::uint32_t> perm =
      NoisePermutation(probs_.size(), noise, rng);
  std::vector<double> perturbed(probs_.size());
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    // The probability mass that canonically belongs to page i lands on
    // page perm[i].
    perturbed[perm[i]] = probs_[i];
  }
  return AccessPattern(std::move(perturbed));
}

std::vector<PageId> AccessPattern::RankedPages() const {
  std::vector<PageId> ranked(probs_.size());
  std::iota(ranked.begin(), ranked.end(), 0U);
  std::stable_sort(ranked.begin(), ranked.end(), [this](PageId a, PageId b) {
    return probs_[a] > probs_[b];
  });
  return ranked;
}

}  // namespace bdisk::workload
