#include "workload/noise.h"

#include <numeric>
#include <utility>

#include "sim/check.h"

namespace bdisk::workload {

std::vector<std::uint32_t> NoisePermutation(std::size_t n, double noise,
                                            sim::Rng& rng) {
  BDISK_CHECK_MSG(noise >= 0.0 && noise <= 1.0, "noise must be in [0,1]");
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0U);
  if (noise == 0.0 || n < 2) return perm;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.NextBernoulli(noise)) {
      const std::size_t j = static_cast<std::size_t>(rng.NextBounded(n));
      std::swap(perm[i], perm[j]);
    }
  }
  return perm;
}

double PermutationDisplacement(const std::vector<std::uint32_t>& perm) {
  if (perm.empty()) return 0.0;
  std::size_t moved = 0;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] != i) ++moved;
  }
  return static_cast<double>(moved) / static_cast<double>(perm.size());
}

}  // namespace bdisk::workload
