#ifndef BDISK_WORKLOAD_THINK_TIME_H_
#define BDISK_WORKLOAD_THINK_TIME_H_

#include "sim/rng.h"
#include "sim/types.h"

namespace bdisk::workload {

/// Think-time model for the request-think client loop.
///
/// The measured client waits a *fixed* ThinkTime (20 units) between
/// requests; the virtual client's think time is *exponential* with mean
/// ThinkTime / ThinkTimeRatio, so raising the ratio models a proportionally
/// larger client population (§3.1).
class ThinkTime {
 public:
  enum class Kind { kFixed, kExponential };

  /// Fixed think time of exactly `mean` units.
  static ThinkTime Fixed(sim::SimTime mean) {
    return ThinkTime(Kind::kFixed, mean);
  }

  /// Exponentially distributed think time with the given mean.
  static ThinkTime Exponential(sim::SimTime mean) {
    return ThinkTime(Kind::kExponential, mean);
  }

  /// Draws the next think interval.
  sim::SimTime Next(sim::Rng& rng) const {
    return kind_ == Kind::kFixed ? mean_ : rng.NextExponential(mean_);
  }

  /// The configured mean.
  sim::SimTime Mean() const { return mean_; }

  /// The model kind.
  Kind kind() const { return kind_; }

 private:
  ThinkTime(Kind kind, sim::SimTime mean);

  Kind kind_;
  sim::SimTime mean_;
};

}  // namespace bdisk::workload

#endif  // BDISK_WORKLOAD_THINK_TIME_H_
