#ifndef BDISK_SIM_HISTOGRAM_H_
#define BDISK_SIM_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bdisk::sim {

/// Fixed-width bucket histogram over [lo, hi) with overflow/underflow
/// buckets. Used for response-time distributions in diagnostics: the mean
/// alone hides the bimodality that appears when pull requests are dropped
/// and the push "safety net" takes over.
class Histogram {
 public:
  /// Buckets [lo, hi) into `buckets` equal cells; lo < hi, buckets >= 1.
  Histogram(double lo, double hi, std::size_t buckets);

  /// Records one observation.
  void Add(double x);

  /// Forgets all observations, keeping the bucket shape and the existing
  /// counts buffer (no allocation — safe on phase boundaries inside runs).
  void Reset();

  /// Total observations, including under/overflow.
  std::uint64_t Count() const { return count_; }

  /// Observations below `lo` / at-or-above `hi`.
  std::uint64_t Underflow() const { return underflow_; }
  std::uint64_t Overflow() const { return overflow_; }

  /// Count in the i-th cell.
  std::uint64_t BucketCount(std::size_t i) const { return counts_[i]; }

  /// Number of cells (excluding under/overflow).
  std::size_t NumBuckets() const { return counts_.size(); }

  /// Lower edge of cell i.
  double BucketLow(std::size_t i) const;

  /// Smallest / largest observation recorded since construction or Reset().
  /// Meaningful only when Count() > 0.
  double Min() const { return min_; }
  double Max() const { return max_; }

  /// Value below which `q` (in [0,1]) of the observations fall, interpolated
  /// within the containing bucket and clamped to the observed [Min, Max], so
  /// a low-count histogram can never report a percentile outside the data.
  double Quantile(double q) const;

  /// Multi-line ASCII rendering (for example programs and debugging).
  std::string ToAscii(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace bdisk::sim

#endif  // BDISK_SIM_HISTOGRAM_H_
