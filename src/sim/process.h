#ifndef BDISK_SIM_PROCESS_H_
#define BDISK_SIM_PROCESS_H_

#include "sim/simulator.h"
#include "sim/types.h"

namespace bdisk::sim {

/// Base class for simulation components driven by a single pending timer
/// (a "process" in CSIM terms, expressed as a state machine).
///
/// A Process is its own EventHandler: scheduling a wakeup stores one
/// pointer in the event queue, so the request–think loops that dominate the
/// simulation never allocate. A Process has at most one outstanding wakeup
/// at a time; scheduling a new one cancels the old. Subclasses implement
/// OnWakeup() and may also react to external stimuli (e.g. a page arriving
/// on the broadcast) between wakeups. The Process must outlive the
/// Simulator run it participates in.
class Process : public EventHandler {
 public:
  explicit Process(Simulator* simulator) : simulator_(simulator) {}
  virtual ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// The simulator this process runs on.
  Simulator* simulator() const { return simulator_; }

  /// Current simulation time.
  SimTime Now() const { return simulator_->Now(); }

 protected:
  /// Schedules OnWakeup() to run after `delay`; cancels any pending wakeup.
  void ScheduleWakeup(SimTime delay);

  /// Cancels the pending wakeup, if any.
  void CancelWakeup();

  /// True iff a wakeup is pending.
  bool WakeupPending() const;

  /// Fired when the scheduled wakeup time arrives.
  virtual void OnWakeup() = 0;

 private:
  /// EventHandler: the pending wakeup fired.
  void OnEvent() final;

  Simulator* simulator_;
  EventId wakeup_id_ = kInvalidEventId;
};

}  // namespace bdisk::sim

#endif  // BDISK_SIM_PROCESS_H_
