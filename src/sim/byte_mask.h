#ifndef BDISK_SIM_BYTE_MASK_H_
#define BDISK_SIM_BYTE_MASK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bdisk::sim {

/// A byte-backed boolean mask, API-compatible with the std::vector<bool>
/// idioms the simulation hot paths use (operator[] reads, `mask[i] = flag`
/// writes, size()).
///
/// vector<bool> packs eight flags per byte, so every membership test on the
/// hot path (queue coalescing, cache residency, VC warm-set filtering) pays
/// a shift+mask and the proxy defeats vectorization of scan loops. At
/// simulation scale (one mask entry per database page) the 8x memory cost
/// of whole bytes is trivial, and each access becomes a single load/store.
class ByteMask {
 public:
  /// Write proxy so `mask[i] = flag` keeps working at existing call sites.
  class Ref {
   public:
    Ref& operator=(bool value) {
      *byte_ = value ? 1 : 0;
      return *this;
    }
    /// `mask_a[i] = mask_b[j]` assigns the *value*, as
    /// std::vector<bool>::reference does. Without this the implicit copy
    /// assignment would silently rebind the proxy instead of writing the
    /// mask — a no-op at the call site.
    Ref& operator=(const Ref& other) {
      *byte_ = *other.byte_;
      return *this;
    }
    operator bool() const { return *byte_ != 0; }

   private:
    friend class ByteMask;
    explicit Ref(std::uint8_t* byte) : byte_(byte) {}
    std::uint8_t* byte_;
  };

  ByteMask() = default;
  explicit ByteMask(std::size_t size, bool value = false)
      : bytes_(size, value ? 1 : 0) {}

  bool operator[](std::size_t i) const { return bytes_[i] != 0; }
  Ref operator[](std::size_t i) { return Ref(&bytes_[i]); }

  std::size_t size() const { return bytes_.size(); }

  /// Raw byte access for batched hot loops (0 = false, nonzero = true).
  /// Writers must store exactly 0 or 1 to keep operator[] reads canonical.
  const std::uint8_t* data() const { return bytes_.data(); }
  std::uint8_t* data() { return bytes_.data(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

}  // namespace bdisk::sim

#endif  // BDISK_SIM_BYTE_MASK_H_
