#ifndef BDISK_SIM_RNG_H_
#define BDISK_SIM_RNG_H_

#include <cmath>
#include <cstdint>

#include "sim/check.h"

namespace bdisk::sim {

/// xoshiro256++ pseudo-random generator (Blackman & Vigna, 2019).
///
/// Small, fast, and high quality — suitable for simulation hot paths where
/// std::mt19937_64's state size and speed are a poor fit. Deterministic for
/// a given seed, so every experiment in this repo is exactly reproducible.
/// Satisfies the C++ UniformRandomBitGenerator concept.
///
/// The draw methods are defined inline: the batched arrival spine copies
/// the generator into a local and draws millions of times per run, and
/// keeping the state in registers across a fill loop is worth more than
/// any single algorithmic change in that path (DESIGN.md § "The batched
/// arrival spine").
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator. Distinct seeds give statistically independent
  /// streams (the seed is expanded with SplitMix64 per Vigna's guidance).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next 64 uniformly distributed bits.
  result_type operator()() { return Next(); }

  /// Next 64 uniformly distributed bits.
  std::uint64_t Next() {
    const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound), bound > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  std::uint64_t NextBounded(std::uint64_t bound) {
    BDISK_DCHECK(bound > 0);
    std::uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli trial: true with probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return NextDouble() < p;
  }

  /// Exponentially distributed variate with the given mean (> 0).
  double NextExponential(double mean) {
    BDISK_DCHECK(mean > 0.0);
    // Inverse CDF; 1 - u avoids log(0) since NextDouble() < 1.
    return -mean * std::log1p(-NextDouble());
  }

  /// Creates an independent child stream; deterministic given this
  /// generator's current state. Useful for giving each model component its
  /// own stream so adding a component never perturbs another's draws.
  Rng Split();

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace bdisk::sim

#endif  // BDISK_SIM_RNG_H_
