#ifndef BDISK_SIM_RNG_H_
#define BDISK_SIM_RNG_H_

#include <cstdint>

namespace bdisk::sim {

/// xoshiro256++ pseudo-random generator (Blackman & Vigna, 2019).
///
/// Small, fast, and high quality — suitable for simulation hot paths where
/// std::mt19937_64's state size and speed are a poor fit. Deterministic for
/// a given seed, so every experiment in this repo is exactly reproducible.
/// Satisfies the C++ UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator. Distinct seeds give statistically independent
  /// streams (the seed is expanded with SplitMix64 per Vigna's guidance).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next 64 uniformly distributed bits.
  result_type operator()() { return Next(); }

  /// Next 64 uniformly distributed bits.
  std::uint64_t Next();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform integer in [0, bound), bound > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Bernoulli trial: true with probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Exponentially distributed variate with the given mean (> 0).
  double NextExponential(double mean);

  /// Creates an independent child stream; deterministic given this
  /// generator's current state. Useful for giving each model component its
  /// own stream so adding a component never perturbs another's draws.
  Rng Split();

 private:
  std::uint64_t s_[4];
};

}  // namespace bdisk::sim

#endif  // BDISK_SIM_RNG_H_
