#ifndef BDISK_SIM_SIMULATOR_H_
#define BDISK_SIM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "obs/phase_profiler.h"
#include "sim/event_queue.h"
#include "sim/lazy_source.h"
#include "sim/types.h"

namespace bdisk::sim {

/// The discrete-event simulation engine.
///
/// A Simulator owns the logical clock and the event queue. Model components
/// schedule actions — an EventHandler or a small inline callable — at
/// absolute or relative times; Run*() drains events in time order (FIFO
/// among ties), advancing the clock to each event's time. Scheduling never
/// heap-allocates: actions are flat two-word values and event bookkeeping
/// lives in reusable slabs (see EventQueue).
///
/// This is the substrate standing in for CSIM in the original study: the
/// paper's model needs only timed wakeups (broadcast slots, think-time
/// expirations), which an event-driven kernel reproduces exactly.
class Simulator {
 public:
  /// `kind` picks the one-shot queue backend (heap or calendar wheel);
  /// both produce bit-identical trajectories. See sim/event_queue.h.
  explicit Simulator(QueueKind kind = DefaultQueueKind()) : queue_(kind) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// The event-queue backend this simulator runs on.
  QueueKind queue_kind() const { return queue_.kind(); }

  /// Toggles batched periodic execution (default on): RunUntil() fires
  /// consecutive occurrences of a sole live periodic timer in a tight loop
  /// instead of one Pop() per occurrence, re-deriving the span whenever a
  /// handler schedules or cancels anything. Bit-identical either way (the
  /// span never crosses the earliest one-shot event); off is the A/B
  /// escape hatch.
  void SetBatchedPeriodic(bool on) { batch_periodic_ = on; }
  bool BatchedPeriodic() const { return batch_periodic_; }

  /// Current simulation time in broadcast units.
  SimTime Now() const { return now_; }

  /// Total number of events executed so far.
  std::uint64_t EventsExecuted() const { return events_executed_; }

  /// Kernel profiling: deepest the one-shot event store has ever been, and
  /// how many periodic-timer occurrences rode the pop-free fast path.
  /// Always tracked (the cost is one compare per push / one increment per
  /// re-arm).
  std::size_t HeapHighWater() const { return queue_.HeapHighWater(); }
  std::uint64_t PeriodicRearms() const { return queue_.PeriodicRearms(); }

  /// Kernel profiling: lazily-cancelled event entries physically retired
  /// (each exactly once — see EventQueue::StaleDiscarded), and how many
  /// batched periodic spans RunUntil() entered.
  std::uint64_t StaleDiscarded() const { return queue_.StaleDiscarded(); }
  std::uint64_t PeriodicSpans() const { return periodic_spans_; }

  /// Schedules `fn` at absolute time `when` (must be >= Now()).
  EventId ScheduleAt(SimTime when, EventFn fn);

  /// Schedules `fn` after `delay` (must be >= 0) broadcast units.
  EventId ScheduleAfter(SimTime delay, EventFn fn);

  /// Registers a periodic timer firing `handler->OnEvent()` every
  /// `interval` units, first at Now() + interval. The fast path for
  /// fixed-cadence event sources (the broadcast slot loop): occurrences
  /// never round-trip through the event heap. The handler is not owned and
  /// must outlive the timer (or cancel it first).
  PeriodicId SchedulePeriodic(SimTime interval, EventHandler* handler);

  /// Stops a periodic timer; safe to call from inside its own OnEvent().
  void CancelPeriodic(PeriodicId id) { queue_.CancelPeriodic(id); }

  /// Registers a fused event source (not owned; unregister before it
  /// dies). Its arrivals are processed in batch by CatchUpLazySources()
  /// instead of riding the event heap. See sim/lazy_source.h for the
  /// eligibility contract.
  void RegisterLazySource(LazySource* source);

  /// Unregisters `source`; no-op if it was never registered.
  void UnregisterLazySource(LazySource* source);

  /// Drains every registered lazy source up to Now(), interleaving
  /// multiple sources in global timestamp order (ties: registration
  /// order). Model components call this at each barrier where a lazy
  /// source's effects become observable. Reentrant calls (a drain whose
  /// side effects reach another barrier) are no-ops, which is safe: the
  /// outer drain is already processing arrivals in timestamp order.
  void CatchUpLazySources();

  /// Fused-source profiling: arrivals processed via CatchUpLazySources()
  /// (each would have been one heap event without fusion) and the number
  /// of drain calls that processed at least one arrival.
  std::uint64_t LazyArrivalsFused() const { return lazy_arrivals_fused_; }
  std::uint64_t LazyDrains() const { return lazy_drains_; }

  /// Attaches a wall-clock phase profiler (not owned; null detaches). The
  /// profiler header is dependency-free by design — only its inline hot
  /// path is used here, so bdisk_sim takes no obs link dependency — and
  /// attaching never changes the trajectory (null-checked scopes, no RNG,
  /// no events; same contract as the obs trace hooks).
  void SetPhaseProfiler(obs::PhaseProfiler* profiler) {
    profiler_ = profiler;
  }
  obs::PhaseProfiler* phase_profiler() const { return profiler_; }

  /// Cancels a pending event; no-op if it already fired.
  void Cancel(EventId id) { queue_.Cancel(id); }

  /// True iff `id` has been scheduled but has not fired nor been cancelled.
  bool IsPending(EventId id) const { return queue_.IsPending(id); }

  /// Runs until the event queue is empty or Stop() is called. Note that a
  /// live periodic timer keeps the queue non-empty forever.
  void Run();

  /// Runs until the clock would pass `deadline`, the queue empties, or
  /// Stop() is called. Events at exactly `deadline` are executed.
  void RunUntil(SimTime deadline);

  /// Executes at most one event; returns false if none was available.
  bool Step();

  /// Requests that the current Run()/RunUntil() return after the in-flight
  /// event completes. Safe to call from inside event callbacks.
  void Stop() { stop_requested_ = true; }

  /// Number of events currently pending (periodic timers count once).
  std::size_t PendingEvents() const { return queue_.Size(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t events_executed_ = 0;
  bool stop_requested_ = false;
  bool batch_periodic_ = true;
  std::uint64_t periodic_spans_ = 0;  // Batched spans entered (profiling).

  std::vector<LazySource*> lazy_sources_;
  bool draining_ = false;
  std::uint64_t lazy_arrivals_fused_ = 0;
  std::uint64_t lazy_drains_ = 0;

  obs::PhaseProfiler* profiler_ = nullptr;
};

}  // namespace bdisk::sim

#endif  // BDISK_SIM_SIMULATOR_H_
