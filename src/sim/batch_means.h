#ifndef BDISK_SIM_BATCH_MEANS_H_
#define BDISK_SIM_BATCH_MEANS_H_

#include <cstdint>
#include <vector>

#include "sim/stats.h"

namespace bdisk::sim {

/// Steady-state convergence detector using the method of batch means.
///
/// The paper runs each configuration "until the response time stabilized".
/// This class makes that operational: observations are grouped into batches
/// of `batch_size`; the run is declared stable once `window` consecutive
/// batch means each lie within `tolerance` (relative) of the cumulative
/// mean. Callers still cap total observations to bound runtime.
class BatchMeans {
 public:
  /// `batch_size` observations per batch; stability requires `window`
  /// consecutive in-tolerance batches.
  BatchMeans(std::uint64_t batch_size, double tolerance,
             std::uint32_t window = 3);

  /// Adds one observation; returns true once the series is stable.
  bool Add(double x);

  /// True once stability has been reached.
  bool IsStable() const { return stable_; }

  /// Cumulative statistics over all observations.
  const RunningStats& overall() const { return overall_; }

  /// Means of each completed batch, in order.
  const std::vector<double>& batch_means() const { return batch_means_; }

 private:
  std::uint64_t batch_size_;
  double tolerance_;
  std::uint32_t window_;
  RunningStats overall_;
  RunningStats current_batch_;
  std::vector<double> batch_means_;
  std::uint32_t consecutive_ok_ = 0;
  bool stable_ = false;
};

}  // namespace bdisk::sim

#endif  // BDISK_SIM_BATCH_MEANS_H_
