#include "sim/event_queue.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sim/check.h"

namespace bdisk::sim {

EventId EventQueue::Schedule(SimTime when, Callback callback) {
  BDISK_CHECK_MSG(std::isfinite(when), "event time must be finite");
  const EventId id = next_id_++;
  heap_.push_back(Entry{when, id, std::move(callback)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  pending_.insert(id);
  return id;
}

void EventQueue::Cancel(EventId id) {
  // An id absent from pending_ already fired or was already cancelled; the
  // heap entry (if any) is skipped lazily in SkipCancelled().
  pending_.erase(id);
}

void EventQueue::SkipCancelled() {
  while (!heap_.empty() && pending_.count(heap_.front().id) == 0) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

SimTime EventQueue::NextTime() {
  SkipCancelled();
  return heap_.empty() ? kTimeNever : heap_.front().when;
}

void EventQueue::Pop(SimTime* when, Callback* callback) {
  SkipCancelled();
  BDISK_CHECK_MSG(!heap_.empty(), "Pop() on an empty EventQueue");
  *when = heap_.front().when;
  pending_.erase(heap_.front().id);
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  *callback = std::move(heap_.back().callback);
  heap_.pop_back();
}

void EventQueue::Clear() {
  heap_.clear();
  pending_.clear();
}

}  // namespace bdisk::sim
