#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <string_view>

#include "sim/check.h"

namespace bdisk::sim {

namespace {

// Slot-index width inside the low 64 key bits: up to ~1M concurrently live
// events, leaving 44 bits of sequence number (~1.7e13 events per run).
constexpr unsigned kSlotBits = 20;
constexpr std::uint32_t kMaxSlots = (1u << kSlotBits) - 1;

// Builds the 128-bit ordering key for events, by (when, seq, slot).
// Nonnegative finite doubles order identically to their bit patterns, so
// an integer compare of keys is the full tie-broken event ordering.
inline unsigned __int128 MakeKey(SimTime when, std::uint64_t seq,
                                 std::uint32_t slot) {
  const auto when_bits = std::bit_cast<std::uint64_t>(when);
  const std::uint64_t low = (seq << kSlotBits) | slot;
  return (static_cast<unsigned __int128>(when_bits) << 64) | low;
}

inline SimTime WhenOf(unsigned __int128 key) {
  return std::bit_cast<SimTime>(static_cast<std::uint64_t>(key >> 64));
}

inline std::uint64_t SeqOf(unsigned __int128 key) {
  return static_cast<std::uint64_t>(key) >> kSlotBits;
}

inline std::uint32_t StoredSlotOf(unsigned __int128 key) {
  return static_cast<std::uint32_t>(key) & kMaxSlots;
}

// The wheel's calendar day of a fire time: floor(when), saturating far
// beyond any reachable horizon for times too large for uint64. All clamped
// times share one "day"; their relative order is still exact because the
// staging run sorts by the full 128-bit key.
inline std::uint64_t DayOf(SimTime when) {
  constexpr std::uint64_t kMaxDay = std::uint64_t{1} << 62;
  if (when >= static_cast<SimTime>(kMaxDay)) return kMaxDay;
  return static_cast<std::uint64_t>(when);
}

inline void SetBit(std::uint64_t* bits, unsigned idx) {
  bits[idx >> 6] |= std::uint64_t{1} << (idx & 63);
}

inline void ClearBit(std::uint64_t* bits, unsigned idx) {
  bits[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
}

inline bool TestBit(const std::uint64_t* bits, unsigned idx) {
  return (bits[idx >> 6] >> (idx & 63)) & 1u;
}

}  // namespace

QueueKind DefaultQueueKind() {
  static const QueueKind kind = [] {
    const char* env = std::getenv("BDISK_KERNEL_QUEUE");
    if (env != nullptr && std::string_view(env) == "heap") {
      return QueueKind::kHeap;
    }
    return QueueKind::kWheel;
  }();
  return kind;
}

EventQueue::EventQueue(QueueKind kind) : kind_(kind) {
  if (kind_ == QueueKind::kWheel) {
    l0_.resize(kWheelBuckets);
    l1_.resize(kWheelBuckets);
  }
}

// A single integer compare keeps the hot (serial, latency-bound) sift
// comparisons branchless and short.
bool EventQueue::Before(const HeapEntry& a, const HeapEntry& b) {
  return a.key < b.key;  // Earlier (when, seq) fires first.
}

void EventQueue::HeapPush(const HeapEntry& entry) {
  std::size_t i = heap_.size();
  heap_.push_back(entry);
  if (heap_.size() > high_water_) high_water_ = heap_.size();
  // Hole-based sift-up: parents slide down into the hole, the new entry is
  // written exactly once.
  while (i > 0) {
    const std::size_t parent = (i - 1) / kHeapArity;
    if (!Before(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void EventQueue::HeapPopFront() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  // Bottom-up sift (Wegener): walk the hole down along min-children to a
  // leaf without comparing against `last`, then bubble `last` up. The
  // displaced element comes from the bottom of the heap, so the bubble-up
  // almost always stops immediately — this trades the per-level compare
  // against `last` for ~one compare total.
  std::size_t hole = 0;
  for (;;) {
    const std::size_t fc = kHeapArity * hole + 1;
    std::size_t best;
    if (fc + kHeapArity <= n) {
      // Full group: a branch-free tournament. (when, packed) is a total
      // order — no ties — so any strict-min tournament picks the same
      // child, and conditional selects beat data-dependent branches on
      // effectively random event times.
      const std::size_t a = Before(heap_[fc + 1], heap_[fc]) ? fc + 1 : fc;
      const std::size_t b =
          Before(heap_[fc + 3], heap_[fc + 2]) ? fc + 3 : fc + 2;
      // One of these two is the next hole; fetch its children early.
      __builtin_prefetch(heap_.data() + kHeapArity * a + 1);
      __builtin_prefetch(heap_.data() + kHeapArity * b + 1);
      best = Before(heap_[b], heap_[a]) ? b : a;
    } else if (fc < n) {
      best = fc;
      for (std::size_t c = fc + 1; c < n; ++c) {
        if (Before(heap_[c], heap_[best])) best = c;
      }
    } else {
      break;
    }
    heap_[hole] = heap_[best];
    hole = best;
  }
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / kHeapArity;
    if (!Before(last, heap_[parent])) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = last;
}

void EventQueue::WheelInsert(unsigned __int128 key) {
  ++wheel_stored_;
  if (wheel_stored_ > high_water_) high_water_ = wheel_stored_;
  const std::uint64_t day = DayOf(WhenOf(key));
  if (day <= day_) {
    // Due already: keep the unconsumed staging run [due_cursor_, end)
    // sorted. The consumed prefix holds only keys smaller than anything
    // still poppable, so searching the tail alone is safe.
    const auto it = std::lower_bound(
        due_.begin() + static_cast<std::ptrdiff_t>(due_cursor_), due_.end(),
        key,
        [](const HeapEntry& e, unsigned __int128 k) { return e.key < k; });
    due_.insert(it, HeapEntry{key});
    return;
  }
  if (day - day_ <= kWheelBuckets) {
    const auto idx = static_cast<unsigned>(day & (kWheelBuckets - 1));
    l0_[idx].push_back(HeapEntry{key});
    SetBit(l0_bits_, idx);
    return;
  }
  const std::uint64_t hour = day >> kWheelShift;
  if (hour - (day_ >> kWheelShift) <= kWheelBuckets) {
    const auto idx = static_cast<unsigned>(hour & (kWheelBuckets - 1));
    l1_[idx].push_back(HeapEntry{key});
    SetBit(l1_bits_, idx);
    return;
  }
  overflow_.push_back(HeapEntry{key});
  if (day < overflow_min_day_) overflow_min_day_ = day;
}

namespace {

// Circular distance in [1, kBuckets] from `from` to the next set bit of a
// kBuckets-wide bitmap, or 0 when no bit is set. Distance kBuckets means
// the bit at `from` itself — one full revolution ahead.
unsigned NextSetBitDistance(const std::uint64_t* bits, unsigned from,
                            unsigned buckets) {
  const unsigned mask = buckets - 1;
  const unsigned words = buckets / 64;
  const unsigned pos = (from + 1) & mask;
  unsigned word = pos >> 6;
  std::uint64_t w = bits[word] & (~std::uint64_t{0} << (pos & 63));
  for (unsigned i = 0; i <= words; ++i) {
    if (w != 0) {
      const unsigned bit =
          word * 64 + static_cast<unsigned>(std::countr_zero(w));
      return ((bit - from - 1) & mask) + 1;
    }
    word = (word + 1) & (words - 1);
    w = bits[word];
  }
  return 0;
}

}  // namespace

void EventQueue::AppendLiveToDue(std::vector<HeapEntry>* bucket) {
  for (const HeapEntry& e : *bucket) {
    if (IsStale(e)) {
      ++stale_discarded_;
      --wheel_stored_;
    } else {
      due_.push_back(e);
    }
  }
  bucket->clear();
}

void EventQueue::SortDue() {
  std::sort(due_.begin(), due_.end(),
            [](const HeapEntry& a, const HeapEntry& b) { return a.key < b.key; });
}

void EventQueue::HarvestDay(std::uint64_t day) {
  day_ = day;
  const auto idx = static_cast<unsigned>(day & (kWheelBuckets - 1));
  ClearBit(l0_bits_, idx);
  AppendLiveToDue(&l0_[idx]);
  SortDue();
}

void EventQueue::CascadeHour(std::uint64_t hour) {
  day_ = hour << kWheelShift;
  // The level-0 bucket for the boundary day may already hold entries for
  // it (inserted while the previous hour was current); merge them in.
  const auto l0_idx = static_cast<unsigned>(day_ & (kWheelBuckets - 1));
  if (TestBit(l0_bits_, l0_idx)) {
    ClearBit(l0_bits_, l0_idx);
    AppendLiveToDue(&l0_[l0_idx]);
  }
  const auto l1_idx = static_cast<unsigned>(hour & (kWheelBuckets - 1));
  ClearBit(l1_bits_, l1_idx);
  std::vector<HeapEntry>& bucket = l1_[l1_idx];
  for (const HeapEntry& e : bucket) {
    if (IsStale(e)) {
      ++stale_discarded_;
      --wheel_stored_;
      continue;
    }
    const std::uint64_t day = DayOf(WhenOf(e.key));
    if (day <= day_) {
      due_.push_back(e);
    } else {
      // day - day_ <= kWheelBuckets - 1 by construction: the whole hour
      // spans kWheelBuckets days starting at the boundary.
      const auto idx = static_cast<unsigned>(day & (kWheelBuckets - 1));
      l0_[idx].push_back(e);
      SetBit(l0_bits_, idx);
    }
  }
  bucket.clear();
  SortDue();
}

void EventQueue::RedistributeOverflow() {
  // Only reached when the staging run and both wheel levels are empty:
  // jump the calendar straight to the earliest overflow day and scatter.
  std::size_t kept = 0;
  for (const HeapEntry& e : overflow_) {
    if (IsStale(e)) {
      ++stale_discarded_;
      --wheel_stored_;
    } else {
      overflow_[kept++] = e;
    }
  }
  overflow_.resize(kept);
  overflow_min_day_ = kNoDay;
  if (overflow_.empty()) return;
  std::uint64_t min_day = kNoDay;
  for (const HeapEntry& e : overflow_) {
    min_day = std::min(min_day, DayOf(WhenOf(e.key)));
  }
  day_ = min_day;
  kept = 0;
  for (const HeapEntry& e : overflow_) {
    const std::uint64_t day = DayOf(WhenOf(e.key));
    if (day <= day_) {
      due_.push_back(e);
    } else if (day - day_ <= kWheelBuckets) {
      const auto idx = static_cast<unsigned>(day & (kWheelBuckets - 1));
      l0_[idx].push_back(e);
      SetBit(l0_bits_, idx);
    } else if ((day >> kWheelShift) - (day_ >> kWheelShift) <= kWheelBuckets) {
      const auto idx =
          static_cast<unsigned>((day >> kWheelShift) & (kWheelBuckets - 1));
      l1_[idx].push_back(e);
      SetBit(l1_bits_, idx);
    } else {
      overflow_[kept++] = e;
      if (day < overflow_min_day_) overflow_min_day_ = day;
    }
  }
  overflow_.resize(kept);
  SortDue();
}

void EventQueue::WheelAdvance() {
  // Precondition: the staging run is exhausted and cleared. Moves day_
  // forward to the next day holding entries and refills due_ (sorted). May
  // leave due_ empty when everything found was stale; the caller loops.
  for (;;) {
    const auto l0_from = static_cast<unsigned>(day_ & (kWheelBuckets - 1));
    const std::uint64_t hour = day_ >> kWheelShift;
    const auto l1_from = static_cast<unsigned>(hour & (kWheelBuckets - 1));
    const unsigned d0 = NextSetBitDistance(
        l0_bits_, l0_from, static_cast<unsigned>(kWheelBuckets));
    const unsigned d1 = NextSetBitDistance(
        l1_bits_, l1_from, static_cast<unsigned>(kWheelBuckets));
    const std::uint64_t c0 = d0 != 0 ? day_ + d0 : kNoDay;
    const std::uint64_t c1 = d1 != 0 ? (hour + d1) << kWheelShift : kNoDay;
    // Overflow first on ties: once day_ reaches an overflow entry's day,
    // the entry must leave overflow to preserve the "buckets hold only the
    // future" invariant.
    if (!overflow_.empty() && overflow_min_day_ <= c0 &&
        overflow_min_day_ <= c1) {
      RedistributeOverflow();
      if (!due_.empty()) return;
      continue;
    }
    // Cascade first when the hour boundary does not trail the next level-0
    // day: the hour bucket may hold entries for that very day.
    if (c0 != kNoDay && c0 < c1) {
      HarvestDay(c0);
      return;
    }
    if (c1 != kNoDay) {
      CascadeHour(hour + d1);
      if (!due_.empty()) return;
      continue;
    }
    return;  // Nothing stored anywhere.
  }
}

bool EventQueue::WheelPeek() {
  if (live_events_ == 0) return false;
  for (;;) {
    while (due_cursor_ < due_.size()) {
      if (!IsStale(due_[due_cursor_])) return true;
      ++due_cursor_;
      ++stale_discarded_;
      --wheel_stored_;
    }
    due_.clear();
    due_cursor_ = 0;
    // live_events_ > 0 guarantees a live entry is stored somewhere, so the
    // advance loop always makes progress toward it.
    WheelAdvance();
  }
}

EventId EventQueue::Schedule(SimTime when, EventFn fn) {
  BDISK_CHECK_MSG(std::isfinite(when) && when >= 0.0,
                  "event time must be finite and nonnegative");
  BDISK_CHECK_MSG(static_cast<bool>(fn), "event needs an action");
  std::uint32_t slot;
  if (free_head_ != kNilSlot) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    BDISK_CHECK_MSG(slots_.size() < kMaxSlots, "event slab exhausted");
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  const std::uint64_t seq = next_seq_++;
  BDISK_DCHECK(seq < (1ULL << (64 - kSlotBits)));
  Slot& s = slots_[slot];
  s.fn = fn;
  s.live_seq = seq;
  s.next_free = kNilSlot;
  const unsigned __int128 key = MakeKey(when, seq, slot);
  if (kind_ == QueueKind::kHeap) {
    HeapPush(HeapEntry{key});
  } else {
    WheelInsert(key);
  }
  ++live_events_;
  ++mutation_epoch_;
  return MakeId(slot, s.generation);
}

PeriodicId EventQueue::SchedulePeriodic(SimTime first, SimTime interval,
                                        EventHandler* handler) {
  BDISK_CHECK_MSG(std::isfinite(first) && first >= 0.0,
                  "first fire time must be finite and nonnegative");
  BDISK_CHECK_MSG(std::isfinite(interval) && interval > 0.0,
                  "periodic interval must be positive and finite");
  BDISK_CHECK_MSG(handler != nullptr, "periodic timer needs a handler");
  const auto id = static_cast<PeriodicId>(periodic_.size());
  BDISK_CHECK_MSG(id < kNotPeriodic, "too many periodic timers");
  periodic_.push_back(Periodic{first, interval, next_seq_++, handler, true});
  ++live_periodic_;
  ++mutation_epoch_;
  return id;
}

void EventQueue::Cancel(EventId id) {
  const std::uint32_t slot = SlotOf(id);
  // A generation mismatch means the id already fired or was already
  // cancelled; the stored entry (if any) is discarded lazily when the
  // queue reaches it.
  if (slot >= slots_.size() || slots_[slot].generation != GenerationOf(id)) {
    return;
  }
  FreeSlot(slot);
  --live_events_;
  ++mutation_epoch_;
}

void EventQueue::CancelPeriodic(PeriodicId id) {
  BDISK_CHECK_MSG(id < periodic_.size(), "unknown periodic timer");
  if (periodic_[id].live) {
    periodic_[id].live = false;
    --live_periodic_;
    ++mutation_epoch_;
  }
}

void EventQueue::FreeSlot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  // Bumping the generation retires every outstanding id in O(1); zeroing
  // live_seq retires the stored entry. Skip generation 0 on wraparound so
  // ids never collide with kInvalidEventId. The stale fn payload is left
  // in place — EventFn is trivially destructible and the next occupant
  // overwrites it.
  if (++s.generation == 0) s.generation = 1;
  s.live_seq = 0;
  s.next_free = free_head_;
  free_head_ = slot;
}

bool EventQueue::IsStale(const HeapEntry& entry) const {
  return slots_[StoredSlotOf(entry.key)].live_seq != SeqOf(entry.key);
}

void EventQueue::SkipStale() {
  while (!heap_.empty() && IsStale(heap_.front())) {
    HeapPopFront();
    ++stale_discarded_;
  }
}

const EventQueue::HeapEntry* EventQueue::PeekOneShot() {
  if (kind_ == QueueKind::kHeap) {
    SkipStale();
    return heap_.empty() ? nullptr : &heap_.front();
  }
  return WheelPeek() ? &due_[due_cursor_] : nullptr;
}

void EventQueue::PopOneShot() {
  if (kind_ == QueueKind::kHeap) {
    HeapPopFront();
    return;
  }
  ++due_cursor_;
  --wheel_stored_;
}

int EventQueue::EarliestPeriodic() const {
  int best = -1;
  for (std::size_t i = 0; i < periodic_.size(); ++i) {
    const Periodic& p = periodic_[i];
    if (!p.live) continue;
    if (best < 0 || p.next < periodic_[best].next ||
        (p.next == periodic_[best].next && p.seq < periodic_[best].seq)) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

SimTime EventQueue::NextTime() {
  const HeapEntry* top = PeekOneShot();
  SimTime next = top == nullptr ? kTimeNever : WhenOf(top->key);
  const int p = EarliestPeriodic();
  if (p >= 0 && periodic_[p].next < next) next = periodic_[p].next;
  return next;
}

bool EventQueue::PeriodicSpan(PeriodicId* id, EventHandler** handler,
                              SimTime* barrier) {
  if (live_periodic_ != 1) return false;
  const int p = EarliestPeriodic();
  BDISK_DCHECK(p >= 0);
  const HeapEntry* top = PeekOneShot();
  const SimTime limit = top == nullptr ? kTimeNever : WhenOf(top->key);
  // Strict: at when-ties the (when, seq) order must decide, which is
  // Pop()'s job.
  if (!(periodic_[p].next < limit)) return false;
  *id = static_cast<PeriodicId>(p);
  *handler = periodic_[p].handler;
  *barrier = limit;
  return true;
}

bool EventQueue::Pop(Fired* fired) {
  const HeapEntry* top = PeekOneShot();
  const int p = EarliestPeriodic();
  if (top == nullptr && p < 0) return false;
  // FIFO among ties: the event with the smaller (when, seq) fires first,
  // whether it lives in the one-shot store or in the periodic table.
  // A periodic key with slot bits 0 compares against stored keys exactly
  // as (when, seq) would: seqs are unique, so the slot bits never decide.
  const bool periodic_wins =
      p >= 0 &&
      (top == nullptr ||
       MakeKey(periodic_[p].next, periodic_[p].seq, 0) < top->key);
  if (periodic_wins) {
    fired->when = periodic_[p].next;
    fired->fn = EventFn(periodic_[p].handler);
    fired->periodic = static_cast<PeriodicId>(p);
    return true;
  }
  const std::uint32_t slot = StoredSlotOf(top->key);
  fired->when = WhenOf(top->key);
  fired->fn = slots_[slot].fn;
  fired->periodic = kNotPeriodic;
  FreeSlot(slot);
  --live_events_;
  PopOneShot();
  return true;
}

void EventQueue::Rearm(PeriodicId id) {
  BDISK_CHECK_MSG(id < periodic_.size(), "unknown periodic timer");
  Periodic& p = periodic_[id];
  if (!p.live) return;  // Cancelled while its action ran.
  ++periodic_rearms_;
  p.next += p.interval;
  // Drawing the sequence number here — after the action ran — gives the
  // next occurrence exactly the FIFO position a hand-rescheduled event
  // would get, so same-time tie-breaks are bit-identical to the heap path.
  p.seq = next_seq_++;
}

void EventQueue::Clear() {
  heap_.clear();
  slots_.clear();
  periodic_.clear();
  free_head_ = kNilSlot;
  live_events_ = 0;
  live_periodic_ = 0;
  ++mutation_epoch_;
  due_.clear();
  due_cursor_ = 0;
  for (std::vector<HeapEntry>& b : l0_) b.clear();
  for (std::vector<HeapEntry>& b : l1_) b.clear();
  overflow_.clear();
  for (std::size_t i = 0; i < kBitmapWords; ++i) {
    l0_bits_[i] = 0;
    l1_bits_[i] = 0;
  }
  day_ = 0;
  overflow_min_day_ = kNoDay;
  wheel_stored_ = 0;
}

}  // namespace bdisk::sim
