#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "sim/check.h"

namespace bdisk::sim {

namespace {

// Slot-index width inside the low 64 key bits: up to ~1M concurrently live
// events, leaving 44 bits of sequence number (~1.7e13 events per run).
constexpr unsigned kSlotBits = 20;
constexpr std::uint32_t kMaxSlots = (1u << kSlotBits) - 1;

// Builds the 128-bit heap key ordering events by (when, seq, slot).
// Nonnegative finite doubles order identically to their bit patterns, so
// an integer compare of keys is the full tie-broken event ordering.
inline unsigned __int128 MakeKey(SimTime when, std::uint64_t seq,
                                 std::uint32_t slot) {
  const auto when_bits = std::bit_cast<std::uint64_t>(when);
  const std::uint64_t low = (seq << kSlotBits) | slot;
  return (static_cast<unsigned __int128>(when_bits) << 64) | low;
}

inline SimTime WhenOf(unsigned __int128 key) {
  return std::bit_cast<SimTime>(static_cast<std::uint64_t>(key >> 64));
}

inline std::uint64_t SeqOf(unsigned __int128 key) {
  return static_cast<std::uint64_t>(key) >> kSlotBits;
}

inline std::uint32_t HeapSlotOf(unsigned __int128 key) {
  return static_cast<std::uint32_t>(key) & kMaxSlots;
}

}  // namespace

// A single integer compare keeps the hot (serial, latency-bound) sift
// comparisons branchless and short.
bool EventQueue::Before(const HeapEntry& a, const HeapEntry& b) {
  return a.key < b.key;  // Earlier (when, seq) fires first.
}

void EventQueue::HeapPush(const HeapEntry& entry) {
  std::size_t i = heap_.size();
  heap_.push_back(entry);
  if (heap_.size() > heap_high_water_) heap_high_water_ = heap_.size();
  // Hole-based sift-up: parents slide down into the hole, the new entry is
  // written exactly once.
  while (i > 0) {
    const std::size_t parent = (i - 1) / kHeapArity;
    if (!Before(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void EventQueue::HeapPopFront() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  // Bottom-up sift (Wegener): walk the hole down along min-children to a
  // leaf without comparing against `last`, then bubble `last` up. The
  // displaced element comes from the bottom of the heap, so the bubble-up
  // almost always stops immediately — this trades the per-level compare
  // against `last` for ~one compare total.
  std::size_t hole = 0;
  for (;;) {
    const std::size_t fc = kHeapArity * hole + 1;
    std::size_t best;
    if (fc + kHeapArity <= n) {
      // Full group: a branch-free tournament. (when, packed) is a total
      // order — no ties — so any strict-min tournament picks the same
      // child, and conditional selects beat data-dependent branches on
      // effectively random event times.
      const std::size_t a = Before(heap_[fc + 1], heap_[fc]) ? fc + 1 : fc;
      const std::size_t b =
          Before(heap_[fc + 3], heap_[fc + 2]) ? fc + 3 : fc + 2;
      // One of these two is the next hole; fetch its children early.
      __builtin_prefetch(heap_.data() + kHeapArity * a + 1);
      __builtin_prefetch(heap_.data() + kHeapArity * b + 1);
      best = Before(heap_[b], heap_[a]) ? b : a;
    } else if (fc < n) {
      best = fc;
      for (std::size_t c = fc + 1; c < n; ++c) {
        if (Before(heap_[c], heap_[best])) best = c;
      }
    } else {
      break;
    }
    heap_[hole] = heap_[best];
    hole = best;
  }
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / kHeapArity;
    if (!Before(last, heap_[parent])) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = last;
}

EventId EventQueue::Schedule(SimTime when, EventFn fn) {
  BDISK_CHECK_MSG(std::isfinite(when) && when >= 0.0,
                  "event time must be finite and nonnegative");
  BDISK_CHECK_MSG(static_cast<bool>(fn), "event needs an action");
  std::uint32_t slot;
  if (free_head_ != kNilSlot) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    BDISK_CHECK_MSG(slots_.size() < kMaxSlots, "event slab exhausted");
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  const std::uint64_t seq = next_seq_++;
  BDISK_DCHECK(seq < (1ULL << (64 - kSlotBits)));
  Slot& s = slots_[slot];
  s.fn = fn;
  s.live_seq = seq;
  s.next_free = kNilSlot;
  HeapPush(HeapEntry{MakeKey(when, seq, slot)});
  ++live_events_;
  return MakeId(slot, s.generation);
}

PeriodicId EventQueue::SchedulePeriodic(SimTime first, SimTime interval,
                                        EventHandler* handler) {
  BDISK_CHECK_MSG(std::isfinite(first) && first >= 0.0,
                  "first fire time must be finite and nonnegative");
  BDISK_CHECK_MSG(std::isfinite(interval) && interval > 0.0,
                  "periodic interval must be positive and finite");
  BDISK_CHECK_MSG(handler != nullptr, "periodic timer needs a handler");
  const auto id = static_cast<PeriodicId>(periodic_.size());
  BDISK_CHECK_MSG(id < kNotPeriodic, "too many periodic timers");
  periodic_.push_back(Periodic{first, interval, next_seq_++, handler, true});
  ++live_periodic_;
  return id;
}

void EventQueue::Cancel(EventId id) {
  const std::uint32_t slot = SlotOf(id);
  // A generation mismatch means the id already fired or was already
  // cancelled; the heap entry (if any) is skipped lazily in SkipStale().
  if (slot >= slots_.size() || slots_[slot].generation != GenerationOf(id)) {
    return;
  }
  FreeSlot(slot);
  --live_events_;
}

void EventQueue::CancelPeriodic(PeriodicId id) {
  BDISK_CHECK_MSG(id < periodic_.size(), "unknown periodic timer");
  if (periodic_[id].live) {
    periodic_[id].live = false;
    --live_periodic_;
  }
}

void EventQueue::FreeSlot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  // Bumping the generation retires every outstanding id in O(1); zeroing
  // live_seq retires the heap entry. Skip generation 0 on wraparound so
  // ids never collide with kInvalidEventId. The stale fn payload is left
  // in place — EventFn is trivially destructible and the next occupant
  // overwrites it.
  if (++s.generation == 0) s.generation = 1;
  s.live_seq = 0;
  s.next_free = free_head_;
  free_head_ = slot;
}

bool EventQueue::IsStale(const HeapEntry& entry) const {
  return slots_[HeapSlotOf(entry.key)].live_seq != SeqOf(entry.key);
}

void EventQueue::SkipStale() {
  while (!heap_.empty() && IsStale(heap_.front())) HeapPopFront();
}

int EventQueue::EarliestPeriodic() const {
  int best = -1;
  for (std::size_t i = 0; i < periodic_.size(); ++i) {
    const Periodic& p = periodic_[i];
    if (!p.live) continue;
    if (best < 0 || p.next < periodic_[best].next ||
        (p.next == periodic_[best].next && p.seq < periodic_[best].seq)) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

SimTime EventQueue::NextTime() {
  SkipStale();
  SimTime next = heap_.empty() ? kTimeNever : WhenOf(heap_.front().key);
  const int p = EarliestPeriodic();
  if (p >= 0 && periodic_[p].next < next) next = periodic_[p].next;
  return next;
}

bool EventQueue::Pop(Fired* fired) {
  SkipStale();
  const int p = EarliestPeriodic();
  const bool have_heap = !heap_.empty();
  if (!have_heap && p < 0) return false;
  // FIFO among ties: the event with the smaller (when, seq) fires first,
  // whether it lives in the heap or in the periodic table.
  // A periodic key with slot bits 0 compares against heap keys exactly as
  // (when, seq) would: seqs are unique, so the slot bits never decide.
  const bool periodic_wins =
      p >= 0 && (!have_heap ||
                 MakeKey(periodic_[p].next, periodic_[p].seq, 0) <
                     heap_.front().key);
  if (periodic_wins) {
    fired->when = periodic_[p].next;
    fired->fn = EventFn(periodic_[p].handler);
    fired->periodic = static_cast<PeriodicId>(p);
    return true;
  }
  const HeapEntry& top = heap_.front();
  const std::uint32_t slot = HeapSlotOf(top.key);
  fired->when = WhenOf(top.key);
  fired->fn = slots_[slot].fn;
  fired->periodic = kNotPeriodic;
  FreeSlot(slot);
  --live_events_;
  HeapPopFront();
  return true;
}

void EventQueue::Rearm(PeriodicId id) {
  BDISK_CHECK_MSG(id < periodic_.size(), "unknown periodic timer");
  Periodic& p = periodic_[id];
  if (!p.live) return;  // Cancelled while its action ran.
  ++periodic_rearms_;
  p.next += p.interval;
  // Drawing the sequence number here — after the action ran — gives the
  // next occurrence exactly the FIFO position a hand-rescheduled event
  // would get, so same-time tie-breaks are bit-identical to the heap path.
  p.seq = next_seq_++;
}

void EventQueue::Clear() {
  heap_.clear();
  slots_.clear();
  periodic_.clear();
  free_head_ = kNilSlot;
  live_events_ = 0;
  live_periodic_ = 0;
}

}  // namespace bdisk::sim
