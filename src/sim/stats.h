#ifndef BDISK_SIM_STATS_H_
#define BDISK_SIM_STATS_H_

#include <cstdint>
#include <limits>

namespace bdisk::sim {

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long runs; O(1) memory. This is the primary
/// response-time metric collector: the paper reports "average response time
/// at the client measured in broadcast units".
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one (Chan et al. parallel form).
  void Merge(const RunningStats& other);

  /// Removes all observations.
  void Reset() { *this = RunningStats(); }

  /// Number of observations.
  std::uint64_t Count() const { return count_; }

  /// Arithmetic mean; 0 if empty.
  double Mean() const { return count_ == 0 ? 0.0 : mean_; }

  /// Unbiased sample variance; 0 with fewer than two observations.
  double Variance() const;

  /// Sample standard deviation.
  double StdDev() const;

  /// Standard error of the mean.
  double StdError() const;

  /// Smallest observation; +inf if empty.
  double Min() const { return min_; }

  /// Largest observation; -inf if empty.
  double Max() const { return max_; }

  /// Sum of all observations.
  double Sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace bdisk::sim

#endif  // BDISK_SIM_STATS_H_
