#ifndef BDISK_SIM_TRACE_H_
#define BDISK_SIM_TRACE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.h"

namespace bdisk::sim {

/// Kinds of traced events (broadcast server instrumentation).
enum class TraceEventKind : std::uint8_t {
  kSlotPush = 0,     // A scheduled page went out.
  kSlotPull,         // A pulled page went out.
  kSlotIdle,         // Nothing went out (padding / empty pull queue).
  kRequestAccepted,  // Backchannel request queued.
  kRequestCoalesced, // Backchannel request merged with a queued one.
  kRequestDropped,   // Backchannel request thrown away (queue full).
  kRequestShed,      // Request shed by degraded-mode admission control.
  kRequestOutage,    // Request discarded inside an outage window.
  kRequestLost,      // Request lost on the backchannel (fault injection).
  kSlotLost,         // Slot's page lost in transit (fault injection).
  kSlotCorrupt,      // Slot's page corrupted in transit (fault injection).
  kMaxValue,         // Sentinel; keep last.
};

/// Human-readable kind name.
const char* TraceEventKindName(TraceEventKind kind);

/// One traced event. `page` is the page involved (kNoPage-equivalent
/// 0xFFFFFFFF for idle slots).
struct TraceEvent {
  SimTime time;
  TraceEventKind kind;
  std::uint32_t page;
};

/// A bounded in-memory event trace.
///
/// Keeps the most recent `capacity` events in a ring (older events are
/// overwritten, counted in DroppedEvents()) plus exact per-kind lifetime
/// counts. Ring-overwrite semantics: once TotalEvents() exceeds the
/// capacity, each Record() silently replaces the oldest retained event, so
/// at all times DroppedEvents() + Events().size() == TotalEvents() and
/// Events() returns the most recent `capacity` events in time order.
/// Per-kind Count()s are lifetime counts and include overwritten events.
/// Intended for debugging simulations and asserting fine-grained behaviour
/// in tests; attach via BroadcastServer::SetTraceRecorder. For system-wide
/// spans across client/cache/server see obs::TraceSink.
class TraceRecorder {
 public:
  /// `capacity` >= 1 bounds memory; default keeps the last 64Ki events.
  explicit TraceRecorder(std::size_t capacity = 1 << 16);

  /// Appends one event.
  void Record(SimTime time, TraceEventKind kind, std::uint32_t page);

  /// Events currently retained, oldest first.
  std::vector<TraceEvent> Events() const;

  /// Lifetime count of events of `kind` (including overwritten ones).
  std::uint64_t Count(TraceEventKind kind) const;

  /// Total events ever recorded / lost to the ring bound.
  std::uint64_t TotalEvents() const { return total_; }
  std::uint64_t DroppedEvents() const;

  /// Renders retained events as CSV with a header row
  /// ("time,kind,page"). Only the retained window is exported: events lost
  /// to ring overwrite (DroppedEvents()) are absent from the output.
  std::string ToCsv() const;

  /// Forgets retained events and counters.
  void Clear();

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
  std::array<std::uint64_t, static_cast<std::size_t>(
                                TraceEventKind::kMaxValue)>
      counts_{};
};

}  // namespace bdisk::sim

#endif  // BDISK_SIM_TRACE_H_
