#ifndef BDISK_SIM_LAZY_SOURCE_H_
#define BDISK_SIM_LAZY_SOURCE_H_

#include <cstdint>

#include "sim/types.h"

namespace bdisk::sim {

/// An open-loop event source drained in batch instead of scheduling one
/// heap event per occurrence (event fusion).
///
/// A lazy source pre-draws the time of its next arrival and sits outside
/// the event heap. Whenever simulation state the source can affect is about
/// to be *observed* — a barrier — the simulator calls CatchUp(now), and the
/// source processes every arrival with timestamp <= now in timestamp order.
/// Between barriers no one can tell whether the arrivals have happened yet,
/// so deferring them is invisible: the fused run makes the identical RNG
/// draw sequence and identical side effects in the identical order as a
/// run that scheduled each arrival on the heap.
///
/// Eligibility contract (see DESIGN.md, "The lazy-source contract"):
///  - the source never blocks: each arrival's time depends only on the
///    source's own state, not on service or on other components;
///  - the source owns a private RNG stream;
///  - any mutable *external* state the source reads changes only at
///    barriers, so all arrivals in a drained batch observe the same value
///    of it — exactly what the heap interleaving would have shown them;
///  - everyone who reads state the source *writes* does so behind a
///    barrier.
class LazySource {
 public:
  virtual ~LazySource() = default;

  /// Absolute time of the next pending arrival; kTimeNever when the source
  /// is exhausted or not yet started. Must be non-decreasing between
  /// CatchUp calls.
  virtual SimTime NextArrivalTime() const = 0;

  /// Processes every pending arrival with timestamp <= `horizon`, in
  /// timestamp order, and returns how many were processed. After the call
  /// NextArrivalTime() > horizon (or kTimeNever).
  virtual std::uint64_t CatchUp(SimTime horizon) = 0;
};

}  // namespace bdisk::sim

#endif  // BDISK_SIM_LAZY_SOURCE_H_
