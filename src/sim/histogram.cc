#include "sim/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "sim/check.h"

namespace bdisk::sim {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)) {
  BDISK_CHECK_MSG(lo < hi, "histogram range must be non-empty");
  BDISK_CHECK_MSG(buckets >= 1, "histogram needs at least one bucket");
  counts_.assign(buckets, 0);
}

void Histogram::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  idx = std::min(idx, counts_.size() - 1);  // Guards FP edge at hi_.
  ++counts_[idx];
}

void Histogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  underflow_ = 0;
  overflow_ = 0;
  count_ = 0;
  min_ = 0.0;
  max_ = 0.0;
}

double Histogram::BucketLow(std::size_t i) const {
  return lo_ + static_cast<double>(i) * width_;
}

double Histogram::Quantile(double q) const {
  BDISK_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  if (count_ == 0) return lo_;
  const auto clamp = [this](double v) {
    return std::min(std::max(v, min_), max_);
  };
  const double target = q * static_cast<double>(count_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target) return clamp(lo_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return clamp(BucketLow(i) + frac * width_);
    }
    cum = next;
  }
  return clamp(hi_);
}

std::string Histogram::ToAscii(std::size_t max_width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar_len = static_cast<std::size_t>(
        std::llround(static_cast<double>(counts_[i]) * max_width /
                     static_cast<double>(peak)));
    std::snprintf(line, sizeof(line), "[%10.1f, %10.1f) %8llu ",
                  BucketLow(i), BucketLow(i) + width_,
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar_len, '#');
    out += '\n';
  }
  if (underflow_ > 0 || overflow_ > 0) {
    std::snprintf(line, sizeof(line), "underflow %llu, overflow %llu\n",
                  static_cast<unsigned long long>(underflow_),
                  static_cast<unsigned long long>(overflow_));
    out += line;
  }
  return out;
}

}  // namespace bdisk::sim
