#ifndef BDISK_SIM_ALIAS_SAMPLER_H_
#define BDISK_SIM_ALIAS_SAMPLER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/rng.h"

namespace bdisk::sim {

/// O(1) sampling from an arbitrary discrete distribution using Walker's
/// alias method (Vose's linear-time construction).
///
/// Construction is O(n); each Sample() costs one RNG draw, one table lookup
/// and one comparison. Used for the Zipf page-access distributions, which
/// are sampled tens of millions of times per experiment.
class AliasSampler {
 public:
  /// Builds a sampler over `weights` (all >= 0, at least one > 0). The
  /// weights need not be normalized.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Number of outcomes.
  std::size_t size() const { return prob_.size(); }

  /// Draws an index in [0, size()) with probability proportional to its
  /// weight. Inline: the per-arrival page draw sits on the batched
  /// arrival spine's fill loop, where the call overhead would rival the
  /// draw itself.
  std::size_t Sample(Rng& rng) const {
    const std::size_t bucket = rng.NextBounded(prob_.size());
    return rng.NextDouble() < prob_[bucket] ? bucket : alias_[bucket];
  }

  /// Bulk draw: fills `out[0..n)` with n outcomes, consuming the RNG
  /// stream draw-for-draw exactly like n successive Sample() calls (same
  /// values, same final RNG state). The batched form hoists the table
  /// pointers and RNG state into registers — this is the population-scale
  /// fill primitive for SoA client batches.
  void NextN(Rng& rng, std::uint32_t* out, std::size_t n) const {
    // Local RNG copy keeps the state in registers across the loop; the
    // per-draw sequence (NextBounded, then NextDouble) is exactly
    // Sample's, so the stream position after n draws matches n scalar
    // calls.
    Rng local = rng;
    const std::size_t size = prob_.size();
    const double* prob = prob_.data();
    const std::uint32_t* alias = alias_.data();
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t bucket = local.NextBounded(size);
      out[i] = local.NextDouble() < prob[bucket]
                   ? static_cast<std::uint32_t>(bucket)
                   : alias[bucket];
    }
    rng = local;
  }

  /// The normalized probability of outcome `i` (for tests/diagnostics).
  double Probability(std::size_t i) const { return normalized_[i]; }

 private:
  std::vector<double> prob_;         // Acceptance threshold per bucket.
  std::vector<std::uint32_t> alias_;  // Fallback outcome per bucket.
  std::vector<double> normalized_;   // Original distribution, normalized.
};

}  // namespace bdisk::sim

#endif  // BDISK_SIM_ALIAS_SAMPLER_H_
