#ifndef BDISK_SIM_ALIAS_SAMPLER_H_
#define BDISK_SIM_ALIAS_SAMPLER_H_

#include <cstddef>
#include <vector>

#include "sim/rng.h"

namespace bdisk::sim {

/// O(1) sampling from an arbitrary discrete distribution using Walker's
/// alias method (Vose's linear-time construction).
///
/// Construction is O(n); each Sample() costs one RNG draw, one table lookup
/// and one comparison. Used for the Zipf page-access distributions, which
/// are sampled tens of millions of times per experiment.
class AliasSampler {
 public:
  /// Builds a sampler over `weights` (all >= 0, at least one > 0). The
  /// weights need not be normalized.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Number of outcomes.
  std::size_t size() const { return prob_.size(); }

  /// Draws an index in [0, size()) with probability proportional to its
  /// weight.
  std::size_t Sample(Rng& rng) const;

  /// The normalized probability of outcome `i` (for tests/diagnostics).
  double Probability(std::size_t i) const { return normalized_[i]; }

 private:
  std::vector<double> prob_;         // Acceptance threshold per bucket.
  std::vector<std::uint32_t> alias_;  // Fallback outcome per bucket.
  std::vector<double> normalized_;   // Original distribution, normalized.
};

}  // namespace bdisk::sim

#endif  // BDISK_SIM_ALIAS_SAMPLER_H_
