#ifndef BDISK_SIM_EVENT_QUEUE_H_
#define BDISK_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <vector>

#include "sim/types.h"

namespace bdisk::sim {

/// The intrusive event-handler interface: components that receive timed
/// events implement OnEvent(). Storing a handler pointer costs one word and
/// never allocates, which is what keeps Schedule() allocation-free on the
/// simulation hot path.
///
/// The queue never owns handlers and never deletes through this base; a
/// handler must outlive every event that references it (cancel first, or
/// drain the queue). The destructor is virtual only so that concrete
/// subclasses compile cleanly under -Wnon-virtual-dtor; it does not imply
/// queue-side ownership.
class EventHandler {
 public:
  virtual ~EventHandler() = default;

  /// Fired when the scheduled event's time arrives.
  virtual void OnEvent() = 0;
};

/// The action attached to a scheduled event: either an EventHandler* or a
/// small inline callable. Replaces std::function<void()>, which heap-
/// allocates for any capturing lambda.
///
/// Inline callables are capped at two pointers of capture state and must be
/// trivially copyable/destructible (static_asserted), so an EventFn is a
/// flat, fixed-size value — copying one is a memcpy and destroying one is
/// free. Larger state belongs behind an EventHandler.
class EventFn {
 public:
  /// Capture budget for inline callables: two machine words.
  static constexpr std::size_t kInlineBytes = 2 * sizeof(void*);

  EventFn() = default;

  /// Wraps a handler; firing the event calls handler->OnEvent().
  EventFn(EventHandler* handler) : invoke_(&InvokeHandler) {  // NOLINT
    std::memcpy(storage_, &handler, sizeof(handler));
  }

  /// Wraps a small callable (captureless lambda, or captures totalling at
  /// most two pointers). Oversized or non-trivial callables fail to
  /// compile — route those through an EventHandler instead.
  template <typename F,
            typename = std::enable_if_t<
                std::is_invocable_v<F&> &&
                !std::is_convertible_v<F, EventHandler*> &&
                !std::is_same_v<std::decay_t<F>, EventFn>>>
  EventFn(F fn) : invoke_(&InvokeInline<F>) {  // NOLINT
    static_assert(sizeof(F) <= kInlineBytes,
                  "EventFn captures are capped at two pointers; use an "
                  "EventHandler for larger state");
    static_assert(std::is_trivially_copyable_v<F>,
                  "EventFn callables must be trivially copyable");
    static_assert(std::is_trivially_destructible_v<F>,
                  "EventFn callables must be trivially destructible");
    static_assert(alignof(F) <= alignof(void*),
                  "EventFn callables must not be over-aligned");
    ::new (static_cast<void*>(storage_)) F(fn);
  }

  /// True when an action is attached.
  explicit operator bool() const { return invoke_ != nullptr; }

  /// Runs the action.
  void operator()() { invoke_(storage_); }

 private:
  using Thunk = void (*)(void*);

  static void InvokeHandler(void* storage) {
    EventHandler* handler;
    std::memcpy(&handler, storage, sizeof(handler));
    handler->OnEvent();
  }

  template <typename F>
  static void InvokeInline(void* storage) {
    (*std::launder(reinterpret_cast<F*>(storage)))();
  }

  Thunk invoke_ = nullptr;
  alignas(void*) unsigned char storage_[kInlineBytes] = {};
};

static_assert(sizeof(EventFn) <= 3 * sizeof(void*),
              "EventFn must stay a flat three-word value");
static_assert(std::is_trivially_copyable_v<EventFn>);

/// Handle to a periodic timer registered with SchedulePeriodic().
using PeriodicId = std::uint32_t;

/// A time-ordered priority queue of events, allocation-free in steady
/// state.
///
/// Events scheduled for the same time fire in FIFO order of scheduling
/// (stable tie-breaking by a monotonic sequence number), which makes
/// simulations deterministic. Event ids are generation-tagged slots over a
/// free-list slab: Cancel()/IsPending() are a bounds check plus a
/// generation compare (no hashing), and cancellation stays lazy — stale
/// heap entries are skipped at pop time, so Cancel() is O(1) and Pop()
/// stays O(log n) amortized.
///
/// Periodic timers (SchedulePeriodic) bypass the heap entirely: the next
/// fire time of a periodic event is always known, so the dominant
/// fixed-interval event class (the broadcast slot loop) costs no heap
/// push/pop per occurrence. After a periodic event pops and its action
/// runs, the caller re-arms it with Rearm(); the fresh sequence number is
/// drawn at re-arm time, which reproduces exactly the FIFO position the
/// event would have had if the handler had rescheduled it by hand.
class EventQueue {
 public:
  /// A popped event: the fire time, the action to run, and — for periodic
  /// events — the timer to Rearm() after the action returns.
  struct Fired {
    SimTime when = 0.0;
    EventFn fn;
    PeriodicId periodic = kNotPeriodic;
  };

  /// Marks a Fired as a one-shot event.
  static constexpr PeriodicId kNotPeriodic = 0xFFFFFFFFu;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `fn` to fire at absolute time `when`.
  /// Returns an id usable with Cancel(). `when` must be finite and
  /// nonnegative (simulated time starts at 0).
  EventId Schedule(SimTime when, EventFn fn);

  /// Registers a periodic timer: `handler->OnEvent()` fires at `first`,
  /// then every `interval` after each Rearm(). `interval` must be positive
  /// and finite. The handler is not owned and must outlive the timer.
  PeriodicId SchedulePeriodic(SimTime first, SimTime interval,
                              EventHandler* handler);

  /// Cancels a previously scheduled event. Cancelling an id that already
  /// fired (or was already cancelled) is a harmless no-op.
  void Cancel(EventId id);

  /// Stops a periodic timer. Harmless if already cancelled.
  void CancelPeriodic(PeriodicId id);

  /// True iff `id` is scheduled and not yet fired or cancelled.
  bool IsPending(EventId id) const {
    const std::uint32_t slot = SlotOf(id);
    return slot < slots_.size() && slots_[slot].generation == GenerationOf(id);
  }

  /// True when no live events (one-shot or periodic) remain.
  bool Empty() const { return live_events_ == 0 && live_periodic_ == 0; }

  /// Number of live events, counting each live periodic timer once.
  std::size_t Size() const { return live_events_ + live_periodic_; }

  /// Time of the earliest live event, or kTimeNever when empty.
  SimTime NextTime();

  /// Kernel profiling: the deepest the heap has ever been (stale entries
  /// included — this bounds sift cost and memory, which is what matters).
  std::size_t HeapHighWater() const { return heap_high_water_; }

  /// Kernel profiling: lifetime count of periodic-timer re-arms — the
  /// occurrences that rode the fast path instead of the heap.
  std::uint64_t PeriodicRearms() const { return periodic_rearms_; }

  /// Removes and returns the earliest live event (FIFO among ties).
  /// Returns false when Empty(). If the popped event is periodic, the
  /// caller must invoke Rearm(fired->periodic) after running fired->fn —
  /// until then the timer is quiescent and will not fire again.
  bool Pop(Fired* fired);

  /// Re-arms a popped periodic timer: advances its fire time by one
  /// interval and assigns it the next FIFO sequence number. No-op if the
  /// timer was cancelled while its action ran.
  void Rearm(PeriodicId id);

  /// Drops all events and periodic timers.
  void Clear();

 private:
  // One-shot events live in a slab indexed by the low id bits; the heap
  // holds only a 16-byte ordering key per event, so sift operations never
  // touch the action payload.
  //
  // `live_seq` is the sequence number of the event currently occupying the
  // slot (0 when free: real sequence numbers start at 1). A heap entry is
  // stale exactly when its packed seq no longer matches, which replaces a
  // per-entry generation tag with a compare the pop path needs anyway.
  struct Slot {
    EventFn fn;
    std::uint64_t live_seq = 0;
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNilSlot;
  };
  // The whole (when, seq, slot) record packs into one 128-bit integer key
  // that sorts exactly like the tuple: event times are nonnegative finite
  // doubles, whose IEEE-754 bit patterns order identically to the values,
  // so `when`'s bits go in the high 64 bits, the sequence number above the
  // slot index in the low 64. One integer compare per sift step keeps the
  // (serial, latency-bound) sift dependency chain as short as possible.
  // The slot bits can never decide an ordering — seqs are unique.
  struct HeapEntry {
    unsigned __int128 key;
  };
  struct Periodic {
    SimTime next = kTimeNever;
    SimTime interval = 0.0;
    std::uint64_t seq = 0;
    EventHandler* handler = nullptr;
    bool live = false;
  };

  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFFu;

  // 4-ary min-heap on (when, seq): half the levels of a binary heap and
  // four children per cache line of 24-byte entries, which makes the
  // pop-side sift-down measurably cheaper at simulation depths. Any
  // correct heap yields the same pop order — (when, seq) is a total
  // order — so arity is purely a performance choice.
  static constexpr std::size_t kHeapArity = 4;

  static bool Before(const HeapEntry& a, const HeapEntry& b);
  bool IsStale(const HeapEntry& entry) const;
  void HeapPush(const HeapEntry& entry);
  void HeapPopFront();

  static std::uint32_t SlotOf(EventId id) {
    return static_cast<std::uint32_t>(id);
  }
  static std::uint32_t GenerationOf(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static EventId MakeId(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) | slot;
  }

  // Retires a slot: bumps the generation (invalidating outstanding ids and
  // stale heap entries) and returns it to the free list.
  void FreeSlot(std::uint32_t slot);

  // Discards heap entries whose slot generation moved on (cancelled or
  // superseded) sitting at the top of the heap.
  void SkipStale();

  // Index of the earliest live periodic timer, or -1.
  int EarliestPeriodic() const;

  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<Periodic> periodic_;
  std::uint32_t free_head_ = kNilSlot;
  std::uint64_t next_seq_ = 1;
  std::size_t live_events_ = 0;    // Scheduled one-shots, not fired/cancelled.
  std::size_t live_periodic_ = 0;  // Registered, uncancelled periodic timers.
  std::size_t heap_high_water_ = 0;   // Deepest heap size ever reached.
  std::uint64_t periodic_rearms_ = 0;  // Fast-path re-arms (profiling).
};

}  // namespace bdisk::sim

#endif  // BDISK_SIM_EVENT_QUEUE_H_
