#ifndef BDISK_SIM_EVENT_QUEUE_H_
#define BDISK_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/types.h"

namespace bdisk::sim {

/// A time-ordered priority queue of events.
///
/// Events scheduled for the same time fire in FIFO order of scheduling
/// (stable tie-breaking by EventId), which makes simulations deterministic.
/// Cancellation is lazy: cancelled entries are skipped at pop time, so
/// Cancel() is O(1) and Pop() stays O(log n) amortized.
class EventQueue {
 public:
  /// The action to run when an event fires.
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `callback` to fire at absolute time `when`.
  /// Returns an id usable with Cancel(). `when` must be finite.
  EventId Schedule(SimTime when, Callback callback);

  /// Cancels a previously scheduled event. Cancelling an id that already
  /// fired (or was already cancelled) is a harmless no-op.
  void Cancel(EventId id);

  /// True iff `id` is scheduled and not yet fired or cancelled.
  bool IsPending(EventId id) const { return pending_.count(id) != 0; }

  /// True when no live (non-cancelled) events remain.
  bool Empty() const { return pending_.empty(); }

  /// Number of live events.
  std::size_t Size() const { return pending_.size(); }

  /// Time of the earliest live event, or kTimeNever when empty.
  SimTime NextTime();

  /// Removes and returns the earliest live event. Must not be called when
  /// Empty(). Out-parameters receive the fire time and the callback.
  void Pop(SimTime* when, Callback* callback);

  /// Drops all events.
  void Clear();

 private:
  struct Entry {
    SimTime when;
    EventId id;
    Callback callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;  // Earlier-scheduled events fire first.
    }
  };

  // Discards cancelled entries sitting at the top of the heap.
  void SkipCancelled();

  std::vector<Entry> heap_;
  std::unordered_set<EventId> pending_;  // Scheduled, not fired or cancelled.
  EventId next_id_ = 1;                  // 0 is kInvalidEventId.
};

}  // namespace bdisk::sim

#endif  // BDISK_SIM_EVENT_QUEUE_H_
