#ifndef BDISK_SIM_EVENT_QUEUE_H_
#define BDISK_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <vector>

#include "sim/types.h"

namespace bdisk::sim {

/// The intrusive event-handler interface: components that receive timed
/// events implement OnEvent(). Storing a handler pointer costs one word and
/// never allocates, which is what keeps Schedule() allocation-free on the
/// simulation hot path.
///
/// The queue never owns handlers and never deletes through this base; a
/// handler must outlive every event that references it (cancel first, or
/// drain the queue). The destructor is virtual only so that concrete
/// subclasses compile cleanly under -Wnon-virtual-dtor; it does not imply
/// queue-side ownership.
class EventHandler {
 public:
  virtual ~EventHandler() = default;

  /// Fired when the scheduled event's time arrives.
  virtual void OnEvent() = 0;
};

/// The action attached to a scheduled event: either an EventHandler* or a
/// small inline callable. Replaces std::function<void()>, which heap-
/// allocates for any capturing lambda.
///
/// Inline callables are capped at two pointers of capture state and must be
/// trivially copyable/destructible (static_asserted), so an EventFn is a
/// flat, fixed-size value — copying one is a memcpy and destroying one is
/// free. Larger state belongs behind an EventHandler.
class EventFn {
 public:
  /// Capture budget for inline callables: two machine words.
  static constexpr std::size_t kInlineBytes = 2 * sizeof(void*);

  EventFn() = default;

  /// Wraps a handler; firing the event calls handler->OnEvent().
  EventFn(EventHandler* handler) : invoke_(&InvokeHandler) {  // NOLINT
    std::memcpy(storage_, &handler, sizeof(handler));
  }

  /// Wraps a small callable (captureless lambda, or captures totalling at
  /// most two pointers). Oversized or non-trivial callables fail to
  /// compile — route those through an EventHandler instead.
  template <typename F,
            typename = std::enable_if_t<
                std::is_invocable_v<F&> &&
                !std::is_convertible_v<F, EventHandler*> &&
                !std::is_same_v<std::decay_t<F>, EventFn>>>
  EventFn(F fn) : invoke_(&InvokeInline<F>) {  // NOLINT
    static_assert(sizeof(F) <= kInlineBytes,
                  "EventFn captures are capped at two pointers; use an "
                  "EventHandler for larger state");
    static_assert(std::is_trivially_copyable_v<F>,
                  "EventFn callables must be trivially copyable");
    static_assert(std::is_trivially_destructible_v<F>,
                  "EventFn callables must be trivially destructible");
    static_assert(alignof(F) <= alignof(void*),
                  "EventFn callables must not be over-aligned");
    ::new (static_cast<void*>(storage_)) F(fn);
  }

  /// True when an action is attached.
  explicit operator bool() const { return invoke_ != nullptr; }

  /// Runs the action.
  void operator()() { invoke_(storage_); }

 private:
  using Thunk = void (*)(void*);

  static void InvokeHandler(void* storage) {
    EventHandler* handler;
    std::memcpy(&handler, storage, sizeof(handler));
    handler->OnEvent();
  }

  template <typename F>
  static void InvokeInline(void* storage) {
    (*std::launder(reinterpret_cast<F*>(storage)))();
  }

  Thunk invoke_ = nullptr;
  alignas(void*) unsigned char storage_[kInlineBytes] = {};
};

static_assert(sizeof(EventFn) <= 3 * sizeof(void*),
              "EventFn must stay a flat three-word value");
static_assert(std::is_trivially_copyable_v<EventFn>);

/// Handle to a periodic timer registered with SchedulePeriodic().
using PeriodicId = std::uint32_t;

/// One-shot queue backend. Both backends order events by the same 128-bit
/// (when, seq, slot) key, so pop order — including the FIFO tie-break at
/// equal timestamps — is bit-identical between them; the choice is purely a
/// performance trade (see DESIGN.md, "The event kernel").
enum class QueueKind : std::uint8_t {
  /// 4-ary min-heap: O(log n) push/pop, no assumptions about time.
  kHeap,
  /// Hierarchical calendar (timing-wheel) queue tuned to the broadcast-unit
  /// clock: amortized O(1) insert and pop for the simulation's actual event
  /// mix, where events cluster within a few hundred units of the clock.
  kWheel,
};

/// Backend used by EventQueue instances that do not pass an explicit kind:
/// kWheel, unless the BDISK_KERNEL_QUEUE environment variable is set to
/// "heap" or "wheel" (the CI kernel-matrix escape hatch; read once).
QueueKind DefaultQueueKind();

/// A time-ordered priority queue of events, allocation-free in steady
/// state.
///
/// Events scheduled for the same time fire in FIFO order of scheduling
/// (stable tie-breaking by a monotonic sequence number), which makes
/// simulations deterministic. Event ids are generation-tagged slots over a
/// free-list slab: Cancel()/IsPending() are a bounds check plus a
/// generation compare (no hashing), and cancellation stays lazy — stale
/// entries are skipped when the queue reaches them, so Cancel() is O(1).
///
/// Periodic timers (SchedulePeriodic) bypass the one-shot structure
/// entirely: the next fire time of a periodic event is always known, so the
/// dominant fixed-interval event class (the broadcast slot loop) costs no
/// push/pop per occurrence. After a periodic event pops and its action
/// runs, the caller re-arms it with Rearm(); the fresh sequence number is
/// drawn at re-arm time, which reproduces exactly the FIFO position the
/// event would have had if the handler had rescheduled it by hand.
class EventQueue {
 public:
  /// A popped event: the fire time, the action to run, and — for periodic
  /// events — the timer to Rearm() after the action returns.
  struct Fired {
    SimTime when = 0.0;
    EventFn fn;
    PeriodicId periodic = kNotPeriodic;
  };

  /// Marks a Fired as a one-shot event.
  static constexpr PeriodicId kNotPeriodic = 0xFFFFFFFFu;

  explicit EventQueue(QueueKind kind = DefaultQueueKind());
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// The backend this queue was constructed with.
  QueueKind kind() const { return kind_; }

  /// Schedules `fn` to fire at absolute time `when`.
  /// Returns an id usable with Cancel(). `when` must be finite and
  /// nonnegative (simulated time starts at 0).
  EventId Schedule(SimTime when, EventFn fn);

  /// Registers a periodic timer: `handler->OnEvent()` fires at `first`,
  /// then every `interval` after each Rearm(). `interval` must be positive
  /// and finite. The handler is not owned and must outlive the timer.
  PeriodicId SchedulePeriodic(SimTime first, SimTime interval,
                              EventHandler* handler);

  /// Cancels a previously scheduled event. Cancelling an id that already
  /// fired (or was already cancelled) is a harmless no-op.
  void Cancel(EventId id);

  /// Stops a periodic timer. Harmless if already cancelled.
  void CancelPeriodic(PeriodicId id);

  /// True iff `id` is scheduled and not yet fired or cancelled.
  bool IsPending(EventId id) const {
    const std::uint32_t slot = SlotOf(id);
    return slot < slots_.size() && slots_[slot].generation == GenerationOf(id);
  }

  /// True when no live events (one-shot or periodic) remain.
  bool Empty() const { return live_events_ == 0 && live_periodic_ == 0; }

  /// Number of live events, counting each live periodic timer once.
  std::size_t Size() const { return live_events_ + live_periodic_; }

  /// Time of the earliest live event, or kTimeNever when empty.
  SimTime NextTime();

  /// Kernel profiling: the most entries the one-shot structure (heap, or
  /// wheel buckets + staging run) has ever held, stale entries included —
  /// this bounds memory and per-operation cost, which is what matters.
  std::size_t HeapHighWater() const { return high_water_; }

  /// Kernel profiling: lifetime count of periodic-timer re-arms — the
  /// occurrences that rode the fast path instead of the one-shot structure.
  std::uint64_t PeriodicRearms() const { return periodic_rearms_; }

  /// Kernel profiling: lazily-cancelled entries physically discarded so
  /// far. Every cancelled event leaves one stale entry behind, and each is
  /// counted exactly once — when the heap pops it or the wheel filters it
  /// out of a bucket — never again when buckets are recycled, so after a
  /// full drain this equals the number of effective Cancel() calls.
  std::uint64_t StaleDiscarded() const { return stale_discarded_; }

  /// Incremented whenever the set of live events changes shape: Schedule,
  /// effective Cancel/CancelPeriodic, SchedulePeriodic, Clear. NOT bumped
  /// by Pop or Rearm. Batched execution (see PeriodicSpan) uses this to
  /// detect that a handler scheduled or cancelled something mid-span.
  std::uint64_t MutationEpoch() const { return mutation_epoch_; }

  /// Batched-execution support: returns true iff exactly one live periodic
  /// timer exists and its next occurrence fires strictly before every live
  /// one-shot event. Outputs the timer, its handler, and the barrier — the
  /// time of the earliest live one-shot (kTimeNever if none). While
  /// MutationEpoch() is unchanged and PeriodicNextTime(*id) stays strictly
  /// below the barrier, the caller may fire occurrences back-to-back
  /// (OnEvent + Rearm) without going through Pop(); the result is
  /// bit-identical to per-event stepping because within the span no other
  /// event can be due (ties at the barrier report false, so the seq
  /// tie-break always goes through Pop()).
  bool PeriodicSpan(PeriodicId* id, EventHandler** handler, SimTime* barrier);

  /// Next fire time of a periodic timer; kTimeNever if cancelled.
  SimTime PeriodicNextTime(PeriodicId id) const {
    return periodic_[id].live ? periodic_[id].next : kTimeNever;
  }

  /// Removes and returns the earliest live event (FIFO among ties).
  /// Returns false when Empty(). If the popped event is periodic, the
  /// caller must invoke Rearm(fired->periodic) after running fired->fn —
  /// until then the timer is quiescent and will not fire again.
  bool Pop(Fired* fired);

  /// Re-arms a popped periodic timer: advances its fire time by one
  /// interval and assigns it the next FIFO sequence number. No-op if the
  /// timer was cancelled while its action ran.
  void Rearm(PeriodicId id);

  /// Drops all events and periodic timers.
  void Clear();

 private:
  // One-shot events live in a slab indexed by the low id bits; the
  // ordering structures hold only a 16-byte key per event, so sift/sort
  // operations never touch the action payload.
  //
  // `live_seq` is the sequence number of the event currently occupying the
  // slot (0 when free: real sequence numbers start at 1). A stored entry is
  // stale exactly when its packed seq no longer matches, which replaces a
  // per-entry generation tag with a compare the pop path needs anyway.
  // live_seq leads the layout: it is the one field every stale test loads.
  struct Slot {
    std::uint64_t live_seq = 0;
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNilSlot;
    EventFn fn;
  };
  // The whole (when, seq, slot) record packs into one 128-bit integer key
  // that sorts exactly like the tuple: event times are nonnegative finite
  // doubles, whose IEEE-754 bit patterns order identically to the values,
  // so `when`'s bits go in the high 64 bits, the sequence number above the
  // slot index in the low 64. One integer compare per sift step keeps the
  // (serial, latency-bound) sift dependency chain as short as possible.
  // The slot bits can never decide an ordering — seqs are unique. Both
  // backends order by this same key, which is why their pop streams agree
  // to the bit.
  struct HeapEntry {
    unsigned __int128 key;
  };
  struct Periodic {
    SimTime next = kTimeNever;
    SimTime interval = 0.0;
    std::uint64_t seq = 0;
    EventHandler* handler = nullptr;
    bool live = false;
  };

  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFFu;

  // 4-ary min-heap on (when, seq): half the levels of a binary heap and
  // four children per cache line of 16-byte entries, which makes the
  // pop-side sift-down measurably cheaper at simulation depths. Any
  // correct heap yields the same pop order — (when, seq) is a total
  // order — so arity is purely a performance choice.
  static constexpr std::size_t kHeapArity = 4;

  // Calendar wheel geometry: two levels of 1024 buckets. Level 0 buckets
  // are one broadcast unit ("day") wide; level 1 buckets are 1024 days
  // ("hour") wide; anything farther than ~2^20 days out waits in an
  // overflow list. Think times and retry intervals are tens-to-hundreds of
  // units, so in practice every event lands in level 0 and never cascades.
  static constexpr unsigned kWheelShift = 10;
  static constexpr std::uint64_t kWheelBuckets = 1u << kWheelShift;
  static constexpr std::size_t kBitmapWords = kWheelBuckets / 64;
  static constexpr std::uint64_t kNoDay = ~std::uint64_t{0};

  static bool Before(const HeapEntry& a, const HeapEntry& b);
  bool IsStale(const HeapEntry& entry) const;
  void HeapPush(const HeapEntry& entry);
  void HeapPopFront();

  // Wheel backend. Invariants: the staging run due_[due_cursor_..] is
  // sorted by key and holds exactly the stored entries whose day (floor of
  // the fire time) is <= day_; every bucket/overflow entry has day > day_.
  void WheelInsert(unsigned __int128 key);
  bool WheelPeek();          // Ensures due_[due_cursor_] is the live min.
  void WheelAdvance();       // Moves day_ to the next stored day; refills due_.
  void HarvestDay(std::uint64_t day);
  void CascadeHour(std::uint64_t hour);
  void RedistributeOverflow();
  void AppendLiveToDue(std::vector<HeapEntry>* bucket);
  void SortDue();

  static std::uint32_t SlotOf(EventId id) {
    return static_cast<std::uint32_t>(id);
  }
  static std::uint32_t GenerationOf(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static EventId MakeId(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) | slot;
  }

  // Retires a slot: bumps the generation (invalidating outstanding ids and
  // stale stored entries) and returns it to the free list.
  void FreeSlot(std::uint32_t slot);

  // Discards heap entries whose slot generation moved on (cancelled)
  // sitting at the top of the heap.
  void SkipStale();

  // Earliest live one-shot entry, or nullptr. For the heap this is the
  // (stale-skipped) root; for the wheel, the staging-run cursor.
  const HeapEntry* PeekOneShot();
  // Removes the entry PeekOneShot() returned. Slot bookkeeping is the
  // caller's job.
  void PopOneShot();

  // Index of the earliest live periodic timer, or -1.
  int EarliestPeriodic() const;

  QueueKind kind_;
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<Periodic> periodic_;
  std::uint32_t free_head_ = kNilSlot;
  std::uint64_t next_seq_ = 1;
  std::size_t live_events_ = 0;    // Scheduled one-shots, not fired/cancelled.
  std::size_t live_periodic_ = 0;  // Registered, uncancelled periodic timers.
  std::size_t high_water_ = 0;     // Deepest the one-shot store ever got.
  std::uint64_t periodic_rearms_ = 0;  // Fast-path re-arms (profiling).
  std::uint64_t stale_discarded_ = 0;  // Cancelled entries retired (once).
  std::uint64_t mutation_epoch_ = 0;   // See MutationEpoch().

  // Wheel backend state (empty vectors for kHeap).
  std::vector<HeapEntry> due_;  // Sorted staging run for days <= day_.
  std::size_t due_cursor_ = 0;  // First unconsumed due_ entry.
  std::vector<std::vector<HeapEntry>> l0_;  // kWheelBuckets day buckets.
  std::vector<std::vector<HeapEntry>> l1_;  // kWheelBuckets hour buckets.
  std::vector<HeapEntry> overflow_;         // Beyond the level-1 horizon.
  std::uint64_t l0_bits_[kBitmapWords] = {};  // Bucket-occupancy bitmaps:
  std::uint64_t l1_bits_[kBitmapWords] = {};  // next-nonempty-day in O(1).
  std::uint64_t day_ = 0;
  std::uint64_t overflow_min_day_ = kNoDay;  // Min day stored in overflow_.
  std::size_t wheel_stored_ = 0;  // Entries in due_ run + buckets + overflow.
};

}  // namespace bdisk::sim

#endif  // BDISK_SIM_EVENT_QUEUE_H_
