#include "sim/process.h"

namespace bdisk::sim {

Process::~Process() { CancelWakeup(); }

void Process::OnEvent() {
  wakeup_id_ = kInvalidEventId;
  OnWakeup();
}

void Process::ScheduleWakeup(SimTime delay) {
  CancelWakeup();
  wakeup_id_ = simulator_->ScheduleAfter(delay, this);
}

void Process::CancelWakeup() {
  if (wakeup_id_ != kInvalidEventId) {
    simulator_->Cancel(wakeup_id_);
    wakeup_id_ = kInvalidEventId;
  }
}

bool Process::WakeupPending() const {
  return wakeup_id_ != kInvalidEventId && simulator_->IsPending(wakeup_id_);
}

}  // namespace bdisk::sim
