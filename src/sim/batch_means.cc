#include "sim/batch_means.h"

#include <cmath>

#include "sim/check.h"

namespace bdisk::sim {

BatchMeans::BatchMeans(std::uint64_t batch_size, double tolerance,
                       std::uint32_t window)
    : batch_size_(batch_size), tolerance_(tolerance), window_(window) {
  BDISK_CHECK_MSG(batch_size >= 1, "batch size must be positive");
  BDISK_CHECK_MSG(tolerance > 0.0, "tolerance must be positive");
  BDISK_CHECK_MSG(window >= 1, "window must be positive");
}

bool BatchMeans::Add(double x) {
  overall_.Add(x);
  current_batch_.Add(x);
  if (current_batch_.Count() < batch_size_) return stable_;

  const double batch_mean = current_batch_.Mean();
  batch_means_.push_back(batch_mean);
  current_batch_.Reset();

  const double overall_mean = overall_.Mean();
  // Relative deviation; an absolute floor of `tolerance_` handles
  // near-zero means (e.g. Pure-Pull at light load, ~2 units).
  const double scale = std::max(std::fabs(overall_mean), 1.0);
  if (std::fabs(batch_mean - overall_mean) <= tolerance_ * scale) {
    if (++consecutive_ok_ >= window_) stable_ = true;
  } else {
    consecutive_ok_ = 0;
  }
  return stable_;
}

}  // namespace bdisk::sim
