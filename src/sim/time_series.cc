#include "sim/time_series.h"

#include "sim/check.h"

namespace bdisk::sim {

void TimeSeries::Add(SimTime time, double value) {
  BDISK_CHECK_MSG(samples_.empty() || time >= samples_.back().time,
                  "TimeSeries times must be non-decreasing");
  samples_.push_back(Sample{time, value});
}

SimTime TimeSeries::FirstTimeAtOrAbove(double threshold) const {
  for (const Sample& s : samples_) {
    if (s.value >= threshold) return s.time;
  }
  return kTimeNever;
}

}  // namespace bdisk::sim
