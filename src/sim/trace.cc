#include "sim/trace.h"

#include <cstdio>

#include "sim/check.h"

namespace bdisk::sim {

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSlotPush:
      return "slot_push";
    case TraceEventKind::kSlotPull:
      return "slot_pull";
    case TraceEventKind::kSlotIdle:
      return "slot_idle";
    case TraceEventKind::kRequestAccepted:
      return "request_accepted";
    case TraceEventKind::kRequestCoalesced:
      return "request_coalesced";
    case TraceEventKind::kRequestDropped:
      return "request_dropped";
    case TraceEventKind::kRequestShed:
      return "request_shed";
    case TraceEventKind::kRequestOutage:
      return "request_outage";
    case TraceEventKind::kRequestLost:
      return "request_lost";
    case TraceEventKind::kSlotLost:
      return "slot_lost";
    case TraceEventKind::kSlotCorrupt:
      return "slot_corrupt";
    case TraceEventKind::kMaxValue:
      break;
  }
  return "?";
}

TraceRecorder::TraceRecorder(std::size_t capacity) : capacity_(capacity) {
  BDISK_CHECK_MSG(capacity >= 1, "trace capacity must be positive");
  ring_.reserve(capacity);
}

void TraceRecorder::Record(SimTime time, TraceEventKind kind,
                           std::uint32_t page) {
  BDISK_DCHECK(kind < TraceEventKind::kMaxValue);
  ++counts_[static_cast<std::size_t>(kind)];
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(TraceEvent{time, kind, page});
  } else {
    ring_[next_] = TraceEvent{time, kind, page};
  }
  next_ = (next_ + 1) % capacity_;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::vector<TraceEvent> ordered;
  ordered.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    ordered = ring_;
  } else {
    // Ring is full: next_ points at the oldest entry.
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      ordered.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return ordered;
}

std::uint64_t TraceRecorder::Count(TraceEventKind kind) const {
  BDISK_DCHECK(kind < TraceEventKind::kMaxValue);
  return counts_[static_cast<std::size_t>(kind)];
}

std::uint64_t TraceRecorder::DroppedEvents() const {
  return total_ - ring_.size();
}

std::string TraceRecorder::ToCsv() const {
  std::string out = "time,kind,page\n";
  char line[96];
  for (const TraceEvent& event : Events()) {
    std::snprintf(line, sizeof(line), "%.3f,%s,%u\n", event.time,
                  TraceEventKindName(event.kind), event.page);
    out += line;
  }
  return out;
}

void TraceRecorder::Clear() {
  ring_.clear();
  next_ = 0;
  total_ = 0;
  counts_.fill(0);
}

}  // namespace bdisk::sim
