#include "sim/simulator.h"

#include "sim/check.h"

namespace bdisk::sim {

EventId Simulator::ScheduleAt(SimTime when, EventFn fn) {
  BDISK_CHECK_MSG(when >= now_, "cannot schedule an event in the past");
  return queue_.Schedule(when, fn);
}

EventId Simulator::ScheduleAfter(SimTime delay, EventFn fn) {
  BDISK_CHECK_MSG(delay >= 0.0, "negative delay");
  return queue_.Schedule(now_ + delay, fn);
}

PeriodicId Simulator::SchedulePeriodic(SimTime interval,
                                       EventHandler* handler) {
  return queue_.SchedulePeriodic(now_ + interval, interval, handler);
}

void Simulator::Run() {
  stop_requested_ = false;
  while (!stop_requested_ && Step()) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  stop_requested_ = false;
  while (!stop_requested_) {
    const SimTime next = queue_.NextTime();
    if (next == kTimeNever || next > deadline) break;
    Step();
  }
  if (!stop_requested_ && now_ < deadline) now_ = deadline;
}

bool Simulator::Step() {
  EventQueue::Fired fired;
  if (!queue_.Pop(&fired)) return false;
  BDISK_DCHECK(fired.when >= now_);
  now_ = fired.when;
  ++events_executed_;
  fired.fn();
  // Re-arming after the action ran draws the next occurrence's FIFO
  // sequence number at the same point a hand-rescheduling handler would,
  // keeping same-time tie-breaks identical to the heap path.
  if (fired.periodic != EventQueue::kNotPeriodic) queue_.Rearm(fired.periodic);
  return true;
}

}  // namespace bdisk::sim
