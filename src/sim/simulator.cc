#include "sim/simulator.h"

#include <utility>

#include "sim/check.h"

namespace bdisk::sim {

EventId Simulator::ScheduleAt(SimTime when, EventQueue::Callback callback) {
  BDISK_CHECK_MSG(when >= now_, "cannot schedule an event in the past");
  return queue_.Schedule(when, std::move(callback));
}

EventId Simulator::ScheduleAfter(SimTime delay,
                                 EventQueue::Callback callback) {
  BDISK_CHECK_MSG(delay >= 0.0, "negative delay");
  return queue_.Schedule(now_ + delay, std::move(callback));
}

void Simulator::Run() {
  stop_requested_ = false;
  while (!stop_requested_ && Step()) {
  }
}

void Simulator::RunUntil(SimTime deadline) {
  stop_requested_ = false;
  while (!stop_requested_) {
    const SimTime next = queue_.NextTime();
    if (next == kTimeNever || next > deadline) break;
    Step();
  }
  if (!stop_requested_ && now_ < deadline) now_ = deadline;
}

bool Simulator::Step() {
  if (queue_.Empty()) return false;
  SimTime when = 0.0;
  EventQueue::Callback callback;
  queue_.Pop(&when, &callback);
  BDISK_DCHECK(when >= now_);
  now_ = when;
  ++events_executed_;
  callback();
  return true;
}

}  // namespace bdisk::sim
