#include "sim/simulator.h"

#include <algorithm>

#include "sim/check.h"

namespace bdisk::sim {

EventId Simulator::ScheduleAt(SimTime when, EventFn fn) {
  BDISK_CHECK_MSG(when >= now_, "cannot schedule an event in the past");
  obs::PhaseScope prof(profiler_, obs::Phase::kQueueSchedule);
  return queue_.Schedule(when, fn);
}

EventId Simulator::ScheduleAfter(SimTime delay, EventFn fn) {
  BDISK_CHECK_MSG(delay >= 0.0, "negative delay");
  obs::PhaseScope prof(profiler_, obs::Phase::kQueueSchedule);
  return queue_.Schedule(now_ + delay, fn);
}

PeriodicId Simulator::SchedulePeriodic(SimTime interval,
                                       EventHandler* handler) {
  return queue_.SchedulePeriodic(now_ + interval, interval, handler);
}

void Simulator::RegisterLazySource(LazySource* source) {
  BDISK_CHECK_MSG(source != nullptr, "null lazy source");
  lazy_sources_.push_back(source);
}

void Simulator::UnregisterLazySource(LazySource* source) {
  lazy_sources_.erase(
      std::remove(lazy_sources_.begin(), lazy_sources_.end(), source),
      lazy_sources_.end());
}

void Simulator::CatchUpLazySources() {
  // Reentrancy: a drained arrival's side effects (e.g. a queue submit) may
  // reach another barrier. The outer drain already delivers arrivals in
  // timestamp order, so the nested call has nothing left to add.
  if (draining_ || lazy_sources_.empty()) return;
  draining_ = true;
  obs::PhaseScope prof(profiler_, obs::Phase::kDrain);
  std::uint64_t processed = 0;
  if (lazy_sources_.size() == 1) {
    processed = lazy_sources_.front()->CatchUp(now_);
  } else {
    // Multiple sources: drain the earliest one only up to the runner-up's
    // next arrival, repeatedly, so cross-source arrivals stay in global
    // timestamp order (ties resolved by registration order).
    for (;;) {
      LazySource* earliest = nullptr;
      SimTime first = kTimeNever;
      SimTime second = kTimeNever;
      for (LazySource* source : lazy_sources_) {
        const SimTime next = source->NextArrivalTime();
        if (next < first) {
          second = first;
          first = next;
          earliest = source;
        } else if (next < second) {
          second = next;
        }
      }
      if (earliest == nullptr || first > now_) break;
      processed += earliest->CatchUp(std::min(now_, second));
    }
  }
  lazy_arrivals_fused_ += processed;
  if (processed > 0) ++lazy_drains_;
  prof.AddOps(processed);
  draining_ = false;
}

void Simulator::Run() {
  obs::PhaseScope prof(profiler_, obs::Phase::kRun);
  stop_requested_ = false;
  while (!stop_requested_ && Step()) {
  }
  CatchUpLazySources();
}

void Simulator::RunUntil(SimTime deadline) {
  obs::PhaseScope prof(profiler_, obs::Phase::kRun);
  stop_requested_ = false;
  while (!stop_requested_) {
    if (batch_periodic_) {
      // Batched periodic span: when a sole live periodic timer fires
      // strictly before every one-shot event, run its occurrences
      // back-to-back without touching the queue. Bit-identical to
      // stepping — each iteration performs exactly what Step() would
      // (advance clock, count, OnEvent, Rearm) — and bails out to the
      // generic path the moment a handler mutates the event set, the
      // barrier is reached (ties need Pop()'s seq tie-break), or the
      // deadline arrives.
      PeriodicId pid;
      EventHandler* handler;
      SimTime barrier;
      if (queue_.PeriodicSpan(&pid, &handler, &barrier)) {
        obs::PhaseScope span_prof(profiler_, obs::Phase::kKernelSpan);
        const std::uint64_t epoch = queue_.MutationEpoch();
        SimTime next = queue_.PeriodicNextTime(pid);
        std::uint64_t fired = 0;
        while (next < barrier && next <= deadline) {
          now_ = next;
          ++events_executed_;
          handler->OnEvent();
          queue_.Rearm(pid);
          ++fired;
          if (stop_requested_ || queue_.MutationEpoch() != epoch) break;
          next = queue_.PeriodicNextTime(pid);  // kTimeNever if cancelled.
        }
        if (fired > 0) {
          ++periodic_spans_;
          span_prof.AddOps(fired);
          continue;
        }
      }
    }
    const SimTime next = queue_.NextTime();
    if (next == kTimeNever || next > deadline) break;
    Step();
  }
  if (!stop_requested_ && now_ < deadline) now_ = deadline;
  // Final barrier: lifetime counters are read right after a run returns.
  // Arrivals up to the clock's resting point (the deadline, or the time of
  // the event that called Stop()) are part of the run.
  CatchUpLazySources();
}

bool Simulator::Step() {
  EventQueue::Fired fired;
  if (!queue_.Pop(&fired)) return false;
  obs::PhaseScope prof(profiler_, obs::Phase::kQueuePop);
  BDISK_DCHECK(fired.when >= now_);
  now_ = fired.when;
  ++events_executed_;
  fired.fn();
  // Re-arming after the action ran draws the next occurrence's FIFO
  // sequence number at the same point a hand-rescheduling handler would,
  // keeping same-time tie-breaks identical to the heap path.
  if (fired.periodic != EventQueue::kNotPeriodic) queue_.Rearm(fired.periodic);
  return true;
}

}  // namespace bdisk::sim
