#ifndef BDISK_SIM_TIME_SERIES_H_
#define BDISK_SIM_TIME_SERIES_H_

#include <cstddef>
#include <vector>

#include "sim/types.h"

namespace bdisk::sim {

/// An append-only series of (time, value) samples with monotonically
/// non-decreasing times. Records warm-up trajectories (Figure 4: the time at
/// which each cache-fill percentage is first reached) and any other
/// time-indexed metric.
class TimeSeries {
 public:
  struct Sample {
    SimTime time;
    double value;
  };

  /// Appends a sample; `time` must be >= the last appended time.
  void Add(SimTime time, double value);

  /// All samples, in time order.
  const std::vector<Sample>& samples() const { return samples_; }

  /// Number of samples.
  std::size_t size() const { return samples_.size(); }

  bool empty() const { return samples_.empty(); }

  /// The first time at which the value reached (>=) `threshold`, or
  /// kTimeNever if it never did. Values are assumed non-decreasing when this
  /// query is meaningful (e.g. cache fill fraction).
  SimTime FirstTimeAtOrAbove(double threshold) const;

 private:
  std::vector<Sample> samples_;
};

}  // namespace bdisk::sim

#endif  // BDISK_SIM_TIME_SERIES_H_
