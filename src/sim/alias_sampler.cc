#include "sim/alias_sampler.h"

#include <cstdint>
#include <numeric>

#include "sim/check.h"

namespace bdisk::sim {

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  BDISK_CHECK_MSG(n > 0, "AliasSampler needs at least one outcome");
  BDISK_CHECK_MSG(n <= UINT32_MAX, "too many outcomes");

  double total = 0.0;
  for (const double w : weights) {
    BDISK_CHECK_MSG(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  BDISK_CHECK_MSG(total > 0.0, "at least one weight must be positive");

  normalized_.resize(n);
  for (std::size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / total;

  // Vose's algorithm: scale probabilities by n, partition into under-full
  // ("small") and over-full ("large") buckets, and pair them up.
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = normalized_[i] * static_cast<double>(n);
  }

  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Residual buckets are full by construction (up to rounding).
  for (const std::uint32_t i : large) prob_[i] = 1.0;
  for (const std::uint32_t i : small) prob_[i] = 1.0;
}

}  // namespace bdisk::sim
