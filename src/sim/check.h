#ifndef BDISK_SIM_CHECK_H_
#define BDISK_SIM_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Invariant-checking macros.
//
// The library does not use exceptions (Google C++ style). Programmer errors
// (invalid configuration, broken invariants) abort with a diagnostic;
// runtime-fallible operations return std::optional or a status enum instead.
//
// BDISK_CHECK is always on; BDISK_DCHECK compiles out in NDEBUG builds and is
// reserved for hot-path invariants.

#define BDISK_CHECK(cond)                                                    \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "BDISK_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define BDISK_CHECK_MSG(cond, msg)                                           \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "BDISK_CHECK failed at %s:%d: %s (%s)\n",         \
                   __FILE__, __LINE__, #cond, msg);                          \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define BDISK_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define BDISK_DCHECK(cond) BDISK_CHECK(cond)
#endif

#endif  // BDISK_SIM_CHECK_H_
