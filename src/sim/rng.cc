#include "sim/rng.h"

#include <cmath>

#include "sim/check.h"

namespace bdisk::sim {

namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// SplitMix64: used to expand a 64-bit seed into the 256-bit xoshiro state.
inline std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
  // An all-zero state would be absorbing; SplitMix64 cannot produce four
  // zero outputs in a row, but keep the guard for safety.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  BDISK_DCHECK(bound > 0);
  // Lemire's nearly-divisionless unbiased method.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  BDISK_DCHECK(mean > 0.0);
  // Inverse CDF; 1 - u avoids log(0) since NextDouble() < 1.
  return -mean * std::log1p(-NextDouble());
}

Rng Rng::Split() { return Rng(Next() ^ 0xD2B74407B1CE6E93ULL); }

}  // namespace bdisk::sim
