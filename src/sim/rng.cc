#include "sim/rng.h"

namespace bdisk::sim {

namespace {

// SplitMix64: used to expand a 64-bit seed into the 256-bit xoshiro state.
inline std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
  // An all-zero state would be absorbing; SplitMix64 cannot produce four
  // zero outputs in a row, but keep the guard for safety.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::Split() { return Rng(Next() ^ 0xD2B74407B1CE6E93ULL); }

}  // namespace bdisk::sim
