#ifndef BDISK_SIM_TYPES_H_
#define BDISK_SIM_TYPES_H_

#include <cstdint>
#include <limits>

namespace bdisk::sim {

/// Simulated time, measured in *broadcast units*: the time the server needs
/// to broadcast exactly one page. All latencies in the paper are reported in
/// this unit, which makes results independent of physical channel bandwidth.
using SimTime = double;

/// Sentinel for "never" / "no such event".
inline constexpr SimTime kTimeNever = std::numeric_limits<SimTime>::infinity();

/// Identifier assigned to scheduled events, used for O(1) cancellation.
/// Generation-tagged: the low 32 bits index a slab slot, the high 32 bits
/// hold the slot's generation at scheduling time, so a recycled slot never
/// revives a stale id. FIFO tie-breaking of simultaneous events uses a
/// separate monotonic sequence number internal to the queue.
using EventId = std::uint64_t;

/// Sentinel returned for events that were never scheduled. Generations
/// start at 1, so no real id is ever 0.
inline constexpr EventId kInvalidEventId = 0;

}  // namespace bdisk::sim

#endif  // BDISK_SIM_TYPES_H_
