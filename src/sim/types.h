#ifndef BDISK_SIM_TYPES_H_
#define BDISK_SIM_TYPES_H_

#include <cstdint>
#include <limits>

namespace bdisk::sim {

/// Simulated time, measured in *broadcast units*: the time the server needs
/// to broadcast exactly one page. All latencies in the paper are reported in
/// this unit, which makes results independent of physical channel bandwidth.
using SimTime = double;

/// Sentinel for "never" / "no such event".
inline constexpr SimTime kTimeNever = std::numeric_limits<SimTime>::infinity();

/// Monotonic identifier assigned to scheduled events; used both for stable
/// FIFO tie-breaking of simultaneous events and for O(1) cancellation.
using EventId = std::uint64_t;

/// Sentinel returned for events that were never scheduled.
inline constexpr EventId kInvalidEventId = 0;

}  // namespace bdisk::sim

#endif  // BDISK_SIM_TYPES_H_
