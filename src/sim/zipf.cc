#include "sim/zipf.h"

#include <cmath>

#include "sim/check.h"

namespace bdisk::sim {

std::vector<double> ZipfPmf(std::size_t n, double theta) {
  BDISK_CHECK_MSG(n > 0, "Zipf needs at least one item");
  BDISK_CHECK_MSG(theta >= 0.0, "Zipf parameter must be non-negative");
  std::vector<double> pmf(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    pmf[i] = std::pow(1.0 / static_cast<double>(i + 1), theta);
    total += pmf[i];
  }
  for (double& p : pmf) p /= total;
  return pmf;
}

}  // namespace bdisk::sim
