#ifndef BDISK_SIM_ZIPF_H_
#define BDISK_SIM_ZIPF_H_

#include <cstddef>
#include <vector>

namespace bdisk::sim {

/// The Zipf probability mass function used throughout the paper to model
/// skewed client access patterns [Knut81].
///
/// With parameter theta, rank i (1-based) has probability proportional to
/// (1/i)^theta. theta = 0 is uniform; the paper uses theta = 0.95.
///
/// Returns probabilities by *rank*: index 0 is the hottest item. Mapping
/// ranks to page ids is the workload layer's job (see workload::Noise).
std::vector<double> ZipfPmf(std::size_t n, double theta);

}  // namespace bdisk::sim

#endif  // BDISK_SIM_ZIPF_H_
