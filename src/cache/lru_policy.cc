#include "cache/lru_policy.h"

#include "sim/check.h"

namespace bdisk::cache {

void LruPolicy::OnInsert(PageId page) {
  BDISK_DCHECK(where_.find(page) == where_.end());
  order_.push_front(page);
  where_[page] = order_.begin();
}

void LruPolicy::OnAccess(PageId page) {
  const auto it = where_.find(page);
  BDISK_DCHECK(it != where_.end());
  order_.splice(order_.begin(), order_, it->second);
}

void LruPolicy::OnEvict(PageId page) {
  const auto it = where_.find(page);
  BDISK_DCHECK(it != where_.end());
  order_.erase(it->second);
  where_.erase(it);
}

PageId LruPolicy::ChooseVictim() const {
  BDISK_CHECK_MSG(!order_.empty(), "no resident pages to evict");
  return order_.back();
}

}  // namespace bdisk::cache
