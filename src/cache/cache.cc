#include "cache/cache.h"

#include <utility>

#include "cache/lfu_policy.h"
#include "cache/lru_policy.h"
#include "cache/static_value_policy.h"
#include "cache/value_functions.h"
#include "sim/check.h"

namespace bdisk::cache {

Cache::Cache(std::uint32_t capacity, std::uint32_t db_size,
             std::unique_ptr<ReplacementPolicy> policy)
    : capacity_(capacity), resident_(db_size, false),
      policy_(std::move(policy)) {
  BDISK_CHECK_MSG(capacity >= 1, "cache capacity must be positive");
  BDISK_CHECK_MSG(policy_ != nullptr, "cache needs a replacement policy");
}

bool Cache::Access(PageId page) {
  BDISK_DCHECK(page < resident_.size());
  if (resident_[page]) {
    ++hits_;
    policy_->OnAccess(page);
    return true;
  }
  ++misses_;
  return false;
}

std::optional<PageId> Cache::Insert(PageId page) {
  BDISK_DCHECK(page < resident_.size());
  if (resident_[page]) return std::nullopt;
  std::optional<PageId> evicted;
  if (size_ == capacity_) {
    const PageId victim = policy_->ChooseVictim();
    BDISK_DCHECK(resident_[victim]);
    if (eviction_value_stats_ != nullptr) {
      eviction_value_stats_->Add(policy_->ValueOf(victim));
    }
    policy_->OnEvict(victim);
    resident_[victim] = false;
    --size_;
    ++evictions_;
    evicted = victim;
  }
  policy_->OnInsert(page);
  resident_[page] = true;
  ++size_;
  return evicted;
}

bool Cache::Remove(PageId page) {
  BDISK_DCHECK(page < resident_.size());
  if (!resident_[page]) return false;
  policy_->OnEvict(page);
  resident_[page] = false;
  --size_;
  ++removals_;
  return true;
}

const char* PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kPix:
      return "PIX";
    case PolicyKind::kP:
      return "P";
    case PolicyKind::kLru:
      return "LRU";
    case PolicyKind::kLfu:
      return "LFU";
  }
  return "?";
}

std::unique_ptr<ReplacementPolicy> MakePolicy(
    PolicyKind kind, const std::vector<double>& probs,
    const broadcast::BroadcastProgram* program) {
  switch (kind) {
    case PolicyKind::kPix:
      BDISK_CHECK_MSG(program != nullptr, "PIX needs a broadcast program");
      return std::make_unique<StaticValuePolicy>(PixValues(probs, *program),
                                                 "PIX");
    case PolicyKind::kP:
      return std::make_unique<StaticValuePolicy>(PValues(probs), "P");
    case PolicyKind::kLru:
      return std::make_unique<LruPolicy>();
    case PolicyKind::kLfu:
      return std::make_unique<LfuPolicy>();
  }
  BDISK_CHECK_MSG(false, "unknown policy kind");
  return nullptr;
}

}  // namespace bdisk::cache
