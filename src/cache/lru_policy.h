#ifndef BDISK_CACHE_LRU_POLICY_H_
#define BDISK_CACHE_LRU_POLICY_H_

#include <list>
#include <string>
#include <unordered_map>

#include "cache/replacement_policy.h"

namespace bdisk::cache {

/// Least-recently-used replacement: the classical baseline the paper's prior
/// work ([Acha95a]) shows to perform poorly against a broadcast, because it
/// ignores how soon a page will come around again on the disk.
class LruPolicy : public ReplacementPolicy {
 public:
  LruPolicy() = default;

  void OnInsert(PageId page) override;
  void OnAccess(PageId page) override;
  void OnEvict(PageId page) override;
  PageId ChooseVictim() const override;
  std::string Name() const override { return "LRU"; }

 private:
  // Front = most recently used; back = LRU victim.
  std::list<PageId> order_;
  std::unordered_map<PageId, std::list<PageId>::iterator> where_;
};

}  // namespace bdisk::cache

#endif  // BDISK_CACHE_LRU_POLICY_H_
