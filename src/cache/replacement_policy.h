#ifndef BDISK_CACHE_REPLACEMENT_POLICY_H_
#define BDISK_CACHE_REPLACEMENT_POLICY_H_

#include <string>

#include "broadcast/page.h"

namespace bdisk::cache {

using broadcast::PageId;

/// Strategy interface for choosing cache eviction victims.
///
/// The paper's central cache result (carried over from [Acha95a]) is that
/// replacement must be *cost-based* in a broadcast environment: PIX evicts
/// the resident page with the lowest p/x (access probability over broadcast
/// frequency), while P — used for Pure-Pull, where there is no schedule —
/// evicts the lowest p. LRU and LFU are included as classical baselines.
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// Called when `page` becomes resident.
  virtual void OnInsert(PageId page) = 0;

  /// Called on a cache hit of `page`.
  virtual void OnAccess(PageId page) = 0;

  /// Called when `page` leaves the cache.
  virtual void OnEvict(PageId page) = 0;

  /// Returns the resident page to evict next. Only valid while at least one
  /// page is resident.
  virtual PageId ChooseVictim() const = 0;

  /// Policy-specific retention value of `page` (PIX: p/x, P: p, LFU:
  /// observed reference count). Observability uses this to record the
  /// value distribution at eviction time — how much value the policy gives
  /// up per eviction. Policies with no scalar value (LRU orders by recency
  /// only) keep the default 0.
  virtual double ValueOf(PageId /*page*/) const { return 0.0; }

  /// Human-readable policy name ("PIX", "P", "LRU", "LFU").
  virtual std::string Name() const = 0;
};

}  // namespace bdisk::cache

#endif  // BDISK_CACHE_REPLACEMENT_POLICY_H_
