#include "cache/lfu_policy.h"

#include "sim/check.h"

namespace bdisk::cache {

LfuPolicy::Key LfuPolicy::KeyFor(PageId page) const {
  const auto it = state_.find(page);
  BDISK_DCHECK(it != state_.end());
  return Key{it->second.count, it->second.seq, page};
}

void LfuPolicy::OnInsert(PageId page) {
  State& s = state_[page];  // Counts persist across residencies.
  ++s.count;
  s.seq = next_seq_++;
  const bool inserted = residents_.insert(Key{s.count, s.seq, page}).second;
  BDISK_DCHECK(inserted);
  (void)inserted;
}

void LfuPolicy::OnAccess(PageId page) {
  const auto erased = residents_.erase(KeyFor(page));
  BDISK_DCHECK(erased == 1);
  (void)erased;
  State& s = state_[page];
  ++s.count;
  s.seq = next_seq_++;
  residents_.insert(Key{s.count, s.seq, page});
}

void LfuPolicy::OnEvict(PageId page) {
  const auto erased = residents_.erase(KeyFor(page));
  BDISK_DCHECK(erased == 1);
  (void)erased;
}

PageId LfuPolicy::ChooseVictim() const {
  BDISK_CHECK_MSG(!residents_.empty(), "no resident pages to evict");
  return std::get<2>(*residents_.begin());
}

double LfuPolicy::ValueOf(PageId page) const {
  const auto it = state_.find(page);
  return it == state_.end() ? 0.0 : static_cast<double>(it->second.count);
}

}  // namespace bdisk::cache
