#ifndef BDISK_CACHE_VALUE_FUNCTIONS_H_
#define BDISK_CACHE_VALUE_FUNCTIONS_H_

#include <vector>

#include "broadcast/broadcast_program.h"

namespace bdisk::cache {

/// Effective per-major-cycle broadcast frequency assigned to pages that are
/// *not* on the push schedule when computing PIX values. Such pages are
/// strictly harder to re-obtain than any scheduled page (no push safety
/// net), so they are valued as if broadcast half as often as a once-per-
/// cycle page. The paper leaves this case unspecified; see DESIGN.md.
inline constexpr double kOffScheduleFrequency = 0.5;

/// PIX values: access probability divided by broadcast frequency
/// (p_i / x_i, §2.1). Pages absent from the program use
/// kOffScheduleFrequency. `probs` are the *client's own* access
/// probabilities indexed by page id.
std::vector<double> PixValues(const std::vector<double>& probs,
                              const broadcast::BroadcastProgram& program);

/// P values: plain access probability (used with Pure-Pull, §3.1). Returned
/// by value for symmetry with PixValues.
std::vector<double> PValues(const std::vector<double>& probs);

}  // namespace bdisk::cache

#endif  // BDISK_CACHE_VALUE_FUNCTIONS_H_
