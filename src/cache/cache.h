#ifndef BDISK_CACHE_CACHE_H_
#define BDISK_CACHE_CACHE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "broadcast/broadcast_program.h"
#include "cache/replacement_policy.h"
#include "sim/byte_mask.h"
#include "sim/stats.h"

namespace bdisk::cache {

/// A client page cache of fixed capacity (CacheSize pages) with a pluggable
/// replacement policy.
///
/// Page payloads are not modeled (the study is read-only and measures only
/// latency); the cache tracks residency. Statistics (hits/misses/evictions)
/// are collected for reporting.
class Cache {
 public:
  /// `capacity` >= 1; `db_size` bounds valid page ids; `policy` must be
  /// non-null.
  Cache(std::uint32_t capacity, std::uint32_t db_size,
        std::unique_ptr<ReplacementPolicy> policy);

  /// Looks up `page`; updates policy state and hit/miss counters.
  bool Access(PageId page);

  /// True iff `page` is resident. Does not touch policy or counters.
  bool Contains(PageId page) const { return resident_[page]; }

  /// Makes `page` resident, evicting the policy's victim when full. No-op
  /// when already resident. Returns the evicted page, if any.
  std::optional<PageId> Insert(PageId page);

  /// Drops `page` from the cache (invalidation of volatile data, or a
  /// prefetch swap). Returns true if it was resident. Counted separately
  /// from policy evictions.
  bool Remove(PageId page);

  /// Resident mask indexed by page id (for prefetch scans and tests).
  /// Byte-backed (see sim/byte_mask.h); reads the same as vector<bool>.
  const sim::ByteMask& resident_mask() const { return resident_; }

  /// Number of resident pages.
  std::uint32_t Size() const { return size_; }

  /// Maximum number of resident pages.
  std::uint32_t Capacity() const { return capacity_; }

  /// True when the cache is at capacity — the paper's steady-state
  /// precondition ("once the cache has been full for some time").
  bool IsFull() const { return size_ == capacity_; }

  /// Lifetime counters.
  std::uint64_t Hits() const { return hits_; }
  std::uint64_t Misses() const { return misses_; }
  std::uint64_t Evictions() const { return evictions_; }
  std::uint64_t Removals() const { return removals_; }

  /// The active replacement policy.
  const ReplacementPolicy& policy() const { return *policy_; }

  /// Observability hook (not owned; null detaches): every policy eviction
  /// records the victim's policy value (ReplacementPolicy::ValueOf) into
  /// `stats` — the value the cache gave up. One pointer check per eviction
  /// when detached.
  void SetEvictionValueStats(sim::RunningStats* stats) {
    eviction_value_stats_ = stats;
  }

 private:
  std::uint32_t capacity_;
  std::uint32_t size_ = 0;
  sim::ByteMask resident_;
  std::unique_ptr<ReplacementPolicy> policy_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t removals_ = 0;
  sim::RunningStats* eviction_value_stats_ = nullptr;
};

/// Identifier of a replacement policy, for configuration.
enum class PolicyKind {
  kPix,  // p/x — cost-based, needs the broadcast program.
  kP,    // p — probability-only (Pure-Pull).
  kLru,
  kLfu,
};

/// Human-readable name of a policy kind.
const char* PolicyKindName(PolicyKind kind);

/// Builds a replacement policy. `probs` are the owning client's access
/// probabilities; `program` may be null for kP/kLru/kLfu but is required for
/// kPix.
std::unique_ptr<ReplacementPolicy> MakePolicy(
    PolicyKind kind, const std::vector<double>& probs,
    const broadcast::BroadcastProgram* program);

}  // namespace bdisk::cache

#endif  // BDISK_CACHE_CACHE_H_
