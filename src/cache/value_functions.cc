#include "cache/value_functions.h"

#include "sim/check.h"

namespace bdisk::cache {

std::vector<double> PixValues(const std::vector<double>& probs,
                              const broadcast::BroadcastProgram& program) {
  BDISK_CHECK_MSG(probs.size() == program.DbSize(),
                  "probability vector must cover the database");
  std::vector<double> values(probs.size());
  for (std::size_t p = 0; p < probs.size(); ++p) {
    const auto freq = program.Frequency(static_cast<broadcast::PageId>(p));
    const double x =
        freq > 0 ? static_cast<double>(freq) : kOffScheduleFrequency;
    values[p] = probs[p] / x;
  }
  return values;
}

std::vector<double> PValues(const std::vector<double>& probs) { return probs; }

}  // namespace bdisk::cache
