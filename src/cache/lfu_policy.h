#ifndef BDISK_CACHE_LFU_POLICY_H_
#define BDISK_CACHE_LFU_POLICY_H_

#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>

#include "cache/replacement_policy.h"

namespace bdisk::cache {

/// Least-frequently-used replacement over observed (in-cache) reference
/// counts, with LRU tie-breaking via an insertion sequence number. A second
/// classical baseline: it approximates "probability of access" empirically
/// and so behaves like a noisy online version of the P policy.
///
/// Reference counts persist across an evict/re-insert of the same page
/// ("perfect LFU"), matching how the paper's P policy uses true global
/// probabilities rather than per-residency counts.
class LfuPolicy : public ReplacementPolicy {
 public:
  LfuPolicy() = default;

  void OnInsert(PageId page) override;
  void OnAccess(PageId page) override;
  void OnEvict(PageId page) override;
  PageId ChooseVictim() const override;
  double ValueOf(PageId page) const override;
  std::string Name() const override { return "LFU"; }

 private:
  struct State {
    std::uint64_t count = 0;
    std::uint64_t seq = 0;  // Last insert/access sequence, for tie-breaks.
  };
  // Key: (count asc, seq asc, page) — begin() is the victim.
  using Key = std::tuple<std::uint64_t, std::uint64_t, PageId>;

  Key KeyFor(PageId page) const;

  std::unordered_map<PageId, State> state_;   // All pages ever seen.
  std::set<Key> residents_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace bdisk::cache

#endif  // BDISK_CACHE_LFU_POLICY_H_
