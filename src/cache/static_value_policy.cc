#include "cache/static_value_policy.h"

#include <utility>

#include "sim/check.h"

namespace bdisk::cache {

StaticValuePolicy::StaticValuePolicy(std::vector<double> values,
                                     std::string name)
    : values_(std::move(values)), name_(std::move(name)) {
  BDISK_CHECK_MSG(!values_.empty(), "value vector must cover the database");
}

void StaticValuePolicy::OnInsert(PageId page) {
  BDISK_DCHECK(page < values_.size());
  residents_.emplace(values_[page], page);
}

void StaticValuePolicy::OnEvict(PageId page) {
  const auto erased = residents_.erase({values_[page], page});
  BDISK_DCHECK(erased == 1);
  (void)erased;
}

PageId StaticValuePolicy::ChooseVictim() const {
  BDISK_CHECK_MSG(!residents_.empty(), "no resident pages to evict");
  return residents_.begin()->second;
}

}  // namespace bdisk::cache
