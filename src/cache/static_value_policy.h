#ifndef BDISK_CACHE_STATIC_VALUE_POLICY_H_
#define BDISK_CACHE_STATIC_VALUE_POLICY_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cache/replacement_policy.h"

namespace bdisk::cache {

/// Cost-based replacement with a fixed per-page value: evicts the resident
/// page with the smallest value, ties broken by lower page id (so behaviour
/// is deterministic). Instantiated as PIX (value = p/x) and P (value = p);
/// see MakePixPolicy()/MakePPolicy() in cache.h.
///
/// Access order is irrelevant to these policies, so OnAccess is a no-op:
/// the victim depends only on which pages are resident.
class StaticValuePolicy : public ReplacementPolicy {
 public:
  /// `values[p]` is the retention value of page p; `name` is the policy
  /// label reported in results.
  StaticValuePolicy(std::vector<double> values, std::string name);

  void OnInsert(PageId page) override;
  void OnAccess(PageId /*page*/) override {}
  void OnEvict(PageId page) override;
  PageId ChooseVictim() const override;
  double ValueOf(PageId page) const override { return values_[page]; }
  std::string Name() const override { return name_; }

  /// The value assigned to `page`.
  double Value(PageId page) const { return values_[page]; }

 private:
  std::vector<double> values_;
  std::string name_;
  // Residents ordered by (value asc, page desc): begin() is the victim.
  std::set<std::pair<double, PageId>> residents_;
};

}  // namespace bdisk::cache

#endif  // BDISK_CACHE_STATIC_VALUE_POLICY_H_
