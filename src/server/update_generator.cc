#include "server/update_generator.h"

#include "sim/check.h"

namespace bdisk::server {

UpdateGenerator::UpdateGenerator(sim::Simulator* simulator, double rate,
                                 const std::vector<double>& weights,
                                 sim::Rng rng)
    : sim::Process(simulator),
      rate_(rate),
      sampler_(weights),
      rng_(rng),
      versions_(weights.size(), 0) {
  BDISK_CHECK_MSG(rate > 0.0, "update rate must be positive");
}

void UpdateGenerator::AddListener(InvalidationListener* listener) {
  BDISK_CHECK_MSG(listener != nullptr, "null listener");
  listeners_.push_back(listener);
}

void UpdateGenerator::OnWakeup() {
  // Barrier: listeners react to the invalidation (and may emit trace
  // records at Now()), so every fused arrival strictly before this update
  // must land first — draining inside a listener would let an earlier
  // listener's records jump ahead of older fused-arrival records.
  simulator()->CatchUpLazySources();
  const auto page = static_cast<broadcast::PageId>(sampler_.Sample(rng_));
  ++versions_[page];
  ++updates_;
  const sim::SimTime now = Now();
  for (InvalidationListener* listener : listeners_) {
    listener->OnInvalidate(page, now);
  }
  ScheduleWakeup(NextGap());
}

}  // namespace bdisk::server
