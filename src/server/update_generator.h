#ifndef BDISK_SERVER_UPDATE_GENERATOR_H_
#define BDISK_SERVER_UPDATE_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "broadcast/page.h"
#include "sim/alias_sampler.h"
#include "sim/process.h"
#include "sim/rng.h"

namespace bdisk::server {

/// Receives page-invalidation notices. The paper's companion study
/// [Acha96b] has the server disseminate an invalidation report; clients
/// drop stale copies. We model the report as instantaneous and free
/// (see DESIGN.md): listeners hear about every update when it happens.
class InvalidationListener {
 public:
  virtual ~InvalidationListener() = default;

  /// `page` changed at time `now`; cached copies are now stale.
  virtual void OnInvalidate(broadcast::PageId page, sim::SimTime now) = 0;
};

/// Models volatile data (the read-only assumption of §1.4 lifted, as in
/// the paper's prior work [Acha96b]): pages are updated at the server as a
/// Poisson process; each update picks its page from a weight vector
/// (typically the same Zipf shape as reads — hot pages change often).
///
/// Each update bumps the page's version and notifies every
/// InvalidationListener.
class UpdateGenerator : public sim::Process {
 public:
  /// `rate`: expected updates per broadcast unit (> 0).
  /// `weights[p]`: relative update frequency of page p.
  UpdateGenerator(sim::Simulator* simulator, double rate,
                  const std::vector<double>& weights, sim::Rng rng);

  /// Begins generating updates.
  void Start() { ScheduleWakeup(NextGap()); }

  /// Registers a listener (not owned; must outlive the generator).
  void AddListener(InvalidationListener* listener);

  /// Total updates generated.
  std::uint64_t UpdateCount() const { return updates_; }

  /// Current version of `page` (0 = never updated).
  std::uint64_t Version(broadcast::PageId page) const {
    return versions_[page];
  }

 protected:
  void OnWakeup() override;

 private:
  double NextGap() { return rng_.NextExponential(1.0 / rate_); }

  double rate_;
  sim::AliasSampler sampler_;
  sim::Rng rng_;
  std::vector<InvalidationListener*> listeners_;
  std::vector<std::uint64_t> versions_;
  std::uint64_t updates_ = 0;
};

}  // namespace bdisk::server

#endif  // BDISK_SERVER_UPDATE_GENERATOR_H_
