#include "server/broadcast_server.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sim/check.h"

namespace bdisk::server {

BroadcastServer::BroadcastServer(
    sim::Simulator* simulator,
    std::shared_ptr<const broadcast::BroadcastProgram> program, double pull_bw,
    std::uint32_t queue_capacity, sim::Rng rng)
    : simulator_(simulator),
      program_(std::move(program)),
      pull_bw_(pull_bw),
      queue_(queue_capacity, program_->DbSize()),
      rng_(rng) {
  BDISK_CHECK_MSG(simulator != nullptr, "server needs a simulator");
  BDISK_CHECK_MSG(program_ != nullptr, "server needs a program");
  BDISK_CHECK_MSG(pull_bw >= 0.0 && pull_bw <= 1.0,
                  "PullBW must be a fraction in [0,1]");
  BDISK_CHECK_MSG(!program_->Empty() || pull_bw > 0.0,
                  "a server with no program and no pull bandwidth would "
                  "never broadcast anything");
  if (!program_->Empty()) cursor_.emplace(program_.get());
  ChooseNextSlot();
  // One page per broadcast unit, forever: the next boundary is always
  // known, so the slot loop rides the periodic fast path instead of
  // re-entering the event heap every slot.
  simulator_->SchedulePeriodic(1.0, this);
}

BroadcastServer::BroadcastServer(sim::Simulator* simulator,
                                 broadcast::BroadcastProgram program,
                                 double pull_bw, std::uint32_t queue_capacity,
                                 sim::Rng rng)
    : BroadcastServer(simulator,
                      std::make_shared<const broadcast::BroadcastProgram>(
                          std::move(program)),
                      pull_bw, queue_capacity, rng) {}

void BroadcastServer::AddListener(BroadcastListener* listener) {
  BDISK_CHECK_MSG(listener != nullptr, "null listener");
  listeners_.push_back(listener);
}

void BroadcastServer::SetPullBw(double pull_bw) {
  BDISK_CHECK_MSG(pull_bw >= 0.0 && pull_bw <= 1.0,
                  "PullBW must be a fraction in [0,1]");
  BDISK_CHECK_MSG(!program_->Empty() || pull_bw > 0.0,
                  "a server with no program needs pull bandwidth");
  pull_bw_ = pull_bw;
}

void BroadcastServer::SetFaultInjector(fault::FaultInjector* injector) {
  injector_ = injector;
  shed_enter_depth_ = 0;
  shed_exit_depth_ = 0;
  shed_distance_ = 0;
  shed_table_.reset();
  degraded_pull_bw_mult_ = 1.0;
  degraded_ = false;
  if (injector == nullptr) return;
  const fault::FaultPlan& plan = injector->plan();
  if (plan.DegradedModeEnabled()) {
    const double capacity = static_cast<double>(queue_.Capacity());
    shed_enter_depth_ = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::ceil(plan.shed_hi * capacity)));
    const double lo = plan.shed_lo > 0.0 ? plan.shed_lo : plan.shed_hi / 2.0;
    shed_exit_depth_ = std::min<std::uint32_t>(
        shed_enter_depth_ - 1,
        static_cast<std::uint32_t>(std::floor(lo * capacity)));
    // 0 = shed every scheduled page: the whole major cycle is "near".
    shed_distance_ = plan.shed_distance > 0
                         ? plan.shed_distance
                         : program_->Length();
    // Threshold-change invalidation point: the shed horizon is fixed here,
    // so the per-cycle decision table is rebuilt here too (the program
    // itself is immutable for the server's lifetime).
    shed_table_ =
        broadcast::CycleSpanTable::BuildIfFeasible(*program_, shed_distance_);
    degraded_pull_bw_mult_ = plan.degraded_pull_bw;
  }
}

void BroadcastServer::EnableMetrics(obs::MetricsRegistry* registry) {
  BDISK_CHECK_MSG(registry != nullptr, "EnableMetrics needs a registry");
  ts_push_frac_ = registry->GetTimeSeries("server.push_frac");
  ts_pull_frac_ = registry->GetTimeSeries("server.pull_frac");
  ts_idle_frac_ = registry->GetTimeSeries("server.idle_frac");
  ts_queue_depth_ = registry->GetTimeSeries("server.queue_depth");
  window_slots_ = window_push_ = window_pull_ = window_idle_ = 0;
}

SubmitResult BroadcastServer::SubmitRequest(PageId page,
                                            std::uint32_t client) {
  // Barrier: queue order, coalescing, and drops depend on what is already
  // queued, so every fused arrival up to now must submit ahead of this one.
  simulator_->CatchUpLazySources();
  return SubmitRequestAt(page, client, simulator_->Now());
}

SubmitResult BroadcastServer::SubmitRequestAt(PageId page,
                                              std::uint32_t client,
                                              sim::SimTime at) {
  BDISK_DCHECK(page < program_->DbSize());
  if (injector_ != nullptr) {
    // Backchannel transit faults first: a request lost on the wire never
    // reaches the server, and a delayed one arrives later (the queue
    // outcome is decided — and traced — at arrival time).
    bool lost;
    double delay;
    {
      obs::PhaseScope judge_prof(profiler_, obs::Phase::kFaultJudge);
      lost = injector_->JudgeRequestLost();
      delay = lost ? 0.0 : injector_->JudgeRequestDelay();
    }
    if (lost) {
      RecordFaultSubmit(SubmitResult::kLostChannel, page, client, at);
      return SubmitResult::kLostChannel;
    }
    if (delay > 0.0) {
      BroadcastServer* self = this;
      simulator_->ScheduleAfter(delay, [self, page, client] {
        self->SubmitArrived(page, client, self->simulator_->Now());
      });
      // In flight; instrumentation-only callers treat this as accepted.
      return SubmitResult::kAccepted;
    }
  }
  return SubmitArrived(page, client, at);
}

SubmitResult BroadcastServer::SubmitArrived(PageId page, std::uint32_t client,
                                            sim::SimTime at) {
  obs::PhaseScope prof(profiler_, obs::Phase::kServerQueue);
  if (injector_ != nullptr) {
    // Outage windows discard arrivals outright (blackout and brownout
    // alike: the request processor is what is down).
    if (injector_->InOutage(simulator_->Now())) {
      queue_.NoteOutageDrop();
      RecordFaultSubmit(SubmitResult::kDroppedOutage, page, client, at);
      return SubmitResult::kDroppedOutage;
    }
    // Degraded-mode admission control: shed requests whose page has a
    // near-enough push slot (the schedule is their safety net); requests
    // for unscheduled pages are never shed — pull is their only path.
    if (degraded_) {
      // "Near a push slot" via the precomputed span table when available
      // (one bit test), else the cursor's occurrence search. Identical
      // decisions: the table bit is `distance > shed_distance_`.
      const bool near_push =
          shed_table_ != nullptr
              ? !shed_table_->ShouldPull(page, cursor_->Position())
              : DistanceToNextPush(page) <= shed_distance_;
      if (near_push) {
        queue_.NoteShed();
        RecordFaultSubmit(SubmitResult::kShedOverload, page, client, at);
        return SubmitResult::kShedOverload;
      }
    }
  }
  const SubmitResult result = queue_.Submit(page);
  if (trace_ != nullptr) {
    const sim::TraceEventKind kind =
        result == SubmitResult::kAccepted
            ? sim::TraceEventKind::kRequestAccepted
            : (result == SubmitResult::kCoalesced
                   ? sim::TraceEventKind::kRequestCoalesced
                   : sim::TraceEventKind::kRequestDropped);
    trace_->Record(at, kind, page);
  }
  if (sink_ != nullptr) {
    const obs::SpanEvent ev =
        result == SubmitResult::kAccepted
            ? obs::SpanEvent::kSubmitAccepted
            : (result == SubmitResult::kCoalesced
                   ? obs::SpanEvent::kSubmitCoalesced
                   : obs::SpanEvent::kSubmitDropped);
    sink_->Record(at, ev, client, page, static_cast<double>(queue_.Size()));
  }
  if (collector_ != nullptr) {
    const obs::SubmitSample sample =
        result == SubmitResult::kAccepted
            ? obs::SubmitSample::kAccepted
            : (result == SubmitResult::kCoalesced
                   ? obs::SubmitSample::kCoalesced
                   : obs::SubmitSample::kDropped);
    collector_->OnSubmit(at, sample, queue_.Size());
  }
  if (shed_enter_depth_ > 0) UpdateDegraded();
  return result;
}

void BroadcastServer::RecordFaultSubmit(SubmitResult result, PageId page,
                                        std::uint32_t client,
                                        sim::SimTime at) {
  if (trace_ != nullptr) {
    const sim::TraceEventKind kind =
        result == SubmitResult::kShedOverload
            ? sim::TraceEventKind::kRequestShed
            : (result == SubmitResult::kDroppedOutage
                   ? sim::TraceEventKind::kRequestOutage
                   : sim::TraceEventKind::kRequestLost);
    trace_->Record(at, kind, page);
  }
  if (sink_ != nullptr) {
    const obs::SpanEvent ev =
        result == SubmitResult::kShedOverload
            ? obs::SpanEvent::kSubmitShed
            : (result == SubmitResult::kDroppedOutage
                   ? obs::SpanEvent::kSubmitOutage
                   : obs::SpanEvent::kSubmitLost);
    sink_->Record(at, ev, client, page, static_cast<double>(queue_.Size()));
  }
  if (collector_ != nullptr) {
    const obs::SubmitSample sample =
        result == SubmitResult::kShedOverload
            ? obs::SubmitSample::kShed
            : (result == SubmitResult::kDroppedOutage
                   ? obs::SubmitSample::kOutage
                   : obs::SubmitSample::kLost);
    collector_->OnSubmit(at, sample, queue_.Size());
  }
}

void BroadcastServer::UpdateDegraded() {
  const std::uint32_t depth = queue_.Size();
  if (!degraded_ && depth >= shed_enter_depth_) {
    degraded_ = true;
    ++degraded_enters_;
    if (sink_ != nullptr) {
      sink_->Record(simulator_->Now(), obs::SpanEvent::kDegradedEnter,
                    obs::kNoClient, obs::kNoTracePage,
                    static_cast<double>(depth));
    }
    if (telemetry_bus_ != nullptr) {
      telemetry_bus_->OnDegraded(simulator_->Now(), /*entering=*/true, depth);
    }
  } else if (degraded_ && depth <= shed_exit_depth_) {
    degraded_ = false;
    ++degraded_exits_;
    if (sink_ != nullptr) {
      sink_->Record(simulator_->Now(), obs::SpanEvent::kDegradedExit,
                    obs::kNoClient, obs::kNoTracePage,
                    static_cast<double>(depth));
    }
    if (telemetry_bus_ != nullptr) {
      telemetry_bus_->OnDegraded(simulator_->Now(), /*entering=*/false, depth);
    }
  }
}

std::uint32_t BroadcastServer::SchedulePosition() const {
  return cursor_ ? cursor_->Position() : 0;
}

std::uint32_t BroadcastServer::DistanceToNextPush(PageId page) const {
  if (!cursor_) return broadcast::BroadcastProgram::kNeverBroadcast;
  return cursor_->DistanceToNext(page);
}

void BroadcastServer::OnSlotBoundary() {
  obs::PhaseScope prof(profiler_, obs::Phase::kServerSlot);
  // Barrier: the slot decision below reads the pull queue, and snoopers
  // react to the delivery; both must see every fused arrival up to now.
  simulator_->CatchUpLazySources();
  // Transmission of the in-flight slot completes now; deliver to snoopers.
  if (in_flight_page_ != broadcast::kNoPage) {
    const sim::SimTime now = simulator_->Now();
    bool deliver = true;
    if (injector_ != nullptr) {
      // Frontchannel fate: a lost slot is spent silently; a corrupted one
      // is received, checksummed, and discarded — same client-visible
      // outcome, separate books. Robust clients recover via retry (pull)
      // or the next cycle (push).
      fault::SlotFate fate;
      {
        obs::PhaseScope judge_prof(profiler_, obs::Phase::kFaultJudge);
        fate = injector_->JudgeSlot();
      }
      if (fate != fault::SlotFate::kDelivered) {
        deliver = false;
        const bool lost = fate == fault::SlotFate::kLost;
        if (trace_ != nullptr) {
          trace_->Record(now,
                         lost ? sim::TraceEventKind::kSlotLost
                              : sim::TraceEventKind::kSlotCorrupt,
                         in_flight_page_);
        }
        if (sink_ != nullptr) {
          sink_->Record(now,
                        lost ? obs::SpanEvent::kSlotLost
                             : obs::SpanEvent::kSlotCorrupt,
                        obs::kNoClient, in_flight_page_);
        }
        if (collector_ != nullptr) collector_->OnSlotLoss(now);
      }
    }
    if (deliver) {
      for (BroadcastListener* listener : listeners_) {
        listener->OnBroadcast(in_flight_page_, in_flight_kind_, now);
      }
    }
  }
  ChooseNextSlot();  // The periodic slot timer re-arms itself.
}

void BroadcastServer::ChooseNextSlot() {
  obs::PhaseScope prof(profiler_, obs::Phase::kServerMux);
  ++total_slots_;
  // Fault layer: outage windows and the degraded-mode push fallback. All
  // of this is skipped (and costs one pointer compare) with no injector.
  bool blackout = false;
  bool suppress_pull = false;
  double mux_pull_bw = pull_bw_;
  if (injector_ != nullptr) {
    const bool in_outage = injector_->InOutage(simulator_->Now());
    if (in_outage != outage_active_) {
      outage_active_ = in_outage;
      if (in_outage) ++outages_started_;
      if (sink_ != nullptr) {
        sink_->Record(simulator_->Now(),
                      in_outage ? obs::SpanEvent::kOutageStart
                                : obs::SpanEvent::kOutageEnd,
                      obs::kNoClient, obs::kNoTracePage);
      }
    }
    if (in_outage) {
      ++outage_slots_;
      if (injector_->plan().brownout) {
        suppress_pull = true;  // Push rolls on; pull service is down.
      } else {
        blackout = true;  // Transmitter dark; the cursor holds its place.
      }
    }
    if (degraded_) mux_pull_bw *= degraded_pull_bw_mult_;
  }
  // Invariant: the counters below and the trace record the same decision.
  // Push/Pull MUX: a PullBW-weighted coin, but only when there is a queued
  // request — unused pull slots are given back to the push program (§2.2).
  if (blackout) {
    in_flight_page_ = broadcast::kNoPage;
    in_flight_kind_ = SlotKind::kIdle;
    ++idle_slots_;
  } else if (!suppress_pull && !queue_.Empty() &&
             rng_.NextBernoulli(mux_pull_bw)) {
    in_flight_page_ = queue_.PopFront();
    in_flight_kind_ = SlotKind::kPull;
    ++pull_slots_;
    if (shed_enter_depth_ > 0) UpdateDegraded();
  } else if (cursor_) {
    in_flight_page_ = cursor_->Advance();
    if (in_flight_page_ != broadcast::kNoPage) {
      in_flight_kind_ = SlotKind::kPush;
      ++push_slots_;
    } else {
      in_flight_kind_ = SlotKind::kIdle;  // Schedule padding (kPad mode).
      ++idle_slots_;
    }
  } else {
    in_flight_page_ = broadcast::kNoPage;
    in_flight_kind_ = SlotKind::kIdle;
    ++idle_slots_;
  }
  if (trace_ != nullptr) {
    const sim::TraceEventKind kind =
        in_flight_kind_ == SlotKind::kPull
            ? sim::TraceEventKind::kSlotPull
            : (in_flight_kind_ == SlotKind::kPush
                   ? sim::TraceEventKind::kSlotPush
                   : sim::TraceEventKind::kSlotIdle);
    trace_->Record(simulator_->Now(), kind, in_flight_page_);
  }
  if (sink_ != nullptr) {
    const obs::SpanEvent ev =
        in_flight_kind_ == SlotKind::kPull
            ? obs::SpanEvent::kSlotPull
            : (in_flight_kind_ == SlotKind::kPush
                   ? obs::SpanEvent::kSlotPush
                   : obs::SpanEvent::kSlotIdle);
    sink_->Record(simulator_->Now(), ev, obs::kNoClient,
                  in_flight_page_ == broadcast::kNoPage ? obs::kNoTracePage
                                                        : in_flight_page_);
  }
  if (collector_ != nullptr) {
    const obs::SlotSample sample =
        in_flight_kind_ == SlotKind::kPull
            ? obs::SlotSample::kPull
            : (in_flight_kind_ == SlotKind::kPush ? obs::SlotSample::kPush
                                                  : obs::SlotSample::kIdle);
    collector_->OnSlot(simulator_->Now(), sample, queue_.Size());
  }
  if (ts_push_frac_ != nullptr) SampleSlotWindow();
}

void BroadcastServer::SampleSlotWindow() {
  switch (in_flight_kind_) {
    case SlotKind::kPush:
      ++window_push_;
      break;
    case SlotKind::kPull:
      ++window_pull_;
      break;
    case SlotKind::kIdle:
      ++window_idle_;
      break;
  }
  if (++window_slots_ < kMetricsWindowSlots) return;
  const sim::SimTime now = simulator_->Now();
  const double n = static_cast<double>(window_slots_);
  ts_push_frac_->Add(now, window_push_ / n);
  ts_pull_frac_->Add(now, window_pull_ / n);
  ts_idle_frac_->Add(now, window_idle_ / n);
  ts_queue_depth_->Add(now, static_cast<double>(queue_.Size()));
  window_slots_ = window_push_ = window_pull_ = window_idle_ = 0;
}

}  // namespace bdisk::server
