#include "server/broadcast_server.h"

#include <utility>

#include "sim/check.h"

namespace bdisk::server {

BroadcastServer::BroadcastServer(
    sim::Simulator* simulator,
    std::shared_ptr<const broadcast::BroadcastProgram> program, double pull_bw,
    std::uint32_t queue_capacity, sim::Rng rng)
    : simulator_(simulator),
      program_(std::move(program)),
      pull_bw_(pull_bw),
      queue_(queue_capacity, program_->DbSize()),
      rng_(rng) {
  BDISK_CHECK_MSG(simulator != nullptr, "server needs a simulator");
  BDISK_CHECK_MSG(program_ != nullptr, "server needs a program");
  BDISK_CHECK_MSG(pull_bw >= 0.0 && pull_bw <= 1.0,
                  "PullBW must be a fraction in [0,1]");
  BDISK_CHECK_MSG(!program_->Empty() || pull_bw > 0.0,
                  "a server with no program and no pull bandwidth would "
                  "never broadcast anything");
  if (!program_->Empty()) cursor_.emplace(program_.get());
  ChooseNextSlot();
  // One page per broadcast unit, forever: the next boundary is always
  // known, so the slot loop rides the periodic fast path instead of
  // re-entering the event heap every slot.
  simulator_->SchedulePeriodic(1.0, this);
}

BroadcastServer::BroadcastServer(sim::Simulator* simulator,
                                 broadcast::BroadcastProgram program,
                                 double pull_bw, std::uint32_t queue_capacity,
                                 sim::Rng rng)
    : BroadcastServer(simulator,
                      std::make_shared<const broadcast::BroadcastProgram>(
                          std::move(program)),
                      pull_bw, queue_capacity, rng) {}

void BroadcastServer::AddListener(BroadcastListener* listener) {
  BDISK_CHECK_MSG(listener != nullptr, "null listener");
  listeners_.push_back(listener);
}

void BroadcastServer::SetPullBw(double pull_bw) {
  BDISK_CHECK_MSG(pull_bw >= 0.0 && pull_bw <= 1.0,
                  "PullBW must be a fraction in [0,1]");
  BDISK_CHECK_MSG(!program_->Empty() || pull_bw > 0.0,
                  "a server with no program needs pull bandwidth");
  pull_bw_ = pull_bw;
}

void BroadcastServer::EnableMetrics(obs::MetricsRegistry* registry) {
  BDISK_CHECK_MSG(registry != nullptr, "EnableMetrics needs a registry");
  ts_push_frac_ = registry->GetTimeSeries("server.push_frac");
  ts_pull_frac_ = registry->GetTimeSeries("server.pull_frac");
  ts_idle_frac_ = registry->GetTimeSeries("server.idle_frac");
  ts_queue_depth_ = registry->GetTimeSeries("server.queue_depth");
  window_slots_ = window_push_ = window_pull_ = window_idle_ = 0;
}

SubmitResult BroadcastServer::SubmitRequest(PageId page,
                                            std::uint32_t client) {
  // Barrier: queue order, coalescing, and drops depend on what is already
  // queued, so every fused arrival up to now must submit ahead of this one.
  simulator_->CatchUpLazySources();
  return SubmitRequestAt(page, client, simulator_->Now());
}

SubmitResult BroadcastServer::SubmitRequestAt(PageId page,
                                              std::uint32_t client,
                                              sim::SimTime at) {
  BDISK_DCHECK(page < program_->DbSize());
  const SubmitResult result = queue_.Submit(page);
  if (trace_ != nullptr) {
    const sim::TraceEventKind kind =
        result == SubmitResult::kAccepted
            ? sim::TraceEventKind::kRequestAccepted
            : (result == SubmitResult::kCoalesced
                   ? sim::TraceEventKind::kRequestCoalesced
                   : sim::TraceEventKind::kRequestDropped);
    trace_->Record(at, kind, page);
  }
  if (sink_ != nullptr) {
    const obs::SpanEvent ev =
        result == SubmitResult::kAccepted
            ? obs::SpanEvent::kSubmitAccepted
            : (result == SubmitResult::kCoalesced
                   ? obs::SpanEvent::kSubmitCoalesced
                   : obs::SpanEvent::kSubmitDropped);
    sink_->Record(at, ev, client, page, static_cast<double>(queue_.Size()));
  }
  if (collector_ != nullptr) {
    const obs::SubmitSample sample =
        result == SubmitResult::kAccepted
            ? obs::SubmitSample::kAccepted
            : (result == SubmitResult::kCoalesced
                   ? obs::SubmitSample::kCoalesced
                   : obs::SubmitSample::kDropped);
    collector_->OnSubmit(at, sample, queue_.Size());
  }
  return result;
}

std::uint32_t BroadcastServer::SchedulePosition() const {
  return cursor_ ? cursor_->Position() : 0;
}

std::uint32_t BroadcastServer::DistanceToNextPush(PageId page) const {
  if (!cursor_) return broadcast::BroadcastProgram::kNeverBroadcast;
  return cursor_->DistanceToNext(page);
}

void BroadcastServer::OnSlotBoundary() {
  // Barrier: the slot decision below reads the pull queue, and snoopers
  // react to the delivery; both must see every fused arrival up to now.
  simulator_->CatchUpLazySources();
  // Transmission of the in-flight slot completes now; deliver to snoopers.
  if (in_flight_page_ != broadcast::kNoPage) {
    const sim::SimTime now = simulator_->Now();
    for (BroadcastListener* listener : listeners_) {
      listener->OnBroadcast(in_flight_page_, in_flight_kind_, now);
    }
  }
  ChooseNextSlot();  // The periodic slot timer re-arms itself.
}

void BroadcastServer::ChooseNextSlot() {
  ++total_slots_;
  // Invariant: the counters below and the trace record the same decision.
  // Push/Pull MUX: a PullBW-weighted coin, but only when there is a queued
  // request — unused pull slots are given back to the push program (§2.2).
  if (!queue_.Empty() && rng_.NextBernoulli(pull_bw_)) {
    in_flight_page_ = queue_.PopFront();
    in_flight_kind_ = SlotKind::kPull;
    ++pull_slots_;
  } else if (cursor_) {
    in_flight_page_ = cursor_->Advance();
    if (in_flight_page_ != broadcast::kNoPage) {
      in_flight_kind_ = SlotKind::kPush;
      ++push_slots_;
    } else {
      in_flight_kind_ = SlotKind::kIdle;  // Schedule padding (kPad mode).
      ++idle_slots_;
    }
  } else {
    in_flight_page_ = broadcast::kNoPage;
    in_flight_kind_ = SlotKind::kIdle;
    ++idle_slots_;
  }
  if (trace_ != nullptr) {
    const sim::TraceEventKind kind =
        in_flight_kind_ == SlotKind::kPull
            ? sim::TraceEventKind::kSlotPull
            : (in_flight_kind_ == SlotKind::kPush
                   ? sim::TraceEventKind::kSlotPush
                   : sim::TraceEventKind::kSlotIdle);
    trace_->Record(simulator_->Now(), kind, in_flight_page_);
  }
  if (sink_ != nullptr) {
    const obs::SpanEvent ev =
        in_flight_kind_ == SlotKind::kPull
            ? obs::SpanEvent::kSlotPull
            : (in_flight_kind_ == SlotKind::kPush
                   ? obs::SpanEvent::kSlotPush
                   : obs::SpanEvent::kSlotIdle);
    sink_->Record(simulator_->Now(), ev, obs::kNoClient,
                  in_flight_page_ == broadcast::kNoPage ? obs::kNoTracePage
                                                        : in_flight_page_);
  }
  if (collector_ != nullptr) {
    const obs::SlotSample sample =
        in_flight_kind_ == SlotKind::kPull
            ? obs::SlotSample::kPull
            : (in_flight_kind_ == SlotKind::kPush ? obs::SlotSample::kPush
                                                  : obs::SlotSample::kIdle);
    collector_->OnSlot(simulator_->Now(), sample, queue_.Size());
  }
  if (ts_push_frac_ != nullptr) SampleSlotWindow();
}

void BroadcastServer::SampleSlotWindow() {
  switch (in_flight_kind_) {
    case SlotKind::kPush:
      ++window_push_;
      break;
    case SlotKind::kPull:
      ++window_pull_;
      break;
    case SlotKind::kIdle:
      ++window_idle_;
      break;
  }
  if (++window_slots_ < kMetricsWindowSlots) return;
  const sim::SimTime now = simulator_->Now();
  const double n = static_cast<double>(window_slots_);
  ts_push_frac_->Add(now, window_push_ / n);
  ts_pull_frac_->Add(now, window_pull_ / n);
  ts_idle_frac_->Add(now, window_idle_ / n);
  ts_queue_depth_->Add(now, static_cast<double>(queue_.Size()));
  window_slots_ = window_push_ = window_pull_ = window_idle_ = 0;
}

}  // namespace bdisk::server
