#ifndef BDISK_SERVER_BROADCAST_SERVER_H_
#define BDISK_SERVER_BROADCAST_SERVER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "broadcast/broadcast_program.h"
#include "broadcast/page.h"
#include "broadcast/schedule_cursor.h"
#include "broadcast/span_table.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "obs/phase_profiler.h"
#include "obs/trace_sink.h"
#include "obs/windowed_collector.h"
#include "obs/telemetry_bus.h"
#include "server/pull_queue.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "sim/types.h"

namespace bdisk::server {

/// What a broadcast slot carried, for accounting.
enum class SlotKind {
  kPush,  // A page from the periodic schedule.
  kPull,  // A page served from the backchannel queue.
  kIdle,  // Nothing (schedule padding, or Pure-Pull with an empty queue).
};

/// Receives every page that appears on the frontchannel. All clients snoop
/// the full broadcast: a page pulled by one client is visible to every
/// other (§2.3, "request/response with snooping").
class BroadcastListener {
 public:
  virtual ~BroadcastListener() = default;

  /// `page` finished transmission at time `now` (valid page, never kNoPage).
  /// `kind` says whether the slot was a scheduled push or a pull response.
  virtual void OnBroadcast(PageId page, SlotKind kind, sim::SimTime now) = 0;
};

/// The broadcast server: one page per broadcast unit, interleaving the
/// periodic Broadcast Disk program with responses to backchannel pulls.
///
/// The slot loop is the simulation's dominant event class (one event per
/// broadcast unit, forever), so it runs on the simulator's periodic-timer
/// fast path: the server registers itself once as the slot handler and
/// each boundary costs no heap push/pop and no allocation.
///
/// Slot semantics: the server picks the content of slot [t, t+1) at time t
/// (using the queue state at t) and the page is *delivered* to listeners at
/// t+1, when its transmission completes. Response times therefore include
/// the transmission unit, matching the paper's ~2-unit Pure-Pull floor.
///
/// The Push/Pull MUX (§2.2): when the pull queue is non-empty, a coin
/// weighted by `pull_bw` decides whether the slot serves the queue head or
/// the next page of the periodic program; an empty queue always yields the
/// slot back to the program, so `pull_bw` is an upper bound on pull
/// bandwidth. With no program at all (Pure-Pull) an empty queue idles the
/// slot.
class BroadcastServer : public sim::EventHandler {
 public:
  /// `program` may be empty (Pure-Pull). `pull_bw` in [0,1] is the PullBW
  /// fraction. `queue_capacity` is ServerQSize. The server schedules its
  /// own slot events on `simulator` starting at time Now()+1. The shared
  /// form lets many Systems in a sweep reference one immutable program.
  BroadcastServer(sim::Simulator* simulator,
                  std::shared_ptr<const broadcast::BroadcastProgram> program,
                  double pull_bw, std::uint32_t queue_capacity, sim::Rng rng);

  /// Convenience: takes the program by value and owns it.
  BroadcastServer(sim::Simulator* simulator,
                  broadcast::BroadcastProgram program, double pull_bw,
                  std::uint32_t queue_capacity, sim::Rng rng);

  BroadcastServer(const BroadcastServer&) = delete;
  BroadcastServer& operator=(const BroadcastServer&) = delete;

  /// Registers a frontchannel listener (not owned; must outlive the server).
  void AddListener(BroadcastListener* listener);

  /// Current PullBW fraction.
  double pull_bw() const { return pull_bw_; }

  /// Re-tunes the PullBW fraction (in [0,1]) at runtime — the knob a
  /// dynamic controller adjusts (paper §6: "as the contention on the
  /// server increases, a dynamic algorithm might automatically reduce the
  /// pull bandwidth"). Takes effect from the next slot decision.
  void SetPullBw(double pull_bw);

  /// Attaches a trace recorder (not owned; null detaches). Every slot
  /// decision and request outcome is recorded.
  void SetTraceRecorder(sim::TraceRecorder* recorder) {
    trace_ = recorder;
  }

  /// Attaches the system-wide structured trace (not owned; null detaches).
  /// Records every slot decision (at decision time t; delivery is at t+1)
  /// and every submit outcome, tagged with the submitting client.
  void SetTraceSink(obs::TraceSink* sink) { sink_ = sink; }

  /// Attaches the windowed telemetry collector (not owned; null detaches).
  /// Every slot decision and submit outcome is fed with its own timestamp
  /// and the queue depth after it. Same cost discipline as the trace sink:
  /// one pointer check when detached, no randomness, no events.
  void SetWindowedCollector(obs::WindowedCollector* collector) {
    collector_ = collector;
  }

  /// Attaches the streaming telemetry bus (not owned; null detaches) for
  /// degraded-mode enter/exit frames. Same cost discipline as the trace
  /// sink: one pointer check per hysteresis edge, no randomness, no
  /// events.
  void SetTelemetryBus(obs::TelemetryBus* bus) { telemetry_bus_ = bus; }

  /// Attaches the wall-clock phase profiler (not owned; null detaches).
  /// Frames: server.slot around each slot boundary, server.mux around the
  /// push/pull decision, server.queue around each queue submit, and
  /// fault.judge around injector judgements. Same cost discipline as the
  /// trace sink.
  void SetPhaseProfiler(obs::PhaseProfiler* profiler) {
    profiler_ = profiler;
  }

  /// Attaches the fault injector (not owned; null detaches — the default,
  /// and the zero-overhead path: one pointer check per slot and submit).
  /// With an injector attached the server (1) rolls each non-idle slot's
  /// fate (loss/corruption) before delivering to listeners, (2) drops
  /// backchannel arrivals lost in transit, delays others, and discards
  /// arrivals inside outage windows, and (3) runs degraded-mode admission
  /// control: when the queue depth crosses the plan's shed_hi watermark the
  /// server sheds arriving requests whose page has a near push slot and
  /// scales the MUX pull bandwidth by degraded_pull_bw, recovering at the
  /// shed_lo watermark (hysteresis).
  void SetFaultInjector(fault::FaultInjector* injector);

  /// Degraded-mode / outage accounting (all zero without an injector).
  bool InDegradedMode() const { return degraded_; }
  std::uint64_t DegradedEnters() const { return degraded_enters_; }
  std::uint64_t DegradedExits() const { return degraded_exits_; }
  std::uint64_t OutageSlots() const { return outage_slots_; }
  std::uint64_t OutagesStarted() const { return outages_started_; }

  /// Attaches a metrics registry (not owned). Resolves the server's
  /// time-series once — slot-mix fractions and queue depth, sampled every
  /// kMetricsWindowSlots slots — so the slot loop pays one pointer check
  /// when detached and plain integer bumps when attached. Consumes no
  /// randomness and schedules no events either way.
  void EnableMetrics(obs::MetricsRegistry* registry);

  /// Submits a backchannel pull request on behalf of `client` (a trace
  /// identity; obs::kNoClient when anonymous). The return value is for
  /// instrumentation only — per the model, clients get no feedback and must
  /// not branch on it.
  SubmitResult SubmitRequest(PageId page,
                             std::uint32_t client = obs::kNoClient);

  /// SubmitRequest with an explicit submission timestamp for trace
  /// records. This is the entry point for fused (lazy-source) arrivals
  /// drained at a barrier after their true arrival time: the queue outcome
  /// is identical, but the trace must carry the arrival's own timestamp,
  /// not the barrier's. Does not itself drain lazy sources.
  SubmitResult SubmitRequestAt(PageId page, std::uint32_t client,
                               sim::SimTime at);

  /// The periodic program (empty for Pure-Pull).
  const broadcast::BroadcastProgram& program() const { return *program_; }

  /// Current position in the push schedule (meaningless when the program is
  /// empty). Clients consult this for the threshold filter — the paper
  /// assumes clients know the broadcast schedule.
  std::uint32_t SchedulePosition() const;

  /// Push-schedule slots until `page` next appears from the current
  /// position; BroadcastProgram::kNeverBroadcast if it is not scheduled.
  std::uint32_t DistanceToNextPush(PageId page) const;

  /// Request-queue statistics.
  const PullQueue& queue() const { return queue_; }

  /// Slot accounting.
  std::uint64_t TotalSlots() const { return total_slots_; }
  std::uint64_t PushSlots() const { return push_slots_; }
  std::uint64_t PullSlots() const { return pull_slots_; }
  std::uint64_t IdleSlots() const { return idle_slots_; }

  /// Slot-mix sampling window for EnableMetrics time-series.
  static constexpr std::uint32_t kMetricsWindowSlots = 256;

 private:
  /// EventHandler: the periodic slot timer fired.
  void OnEvent() override { OnSlotBoundary(); }

  void OnSlotBoundary();
  void ChooseNextSlot();
  void SampleSlotWindow();

  /// Fault pipeline: the request reached the server (post loss/delay).
  SubmitResult SubmitArrived(PageId page, std::uint32_t client,
                             sim::SimTime at);
  /// Re-evaluates the degraded-mode watermarks after a depth change.
  void UpdateDegraded();
  /// Shared instrumentation for submit outcomes that never reach Submit().
  void RecordFaultSubmit(SubmitResult result, PageId page,
                         std::uint32_t client, sim::SimTime at);

  sim::Simulator* simulator_;
  std::shared_ptr<const broadcast::BroadcastProgram> program_;
  std::optional<broadcast::ScheduleCursor> cursor_;  // Absent if no program.
  double pull_bw_;
  PullQueue queue_;
  sim::Rng rng_;
  std::vector<BroadcastListener*> listeners_;
  sim::TraceRecorder* trace_ = nullptr;
  obs::TraceSink* sink_ = nullptr;
  obs::WindowedCollector* collector_ = nullptr;
  obs::TelemetryBus* telemetry_bus_ = nullptr;
  obs::PhaseProfiler* profiler_ = nullptr;

  // Fault-injection state (inert while injector_ is null). The watermark
  // depths and shed distance are resolved once in SetFaultInjector.
  fault::FaultInjector* injector_ = nullptr;
  std::uint32_t shed_enter_depth_ = 0;  // 0 = degraded mode disabled.
  std::uint32_t shed_exit_depth_ = 0;
  std::uint32_t shed_distance_ = 0;
  // Precomputed per-cycle shed decisions (`distance > shed_distance_` as
  // one bit per page x position); rebuilt whenever SetFaultInjector
  // re-resolves the shed threshold, null when infeasible (empty program /
  // oversized cycle) — the shed check then falls back to the cursor's
  // occurrence search.
  std::unique_ptr<const broadcast::CycleSpanTable> shed_table_;
  double degraded_pull_bw_mult_ = 1.0;
  bool degraded_ = false;
  bool outage_active_ = false;
  std::uint64_t degraded_enters_ = 0;
  std::uint64_t degraded_exits_ = 0;
  std::uint64_t outage_slots_ = 0;
  std::uint64_t outages_started_ = 0;

  PageId in_flight_page_ = broadcast::kNoPage;
  SlotKind in_flight_kind_ = SlotKind::kIdle;

  std::uint64_t total_slots_ = 0;
  std::uint64_t push_slots_ = 0;
  std::uint64_t pull_slots_ = 0;
  std::uint64_t idle_slots_ = 0;

  // EnableMetrics state: time-series resolved once (null = detached) plus
  // the current sampling window's slot-kind counts.
  sim::TimeSeries* ts_push_frac_ = nullptr;
  sim::TimeSeries* ts_pull_frac_ = nullptr;
  sim::TimeSeries* ts_idle_frac_ = nullptr;
  sim::TimeSeries* ts_queue_depth_ = nullptr;
  std::uint32_t window_slots_ = 0;
  std::uint32_t window_push_ = 0;
  std::uint32_t window_pull_ = 0;
  std::uint32_t window_idle_ = 0;
};

}  // namespace bdisk::server

#endif  // BDISK_SERVER_BROADCAST_SERVER_H_
