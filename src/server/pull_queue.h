#ifndef BDISK_SERVER_PULL_QUEUE_H_
#define BDISK_SERVER_PULL_QUEUE_H_

#include <cstdint>
#include <vector>

#include "broadcast/page.h"
#include "sim/byte_mask.h"

namespace bdisk::server {

using broadcast::PageId;

/// Outcome of submitting a pull request to the server (§2.2).
enum class SubmitResult {
  /// Queued; the page will eventually be broadcast in a pull slot.
  kAccepted,
  /// A request for this page is already queued; the earlier entry will
  /// satisfy this client too, so the duplicate is ignored.
  kCoalesced,
  /// The queue was full; the request is thrown away. Clients receive no
  /// feedback and fall back on the push schedule (the "safety net") if the
  /// page is on it.
  kDroppedFull,
  /// Degraded-mode admission control shed the request before it reached
  /// the queue: the server is overloaded and the page has a near-enough
  /// push slot to serve as the safety net (bdisk::fault).
  kShedOverload,
  /// The server was inside an outage window and discarded the request
  /// (bdisk::fault).
  kDroppedOutage,
  /// The request was lost on the backchannel and never reached the server
  /// (bdisk::fault). Reported to instrumentation only; the queue never
  /// sees it.
  kLostChannel,
};

/// The server's bounded backchannel request queue.
///
/// Holds up to `capacity` (ServerQSize) *distinct* pages, serviced FIFO.
/// Matches the paper's server model: duplicate requests coalesce, arrivals
/// at a full queue are dropped, and the queue never reorders.
class PullQueue {
 public:
  /// `capacity` >= 1; `db_size` bounds valid page ids.
  PullQueue(std::uint32_t capacity, std::uint32_t db_size);

  /// Submits a request for `page`; returns what happened to it.
  SubmitResult Submit(PageId page);

  /// Removes and returns the oldest queued page. Queue must be non-empty.
  PageId PopFront();

  /// True iff `page` is currently queued.
  bool IsQueued(PageId page) const { return queued_[page]; }

  bool Empty() const { return count_ == 0; }
  std::uint32_t Size() const { return count_; }
  std::uint32_t Capacity() const { return capacity_; }

  /// Records a request shed by degraded-mode admission control before it
  /// reached the queue. Counts toward SubmittedCount (the client did send
  /// it) but not DroppedCount, which stays capacity-only.
  void NoteShed() {
    ++submitted_;
    ++shed_;
  }

  /// Records a request discarded because the server was in an outage
  /// window. Same accounting discipline as NoteShed.
  void NoteOutageDrop() {
    ++submitted_;
    ++dropped_outage_;
  }

  /// Lifetime counters. DroppedCount is capacity overflow only; shed and
  /// outage losses are tallied separately so overload policy and infra
  /// failure never masquerade as queue-sizing problems.
  std::uint64_t SubmittedCount() const { return submitted_; }
  std::uint64_t AcceptedCount() const { return accepted_; }
  std::uint64_t CoalescedCount() const { return coalesced_; }
  std::uint64_t DroppedCount() const { return dropped_; }
  std::uint64_t ShedCount() const { return shed_; }
  std::uint64_t OutageDropCount() const { return dropped_outage_; }

  /// Deepest the queue has ever been (distinct queued pages) — how close
  /// the backchannel came to saturating even when nothing was dropped.
  std::uint32_t DepthHighWater() const { return depth_high_water_; }

  /// Fraction of submitted requests thrown away for any reason — capacity
  /// overflow, degraded-mode shedding, or outage windows. (Coalesced
  /// requests are *served* by the earlier entry, so they do not count as
  /// drops.) Identical to capacity-only dropped/submitted when no faults
  /// are configured. Returns 0 when nothing was submitted.
  double DropRate() const;

 private:
  std::uint32_t capacity_;
  // Fixed-size ring over a flat array: the capacity is bounded
  // (ServerQSize), so a preallocated ring replaces std::deque's chunked
  // indirection with one contiguous, cache-resident block.
  std::vector<PageId> ring_;  // capacity_ entries.
  std::uint32_t head_ = 0;    // Index of the oldest queued page.
  std::uint32_t count_ = 0;   // Queued pages.
  sim::ByteMask queued_;  // Byte-backed: one load per coalescing check.
  std::uint64_t submitted_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t dropped_outage_ = 0;
  std::uint32_t depth_high_water_ = 0;
};

}  // namespace bdisk::server

#endif  // BDISK_SERVER_PULL_QUEUE_H_
