#include "server/pull_queue.h"

#include "sim/check.h"

namespace bdisk::server {

PullQueue::PullQueue(std::uint32_t capacity, std::uint32_t db_size)
    : capacity_(capacity), queued_(db_size, false) {
  BDISK_CHECK_MSG(capacity >= 1, "queue capacity must be positive");
}

SubmitResult PullQueue::Submit(PageId page) {
  BDISK_DCHECK(page < queued_.size());
  ++submitted_;
  if (queued_[page]) {
    ++coalesced_;
    return SubmitResult::kCoalesced;
  }
  if (fifo_.size() >= capacity_) {
    ++dropped_;
    return SubmitResult::kDroppedFull;
  }
  fifo_.push_back(page);
  queued_[page] = true;
  ++accepted_;
  if (fifo_.size() > depth_high_water_) {
    depth_high_water_ = static_cast<std::uint32_t>(fifo_.size());
  }
  return SubmitResult::kAccepted;
}

PageId PullQueue::PopFront() {
  BDISK_CHECK_MSG(!fifo_.empty(), "PopFront() on an empty queue");
  const PageId page = fifo_.front();
  fifo_.pop_front();
  queued_[page] = false;
  return page;
}

double PullQueue::DropRate() const {
  if (submitted_ == 0) return 0.0;
  return static_cast<double>(dropped_ + shed_ + dropped_outage_) /
         static_cast<double>(submitted_);
}

}  // namespace bdisk::server
