#include "server/pull_queue.h"

#include "sim/check.h"

namespace bdisk::server {

PullQueue::PullQueue(std::uint32_t capacity, std::uint32_t db_size)
    : capacity_(capacity), ring_(capacity), queued_(db_size, false) {
  BDISK_CHECK_MSG(capacity >= 1, "queue capacity must be positive");
}

SubmitResult PullQueue::Submit(PageId page) {
  BDISK_DCHECK(page < queued_.size());
  ++submitted_;
  if (queued_[page]) {
    ++coalesced_;
    return SubmitResult::kCoalesced;
  }
  if (count_ >= capacity_) {
    ++dropped_;
    return SubmitResult::kDroppedFull;
  }
  std::uint32_t tail = head_ + count_;
  if (tail >= capacity_) tail -= capacity_;
  ring_[tail] = page;
  ++count_;
  queued_[page] = true;
  ++accepted_;
  if (count_ > depth_high_water_) depth_high_water_ = count_;
  return SubmitResult::kAccepted;
}

PageId PullQueue::PopFront() {
  BDISK_CHECK_MSG(count_ > 0, "PopFront() on an empty queue");
  const PageId page = ring_[head_];
  head_ = (head_ + 1 == capacity_) ? 0 : head_ + 1;
  --count_;
  queued_[page] = false;
  return page;
}

double PullQueue::DropRate() const {
  if (submitted_ == 0) return 0.0;
  return static_cast<double>(dropped_ + shed_ + dropped_outage_) /
         static_cast<double>(submitted_);
}

}  // namespace bdisk::server
