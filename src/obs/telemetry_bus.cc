#include "obs/telemetry_bus.h"

#include <utility>

#include "obs/json.h"
#include "sim/check.h"

namespace bdisk::obs {

// Shared shape of every frame: schema tag, kind, seq, sim/wall stamps.
// Scoped helper so each Emit* reads as "header, then payload".
class TelemetryBus::FrameBuilder {
 public:
  // Borrows the bus's scratch writer: frames are built strictly one at a
  // time, so reusing a single buffer makes the window path allocation-free
  // in steady state.
  FrameBuilder(TelemetryBus* bus, const char* kind)
      : bus_(bus), writer_(bus->scratch_writer_) {
    writer_.Clear();
    writer_.Reserve(1024);  // Typical window frame; first frame only.
    writer_.BeginObject();
    writer_.Key("schema");
    writer_.Value("bdisk-frame-v1");
    writer_.Key("kind");
    writer_.Value(kind);
    writer_.Key("seq");
    writer_.Value(bus->next_seq_);
  }

  JsonWriter& writer() { return writer_; }

  void Sim(sim::SimTime now) {
    writer_.Key("sim");
    writer_.Value(now);
  }

  void Wall() {
    if (!bus_->wall_clock_) return;
    writer_.Key("wall_ms");
    writer_.Value(bus_->WallMs());
  }

  /// Emits {"name": value, ...} for a counter vector under `key`. With
  /// `skip_zeros`, entries whose value is 0 are omitted — used for window
  /// deltas, where a counter that did not move this window carries no
  /// information (reconciliation sums whatever is present) and the saved
  /// bytes are most of the frame.
  void Counters(const char* key, const std::vector<std::uint64_t>& values,
                bool skip_zeros = false) {
    writer_.Key(key);
    writer_.BeginObject();
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (skip_zeros && values[i] == 0) continue;
      writer_.Key(bus_->counter_names_[i]);
      writer_.Value(values[i]);
    }
    writer_.EndObject();
  }

  const std::string& Finish() {
    writer_.EndObject();
    return writer_.str();
  }

 private:
  TelemetryBus* bus_;
  JsonWriter& writer_;
};

TelemetryBus::TelemetryBus(std::unique_ptr<FrameSink> sink)
    : sink_(std::move(sink)), started_(std::chrono::steady_clock::now()) {
  BDISK_CHECK_MSG(sink_ != nullptr, "TelemetryBus needs a sink");
}

TelemetryBus::~TelemetryBus() = default;

void TelemetryBus::SetProbe(
    std::function<std::vector<CounterSample>()> probe) {
  probe_ = std::move(probe);
  counter_names_.clear();
  base_.clear();
  if (!probe_) return;
  for (const CounterSample& sample : probe_()) {
    counter_names_.push_back(sample.name);
    base_.push_back(sample.value);
  }
  credited_ = base_;
}

void TelemetryBus::Probe(std::vector<std::uint64_t>* out) const {
  out->clear();
  if (!probe_) return;
  out->reserve(counter_names_.size());
  for (const CounterSample& sample : probe_()) out->push_back(sample.value);
  BDISK_CHECK_MSG(out->size() == counter_names_.size(),
                  "telemetry probe changed shape between calls");
}

double TelemetryBus::WallMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - started_)
      .count();
}

bool TelemetryBus::Send(const std::string& frame, bool final_frame) {
  ++next_seq_;
  const bool accepted =
      final_frame ? sink_->WriteFinal(frame) : sink_->Write(frame);
  if (!accepted) ++frames_dropped_;
  return accepted;
}

void TelemetryBus::EmitRunStart(
    sim::SimTime now,
    const std::vector<std::pair<std::string, std::string>>& provenance) {
  FrameBuilder frame(this, "run_start");
  frame.Sim(now);
  frame.Wall();
  frame.writer().Key("provenance");
  frame.writer().BeginObject();
  for (const auto& [key, value] : provenance) {
    frame.writer().Key(key);
    frame.writer().Value(value);
  }
  frame.writer().EndObject();
  frame.Counters("base", base_);
  Send(frame.Finish(), /*final_frame=*/false);
}

void TelemetryBus::OnWindow(const WindowStats& w) {
  ++window_frames_;
  Probe(&scratch_current_);
  const std::vector<std::uint64_t>& current = scratch_current_;

  FrameBuilder frame(this, "window");
  frame.Sim(w.end);
  frame.Wall();

  JsonWriter& j = frame.writer();
  j.Key("window");
  j.BeginObject();
  j.Key("start");
  j.Value(w.start);
  j.Key("end");
  j.Value(w.end);
  j.Key("slots_push");
  j.Value(w.slots_push);
  j.Key("slots_pull");
  j.Value(w.slots_pull);
  j.Key("slots_idle");
  j.Value(w.slots_idle);
  j.Key("push_frac");
  j.Value(w.PushFrac());
  j.Key("drop_rate");
  j.Value(w.DropRate());
  j.Key("shed_rate");
  j.Value(w.ShedRate());
  j.Key("loss_rate");
  j.Value(w.LossRate());
  j.Key("responses");
  j.Value(w.responses);
  j.Key("response_mean");
  j.Value(w.response_mean);
  j.Key("response_p50");
  j.Value(w.response_p50);
  j.Key("response_p99");
  j.Value(w.response_p99);
  j.Key("response_max");
  j.Value(w.response_max);
  j.EndObject();

  j.Key("gauges");
  j.BeginObject();
  j.Key("queue_depth");
  j.Value(static_cast<std::uint64_t>(w.queue_depth));
  j.Key("queue_depth_max");
  j.Value(static_cast<std::uint64_t>(w.queue_depth_max));
  j.Key("degraded");
  j.Value(static_cast<std::uint64_t>(degraded_ ? 1 : 0));
  j.EndObject();

  scratch_deltas_.assign(current.size(), 0);
  for (std::size_t i = 0; i < current.size(); ++i) {
    scratch_deltas_[i] = current[i] - credited_[i];
  }
  frame.Counters("deltas", scratch_deltas_, /*skip_zeros=*/true);

  if (Send(frame.Finish(), /*final_frame=*/false)) credited_ = current;
}

void TelemetryBus::OnDegraded(sim::SimTime now, bool entering,
                              std::uint32_t queue_depth) {
  degraded_ = entering;
  FrameBuilder frame(this, entering ? "degraded_enter" : "degraded_exit");
  frame.Sim(now);
  frame.Wall();
  frame.writer().Key("queue_depth");
  frame.writer().Value(static_cast<std::uint64_t>(queue_depth));
  Send(frame.Finish(), /*final_frame=*/false);
}

void TelemetryBus::OnFlightFire(sim::SimTime window_end, const char* trigger,
                                double threshold, double value,
                                std::uint64_t fire_count) {
  FrameBuilder frame(this, "flight_fire");
  frame.Sim(window_end);
  frame.Wall();
  JsonWriter& j = frame.writer();
  j.Key("trigger");
  j.Value(trigger);
  j.Key("threshold");
  j.Value(threshold);
  j.Key("value");
  j.Value(value);
  j.Key("fire_count");
  j.Value(fire_count);
  Send(frame.Finish(), /*final_frame=*/false);
}

void TelemetryBus::EmitRunEnd(sim::SimTime now) {
  Probe(&scratch_current_);
  const std::vector<std::uint64_t>& current = scratch_current_;

  FrameBuilder frame(this, "run_end");
  frame.Sim(now);
  frame.Wall();

  // Closing deltas: whatever the last accepted frame did not yet carry
  // (including deltas carried forward over dropped window frames). With
  // them, base + sum of every received frame's deltas == totals exactly.
  scratch_deltas_.assign(current.size(), 0);
  for (std::size_t i = 0; i < current.size(); ++i) {
    scratch_deltas_[i] = current[i] - credited_[i];
  }
  frame.Counters("deltas", scratch_deltas_, /*skip_zeros=*/true);
  frame.Counters("totals", current);
  frame.Counters("base", base_);

  JsonWriter& j = frame.writer();
  j.Key("window_frames");
  j.Value(window_frames_);
  // Counts as of this frame: run_end's own seq is next_seq_, so a checker
  // can verify it received every non-dropped frame.
  j.Key("frames_emitted");
  j.Value(next_seq_ + 1);
  j.Key("frames_dropped");
  j.Value(frames_dropped_);

  if (Send(frame.Finish(), /*final_frame=*/true)) credited_ = current;
}

}  // namespace bdisk::obs
