#include "obs/progress.h"

#include "sim/check.h"

namespace bdisk::obs {

ProgressReporter::ProgressReporter(sim::Simulator* simulator,
                                   sim::SimTime interval, std::FILE* out)
    : simulator_(simulator), interval_(interval), out_(out) {
  BDISK_CHECK_MSG(simulator != nullptr, "progress reporter needs a simulator");
  BDISK_CHECK_MSG(interval > 0.0, "progress interval must be positive");
}

void ProgressReporter::Start() {
  wall_start_ = std::chrono::steady_clock::now();
  last_wall_ = wall_start_;
  last_events_ = simulator_->EventsExecuted();
  simulator_->ScheduleAfter(interval_, sim::EventFn(this));
}

void ProgressReporter::OnEvent() {
  const auto now_wall = std::chrono::steady_clock::now();
  const double dt =
      std::chrono::duration<double>(now_wall - last_wall_).count();
  const std::uint64_t events = simulator_->EventsExecuted();
  const double rate =
      dt > 0.0 ? static_cast<double>(events - last_events_) / dt : 0.0;

  std::fprintf(out_, "[bdisk] t=%.0f events=%llu events/s=%.3g",
               simulator_->Now(),
               static_cast<unsigned long long>(events), rate);
  if (fraction_) {
    const double f = fraction_();
    std::fprintf(out_, " done=%.1f%%", 100.0 * f);
    if (f > 0.0 && f < 1.0) {
      const double elapsed =
          std::chrono::duration<double>(now_wall - wall_start_).count();
      std::fprintf(out_, " eta=%.0fs", elapsed * (1.0 - f) / f);
    }
  }
  std::fputc('\n', out_);
  std::fflush(out_);

  last_wall_ = now_wall;
  last_events_ = events;
  simulator_->ScheduleAfter(interval_, sim::EventFn(this));
}

}  // namespace bdisk::obs
