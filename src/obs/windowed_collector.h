#ifndef BDISK_OBS_WINDOWED_COLLECTOR_H_
#define BDISK_OBS_WINDOWED_COLLECTOR_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "obs/metrics.h"
#include "sim/types.h"

namespace bdisk::obs {

class FlightRecorder;
class TelemetryBus;

/// What a slot decision carried (mirrors the server's MUX outcome without
/// making obs depend on server types).
enum class SlotSample : std::uint8_t { kPush = 0, kPull, kIdle };

/// What happened to one backchannel submit. The last three arise only
/// under bdisk::fault (shedding, outage windows, channel loss).
enum class SubmitSample : std::uint8_t {
  kAccepted = 0,
  kCoalesced,
  kDropped,
  kShed,
  kOutage,
  kLost,
};

/// Aggregates over one telemetry window [start, end).
struct WindowStats {
  sim::SimTime start = 0.0;
  sim::SimTime end = 0.0;

  std::uint64_t slots_push = 0;
  std::uint64_t slots_pull = 0;
  std::uint64_t slots_idle = 0;

  std::uint64_t submits = 0;  // Every OnSubmit outcome below.
  std::uint64_t accepted = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t dropped = 0;
  // bdisk::fault outcomes; all zero without an active FaultPlan.
  std::uint64_t shed = 0;            // Degraded-mode admission control.
  std::uint64_t outage_dropped = 0;  // Discarded inside an outage window.
  std::uint64_t lost = 0;            // Lost on the backchannel.
  std::uint64_t slots_lost = 0;      // Slots lost/corrupted in transit.

  std::uint32_t queue_depth = 0;      // Last observed in the window.
  std::uint32_t queue_depth_max = 0;  // High-water within the window.

  std::uint64_t responses = 0;  // Completed accesses (hits included).
  double response_mean = 0.0;
  double response_p50 = 0.0;
  double response_p99 = 0.0;
  double response_max = 0.0;

  std::uint64_t Slots() const { return slots_push + slots_pull + slots_idle; }
  double PushFrac() const;
  double PullFrac() const;
  double IdleFrac() const;
  double DropRate() const;  // dropped / submits, 0 when no submits.
  double ShedRate() const;  // (shed + outage_dropped) / submits.
  double LossRate() const;  // slots_lost / Slots(), 0 when no slots.
};

/// Bounded per-window time-series of queue depth, drop rate, slot split,
/// and response percentiles, fed from the same instrumentation points as
/// the registry (null-pointer-check attach discipline, DESIGN.md §6).
///
/// The collector is purely reactive: it never consumes randomness and never
/// schedules events, so attaching it leaves the trajectory bit-identical.
/// Windows advance only when fed — event times are non-decreasing because
/// every emission site sits behind a lazy-source drain barrier — and the
/// per-window response histogram is Reset() in place (no allocation) at
/// each boundary. At most `capacity` completed windows are retained,
/// oldest evicted first.
class WindowedCollector {
 public:
  /// `window` is the width in broadcast units, `response_hi` the upper
  /// bound of the per-window response histogram (percentile resolution).
  explicit WindowedCollector(double window = 100.0,
                             std::size_t capacity = 4096,
                             double response_hi = 4096.0);

  /// Forward completed windows to `recorder` for trigger evaluation
  /// (null detaches).
  void SetFlightRecorder(FlightRecorder* recorder) { recorder_ = recorder; }

  /// Stream completed windows to `bus` as `window` frames (null detaches).
  /// The bus is notified before the flight recorder, so a window's frame
  /// always precedes any flight_fire frame it provokes.
  void SetTelemetryBus(TelemetryBus* bus) { bus_ = bus; }

  /// Instrumentation feeds (call sites hold a null-checked raw pointer).
  /// Inline on purpose: these run once per slot / submit / access, and the
  /// common case is "window still open" — one compare, a few increments.
  /// Window rollover takes the out-of-line slow path.
  void OnSlot(sim::SimTime now, SlotSample kind, std::uint32_t queue_depth) {
    Roll(now);
    switch (kind) {
      case SlotSample::kPush:
        ++current_.slots_push;
        break;
      case SlotSample::kPull:
        ++current_.slots_pull;
        break;
      case SlotSample::kIdle:
        ++current_.slots_idle;
        break;
    }
    current_.queue_depth = queue_depth;
    if (queue_depth > current_.queue_depth_max) {
      current_.queue_depth_max = queue_depth;
    }
  }
  void OnSubmit(sim::SimTime at, SubmitSample outcome,
                std::uint32_t queue_depth) {
    Roll(at);
    ++current_.submits;
    switch (outcome) {
      case SubmitSample::kAccepted:
        ++current_.accepted;
        break;
      case SubmitSample::kCoalesced:
        ++current_.coalesced;
        break;
      case SubmitSample::kDropped:
        ++current_.dropped;
        break;
      case SubmitSample::kShed:
        ++current_.shed;
        break;
      case SubmitSample::kOutage:
        ++current_.outage_dropped;
        break;
      case SubmitSample::kLost:
        ++current_.lost;
        break;
    }
    current_.queue_depth = queue_depth;
    if (queue_depth > current_.queue_depth_max) {
      current_.queue_depth_max = queue_depth;
    }
  }
  void OnResponse(sim::SimTime now, double response_time) {
    Roll(now);
    response_hist_.Add(response_time);
  }
  /// A slot's page was lost or corrupted in transit (bdisk::fault).
  void OnSlotLoss(sim::SimTime now) {
    Roll(now);
    ++current_.slots_lost;
  }

  /// Closes the in-progress window (if it saw any event). Call at run end;
  /// feeding after Finish() starts a fresh window.
  void Finish();

  /// Completed windows, oldest first.
  std::vector<WindowStats> Windows() const;

  double WindowWidth() const { return window_; }
  std::uint64_t WindowsCompleted() const { return windows_completed_; }
  std::uint64_t WindowsEvicted() const { return windows_evicted_; }

  /// Publishes the retained windows as "window.*" time-series (sample time
  /// = window start) plus "window.width"/"window.count" gauges.
  void PublishTo(MetricsRegistry* registry) const;

 private:
  void Roll(sim::SimTime now) {
    if (open_ && now < current_.end) return;
    RollSlow(now);
  }
  void RollSlow(sim::SimTime now);
  void CloseCurrent();

  double window_;
  std::size_t capacity_;
  bool open_ = false;  // current_ has a valid [start, end).
  WindowStats current_;
  LatencyHistogram response_hist_;
  std::deque<WindowStats> ring_;
  std::uint64_t windows_completed_ = 0;
  std::uint64_t windows_evicted_ = 0;
  FlightRecorder* recorder_ = nullptr;
  TelemetryBus* bus_ = nullptr;
};

}  // namespace bdisk::obs

#endif  // BDISK_OBS_WINDOWED_COLLECTOR_H_
