#ifndef BDISK_OBS_PROGRESS_H_
#define BDISK_OBS_PROGRESS_H_

#include <chrono>
#include <cstdio>
#include <functional>

#include "sim/simulator.h"
#include "sim/types.h"

namespace bdisk::obs {

/// A periodic stderr heartbeat for long runs: simulated time, events
/// executed, wall-clock event rate, and — when a completion-fraction
/// callback is supplied — percent done and an ETA extrapolated from the
/// wall-clock spent so far.
///
/// The reporter schedules itself on the simulator (every `interval`
/// simulated units), so enabling it changes the event stream; use it for
/// interactive runs, never under golden pins. It is an EventHandler, not a
/// Process: one pointer in the event queue, no allocation per heartbeat.
class ProgressReporter : public sim::EventHandler {
 public:
  /// Heartbeats every `interval` simulated broadcast units to `out`
  /// (default stderr).
  ProgressReporter(sim::Simulator* simulator, sim::SimTime interval,
                   std::FILE* out = stderr);

  /// Optional: reports completion in [0,1]; enables "done%" and ETA.
  void SetFractionCallback(std::function<double()> fraction) {
    fraction_ = std::move(fraction);
  }

  /// Schedules the first heartbeat (one interval from now) and starts the
  /// wall clock.
  void Start();

 private:
  void OnEvent() override;

  sim::Simulator* simulator_;
  sim::SimTime interval_;
  std::FILE* out_;
  std::function<double()> fraction_;
  std::chrono::steady_clock::time_point wall_start_;
  std::chrono::steady_clock::time_point last_wall_;
  std::uint64_t last_events_ = 0;
};

}  // namespace bdisk::obs

#endif  // BDISK_OBS_PROGRESS_H_
