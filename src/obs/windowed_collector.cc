#include "obs/windowed_collector.h"

#include <algorithm>
#include <cmath>

#include "obs/flight_recorder.h"
#include "obs/telemetry_bus.h"
#include "sim/check.h"

namespace bdisk::obs {

namespace {

double Frac(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0
                    : static_cast<double>(part) / static_cast<double>(whole);
}

}  // namespace

double WindowStats::PushFrac() const { return Frac(slots_push, Slots()); }
double WindowStats::PullFrac() const { return Frac(slots_pull, Slots()); }
double WindowStats::IdleFrac() const { return Frac(slots_idle, Slots()); }
double WindowStats::DropRate() const { return Frac(dropped, submits); }
double WindowStats::ShedRate() const {
  return Frac(shed + outage_dropped, submits);
}
double WindowStats::LossRate() const { return Frac(slots_lost, Slots()); }

WindowedCollector::WindowedCollector(double window, std::size_t capacity,
                                     double response_hi)
    : window_(window),
      capacity_(capacity),
      response_hist_(0.0, response_hi, 256) {
  BDISK_CHECK_MSG(window > 0.0, "telemetry window width must be positive");
  BDISK_CHECK_MSG(capacity >= 1, "telemetry window capacity must be >= 1");
}

void WindowedCollector::CloseCurrent() {
  current_.responses = response_hist_.Count();
  if (current_.responses > 0) {
    current_.response_mean = response_hist_.Mean();
    current_.response_p50 = response_hist_.Percentile(0.50);
    current_.response_p99 = response_hist_.Percentile(0.99);
    current_.response_max = response_hist_.Max();
  }
  ring_.push_back(current_);
  ++windows_completed_;
  if (ring_.size() > capacity_) {
    ring_.pop_front();
    ++windows_evicted_;
  }
  if (bus_ != nullptr) bus_->OnWindow(ring_.back());
  if (recorder_ != nullptr) recorder_->OnWindow(ring_.back());
  response_hist_.Reset();  // In place — no allocation per window.
}

void WindowedCollector::RollSlow(sim::SimTime now) {
  if (!open_) {
    // Anchor the window grid at multiples of the width so window edges are
    // config-derived, not dependent on when the first event lands.
    const double base = std::floor(now / window_) * window_;
    current_ = WindowStats{};
    current_.start = base;
    current_.end = base + window_;
    open_ = true;
    return;
  }
  while (now >= current_.end) {
    const sim::SimTime next_start = current_.end;
    CloseCurrent();
    current_ = WindowStats{};
    current_.start = next_start;
    current_.end = next_start + window_;
  }
}

void WindowedCollector::Finish() {
  if (!open_) return;
  CloseCurrent();
  open_ = false;
}

std::vector<WindowStats> WindowedCollector::Windows() const {
  return std::vector<WindowStats>(ring_.begin(), ring_.end());
}

void WindowedCollector::PublishTo(MetricsRegistry* registry) const {
  registry->GetGauge("window.width")->Set(window_);
  registry->GetGauge("window.count")
      ->Set(static_cast<double>(ring_.size()));
  registry->GetGauge("window.evicted")
      ->Set(static_cast<double>(windows_evicted_));
  sim::TimeSeries* queue_depth = registry->GetTimeSeries("window.queue_depth");
  sim::TimeSeries* queue_max = registry->GetTimeSeries("window.queue_max");
  sim::TimeSeries* drop_rate = registry->GetTimeSeries("window.drop_rate");
  sim::TimeSeries* push_frac = registry->GetTimeSeries("window.push_frac");
  sim::TimeSeries* pull_frac = registry->GetTimeSeries("window.pull_frac");
  sim::TimeSeries* idle_frac = registry->GetTimeSeries("window.idle_frac");
  sim::TimeSeries* p50 = registry->GetTimeSeries("window.response_p50");
  sim::TimeSeries* p99 = registry->GetTimeSeries("window.response_p99");
  // Fault-era series are published only when the run saw any such event:
  // a fault-free snapshot stays key-identical to pre-fault baselines (the
  // bdisk_compare gate treats new keys as regressions).
  bool any_shed = false;
  bool any_loss = false;
  for (const WindowStats& w : ring_) {
    any_shed = any_shed || w.shed > 0 || w.outage_dropped > 0;
    any_loss = any_loss || w.slots_lost > 0 || w.lost > 0;
  }
  sim::TimeSeries* shed_rate =
      any_shed ? registry->GetTimeSeries("window.shed_rate") : nullptr;
  sim::TimeSeries* loss_rate =
      any_loss ? registry->GetTimeSeries("window.loss_rate") : nullptr;
  for (const WindowStats& w : ring_) {
    queue_depth->Add(w.start, w.queue_depth);
    queue_max->Add(w.start, w.queue_depth_max);
    drop_rate->Add(w.start, w.DropRate());
    push_frac->Add(w.start, w.PushFrac());
    pull_frac->Add(w.start, w.PullFrac());
    idle_frac->Add(w.start, w.IdleFrac());
    p50->Add(w.start, w.response_p50);
    p99->Add(w.start, w.response_p99);
    if (shed_rate != nullptr) shed_rate->Add(w.start, w.ShedRate());
    if (loss_rate != nullptr) loss_rate->Add(w.start, w.LossRate());
  }
}

}  // namespace bdisk::obs
