#include "obs/phase_profiler.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/span_assembler.h"

namespace bdisk::obs {

const char* PhaseName(Phase p) {
  switch (p) {
    case Phase::kRun:
      return "run";
    case Phase::kQueueSchedule:
      return "queue.schedule";
    case Phase::kQueuePop:
      return "queue.pop";
    case Phase::kKernelSpan:
      return "kernel.span";
    case Phase::kDrain:
      return "kernel.drain";
    case Phase::kVcArrival:
      return "vc.arrival";
    case Phase::kServerSlot:
      return "server.slot";
    case Phase::kServerMux:
      return "server.mux";
    case Phase::kServerQueue:
      return "server.queue";
    case Phase::kMcRequest:
      return "mc.request";
    case Phase::kMcDelivery:
      return "mc.delivery";
    case Phase::kFaultJudge:
      return "fault.judge";
    case Phase::kCount:
      break;
  }
  return "unknown";
}

namespace {

const char* ClockName() {
#if defined(__x86_64__) || defined(_M_X64)
  return "rdtsc";
#else
  return "steady_clock";
#endif
}

}  // namespace

PhaseProfiler::PhaseProfiler(std::size_t slice_capacity) {
  // Deterministic per-phase sampling strides ((calls & mask) == 0 times
  // the frame). Rare phases (run, mc.request) are exact. Span and drain
  // windows force their whole subtree timed, so their strides are the main
  // overhead lever: a timed span times every slot it covers, a hundred or
  // more frames per window at light load. The hottest counter-only sites
  // get the longest strides: server.queue rides every pull submit
  // (several per slot), and on the unbatched (heap-stepped) kernel every
  // slot rides queue.pop, whose sampled windows force the whole slot
  // subtree.
  static constexpr std::uint64_t kMasks[kPhaseCount] = {
      /*run*/ 0,
      /*queue.schedule*/ 255,
      /*queue.pop*/ 255,
      /*kernel.span*/ 127,
      /*kernel.drain*/ 127,
      /*vc.arrival*/ 127,
      /*server.slot*/ 127,
      /*server.mux*/ 127,
      /*server.queue*/ 255,
      /*mc.request*/ 0,
      /*mc.delivery*/ 127,
      /*fault.judge*/ 127,
  };
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    stats_[i].sample_mask = kMasks[i];
  }
  slice_capacity_ = slice_capacity;
  slices_.reserve(slice_capacity_);
  // Calibrate the bracket-read cost: the one per-frame compensation term
  // that cannot be measured in situ (a read cannot time itself). rdtsc
  // has no elidable pure form, so the loop stands as written.
  constexpr int kReadIters = 256;
  std::uint64_t acc = 0;
  const std::uint64_t c0 = ReadTicks();
  for (int i = 1; i < kReadIters; ++i) acc += ReadTicks();
  const std::uint64_t c1 = ReadTicks();
  volatile std::uint64_t sink = acc;  // Keep the loop reads observable.
  (void)sink;
  tick_read_ticks_ = (c1 - c0) / kReadIters;
  // Self-calibrate the remaining per-frame residue — the costs the
  // brackets cannot see (their own issue latency, the untimed Enter
  // prefix, PhaseScope itself). A window of empty forced frames contains
  // nothing but instrumentation, so whatever survives the bracket
  // compensation is, by construction, that residue. The probe mimics a
  // production slot subtree (scopes, nesting, alternating phases) so the
  // measured mix is realistic; warm caches still make it a mild
  // underestimate, so corrections lean toward never eating real work.
  constexpr std::uint64_t kProbeIters = 256;
  EnterTimed(Phase::kKernelSpan);  // Forces the probe frames timed.
  for (std::uint64_t i = 0; i < kProbeIters; ++i) {
    PhaseScope slot(this, Phase::kServerSlot);
    {
      PhaseScope drain(this, Phase::kDrain);
      PhaseScope vc(this, Phase::kVcArrival);
      vc.AddOps(1);
    }
    PhaseScope mux(this, Phase::kServerMux);
  }
  ExitTimed();
  frame_residual_ticks_ =
      stats_[static_cast<std::size_t>(Phase::kKernelSpan)].total_ticks /
      (4 * kProbeIters);
  // Scrub every trace of the probe; real sampling starts from zero.
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    stats_[i] = PhaseStats{};
    stats_[i].sample_mask = kMasks[i];
    folded_memo_[i] = nullptr;
    folded_memo_key_[i] = 0;
  }
  folded_.clear();
  slices_.clear();
  slices_dropped_ = 0;
  depth_overflow_ = 0;
  anchor_ticks_ = ReadTicks();
  anchor_time_ = std::chrono::steady_clock::now();
}

void PhaseProfiler::Finalize() {
  if (ns_per_tick_ > 0.0) return;
  const std::uint64_t end_ticks = ReadTicks();
  const auto end_time = std::chrono::steady_clock::now();
  const double ns =
      std::chrono::duration<double, std::nano>(end_time - anchor_time_)
          .count();
  const double ticks = static_cast<double>(end_ticks - anchor_ticks_);
  ns_per_tick_ = (ticks > 0.0 && ns > 0.0) ? ns / ticks : 1.0;

  // Solve for the in-situ per-frame leak the warm-cache probe missed.
  // The root window is trusted (scale 1, wall minus captured
  // instrumentation) and no phase nested in it can exceed it, yet an
  // extrapolated phase's uncorrected estimate can: the excess is leak
  // times the phase's (scaled) descendant-frame count. Corrected totals
  // are linear in the leak, so each violating phase gives a lower bound
  //   (T_p - T_run) / (D_p - D_run)
  // and the binding (largest) one is the estimate; by construction it
  // lands that phase exactly on the run total.
  const PhaseStats& run = stats_[static_cast<std::size_t>(Phase::kRun)];
  if (run.timed_calls == 0) return;
  const double run_total = static_cast<double>(run.total_ticks);
  const double run_desc = static_cast<double>(run.desc_frames);
  for (std::size_t i = 1; i < kPhaseCount; ++i) {
    const PhaseStats& s = stats_[i];
    if (s.timed_calls == 0) continue;
    const double scale =
        static_cast<double>(s.calls) / static_cast<double>(s.timed_calls);
    const double tp = static_cast<double>(s.total_ticks) * scale;
    const double dp = static_cast<double>(s.desc_frames) * scale;
    if (tp > run_total && dp > run_desc) {
      leak_ticks_ = std::max(leak_ticks_, (tp - run_total) / (dp - run_desc));
    }
  }
}

double PhaseProfiler::EstTotalNs(Phase p) const {
  const PhaseStats& s = stats_[static_cast<std::size_t>(p)];
  if (s.timed_calls == 0) return 0.0;
  const double scale =
      static_cast<double>(s.calls) / static_cast<double>(s.timed_calls);
  return CorrectedTicks(s) * scale * ns_per_tick_;
}

double PhaseProfiler::EstSelfNs(Phase p) const {
  if (p == Phase::kRun) {
    // The root's own sampled self-time is contaminated by untimed child
    // windows; report the residual instead, so self-times sum to the run.
    double attributed = 0.0;
    for (std::size_t i = 1; i < kPhaseCount; ++i) {
      attributed += EstSelfNs(static_cast<Phase>(i));
    }
    return std::max(0.0, EstTotalNs(Phase::kRun) - attributed);
  }
  const PhaseStats& s = stats_[static_cast<std::size_t>(p)];
  if (s.timed_calls == 0) return 0.0;
  const double scale =
      static_cast<double>(s.calls) / static_cast<double>(s.timed_calls);
  return static_cast<double>(s.self_ticks) * scale * ns_per_tick_;
}

double PhaseProfiler::NsPerOp(Phase p) const {
  const PhaseStats& s = stats_[static_cast<std::size_t>(p)];
  const double total = CorrectedTicks(s) * ns_per_tick_;
  if (s.timed_ops > 0) return total / static_cast<double>(s.timed_ops);
  if (s.timed_calls > 0) return total / static_cast<double>(s.timed_calls);
  return 0.0;
}

namespace {

/// Decodes a packed path key ("8 bits per level, leaf in the low byte")
/// into "run;kernel.span;server.slot".
std::string DecodePath(std::uint64_t key) {
  std::string out;
  for (int shift = 56; shift >= 0; shift -= 8) {
    const std::uint64_t level = (key >> shift) & 0xff;
    if (level == 0) continue;
    if (!out.empty()) out += ';';
    out += PhaseName(static_cast<Phase>(level - 1));
  }
  return out;
}

}  // namespace

std::vector<std::pair<std::string, double>> PhaseProfiler::FoldedNs() {
  Finalize();
  std::vector<std::pair<std::string, double>> lines;
  const std::uint64_t run_key = PackPhase(Phase::kRun);
  double attributed = 0.0;
  for (const auto& [key, self_ticks] : folded_) {
    if (key == run_key) continue;
    const Phase leaf = static_cast<Phase>((key & 0xff) - 1);
    const PhaseStats& s = stats_[static_cast<std::size_t>(leaf)];
    const double scale =
        s.timed_calls > 0 ? static_cast<double>(s.calls) /
                                static_cast<double>(s.timed_calls)
                          : 1.0;
    const double ns = static_cast<double>(self_ticks) * scale * ns_per_tick_;
    attributed += ns;
    lines.emplace_back(DecodePath(key), ns);
  }
  const double run_total = EstTotalNs(Phase::kRun);
  if (stats_[static_cast<std::size_t>(Phase::kRun)].calls > 0) {
    lines.emplace_back("run", std::max(0.0, run_total - attributed));
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

std::string PhaseProfiler::ToFolded() {
  std::string out;
  char buf[32];
  for (const auto& [path, ns] : FoldedNs()) {
    out += path;
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(std::llround(ns)));
    out += buf;
  }
  return out;
}

void PhaseProfiler::MergeInto(MetricsRegistry* registry) {
  Finalize();
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const Phase p = static_cast<Phase>(i);
    const PhaseStats& s = stats_[i];
    if (s.calls == 0) continue;
    const std::string base = std::string("prof.") + PhaseName(p);
    registry->GetCounter(base + ".calls")->Set(s.calls);
    registry->GetCounter(base + ".ops")->Set(s.ops);
    registry->GetGauge(base + ".total_ns")->Set(EstTotalNs(p));
    registry->GetGauge(base + ".self_ns")->Set(EstSelfNs(p));
    registry->GetGauge(base + ".ns_per_op")->Set(NsPerOp(p));
  }
  registry->GetCounter("prof.slices_dropped")->Set(slices_dropped_);
  registry->GetCounter("prof.depth_overflow")->Set(depth_overflow_);
  registry->GetGauge("prof.ns_per_tick")->Set(ns_per_tick_);
  registry->GetGauge("prof.leak_ns_per_frame")->Set(leak_ticks_ *
                                                    ns_per_tick_);
}

std::string PhaseProfiler::ToProfJson() {
  Finalize();
  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.Value("bdisk-prof-v1");
  w.Key("backend");
  w.Value(backend_);
  w.Key("clock");
  w.Value(ClockName());
  w.Key("ns_per_tick");
  w.Value(ns_per_tick_);
  w.Key("leak_ns_per_frame");
  w.Value(leak_ticks_ * ns_per_tick_);
  w.Key("phases");
  w.BeginObject();
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const Phase p = static_cast<Phase>(i);
    const PhaseStats& s = stats_[i];
    if (s.calls == 0) continue;
    w.Key(PhaseName(p));
    w.BeginObject();
    w.Key("calls");
    w.Value(s.calls);
    w.Key("timed_calls");
    w.Value(s.timed_calls);
    w.Key("ops");
    w.Value(s.ops);
    w.Key("total_ns");
    w.Value(EstTotalNs(p));
    w.Key("self_ns");
    w.Value(EstSelfNs(p));
    w.Key("ns_per_op");
    w.Value(NsPerOp(p));
    w.EndObject();
  }
  w.EndObject();
  w.Key("folded");
  w.BeginObject();
  for (const auto& [path, ns] : FoldedNs()) {
    w.Key(path);
    w.Value(ns);
  }
  w.EndObject();
  w.Key("slices_dropped");
  w.Value(slices_dropped_);
  w.Key("depth_overflow");
  w.Value(depth_overflow_);
  w.EndObject();
  return w.str();
}

std::string PhaseProfiler::ToChromeTrace(
    const std::vector<RequestSpan>* spans) {
  Finalize();
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();

  const auto metadata = [&w](int tid, const char* name) {
    w.BeginObject();
    w.Key("name");
    w.Value("thread_name");
    w.Key("ph");
    w.Value("M");
    w.Key("pid");
    w.Value(std::uint64_t{1});
    w.Key("tid");
    w.Value(static_cast<std::uint64_t>(tid));
    w.Key("args");
    w.BeginObject();
    w.Key("name");
    w.Value(name);
    w.EndObject();
    w.EndObject();
  };
  w.BeginObject();
  w.Key("name");
  w.Value("process_name");
  w.Key("ph");
  w.Value("M");
  w.Key("pid");
  w.Value(std::uint64_t{1});
  w.Key("tid");
  w.Value(std::uint64_t{0});
  w.Key("args");
  w.BeginObject();
  w.Key("name");
  w.Value("bdisk");
  w.EndObject();
  w.EndObject();
  metadata(1, "wall-clock phases");
  if (spans != nullptr) metadata(2, "sim-time request spans");

  // Wall track: the bounded ring of timed frames, anchored at profiler
  // construction, tick-scaled to microseconds.
  for (const Slice& s : slices_) {
    w.BeginObject();
    w.Key("name");
    w.Value(PhaseName(s.phase));
    w.Key("cat");
    w.Value("wall");
    w.Key("ph");
    w.Value("X");
    w.Key("pid");
    w.Value(std::uint64_t{1});
    w.Key("tid");
    w.Value(std::uint64_t{1});
    w.Key("ts");
    w.Value(static_cast<double>(s.start - anchor_ticks_) * ns_per_tick_ /
            1000.0);
    w.Key("dur");
    w.Value(static_cast<double>(s.end - s.start) * ns_per_tick_ / 1000.0);
    w.EndObject();
  }

  // Sim track: completed, non-truncated request spans; simulated broadcast
  // units are rendered as microseconds. Cache hits are zero-duration and
  // omitted.
  if (spans != nullptr) {
    for (const RequestSpan& span : *spans) {
      if (!span.Complete() || span.truncated || span.response <= 0.0) {
        continue;
      }
      char name[64];
      std::snprintf(name, sizeof(name), "%s p%u c%u",
                    SpanOutcomeName(span.outcome), span.page, span.client);
      w.BeginObject();
      w.Key("name");
      w.Value(name);
      w.Key("cat");
      w.Value("sim");
      w.Key("ph");
      w.Value("X");
      w.Key("pid");
      w.Value(std::uint64_t{1});
      w.Key("tid");
      w.Value(std::uint64_t{2});
      w.Key("ts");
      w.Value(span.request_time);
      w.Key("dur");
      w.Value(span.response);
      w.Key("args");
      w.BeginObject();
      w.Key("queue_wait");
      w.Value(span.QueueWait());
      w.Key("broadcast_wait");
      w.Value(span.BroadcastWait());
      w.Key("transmit");
      w.Value(span.Transmit());
      w.Key("retries");
      w.Value(static_cast<std::uint64_t>(span.retries));
      w.EndObject();
      w.EndObject();
    }
  }
  w.EndArray();
  w.Key("displayTimeUnit");
  w.Value("ms");
  w.EndObject();
  return w.str();
}

}  // namespace bdisk::obs
