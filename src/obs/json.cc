#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace bdisk::obs {

namespace {

// Most keys and values (metric names, schema tags) contain nothing that
// needs escaping; detecting that up front lets the writer append them
// without the per-string allocation JsonEscape pays.
bool NeedsEscape(const std::string& text) {
  for (const char c : text) {
    if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) {
      return true;
    }
  }
  return false;
}

bool NeedsEscape(const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p == '"' || *p == '\\' || static_cast<unsigned char>(*p) < 0x20) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // The key already wrote its comma.
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  Separate();
  out_ += '{';
  has_element_.push_back(false);
}

void JsonWriter::EndObject() {
  if (!has_element_.empty()) has_element_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  Separate();
  out_ += '[';
  has_element_.push_back(false);
}

void JsonWriter::EndArray() {
  if (!has_element_.empty()) has_element_.pop_back();
  out_ += ']';
}

void JsonWriter::Key(const std::string& key) {
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
  out_ += '"';
  if (NeedsEscape(key)) {
    out_ += JsonEscape(key);
  } else {
    out_ += key;
  }
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::Key(const char* key) {
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
  out_ += '"';
  if (NeedsEscape(key)) {
    out_ += JsonEscape(key);
  } else {
    out_ += key;
  }
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::Value(double v) {
  Separate();
  if (!std::isfinite(v)) {
    out_ += "null";
    return;
  }
  // Shortest round-trippable decimal form (parses back to the same bits,
  // like %.17g, but without the trailing noise digits and ~10x faster —
  // the telemetry bus serializes a dozen doubles per window frame).
  char buf[32];
  const std::to_chars_result result =
      std::to_chars(buf, buf + sizeof(buf), v);
  out_.append(buf, result.ptr);
}

void JsonWriter::Value(std::uint64_t v) {
  Separate();
  char buf[24];
  const std::to_chars_result result =
      std::to_chars(buf, buf + sizeof(buf), v);
  out_.append(buf, result.ptr);
}

void JsonWriter::Value(std::int64_t v) {
  Separate();
  char buf[24];
  const std::to_chars_result result =
      std::to_chars(buf, buf + sizeof(buf), v);
  out_.append(buf, result.ptr);
}

void JsonWriter::Value(bool v) {
  Separate();
  out_ += v ? "true" : "false";
}

void JsonWriter::Value(const std::string& v) {
  Separate();
  out_ += '"';
  if (NeedsEscape(v)) {
    out_ += JsonEscape(v);
  } else {
    out_ += v;
  }
  out_ += '"';
}

void JsonWriter::Value(const char* v) {
  Separate();
  out_ += '"';
  if (NeedsEscape(v)) {
    out_ += JsonEscape(v);
  } else {
    out_ += v;
  }
  out_ += '"';
}

void JsonWriter::Null() {
  Separate();
  out_ += "null";
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

/// Recursive-descent parser over a byte range.
class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out, 0)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing data after document");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const std::string& what) {
    if (error_ != nullptr) {
      *error_ = what + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) return Fail("invalid literal");
    pos_ += len;
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          *out += esc;
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("invalid \\u escape");
            }
          }
          // The writer only escapes control characters, so a plain
          // single-byte decode covers everything it emits; other code
          // points pass through as UTF-8 already.
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else {
            return Fail("unsupported \\u escape above 0x7f");
          }
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Fail("expected number");
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    out->number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("malformed number");
    out->kind = JsonValue::Kind::kNumber;
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': {
        ++pos_;
        out->kind = JsonValue::Kind::kObject;
        SkipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        while (true) {
          SkipWs();
          std::string key;
          if (!ParseString(&key)) return false;
          SkipWs();
          if (pos_ >= text_.size() || text_[pos_] != ':') {
            return Fail("expected ':' in object");
          }
          ++pos_;
          JsonValue value;
          if (!ParseValue(&value, depth + 1)) return false;
          out->object.emplace_back(std::move(key), std::move(value));
          SkipWs();
          if (pos_ >= text_.size()) return Fail("unterminated object");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == '}') {
            ++pos_;
            return true;
          }
          return Fail("expected ',' or '}' in object");
        }
      }
      case '[': {
        ++pos_;
        out->kind = JsonValue::Kind::kArray;
        SkipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        while (true) {
          JsonValue value;
          if (!ParseValue(&value, depth + 1)) return false;
          out->array.push_back(std::move(value));
          SkipWs();
          if (pos_ >= text_.size()) return Fail("unterminated array");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == ']') {
            ++pos_;
            return true;
          }
          return Fail("expected ',' or ']' in array");
        }
      }
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return Literal("true", 4);
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return Literal("false", 5);
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return Literal("null", 4);
      default:
        return ParseNumber(out);
    }
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  *out = JsonValue{};
  JsonParser parser(text, error);
  return parser.Parse(out);
}

}  // namespace bdisk::obs
