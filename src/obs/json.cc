#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace bdisk::obs {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // The key already wrote its comma.
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  Separate();
  out_ += '{';
  has_element_.push_back(false);
}

void JsonWriter::EndObject() {
  if (!has_element_.empty()) has_element_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  Separate();
  out_ += '[';
  has_element_.push_back(false);
}

void JsonWriter::EndArray() {
  if (!has_element_.empty()) has_element_.pop_back();
  out_ += ']';
}

void JsonWriter::Key(const std::string& key) {
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::Value(double v) {
  Separate();
  if (!std::isfinite(v)) {
    out_ += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
}

void JsonWriter::Value(std::uint64_t v) {
  Separate();
  out_ += std::to_string(v);
}

void JsonWriter::Value(std::int64_t v) {
  Separate();
  out_ += std::to_string(v);
}

void JsonWriter::Value(bool v) {
  Separate();
  out_ += v ? "true" : "false";
}

void JsonWriter::Value(const std::string& v) {
  Separate();
  out_ += '"';
  out_ += JsonEscape(v);
  out_ += '"';
}

void JsonWriter::Value(const char* v) { Value(std::string(v)); }

void JsonWriter::Null() {
  Separate();
  out_ += "null";
}

}  // namespace bdisk::obs
