#ifndef BDISK_OBS_METRICS_H_
#define BDISK_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>

#include "sim/histogram.h"
#include "sim/stats.h"
#include "sim/time_series.h"

namespace bdisk::obs {

/// A monotonically increasing event count.
class Counter {
 public:
  void Inc(std::uint64_t n = 1) { value_ += n; }
  void Set(std::uint64_t v) { value_ = v; }
  std::uint64_t Value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// A point-in-time scalar (rates, fractions, high-water marks).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double Value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// A fixed-bucket latency histogram paired with exact streaming moments.
///
/// Percentiles (p50/p90/p95/p99) interpolate within the containing bucket,
/// so their error is bounded by one bucket width; min/max/mean/count come
/// from the exact RunningStats side. Add() is two array writes and a few
/// compares — cheap enough for per-access instrumentation.
class LatencyHistogram {
 public:
  /// Buckets [lo, hi) into `buckets` equal cells (plus under/overflow).
  LatencyHistogram(double lo, double hi, std::size_t buckets)
      : hist_(lo, hi, buckets) {}

  void Add(double x) {
    hist_.Add(x);
    stats_.Add(x);
  }

  /// Forgets all observations; the bucket shape is kept. Reuses the
  /// existing bucket buffer, so resetting on a phase boundary (warm-up vs
  /// measurement, or per telemetry window) never allocates.
  void Reset() {
    hist_.Reset();
    stats_.Reset();
  }

  std::uint64_t Count() const { return stats_.Count(); }
  double Mean() const { return stats_.Mean(); }
  double Min() const { return stats_.Min(); }
  double Max() const { return stats_.Max(); }

  /// Interpolated quantile, q in [0,1].
  double Percentile(double q) const { return hist_.Quantile(q); }

  const sim::Histogram& histogram() const { return hist_; }
  const sim::RunningStats& stats() const { return stats_; }

 private:
  sim::Histogram hist_;
  sim::RunningStats stats_;
};

/// A unified, name-keyed registry of counters, gauges, histograms, running
/// statistics, and time-series.
///
/// Design (see DESIGN.md §6): components never pay for an unattached
/// registry — instrumentation sites hold a raw pointer that is null when
/// observability is off, so the hot path costs exactly one pointer check.
/// When attached, components resolve their metrics ONCE (by name, at attach
/// time) and thereafter touch plain counters; no lookups, no locks, no
/// allocation on the simulation hot path (time-series appends amortize via
/// vector growth, and are windowed to a few hundred samples per run).
///
/// Names are dotted paths ("server.slots_push", "client.mc.response");
/// ToJson() renders one flat section per metric kind, keyed by name.
/// Returned pointers are stable for the registry's lifetime (node-based
/// map storage).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Resolve-or-create. Histogram shape parameters apply only on creation;
  /// re-resolving an existing name returns it unchanged.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name, double lo,
                                 double hi, std::size_t buckets);
  sim::RunningStats* GetStats(const std::string& name);
  sim::TimeSeries* GetTimeSeries(const std::string& name);

  /// Copies an externally owned histogram into the registry under `name`
  /// (used to export always-on component histograms into a snapshot).
  void ExportHistogram(const std::string& name, const LatencyHistogram& h);

  /// Read-only views (tests, snapshot assembly).
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, LatencyHistogram>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, sim::RunningStats>& stats() const {
    return stats_;
  }
  const std::map<std::string, sim::TimeSeries>& time_series() const {
    return time_series_;
  }

  /// Serializes the whole registry: {"schema":"bdisk-metrics-v1",
  /// "counters":{...},"gauges":{...},"stats":{...},"histograms":{...},
  /// "time_series":{...}}. Histograms carry count/mean/min/max, the p50/
  /// p90/p95/p99 percentiles, and their non-empty buckets; time-series are
  /// [time, value] pairs.
  std::string ToJson() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, LatencyHistogram> histograms_;
  std::map<std::string, sim::RunningStats> stats_;
  std::map<std::string, sim::TimeSeries> time_series_;
};

}  // namespace bdisk::obs

#endif  // BDISK_OBS_METRICS_H_
