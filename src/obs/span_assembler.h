#ifndef BDISK_OBS_SPAN_ASSEMBLER_H_
#define BDISK_OBS_SPAN_ASSEMBLER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "obs/trace_sink.h"
#include "sim/types.h"

namespace bdisk::obs {

/// How a request span ended.
enum class SpanOutcome : std::uint8_t {
  kCacheHit = 0,  // Served instantly from the client cache.
  kPullServed,    // Delivered by a pull slot answering this client's submit.
  kSnooped,       // Delivered by a pull slot another client pulled.
  kPushServed,    // Delivered by a scheduled (push) slot.
  kIncomplete,    // Still waiting when the trace ended.
  kAbandoned,     // Client gave up after its retry budget (bdisk::fault);
                  // the elapsed time is the explicit-timeout response.
};

const char* SpanOutcomeName(SpanOutcome outcome);

/// One client access reconstructed from the flat trace, with its response
/// time attributed to phases. Timeline invariants the simulator guarantees:
/// the request, miss, filter decision, and first submit share one timestamp
/// (MakeRequest is atomic in simulated time), the delivering slot's decision
/// is one broadcast unit before delivery, and retries land between request
/// and delivery. Fields are -1 when the phase never happened.
struct RequestSpan {
  std::uint32_t client = kNoClient;
  std::uint32_t page = kNoTracePage;
  SpanOutcome outcome = SpanOutcome::kIncomplete;

  sim::SimTime request_time = -1.0;
  sim::SimTime submit_time = -1.0;    // First backchannel attempt.
  sim::SimTime slot_time = -1.0;      // Delivering slot's decision time.
  sim::SimTime delivery_time = -1.0;  // Hits: equals request_time.
  double response = 0.0;              // Authoritative (delivery record's v).

  bool submitted = false;   // Some backchannel attempt reached the server.
  bool coalesced = false;   // First live attempt merged with a queued pull.
  bool filtered = false;    // Threshold filter suppressed the initial pull.
  bool invalidated = false; // An invalidation hit this page mid-span.
  bool fell_back = false;   // Client fell back to waiting on the broadcast.
  std::uint32_t drops = 0;  // Attempts that never entered the queue (full,
                            // shed, outage, or lost on the backchannel).
  std::uint32_t sheds = 0;  // Of those, shed/outage-discarded (fault layer).
  std::uint32_t retries = 0;
  std::uint32_t timeouts = 0;  // Client timeouts fired during the span.

  /// Head (or tail) lost to ring truncation: the span is counted but its
  /// phases are excluded from attribution, never guessed.
  bool truncated = false;

  bool Complete() const { return outcome != SpanOutcome::kIncomplete; }

  /// Phase durations; each is 0 when the phase does not apply, and
  /// QueueWait() + BroadcastWait() + Transmit() + Other() == response.
  double QueueWait() const;      // submit -> delivering pull slot.
  double BroadcastWait() const;  // request -> delivering push/snooped slot.
  double Transmit() const;       // slot decision (or request, if the page
                                 // was already on air) -> delivery.
  double Other() const;          // Residual (0 in a well-formed trace).
};

/// Phase means over complete, non-truncated spans (cache hits included at
/// zero), so the means sum to the mean response over exactly those spans.
struct PhaseBreakdown {
  std::uint64_t spans = 0;  // Complete, non-truncated (the denominator).
  std::uint64_t hits = 0;
  std::uint64_t pull_served = 0;
  std::uint64_t snooped = 0;
  std::uint64_t push_served = 0;
  std::uint64_t truncated = 0;
  std::uint64_t incomplete = 0;
  std::uint64_t coalesced = 0;  // Spans whose first live submit coalesced.
  std::uint64_t drops = 0;      // Total dropped submits across spans.
  std::uint64_t retries = 0;
  std::uint64_t abandoned = 0;  // Spans ended by explicit client timeout.
  std::uint64_t sheds = 0;      // Shed/outage-discarded submits across spans.
  std::uint64_t timeouts = 0;   // Client timeouts fired across spans.
  double mean_queue_wait = 0.0;
  double mean_broadcast_wait = 0.0;
  double mean_transmit = 0.0;
  double mean_other = 0.0;
  double mean_response = 0.0;  // == sum of the four phase means.
};

PhaseBreakdown Attribute(const std::vector<RequestSpan>& spans);

/// Joins the flat, timestamp-ordered TraceSink stream back into per-request
/// spans keyed by (client, page).
///
/// Only a `request` record opens a span; client-side records join the
/// pending span for their key, and server-side submit records join only
/// when such a span exists (otherwise they are load from an untraced
/// client — the virtual client — and are tallied, not joined). Slot
/// records are kept per page so a delivery can name its delivering slot.
///
/// Truncation: when the input is known to have lost its oldest records
/// (`input_truncated`, i.e. TraceSink::DroppedEvents() > 0 or a clipped
/// file), headless records open spans flagged `truncated` instead of being
/// counted as anomalies. A truncated span is never mis-joined with a later
/// request: a fresh `request` for the same key closes it first.
class SpanAssembler {
 public:
  explicit SpanAssembler(bool input_truncated = false)
      : input_truncated_(input_truncated) {}

  void Feed(const SpanRecord& record);
  void FeedAll(const std::vector<SpanRecord>& records) {
    for (const SpanRecord& r : records) Feed(r);
  }

  /// Closes still-pending spans as kIncomplete and returns every span:
  /// completed ones in completion order, then incomplete ones in request
  /// order. The assembler is spent afterwards.
  std::vector<RequestSpan> Finish();

  /// Client-side records that matched no pending span in an untruncated
  /// stream (should be 0; nonzero means the trace itself is inconsistent).
  std::uint64_t OrphanRecords() const { return orphans_; }

  /// Server-side submit records with no span to join (virtual-client load).
  std::uint64_t UnmatchedSubmits() const { return unmatched_submits_; }

 private:
  struct SlotInfo {
    sim::SimTime time = -1.0;
    bool pull = false;
  };

  static std::uint64_t Key(std::uint32_t client, std::uint32_t page) {
    return (static_cast<std::uint64_t>(client) << 32) | page;
  }

  RequestSpan* PendingOrTruncated(const SpanRecord& record);
  void CloseOnDelivery(RequestSpan* span, const SpanRecord& record);

  bool input_truncated_;
  std::unordered_map<std::uint64_t, RequestSpan> pending_;
  std::unordered_map<std::uint32_t, SlotInfo> last_slot_;
  std::vector<RequestSpan> completed_;
  std::uint64_t orphans_ = 0;
  std::uint64_t unmatched_submits_ = 0;
};

}  // namespace bdisk::obs

#endif  // BDISK_OBS_SPAN_ASSEMBLER_H_
