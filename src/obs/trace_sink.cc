#include "obs/trace_sink.h"

#include <cstdio>

#include "sim/check.h"

namespace bdisk::obs {

const char* SpanEventName(SpanEvent event) {
  switch (event) {
    case SpanEvent::kRequest:
      return "request";
    case SpanEvent::kCacheHit:
      return "cache_hit";
    case SpanEvent::kCacheMiss:
      return "cache_miss";
    case SpanEvent::kSubmitAccepted:
      return "submit_accepted";
    case SpanEvent::kSubmitCoalesced:
      return "submit_coalesced";
    case SpanEvent::kSubmitDropped:
      return "submit_dropped";
    case SpanEvent::kSubmitFiltered:
      return "submit_filtered";
    case SpanEvent::kRetry:
      return "retry";
    case SpanEvent::kSlotPush:
      return "slot_push";
    case SpanEvent::kSlotPull:
      return "slot_pull";
    case SpanEvent::kSlotIdle:
      return "slot_idle";
    case SpanEvent::kDelivery:
      return "delivery";
    case SpanEvent::kInvalidate:
      return "invalidate";
    case SpanEvent::kSubmitShed:
      return "submit_shed";
    case SpanEvent::kSubmitOutage:
      return "submit_outage";
    case SpanEvent::kSubmitLost:
      return "submit_lost";
    case SpanEvent::kSlotLost:
      return "slot_lost";
    case SpanEvent::kSlotCorrupt:
      return "slot_corrupt";
    case SpanEvent::kTimeout:
      return "timeout";
    case SpanEvent::kFallback:
      return "fallback";
    case SpanEvent::kAbandon:
      return "abandon";
    case SpanEvent::kDegradedEnter:
      return "degraded_enter";
    case SpanEvent::kDegradedExit:
      return "degraded_exit";
    case SpanEvent::kOutageStart:
      return "outage_start";
    case SpanEvent::kOutageEnd:
      return "outage_end";
    case SpanEvent::kMaxValue:
      break;
  }
  return "?";
}

SpanEvent SpanEventFromName(const std::string& name) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(SpanEvent::kMaxValue);
       ++i) {
    const auto event = static_cast<SpanEvent>(i);
    if (name == SpanEventName(event)) return event;
  }
  return SpanEvent::kMaxValue;
}

bool ParseTraceJsonlLine(const std::string& line, SpanRecord* out) {
  char name[32];
  long long client = 0;
  long long page = 0;
  const int matched = std::sscanf(
      line.c_str(),
      " { \"t\" : %lf , \"ev\" : \"%31[^\"]\" , \"client\" : %lld , "
      "\"page\" : %lld , \"v\" : %lf }",
      &out->time, name, &client, &page, &out->value);
  if (matched != 5) return false;
  out->event = SpanEventFromName(name);
  if (out->event == SpanEvent::kMaxValue) return false;
  out->client =
      client < 0 ? kNoClient : static_cast<std::uint32_t>(client);
  out->page = page < 0 ? kNoTracePage : static_cast<std::uint32_t>(page);
  return true;
}

TraceSink::TraceSink(std::size_t capacity) : capacity_(capacity) {
  BDISK_CHECK_MSG(capacity >= 1, "trace capacity must be positive");
  ring_.reserve(capacity);
}

void TraceSink::Record(sim::SimTime time, SpanEvent event,
                       std::uint32_t client, std::uint32_t page,
                       double value) {
  BDISK_DCHECK(event < SpanEvent::kMaxValue);
  ++counts_[static_cast<std::size_t>(event)];
  ++total_;
  const SpanRecord record{time, event, client, page, value};
  if (ring_.size() < capacity_) {
    ring_.push_back(record);
  } else {
    ring_[next_] = record;
  }
  next_ = (next_ + 1) % capacity_;
}

std::vector<SpanRecord> TraceSink::Events() const {
  std::vector<SpanRecord> ordered;
  ordered.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    ordered = ring_;
  } else {
    // Ring is full: next_ points at the oldest entry.
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      ordered.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return ordered;
}

std::uint64_t TraceSink::Count(SpanEvent event) const {
  BDISK_DCHECK(event < SpanEvent::kMaxValue);
  return counts_[static_cast<std::size_t>(event)];
}

namespace {

long long SignedId(std::uint32_t id) {
  return id == kNoClient ? -1LL : static_cast<long long>(id);
}

}  // namespace

std::string TraceSink::ToJsonl() const {
  std::string out;
  char line[160];
  for (const SpanRecord& r : Events()) {
    std::snprintf(line, sizeof(line),
                  "{\"t\":%.3f,\"ev\":\"%s\",\"client\":%lld,"
                  "\"page\":%lld,\"v\":%g}\n",
                  r.time, SpanEventName(r.event), SignedId(r.client),
                  SignedId(r.page), r.value);
    out += line;
  }
  return out;
}

std::string TraceSink::ToCsv() const {
  std::string out = "time,event,client,page,value\n";
  char line[128];
  for (const SpanRecord& r : Events()) {
    std::snprintf(line, sizeof(line), "%.3f,%s,%lld,%lld,%g\n", r.time,
                  SpanEventName(r.event), SignedId(r.client),
                  SignedId(r.page), r.value);
    out += line;
  }
  return out;
}

void TraceSink::Clear() {
  ring_.clear();
  next_ = 0;
  total_ = 0;
  counts_.fill(0);
}

}  // namespace bdisk::obs
