#ifndef BDISK_OBS_FRAME_SINK_H_
#define BDISK_OBS_FRAME_SINK_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace bdisk::obs {

/// Destination for `bdisk-frame-v1` JSONL frames (one complete JSON
/// document per Write call, no trailing newline in `frame`).
///
/// The contract every implementation honours: Write NEVER blocks the
/// caller. It returns true when the frame was handed off (written to the
/// stream, or to the kernel's datagram buffer) and false when the frame
/// was dropped. The TelemetryBus credits counter deltas only on a true
/// return, so a dropped frame's deltas carry forward into the next frame
/// that does get through — reconciliation stays exact under any drop
/// pattern (OBSERVABILITY.md §8).
class FrameSink {
 public:
  virtual ~FrameSink() = default;

  /// Hands one frame to the destination. Returns false if dropped.
  virtual bool Write(const std::string& frame) = 0;

  /// Like Write, for the stream-closing `run_end` frame. The simulation
  /// is over by now, so sinks may spend bounded wall time (the datagram
  /// sink retries for a grace period) to get the closer delivered.
  virtual bool WriteFinal(const std::string& frame) { return Write(frame); }

  /// Frames this sink refused (subset of the bus's dropped count only in
  /// that the bus also counts frames dropped for other reasons; in
  /// practice the two match).
  virtual std::uint64_t Dropped() const { return 0; }

  /// Human-readable destination, for banners and errors.
  virtual std::string Describe() const = 0;
};

/// Appends frames as lines to a stdio stream; never drops. Owns and
/// closes the FILE unless it is stdout/stderr.
class FileFrameSink : public FrameSink {
 public:
  /// `path` "-" means stdout. Returns null (and sets `error`) when the
  /// file cannot be opened.
  static std::unique_ptr<FileFrameSink> Open(const std::string& path,
                                             std::string* error);
  ~FileFrameSink() override;

  bool Write(const std::string& frame) override;
  bool WriteFinal(const std::string& frame) override;
  std::string Describe() const override { return path_; }

 private:
  FileFrameSink(std::FILE* stream, std::string path, bool owned)
      : stream_(stream), path_(std::move(path)), owned_(owned) {}

  std::FILE* stream_;
  std::string path_;
  bool owned_;
};

/// Nonblocking UNIX-datagram sink: one frame per datagram to a bound
/// receiver (e.g. `bdisk_top unix:PATH`). The bounded queue is the
/// kernel's datagram buffer; when it is full the *incoming* frame is
/// dropped (drop-newest) and counted — the sender never blocks and never
/// buffers frames in user space, which is what keeps delta credit equal
/// to delivery (see FrameSink contract). WriteFinal retries for a short
/// grace period so the stream closer survives a transient backlog.
class DatagramFrameSink : public FrameSink {
 public:
  /// Connects a SOCK_DGRAM socket to the receiver bound at `path`.
  /// Returns null (and sets `error`) when the socket cannot be created or
  /// connected — in particular when no receiver is listening yet; start
  /// the consumer first.
  static std::unique_ptr<DatagramFrameSink> Open(const std::string& path,
                                                 std::string* error);
  ~DatagramFrameSink() override;

  bool Write(const std::string& frame) override;
  bool WriteFinal(const std::string& frame) override;
  std::uint64_t Dropped() const override { return dropped_; }
  std::string Describe() const override { return "unix:" + path_; }

 private:
  DatagramFrameSink(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  int fd_;
  std::string path_;
  std::uint64_t dropped_ = 0;
};

/// In-memory sink for tests: records every accepted frame and can be told
/// to refuse writes, either from a fixed index on (`FailFrom`) or for
/// specific frame indices, to exercise the bus's carry-forward path.
class CaptureFrameSink : public FrameSink {
 public:
  bool Write(const std::string& frame) override;
  std::string Describe() const override { return "<capture>"; }
  std::uint64_t Dropped() const override { return dropped_; }

  /// Refuse every Write whose zero-based attempt index is >= `index`
  /// (attempts are counted across accepts and refusals). Negative
  /// disables.
  void FailFrom(std::int64_t index) { fail_from_ = index; }
  /// Refuse exactly the attempt indices in `indices`.
  void FailAt(std::vector<std::uint64_t> indices) {
    fail_at_ = std::move(indices);
  }

  const std::vector<std::string>& frames() const { return frames_; }
  std::uint64_t Attempts() const { return attempts_; }

 private:
  std::vector<std::string> frames_;
  std::vector<std::uint64_t> fail_at_;
  std::int64_t fail_from_ = -1;
  std::uint64_t attempts_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Validates `path` as a bindable/connectable AF_UNIX socket path:
/// non-empty and strictly shorter than sizeof(sockaddr_un::sun_path)
/// (the kernel would otherwise silently truncate it, and sender and
/// receiver could end up on *different* truncated names). Returns an
/// error message naming the limit, or empty when the path is usable.
/// Shared by every socket user: the datagram frame sink, `bdisk_top`'s
/// receiver, and the bdisk::transport datagram backends.
std::string ValidateUnixSocketPath(const std::string& path);

/// Builds a sink from the `--frames` / `frames` destination grammar:
/// "-" = stdout, "unix:PATH" = nonblocking datagram socket, anything else
/// = file path (JSONL, truncated). Returns null and sets `error` on
/// failure.
std::unique_ptr<FrameSink> MakeFrameSink(const std::string& dest,
                                         std::string* error);

}  // namespace bdisk::obs

#endif  // BDISK_OBS_FRAME_SINK_H_
