#include "obs/metrics.h"

#include <utility>

#include "obs/json.h"

namespace bdisk::obs {

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  return &counters_[name];
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  return &gauges_[name];
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                                double lo, double hi,
                                                std::size_t buckets) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, LatencyHistogram(lo, hi, buckets)).first;
  }
  return &it->second;
}

sim::RunningStats* MetricsRegistry::GetStats(const std::string& name) {
  return &stats_[name];
}

sim::TimeSeries* MetricsRegistry::GetTimeSeries(const std::string& name) {
  return &time_series_[name];
}

void MetricsRegistry::ExportHistogram(const std::string& name,
                                      const LatencyHistogram& h) {
  histograms_.insert_or_assign(name, h);
}

namespace {

void WriteHistogram(JsonWriter* w, const LatencyHistogram& h) {
  w->BeginObject();
  w->Key("count");
  w->Value(h.Count());
  w->Key("mean");
  w->Value(h.Mean());
  w->Key("min");
  w->Value(h.Count() == 0 ? 0.0 : h.Min());
  w->Key("max");
  w->Value(h.Count() == 0 ? 0.0 : h.Max());
  w->Key("p50");
  w->Value(h.Percentile(0.50));
  w->Key("p90");
  w->Value(h.Percentile(0.90));
  w->Key("p95");
  w->Value(h.Percentile(0.95));
  w->Key("p99");
  w->Value(h.Percentile(0.99));
  const sim::Histogram& hist = h.histogram();
  w->Key("underflow");
  w->Value(hist.Underflow());
  w->Key("overflow");
  w->Value(hist.Overflow());
  w->Key("buckets");
  w->BeginArray();
  for (std::size_t i = 0; i < hist.NumBuckets(); ++i) {
    if (hist.BucketCount(i) == 0) continue;  // Sparse: zeros carry no info.
    w->BeginArray();
    w->Value(hist.BucketLow(i));
    w->Value(hist.BucketCount(i));
    w->EndArray();
  }
  w->EndArray();
  w->EndObject();
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.Value("bdisk-metrics-v1");

  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, c] : counters_) {
    w.Key(name);
    w.Value(c.Value());
  }
  w.EndObject();

  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, g] : gauges_) {
    w.Key(name);
    w.Value(g.Value());
  }
  w.EndObject();

  w.Key("stats");
  w.BeginObject();
  for (const auto& [name, s] : stats_) {
    w.Key(name);
    w.BeginObject();
    w.Key("count");
    w.Value(s.Count());
    w.Key("mean");
    w.Value(s.Mean());
    w.Key("min");
    w.Value(s.Count() == 0 ? 0.0 : s.Min());
    w.Key("max");
    w.Value(s.Count() == 0 ? 0.0 : s.Max());
    w.Key("stddev");
    w.Value(s.StdDev());
    w.EndObject();
  }
  w.EndObject();

  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, h] : histograms_) {
    w.Key(name);
    WriteHistogram(&w, h);
  }
  w.EndObject();

  w.Key("time_series");
  w.BeginObject();
  for (const auto& [name, ts] : time_series_) {
    w.Key(name);
    w.BeginArray();
    for (const sim::TimeSeries::Sample& s : ts.samples()) {
      w.BeginArray();
      w.Value(s.time);
      w.Value(s.value);
      w.EndArray();
    }
    w.EndArray();
  }
  w.EndObject();

  w.EndObject();
  return w.str();
}

}  // namespace bdisk::obs
