#ifndef BDISK_OBS_JSON_H_
#define BDISK_OBS_JSON_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace bdisk::obs {

/// Escapes a string for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters). Returns the escaped body only, without
/// surrounding quotes.
std::string JsonEscape(const std::string& text);

/// Minimal streaming JSON writer for metrics snapshots and trace export.
///
/// Append-only: the caller opens objects/arrays, emits keys and values, and
/// closes scopes in order. The writer tracks comma placement; it does not
/// validate nesting beyond a depth stack, so misuse produces malformed JSON
/// rather than a crash. Doubles are emitted in shortest round-trippable
/// form (std::to_chars: parses back to the identical bits); non-finite
/// doubles become null (JSON has no Infinity/NaN).
class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits `"key":` inside an object; the next Begin*/Value call attaches
  /// its value. The const char* overload appends in place — no temporary
  /// std::string for the literal metric names the hot emitters pass.
  void Key(const std::string& key);
  void Key(const char* key);

  /// Pre-sizes the output buffer (the telemetry bus knows its frames run
  /// ~1 KiB; one allocation instead of a doubling chain).
  void Reserve(std::size_t bytes) { out_.reserve(bytes); }

  /// Resets to an empty document, keeping the output buffer's capacity —
  /// what lets a per-window emitter reuse one writer with zero
  /// steady-state allocations.
  void Clear() {
    out_.clear();
    has_element_.clear();
    pending_key_ = false;
  }

  void Value(double v);
  void Value(std::uint64_t v);
  void Value(std::int64_t v);
  void Value(bool v);
  void Value(const std::string& v);
  void Value(const char* v);
  void Null();

  /// The document built so far.
  const std::string& str() const { return out_; }

 private:
  // Writes the separating comma if this scope already holds a value.
  void Separate();

  std::string out_;
  // true once the current scope (object/array) has at least one element.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

/// A parsed JSON value (minimal DOM, mirror of what JsonWriter emits).
/// Objects preserve insertion order; numbers are doubles (the writer never
/// emits anything a double cannot hold exactly up to 2^53, and metric
/// comparisons are numeric anyway).
struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull = 0,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

/// Parses a complete JSON document. On failure returns false and, when
/// `error` is non-null, a one-line message with the byte offset. Accepts
/// exactly what JsonWriter produces (standard JSON; no comments, no
/// trailing commas).
bool ParseJson(const std::string& text, JsonValue* out,
               std::string* error = nullptr);

}  // namespace bdisk::obs

#endif  // BDISK_OBS_JSON_H_
