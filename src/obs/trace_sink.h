#ifndef BDISK_OBS_TRACE_SINK_H_
#define BDISK_OBS_TRACE_SINK_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.h"

namespace bdisk::obs {

/// Well-known client identities in traces. The measured client is 0, the
/// virtual client 1; server-originated records carry kNoClient.
inline constexpr std::uint32_t kMeasuredClientId = 0;
inline constexpr std::uint32_t kVirtualClientId = 1;
inline constexpr std::uint32_t kNoClient = 0xFFFFFFFFu;

/// Sentinel page for records with no page (idle slots).
inline constexpr std::uint32_t kNoTracePage = 0xFFFFFFFFu;

/// Kinds of system-wide trace records. Together they let a single pull's
/// life be reconstructed by (client, page):
/// request -> cache_miss -> submit_* -> slot_pull -> delivery.
enum class SpanEvent : std::uint8_t {
  kRequest = 0,      // A client started an access to `page`.
  kCacheHit,         // The access was satisfied from the client cache.
  kCacheMiss,        // The access missed; the client now waits for `page`.
  kSubmitAccepted,   // Backchannel request queued at the server.
  kSubmitCoalesced,  // Backchannel request merged with a queued one.
  kSubmitDropped,    // Backchannel request discarded (queue full).
  kSubmitFiltered,   // Threshold filter suppressed the request client-side.
  kRetry,            // Client re-sent a pull for an unscheduled page.
  kSlotPush,         // Slot decision: a scheduled page goes out at `time`.
  kSlotPull,         // Slot decision: a pulled page goes out at `time`.
  kSlotIdle,         // Slot decision: nothing goes out.
  kDelivery,         // Client received the page it was waiting for;
                     // `value` is the response time.
  kInvalidate,       // A cached copy was invalidated (volatile data).
  // --- bdisk::fault records (absent unless a FaultPlan is enabled) ---
  kSubmitShed,       // Degraded-mode admission control shed the request.
  kSubmitOutage,     // Request discarded inside a server outage window.
  kSubmitLost,       // Request lost on the backchannel; server never saw it.
  kSlotLost,         // Slot's page lost in transit; nobody received it.
  kSlotCorrupt,      // Slot's page arrived corrupted and was discarded.
  kTimeout,          // Client request timeout fired; `value` is the armed
                     // timeout that elapsed.
  kFallback,         // Client gave up pulling and now waits on the push
                     // schedule (retries exhausted or backchannel dead).
  kAbandon,          // Client abandoned an unscheduled-page request after
                     // the retry budget; `value` is the elapsed time.
  kDegradedEnter,    // Server entered degraded mode; `value` is queue depth.
  kDegradedExit,     // Server recovered from degraded mode.
  kOutageStart,      // Server outage window opened.
  kOutageEnd,        // Server outage window closed.
  kMaxValue,         // Sentinel; keep last.
};

/// Human-readable record kind name (stable, used in JSONL/CSV output).
const char* SpanEventName(SpanEvent event);

/// Inverse of SpanEventName; kMaxValue for an unknown name.
SpanEvent SpanEventFromName(const std::string& name);

/// One trace record. Slot records use the decision time: the page occupies
/// the frontchannel over [time, time+1) and is delivered at time+1.
struct SpanRecord {
  sim::SimTime time;
  SpanEvent event;
  std::uint32_t client;  // kNoClient for server-side records.
  std::uint32_t page;    // kNoTracePage for idle slots.
  double value;          // Event-specific payload (delivery: response time).
};

/// Parses one ToJsonl() line back into a record (the -1 sentinels map back
/// to kNoClient/kNoTracePage). Returns false on malformed input or an
/// unknown event name. trace_report and the round-trip tests share this, so
/// the exporter and the parser cannot drift.
bool ParseTraceJsonlLine(const std::string& line, SpanRecord* out);

/// A bounded, system-wide structured trace.
///
/// Same ring semantics as sim::TraceRecorder: the most recent `capacity`
/// records are retained (older ones are overwritten and counted in
/// DroppedEvents()), while per-kind lifetime counts stay exact. Export as
/// JSONL (one object per record — the format tools/trace_report consumes)
/// or CSV.
class TraceSink {
 public:
  /// `capacity` >= 1 bounds memory; default keeps the last 256Ki records.
  explicit TraceSink(std::size_t capacity = 1 << 18);

  /// Appends one record.
  void Record(sim::SimTime time, SpanEvent event, std::uint32_t client,
              std::uint32_t page, double value = 0.0);

  /// Records currently retained, oldest first.
  std::vector<SpanRecord> Events() const;

  /// Lifetime count of records of `event` (including overwritten ones).
  std::uint64_t Count(SpanEvent event) const;

  /// Total records ever recorded / lost to the ring bound.
  std::uint64_t TotalEvents() const { return total_; }
  std::uint64_t DroppedEvents() const { return total_ - ring_.size(); }

  /// One JSON object per line:
  /// {"t":2.0,"ev":"delivery","client":0,"page":5,"v":2.0}
  /// `client` is -1 for server-side records, `page` -1 for idle slots.
  std::string ToJsonl() const;

  /// CSV with header: time,event,client,page,value (same -1 conventions).
  std::string ToCsv() const;

  /// Forgets retained records and counters.
  void Clear();

 private:
  std::size_t capacity_;
  std::vector<SpanRecord> ring_;
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
  std::array<std::uint64_t, static_cast<std::size_t>(SpanEvent::kMaxValue)>
      counts_{};
};

}  // namespace bdisk::obs

#endif  // BDISK_OBS_TRACE_SINK_H_
