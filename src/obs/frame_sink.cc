#include "obs/frame_sink.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace bdisk::obs {

// ---------------------------------------------------------------------------
// FileFrameSink

std::unique_ptr<FileFrameSink> FileFrameSink::Open(const std::string& path,
                                                   std::string* error) {
  if (path == "-") {
    return std::unique_ptr<FileFrameSink>(
        new FileFrameSink(stdout, "-", /*owned=*/false));
  }
  std::FILE* stream = std::fopen(path.c_str(), "w");
  if (stream == nullptr) {
    if (error != nullptr) {
      *error = "cannot open frame file '" + path + "': " + std::strerror(errno);
    }
    return nullptr;
  }
  return std::unique_ptr<FileFrameSink>(
      new FileFrameSink(stream, path, /*owned=*/true));
}

FileFrameSink::~FileFrameSink() {
  if (owned_) {
    std::fclose(stream_);
  } else {
    std::fflush(stream_);
  }
}

bool FileFrameSink::Write(const std::string& frame) {
  std::fwrite(frame.data(), 1, frame.size(), stream_);
  std::fputc('\n', stream_);
  return true;
}

bool FileFrameSink::WriteFinal(const std::string& frame) {
  const bool ok = Write(frame);
  std::fflush(stream_);
  return ok;
}

// ---------------------------------------------------------------------------
// DatagramFrameSink

std::string ValidateUnixSocketPath(const std::string& path) {
  if (path.empty()) return "empty unix socket path";
  constexpr std::size_t kMax = sizeof(sockaddr_un{}.sun_path);
  if (path.size() >= kMax) {
    return "unix socket path too long (" + std::to_string(path.size()) +
           " bytes; the kernel limit is " + std::to_string(kMax - 1) +
           "): " + path;
  }
  return "";
}

std::unique_ptr<DatagramFrameSink> DatagramFrameSink::Open(
    const std::string& path, std::string* error) {
  sockaddr_un addr{};
  {
    const std::string invalid = ValidateUnixSocketPath(path);
    if (!invalid.empty()) {
      if (error != nullptr) *error = invalid;
      return nullptr;
    }
  }
  const int fd = ::socket(AF_UNIX, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    if (error != nullptr) {
      *error = std::string("socket(AF_UNIX, SOCK_DGRAM): ") +
               std::strerror(errno);
    }
    return nullptr;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "cannot connect to frame socket '" + path +
               "' (is the receiver running? start it first): " +
               std::strerror(errno);
    }
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<DatagramFrameSink>(new DatagramFrameSink(fd, path));
}

DatagramFrameSink::~DatagramFrameSink() { ::close(fd_); }

bool DatagramFrameSink::Write(const std::string& frame) {
  // MSG_DONTWAIT belt-and-braces on top of SOCK_NONBLOCK: a full receiver
  // buffer (EAGAIN/ENOBUFS) or a receiver that went away (ECONNREFUSED,
  // ENOENT after unlink) drops the frame; the simulation never waits.
  const ssize_t sent =
      ::send(fd_, frame.data(), frame.size(), MSG_DONTWAIT | MSG_NOSIGNAL);
  if (sent == static_cast<ssize_t>(frame.size())) return true;
  ++dropped_;
  return false;
}

bool DatagramFrameSink::WriteFinal(const std::string& frame) {
  // The run is over: burn up to ~200ms of wall time trying to land the
  // stream closer, so a consumer that is merely slow still sees run_end
  // (and its closing deltas). A receiver that never drains loses it —
  // honestly reported by the dropped count.
  for (int attempt = 0; attempt < 100; ++attempt) {
    const ssize_t sent =
        ::send(fd_, frame.data(), frame.size(), MSG_DONTWAIT | MSG_NOSIGNAL);
    if (sent == static_cast<ssize_t>(frame.size())) return true;
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != ENOBUFS) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ++dropped_;
  return false;
}

// ---------------------------------------------------------------------------
// CaptureFrameSink

bool CaptureFrameSink::Write(const std::string& frame) {
  const std::uint64_t index = attempts_++;
  const bool refused =
      (fail_from_ >= 0 && index >= static_cast<std::uint64_t>(fail_from_)) ||
      std::find(fail_at_.begin(), fail_at_.end(), index) != fail_at_.end();
  if (refused) {
    ++dropped_;
    return false;
  }
  frames_.push_back(frame);
  return true;
}

// ---------------------------------------------------------------------------
// Destination grammar

std::unique_ptr<FrameSink> MakeFrameSink(const std::string& dest,
                                         std::string* error) {
  if (dest.empty()) {
    if (error != nullptr) *error = "empty frame destination";
    return nullptr;
  }
  if (dest.rfind("unix:", 0) == 0) {
    return DatagramFrameSink::Open(dest.substr(5), error);
  }
  return FileFrameSink::Open(dest, error);
}

}  // namespace bdisk::obs
