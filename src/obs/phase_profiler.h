#ifndef BDISK_OBS_PHASE_PROFILER_H_
#define BDISK_OBS_PHASE_PROFILER_H_

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace bdisk::obs {

/// Wall-clock phases instrumented across the stack. The names exported for
/// each (see PhaseName) form the `bdisk-prof-v1` taxonomy documented in
/// OBSERVABILITY.md §7.
enum class Phase : std::uint8_t {
  kRun = 0,        ///< Whole Simulator::RunUntil, the root frame.
  kQueueSchedule,  ///< EventQueue schedule (one-shot insert).
  kQueuePop,       ///< EventQueue pop + handler dispatch (Simulator::Step).
  kKernelSpan,     ///< Batched periodic slot span (ops = slots fired).
  kDrain,          ///< Lazy-source drain barrier (ops = arrivals fused).
  kVcArrival,      ///< Fused virtual-client arrival loop (ops = arrivals).
  kServerSlot,     ///< BroadcastServer::OnSlotBoundary.
  kServerMux,      ///< MUX decision: push vs pull for the next slot.
  kServerQueue,    ///< Pull-queue submit path (ops = submits).
  kMcRequest,      ///< MeasuredClient request path (cache probe + submit).
  kMcDelivery,     ///< MeasuredClient::OnBroadcast (hears every slot).
  kFaultJudge,     ///< Fault-injector judgement sites.
  kCount,
};

inline constexpr std::size_t kPhaseCount =
    static_cast<std::size_t>(Phase::kCount);

/// Export name for a phase (dotted, same style as metric names).
const char* PhaseName(Phase p);

/// Metric-name substrings whose values are wall-clock (nondeterministic)
/// and must be excluded from trajectory comparisons. `bdisk_compare` skips
/// any metric whose name contains one of these unless
/// --include-nondeterministic is given.
inline constexpr const char* kNondeterministicMetricSubstrings[] = {
    "prof.",
    "wall_seconds",
};

class MetricsRegistry;
struct RequestSpan;

/// Low-overhead hierarchical wall-clock profiler.
///
/// Contract (same as TraceSink, enforced by kernel_matrix_test): attaching
/// a profiler never changes the simulated trajectory. Instrumentation
/// sites hold a raw pointer that is null when profiling is off, so the hot
/// path costs one pointer check; the profiler itself draws no randomness,
/// schedules no events, and touches only its own memory.
///
/// Cost model. An *untimed* Enter/Exit pair — the overwhelmingly common
/// case — is a call-counter increment and the sampling test: no
/// timestamp, no stack frame, no state to unwind, a nanosecond or two.
/// Timestamps (rdtsc on x86-64, steady_clock elsewhere) and frame
/// bookkeeping are reserved for *sampled* frames: a frame is timed when
/// its phase's deterministic stride hits ((calls & mask) == 0) or when it
/// sits inside a timed frame's subtree (tracked by a force counter) — so
/// a sampled window captures its complete subtree and self-times are
/// exact within it. Per-phase totals are scaled back up by
/// calls/timed_calls at export. The root `run` frame is always timed but
/// does not force its children, otherwise everything would be. Because
/// untimed frames keep no stack, call paths (folded stacks) name the
/// chain of *timed* ancestors; inside a forced subtree that is the full
/// dynamic path.
///
/// Observer compensation. A timed window contains the Enter/Exit
/// instrumentation cost of every timed frame nested in it, and
/// extrapolation multiplies that distortion by the sampling stride —
/// enough to push a hot phase's estimate past the run total. Each timed
/// frame therefore *measures* its own instrumentation with bracket tick
/// reads (prologue on Enter, epilogue on Exit) and reports it to the
/// nearest open timed ancestor — the window the cost actually landed in —
/// so exports see pre-corrected tick totals. What the brackets cannot see
/// (their own issue cost, the untimed Enter prefix) is calibrated twice:
/// a construction-time probe of empty forced frames gives a warm-cache
/// floor, and Finalize() solves for the remaining in-situ leak from an
/// invariant — the root window (scale 1, wall minus captured
/// instrumentation) bounds every extrapolated phase, and each window
/// counts its timed descendants, so the binding phase yields the
/// per-frame leak that exports then subtract (desc-weighted, floored at
/// measured self-time).
///
/// Tick-to-ns calibration anchors a (ticks, steady_clock) pair at
/// construction and another at Finalize(); exports interpolate.
///
/// Exports (definitions in phase_profiler.cc, so translation units that
/// only *instrument* — sim/server/client — take no obs link dependency):
///   - MergeInto(): `prof.*` counters/gauges into a bdisk-metrics-v1 doc.
///   - ToProfJson(): the `bdisk-prof-v1` document for tools/bdisk_prof.
///   - ToFolded(): folded stacks ("run;kernel.span;server.slot NNN") for
///     flamegraph rendering.
///   - ToChromeTrace(): trace-event JSON; wall-clock slices from a bounded
///     ring of timed frames, optionally alongside sim-time request spans.
class PhaseProfiler {
 public:
  /// `slice_capacity` bounds the Chrome-trace slice ring (first-N kept).
  explicit PhaseProfiler(std::size_t slice_capacity = std::size_t{1} << 15);

  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;

  /// Enters a phase frame and reports whether it is timed. The caller
  /// (PhaseScope) calls ExitTimed() iff this returned true — an untimed
  /// frame has no state to unwind. Untimed path: one counter increment
  /// and the sampling test.
  bool Enter(Phase ph) {
    PhaseStats& s = stats_[static_cast<std::size_t>(ph)];
    ++s.calls;
    if (force_depth_ == 0 && (s.calls & s.sample_mask) != 0) return false;
    return EnterTimed(ph);
  }

  /// Closes a timed frame (Enter returned true): takes the closing
  /// timestamp, does the attribution bookkeeping, then reports its own
  /// instrumentation cost (measured by the bracket reads) to the
  /// enclosing timed frame, whose window it polluted.
  void ExitTimed() {
    const std::uint64_t end = ReadTicks();
    Frame& f = frames_[--tdepth_];
    if (f.phase != Phase::kRun) --force_depth_;
    PhaseStats& s = stats_[static_cast<std::size_t>(f.phase)];
    const std::uint64_t raw = end - f.start;
    const std::uint64_t total = raw > f.inst_ticks ? raw - f.inst_ticks : 0;
    const std::uint64_t child =
        f.child_ticks < total ? f.child_ticks : total;
    ++s.timed_calls;
    s.timed_ops += f.ops;
    s.total_ticks += total;
    s.self_ticks += total - child;
    s.desc_frames += f.desc;
    // Per-phase memo: inside a sampled window the same call path repeats
    // (every slot of a timed span folds to the identical stack), so the
    // common case skips the hash lookup. unordered_map never invalidates
    // value pointers on insert.
    const std::size_t pi = static_cast<std::size_t>(f.phase);
    std::uint64_t* cell = folded_memo_[pi];
    if (cell == nullptr || folded_memo_key_[pi] != f.path) {
      cell = &folded_[f.path];
      folded_memo_[pi] = cell;
      folded_memo_key_[pi] = f.path;
    }
    *cell += total - child;
    if (slices_.size() < slice_capacity_) {
      slices_.push_back(
          Slice{f.start, end, f.phase, static_cast<std::uint8_t>(tdepth_)});
    } else {
      ++slices_dropped_;
    }
    if (tdepth_ > 0) {
      // Nearest open timed frame: the window that encloses (and therefore
      // measures) this one. Intervening untimed frames record no ticks,
      // so this double-counts nothing. The epilogue bracket read comes
      // after all bookkeeping above so the parent is compensated for the
      // whole cost; tick_read_ticks_ covers the bracket reads themselves.
      Frame& parent = frames_[tdepth_ - 1];
      parent.child_ticks += total;
      parent.desc += f.desc + 1;
      const std::uint64_t t2 = ReadTicks();
      parent.inst_ticks += f.inst_ticks + f.pro_ticks + (t2 - end) +
                           tick_read_ticks_ + frame_residual_ticks_;
    }
  }

  /// Adds `n` work items to `ph` (arrivals fused, slots fired, ...); they
  /// become the denominator of that phase's ns/op. `timed` is the value
  /// Enter returned for the owning frame — when set, the ops also feed the
  /// innermost timed frame so the ns/op denominator matches its window.
  void AddOps(Phase ph, std::uint64_t n, bool timed) {
    stats_[static_cast<std::size_t>(ph)].ops += n;
    if (timed && tdepth_ > 0) frames_[tdepth_ - 1].ops += n;
  }

  /// Records the closing calibration anchor. Call once after the run;
  /// exports call it implicitly if it has not run yet.
  void Finalize();

  /// Identifies the event-queue backend this profile ran against (stamped
  /// into every export; one run = one backend).
  void SetBackend(const std::string& backend) { backend_ = backend; }
  const std::string& backend() const { return backend_; }

  /// --- Exports (phase_profiler.cc; require linking bdisk_obs) ---

  /// Merges `prof.<phase>.{calls,ops}` counters and
  /// `prof.<phase>.{total_ns,self_ns,ns_per_op}` gauges into `registry`.
  void MergeInto(MetricsRegistry* registry);

  /// The `bdisk-prof-v1` JSON document (phases + folded stacks + backend).
  std::string ToProfJson();

  /// Folded-stack lines ("run;kernel.span;server.slot 123456\n"), self
  /// nanoseconds per path, scaled for sampling — flamegraph.pl input.
  std::string ToFolded();

  /// The folded stacks as (path, self-ns) pairs, sorted by path: each
  /// path's sampled self ticks scaled by its leaf phase's
  /// calls/timed_calls ratio, with the root "run" entry replaced by the
  /// unattributed residual so the entries sum to the wall-clock run time.
  std::vector<std::pair<std::string, double>> FoldedNs();

  /// Chrome trace-event JSON (chrome://tracing, Perfetto). Wall-clock
  /// phase slices on one track; if `spans` is non-null, completed sim-time
  /// request spans on a second track (sim units rendered as microseconds).
  std::string ToChromeTrace(const std::vector<RequestSpan>* spans);

  /// --- Introspection (tests) ---
  std::uint64_t Calls(Phase p) const {
    return stats_[static_cast<std::size_t>(p)].calls;
  }
  std::uint64_t TimedCalls(Phase p) const {
    return stats_[static_cast<std::size_t>(p)].timed_calls;
  }
  std::uint64_t Ops(Phase p) const {
    return stats_[static_cast<std::size_t>(p)].ops;
  }
  std::uint64_t SliceCount() const { return slices_.size(); }
  std::uint64_t SlicesDropped() const { return slices_dropped_; }
  std::uint64_t DepthOverflow() const { return depth_overflow_; }
  /// Open *timed* frames (untimed frames keep no stack); 0 when balanced.
  int OpenDepth() const { return tdepth_; }
  double NsPerTick() const { return ns_per_tick_; }
  /// Calibrated cost of one bracket tick read (the compensation residue).
  std::uint64_t TickReadTicks() const { return tick_read_ticks_; }
  /// In-situ per-frame leak (ticks) solved at Finalize from the
  /// root-window invariant; 0 when no extrapolated phase exceeded it.
  double LeakTicksPerFrame() const { return leak_ticks_; }

  /// Estimated totals after Finalize(): sampled ticks scaled by
  /// calls/timed_calls, converted to ns.
  double EstTotalNs(Phase p) const;
  double EstSelfNs(Phase p) const;
  double NsPerOp(Phase p) const;

 private:
  static constexpr int kMaxDepth = 16;      // Timed-frame stack slots.
  static constexpr int kMaxPathDepth = 8;   // Packed-path levels (8 bits each).

  struct PhaseStats {
    std::uint64_t calls = 0;
    std::uint64_t timed_calls = 0;
    std::uint64_t ops = 0;
    std::uint64_t timed_ops = 0;
    std::uint64_t total_ticks = 0;  // Instrumentation-compensated.
    std::uint64_t self_ticks = 0;   // Likewise.
    std::uint64_t desc_frames = 0;  // Timed frames closed in my windows.
    std::uint64_t sample_mask = 0;  // Timed when (calls & mask) == 0.
  };

  // A timed frame. Untimed frames never materialize — Enter just bumps
  // the call counter.
  struct Frame {
    std::uint64_t start = 0;
    std::uint64_t child_ticks = 0;  // Timed children's corrected windows.
    std::uint64_t inst_ticks = 0;   // Their instrumentation, in my window.
    std::uint64_t ops = 0;
    std::uint64_t path = 0;  // 8 bits per level, PackPhase-encoded.
    std::uint64_t desc = 0;  // Timed descendant frames closed inside me.
    std::uint32_t pro_ticks = 0;  // My own Enter prologue (bracket-read).
    Phase phase = Phase::kRun;
  };

  struct Slice {
    std::uint64_t start;
    std::uint64_t end;
    Phase phase;
    std::uint8_t depth;
  };

  static std::uint64_t PackPhase(Phase p) {
    return static_cast<std::uint64_t>(p) + 1;  // 0 marks "no level".
  }

  static std::uint64_t ReadTicks() {
#if defined(__x86_64__) || defined(_M_X64)
    return __builtin_ia32_rdtsc();
#else
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
#endif
  }

  /// Slow half of Enter: pushes a timed frame, measuring its own prologue
  /// with a bracket read so the enclosing window can be compensated.
  /// Returns false (frame degrades to untimed) when the timed stack is
  /// full.
  bool EnterTimed(Phase ph) {
    const std::uint64_t t0 = ReadTicks();
    if (tdepth_ >= kMaxDepth) {
      ++depth_overflow_;
      return false;
    }
    Frame& f = frames_[tdepth_];
    f.phase = ph;
    f.ops = 0;
    f.child_ticks = 0;
    f.inst_ticks = 0;
    f.desc = 0;
    f.path = tdepth_ == 0 ? PackPhase(ph)
             : tdepth_ < kMaxPathDepth
                 ? (frames_[tdepth_ - 1].path << 8) | PackPhase(ph)
                 : frames_[tdepth_ - 1].path;
    if (ph != Phase::kRun) ++force_depth_;
    ++tdepth_;
    f.start = ReadTicks();
    f.pro_ticks = static_cast<std::uint32_t>(f.start - t0);
    return true;
  }

  std::array<PhaseStats, kPhaseCount> stats_{};
  std::array<Frame, kMaxDepth> frames_{};  // Timed frames only.
  int tdepth_ = 0;       // Open timed frames (frames_ occupancy).
  int force_depth_ = 0;  // Open timed non-run frames: >0 forces timing.
  std::uint64_t depth_overflow_ = 0;
  std::uint64_t tick_read_ticks_ = 0;      // Cost of one ReadTicks call.
  std::uint64_t frame_residual_ticks_ = 0;  // Unbracketed per-frame cost.
  double leak_ticks_ = 0.0;  // In-situ residue past the probe's floor.

  /// Tick total with the in-situ leak subtracted (desc-weighted), floored
  /// at the measured self time — a window cannot be shorter than its
  /// exact self component.
  double CorrectedTicks(const PhaseStats& s) const {
    const double t = static_cast<double>(s.total_ticks) -
                     leak_ticks_ * static_cast<double>(s.desc_frames);
    return t > static_cast<double>(s.self_ticks)
               ? t
               : static_cast<double>(s.self_ticks);
  }

  std::unordered_map<std::uint64_t, std::uint64_t> folded_;  // path -> self.
  std::array<std::uint64_t*, kPhaseCount> folded_memo_{};
  std::array<std::uint64_t, kPhaseCount> folded_memo_key_{};

  std::vector<Slice> slices_;
  std::size_t slice_capacity_ = 0;
  std::uint64_t slices_dropped_ = 0;

  std::string backend_ = "unknown";

  // Calibration anchors.
  std::uint64_t anchor_ticks_ = 0;
  std::chrono::steady_clock::time_point anchor_time_{};
  double ns_per_tick_ = 0.0;  // Nonzero once Finalize() has run.
};

/// RAII phase guard on a null-checked profiler pointer — the idiom every
/// instrumentation site uses:
///
///   obs::PhaseScope scope(profiler_, obs::Phase::kServerSlot);
///   ... hot path ...
///   scope.AddOps(n);   // optional work-item count
class PhaseScope {
 public:
  PhaseScope(PhaseProfiler* p, Phase ph)
      : p_(p), ph_(ph), timed_(p != nullptr && p->Enter(ph)) {}
  ~PhaseScope() {
    if (timed_) p_->ExitTimed();
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

  void AddOps(std::uint64_t n) {
    if (p_ != nullptr) p_->AddOps(ph_, n, timed_);
  }

 private:
  PhaseProfiler* p_;
  Phase ph_;
  bool timed_;
};

}  // namespace bdisk::obs

#endif  // BDISK_OBS_PHASE_PROFILER_H_
