#ifndef BDISK_OBS_FLIGHT_RECORDER_H_
#define BDISK_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

#include "obs/trace_sink.h"
#include "obs/windowed_collector.h"

namespace bdisk::obs {

/// Thresholds that arm the flight recorder; a window whose statistic
/// exceeds a threshold fires it. kDisarmed (infinity) means "never".
struct FlightTriggers {
  static constexpr double kDisarmed = std::numeric_limits<double>::infinity();

  double drop_rate = kDisarmed;    // Window drop rate (dropped / submits).
  double p99 = kDisarmed;          // Window response p99, broadcast units.
  double queue_depth = kDisarmed;  // Window queue-depth high water.
  double shed_rate = kDisarmed;    // Window (shed + outage) / submits.
  double loss_rate = kDisarmed;    // Window slots lost / slots.

  bool Armed() const {
    return drop_rate != kDisarmed || p99 != kDisarmed ||
           queue_depth != kDisarmed || shed_rate != kDisarmed ||
           loss_rate != kDisarmed;
  }
};

/// Parses a trigger spec like "drop_rate>0.5,p99>2000,queue_depth>90" into
/// `out`. Triggers not named stay disarmed. Returns "" on success, else a
/// one-line description of what is wrong (unknown trigger name, missing
/// '>', unparsable or negative threshold) — surfaced verbatim by config
/// validation and the CLI.
std::string ParseFlightTriggerSpec(const std::string& spec,
                                   FlightTriggers* out);

class TelemetryBus;

/// An anomaly flight recorder: watches completed telemetry windows and, on
/// the first window that crosses a trigger, dumps the trailing trace window
/// and a full metrics snapshot to a timestamped JSON file
/// ("<prefix>t<sim-time>.json", schema "bdisk-flight-v1").
///
/// One-shot by default — the interesting state is what led up to the FIRST
/// anomaly; later windows of a sustained overload would only repeat it.
/// `max_dumps` > 1 re-arms automatically after each dump until that many
/// have been written (each with a distinct window-end timestamp in its
/// filename), so a sustained overload keeps its later anomalies too.
/// Re-arm explicitly with Rearm() to capture more. Evaluation is pure
/// observation: no randomness, no events, so an armed-but-silent recorder
/// keeps the trajectory bit-identical.
class FlightRecorder {
 public:
  FlightRecorder(const FlightTriggers& triggers, std::string path_prefix,
                 std::uint32_t max_dumps = 1);

  /// Trailing trace source for dumps (null = dump without trace).
  void SetTraceSink(const TraceSink* sink) { sink_ = sink; }

  /// Metrics-snapshot source for dumps: a callback returning a complete
  /// "bdisk-metrics-v1" document (null = dump without metrics). A callback
  /// rather than a registry pointer so the owner can assemble the snapshot
  /// lazily, only when a trigger actually fires.
  void SetSnapshot(std::function<std::string()> snapshot) {
    snapshot_ = std::move(snapshot);
  }

  /// Streams a `flight_fire` frame on each dump (null detaches).
  void SetTelemetryBus(TelemetryBus* bus) { bus_ = bus; }

  /// Evaluates one completed window (WindowedCollector calls this).
  void OnWindow(const WindowStats& window);

  /// Builds the dump document for `window` without touching the
  /// filesystem (the file path on fire is derived from window.end).
  std::string BuildDump(const WindowStats& window, const char* trigger,
                        double threshold, double value) const;

  void Rearm() { disarmed_ = false; }

  /// True while the recorder will not fire again on its own (every
  /// automatic shot spent; Rearm() grants another).
  bool Fired() const { return disarmed_; }
  std::uint64_t WindowsEvaluated() const { return windows_evaluated_; }
  std::uint64_t FireCount() const { return fire_count_; }
  std::uint32_t MaxDumps() const { return max_dumps_; }

  /// Path of the last dump written; empty if none (or if the write failed,
  /// in which case LastError() says why).
  const std::string& DumpPath() const { return dump_path_; }
  const std::string& LastError() const { return last_error_; }

 private:
  void Fire(const WindowStats& window, const char* trigger, double threshold,
            double value);

  FlightTriggers triggers_;
  std::string path_prefix_;
  std::uint32_t max_dumps_;
  const TraceSink* sink_ = nullptr;
  std::function<std::string()> snapshot_;
  TelemetryBus* bus_ = nullptr;
  bool disarmed_ = false;
  std::uint64_t windows_evaluated_ = 0;
  std::uint64_t fire_count_ = 0;
  std::string dump_path_;
  std::string last_error_;
};

}  // namespace bdisk::obs

#endif  // BDISK_OBS_FLIGHT_RECORDER_H_
