#include "obs/flight_recorder.h"

#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/telemetry_bus.h"
#include "sim/check.h"

namespace bdisk::obs {

namespace {

/// Splits `text` on `sep`, keeping empty pieces out.
std::vector<std::string> SplitNonEmpty(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(sep, start);
    if (end == std::string::npos) end = text.size();
    if (end > start) out.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string Trimmed(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

}  // namespace

std::string ParseFlightTriggerSpec(const std::string& spec,
                                   FlightTriggers* out) {
  *out = FlightTriggers{};
  const std::vector<std::string> parts = SplitNonEmpty(spec, ',');
  if (parts.empty()) {
    return "empty trigger spec (want e.g. \"drop_rate>0.5,p99>2000\")";
  }
  for (const std::string& raw : parts) {
    const std::string part = Trimmed(raw);
    const std::size_t gt = part.find('>');
    if (gt == std::string::npos) {
      return "trigger \"" + part + "\" is missing '>' (want name>threshold)";
    }
    const std::string name = Trimmed(part.substr(0, gt));
    const std::string value_text = Trimmed(part.substr(gt + 1));
    char* end = nullptr;
    const double value = std::strtod(value_text.c_str(), &end);
    if (value_text.empty() || end == nullptr || *end != '\0') {
      return "trigger \"" + name + "\" has unparsable threshold \"" +
             value_text + "\"";
    }
    if (value < 0.0) {
      return "trigger \"" + name + "\" threshold must be >= 0";
    }
    double* slot = nullptr;
    if (name == "drop_rate") {
      slot = &out->drop_rate;
    } else if (name == "p99") {
      slot = &out->p99;
    } else if (name == "queue_depth") {
      slot = &out->queue_depth;
    } else if (name == "shed_rate") {
      slot = &out->shed_rate;
    } else if (name == "loss_rate") {
      slot = &out->loss_rate;
    } else {
      return "unknown trigger \"" + name +
             "\" (know drop_rate, p99, queue_depth, shed_rate, loss_rate)";
    }
    if (*slot != FlightTriggers::kDisarmed) {
      return "trigger \"" + name + "\" given twice";
    }
    *slot = value;
  }
  return "";
}

FlightRecorder::FlightRecorder(const FlightTriggers& triggers,
                               std::string path_prefix,
                               std::uint32_t max_dumps)
    : triggers_(triggers),
      path_prefix_(std::move(path_prefix)),
      max_dumps_(max_dumps) {
  BDISK_CHECK_MSG(max_dumps_ >= 1, "flight recorder max_dumps must be >= 1");
}

void FlightRecorder::OnWindow(const WindowStats& window) {
  ++windows_evaluated_;
  if (disarmed_) return;
  if (window.DropRate() > triggers_.drop_rate) {
    Fire(window, "drop_rate", triggers_.drop_rate, window.DropRate());
  } else if (window.response_p99 > triggers_.p99) {
    Fire(window, "p99", triggers_.p99, window.response_p99);
  } else if (static_cast<double>(window.queue_depth_max) >
             triggers_.queue_depth) {
    Fire(window, "queue_depth", triggers_.queue_depth,
         static_cast<double>(window.queue_depth_max));
  } else if (window.ShedRate() > triggers_.shed_rate) {
    Fire(window, "shed_rate", triggers_.shed_rate, window.ShedRate());
  } else if (window.LossRate() > triggers_.loss_rate) {
    Fire(window, "loss_rate", triggers_.loss_rate, window.LossRate());
  }
}

std::string FlightRecorder::BuildDump(const WindowStats& window,
                                      const char* trigger, double threshold,
                                      double value) const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema");
  w.Value("bdisk-flight-v1");
  w.Key("fired_at");
  w.Value(window.end);
  w.Key("trigger");
  w.Value(trigger);
  w.Key("threshold");
  w.Value(threshold);
  w.Key("value");
  w.Value(value);
  w.Key("window");
  w.BeginObject();
  w.Key("start");
  w.Value(window.start);
  w.Key("end");
  w.Value(window.end);
  w.Key("slots_push");
  w.Value(window.slots_push);
  w.Key("slots_pull");
  w.Value(window.slots_pull);
  w.Key("slots_idle");
  w.Value(window.slots_idle);
  w.Key("submits");
  w.Value(window.submits);
  w.Key("accepted");
  w.Value(window.accepted);
  w.Key("coalesced");
  w.Value(window.coalesced);
  w.Key("dropped");
  w.Value(window.dropped);
  w.Key("shed");
  w.Value(window.shed);
  w.Key("outage_dropped");
  w.Value(window.outage_dropped);
  w.Key("lost");
  w.Value(window.lost);
  w.Key("slots_lost");
  w.Value(window.slots_lost);
  w.Key("drop_rate");
  w.Value(window.DropRate());
  w.Key("queue_depth");
  w.Value(static_cast<std::uint64_t>(window.queue_depth));
  w.Key("queue_depth_max");
  w.Value(static_cast<std::uint64_t>(window.queue_depth_max));
  w.Key("responses");
  w.Value(window.responses);
  w.Key("response_mean");
  w.Value(window.response_mean);
  w.Key("response_p50");
  w.Value(window.response_p50);
  w.Key("response_p99");
  w.Value(window.response_p99);
  w.Key("response_max");
  w.Value(window.response_max);
  w.EndObject();
  // JsonWriter has no raw-splice primitive; the snapshot callback returns a
  // complete JSON document, so assemble the tail by hand.
  w.Key("metrics");
  std::string out = w.str();
  if (snapshot_) {
    out += snapshot_();
  } else {
    out += "null";
  }
  out += ",\"trace\":[";
  if (sink_ != nullptr) {
    char line[192];
    bool first = true;
    for (const SpanRecord& r : sink_->Events()) {
      if (r.time < window.start) continue;  // Trailing window only.
      const long long client =
          r.client == kNoClient ? -1LL : static_cast<long long>(r.client);
      const long long page =
          r.page == kNoTracePage ? -1LL : static_cast<long long>(r.page);
      std::snprintf(line, sizeof(line),
                    "%s{\"t\":%.3f,\"ev\":\"%s\",\"client\":%lld,"
                    "\"page\":%lld,\"v\":%g}",
                    first ? "" : ",", r.time, SpanEventName(r.event), client,
                    page, r.value);
      out += line;
      first = false;
    }
  }
  out += "]}";
  return out;
}

void FlightRecorder::Fire(const WindowStats& window, const char* trigger,
                          double threshold, double value) {
  ++fire_count_;
  // Multi-shot: stay armed until the dump budget is spent. Each firing
  // window has a distinct end time, so filenames never collide.
  disarmed_ = fire_count_ >= max_dumps_;
  if (bus_ != nullptr) {
    bus_->OnFlightFire(window.end, trigger, threshold, value, fire_count_);
  }
  char stamp[48];
  std::snprintf(stamp, sizeof(stamp), "t%.0f.json", window.end);
  const std::string path = path_prefix_ + stamp;
  const std::string dump = BuildDump(window, trigger, threshold, value);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    last_error_ = "cannot open " + path + " for writing";
    return;
  }
  const std::size_t written = std::fwrite(dump.data(), 1, dump.size(), f);
  std::fclose(f);
  if (written != dump.size()) {
    last_error_ = "short write to " + path;
    return;
  }
  dump_path_ = path;
  last_error_.clear();
}

}  // namespace bdisk::obs
