#ifndef BDISK_OBS_TELEMETRY_BUS_H_
#define BDISK_OBS_TELEMETRY_BUS_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/frame_sink.h"
#include "obs/json.h"
#include "obs/windowed_collector.h"
#include "sim/types.h"

namespace bdisk::obs {

/// One lifetime-counter reading handed to the bus by its probe. `name` is
/// the counter's `bdisk-metrics-v1` snapshot key, which is what lets
/// `bdisk_top --check --snapshot` reconcile a frame stream against the
/// run's final snapshot with no mapping table.
struct CounterSample {
  const char* name;
  std::uint64_t value;
};

/// Streaming telemetry: turns completed telemetry windows and lifecycle
/// edges into compact `bdisk-frame-v1` JSONL frames on a FrameSink — the
/// live, push-style counterpart of the post-hoc snapshot/trace exports
/// (OBSERVABILITY.md §8).
///
/// Frame kinds: `run_start` (provenance + the base counter vector),
/// `window` (counter deltas, gauges, and the window row), `degraded_enter`
/// / `degraded_exit`, `flight_fire`, and `run_end` (closing deltas,
/// cumulative totals, drop accounting).
///
/// Delta semantics — the invariant the whole design serves: every frame
/// gets the next sequence number whether or not the sink accepts it, and
/// counter deltas are credited only when a frame is accepted. A dropped
/// window frame therefore leaves a visible seq gap while its deltas carry
/// forward into the next accepted frame, and `run_end` closes the stream
/// with the deltas since the last accepted frame plus cumulative totals —
/// so for any received stream, base + sum(deltas) == totals exactly, no
/// matter which frames were dropped in between.
///
/// Attach discipline matches the rest of the obs tier: the bus consumes
/// no randomness and schedules no events, so attaching it (any sink)
/// leaves the simulated trajectory bit-identical; wall_ms is the one
/// host-dependent frame field and can be suppressed for byte-identical
/// streams (EnableWallClock(false) — what kernel-matrix tests use).
class TelemetryBus {
 public:
  explicit TelemetryBus(std::unique_ptr<FrameSink> sink);
  ~TelemetryBus();

  /// Installs the lifetime-counter probe and immediately captures the
  /// base vector (counters may be nonzero before observers attach — the
  /// server's constructor makes the first slot decision). The probe must
  /// return the same counters in the same order on every call.
  void SetProbe(std::function<std::vector<CounterSample>()> probe);

  /// Suppresses the wall_ms field for byte-identical frame streams.
  void EnableWallClock(bool on) { wall_clock_ = on; }

  /// Lifecycle edges. `provenance` is a list of key/value pairs describing
  /// the run (mode, seed, ...); keep it to trajectory-relevant fields so
  /// kernel-backend knobs don't break cross-matrix frame identity.
  void EmitRunStart(
      sim::SimTime now,
      const std::vector<std::pair<std::string, std::string>>& provenance);
  void EmitRunEnd(sim::SimTime now);

  /// WindowedCollector calls this as each window closes (before the
  /// flight recorder sees it, so a window frame precedes its flight_fire).
  void OnWindow(const WindowStats& window);

  /// BroadcastServer's degraded-mode hysteresis edge.
  void OnDegraded(sim::SimTime now, bool entering, std::uint32_t queue_depth);

  /// FlightRecorder fired on `window_end`'s window.
  void OnFlightFire(sim::SimTime window_end, const char* trigger,
                    double threshold, double value, std::uint64_t fire_count);

  /// Frames built (sequence numbers handed out), frames the sink refused,
  /// and how many of the built frames were window frames.
  std::uint64_t FramesEmitted() const { return next_seq_; }
  std::uint64_t FramesDropped() const { return frames_dropped_; }
  std::uint64_t WindowFrames() const { return window_frames_; }

  FrameSink& sink() { return *sink_; }

 private:
  class FrameBuilder;

  void Probe(std::vector<std::uint64_t>* out) const;
  double WallMs() const;
  bool Send(const std::string& frame, bool final_frame);

  std::unique_ptr<FrameSink> sink_;
  std::function<std::vector<CounterSample>()> probe_;
  std::vector<const char*> counter_names_;
  std::vector<std::uint64_t> base_;
  // Counter values as of the last frame the sink accepted; the next
  // frame's deltas are measured from here (carry-forward on drop).
  std::vector<std::uint64_t> credited_;
  std::chrono::steady_clock::time_point started_;
  // Per-frame scratch, reused so the steady-state window path allocates
  // nothing (part of the <5% attach budget on EndToEndSlots/250).
  JsonWriter scratch_writer_;
  std::vector<std::uint64_t> scratch_current_;
  std::vector<std::uint64_t> scratch_deltas_;
  bool wall_clock_ = true;
  bool degraded_ = false;
  std::uint64_t next_seq_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t window_frames_ = 0;
};

}  // namespace bdisk::obs

#endif  // BDISK_OBS_TELEMETRY_BUS_H_
