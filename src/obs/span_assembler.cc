#include "obs/span_assembler.h"

#include <algorithm>
#include <cmath>

namespace bdisk::obs {

namespace {

constexpr double kTimeEps = 1e-9;

}  // namespace

const char* SpanOutcomeName(SpanOutcome outcome) {
  switch (outcome) {
    case SpanOutcome::kCacheHit:
      return "hit";
    case SpanOutcome::kPullServed:
      return "pull";
    case SpanOutcome::kSnooped:
      return "snoop";
    case SpanOutcome::kPushServed:
      return "push";
    case SpanOutcome::kIncomplete:
      return "incomplete";
    case SpanOutcome::kAbandoned:
      return "abandoned";
  }
  return "?";
}

double RequestSpan::QueueWait() const {
  if (outcome != SpanOutcome::kPullServed || slot_time < 0.0 ||
      submit_time < 0.0) {
    return 0.0;
  }
  return std::max(0.0, slot_time - submit_time);
}

double RequestSpan::BroadcastWait() const {
  if ((outcome != SpanOutcome::kSnooped &&
       outcome != SpanOutcome::kPushServed) ||
      slot_time < 0.0 || request_time < 0.0) {
    return 0.0;
  }
  return std::max(0.0, slot_time - request_time);
}

double RequestSpan::Transmit() const {
  if (slot_time < 0.0 || delivery_time < 0.0) return 0.0;
  // A request can arrive while its page is already on air (slot decision
  // just before the request); the span only pays for the tail it actually
  // waited through.
  return std::max(0.0, delivery_time - std::max(slot_time, request_time));
}

double RequestSpan::Other() const {
  return response - QueueWait() - BroadcastWait() - Transmit();
}

PhaseBreakdown Attribute(const std::vector<RequestSpan>& spans) {
  PhaseBreakdown b;
  double queue_wait = 0.0;
  double broadcast_wait = 0.0;
  double transmit = 0.0;
  double other = 0.0;
  double response = 0.0;
  for (const RequestSpan& s : spans) {
    if (!s.Complete()) {
      ++b.incomplete;
      continue;
    }
    if (s.truncated) {
      ++b.truncated;
      continue;
    }
    ++b.spans;
    switch (s.outcome) {
      case SpanOutcome::kCacheHit:
        ++b.hits;
        break;
      case SpanOutcome::kPullServed:
        ++b.pull_served;
        break;
      case SpanOutcome::kSnooped:
        ++b.snooped;
        break;
      case SpanOutcome::kPushServed:
        ++b.push_served;
        break;
      case SpanOutcome::kIncomplete:
        break;
      case SpanOutcome::kAbandoned:
        ++b.abandoned;
        break;
    }
    if (s.coalesced) ++b.coalesced;
    b.drops += s.drops;
    b.retries += s.retries;
    b.sheds += s.sheds;
    b.timeouts += s.timeouts;
    queue_wait += s.QueueWait();
    broadcast_wait += s.BroadcastWait();
    transmit += s.Transmit();
    other += s.Other();
    response += s.response;
  }
  if (b.spans > 0) {
    const auto n = static_cast<double>(b.spans);
    b.mean_queue_wait = queue_wait / n;
    b.mean_broadcast_wait = broadcast_wait / n;
    b.mean_transmit = transmit / n;
    b.mean_other = other / n;
    b.mean_response = response / n;
  }
  return b;
}

RequestSpan* SpanAssembler::PendingOrTruncated(const SpanRecord& record) {
  const std::uint64_t key = Key(record.client, record.page);
  const auto it = pending_.find(key);
  if (it != pending_.end()) return &it->second;
  if (!input_truncated_) {
    ++orphans_;
    return nullptr;
  }
  // The span's head fell off the ring: open a headless, truncated span so
  // its remaining records still join each other (but never a later span).
  RequestSpan span;
  span.client = record.client;
  span.page = record.page;
  span.truncated = true;
  return &pending_.emplace(key, span).first->second;
}

void SpanAssembler::CloseOnDelivery(RequestSpan* span,
                                    const SpanRecord& record) {
  span->delivery_time = record.time;
  span->response = record.value;
  const auto slot = last_slot_.find(record.page);
  // The delivering slot's decision is one unit before delivery, and the
  // request may land mid-transmission — so the slot may precede the request
  // by up to one unit. Anything earlier is a stale broadcast of the same
  // page and must not be blamed.
  const bool slot_ok =
      slot != last_slot_.end() && slot->second.time < record.time &&
      (span->truncated ||
       slot->second.time >= span->request_time - 1.0 - kTimeEps);
  if (slot_ok) {
    span->slot_time = slot->second.time;
    span->outcome = slot->second.pull
                        ? (span->submitted ? SpanOutcome::kPullServed
                                           : SpanOutcome::kSnooped)
                        : SpanOutcome::kPushServed;
  } else {
    // Slot record lost (tiny ring): complete but unattributable.
    span->truncated = true;
    span->outcome = span->submitted ? SpanOutcome::kPullServed
                                    : SpanOutcome::kPushServed;
  }
  completed_.push_back(*span);
  pending_.erase(Key(record.client, record.page));
}

void SpanAssembler::Feed(const SpanRecord& record) {
  switch (record.event) {
    case SpanEvent::kSlotPush:
    case SpanEvent::kSlotPull:
      last_slot_[record.page] =
          SlotInfo{record.time, record.event == SpanEvent::kSlotPull};
      return;
    case SpanEvent::kSlotIdle:
      return;
    case SpanEvent::kRequest: {
      const std::uint64_t key = Key(record.client, record.page);
      const auto it = pending_.find(key);
      if (it != pending_.end()) {
        // A fresh request for a key with an open span: the old span's tail
        // was lost. Close it incomplete rather than mis-joining.
        it->second.truncated = true;
        completed_.push_back(it->second);
        pending_.erase(it);
      }
      RequestSpan span;
      span.client = record.client;
      span.page = record.page;
      span.request_time = record.time;
      pending_.emplace(key, span);
      return;
    }
    case SpanEvent::kCacheHit: {
      RequestSpan* span = PendingOrTruncated(record);
      if (span == nullptr) return;
      span->outcome = SpanOutcome::kCacheHit;
      span->delivery_time = record.time;
      span->response = 0.0;
      completed_.push_back(*span);
      pending_.erase(Key(record.client, record.page));
      return;
    }
    case SpanEvent::kCacheMiss: {
      RequestSpan* span = PendingOrTruncated(record);
      if (span != nullptr && span->request_time < 0.0) {
        span->request_time = record.time;  // Best effort for headless spans.
      }
      return;
    }
    case SpanEvent::kSubmitFiltered: {
      RequestSpan* span = PendingOrTruncated(record);
      if (span != nullptr) span->filtered = true;
      return;
    }
    case SpanEvent::kSubmitAccepted:
    case SpanEvent::kSubmitCoalesced:
    case SpanEvent::kSubmitDropped: {
      const auto it = pending_.find(Key(record.client, record.page));
      if (it == pending_.end()) {
        // Load from a client that emits no request records (the virtual
        // client): tallied, never joined.
        ++unmatched_submits_;
        return;
      }
      RequestSpan* span = &it->second;
      if (!span->submitted) {
        span->submitted = true;
        span->submit_time = record.time;
        span->coalesced = record.event == SpanEvent::kSubmitCoalesced;
      }
      if (record.event == SpanEvent::kSubmitDropped) ++span->drops;
      return;
    }
    case SpanEvent::kRetry: {
      RequestSpan* span = PendingOrTruncated(record);
      if (span != nullptr) ++span->retries;
      return;
    }
    case SpanEvent::kDelivery: {
      RequestSpan* span = PendingOrTruncated(record);
      if (span != nullptr) CloseOnDelivery(span, record);
      return;
    }
    case SpanEvent::kInvalidate: {
      // Invalidations hit cached copies, not necessarily open spans; only
      // annotate a span that happens to be waiting on the page.
      const auto it = pending_.find(Key(record.client, record.page));
      if (it != pending_.end()) it->second.invalidated = true;
      return;
    }
    case SpanEvent::kSubmitShed:
    case SpanEvent::kSubmitOutage:
    case SpanEvent::kSubmitLost: {
      const auto it = pending_.find(Key(record.client, record.page));
      if (it == pending_.end()) {
        ++unmatched_submits_;  // Virtual-client load, tallied not joined.
        return;
      }
      RequestSpan* span = &it->second;
      // Shed/outage attempts reached the server; a channel-lost one never
      // did, so it opens no queue interaction at all.
      if (record.event != SpanEvent::kSubmitLost && !span->submitted) {
        span->submitted = true;
        span->submit_time = record.time;
      }
      ++span->drops;
      if (record.event != SpanEvent::kSubmitLost) ++span->sheds;
      return;
    }
    case SpanEvent::kSlotLost:
    case SpanEvent::kSlotCorrupt:
      // The slot was spent but nobody received the page: a later delivery
      // of this page must not be attributed to the lost slot.
      last_slot_.erase(record.page);
      return;
    case SpanEvent::kTimeout: {
      const auto it = pending_.find(Key(record.client, record.page));
      if (it != pending_.end()) ++it->second.timeouts;
      return;
    }
    case SpanEvent::kFallback: {
      const auto it = pending_.find(Key(record.client, record.page));
      if (it != pending_.end()) it->second.fell_back = true;
      return;
    }
    case SpanEvent::kAbandon: {
      RequestSpan* span = PendingOrTruncated(record);
      if (span == nullptr) return;
      span->outcome = SpanOutcome::kAbandoned;
      span->delivery_time = record.time;
      span->response = record.value;
      completed_.push_back(*span);
      pending_.erase(Key(record.client, record.page));
      return;
    }
    case SpanEvent::kDegradedEnter:
    case SpanEvent::kDegradedExit:
    case SpanEvent::kOutageStart:
    case SpanEvent::kOutageEnd:
      return;  // Server-global state transitions; no span to join.
    case SpanEvent::kMaxValue:
      return;
  }
}

std::vector<RequestSpan> SpanAssembler::Finish() {
  std::vector<RequestSpan> out = std::move(completed_);
  std::vector<RequestSpan> open;
  open.reserve(pending_.size());
  for (auto& [key, span] : pending_) {
    (void)key;
    open.push_back(span);
  }
  std::sort(open.begin(), open.end(),
            [](const RequestSpan& a, const RequestSpan& b) {
              if (a.request_time != b.request_time) {
                return a.request_time < b.request_time;
              }
              return a.client != b.client ? a.client < b.client
                                          : a.page < b.page;
            });
  out.insert(out.end(), open.begin(), open.end());
  pending_.clear();
  return out;
}

}  // namespace bdisk::obs
