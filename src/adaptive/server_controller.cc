#include "adaptive/server_controller.h"

#include <algorithm>

#include "sim/check.h"

namespace bdisk::adaptive {

ServerController::ServerController(sim::Simulator* simulator,
                                   server::BroadcastServer* server,
                                   const ServerControllerOptions& options)
    : sim::Process(simulator), server_(server), options_(options) {
  BDISK_CHECK_MSG(server != nullptr, "controller needs a server");
  BDISK_CHECK_MSG(options.control_period > 0.0,
                  "control period must be positive");
  BDISK_CHECK_MSG(options.bw_min > 0.0 && options.bw_min <= options.bw_max &&
                      options.bw_max <= 1.0,
                  "invalid PullBW clamp range");
  BDISK_CHECK_MSG(options.bw_step > 0.0, "bw_step must be positive");
  BDISK_CHECK_MSG(options.drop_low <= options.drop_high,
                  "drop_low must not exceed drop_high");
}

void ServerController::OnWakeup() {
  // Barrier: the windowed submit/drop counters below must include every
  // fused virtual-client arrival up to this decision point.
  simulator()->CatchUpLazySources();
  const server::PullQueue& queue = server_->queue();
  const std::uint64_t submitted = queue.SubmittedCount() - last_submitted_;
  const std::uint64_t dropped = queue.DroppedCount() - last_dropped_;
  last_submitted_ = queue.SubmittedCount();
  last_dropped_ = queue.DroppedCount();
  ++decisions_;

  const double window_drop_rate =
      submitted == 0 ? 0.0
                     : static_cast<double>(dropped) /
                           static_cast<double>(submitted);
  const double occupancy = static_cast<double>(queue.Size()) /
                           static_cast<double>(queue.Capacity());

  double bw = server_->pull_bw();
  if (window_drop_rate > options_.drop_high) {
    bw = std::max(options_.bw_min, bw - options_.bw_step);
  } else if (window_drop_rate < options_.drop_low &&
             occupancy < options_.occupancy_low) {
    bw = std::min(options_.bw_max, bw + options_.bw_step);
  }
  if (bw != server_->pull_bw()) {
    server_->SetPullBw(bw);
    ++adjustments_;
  }
  ScheduleWakeup(options_.control_period);
}

}  // namespace bdisk::adaptive
