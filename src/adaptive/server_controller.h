#ifndef BDISK_ADAPTIVE_SERVER_CONTROLLER_H_
#define BDISK_ADAPTIVE_SERVER_CONTROLLER_H_

#include <cstdint>

#include "server/broadcast_server.h"
#include "sim/process.h"

namespace bdisk::adaptive {

/// Tuning parameters for the server-side PullBW controller.
struct ServerControllerOptions {
  /// Seconds (broadcast units) between control decisions. Roughly half a
  /// major cycle gives the queue time to show a trend.
  double control_period = 800.0;

  /// PullBW adjustment per decision, and its clamp range. The minimum
  /// stays positive so pull-only (truncated) pages can always be served.
  double bw_step = 0.05;
  double bw_min = 0.05;
  double bw_max = 0.95;

  /// Drop-rate thresholds over the last window: above `drop_high` the
  /// server is saturating (shift bandwidth to push — the safety net);
  /// below `drop_low` with a mostly-empty queue, pulls are cheap (shift
  /// bandwidth to pull for responsiveness).
  double drop_high = 0.05;
  double drop_low = 0.005;

  /// Queue-occupancy fraction below which the system counts as lightly
  /// loaded for the raise decision.
  double occupancy_low = 0.25;
};

/// Dynamic PullBW control — the server-side half of the paper's §6
/// proposal: "as the contention on the server increases, a dynamic
/// algorithm might automatically reduce the pull bandwidth at the server".
///
/// Every `control_period` units the controller looks at the request drop
/// rate over the *last window only* (not lifetime) and the instantaneous
/// queue occupancy, then nudges the server's PullBW one step:
///
///   drop rate > drop_high                  -> PullBW -= step  (save push)
///   drop rate < drop_low and queue small   -> PullBW += step  (serve pulls)
///   otherwise                              -> hold.
///
/// Rationale (Experiment 1/Figure 3b): at saturation, low PullBW beats
/// high (drops are inevitable; pull slots only delay the broadcast
/// everyone falls back on), while at light load high PullBW costs nothing
/// and serves misses in ~2 units. A static PullBW must pick one regime;
/// the controller tracks the current one.
class ServerController : public sim::Process {
 public:
  ServerController(sim::Simulator* simulator,
                   server::BroadcastServer* server,
                   const ServerControllerOptions& options);

  /// Starts periodic control decisions.
  void Start() { ScheduleWakeup(options_.control_period); }

  /// Number of control decisions taken so far.
  std::uint64_t Decisions() const { return decisions_; }

  /// Number of decisions that changed PullBW (up or down).
  std::uint64_t Adjustments() const { return adjustments_; }

 protected:
  void OnWakeup() override;

 private:
  server::BroadcastServer* server_;
  ServerControllerOptions options_;
  // Lifetime counters as of the previous decision, for window deltas.
  std::uint64_t last_submitted_ = 0;
  std::uint64_t last_dropped_ = 0;
  std::uint64_t decisions_ = 0;
  std::uint64_t adjustments_ = 0;
};

}  // namespace bdisk::adaptive

#endif  // BDISK_ADAPTIVE_SERVER_CONTROLLER_H_
