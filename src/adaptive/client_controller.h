#ifndef BDISK_ADAPTIVE_CLIENT_CONTROLLER_H_
#define BDISK_ADAPTIVE_CLIENT_CONTROLLER_H_

#include <cstdint>

#include "client/measured_client.h"
#include "sim/process.h"

namespace bdisk::adaptive {

/// Tuning parameters for the client-side threshold controller.
struct ClientControllerOptions {
  /// Broadcast units between control decisions.
  double control_period = 800.0;

  /// Threshold adjustment per decision and its clamp range.
  double thres_step = 0.05;
  double thres_min = 0.0;
  double thres_max = 0.5;

  /// PullWaitRatio above which pulls are considered wasted (requests are
  /// being dropped; raise the threshold) and below which they are clearly
  /// effective (lower it).
  double ratio_high = 0.8;
  double ratio_low = 0.4;
};

/// Dynamic threshold control — the client-side half of the paper's §6
/// proposal: "use a larger threshold at the client" as contention grows.
///
/// The server gives clients no feedback, so the only saturation signal a
/// client can compute is how much its own pulls beat the push schedule:
/// MeasuredClient::PullWaitRatio() is ~0 when pull responses arrive far
/// ahead of the scheduled push and ~1 when the client ends up waiting for
/// the push anyway (its requests were dropped). The controller raises
/// ThresPerc when the ratio says pulls are wasted — conserving the
/// backchannel exactly as Experiment 2 prescribes — and lowers it when
/// pulls are paying off.
class ClientController : public sim::Process {
 public:
  ClientController(sim::Simulator* simulator, client::MeasuredClient* client,
                   const ClientControllerOptions& options);

  /// Starts periodic control decisions.
  void Start() { ScheduleWakeup(options_.control_period); }

  /// Number of control decisions taken so far.
  std::uint64_t Decisions() const { return decisions_; }

  /// Number of decisions that changed the threshold.
  std::uint64_t Adjustments() const { return adjustments_; }

 protected:
  void OnWakeup() override;

 private:
  client::MeasuredClient* client_;
  ClientControllerOptions options_;
  std::uint64_t decisions_ = 0;
  std::uint64_t adjustments_ = 0;
};

}  // namespace bdisk::adaptive

#endif  // BDISK_ADAPTIVE_CLIENT_CONTROLLER_H_
