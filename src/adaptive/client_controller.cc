#include "adaptive/client_controller.h"

#include <algorithm>

#include "sim/check.h"

namespace bdisk::adaptive {

ClientController::ClientController(sim::Simulator* simulator,
                                   client::MeasuredClient* client,
                                   const ClientControllerOptions& options)
    : sim::Process(simulator), client_(client), options_(options) {
  BDISK_CHECK_MSG(client != nullptr, "controller needs a client");
  BDISK_CHECK_MSG(options.control_period > 0.0,
                  "control period must be positive");
  BDISK_CHECK_MSG(options.thres_min >= 0.0 &&
                      options.thres_min <= options.thres_max &&
                      options.thres_max <= 1.0,
                  "invalid threshold clamp range");
  BDISK_CHECK_MSG(options.ratio_low <= options.ratio_high,
                  "ratio_low must not exceed ratio_high");
}

void ClientController::OnWakeup() {
  // Barrier (for uniformity with the server controller; the pull-wait
  // ratio it reads is MC-owned, but a controller observing the system
  // should never see a half-drained one).
  simulator()->CatchUpLazySources();
  ++decisions_;
  const double ratio = client_->PullWaitRatio();
  double thres = client_->thres_perc();
  if (ratio > options_.ratio_high) {
    thres = std::min(options_.thres_max, thres + options_.thres_step);
  } else if (ratio > 0.0 && ratio < options_.ratio_low) {
    thres = std::max(options_.thres_min, thres - options_.thres_step);
  }
  if (thres != client_->thres_perc()) {
    client_->SetThresPerc(thres);
    ++adjustments_;
  }
  ScheduleWakeup(options_.control_period);
}

}  // namespace bdisk::adaptive
