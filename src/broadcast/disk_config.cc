#include "broadcast/disk_config.h"

#include <numeric>

namespace bdisk::broadcast {

std::uint32_t DiskConfig::TotalPages() const {
  return std::accumulate(sizes.begin(), sizes.end(), 0U);
}

std::string DiskConfig::Validate() const {
  if (sizes.empty()) return "at least one disk is required";
  if (sizes.size() != rel_freqs.size()) {
    return "sizes and rel_freqs must have the same length";
  }
  for (std::size_t i = 0; i < rel_freqs.size(); ++i) {
    if (rel_freqs[i] == 0) return "relative frequencies must be >= 1";
    if (i > 0 && rel_freqs[i] > rel_freqs[i - 1]) {
      return "relative frequencies must be non-increasing "
             "(disk 0 is the fastest)";
    }
  }
  if (TotalPages() == 0) return "at least one page must be broadcast";
  return "";
}

DiskConfig DiskConfig::Paper() {
  return DiskConfig{{100, 400, 500}, {3, 2, 1}};
}

DiskConfig DiskConfig::Figure1() {
  return DiskConfig{{1, 2, 4}, {4, 2, 1}};
}

}  // namespace bdisk::broadcast
