#include "broadcast/program_builder.h"

#include <cstdint>
#include <numeric>

#include "sim/check.h"

namespace bdisk::broadcast {

namespace {

std::uint64_t Lcm(std::uint64_t a, std::uint64_t b) {
  return a / std::gcd(a, b) * b;
}

// Start offset of chunk `c` when splitting `size` pages into `chunks`
// pieces with sizes differing by at most one (the first size%chunks chunks
// take the extra page).
std::uint32_t BalancedChunkStart(std::uint32_t size, std::uint32_t chunks,
                                 std::uint32_t c) {
  const std::uint32_t base = size / chunks;
  const std::uint32_t extra = size % chunks;
  return c * base + std::min(c, extra);
}

}  // namespace

std::vector<PageId> BuildSchedule(
    const std::vector<std::vector<PageId>>& disk_pages,
    const std::vector<std::uint32_t>& rel_freqs, ChunkingMode mode) {
  BDISK_CHECK_MSG(disk_pages.size() == rel_freqs.size(),
                  "one relative frequency per disk");

  // Collect non-empty disks; the lcm runs over those only, so a fully
  // truncated slow disk does not inflate the cycle.
  std::vector<std::size_t> live;
  for (std::size_t d = 0; d < disk_pages.size(); ++d) {
    if (!disk_pages[d].empty()) {
      BDISK_CHECK_MSG(rel_freqs[d] >= 1, "relative frequency must be >= 1");
      live.push_back(d);
    }
  }
  if (live.empty()) return {};

  // Frequencies matter only as ratios; normalize by the gcd of the whole
  // configuration so e.g. a single disk at "frequency 7" yields one copy of
  // its pages per cycle, not seven. (Taken over all disks, not just
  // non-empty ones, so truncating a disk never changes the others' cycle
  // structure.)
  std::uint64_t common = 0;
  for (const std::uint32_t f : rel_freqs) common = std::gcd(common, f);
  std::vector<std::uint32_t> norm_freqs(rel_freqs.size(), 0);
  for (const std::size_t d : live) {
    norm_freqs[d] = rel_freqs[d] / static_cast<std::uint32_t>(common);
  }

  std::uint64_t max_chunks = 1;
  for (const std::size_t d : live) {
    max_chunks = Lcm(max_chunks, norm_freqs[d]);
  }
  BDISK_CHECK_MSG(max_chunks <= (1U << 20),
                  "relative frequencies produce an unreasonable cycle");

  struct DiskPlan {
    const std::vector<PageId>* pages;
    std::uint32_t num_chunks;
    std::uint32_t pad_chunk_size;  // kPad mode only.
  };
  std::vector<DiskPlan> plans;
  plans.reserve(live.size());
  std::size_t cycle_len = 0;
  for (const std::size_t d : live) {
    const auto size = static_cast<std::uint32_t>(disk_pages[d].size());
    const auto chunks =
        static_cast<std::uint32_t>(max_chunks / norm_freqs[d]);
    const std::uint32_t pad_size = (size + chunks - 1) / chunks;
    plans.push_back(DiskPlan{&disk_pages[d], chunks, pad_size});
    cycle_len += (mode == ChunkingMode::kPad)
                     ? static_cast<std::size_t>(pad_size) * max_chunks
                     : static_cast<std::size_t>(size) * norm_freqs[d];
  }

  std::vector<PageId> schedule;
  schedule.reserve(cycle_len);
  for (std::uint32_t i = 0; i < max_chunks; ++i) {
    for (const DiskPlan& plan : plans) {
      const std::uint32_t c = i % plan.num_chunks;
      const auto size = static_cast<std::uint32_t>(plan.pages->size());
      if (mode == ChunkingMode::kPad) {
        for (std::uint32_t k = 0; k < plan.pad_chunk_size; ++k) {
          const std::uint64_t idx =
              static_cast<std::uint64_t>(c) * plan.pad_chunk_size + k;
          schedule.push_back(idx < size ? (*plan.pages)[idx] : kNoPage);
        }
      } else {
        const std::uint32_t begin = BalancedChunkStart(size, plan.num_chunks, c);
        const std::uint32_t end =
            BalancedChunkStart(size, plan.num_chunks, c + 1);
        for (std::uint32_t k = begin; k < end; ++k) {
          schedule.push_back((*plan.pages)[k]);
        }
      }
    }
  }
  BDISK_DCHECK(schedule.size() == cycle_len);
  return schedule;
}

}  // namespace bdisk::broadcast
