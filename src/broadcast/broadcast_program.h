#ifndef BDISK_BROADCAST_BROADCAST_PROGRAM_H_
#define BDISK_BROADCAST_BROADCAST_PROGRAM_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "broadcast/page.h"

namespace bdisk::broadcast {

/// One major cycle of a broadcast schedule, with a per-page occurrence index
/// for O(log k) "slots until page p next appears" queries.
///
/// Positions are slot indices in [0, Length()); the schedule repeats
/// cyclically. This is what both the server (to emit pages) and the clients
/// (threshold filter, PIX frequency term) consult. The paper assumes clients
/// know the push schedule.
class BroadcastProgram {
 public:
  /// Sentinel distance for pages that never appear on the schedule.
  static constexpr std::uint32_t kNeverBroadcast =
      std::numeric_limits<std::uint32_t>::max();

  /// Builds the index over one major cycle. `db_size` is ServerDBSize; every
  /// non-kNoPage entry must be < db_size. An empty schedule is valid (pure
  /// pull).
  BroadcastProgram(std::vector<PageId> schedule, std::uint32_t db_size);

  /// Number of slots in the major cycle (MajorCycleSize).
  std::uint32_t Length() const {
    return static_cast<std::uint32_t>(schedule_.size());
  }

  /// True when no pages are pushed at all (pure pull).
  bool Empty() const { return schedule_.empty(); }

  /// Database size this program was built over.
  std::uint32_t DbSize() const { return db_size_; }

  /// Page broadcast in slot `pos` (kNoPage for padding slots).
  PageId PageAt(std::uint32_t pos) const { return schedule_[pos]; }

  /// The whole major cycle as a flat array of Length() entries. Hot readers
  /// (the server's schedule cursor) iterate this directly instead of going
  /// through PageAt() call-by-call.
  const PageId* ScheduleData() const { return schedule_.data(); }

  /// The raw CSR occurrence index: page p's sorted slot positions are
  /// OccPositionsData()[OccOffsetsData()[p] .. OccOffsetsData()[p+1]).
  /// Hot readers (schedule cursor, DistanceSnapshot) cache these two
  /// pointers once and run DistanceToNext's lower_bound inline, skipping
  /// the per-query indirection through the program object.
  const std::uint32_t* OccOffsetsData() const { return occ_offsets_.data(); }
  const std::uint32_t* OccPositionsData() const {
    return occ_positions_.data();
  }

  /// True iff `page` appears somewhere on the schedule.
  bool Contains(PageId page) const { return Frequency(page) > 0; }

  /// Times `page` appears per major cycle (the PIX `x` term).
  std::uint32_t Frequency(PageId page) const;

  /// Number of slots from position `pos` (inclusive) until `page` is next
  /// broadcast: 0 means slot `pos` itself carries the page. Returns
  /// kNeverBroadcast for pages not on the schedule.
  std::uint32_t DistanceToNext(std::uint32_t pos, PageId page) const;

  /// Mean wait, in slots, for `page` from a uniformly random position —
  /// length/(2*frequency) for scheduled pages assuming even spacing;
  /// kNeverBroadcast (as a double) for unscheduled ones. Diagnostic helper.
  double ExpectedWait(PageId page) const;

  /// Human-readable one-line rendering for small programs ("a b d a c e…",
  /// pages printed as numbers, '-' for padding).
  std::string ToString() const;

 private:
  std::vector<PageId> schedule_;
  std::uint32_t db_size_;
  // Occurrence index in CSR layout: the sorted slot positions of page p
  // are occ_positions_[occ_offsets_[p] .. occ_offsets_[p+1]). One flat
  // array instead of a vector-of-vectors keeps the per-query working set
  // to two contiguous loads — DistanceToNext is the virtual-client hot
  // path, called once per simulated client arrival.
  std::vector<std::uint32_t> occ_offsets_;    // db_size_ + 1 entries.
  std::vector<std::uint32_t> occ_positions_;  // One entry per filled slot.
};

}  // namespace bdisk::broadcast

#endif  // BDISK_BROADCAST_BROADCAST_PROGRAM_H_
