#ifndef BDISK_BROADCAST_DISTANCE_SNAPSHOT_H_
#define BDISK_BROADCAST_DISTANCE_SNAPSHOT_H_

#include <cstdint>
#include <vector>

#include "broadcast/broadcast_program.h"
#include "broadcast/page.h"

namespace bdisk::broadcast {

/// Barrier-frozen page→distance resolution for batched arrival draining.
///
/// Within one lazy-source drain the schedule cursor position is constant
/// (the cursor only advances in the server's slot decision, which runs
/// after the drain barrier — see DESIGN.md, "The batched arrival spine"),
/// so every DistanceToNext query in the batch resolves against the same
/// `pos`. Freeze(pos) pins that position once per barrier; Distance(page)
/// then runs the CSR lower_bound with the position hoisted out of the loop
/// and memoizes the result per page, so a batch that asks about the same
/// hot page twice pays one search, not two.
///
/// The memo is invalidated by epoch stamping: Freeze with a new position
/// bumps the epoch instead of clearing the table, so re-freezing is O(1).
/// Distances are identical to BroadcastProgram::DistanceToNext(pos, page),
/// including kNeverBroadcast for unscheduled pages and an empty program.
class DistanceSnapshot {
 public:
  /// The program must outlive the snapshot. An empty program (pure pull)
  /// is valid: every page resolves to kNeverBroadcast.
  explicit DistanceSnapshot(const BroadcastProgram& program);

  /// Pins the cursor position for the queries that follow. Cheap when the
  /// position has not moved since the last Freeze (the memo survives).
  void Freeze(std::uint32_t pos) {
    if (pos == pos_) return;
    pos_ = pos;
    if (++epoch_ == 0) {  // Epoch wrap: invalidate the long way, once.
      std::fill(memo_epoch_.begin(), memo_epoch_.end(), 0U);
      epoch_ = 1;
    }
  }

  /// The frozen position.
  std::uint32_t Position() const { return pos_; }

  /// Slots from the frozen position until `page` is next pushed; identical
  /// to program.DistanceToNext(Position(), page). Memoized per Freeze.
  std::uint32_t Distance(PageId page) {
    if (memo_epoch_[page] == epoch_) return memo_dist_[page];
    const std::uint32_t d = Resolve(page);
    memo_epoch_[page] = epoch_;
    memo_dist_[page] = d;
    return d;
  }

 private:
  std::uint32_t Resolve(PageId page) const;

  const std::uint32_t* occ_offsets_;
  const std::uint32_t* occ_positions_;
  std::uint32_t length_;
  std::uint32_t pos_ = 0;
  std::uint32_t epoch_ = 1;
  std::vector<std::uint32_t> memo_dist_;
  std::vector<std::uint32_t> memo_epoch_;  // Entry valid iff == epoch_.
};

}  // namespace bdisk::broadcast

#endif  // BDISK_BROADCAST_DISTANCE_SNAPSHOT_H_
