#ifndef BDISK_BROADCAST_PAGE_H_
#define BDISK_BROADCAST_PAGE_H_

#include <cstdint>
#include <limits>

namespace bdisk::broadcast {

/// Identifier of a database page. The server database is pages
/// [0, ServerDBSize).
using PageId = std::uint32_t;

/// Sentinel: an empty broadcast slot (schedule padding, or an idle slot when
/// a Pure-Pull server has nothing queued).
inline constexpr PageId kNoPage = std::numeric_limits<PageId>::max();

}  // namespace bdisk::broadcast

#endif  // BDISK_BROADCAST_PAGE_H_
