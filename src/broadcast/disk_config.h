#ifndef BDISK_BROADCAST_DISK_CONFIG_H_
#define BDISK_BROADCAST_DISK_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bdisk::broadcast {

/// Shape of a multi-disk broadcast program: how many "disks" (frequency
/// tiers), how many pages each holds, and how often each spins relative to
/// the slowest one.
///
/// Disk 0 is the fastest; relative frequencies must be non-increasing, per
/// the paper ("lower numbered disks have higher broadcast frequency").
/// The paper's main configuration is sizes {100,400,500}, frequencies
/// {3,2,1}; its Figure 1 example is sizes {1,2,4}, frequencies {4,2,1}.
struct DiskConfig {
  /// Pages per disk (DiskSize_i). A size may be zero (a fully truncated
  /// disk); such disks are skipped during program generation.
  std::vector<std::uint32_t> sizes;

  /// Broadcast frequency of each disk relative to the slowest (RelFreq_i).
  /// All must be >= 1.
  std::vector<std::uint32_t> rel_freqs;

  /// Number of disks.
  std::size_t NumDisks() const { return sizes.size(); }

  /// Total pages across all disks (the size of the pushed database subset).
  std::uint32_t TotalPages() const;

  /// Validates shape constraints; returns an error description, or empty
  /// string if valid.
  std::string Validate() const;

  /// The paper's Table 3 configuration: {100,400,500} pages at {3,2,1}.
  static DiskConfig Paper();

  /// The paper's Figure 1 example: {1,2,4} pages at {4,2,1}.
  static DiskConfig Figure1();
};

}  // namespace bdisk::broadcast

#endif  // BDISK_BROADCAST_DISK_CONFIG_H_
