#include "broadcast/air_index.h"

#include <algorithm>
#include <cmath>

#include "sim/check.h"

namespace bdisk::broadcast {

namespace {

void CheckConfig(const AirIndexConfig& config) {
  BDISK_CHECK_MSG(config.data_slots >= 1, "need at least one data slot");
  BDISK_CHECK_MSG(config.index_slots >= 1, "need at least one index slot");
  BDISK_CHECK_MSG(config.m >= 1, "need at least one index segment");
  BDISK_CHECK_MSG(config.m <= config.data_slots,
                  "more index segments than data slots");
}

}  // namespace

double IndexedCycleLength(const AirIndexConfig& config) {
  CheckConfig(config);
  return static_cast<double>(config.data_slots) +
         static_cast<double>(config.m) *
             static_cast<double>(config.index_slots);
}

double ExpectedLatency(const AirIndexConfig& config) {
  CheckConfig(config);
  const double cycle = IndexedCycleLength(config);
  const double to_index = cycle / (2.0 * static_cast<double>(config.m));
  const double read_index = static_cast<double>(config.index_slots);
  const double doze_to_page = cycle / 2.0;
  return to_index + read_index + doze_to_page + 1.0;
}

double ExpectedTuningTime(const AirIndexConfig& config) {
  CheckConfig(config);
  // Initial probe slot + the index segment + the page itself. Constant in
  // m: more frequent indexes trim latency, not energy.
  return 1.0 + static_cast<double>(config.index_slots) + 1.0;
}

double UnindexedLatency(std::uint32_t data_slots) {
  BDISK_CHECK_MSG(data_slots >= 1, "need at least one data slot");
  return static_cast<double>(data_slots) / 2.0 + 1.0;
}

double UnindexedTuningTime(std::uint32_t data_slots) {
  return UnindexedLatency(data_slots);  // Awake the whole wait.
}

std::uint32_t OptimalIndexFrequency(std::uint32_t data_slots,
                                    std::uint32_t index_slots) {
  BDISK_CHECK_MSG(data_slots >= 1 && index_slots >= 1, "bad index shape");
  const double ideal = std::sqrt(static_cast<double>(data_slots) /
                                 static_cast<double>(index_slots));
  const auto m = static_cast<std::uint32_t>(std::llround(ideal));
  return std::clamp(m, 1U, data_slots);
}

std::vector<std::uint32_t> IndexSegmentStarts(const AirIndexConfig& config) {
  CheckConfig(config);
  // Each of the m super-segments holds one index segment followed by a
  // near-equal share of the data (shares differ by at most one slot).
  std::vector<std::uint32_t> starts;
  starts.reserve(config.m);
  std::uint32_t offset = 0;
  const std::uint32_t base = config.data_slots / config.m;
  const std::uint32_t extra = config.data_slots % config.m;
  for (std::uint32_t i = 0; i < config.m; ++i) {
    starts.push_back(offset);
    offset += config.index_slots + base + (i < extra ? 1 : 0);
  }
  return starts;
}

}  // namespace bdisk::broadcast
