#include "broadcast/span_table.h"

#include <algorithm>

namespace bdisk::broadcast {

std::unique_ptr<const CycleSpanTable> CycleSpanTable::BuildIfFeasible(
    const BroadcastProgram& program, std::uint32_t threshold_slots,
    std::size_t max_bytes) {
  if (program.Empty()) return nullptr;
  const std::size_t words_per_row = (program.Length() + 63) / 64;
  const std::size_t bytes =
      words_per_row * program.DbSize() * sizeof(std::uint64_t);
  if (bytes > max_bytes) return nullptr;
  return std::unique_ptr<const CycleSpanTable>(
      new CycleSpanTable(program, threshold_slots));
}

CycleSpanTable::CycleSpanTable(const BroadcastProgram& program,
                               std::uint32_t threshold_slots)
    : length_(program.Length()),
      threshold_(threshold_slots),
      words_per_row_((length_ + 63) / 64),
      bits_(words_per_row_ * program.DbSize(), ~std::uint64_t{0}) {
  // All-ones = pull everywhere (the unscheduled-page answer); each
  // occurrence then clears its "near" span. distance(pos, p) <= T exactly
  // when pos lies in the cyclic span [occ - T, occ], so the span length is
  // T + 1, clamped to one full cycle.
  const std::uint32_t span =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(
          static_cast<std::uint64_t>(threshold_slots) + 1, length_));
  const std::uint32_t* offsets = program.OccOffsetsData();
  const std::uint32_t* positions = program.OccPositionsData();
  for (PageId page = 0; page < program.DbSize(); ++page) {
    for (std::uint32_t i = offsets[page]; i < offsets[page + 1]; ++i) {
      const std::uint32_t occ = positions[i];
      const std::uint32_t begin =
          occ + 1 >= span ? occ + 1 - span : length_ + occ + 1 - span;
      ClearCyclic(page, begin, span);
    }
  }
}

void CycleSpanTable::ClearCyclic(PageId page, std::uint32_t begin,
                                 std::uint32_t count) {
  std::uint64_t* row = bits_.data() + page * words_per_row_;
  const std::uint32_t tail = length_ - begin;
  if (count <= tail) {
    ClearLinear(row, begin, count);
  } else {
    ClearLinear(row, begin, tail);
    ClearLinear(row, 0, count - tail);
  }
}

void CycleSpanTable::ClearLinear(std::uint64_t* row, std::uint32_t begin,
                                 std::uint32_t count) {
  if (count == 0) return;
  const std::uint32_t end = begin + count;  // Exclusive; <= length_.
  std::uint32_t word = begin >> 6;
  const std::uint32_t last_word = (end - 1) >> 6;
  const std::uint64_t first_mask = ~std::uint64_t{0} << (begin & 63);
  const std::uint64_t last_mask =
      ~std::uint64_t{0} >> (63 - ((end - 1) & 63));
  if (word == last_word) {
    row[word] &= ~(first_mask & last_mask);
    return;
  }
  row[word] &= ~first_mask;
  for (++word; word < last_word; ++word) row[word] = 0;
  row[last_word] &= ~last_mask;
}

}  // namespace bdisk::broadcast
