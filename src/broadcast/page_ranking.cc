#include "broadcast/page_ranking.h"

#include <algorithm>
#include <numeric>

#include "sim/check.h"

namespace bdisk::broadcast {

PushLayout BuildPushLayout(const std::vector<double>& access_probs,
                           const DiskConfig& config, std::uint32_t offset,
                           std::uint32_t chop_count) {
  BDISK_CHECK_MSG(config.Validate().empty(), "invalid disk configuration");
  const auto db_size = static_cast<std::uint32_t>(access_probs.size());
  BDISK_CHECK_MSG(config.TotalPages() == db_size,
                  "disk sizes must cover the whole database");
  BDISK_CHECK_MSG(chop_count < db_size, "cannot chop the entire database");

  // Rank pages hottest-first; ties broken by lower page id (deterministic).
  std::vector<PageId> ranked(db_size);
  std::iota(ranked.begin(), ranked.end(), 0U);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&access_probs](PageId a, PageId b) {
                     return access_probs[a] > access_probs[b];
                   });

  PushLayout layout;

  // Truncation: the chop_count coldest pages become pull-only, and disks
  // shrink starting from the slowest.
  layout.pull_only.assign(ranked.end() - chop_count, ranked.end());
  std::reverse(layout.pull_only.begin(), layout.pull_only.end());
  ranked.resize(db_size - chop_count);

  layout.effective_config = config;
  std::uint32_t to_remove = chop_count;
  for (std::size_t d = config.NumDisks(); d-- > 0 && to_remove > 0;) {
    const std::uint32_t removed =
        std::min(layout.effective_config.sizes[d], to_remove);
    layout.effective_config.sizes[d] -= removed;
    to_remove -= removed;
  }

  // Offset: rotate the surviving ranked list so the `offset` hottest pages
  // fall at the end of the sequential disk fill, i.e. onto the slowest
  // non-empty disk(s).
  const auto remaining = static_cast<std::uint32_t>(ranked.size());
  BDISK_CHECK_MSG(offset <= remaining,
                  "offset exceeds the number of broadcast pages");
  std::rotate(ranked.begin(), ranked.begin() + offset, ranked.end());

  // Sequential fill, fastest disk first.
  layout.disk_pages.resize(config.NumDisks());
  std::size_t next = 0;
  for (std::size_t d = 0; d < config.NumDisks(); ++d) {
    const std::uint32_t size = layout.effective_config.sizes[d];
    layout.disk_pages[d].assign(ranked.begin() + next,
                                ranked.begin() + next + size);
    next += size;
  }
  BDISK_DCHECK(next == ranked.size());
  return layout;
}

}  // namespace bdisk::broadcast
