#ifndef BDISK_BROADCAST_PAGE_RANKING_H_
#define BDISK_BROADCAST_PAGE_RANKING_H_

#include <cstdint>
#include <vector>

#include "broadcast/disk_config.h"
#include "broadcast/page.h"

namespace bdisk::broadcast {

/// The server-side assignment of database pages to broadcast disks.
///
/// Produced from the aggregate (virtual-client) access probabilities by
/// BuildPushLayout(), applying the paper's two transformations:
///
///  * **Offset** (§3.2): the `offset` hottest pages are shifted to the
///    slowest disk — steady-state clients hold them in cache, so pushing
///    them frequently wastes bandwidth. All paper experiments use
///    offset == CacheSize.
///  * **Truncation** (§4.3): the `chop_count` coldest pages are removed from
///    the push schedule entirely and become pull-only. Truncation shrinks
///    disks starting from the slowest, exactly as the paper describes
///    ("first chopping pages from the third (slowest) disk until it is
///    completely eliminated and then dropping pages from the second").
struct PushLayout {
  /// Disk shape after truncation (same frequencies; shrunk sizes, possibly
  /// zero for fully chopped disks).
  DiskConfig effective_config;

  /// Pages assigned to each disk, hottest-first within a disk.
  std::vector<std::vector<PageId>> disk_pages;

  /// Pages removed from the broadcast (obtainable only by pull),
  /// coldest-first.
  std::vector<PageId> pull_only;
};

/// Builds the page-to-disk assignment.
///
/// `access_probs[p]` is the server's estimate of the aggregate access
/// probability of page `p`; its size defines ServerDBSize and must equal
/// `config.TotalPages()`. Pages are ranked by descending probability (ties
/// broken by lower page id, so the build is deterministic).
///
/// Order of operations — documented substitution (see DESIGN.md): the paper
/// does not pin down how Offset interacts with truncation; we chop the
/// coldest pages first and then re-apply Offset to the surviving pages, so
/// the hottest pages always remain on the slowest *non-empty* disk and the
/// "third disk first, then second" narrative holds literally.
///
/// Requires 0 <= chop_count < ServerDBSize and offset <= remaining pages.
PushLayout BuildPushLayout(const std::vector<double>& access_probs,
                           const DiskConfig& config, std::uint32_t offset,
                           std::uint32_t chop_count);

}  // namespace bdisk::broadcast

#endif  // BDISK_BROADCAST_PAGE_RANKING_H_
