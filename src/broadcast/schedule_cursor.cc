#include "broadcast/schedule_cursor.h"

#include "sim/check.h"

namespace bdisk::broadcast {

ScheduleCursor::ScheduleCursor(const BroadcastProgram* program)
    : program_(program),
      data_(program != nullptr ? program->ScheduleData() : nullptr),
      length_(program != nullptr ? program->Length() : 0),
      occ_offsets_(program != nullptr ? program->OccOffsetsData() : nullptr),
      occ_positions_(program != nullptr ? program->OccPositionsData()
                                        : nullptr) {
  BDISK_CHECK_MSG(program != nullptr, "cursor needs a program");
  BDISK_CHECK_MSG(!program->Empty(),
                  "cursor over an empty program (pure pull has no cursor)");
}

}  // namespace bdisk::broadcast
