#include "broadcast/schedule_cursor.h"

#include "sim/check.h"

namespace bdisk::broadcast {

ScheduleCursor::ScheduleCursor(const BroadcastProgram* program)
    : program_(program),
      data_(program != nullptr ? program->ScheduleData() : nullptr),
      length_(program != nullptr ? program->Length() : 0) {
  BDISK_CHECK_MSG(program != nullptr, "cursor needs a program");
  BDISK_CHECK_MSG(!program->Empty(),
                  "cursor over an empty program (pure pull has no cursor)");
}

}  // namespace bdisk::broadcast
