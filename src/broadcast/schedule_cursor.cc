#include "broadcast/schedule_cursor.h"

#include "sim/check.h"

namespace bdisk::broadcast {

ScheduleCursor::ScheduleCursor(const BroadcastProgram* program)
    : program_(program) {
  BDISK_CHECK_MSG(program != nullptr, "cursor needs a program");
  BDISK_CHECK_MSG(!program->Empty(),
                  "cursor over an empty program (pure pull has no cursor)");
}

PageId ScheduleCursor::Advance() {
  const PageId page = program_->PageAt(pos_);
  pos_ = (pos_ + 1 == program_->Length()) ? 0 : pos_ + 1;
  return page;
}

}  // namespace bdisk::broadcast
