#ifndef BDISK_BROADCAST_PROGRAM_BUILDER_H_
#define BDISK_BROADCAST_PROGRAM_BUILDER_H_

#include <vector>

#include "broadcast/disk_config.h"
#include "broadcast/page.h"

namespace bdisk::broadcast {

/// How to split a disk whose size is not divisible by its chunk count.
enum class ChunkingMode {
  /// Chunk sizes differ by at most one page; no slots are wasted. Default.
  kBalanced,
  /// Every chunk is padded to the same (ceiling) size with empty slots, as
  /// in the literal [Acha95a] algorithm. Padding slots broadcast nothing.
  kPad,
};

/// Generates the flat broadcast schedule (one major cycle) from a page-to-
/// disk assignment, using the Broadcast Disks algorithm of [Acha95a]:
///
///   1. max_chunks := lcm of the relative frequencies (of non-empty disks);
///   2. split disk j into num_chunks(j) = max_chunks / RelFreq(j) chunks;
///   3. for i in [0, max_chunks): for each disk j, fastest first, emit
///      chunk (i mod num_chunks(j)) of disk j.
///
/// Each iteration of (3) is a *minor cycle*; the whole output is the *major
/// cycle*, which then repeats forever. Disk j's pages appear exactly
/// RelFreq(j) / gcd(all RelFreqs) times per major cycle, evenly spaced —
/// frequencies are ratios, so {6,4,2} behaves as {3,2,1}.
///
/// For the paper's Figure 1 input (7 pages on disks {1,2,4} at {4,2,1}) this
/// yields the 12-slot cycle  a b d a c e a b f a c g.
///
/// `disk_pages` may contain empty disks (fully truncated); they are skipped.
/// kNoPage entries in the result (kPad mode only) are idle slots.
std::vector<PageId> BuildSchedule(
    const std::vector<std::vector<PageId>>& disk_pages,
    const std::vector<std::uint32_t>& rel_freqs,
    ChunkingMode mode = ChunkingMode::kBalanced);

}  // namespace bdisk::broadcast

#endif  // BDISK_BROADCAST_PROGRAM_BUILDER_H_
