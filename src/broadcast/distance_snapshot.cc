#include "broadcast/distance_snapshot.h"

#include <algorithm>

namespace bdisk::broadcast {

DistanceSnapshot::DistanceSnapshot(const BroadcastProgram& program)
    : occ_offsets_(program.OccOffsetsData()),
      occ_positions_(program.OccPositionsData()),
      length_(program.Length()),
      memo_dist_(program.DbSize(), 0),
      memo_epoch_(program.DbSize(), 0) {}

std::uint32_t DistanceSnapshot::Resolve(PageId page) const {
  const std::uint32_t* first = occ_positions_ + occ_offsets_[page];
  const std::uint32_t* last = occ_positions_ + occ_offsets_[page + 1];
  if (first == last) return BroadcastProgram::kNeverBroadcast;
  const std::uint32_t* it = std::lower_bound(first, last, pos_);
  if (it != last) return *it - pos_;
  return length_ - pos_ + *first;
}

}  // namespace bdisk::broadcast
