#include "broadcast/broadcast_program.h"

#include <algorithm>
#include <utility>

#include "sim/check.h"

namespace bdisk::broadcast {

BroadcastProgram::BroadcastProgram(std::vector<PageId> schedule,
                                   std::uint32_t db_size)
    : schedule_(std::move(schedule)), db_size_(db_size) {
  occurrences_.resize(db_size_);
  for (std::uint32_t pos = 0; pos < schedule_.size(); ++pos) {
    const PageId p = schedule_[pos];
    if (p == kNoPage) continue;
    BDISK_CHECK_MSG(p < db_size_, "schedule references an out-of-range page");
    occurrences_[p].push_back(pos);
  }
}

std::uint32_t BroadcastProgram::Frequency(PageId page) const {
  BDISK_DCHECK(page < db_size_);
  return static_cast<std::uint32_t>(occurrences_[page].size());
}

std::uint32_t BroadcastProgram::DistanceToNext(std::uint32_t pos,
                                               PageId page) const {
  BDISK_DCHECK(page < db_size_);
  const std::vector<std::uint32_t>& occ = occurrences_[page];
  if (occ.empty()) return kNeverBroadcast;
  BDISK_DCHECK(pos < schedule_.size());
  // First occurrence at or after pos, else wrap to the first of the next
  // cycle.
  const auto it = std::lower_bound(occ.begin(), occ.end(), pos);
  if (it != occ.end()) return *it - pos;
  return Length() - pos + occ.front();
}

double BroadcastProgram::ExpectedWait(PageId page) const {
  const std::uint32_t freq = Frequency(page);
  if (freq == 0) return static_cast<double>(kNeverBroadcast);
  return static_cast<double>(Length()) / (2.0 * static_cast<double>(freq));
}

std::string BroadcastProgram::ToString() const {
  std::string out;
  for (std::uint32_t pos = 0; pos < schedule_.size(); ++pos) {
    if (pos > 0) out += ' ';
    if (schedule_[pos] == kNoPage) {
      out += '-';
    } else {
      out += std::to_string(schedule_[pos]);
    }
  }
  return out;
}

}  // namespace bdisk::broadcast
