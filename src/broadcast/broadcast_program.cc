#include "broadcast/broadcast_program.h"

#include <algorithm>
#include <utility>

#include "sim/check.h"

namespace bdisk::broadcast {

BroadcastProgram::BroadcastProgram(std::vector<PageId> schedule,
                                   std::uint32_t db_size)
    : schedule_(std::move(schedule)), db_size_(db_size) {
  // Counting sort into CSR: per-page counts, exclusive prefix sum, then a
  // fill pass. Iterating positions in ascending order keeps each page's
  // occurrence run sorted.
  occ_offsets_.assign(db_size_ + 1, 0);
  for (const PageId p : schedule_) {
    if (p == kNoPage) continue;
    BDISK_CHECK_MSG(p < db_size_, "schedule references an out-of-range page");
    ++occ_offsets_[p + 1];
  }
  for (std::uint32_t p = 0; p < db_size_; ++p) {
    occ_offsets_[p + 1] += occ_offsets_[p];
  }
  occ_positions_.resize(occ_offsets_[db_size_]);
  std::vector<std::uint32_t> cursor(occ_offsets_.begin(),
                                    occ_offsets_.end() - 1);
  for (std::uint32_t pos = 0; pos < schedule_.size(); ++pos) {
    const PageId p = schedule_[pos];
    if (p == kNoPage) continue;
    occ_positions_[cursor[p]++] = pos;
  }
}

std::uint32_t BroadcastProgram::Frequency(PageId page) const {
  BDISK_DCHECK(page < db_size_);
  return occ_offsets_[page + 1] - occ_offsets_[page];
}

std::uint32_t BroadcastProgram::DistanceToNext(std::uint32_t pos,
                                               PageId page) const {
  BDISK_DCHECK(page < db_size_);
  const std::uint32_t* first = occ_positions_.data() + occ_offsets_[page];
  const std::uint32_t* last = occ_positions_.data() + occ_offsets_[page + 1];
  if (first == last) return kNeverBroadcast;
  BDISK_DCHECK(pos < schedule_.size());
  // First occurrence at or after pos, else wrap to the first of the next
  // cycle.
  const std::uint32_t* it = std::lower_bound(first, last, pos);
  if (it != last) return *it - pos;
  return Length() - pos + *first;
}

double BroadcastProgram::ExpectedWait(PageId page) const {
  const std::uint32_t freq = Frequency(page);
  if (freq == 0) return static_cast<double>(kNeverBroadcast);
  return static_cast<double>(Length()) / (2.0 * static_cast<double>(freq));
}

std::string BroadcastProgram::ToString() const {
  std::string out;
  for (std::uint32_t pos = 0; pos < schedule_.size(); ++pos) {
    if (pos > 0) out += ' ';
    if (schedule_[pos] == kNoPage) {
      out += '-';
    } else {
      out += std::to_string(schedule_[pos]);
    }
  }
  return out;
}

}  // namespace bdisk::broadcast
