#ifndef BDISK_BROADCAST_SPAN_TABLE_H_
#define BDISK_BROADCAST_SPAN_TABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "broadcast/broadcast_program.h"
#include "broadcast/page.h"

namespace bdisk::broadcast {

/// Precomputed threshold decisions over one whole major cycle: one bit per
/// (page, position) answering `DistanceToNext(pos, page) > threshold`.
///
/// The threshold decision — "is the page's next push slot farther than T?"
/// — is what both the virtual client's filter (T = ThresPerc * cycle) and
/// the server's degraded-mode shedding (T = shed_distance) actually need;
/// the distance itself is ephemeral. A page is within T of a push exactly
/// on the cyclic position span [occ - T, occ] around each occurrence, so
/// the table is built once per (program, threshold) by clearing those
/// spans out of an all-ones bitset. Afterwards a query is a single bit
/// test — no occurrence search at all.
///
/// Lifecycle: the table is valid for exactly one (program, threshold)
/// pair. Programs are immutable per System, so "invalidation on program
/// rebuild" means the table dies with its owner; threshold changes
/// (SetFaultInjector re-resolving shed watermarks, a different ThresPerc)
/// rebuild via BuildIfFeasible. Unscheduled pages always read as pull
/// (distance = kNeverBroadcast > any threshold).
class CycleSpanTable {
 public:
  /// Default cap on table memory. Table 3 scale (1000 pages x 3000 slots)
  /// is ~370 KiB; the cap only bites on degenerate huge configurations,
  /// where callers fall back to the per-query search path.
  static constexpr std::size_t kDefaultMaxBytes = std::size_t{8} << 20;

  /// Builds the table, or returns null when the program is empty or the
  /// bitset would exceed `max_bytes` (callers keep their fallback path).
  static std::unique_ptr<const CycleSpanTable> BuildIfFeasible(
      const BroadcastProgram& program, std::uint32_t threshold_slots,
      std::size_t max_bytes = kDefaultMaxBytes);

  /// True iff DistanceToNext(pos, page) > threshold_slots (pull / beyond
  /// the shed horizon). `pos` must be < the program length.
  bool ShouldPull(PageId page, std::uint32_t pos) const {
    return (bits_[page * words_per_row_ + (pos >> 6)] >> (pos & 63)) & 1U;
  }

  /// The threshold this table was built for.
  std::uint32_t ThresholdSlots() const { return threshold_; }

  /// Bitset footprint in bytes (diagnostics).
  std::size_t SizeBytes() const { return bits_.size() * sizeof(bits_[0]); }

 private:
  CycleSpanTable(const BroadcastProgram& program,
                 std::uint32_t threshold_slots);

  /// Clears `count` bits of page's row starting at `begin`, cyclically.
  void ClearCyclic(PageId page, std::uint32_t begin, std::uint32_t count);
  void ClearLinear(std::uint64_t* row, std::uint32_t begin,
                   std::uint32_t count);

  std::uint32_t length_;
  std::uint32_t threshold_;
  std::size_t words_per_row_;
  std::vector<std::uint64_t> bits_;  // 1 = pull (distance > threshold).
};

}  // namespace bdisk::broadcast

#endif  // BDISK_BROADCAST_SPAN_TABLE_H_
